// Static error bounds for a tuned kernel — the workflow a safety-minded
// user runs before shipping a precision-tuned binary: tune for speed, then
// get a sound worst-case error certificate for the chosen types (or an
// honest "unbounded" where the analysis cannot certify).
#include <cmath>
#include <cstdio>
#include <string>

#include "core/error_model.hpp"
#include "core/pipeline.hpp"
#include "platform/cost_model.hpp"
#include "polybench/polybench.hpp"

using namespace luis;

int main(int argc, char** argv) {
  const std::string kernel_name = argc > 1 ? argv[1] : "atax";

  ir::Module module;
  polybench::BuiltKernel kernel = polybench::build_kernel(kernel_name, module);
  const vra::RangeMap ranges = vra::analyze_ranges(*kernel.function);

  std::printf("kernel %s, tuning with the Fast preset for Stm32...\n\n",
              kernel_name.c_str());
  const core::AllocationResult alloc = core::allocate_ilp(
      *kernel.function, ranges, platform::stm32_table(),
      core::TuningConfig::fast());
  for (const auto& arr : kernel.function->arrays())
    std::printf("  %-8s -> %s\n", arr->name().c_str(),
                alloc.assignment.of(arr.get()).name().c_str());

  core::ErrorAnalysisOptions opt;
  const core::ErrorAnalysis analysis =
      core::analyze_errors(*kernel.function, alloc.assignment, ranges, opt);
  std::printf("\nstatic worst-case absolute error bounds (%d passes%s):\n",
              analysis.passes, analysis.converged ? ", converged" : "");
  for (const auto& [name, bound] : analysis.array_bound) {
    if (bound >= opt.infinity_threshold)
      std::printf("  %-8s unbounded (division/recursion over a range "
                  "reaching zero)\n",
                  name.c_str());
    else
      std::printf("  %-8s <= %.3e\n", name.c_str(), bound);
  }

  // Cross-check against one measured execution.
  interp::ArrayStore ref = kernel.inputs;
  interp::TypeAssignment binary64;
  if (!run_function(*kernel.function, binary64, ref).ok) return 1;
  interp::ArrayStore out = kernel.inputs;
  if (!run_function(*kernel.function, alloc.assignment, out).ok) return 1;
  std::printf("\nmeasured worst deviation on the bundled inputs:\n");
  for (const std::string& o : kernel.outputs) {
    double worst = 0.0;
    for (std::size_t i = 0; i < ref.at(o).size(); ++i)
      worst = std::max(worst, std::abs(ref.at(o)[i] - out.at(o)[i]));
    std::printf("  %-8s %.3e\n", o.c_str(), worst);
  }
  return 0;
}
