// Characterize the host machine with the paper's micro-benchmark
// procedure (Section IV-C) and tune a kernel against the fresh table —
// the "new architecture" workflow the paper's future work points at.
#include <cstdio>

#include "core/pipeline.hpp"
#include "platform/cost_model.hpp"
#include "platform/microbench.hpp"
#include "polybench/polybench.hpp"
#include "support/statistics.hpp"

using namespace luis;

int main() {
  std::printf("characterizing this machine (128-iteration blocks, "
              "CLOCK_PROCESS_CPUTIME_ID)...\n\n");
  const platform::OpTimeTable host = platform::run_microbenchmark();
  std::printf("%-12s %-8s %10s\n", "op", "type", "op-time");
  for (const auto& [key, time] : host.entries())
    std::printf("%-12s %-8s %10.2f\n", key.first.c_str(), key.second.c_str(),
                time);

  std::printf("\ntuning 'atax' against the host characterization "
              "(Fast preset)...\n");
  ir::Module module;
  polybench::BuiltKernel kernel = polybench::build_kernel("atax", module);

  interp::ArrayStore reference = kernel.inputs;
  interp::TypeAssignment binary64;
  const interp::RunResult base =
      run_function(*kernel.function, binary64, reference);
  if (!base.ok) return 1;

  const core::PipelineResult tuned =
      core::tune_kernel(*kernel.function, host, core::TuningConfig::fast());
  for (const auto& arr : kernel.function->arrays())
    std::printf("  %-6s -> %s\n", arr->name().c_str(),
                tuned.allocation.assignment.of(arr.get()).name().c_str());

  interp::ArrayStore out = kernel.inputs;
  const interp::RunResult run =
      run_function(*kernel.function, tuned.allocation.assignment, out);
  if (!run.ok) return 1;
  const double t_base = platform::simulated_time(base.counters, host);
  const double t_tuned = platform::simulated_time(run.counters, host);
  std::printf("\nsimulated Speedup on this machine: %.1f%%   MPE: %.3g%%\n",
              platform::speedup_percent(t_base, t_tuned),
              mean_percentage_error(reference.at("y"), out.at("y")));
  return 0;
}
