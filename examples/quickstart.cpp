// Quickstart: build a kernel, annotate its inputs, tune it with LUIS, and
// compare the tuned program against the binary64 reference.
//
// The kernel is a tiny sensor-fusion style computation:
//   out[i] = (a[i] * gain + b[i]) / (b[i] + 1)
// with inputs known to lie in [0, 4).
#include <cstdio>

#include "core/pipeline.hpp"
#include "ir/kernel_builder.hpp"
#include "ir/printer.hpp"
#include "platform/cost_model.hpp"
#include "polybench/polybench.hpp"
#include "support/statistics.hpp"

using namespace luis;
using ir::IVal;
using ir::RVal;

int main() {
  constexpr std::int64_t N = 64;

  // 1. Build the kernel. Array annotations state the expected dynamic
  //    range of the values they hold (the TAFFO annotation discipline).
  ir::Module module;
  ir::KernelBuilder kb(module, "fuse");
  ir::Array* a = kb.array("a", {N}, 0.0, 4.0);
  ir::Array* b = kb.array("b", {N}, 0.0, 4.0);
  ir::Array* out = kb.array("out", {N}, 0.0, 17.0);
  RVal gain = kb.real(4.0);
  kb.for_loop("i", 0, N, [&](IVal i) {
    RVal num = kb.load(a, {i}) * gain + kb.load(b, {i});
    RVal den = kb.load(b, {i}) + kb.real(1.0);
    kb.store(num / den, out, {i});
  });
  ir::Function* f = kb.finish();

  std::printf("=== The kernel in LUIS IR ===\n\n%s\n",
              ir::print_function(*f).c_str());

  // 2. Reference execution: everything in binary64.
  interp::ArrayStore reference;
  for (std::int64_t i = 0; i < N; ++i) {
    reference["a"].push_back(static_cast<double>(i % 17) / 4.25);
    reference["b"].push_back(static_cast<double>(i % 13) / 3.25);
  }
  const interp::ArrayStore inputs = reference;
  interp::TypeAssignment binary64;
  const interp::RunResult base = run_function(*f, binary64, reference);
  if (!base.ok) {
    std::fprintf(stderr, "reference run failed: %s\n", base.error.c_str());
    return 1;
  }

  // 3. Tune for the Stm32 target (no FPU) with the Balanced trade-off.
  const core::TuningConfig config = core::TuningConfig::fast();
  const core::PipelineResult tuned =
      core::tune_kernel(*f, platform::stm32_table(), config);

  std::printf("=== LUIS allocation (config %s, target %s) ===\n\n",
              config.name.c_str(), platform::stm32_table().machine().c_str());
  std::printf("ILP model: %zu variables, %zu constraints, solved in %.1f ms "
              "(%ld B&B nodes)\n",
              tuned.allocation.stats.model_variables,
              tuned.allocation.stats.model_constraints,
              tuned.timings.allocation_seconds * 1e3, tuned.allocation.stats.nodes);
  for (const auto& arr : f->arrays())
    std::printf("  array %-4s -> %s\n", arr->name().c_str(),
                tuned.allocation.assignment.of(arr.get()).name().c_str());

  // 4. Run the tuned kernel and report the paper's two metrics.
  interp::ArrayStore out_store = inputs;
  const interp::RunResult run =
      run_function(*f, tuned.allocation.assignment, out_store);
  if (!run.ok) {
    std::fprintf(stderr, "tuned run failed: %s\n", run.error.c_str());
    return 1;
  }
  const double t_base =
      platform::simulated_time(base.counters, platform::stm32_table());
  const double t_tuned =
      platform::simulated_time(run.counters, platform::stm32_table());
  std::printf("\nSimulated time: %.0f -> %.0f units, Speedup %.1f%%\n", t_base,
              t_tuned, platform::speedup_percent(t_base, t_tuned));
  std::printf("MPE vs binary64 reference: %.3g%%\n",
              mean_percentage_error(reference.at("out"), out_store.at("out")));
  return 0;
}
