// Tune a PolyBench kernel for a platform and configuration from the
// command line:
//
//   polybench_tune [kernel] [platform] [config]
//   polybench_tune gemm Stm32 Fast
//   polybench_tune list            # print the kernel names
//
// Defaults: gemm / Stm32 / Balanced. Prints the allocation, the precision
// mix, and the Speedup / MPE metrics of the tuned kernel.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/cast_materializer.hpp"
#include "core/pipeline.hpp"
#include "platform/cost_model.hpp"
#include "polybench/polybench.hpp"
#include "support/statistics.hpp"

using namespace luis;

int main(int argc, char** argv) {
  std::string kernel_name = argc > 1 ? argv[1] : "gemm";
  const std::string platform_name = argc > 2 ? argv[2] : "Stm32";
  const std::string config_name = argc > 3 ? argv[3] : "Balanced";

  if (kernel_name == "list") {
    for (const std::string& name : polybench::kernel_names())
      std::printf("%s\n", name.c_str());
    return 0;
  }

  const platform::OpTimeTable* table = platform::platform_by_name(platform_name);
  if (!table) {
    std::fprintf(stderr, "unknown platform '%s' (Stm32/Raspberry/Intel/AMD)\n",
                 platform_name.c_str());
    return 1;
  }
  core::TuningConfig config;
  if (config_name == "Fast")
    config = core::TuningConfig::fast();
  else if (config_name == "Balanced")
    config = core::TuningConfig::balanced();
  else if (config_name == "Precise")
    config = core::TuningConfig::precise();
  else {
    std::fprintf(stderr, "unknown config '%s' (Fast/Balanced/Precise)\n",
                 config_name.c_str());
    return 1;
  }

  ir::Module module;
  polybench::BuiltKernel kernel = polybench::build_kernel(kernel_name, module);
  std::printf("kernel %s: %zu instructions, %zu arrays\n", kernel_name.c_str(),
              kernel.function->instruction_count(),
              kernel.function->arrays().size());

  interp::ArrayStore reference = kernel.inputs;
  interp::TypeAssignment binary64;
  const interp::RunResult base =
      run_function(*kernel.function, binary64, reference);
  if (!base.ok) {
    std::fprintf(stderr, "baseline failed: %s\n", base.error.c_str());
    return 1;
  }

  const core::PipelineResult tuned =
      core::tune_kernel(*kernel.function, *table, config);
  std::printf("\nLUIS / %s / %s: model %zu vars x %zu rows, %ld nodes, "
              "VRA %.1f ms + allocation %.1f ms\n",
              table->machine().c_str(), config.name.c_str(),
              tuned.allocation.stats.model_variables,
              tuned.allocation.stats.model_constraints,
              tuned.allocation.stats.nodes, tuned.timings.vra_seconds * 1e3,
              tuned.timings.allocation_seconds * 1e3);
  std::printf("\narray types:\n");
  for (const auto& arr : kernel.function->arrays())
    std::printf("  %-8s -> %s\n", arr->name().c_str(),
                tuned.allocation.assignment.of(arr.get()).name().c_str());
  std::printf("instruction mix:");
  for (const auto& [cls, count] : tuned.allocation.stats.instruction_mix)
    std::printf("  %s: %d", cls.c_str(), count);
  std::printf("\ncasts to materialize: %d\n",
              core::count_type_boundaries(*kernel.function,
                                          tuned.allocation.assignment));

  interp::ArrayStore out = kernel.inputs;
  const interp::RunResult run =
      run_function(*kernel.function, tuned.allocation.assignment, out);
  if (!run.ok) {
    std::fprintf(stderr, "tuned run failed: %s\n", run.error.c_str());
    return 1;
  }
  const double t_base = platform::simulated_time(base.counters, *table);
  const double t_tuned = platform::simulated_time(run.counters, *table);

  std::vector<double> ref_all, out_all;
  for (const std::string& name : kernel.outputs) {
    ref_all.insert(ref_all.end(), reference.at(name).begin(),
                   reference.at(name).end());
    out_all.insert(out_all.end(), out.at(name).begin(), out.at(name).end());
  }
  std::printf("\nSpeedup: %.1f%%   MPE: %.3g%%\n",
              platform::speedup_percent(t_base, t_tuned),
              mean_percentage_error(ref_all, out_all));
  return 0;
}
