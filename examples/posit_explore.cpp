// Posit / extended-format exploration — the paper's "future work"
// direction (Section VI): the IEBW metric and the ILP model are defined
// for Posits and the extendable-precision floats, so the tuner can select
// among them today. This example widens the candidate type set to
//   { fix32, bfloat16, binary16, binary32, binary64, posit16, posit32 }
// and tunes a kernel under each preset, showing how the mix shifts.
#include <cstdio>

#include "core/pipeline.hpp"
#include "numrep/iebw.hpp"
#include "platform/cost_model.hpp"
#include "polybench/polybench.hpp"
#include "support/statistics.hpp"

using namespace luis;
using namespace luis::numrep;

int main() {
  std::printf("=== IEBW across representation systems (range [0.5, 8]) ===\n\n");
  const NumericFormat formats[] = {kFixed32,  kBfloat16, kBinary16, kBinary32,
                                   kBinary64, kPosit16,  kPosit32};
  for (const NumericFormat& fmt : formats) {
    const int frac = fmt.is_fixed() ? fixed_point_max_frac(32, true, 0.5, 8.0) : 0;
    std::printf("%-10s guaranteed %3d   best-case %3d\n", fmt.name().c_str(),
                iebw_of_range(fmt, 0.5, 8.0, frac),
                iebw_of_range_best_case(fmt, 0.5, 8.0, frac));
  }

  std::printf("\n=== Tuning 'jacobi-2d' with the extended type set ===\n");
  for (const char* preset : {"Precise", "Balanced", "Fast"}) {
    ir::Module module;
    polybench::BuiltKernel kernel = polybench::build_kernel("jacobi-2d", module);

    core::TuningConfig config;
    if (preset[0] == 'P') config = core::TuningConfig::precise();
    if (preset[0] == 'B') config = core::TuningConfig::balanced();
    if (preset[0] == 'F') config = core::TuningConfig::fast();
    config.types = {kFixed32,  kBfloat16, kBinary16, kBinary32,
                    kBinary64, kPosit16,  kPosit32};

    interp::ArrayStore reference = kernel.inputs;
    interp::TypeAssignment binary64;
    const interp::RunResult base =
        run_function(*kernel.function, binary64, reference);
    if (!base.ok) return 1;

    const core::PipelineResult tuned = core::tune_kernel(
        *kernel.function, platform::stm32_table(), config);

    interp::ArrayStore out = kernel.inputs;
    const interp::RunResult run =
        run_function(*kernel.function, tuned.allocation.assignment, out);
    if (!run.ok) return 1;

    const double t_base =
        platform::simulated_time(base.counters, platform::stm32_table());
    const double t_tuned =
        platform::simulated_time(run.counters, platform::stm32_table());

    std::printf("\n%s: speedup %.1f%%, MPE %.3g%%, mix:", preset,
                platform::speedup_percent(t_base, t_tuned),
                mean_percentage_error(reference.at("A"), out.at("A")));
    for (const auto& [cls, count] : tuned.allocation.stats.instruction_mix)
      std::printf(" %s=%d", cls.c_str(), count);
    std::printf("\n  arrays:");
    for (const auto& arr : kernel.function->arrays())
      std::printf(" %s:%s", arr->name().c_str(),
                  tuned.allocation.assignment.of(arr.get()).name().c_str());
    std::printf("\n");
  }
  return 0;
}
