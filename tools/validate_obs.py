#!/usr/bin/env python3
"""Validates LUIS observability JSON artifacts.

Schema-checks the two structured dumps the CLI writes next to the Chrome
trace (which tools/validate_trace.py covers):

  --metrics FILE   a --metrics-out dump: build stamp plus counters (ints),
                   gauges (numbers), and histograms whose bucket counts sum
                   to the sample count and whose summary quantiles satisfy
                   min <= p50 <= p90 <= p99 <= max.
  --profile FILE   a `luis profile --json` dump: either the plain hot-spot
                   report or, with --errors, the combined document
                   {hotspots, errors, certificate_check}. Per-line error
                   rows must have ordered quantiles and mean <= max; the
                   certificate cross-check must be internally consistent
                   (any_violation == OR of the per-array flags).

Non-finite numbers are serialized as the JSON strings "NaN", "Infinity"
and "-Infinity" (JSON has no literals for them); the validator folds them
back to floats before range checks.

Exit status 0 when every given artifact validates, 1 otherwise. With
--fail-on-violation, a profile whose certificate cross-check reports a
measured error above its certified bound also exits 1. Used by the
observability and errprof-smoke CI jobs.
"""

import argparse
import json
import math
import sys

_SENTINELS = {"NaN": math.nan, "Infinity": math.inf, "-Infinity": -math.inf}


def fail(msg):
    print("validate_obs: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        fail("cannot parse %s: %s" % (path, e))


def num(doc, where, key):
    """Fetches doc[key] as a float, accepting the non-finite sentinels."""
    if key not in doc:
        fail("%s missing %r" % (where, key))
    v = doc[key]
    if isinstance(v, str):
        if v not in _SENTINELS:
            fail("%s.%s: bad numeric string %r" % (where, key, v))
        return _SENTINELS[v]
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        fail("%s.%s: not a number: %r" % (where, key, v))
    return float(v)


def integer(doc, where, key, lo=None):
    if key not in doc or isinstance(doc[key], bool) or \
            not isinstance(doc[key], int):
        fail("%s missing integer %r" % (where, key))
    if lo is not None and doc[key] < lo:
        fail("%s.%s = %d below %d" % (where, key, doc[key], lo))
    return doc[key]


def check_metrics(path):
    doc = load(path)
    if not isinstance(doc, dict):
        fail("metrics top level must be an object")
    if "build" not in doc:
        fail("metrics missing build stamp")
    for section in ("counters", "gauges", "histograms"):
        if section not in doc or not isinstance(doc[section], dict):
            fail("metrics missing object %r" % section)
    for name, v in doc["counters"].items():
        if isinstance(v, bool) or not isinstance(v, int):
            fail("counter %r is not an integer: %r" % (name, v))
    for name in doc["gauges"]:
        num(doc["gauges"], "gauges", name)
    for name, h in doc["histograms"].items():
        where = "histogram %r" % name
        if not isinstance(h, dict):
            fail(where + " is not an object")
        count = integer(h, where, "count", lo=0)
        for key in ("sum", "mean", "min", "max"):
            num(h, where, key)
        quantiles = [num(h, where, k) for k in ("min", "p50", "p90",
                                                "p99", "max")]
        if count > 0 and all(math.isfinite(q) for q in quantiles):
            for a, b in zip(quantiles, quantiles[1:]):
                if a > b:
                    fail("%s quantiles not ordered: %r" % (where, quantiles))
        if "buckets" not in h or not isinstance(h["buckets"], list):
            fail(where + " missing buckets array")
        in_buckets = 0
        prev_le = -math.inf
        for i, b in enumerate(h["buckets"]):
            bwhere = "%s bucket %d" % (where, i)
            le = num(b, bwhere, "le")
            if le <= prev_le:
                fail(bwhere + " upper bounds not increasing")
            prev_le = le
            in_buckets += integer(b, bwhere, "count", lo=1)
        if in_buckets != count:
            fail("%s bucket counts sum to %d, count is %d"
                 % (where, in_buckets, count))
    print("validate_obs: OK: %s: %d counters, %d gauges, %d histograms"
          % (path, len(doc["counters"]), len(doc["gauges"]),
             len(doc["histograms"])))


def check_hotspots(doc):
    if "build" not in doc:
        fail("hotspot report missing build stamp")
    for key in ("function", "platform"):
        if not isinstance(doc.get(key), str):
            fail("hotspot report missing string %r" % key)
    num(doc, "hotspots", "total_cost")
    integer(doc, "hotspots", "total_executions", lo=0)
    if not isinstance(doc.get("hotspots"), list):
        fail("hotspot report missing hotspots array")
    share = 0.0
    for i, h in enumerate(doc["hotspots"]):
        where = "hotspot %d" % i
        integer(h, where, "ordinal")
        integer(h, where, "executions", lo=0)
        num(h, where, "cost")
        share += num(h, where, "share")
        if not isinstance(h.get("instruction"), str):
            fail(where + " missing instruction text")
    # Shares are serialized at 6 significant digits; the sum check only
    # guards against gross attribution loss, not rounding.
    if doc["hotspots"] and abs(share - 1.0) > 1e-3:
        fail("hotspot shares sum to %r, expected 1" % share)


def check_errors(doc):
    where = "error report"
    if "build" not in doc:
        fail(where + " missing build stamp")
    num(doc, where, "program_mpe")
    integer(doc, where, "total_observations", lo=0)
    max_rel = num(doc, where, "max_rel")
    num(doc, where, "max_abs")
    integer(doc, where, "control_divergences", lo=0)
    num(doc, where, "spike_rel_threshold")
    integer(doc, where, "first_spike_step")
    worst = 0.0
    for i, ln in enumerate(doc.get("lines", ())):
        lwhere = "error line %d" % i
        integer(ln, lwhere, "ordinal")
        integer(ln, lwhere, "count", lo=1)
        if not isinstance(ln.get("instruction"), str):
            fail(lwhere + " missing instruction text")
        quantiles = [num(ln, lwhere, k)
                     for k in ("p50_rel", "p90_rel", "p99_rel")]
        line_max = num(ln, lwhere, "max_rel")
        worst = max(worst, line_max)
        if num(ln, lwhere, "mean_rel") > line_max or \
                num(ln, lwhere, "mean_abs") > num(ln, lwhere, "max_abs"):
            fail(lwhere + ": mean exceeds max")
        for a, b in zip(quantiles, quantiles[1:]):
            if a > b:
                fail("%s quantiles not ordered: %r" % (lwhere, quantiles))
    if doc.get("lines") and not (math.isnan(worst) or math.isnan(max_rel)) \
            and worst > max_rel:
        fail("per-line max_rel %r exceeds report max_rel %r"
             % (worst, max_rel))
    for i, a in enumerate(doc.get("arrays", ())):
        awhere = "error array %d" % i
        if not isinstance(a.get("name"), str):
            fail(awhere + " missing name")
        if not isinstance(a.get("stored"), bool) or \
                not isinstance(a.get("finite"), bool):
            fail(awhere + " missing stored/finite flags")
        integer(a, awhere, "elements", lo=0)
        for key in ("max_abs", "max_rel", "mpe"):
            num(a, awhere, key)


def check_certificates(doc):
    where = "certificate check"
    for key in ("shadow_is_reference", "divergent_control",
                "assumes_finite_run", "any_violation"):
        if not isinstance(doc.get(key), bool):
            fail("%s missing bool %r" % (where, key))
    integer(doc, where, "capped_bounds", lo=0)
    if not isinstance(doc.get("arrays"), list):
        fail(where + " missing arrays")
    violated = False
    for i, c in enumerate(doc["arrays"]):
        cwhere = "certificate array %d" % i
        if not isinstance(c.get("name"), str):
            fail(cwhere + " missing name")
        measured = num(c, cwhere, "measured")
        certified = num(c, cwhere, "certified")
        num(c, cwhere, "tightness")
        for key in ("checked", "violated"):
            if not isinstance(c.get(key), bool):
                fail("%s missing bool %r" % (cwhere, key))
        if c["violated"] and not c["checked"]:
            fail(cwhere + " violated without being checked")
        if c["checked"] and (measured > certified) != c["violated"]:
            fail("%s: violated flag disagrees with measured %r vs "
                 "certified %r" % (cwhere, measured, certified))
        violated = violated or c["violated"]
    if violated != doc["any_violation"]:
        fail("any_violation disagrees with the per-array flags")
    return doc["any_violation"]


def check_profile(path, fail_on_violation):
    doc = load(path)
    if not isinstance(doc, dict):
        fail("profile top level must be an object")
    violation = False
    if "hotspots" in doc and isinstance(doc["hotspots"], dict):
        # Combined --errors document.
        for section in ("errors", "certificate_check"):
            if section not in doc:
                fail("combined profile missing %r" % section)
        check_hotspots(doc["hotspots"])
        check_errors(doc["errors"])
        violation = check_certificates(doc["certificate_check"])
        n_lines = len(doc["errors"].get("lines", ()))
        print("validate_obs: OK: %s: combined report, %d error lines, "
              "violation=%s" % (path, n_lines, violation))
    else:
        check_hotspots(doc)
        print("validate_obs: OK: %s: hot-spot report, %d entries"
              % (path, len(doc["hotspots"])))
    if violation and fail_on_violation:
        fail("%s: a measured error exceeds its certified bound" % path)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--metrics", action="append", default=[],
                    help="metrics JSON dump to validate (repeatable)")
    ap.add_argument("--profile", action="append", default=[],
                    help="`luis profile --json` dump to validate (repeatable)")
    ap.add_argument("--fail-on-violation", action="store_true",
                    help="exit 1 if a profile's certificate cross-check "
                         "reports any violation")
    args = ap.parse_args()
    if not args.metrics and not args.profile:
        fail("nothing to validate (pass --metrics and/or --profile)")
    for path in args.metrics:
        check_metrics(path)
    for path in args.profile:
        check_profile(path, args.fail_on_violation)
    return 0


if __name__ == "__main__":
    sys.exit(main())
