// luis — command line driver for the LUIS precision tuner.
//
//   luis kernels                          list the bundled PolyBench kernels
//   luis formats                          list every registered number
//                                         format (name, class, width,
//                                         executability, range)
//   luis emit <kernel> [-o out.ir]        write a kernel's textual IR
//   luis print <file.ir>                  parse + verify + pretty-print
//   luis verify <file.ir>                 verify and report problems
//   luis ranges <file.ir>                 show the VRA result per register
//   luis tune <file.ir> [options]         run the full pipeline, report the
//                                         allocation, optionally emit tuned
//                                         IR with materialized casts
//   luis lint <file.ir> [options]         run the pipeline and the precision
//                                         lint over its output (or over a
//                                         saved assignment), report findings
//   luis check <file.ir> [options]        statically certify worst-case
//                                         rounding-error bounds for the
//                                         pipeline's allocation (or a saved
//                                         assignment); exits non-zero when
//                                         --max-rel-error is exceeded
//   luis run <file.ir> [--type T]         execute with a uniform type and
//                                         print per-array checksums
//   luis disasm <file.ir> [--type T]      lower to bytecode and print the
//                                         compiled program
//   luis compile <file.lk> [-o out.ir]    compile kernel-language source
//   luis apply <file.ir> <types.txt>      execute under a saved assignment
//   luis characterize [-o t.optime]       measure this machine's op-times
//   luis sweep [options]                  batch-tune kernel x config x
//                                         platform jobs on a thread pool
//                                         and report per-stage statistics
//   luis fuzz [options]                   property-based differential
//                                         fuzzing of the solver, IR, and
//                                         quantization layers
//   luis profile <file.ir> [options]      execute on the VM with per-
//                                         instruction counting and print
//                                         a ranked hot-spot report (the
//                                         per-line costs sum exactly to
//                                         the run's simulated time)
//   luis version                          print the build stamp
//
// global options (any verb, see docs/OBSERVABILITY.md):
//   --trace-out FILE      record spans across the pipeline, solver, sweep
//                         workers, and VM, and write a Chrome trace-event
//                         JSON file (open in Perfetto / chrome://tracing)
//   --metrics-out FILE    write the process metrics registry as JSON
//   --log-level L         error|warn|info|debug (default info)
//   --lp-core C           LP engine under every MILP solve: revised (the
//                         sparse revised simplex, default) or dense (the
//                         original tableau baseline; see docs/SOLVER.md)
//
// profile options:
//   --platform P          op-time table pricing the report (as in tune)
//   --platform-file F     saved characterization instead of a named one
//   --type T              uniform representation to run under
//                         (default binary64)
//   --assignment F        profile under a saved type assignment instead
//   --top N               rows to print (default 20, 0 = all)
//   --json FILE           also write the full report as JSON
//   --errors              shadow-execute in binary64 alongside the
//                         quantized run: adds the per-line numerical-
//                         error table, the per-array deviation summary
//                         with the in-engine whole-program MPE, and the
//                         measured-vs-certified cross-check against the
//                         `luis check` certificates (exits non-zero when
//                         a measured error exceeds a certified bound)
//
// run/apply options:
//   --engine vm|ref       execution engine (default vm; results are
//                         bit-identical, see docs/INTERP.md)
//
// fuzz options:
//   --target ilp|ir|numrep|error|all
//                         generator/oracle pairs to run (default all);
//                         `error` checks measured quantized-vs-reference
//                         deviation against the static certified bound
//   --trials N            random trials per target (default 200)
//   --seconds N           unbounded mode: fuzz for N wall-clock seconds
//   --seed S              campaign base seed (default 1)
//   --artifacts DIR       write minimized failing inputs here
//                         (default fuzz-artifacts)
//   --corpus DIR          also replay every .lp/.ir seed file in DIR
//   --engine vm|ref       primary engine for the IR differential oracle
//                         (default ref; either way both engines run and
//                         are compared bit for bit)
//   --quiet               suppress progress lines on stderr
// Every failure is shrunk to a minimal repro and written as an artifact
// (.lp for solver models, .ir for IR programs); the exit status is
// non-zero if any corpus file or random trial fails.
//
// sweep options:
//   --kernels a,b,c       subset of PolyBench kernels (default: all 30)
//   --configs a,b         subset of Precise,Balanced,Fast,Multi (default:
//                         Precise,Balanced,Fast; Multi tunes over every
//                         executable registry format)
//   --platforms a,b       subset of Stm32,Raspberry,Intel,AMD (default: all)
//   --threads N           worker threads (default: hardware concurrency;
//                         1 = serial reference path, same results)
//   --max-nodes N         branch & bound node limit per solve (default 3000)
//   --no-taffo            skip the greedy TAFFO baseline rows
//   --no-batch            one scalar engine run per job instead of batched
//                         per-kernel lane execution (results identical)
//   --errors              shadow-execute every tuned job: per-job rows
//                         (text, JSON, metrics registry) gain the
//                         in-engine shadow MPE, max abs/rel deviation,
//                         and control-divergence count
//   --engine vm|ref       execution engine for every interpretation
//                         (default vm: compile once per (kernel,
//                         assignment), cache the program)
//   --no-cache            disable the shared solver result cache and the
//                         vm engine's compiled-program cache
//   --no-check            skip the serial determinism re-check
//   --json <path>         also write the full per-job report as JSON
//   --quiet               suppress per-kernel progress on stderr
// Exits non-zero if any job fails or the determinism check finds a
// mismatch.
//
// tune also accepts --platform-file <t.optime> to tune against a saved
// characterization (the paper's cross-compilation workflow).
//
// VRA fixpoint knobs (tune, lint, check, sweep; recorded in the sweep and
// check JSON reports):
//   --vra-max-passes N    fixpoint sweep cap (default 50)
//   --vra-widen-after N   sweeps before widening engages (default 10)
//   --vra-clamp X         range clamp / "don't know" magnitude (default 1e30)
//   --join-stores         flow store ranges back into arrays (annotation
//                         checking mode; check uses it for self-contained
//                         certificates)
//
// check options (plus --platform/--platform-file/--config/--types/--literal/
// --optimize and the VRA knobs above):
//   --assignment <types.txt>    certify a saved assignment instead of
//                               running the allocator
//   --max-rel-error X           fail (exit 1) when any output array's
//                               certified relative bound exceeds X
//   --format text|json          stdout format (default text)
//   --json FILE                 also write the full certificate (with the
//                               build stamp) to FILE
//
// tune options:
//   --platform Stm32|Raspberry|Intel|AMD|host     (default Stm32)
//   --config Fast|Balanced|Precise|Multi          (default Balanced; Multi
//                                                 draws T from the format
//                                                 registry and overrides
//                                                 --types)
//   --types fix32,binary32,binary64               candidate set T (any
//                                                 `luis formats` name)
//   --literal                                     paper-exact ILP model
//   --optimize                                    IR cleanup passes first
//   --lint=warn|error                             precision lint the result
//                                                 (error: non-zero exit on
//                                                 error-severity findings)
//   -o <out.ir>                                   emit tuned IR with casts
//
// lint options (plus --platform/--platform-file/--config/--types/--literal/
// --optimize as in tune):
//   --assignment <types.txt>    lint a saved assignment instead of running
//                               the allocator
//   --materialize               materialize casts first, then lint
//   --format text|json          report format (default text)
//   --threshold N               L005 guaranteed-IEBW drop threshold
//   --max-rel-error X           L008 certified relative-error budget
//   --werror                    exit non-zero on warnings too
// lint always runs the static error-bound analysis, so the error-aware
// rules (L008-L011, see docs/ANALYSIS.md) fire alongside the structural
// ones.
//
// Every verb that parses IR verifies it and exits non-zero on verifier
// errors, so the tool is usable as a pre-commit check.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/certificate_check.hpp"
#include "analysis/error_bounds.hpp"
#include "analysis/lint.hpp"
#include "core/assignment_io.hpp"
#include "core/cast_materializer.hpp"
#include "frontend/parser.hpp"
#include "core/pipeline.hpp"
#include "ilp/simplex.hpp"
#include "core/sweep.hpp"
#include "interp/engine.hpp"
#include "ir/parser.hpp"
#include "ir/passes.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "obs/build_info.hpp"
#include "obs/error_profile.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "numrep/registry.hpp"
#include "platform/cost_model.hpp"
#include "platform/microbench.hpp"
#include "polybench/polybench.hpp"
#include "support/diag.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/string_utils.hpp"
#include "testing/fuzz.hpp"

using namespace luis;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: luis [--trace-out F] [--metrics-out F] [--log-level L] "
               "[--lp-core revised|dense] "
               "<kernels|formats|emit|compile|print|verify|ranges|tune|"
               "lint|check|run|disasm|characterize|sweep|fuzz|profile|version> "
               "[args]\n(see the "
               "header of tools/luis_cli.cpp for the full option list)\n");
  return 2;
}

/// Parses an --engine value; reports and returns nullopt on junk.
std::optional<interp::EngineKind> engine_or_die(const std::string& name) {
  const auto kind = interp::parse_engine(name);
  if (!kind)
    std::fprintf(stderr, "luis: unknown engine '%s' (want vm or ref)\n",
                 name.c_str());
  return kind;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

ir::Function* parse_or_die(ir::Module& module, const std::string& path) {
  const auto text = read_file(path);
  if (!text) {
    std::fprintf(stderr, "luis: cannot read %s\n", path.c_str());
    return nullptr;
  }
  const ir::ParseResult parsed = ir::parse_function(module, *text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "luis: parse error in %s: %s\n", path.c_str(),
                 parsed.error.c_str());
    return nullptr;
  }
  return parsed.function;
}

/// Parses and verifies; returns nullptr (caller exits non-zero) when the
/// file does not parse or the IR is structurally broken.
ir::Function* parse_and_verify_or_die(ir::Module& module,
                                      const std::string& path) {
  ir::Function* f = parse_or_die(module, path);
  if (!f) return nullptr;
  const ir::VerifyResult vr = ir::verify(*f);
  if (!vr.ok()) {
    std::fputs(vr.message().c_str(), stderr);
    return nullptr;
  }
  return f;
}

/// Resolves --platform / --platform-file ("@path") / "host" to an op-time
/// table, using `storage` for tables that have to be built on the fly.
const platform::OpTimeTable* resolve_platform(const std::string& platform_name,
                                              platform::OpTimeTable& storage) {
  const platform::OpTimeTable* table = platform::platform_by_name(platform_name);
  if (table) return table;
  if (platform_name == "host") {
    std::fprintf(stderr, "characterizing host...\n");
    storage = platform::run_microbenchmark();
    return &storage;
  }
  if (!platform_name.empty() && platform_name[0] == '@') {
    const auto text = read_file(platform_name.substr(1));
    if (!text) {
      std::fprintf(stderr, "luis: cannot read %s\n", platform_name.c_str() + 1);
      return nullptr;
    }
    const auto parsed_table = platform::parse_optime_table(*text);
    if (!parsed_table) {
      std::fprintf(stderr, "luis: malformed op-time table file\n");
      return nullptr;
    }
    storage = *parsed_table;
    return &storage;
  }
  std::fprintf(stderr, "luis: unknown platform '%s'\n", platform_name.c_str());
  return nullptr;
}

/// Applies a Table III preset by name, preserving flag-driven fields.
bool apply_config_preset(const std::string& config_name,
                         core::TuningConfig& config) {
  if (config_name == "Balanced") return true;
  const bool literal = config.literal_model;
  const auto types = config.types;
  if (config_name == "Fast") {
    config = core::TuningConfig::fast();
  } else if (config_name == "Precise") {
    config = core::TuningConfig::precise();
  } else if (config_name == "Multi") {
    // Multi's whole point is its registry-derived candidate set, so it
    // overrides --types instead of preserving it.
    config = core::TuningConfig::multi();
    config.literal_model = literal;
    return true;
  } else {
    std::fprintf(stderr, "luis: unknown config '%s'\n", config_name.c_str());
    return false;
  }
  config.literal_model = literal;
  config.types = types;
  return true;
}

/// Parses a --types list into `config.types`; false on unknown formats
/// (the registry's parser diagnostics name the offending token and point
/// at `luis formats`).
bool parse_types_list(const std::string& list, core::TuningConfig& config) {
  config.types.clear();
  for (const std::string& tok : split_fields(list, ',')) {
    std::string error;
    const auto fmt = numrep::parse_format(std::string(trim(tok)), &error);
    if (!fmt) {
      std::fprintf(stderr, "luis: %s\n", error.c_str());
      return false;
    }
    config.types.push_back(*fmt);
  }
  return true;
}

/// Deterministic inputs for `run`: every array is filled from its range
/// annotation with a fixed-seed generator, so runs are reproducible.
interp::ArrayStore synth_inputs(const ir::Function& f) {
  interp::ArrayStore store;
  Rng rng(0xC0FFEE);
  for (const auto& arr : f.arrays()) {
    double lo = 0.0, hi = 1.0;
    if (arr->range_annotation()) {
      lo = arr->range_annotation()->first;
      hi = arr->range_annotation()->second;
    }
    auto& buf = store[arr->name()];
    for (std::int64_t i = 0; i < arr->element_count(); ++i)
      buf.push_back(rng.next_double(lo, hi));
  }
  return store;
}

void print_array_summary(const interp::ArrayStore& store) {
  for (const auto& [name, buf] : store) {
    double sum = 0.0, mn = buf.empty() ? 0 : buf[0], mx = mn;
    for (double v : buf) {
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    std::printf("  %-12s n=%-6zu sum=%-14.8g min=%-12.6g max=%-12.6g\n",
                name.c_str(), buf.size(), sum, mn, mx);
  }
}

int cmd_kernels() {
  for (const std::string& name : polybench::kernel_names())
    std::printf("%s\n", name.c_str());
  return 0;
}

const char* format_class_label(numrep::FormatClass cls) {
  switch (cls) {
  case numrep::FormatClass::FixedPoint: return "fixed";
  case numrep::FormatClass::FloatingPoint: return "float";
  case numrep::FormatClass::Posit: return "posit";
  case numrep::FormatClass::FixedPosit: return "fixed-posit";
  default: return "ext";
  }
}

int cmd_formats() {
  const numrep::FormatRegistry& reg = numrep::FormatRegistry::instance();
  std::printf("%-16s %-11s %5s %4s %-8s %13s %13s\n", "name", "class", "width",
              "exec", "cost", "max", "minpos");
  for (const numrep::NumericFormat& f : reg.formats()) {
    const numrep::FormatClassOps& ops = reg.ops(f.format_class());
    // Fixed point's range depends on the per-variable fractional split;
    // report the integer-only layout (frac = 0) for it.
    const numrep::ConcreteType t{f, 0};
    std::printf("%-16s %-11s %5d %4s %-8s %13.6g %13.6g\n", f.name().c_str(),
                format_class_label(f.format_class()), f.width(),
                ops.executable(f) ? "yes" : "no", ops.cost_class(f).c_str(),
                ops.max_value(t), ops.min_positive(t));
  }
  return 0;
}

int cmd_emit(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  std::string out_path;
  for (std::size_t i = 1; i + 1 < args.size() + 1; ++i)
    if (args[i - 1] == "-o" && i < args.size()) out_path = args[i];
  ir::Module module;
  polybench::BuiltKernel kernel = polybench::build_kernel(args[0], module);
  const std::string text = ir::print_function(*kernel.function);
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream os(out_path);
    os << text;
    std::printf("wrote %s (%zu instructions)\n", out_path.c_str(),
                kernel.function->instruction_count());
  }
  return 0;
}

int cmd_print(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  ir::Module module;
  ir::Function* f = parse_or_die(module, args[0]);
  if (!f) return 1;
  // Print even when broken (the text is the debugging aid), but report the
  // problems and fail so scripted use catches them.
  std::fputs(ir::print_function(*f).c_str(), stdout);
  const ir::VerifyResult vr = ir::verify(*f);
  if (!vr.ok()) {
    std::fputs(vr.message().c_str(), stderr);
    return 1;
  }
  return 0;
}

int cmd_verify(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  ir::Module module;
  ir::Function* f = parse_or_die(module, args[0]);
  if (!f) return 1;
  const ir::VerifyResult vr = ir::verify(*f);
  if (vr.ok()) {
    std::printf("%s: OK (%zu blocks, %zu instructions, %zu arrays)\n",
                f->name().c_str(), f->blocks().size(), f->instruction_count(),
                f->arrays().size());
    return 0;
  }
  std::fputs(vr.message().c_str(), stderr);
  return 1;
}

int cmd_ranges(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  ir::Module module;
  ir::Function* f = parse_and_verify_or_die(module, args[0]);
  if (!f) return 1;
  const vra::RangeMap ranges = vra::analyze_ranges(*f);
  const auto ids = ir::number_instructions(*f);
  for (const auto& arr : f->arrays())
    std::printf("@%-10s %s\n", arr->name().c_str(),
                ranges.of(arr.get()).to_string().c_str());
  for (const auto& bb : f->blocks())
    for (const auto& inst : bb->instructions())
      if (inst->type() == ir::ScalarType::Real)
        std::printf("%%%-10d %s\n", ids.at(inst.get()),
                    ranges.of(inst.get()).to_string().c_str());
  return 0;
}

int cmd_tune(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string path = args[0];
  std::string platform_name = "Stm32", config_name = "Balanced", out_path;
  std::string assignment_path;
  core::TuningConfig config = core::TuningConfig::balanced();
  core::PipelineOptions options;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      return ++i < args.size() ? args[i] : std::string();
    };
    if (a == "--platform") {
      platform_name = next();
    } else if (a == "--platform-file") {
      platform_name = "@" + next();
    } else if (a == "--config") {
      config_name = next();
    } else if (a == "--literal") {
      config.literal_model = true;
    } else if (a == "--optimize") {
      options.optimize_ir = true;
    } else if (a == "-o") {
      out_path = next();
      options.materialize_casts = true;
    } else if (a == "--save-assignment") {
      assignment_path = next();
    } else if (a == "--lint=warn") {
      options.lint = core::LintMode::Warn;
    } else if (a == "--lint=error") {
      options.lint = core::LintMode::Error;
    } else if (a == "--types") {
      if (!parse_types_list(next(), config)) return 2;
    } else if (a == "--vra-max-passes") {
      options.vra.max_passes = std::atoi(next().c_str());
    } else if (a == "--vra-widen-after") {
      options.vra.widen_after = std::atoi(next().c_str());
    } else if (a == "--vra-clamp") {
      options.vra.clamp = std::atof(next().c_str());
    } else if (a == "--join-stores") {
      options.vra.join_stores = true;
    } else {
      std::fprintf(stderr, "luis: unknown option '%s'\n", a.c_str());
      return 2;
    }
  }
  if (!apply_config_preset(config_name, config)) return 2;

  platform::OpTimeTable storage;
  const platform::OpTimeTable* table = resolve_platform(platform_name, storage);
  if (!table) return 2;

  ir::Module module;
  ir::Function* f = parse_and_verify_or_die(module, path);
  if (!f) return 1;

  const core::PipelineResult tuned = core::tune_kernel(*f, *table, config, options);
  std::printf("pipeline: %d IR rewrites, VRA %.2f ms, allocation %.2f ms "
              "(%zu vars x %zu rows, %ld nodes, %s)\n",
              tuned.ir_changes, tuned.timings.vra_seconds * 1e3,
              tuned.timings.allocation_seconds * 1e3,
              tuned.allocation.stats.model_variables,
              tuned.allocation.stats.model_constraints,
              tuned.allocation.stats.nodes,
              ilp::to_string(tuned.allocation.stats.status));
  std::printf("classes: %d over %d registers, %d uses; casts inserted: %d\n",
              tuned.allocation.stats.num_classes,
              tuned.allocation.stats.num_registers,
              tuned.allocation.stats.num_uses, tuned.casts_inserted);
  std::printf("instruction mix:");
  for (const auto& [cls, count] : tuned.allocation.stats.instruction_mix)
    std::printf(" %s=%d", cls.c_str(), count);
  std::printf("\narray types:\n");
  for (const auto& arr : f->arrays())
    std::printf("  @%-10s %s\n", arr->name().c_str(),
                tuned.allocation.assignment.of(arr.get()).name().c_str());

  if (!assignment_path.empty()) {
    std::ofstream os(assignment_path);
    os << core::assignment_to_text(*f, tuned.allocation.assignment);
    std::printf("wrote type assignment to %s\n", assignment_path.c_str());
  }
  if (!out_path.empty()) {
    std::ofstream os(out_path);
    os << ir::print_function(*f);
    std::printf("wrote tuned IR (explicit casts) to %s\n", out_path.c_str());
  }
  if (options.lint != core::LintMode::Off) {
    std::printf("lint: %.2f ms\n%s", tuned.timings.lint_seconds * 1e3,
                tuned.lint.to_text().c_str());
    if (!tuned.lint_ok) {
      std::fprintf(stderr, "luis: lint found error-severity diagnostics\n");
      return 1;
    }
  }
  return 0;
}

int cmd_lint(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string path = args[0];
  std::string platform_name = "Stm32", config_name = "Balanced";
  std::string assignment_path, format = "text";
  bool materialize = false, werror = false;
  core::TuningConfig config = core::TuningConfig::balanced();
  analysis::LintOptions lint_options;
  core::PipelineOptions options;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      return ++i < args.size() ? args[i] : std::string();
    };
    if (a == "--platform") {
      platform_name = next();
    } else if (a == "--platform-file") {
      platform_name = "@" + next();
    } else if (a == "--config") {
      config_name = next();
    } else if (a == "--literal") {
      config.literal_model = true;
    } else if (a == "--optimize") {
      options.optimize_ir = true;
    } else if (a == "--materialize") {
      materialize = true;
    } else if (a == "--assignment") {
      assignment_path = next();
    } else if (a == "--format") {
      format = next();
    } else if (a == "--threshold") {
      lint_options.precision_loss_threshold = std::atoi(next().c_str());
    } else if (a == "--max-rel-error") {
      lint_options.max_rel_error = std::atof(next().c_str());
    } else if (a == "--werror") {
      werror = true;
    } else if (a == "--types") {
      if (!parse_types_list(next(), config)) return 2;
    } else if (a == "--vra-max-passes") {
      options.vra.max_passes = std::atoi(next().c_str());
    } else if (a == "--vra-widen-after") {
      options.vra.widen_after = std::atoi(next().c_str());
    } else if (a == "--vra-clamp") {
      options.vra.clamp = std::atof(next().c_str());
    } else if (a == "--join-stores") {
      options.vra.join_stores = true;
    } else {
      std::fprintf(stderr, "luis: unknown option '%s'\n", a.c_str());
      return 2;
    }
  }
  if (format != "text" && format != "json") {
    std::fprintf(stderr, "luis: unknown lint format '%s'\n", format.c_str());
    return 2;
  }
  if (!apply_config_preset(config_name, config)) return 2;

  ir::Module module;
  ir::Function* f = parse_and_verify_or_die(module, path);
  if (!f) return 1;

  analysis::DiagnosticEngine engine;
  if (!assignment_path.empty()) {
    // Lint a saved (possibly hand-edited) assignment against this IR.
    const auto text = read_file(assignment_path);
    if (!text) {
      std::fprintf(stderr, "luis: cannot read %s\n", assignment_path.c_str());
      return 1;
    }
    const core::AssignmentParseResult parsed =
        core::assignment_from_text(*f, *text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "luis: %s: %s\n", assignment_path.c_str(),
                   parsed.error.c_str());
      return 1;
    }
    const vra::RangeMap ranges = vra::analyze_ranges(*f, options.vra);
    const analysis::ErrorAnalysisResult errors =
        analysis::analyze_errors(*f, parsed.assignment, ranges);
    engine = analysis::run_lint(*f, parsed.assignment, ranges, lint_options,
                                &errors.errors);
  } else {
    platform::OpTimeTable storage;
    const platform::OpTimeTable* table =
        resolve_platform(platform_name, storage);
    if (!table) return 2;
    options.materialize_casts = materialize;
    options.lint = core::LintMode::Error;
    options.lint_options = lint_options;
    options.analyze_errors = true;
    const core::PipelineResult tuned =
        core::tune_kernel(*f, *table, config, options);
    engine = tuned.lint;
  }

  std::fputs(format == "json" ? engine.to_json().c_str()
                              : engine.to_text().c_str(),
             stdout);
  if (engine.has_errors() || (werror && engine.has_warnings())) return 1;
  return 0;
}

/// `luis check`: static rounding-error certification. Runs the pipeline
/// (or loads a saved assignment), then the error-bound analysis, and
/// reports a certified worst-case absolute/relative bound per array. With
/// --max-rel-error the exit status enforces the budget on output arrays.
int cmd_check(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string path = args[0];
  std::string platform_name = "Stm32", config_name = "Balanced";
  std::string assignment_path, json_path, format = "text";
  double max_rel_error = std::numeric_limits<double>::infinity();
  core::TuningConfig config = core::TuningConfig::balanced();
  core::PipelineOptions options;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      return ++i < args.size() ? args[i] : std::string();
    };
    if (a == "--platform") {
      platform_name = next();
    } else if (a == "--platform-file") {
      platform_name = "@" + next();
    } else if (a == "--config") {
      config_name = next();
    } else if (a == "--literal") {
      config.literal_model = true;
    } else if (a == "--optimize") {
      options.optimize_ir = true;
    } else if (a == "--assignment") {
      assignment_path = next();
    } else if (a == "--max-rel-error") {
      max_rel_error = std::atof(next().c_str());
    } else if (a == "--format") {
      format = next();
    } else if (a == "--json") {
      json_path = next();
    } else if (a == "--types") {
      if (!parse_types_list(next(), config)) return 2;
    } else if (a == "--vra-max-passes") {
      options.vra.max_passes = std::atoi(next().c_str());
    } else if (a == "--vra-widen-after") {
      options.vra.widen_after = std::atoi(next().c_str());
    } else if (a == "--vra-clamp") {
      options.vra.clamp = std::atof(next().c_str());
    } else if (a == "--join-stores") {
      options.vra.join_stores = true;
    } else {
      std::fprintf(stderr, "luis: unknown option '%s'\n", a.c_str());
      return 2;
    }
  }
  if (format != "text" && format != "json") {
    std::fprintf(stderr, "luis: unknown check format '%s'\n", format.c_str());
    return 2;
  }
  if (!apply_config_preset(config_name, config)) return 2;

  ir::Module module;
  ir::Function* f = parse_and_verify_or_die(module, path);
  if (!f) return 1;

  interp::TypeAssignment assignment;
  vra::RangeMap ranges;
  analysis::ErrorAnalysisResult errors;
  std::string source = "pipeline";
  if (!assignment_path.empty()) {
    source = "assignment";
    const auto text = read_file(assignment_path);
    if (!text) {
      std::fprintf(stderr, "luis: cannot read %s\n", assignment_path.c_str());
      return 1;
    }
    const core::AssignmentParseResult parsed =
        core::assignment_from_text(*f, *text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "luis: %s: %s\n", assignment_path.c_str(),
                   parsed.error.c_str());
      return 1;
    }
    assignment = parsed.assignment;
    ranges = vra::analyze_ranges(*f, options.vra);
    errors = analysis::analyze_errors(*f, assignment, ranges);
  } else {
    platform::OpTimeTable storage;
    const platform::OpTimeTable* table =
        resolve_platform(platform_name, storage);
    if (!table) return 2;
    options.analyze_errors = true;
    const core::PipelineResult tuned =
        core::tune_kernel(*f, *table, config, options);
    assignment = tuned.allocation.assignment;
    ranges = tuned.ranges;
    errors = tuned.errors;
  }

  // The caller observes the arrays the kernel writes; those are the
  // values the certificate (and the budget) is about.
  std::set<const ir::Value*> outputs;
  for (const auto& bb : f->blocks())
    for (const auto& inst : bb->instructions())
      if (inst->opcode() == ir::Opcode::Store)
        outputs.insert(inst->operand(1));

  double worst_rel = 0.0;
  bool all_outputs_finite = true, budget_ok = true;
  for (const auto& arr : f->arrays()) {
    if (outputs.count(arr.get()) == 0) continue;
    const double abs = errors.errors.of(arr.get());
    const double rel = errors.relative(arr.get(), ranges);
    worst_rel = std::max(worst_rel, rel);
    if (!std::isfinite(abs)) all_outputs_finite = false;
    if (rel > max_rel_error) budget_ok = false;
  }

  const auto error_value = [](JsonWriter& w, double v) {
    if (std::isfinite(v)) w.value(v, "%.17g");
    else w.value("unbounded");
  };
  JsonWriter w;
  w.begin_object();
  w.newline();
  w.key("build");
  w.raw_value(obs::build_info_json());
  w.newline();
  w.key("function");
  w.value(f->name());
  w.key("source");
  w.value(source);
  w.key("config");
  w.value(config.name);
  w.newline();
  w.key("vra");
  w.begin_object();
  w.key("max_passes");
  w.value(options.vra.max_passes);
  w.key("widen_after");
  w.value(options.vra.widen_after);
  w.key("clamp");
  w.value(options.vra.clamp, "%.17g");
  w.key("join_stores");
  w.value(options.vra.join_stores);
  w.end_object();
  w.newline();
  w.key("error_analysis");
  w.begin_object();
  w.key("passes");
  w.value(errors.stats.passes);
  w.key("transfers");
  w.value(errors.stats.transfers);
  w.key("widenings");
  w.value(errors.stats.widenings);
  w.key("converged");
  w.value(errors.stats.converged);
  w.key("divergent_control");
  w.value(errors.divergent_control);
  w.key("capped_bounds");
  w.value(errors.capped_bounds);
  w.key("assumes_finite_run");
  w.value(errors.assumes_finite_run);
  w.end_object();
  w.newline();
  w.key("max_rel_error");
  if (std::isfinite(max_rel_error)) w.value(max_rel_error, "%.17g");
  else w.raw_value("null");
  w.newline();
  w.key("arrays");
  w.begin_array();
  for (const auto& arr : f->arrays()) {
    const vra::Interval range = ranges.of(arr.get());
    w.newline();
    w.indent(2);
    w.begin_object();
    w.key("name");
    w.value(arr->name());
    w.key("type");
    w.value(assignment.of(arr.get()).name());
    w.key("output");
    w.value(outputs.count(arr.get()) > 0);
    w.key("lo");
    w.value(range.lo, "%.17g");
    w.key("hi");
    w.value(range.hi, "%.17g");
    w.key("abs_error");
    error_value(w, errors.errors.of(arr.get()));
    w.key("rel_error");
    error_value(w, errors.relative(arr.get(), ranges));
    w.end_object();
  }
  w.newline();
  w.end_array();
  w.newline();
  w.key("worst_output_rel_error");
  error_value(w, worst_rel);
  w.key("certified");
  w.value(all_outputs_finite);
  w.key("budget_ok");
  w.value(budget_ok);
  w.newline();
  w.end_object();
  w.newline();

  if (format == "json") {
    std::fputs(w.str().c_str(), stdout);
  } else {
    std::printf("check: %s (%s, %s), error analysis %s in %d passes "
                "(%ld widenings)%s%s\n",
                f->name().c_str(), source.c_str(), config.name.c_str(),
                errors.stats.converged ? "converged" : "NOT CONVERGED",
                errors.stats.passes, errors.stats.widenings,
                errors.divergent_control ? ", divergent control flow" : "",
                errors.assumes_finite_run ? ", assumes finite run" : "");
    if (errors.capped_bounds > 0)
      std::printf("  %ld bound(s) saturated at the representation cap\n",
                  errors.capped_bounds);
    for (const auto& arr : f->arrays()) {
      const vra::Interval range = ranges.of(arr.get());
      std::printf("  @%-10s %-14s range [%-11.6g, %-11.6g] abs %-12.6g "
                  "rel %-12.6g%s\n",
                  arr->name().c_str(),
                  assignment.of(arr.get()).name().c_str(), range.lo, range.hi,
                  errors.errors.of(arr.get()),
                  errors.relative(arr.get(), ranges),
                  outputs.count(arr.get()) ? "  (output)" : "");
    }
    std::printf("worst output rel error: %g%s\n", worst_rel,
                all_outputs_finite ? "" : " (UNBOUNDED)");
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::fprintf(stderr, "luis check: cannot write %s\n", json_path.c_str());
      return 1;
    }
    os << w.str();
    if (format != "json") std::printf("wrote %s\n", json_path.c_str());
  }

  if (!budget_ok) {
    std::fprintf(stderr,
                 "luis check: certified relative error %g exceeds budget %g\n",
                 worst_rel, max_rel_error);
    return 1;
  }
  return 0;
}

int cmd_apply(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  interp::EngineKind engine_kind = interp::EngineKind::Vm;
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--engine" && i + 1 < args.size()) {
      const auto kind = engine_or_die(args[++i]);
      if (!kind) return 2;
      engine_kind = *kind;
    }
  }
  ir::Module module;
  ir::Function* f = parse_and_verify_or_die(module, args[0]);
  if (!f) return 1;
  const auto text = read_file(args[1]);
  if (!text) {
    std::fprintf(stderr, "luis: cannot read %s\n", args[1].c_str());
    return 1;
  }
  const core::AssignmentParseResult parsed =
      core::assignment_from_text(*f, *text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "luis: %s: %s\n", args[1].c_str(),
                 parsed.error.c_str());
    return 1;
  }
  interp::ArrayStore store = synth_inputs(*f);
  const auto engine = interp::make_engine(engine_kind);
  const interp::RunResult run = engine->run(*f, parsed.assignment, store);
  if (!run.ok) {
    std::fprintf(stderr, "luis: execution failed: %s\n", run.error.c_str());
    return 1;
  }
  std::printf("executed %ld steps under the saved assignment\n", run.steps);
  print_array_summary(store);
  return 0;
}

int cmd_run(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  numrep::ConcreteType type{numrep::kBinary64, 0};
  interp::EngineKind engine_kind = interp::EngineKind::Vm;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--type" && i + 1 < args.size()) {
      const auto fmt = numrep::parse_format(args[++i]);
      if (!fmt) {
        std::fprintf(stderr, "luis: unknown format '%s'\n", args[i].c_str());
        return 2;
      }
      type.format = *fmt;
      if (fmt->is_fixed()) type.frac_bits = fmt->width() / 2;
    } else if (args[i] == "--engine" && i + 1 < args.size()) {
      const auto kind = engine_or_die(args[++i]);
      if (!kind) return 2;
      engine_kind = *kind;
    }
  }
  ir::Module module;
  ir::Function* f = parse_and_verify_or_die(module, args[0]);
  if (!f) return 1;
  interp::ArrayStore store = synth_inputs(*f);
  const interp::TypeAssignment types = interp::TypeAssignment::uniform(*f, type);
  const auto engine = interp::make_engine(engine_kind);
  const interp::RunResult run = engine->run(*f, types, store);
  if (!run.ok) {
    std::fprintf(stderr, "luis: execution failed: %s\n", run.error.c_str());
    return 1;
  }
  std::printf("executed %ld steps (%ld real ops) in %s\n", run.steps,
              run.counters.total_real_ops(), type.name().c_str());
  print_array_summary(store);
  return 0;
}

int cmd_disasm(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  numrep::ConcreteType type{numrep::kBinary64, 0};
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--type" && i + 1 < args.size()) {
      const auto fmt = numrep::parse_format(args[++i]);
      if (!fmt) {
        std::fprintf(stderr, "luis: unknown format '%s'\n", args[i].c_str());
        return 2;
      }
      type.format = *fmt;
      if (fmt->is_fixed()) type.frac_bits = fmt->width() / 2;
    }
  }
  ir::Module module;
  ir::Function* f = parse_and_verify_or_die(module, args[0]);
  if (!f) return 1;
  const interp::TypeAssignment types = interp::TypeAssignment::uniform(*f, type);
  const interp::CompiledProgram program =
      interp::compile_program(*f, types, {});
  std::fputs(interp::disassemble(program).c_str(), stdout);
  return 0;
}

int cmd_compile(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  std::string out_path;
  for (std::size_t i = 1; i + 1 < args.size() + 1; ++i)
    if (args[i - 1] == "-o" && i < args.size()) out_path = args[i];
  const auto source = read_file(args[0]);
  if (!source) {
    std::fprintf(stderr, "luis: cannot read %s\n", args[0].c_str());
    return 1;
  }
  ir::Module module;
  const frontend::CompileResult r = frontend::compile_kernel(module, *source);
  if (!r.ok()) {
    std::fprintf(stderr, "luis: %s:%d:%d: %s\n", args[0].c_str(), r.line,
                 r.column, r.error.c_str());
    return 1;
  }
  const ir::VerifyResult vr = ir::verify(*r.function);
  if (!vr.ok()) {
    std::fputs(vr.message().c_str(), stderr);
    return 1;
  }
  const std::string text = ir::print_function(*r.function);
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream os(out_path);
    os << text;
    std::printf("compiled %s -> %s (%zu instructions)\n", args[0].c_str(),
                out_path.c_str(), r.function->instruction_count());
  }
  return 0;
}

int cmd_characterize(const std::vector<std::string>& args) {
  std::string out_path;
  for (std::size_t i = 1; i + 1 < args.size() + 1; ++i)
    if (args[i - 1] == "-o" && i < args.size()) out_path = args[i];
  const platform::OpTimeTable host = platform::run_microbenchmark();
  if (!out_path.empty()) {
    std::ofstream os(out_path);
    os << host.to_text();
    std::printf("wrote characterization to %s\n", out_path.c_str());
    return 0;
  }
  for (const auto& [key, time] : host.entries())
    std::printf("%-12s %-8s %8.2f\n", key.first.c_str(), key.second.c_str(),
                time);
  return 0;
}

int cmd_sweep(const std::vector<std::string>& args) {
  core::SweepOptions opt;
  opt.verbose = true; // --quiet turns the progress lines off
  std::string json_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const bool has_value = i + 1 < args.size();
    if (a == "--kernels" && has_value) {
      opt.kernels = split_fields(args[++i], ',');
    } else if (a == "--configs" && has_value) {
      opt.configs = split_fields(args[++i], ',');
    } else if (a == "--platforms" && has_value) {
      opt.platforms = split_fields(args[++i], ',');
    } else if (a == "--threads" && has_value) {
      opt.threads = std::atoi(args[++i].c_str());
    } else if (a == "--max-nodes" && has_value) {
      opt.solver_max_nodes = std::atol(args[++i].c_str());
    } else if (a == "--no-taffo") {
      opt.include_taffo = false;
    } else if (a == "--engine" && has_value) {
      opt.engine = args[++i];
      if (!engine_or_die(opt.engine)) return 2;
    } else if (a == "--no-cache") {
      opt.use_cache = false;
    } else if (a == "--no-check") {
      opt.check_determinism = false;
    } else if (a == "--no-batch") {
      opt.batch = false;
    } else if (a == "--errors") {
      opt.errors = true;
    } else if (a == "--json" && has_value) {
      json_path = args[++i];
    } else if (a == "--vra-max-passes" && has_value) {
      opt.vra.max_passes = std::atoi(args[++i].c_str());
    } else if (a == "--vra-widen-after" && has_value) {
      opt.vra.widen_after = std::atoi(args[++i].c_str());
    } else if (a == "--vra-clamp" && has_value) {
      opt.vra.clamp = std::atof(args[++i].c_str());
    } else if (a == "--join-stores") {
      opt.vra.join_stores = true;
    } else if (a == "--quiet") {
      opt.verbose = false;
    } else {
      std::fprintf(stderr, "luis sweep: unknown option %s\n", a.c_str());
      return usage();
    }
  }
  const core::SweepResult result = core::run_sweep(opt);

  std::printf("%-14s %-9s %-10s %10s %10s %9s %6s%s\n", "kernel", "config",
              "platform", "speedup%", "mpe%", "tune[ms]", "nodes",
              opt.errors ? "   shadow-mpe%    max-rel  div" : "");
  for (const core::SweepJobResult& job : result.jobs) {
    if (!job.ok) {
      std::printf("%-14s %-9s %-10s FAILED: %s\n", job.kernel.c_str(),
                  job.config.c_str(), job.platform.c_str(), job.error.c_str());
      continue;
    }
    std::printf("%-14s %-9s %-10s %10.2f %10.3g %9.2f %6ld",
                job.kernel.c_str(), job.config.c_str(), job.platform.c_str(),
                job.speedup_percent, job.mpe,
                job.timings.allocation_seconds * 1e3, job.stats.nodes);
    if (job.errors_profiled)
      std::printf(" %12.3g %10.3g %4ld", job.shadow_mpe, job.max_rel_error,
                  job.control_divergences);
    std::printf("\n");
  }
  std::printf("\n%s", core::sweep_summary_text(result).c_str());

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::fprintf(stderr, "luis sweep: cannot write %s\n", json_path.c_str());
      return 1;
    }
    os << core::sweep_report_json(result);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (result.stats.failed > 0) return 1;
  if (result.stats.determinism_mismatches > 0) return 1;
  return 0;
}

int cmd_fuzz(const std::vector<std::string>& args) {
  testing::CampaignOptions opt;
  opt.artifacts_dir = "fuzz-artifacts";
  opt.verbose = true;
  std::string corpus_dir;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const bool has_value = i + 1 < args.size();
    if (a == "--target" && has_value) {
      const std::string target = args[++i];
      if (target == "ilp") {
        opt.targets = {testing::FuzzTarget::Ilp};
      } else if (target == "ir") {
        opt.targets = {testing::FuzzTarget::Ir};
      } else if (target == "numrep") {
        opt.targets = {testing::FuzzTarget::Numrep};
      } else if (target == "error") {
        opt.targets = {testing::FuzzTarget::ErrorBounds};
      } else if (target != "all") {
        std::fprintf(stderr, "luis fuzz: unknown target '%s'\n", target.c_str());
        return 2;
      }
    } else if (a == "--trials" && has_value) {
      opt.trials = std::atol(args[++i].c_str());
    } else if (a == "--seconds" && has_value) {
      opt.seconds = std::atof(args[++i].c_str());
    } else if (a == "--seed" && has_value) {
      opt.seed = std::strtoull(args[++i].c_str(), nullptr, 0);
    } else if (a == "--artifacts" && has_value) {
      opt.artifacts_dir = args[++i];
    } else if (a == "--corpus" && has_value) {
      corpus_dir = args[++i];
    } else if (a == "--engine" && has_value) {
      const auto kind = engine_or_die(args[++i]);
      if (!kind) return 2;
      opt.engine = *kind;
    } else if (a == "--quiet") {
      opt.verbose = false;
    } else {
      std::fprintf(stderr, "luis fuzz: unknown option %s\n", a.c_str());
      return usage();
    }
  }

  int failures = 0;
  if (!corpus_dir.empty()) {
    const testing::CorpusResult corpus =
        testing::replay_corpus(corpus_dir, opt.engine);
    if (!corpus.error.empty()) {
      std::fprintf(stderr, "luis fuzz: %s\n", corpus.error.c_str());
      return 1;
    }
    for (const auto& entry : corpus.entries) {
      if (entry.result.ok) continue;
      ++failures;
      std::printf("corpus FAIL %s: %s\n", entry.path.c_str(),
                  entry.result.message.c_str());
    }
    std::printf("corpus: %zu seed files, %d failing\n", corpus.entries.size(),
                failures);
  }

  const testing::CampaignResult result = testing::run_campaign(opt);
  std::printf("fuzz: %ld trials/target over %zu targets, %zu failures\n",
              result.trials, opt.targets.size(), result.failures.size());
  for (const testing::FuzzFailure& f : result.failures) {
    std::printf("FAIL [%s] seed %016llx: %s\n", testing::to_string(f.target),
                static_cast<unsigned long long>(f.seed), f.message.c_str());
    if (!f.artifact_path.empty())
      std::printf("  minimized repro written to %s\n", f.artifact_path.c_str());
  }
  return failures == 0 && result.ok() ? 0 : 1;
}

int cmd_profile(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string path = args[0];
  std::string platform_name = "Stm32", assignment_path, json_path;
  numrep::ConcreteType type{numrep::kBinary64, 0};
  std::size_t top = 20;
  bool with_errors = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      return ++i < args.size() ? args[i] : std::string();
    };
    if (a == "--platform") {
      platform_name = next();
    } else if (a == "--platform-file") {
      platform_name = "@" + next();
    } else if (a == "--type") {
      const std::string name = next();
      const auto fmt = numrep::parse_format(name);
      if (!fmt) {
        std::fprintf(stderr, "luis: unknown format '%s'\n", name.c_str());
        return 2;
      }
      type.format = *fmt;
      if (fmt->is_fixed()) type.frac_bits = fmt->width() / 2;
    } else if (a == "--assignment") {
      assignment_path = next();
    } else if (a == "--top") {
      top = static_cast<std::size_t>(std::atol(next().c_str()));
    } else if (a == "--json") {
      json_path = next();
    } else if (a == "--errors") {
      with_errors = true;
    } else {
      std::fprintf(stderr, "luis profile: unknown option %s\n", a.c_str());
      return usage();
    }
  }

  platform::OpTimeTable storage;
  const platform::OpTimeTable* table = resolve_platform(platform_name, storage);
  if (!table) return 2;

  ir::Module module;
  ir::Function* f = parse_and_verify_or_die(module, path);
  if (!f) return 1;

  interp::TypeAssignment types = interp::TypeAssignment::uniform(*f, type);
  if (!assignment_path.empty()) {
    const auto text = read_file(assignment_path);
    if (!text) {
      std::fprintf(stderr, "luis: cannot read %s\n", assignment_path.c_str());
      return 1;
    }
    const core::AssignmentParseResult parsed =
        core::assignment_from_text(*f, *text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "luis: %s: %s\n", assignment_path.c_str(),
                   parsed.error.c_str());
      return 1;
    }
    types = parsed.assignment;
  }

  const interp::CompiledProgram program = interp::compile_program(*f, types, {});
  interp::ArrayStore store = synth_inputs(*f);
  interp::VmProfile profile;
  interp::ErrorProfile errors;
  interp::RunOptions ropt;
  ropt.vm_profile = &profile;
  if (with_errors) ropt.error_profile = &errors;
  const interp::RunResult run = interp::run_program(program, *f, store, ropt);
  if (!run.ok) {
    std::fprintf(stderr, "luis: execution failed: %s\n", run.error.c_str());
    return 1;
  }

  const obs::HotSpotReport report =
      obs::build_hotspot_report(program, *f, profile, *table);
  std::fputs(obs::hotspot_text(report, top).c_str(), stdout);

  // The report's attribution is exact by construction; cross-check it
  // against the cost model so a drift between the two is loud, not silent.
  const double simulated = platform::simulated_time(run.counters, *table);
  const double drift = std::abs(report.total_cost - simulated);
  if (drift > 1e-9 * std::max(1.0, std::abs(simulated))) {
    std::fprintf(stderr,
                 "luis profile: attribution drift: report %.17g vs "
                 "simulated %.17g\n",
                 report.total_cost, simulated);
    return 1;
  }

  int exit_code = 0;
  std::string json_doc = obs::hotspot_json(report);
  if (with_errors) {
    // The per-line error table, priced next to the time table: same
    // ordinals, so the two reports line up row for row.
    const obs::ErrorReport erep = obs::build_error_report(program, *f, errors);
    std::fputs(obs::error_report_text(erep, top).c_str(), stdout);
    const analysis::CertificateCrossCheck cert =
        analysis::cross_check_certificates(*f, types, errors.arrays,
                                           errors.control_divergences);
    std::fputs(analysis::certificate_check_text(cert).c_str(), stdout);
    if (cert.any_violation) exit_code = 1;
    JsonWriter w;
    w.begin_object();
    w.newline();
    w.key("hotspots");
    w.raw_value(json_doc);
    w.key("errors");
    w.raw_value(obs::error_report_json(erep));
    w.key("certificate_check");
    w.raw_value(analysis::certificate_check_json(cert));
    w.newline();
    w.end_object();
    w.newline();
    json_doc = w.take();
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::fprintf(stderr, "luis profile: cannot write %s\n", json_path.c_str());
      return 1;
    }
    os << json_doc;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return exit_code;
}

int cmd_version() {
  std::printf("%s\n", obs::version_string().c_str());
  return 0;
}

/// Extracts the process-global observability flags (usable with any verb)
/// from the raw argument list, leaving the verb and its own options in
/// `rest`. Returns false (after reporting) on a malformed value.
bool extract_global_flags(const std::vector<std::string>& all,
                          std::vector<std::string>& rest,
                          std::string& trace_path, std::string& metrics_path) {
  for (std::size_t i = 0; i < all.size(); ++i) {
    const std::string& a = all[i];
    auto value_of = [&](const char* flag, std::string& out) {
      const std::string eq = std::string(flag) + "=";
      if (a.compare(0, eq.size(), eq) == 0) {
        out = a.substr(eq.size());
        return true;
      }
      if (a == flag && i + 1 < all.size()) {
        out = all[++i];
        return true;
      }
      return false;
    };
    std::string level, core;
    if (value_of("--trace-out", trace_path)) continue;
    if (value_of("--metrics-out", metrics_path)) continue;
    if (value_of("--lp-core", core)) {
      if (core == "revised") {
        ilp::set_default_lp_core(ilp::LpCore::Revised);
      } else if (core == "dense") {
        ilp::set_default_lp_core(ilp::LpCore::Dense);
      } else {
        std::fprintf(stderr,
                     "luis: unknown LP core '%s' (want revised|dense)\n",
                     core.c_str());
        return false;
      }
      continue;
    }
    if (value_of("--log-level", level)) {
      const auto parsed = parse_log_level(level);
      if (!parsed) {
        std::fprintf(stderr,
                     "luis: unknown log level '%s' (want error|warn|info|"
                     "debug)\n",
                     level.c_str());
        return false;
      }
      set_log_level(*parsed);
      continue;
    }
    rest.push_back(a);
  }
  return true;
}

int run_command(const std::string& cmd, const std::vector<std::string>& args) {
  if (cmd == "kernels") return cmd_kernels();
  if (cmd == "formats") return cmd_formats();
  if (cmd == "emit") return cmd_emit(args);
  if (cmd == "print") return cmd_print(args);
  if (cmd == "verify") return cmd_verify(args);
  if (cmd == "ranges") return cmd_ranges(args);
  if (cmd == "tune") return cmd_tune(args);
  if (cmd == "lint") return cmd_lint(args);
  if (cmd == "check") return cmd_check(args);
  if (cmd == "run") return cmd_run(args);
  if (cmd == "disasm") return cmd_disasm(args);
  if (cmd == "compile") return cmd_compile(args);
  if (cmd == "apply") return cmd_apply(args);
  if (cmd == "characterize") return cmd_characterize(args);
  if (cmd == "sweep") return cmd_sweep(args);
  if (cmd == "fuzz") return cmd_fuzz(args);
  if (cmd == "profile") return cmd_profile(args);
  if (cmd == "version") return cmd_version();
  return usage();
}

} // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> all(argv + 1, argv + argc);
  std::vector<std::string> rest;
  std::string trace_path, metrics_path;
  if (!extract_global_flags(all, rest, trace_path, metrics_path)) return 2;
  if (rest.empty()) return usage();
  const std::string cmd = rest[0];
  const std::vector<std::string> args(rest.begin() + 1, rest.end());

  if (!trace_path.empty()) obs::trace().start();
  const int rc = run_command(cmd, args);

  if (!trace_path.empty()) {
    obs::trace().stop();
    if (!obs::trace().write_file(trace_path)) {
      std::fprintf(stderr, "luis: cannot write trace to %s\n",
                   trace_path.c_str());
      return rc != 0 ? rc : 1;
    }
    std::fprintf(stderr, "luis: wrote %zu trace events to %s\n",
                 obs::trace().event_count(), trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    if (os) {
      os << obs::metrics().to_json();
      std::fprintf(stderr, "luis: wrote metrics to %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "luis: cannot write metrics to %s\n",
                   metrics_path.c_str());
      return rc != 0 ? rc : 1;
    }
  }
  return rc;
}
