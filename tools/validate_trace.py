#!/usr/bin/env python3
"""Validates a LUIS Chrome trace-event file.

Checks that the file is valid JSON in the trace-event "JSON object format",
that every duration (B) event has a matching end (E) on the same thread,
that per-thread timestamps are monotonic, and optionally that spans from a
minimum number of distinct worker threads are present (--min-threads).

Exit status 0 on a valid trace, 1 otherwise. Used by the observability CI
job and the cli_trace_validates smoke test.
"""

import argparse
import json
import sys
from collections import defaultdict


def fail(msg):
    print("validate_trace: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="trace JSON file to validate")
    ap.add_argument("--min-threads", type=int, default=1,
                    help="require duration events from at least this many "
                         "distinct threads (default 1)")
    ap.add_argument("--require-name", action="append", default=[],
                    help="require at least one event with this name "
                         "(repeatable)")
    args = ap.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail("cannot parse %s: %s" % (args.trace, e))

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty array")
    if "build" not in doc:
        fail("missing build stamp")

    stacks = defaultdict(list)       # tid -> stack of open B names
    last_ts = {}                     # tid -> last seen timestamp
    names = set()
    duration_tids = set()
    for i, ev in enumerate(events):
        for field in ("ph", "ts", "pid", "tid", "name"):
            if field not in ev:
                fail("event %d missing %r: %r" % (i, field, ev))
        ph, tid, ts = ev["ph"], ev["tid"], ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            fail("event %d has bad ts %r" % (i, ts))
        if tid in last_ts and ts < last_ts[tid]:
            fail("event %d: ts %r goes backwards on tid %r" % (i, ts, tid))
        last_ts[tid] = ts
        names.add(ev["name"])
        if ph == "B":
            stacks[tid].append(ev["name"])
            duration_tids.add(tid)
        elif ph == "E":
            if not stacks[tid]:
                fail("event %d: E %r with no open B on tid %r"
                     % (i, ev["name"], tid))
            stacks[tid].pop()
        elif ph == "i":
            if ev.get("s") not in (None, "t", "p", "g"):
                fail("event %d: bad instant scope %r" % (i, ev.get("s")))
        else:
            fail("event %d: unexpected phase %r" % (i, ph))

    for tid, stack in stacks.items():
        if stack:
            fail("tid %r ends with unclosed spans: %s" % (tid, stack))
    if len(duration_tids) < args.min_threads:
        fail("duration events on %d thread(s), need >= %d"
             % (len(duration_tids), args.min_threads))
    for name in args.require_name:
        if name not in names:
            fail("required event name %r never appears" % name)

    print("validate_trace: OK: %d events, %d threads, %d distinct names"
          % (len(events), len(duration_tids), len(names)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
