#include "testing/ilp_fuzz.hpp"

#include <cmath>
#include <cstring>
#include <utility>

#include "ilp/lp_reader.hpp"
#include "ilp/lp_writer.hpp"
#include "ilp/solver_cache.hpp"
#include "support/diag.hpp"
#include "support/string_utils.hpp"

namespace luis::testing {
namespace {

using ilp::BranchAndBoundOptions;
using ilp::Model;
using ilp::Sense;
using ilp::Solution;
using ilp::SolveStatus;

/// Nonzero coefficient: a small integer, occasionally a half-integer.
/// Halves are exact in binary64, so every generated instance has an exact
/// enumeration answer — disagreements are solver bugs, never float noise.
double random_coeff(Rng& rng, const IlpGenOptions& opt) {
  double c = static_cast<double>(rng.next_int(1, opt.coeff_range));
  if (rng.next_bool(opt.fractional_coeff_p)) c += 0.5;
  return rng.next_bool(0.5) ? c : -c;
}

} // namespace

ilp::Model random_ilp_model(Rng& rng, const IlpGenOptions& opt) {
  Model model;
  const int nvars = static_cast<int>(rng.next_int(1, opt.max_variables));
  for (int j = 0; j < nvars; ++j) {
    const double lo = static_cast<double>(rng.next_int(-2, 1));
    const double hi = lo + static_cast<double>(rng.next_int(0, opt.max_bound_span));
    if (lo == 0.0 && hi == 1.0 && rng.next_bool(0.5)) {
      model.add_binary("");
    } else {
      model.add_integer("", lo, hi);
    }
  }

  const int nrows = static_cast<int>(rng.next_int(0, opt.max_constraints));
  for (int i = 0; i < nrows; ++i) {
    ilp::LinearExpr expr;
    // Achievable range of the left-hand side over the variable box, used
    // to place the rhs so that roughly half the rows actually bind.
    double lhs_min = 0.0, lhs_max = 0.0;
    bool any = false;
    for (int j = 0; j < nvars; ++j) {
      if (!rng.next_bool(0.6) && !(j + 1 == nvars && !any)) continue;
      const double c = random_coeff(rng, opt);
      expr.add(j, c);
      const ilp::Variable& v = model.variables()[static_cast<std::size_t>(j)];
      lhs_min += c * (c > 0.0 ? v.lower : v.upper);
      lhs_max += c * (c > 0.0 ? v.upper : v.lower);
      any = true;
    }
    // rhs on the half-integer grid, spanning just past the achievable
    // range so infeasible and slack rows both occur.
    const double rhs =
        std::round(rng.next_double(lhs_min - 1.5, lhs_max + 1.5) * 2.0) / 2.0;
    const std::uint64_t pick = rng.next_below(5);
    const Sense sense =
        pick < 2 ? Sense::LE : (pick < 4 ? Sense::GE : Sense::EQ);
    model.add_constraint(std::move(expr), sense, rhs);
  }

  ilp::LinearExpr objective;
  for (int j = 0; j < nvars; ++j)
    if (rng.next_bool(0.7)) objective.add(j, random_coeff(rng, opt));
  if (rng.next_bool(0.3))
    objective.add_constant(static_cast<double>(rng.next_int(-3, 3)) +
                           (rng.next_bool(0.3) ? 0.5 : 0.0));
  model.set_objective(
      rng.next_bool(0.5) ? ilp::Direction::Minimize : ilp::Direction::Maximize,
      std::move(objective));
  return model;
}

EnumerationResult enumerate_optimum(const ilp::Model& model) {
  const std::size_t n = model.num_variables();
  std::vector<std::int64_t> lo(n), hi(n), cur(n);
  long points_total = 1;
  for (std::size_t j = 0; j < n; ++j) {
    const ilp::Variable& v = model.variables()[j];
    LUIS_ASSERT(v.kind != ilp::VarKind::Continuous,
                "enumeration oracle needs a pure-integer model");
    LUIS_ASSERT(std::isfinite(v.lower) && std::isfinite(v.upper),
                "enumeration oracle needs finite bounds");
    lo[j] = static_cast<std::int64_t>(std::ceil(v.lower - 1e-9));
    hi[j] = static_cast<std::int64_t>(std::floor(v.upper + 1e-9));
    const long span = static_cast<long>(hi[j] - lo[j] + 1);
    LUIS_ASSERT(span > 0, "empty integer box");
    points_total *= span;
    LUIS_ASSERT(points_total <= 10'000'000, "integer box too large to enumerate");
    cur[j] = lo[j];
  }

  EnumerationResult out;
  const double sign =
      model.objective_direction() == ilp::Direction::Minimize ? 1.0 : -1.0;
  std::vector<double> point(n);
  for (;;) {
    ++out.points;
    for (std::size_t j = 0; j < n; ++j) point[j] = static_cast<double>(cur[j]);
    bool feasible = true;
    for (const ilp::Constraint& c : model.constraints()) {
      double lhs = 0.0;
      for (const auto& [var, coeff] : c.expr.terms())
        lhs += coeff * point[static_cast<std::size_t>(var)];
      switch (c.sense) {
      case Sense::LE: feasible = lhs <= c.rhs + 1e-9; break;
      case Sense::GE: feasible = lhs >= c.rhs - 1e-9; break;
      case Sense::EQ: feasible = std::abs(lhs - c.rhs) <= 1e-9; break;
      }
      if (!feasible) break;
    }
    if (feasible) {
      const double obj = model.objective_value(point);
      if (!out.feasible || sign * obj < sign * out.objective - 1e-12) {
        out.feasible = true;
        out.objective = obj;
        out.values = point;
      }
    }
    // Mixed-radix increment.
    std::size_t j = 0;
    while (j < n && ++cur[j] > hi[j]) cur[j] = lo[j], ++j;
    if (j == n) break;
  }
  return out;
}

namespace {

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Status + objective agreement between two solver configurations.
CheckResult compare_solves(const char* what, const Solution& a,
                           const Solution& b) {
  if (a.status != b.status)
    return CheckResult::fail(format_string("%s: status %s vs %s", what,
                                           ilp::to_string(a.status),
                                           ilp::to_string(b.status)));
  if (a.status == SolveStatus::Optimal &&
      std::abs(a.objective - b.objective) > 1e-6)
    return CheckResult::fail(format_string("%s: objective %.17g vs %.17g",
                                           what, a.objective, b.objective));
  if (a.status == SolveStatus::Optimal &&
      std::abs(a.best_bound - b.best_bound) > 1e-6)
    return CheckResult::fail(format_string("%s: best_bound %.17g vs %.17g",
                                           what, a.best_bound, b.best_bound));
  return CheckResult::pass();
}

} // namespace

CheckResult check_ilp_instance(const ilp::Model& model,
                               const IlpCheckOptions& options) {
  const MilpSolver solve =
      options.solve ? options.solve
                    : [](const Model& m, const BranchAndBoundOptions& o) {
                        return ilp::solve_milp(m, o);
                      };
  BranchAndBoundOptions base;
  base.max_nodes = options.max_nodes;

  // Oracle 1: exhaustive enumeration is ground truth.
  const EnumerationResult truth = enumerate_optimum(model);
  const Solution with_presolve = solve(model, base);
  if (with_presolve.status == SolveStatus::NodeLimit ||
      with_presolve.status == SolveStatus::IterationLimit)
    return CheckResult::fail(format_string(
        "solver hit its %s on a %zu-variable instance",
        ilp::to_string(with_presolve.status), model.num_variables()));
  if (!truth.feasible) {
    if (with_presolve.status != SolveStatus::Infeasible)
      return CheckResult::fail(format_string(
          "enumeration proves infeasibility but solver returned %s "
          "(objective %.17g)",
          ilp::to_string(with_presolve.status), with_presolve.objective));
  } else {
    if (with_presolve.status != SolveStatus::Optimal)
      return CheckResult::fail(format_string(
          "enumeration found optimum %.17g but solver returned %s",
          truth.objective, ilp::to_string(with_presolve.status)));
    if (std::abs(with_presolve.objective - truth.objective) > 1e-6)
      return CheckResult::fail(format_string(
          "optimum mismatch: enumeration %.17g, solver %.17g",
          truth.objective, with_presolve.objective));
    if (!model.is_feasible(with_presolve.values))
      return CheckResult::fail("solver's claimed solution is infeasible");
    if (std::abs(model.objective_value(with_presolve.values) -
                 with_presolve.objective) > 1e-6)
      return CheckResult::fail(format_string(
          "solver's objective %.17g does not match its own solution (%.17g)",
          with_presolve.objective,
          model.objective_value(with_presolve.values)));
  }

  // Oracle 2: presolve must not change the answer.
  BranchAndBoundOptions no_presolve = base;
  no_presolve.presolve = false;
  const CheckResult presolve_check = compare_solves(
      "presolve on vs off", with_presolve, solve(model, no_presolve));
  if (!presolve_check.ok) return presolve_check;

  // Oracle 3: the LP text round trip is the same optimization problem.
  // Variable order can change (the reader numbers by first use), so the
  // comparison is status + optimum, not values.
  const std::string lp_text = ilp::to_lp_format(model);
  const ilp::LpParseResult reparsed = ilp::parse_lp(lp_text);
  if (!reparsed.ok())
    return CheckResult::fail("lp_writer output does not re-parse: " +
                             reparsed.error);
  const CheckResult roundtrip_check = compare_solves(
      "LP round trip", with_presolve, solve(reparsed.model, base));
  if (!roundtrip_check.ok) return roundtrip_check;

  // Oracle 4: a cache hit returns the fresh solution bit-identically.
  ilp::SolverCache cache;
  BranchAndBoundOptions cached = base;
  cached.cache = &cache;
  const Solution fresh = solve(model, cached);
  const Solution hit = solve(model, cached);
  if (fresh.status != hit.status || !bits_equal(fresh.objective, hit.objective) ||
      !bits_equal(fresh.best_bound, hit.best_bound) ||
      fresh.values.size() != hit.values.size())
    return CheckResult::fail("cache hit differs from the fresh solve");
  for (std::size_t j = 0; j < fresh.values.size(); ++j)
    if (!bits_equal(fresh.values[j], hit.values[j]))
      return CheckResult::fail(format_string(
          "cache hit value[%zu] differs from the fresh solve", j));
  if (!options.solve && cache.stats().hits < 1)
    return CheckResult::fail("second cached solve did not hit the cache");

  // Oracle 5: the dense tableau core and the sparse revised core solve the
  // same problem — a status, optimum, or proven-bound disagreement is a
  // bug in one of them. (`base` runs under the session default core, so
  // the differential also covers whichever core oracle 1 just validated.)
  BranchAndBoundOptions dense = base;
  dense.lp.core = ilp::LpCore::Dense;
  BranchAndBoundOptions revised = base;
  revised.lp.core = ilp::LpCore::Revised;
  const CheckResult core_check =
      compare_solves("revised vs dense core", solve(model, revised),
                     solve(model, dense));
  if (!core_check.ok) return core_check;

  return CheckResult::pass();
}

// --- Shrinker ---

namespace {

/// Editable mirror of a Model (the Model API is append-only by design).
struct ModelParts {
  struct Row {
    std::vector<std::pair<int, double>> terms;
    Sense sense = Sense::LE;
    double rhs = 0.0;
  };
  std::vector<ilp::Variable> variables;
  std::vector<Row> rows;
  std::vector<std::pair<int, double>> objective;
  double objective_constant = 0.0;
  ilp::Direction direction = ilp::Direction::Minimize;

  static ModelParts of(const Model& model) {
    ModelParts p;
    p.variables = model.variables();
    for (const ilp::Constraint& c : model.constraints()) {
      Row row;
      for (const auto& [var, coeff] : c.expr.terms())
        row.terms.emplace_back(static_cast<int>(var), coeff);
      row.sense = c.sense;
      row.rhs = c.rhs;
      p.rows.push_back(std::move(row));
    }
    for (const auto& [var, coeff] : model.objective().terms())
      p.objective.emplace_back(static_cast<int>(var), coeff);
    p.objective_constant = model.objective().constant();
    p.direction = model.objective_direction();
    return p;
  }

  Model build() const {
    Model model;
    for (const ilp::Variable& v : variables)
      model.add_variable(v.name, v.kind, v.lower, v.upper);
    for (const Row& row : rows) {
      ilp::LinearExpr expr;
      for (const auto& [var, coeff] : row.terms) expr.add(var, coeff);
      model.add_constraint(std::move(expr), row.sense, row.rhs);
    }
    ilp::LinearExpr obj;
    for (const auto& [var, coeff] : objective) obj.add(var, coeff);
    obj.add_constant(objective_constant);
    model.set_objective(direction, std::move(obj));
    return model;
  }

  /// Deletes variable `j`, dropping its terms and renumbering the rest.
  void drop_variable(int j) {
    variables.erase(variables.begin() + j);
    auto renumber = [j](std::vector<std::pair<int, double>>& terms) {
      std::vector<std::pair<int, double>> out;
      for (const auto& [var, coeff] : terms) {
        if (var == j) continue;
        out.emplace_back(var > j ? var - 1 : var, coeff);
      }
      terms = std::move(out);
    };
    for (Row& row : rows) renumber(row.terms);
    renumber(objective);
  }
};

} // namespace

IlpShrinkResult shrink_ilp_model(
    const ilp::Model& model,
    const std::function<bool(const ilp::Model&)>& still_fails) {
  IlpShrinkResult out;
  ModelParts best = ModelParts::of(model);

  // Each accepted candidate strictly shrinks (rows + variables + terms +
  // total bound span + nonzero constant count), so the loop terminates.
  const auto try_candidate = [&](const ModelParts& candidate) {
    ++out.attempts;
    if (out.attempts > 20000) return false;
    if (!still_fails(candidate.build())) return false;
    best = candidate;
    return true;
  };

  bool changed = true;
  while (changed && out.attempts <= 20000) {
    changed = false;
    ++out.rounds;

    // Drop whole constraints, largest index first (cheap renumber-free).
    for (int i = static_cast<int>(best.rows.size()) - 1; i >= 0; --i) {
      ModelParts candidate = best;
      candidate.rows.erase(candidate.rows.begin() + i);
      changed |= try_candidate(candidate);
    }
    // Drop whole variables.
    for (int j = static_cast<int>(best.variables.size()) - 1; j >= 0; --j) {
      if (best.variables.size() <= 1) break; // a model needs a variable
      ModelParts candidate = best;
      candidate.drop_variable(j);
      changed |= try_candidate(candidate);
    }
    // Delete individual constraint coefficients.
    for (std::size_t i = 0; i < best.rows.size(); ++i) {
      for (std::size_t k = best.rows[i].terms.size(); k-- > 0;) {
        ModelParts candidate = best;
        candidate.rows[i].terms.erase(candidate.rows[i].terms.begin() +
                                      static_cast<long>(k));
        changed |= try_candidate(candidate);
      }
    }
    // Delete objective coefficients and the constant.
    for (std::size_t k = best.objective.size(); k-- > 0;) {
      ModelParts candidate = best;
      candidate.objective.erase(candidate.objective.begin() +
                                static_cast<long>(k));
      changed |= try_candidate(candidate);
    }
    if (best.objective_constant != 0.0) {
      ModelParts candidate = best;
      candidate.objective_constant = 0.0;
      changed |= try_candidate(candidate);
    }
    // Narrow variable boxes one unit at a time. The span is re-checked
    // before each mutation: accepting the first one can collapse the box
    // to a point, and the second must not cross the bounds then.
    for (std::size_t j = 0; j < best.variables.size(); ++j) {
      if (best.variables[j].lower < best.variables[j].upper) {
        ModelParts raise = best;
        raise.variables[j].lower += 1.0;
        if (raise.variables[j].kind == ilp::VarKind::Binary)
          raise.variables[j].kind = ilp::VarKind::Integer;
        changed |= try_candidate(raise);
      }
      if (best.variables[j].lower < best.variables[j].upper) {
        ModelParts lower = best;
        lower.variables[j].upper -= 1.0;
        if (lower.variables[j].kind == ilp::VarKind::Binary)
          lower.variables[j].kind = ilp::VarKind::Integer;
        changed |= try_candidate(lower);
      }
    }
  }

  out.model = best.build();
  return out;
}

} // namespace luis::testing
