// Random verifier-clean IR programs and their oracles.
//
// The generator builds small loop-nest kernels through KernelBuilder (the
// same vocabulary PolyBench kernels use), so every instance is well formed
// by construction; the oracles then check the properties the rest of the
// system leans on: printer/parser round-tripping, clone() exactness, and
// interpreter determinism under arbitrary quantize type assignments
// (including an assignment_io save/load across the text round trip).
//
// IR shrinking works on the generation recipe, not the program text: a
// failing (seed, options) pair is re-generated under smaller options until
// no single reduction keeps it failing, which preserves verifier-cleanness
// for free.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "interp/engine.hpp"
#include "interp/interpreter.hpp"
#include "ir/function.hpp"
#include "support/rng.hpp"
#include "testing/fuzz.hpp"

namespace luis::testing {

struct IrGenOptions {
  std::int64_t min_extent = 4; ///< array extent n, uniform in [min, max]
  std::int64_t max_extent = 10;
  int min_arrays = 2;
  int max_arrays = 4;
  int expr_depth = 3;       ///< maximum random expression tree depth
  bool allow_2d = true;     ///< permit rank-2 arrays
  bool allow_nested = true; ///< permit depth-2 guarded loop nests
};

struct GeneratedIr {
  ir::Function* function = nullptr; ///< owned by the module passed in
  interp::ArrayStore inputs;
};

/// Builds a random but well-formed kernel: arrays, a loop nest of depth
/// 1-2, and a random expression tree stored back. Expressions avoid
/// division by values straddling zero so every generated program is
/// numerically tame under binary64.
GeneratedIr generate_ir_kernel(ir::Module& module, Rng& rng,
                               const IrGenOptions& options = {},
                               const std::string& name = "fuzz");

/// Deterministic inputs for a parsed corpus kernel: arrays filled from
/// their range annotations with a fixed-seed generator.
interp::ArrayStore synth_ir_inputs(const ir::Function& f,
                                   std::uint64_t seed = 0xC0FFEE);

/// A random executable type assignment over the standard formats (floats,
/// posits, and fixed point with random fractional bits), used to exercise
/// the interpreter's quantization paths.
interp::TypeAssignment random_type_assignment(const ir::Function& f, Rng& rng);

/// The IR property set:
///   1. the function verifies;
///   2. print -> parse -> print is a fixpoint;
///   3. clone_function is print-exact;
///   4. the binary64 reference run succeeds with finite outputs;
///   5. a random quantized assignment runs deterministically (two runs are
///      bit-identical in outputs and cost counters), and re-running it on
///      the parsed-back text under the assignment_io round trip reproduces
///      the same outputs bit-for-bit;
///   6. the VM and reference engines agree bit for bit on that assignment:
///      outputs, ok/error, step count, and cost counters.
/// `type_rng` drives property 5's assignment. `engine` selects which
/// engine executes properties 4-5 (the other side of property 6 always
/// runs too, so either choice keeps the differential).
CheckResult check_ir_instance(
    const ir::Function& f, const interp::ArrayStore& inputs, Rng& type_rng,
    interp::EngineKind engine = interp::EngineKind::Reference);

struct IrShrinkResult {
  IrGenOptions options;
  int attempts = 0;
};

/// Greedy recipe-level shrinking: tries smaller extents, fewer arrays,
/// shallower expressions, and disabling 2-D/nesting, keeping reductions
/// for which `still_fails` (re-generating from the same seed) returns true.
IrShrinkResult shrink_ir_options(
    const IrGenOptions& options,
    const std::function<bool(const IrGenOptions&)>& still_fails);

} // namespace luis::testing
