// Metamorphic properties of the number-representation layer.
//
// There is no independent reference implementation to diff against, so
// quantize/IEBW are checked through relations that must hold between
// *related* calls: idempotence and monotonicity of rounding, nesting of
// narrower formats inside wider ones, IEBW monotonicity in width, the
// Definition-1 error bound, and fixed/float/posit cross-checks at points
// every representation stores exactly. A failure message pins down the
// format and input value, which is already a minimal repro.
#pragma once

#include "support/rng.hpp"
#include "testing/fuzz.hpp"

namespace luis::testing {

/// One fuzz trial: a batch of random values pushed through every property.
CheckResult check_numrep_trial(Rng& rng);

} // namespace luis::testing
