// Property-based differential testing and fuzzing harness.
//
// The solver, IR, and quantization layers each get a generator/oracle pair
// (see ilp_fuzz.hpp, ir_fuzz.hpp, numrep_fuzz.hpp); this header is the
// campaign driver that ties them together. A campaign is a seeded,
// fully deterministic loop: trial i of a campaign with base seed S checks
// the instance generated from derive_seed(S, i), so any failure is
// reproducible from the (target, seed) pair alone. Failing instances are
// greedily shrunk to a minimal repro and written as an artifact file
// (.lp for solver models, .ir for IR programs) that replay_corpus can
// re-check — the workflow CI uses to turn a red fuzz job into a
// checked-in regression seed under tests/corpus/.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "interp/engine.hpp"
#include "support/rng.hpp"

namespace luis::testing {

/// Outcome of one property check. `ok == false` carries a human-readable
/// description of which oracle disagreed and how.
struct CheckResult {
  bool ok = true;
  std::string message;

  static CheckResult pass() { return {}; }
  static CheckResult fail(std::string message) { return {false, std::move(message)}; }
};

enum class FuzzTarget { Ilp, Ir, Numrep, ErrorBounds };

const char* to_string(FuzzTarget target);

/// Per-trial seed: decorrelates trial indices under one campaign seed.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t trial);

struct CampaignOptions {
  std::vector<FuzzTarget> targets = {FuzzTarget::Ilp, FuzzTarget::Ir,
                                     FuzzTarget::Numrep,
                                     FuzzTarget::ErrorBounds};
  /// Stop after this many trials per target (ignored when `seconds` > 0).
  long trials = 200;
  /// Unbounded mode: keep going until the wall-clock budget is spent.
  double seconds = 0.0;
  std::uint64_t seed = 1;
  /// Directory for minimized failing-input files; empty = don't write.
  std::string artifacts_dir;
  /// Stop a target after this many distinct failures.
  int max_failures = 5;
  /// Engine executing the IR oracle's runs. Either way the oracle also
  /// runs the other engine differentially; flipping this exercises the VM
  /// as the primary (e.g. on the round-tripped assignment path).
  interp::EngineKind engine = interp::EngineKind::Reference;
  bool verbose = false; ///< progress lines on stderr
};

struct FuzzFailure {
  FuzzTarget target = FuzzTarget::Ilp;
  std::uint64_t seed = 0; ///< derived per-trial seed that reproduces it
  std::string message;
  /// Minimized repro, in the target's text format (.lp / .ir); empty for
  /// numrep failures (the message pins down the value and format).
  std::string repro_text;
  std::string artifact_path; ///< where the repro was written, if anywhere
};

struct CampaignResult {
  long trials = 0; ///< per target
  std::vector<FuzzFailure> failures;
  bool ok() const { return failures.empty(); }
};

/// Runs the campaign: generate -> check -> (on failure) shrink -> report.
CampaignResult run_campaign(const CampaignOptions& options);

/// Replays every .lp and .ir file under `dir` through the matching oracle.
/// Returns one entry per file; `ok()` iff every file passes. Unknown
/// extensions are skipped. Fails if the directory cannot be read.
struct CorpusResult {
  struct Entry {
    std::string path;
    CheckResult result;
  };
  std::vector<Entry> entries;
  std::string error; ///< non-empty when the directory itself was unusable
  bool ok() const;
};

CorpusResult replay_corpus(
    const std::string& dir,
    interp::EngineKind engine = interp::EngineKind::Reference);

} // namespace luis::testing
