#include "testing/ir_fuzz.hpp"

#include <cmath>
#include <cstring>
#include <functional>

#include "core/assignment_io.hpp"
#include "ir/clone.hpp"
#include "ir/kernel_builder.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "numrep/registry.hpp"
#include "support/string_utils.hpp"

namespace luis::testing {

using ir::Array;
using ir::IVal;
using ir::KernelBuilder;
using ir::RVal;

GeneratedIr generate_ir_kernel(ir::Module& module, Rng& rng,
                               const IrGenOptions& opt,
                               const std::string& name) {
  KernelBuilder kb(module, name);
  const std::int64_t n = rng.next_int(opt.min_extent, opt.max_extent);
  const int narrays =
      static_cast<int>(rng.next_int(opt.min_arrays, opt.max_arrays));
  std::vector<Array*> arrays;
  GeneratedIr out;
  for (int a = 0; a < narrays; ++a) {
    const bool two_d = opt.allow_2d && rng.next_bool(0.5);
    std::vector<std::int64_t> dims =
        two_d ? std::vector<std::int64_t>{n, n} : std::vector<std::int64_t>{n};
    Array* arr = kb.array("A" + std::to_string(a), dims, 0.25, 8.0);
    arrays.push_back(arr);
    auto& buf = out.inputs[arr->name()];
    for (std::int64_t i = 0; i < arr->element_count(); ++i)
      buf.push_back(rng.next_double(0.25, 8.0));
  }

  // A random real expression over loaded values (recursive, bounded).
  // Divisors are offset to [9.25, ...) so no generated program divides by
  // a value straddling zero.
  std::function<RVal(IVal, int)> expr = [&](IVal i, int depth) -> RVal {
    auto leaf = [&]() -> RVal {
      Array* arr = arrays[rng.next_below(arrays.size())];
      if (arr->rank() == 2) return kb.load(arr, {i, i});
      return kb.load(arr, {i});
    };
    if (depth <= 0 || rng.next_bool(0.3)) return leaf();
    const RVal lhs = expr(i, depth - 1);
    const RVal rhs = expr(i, depth - 1);
    switch (rng.next_below(6)) {
    case 0: return lhs + rhs;
    case 1: return lhs - rhs;
    case 2: return lhs * rhs;
    case 3: return lhs / (rhs + kb.real(9.0));
    case 4: return kb.sqrt(kb.abs(lhs)) + rhs;
    default: return kb.fmax(lhs, kb.fmin(rhs, kb.real(4.0)));
    }
  };

  Array* dst = arrays[0];
  const bool nested =
      opt.allow_nested && rng.next_bool(0.5) && dst->rank() == 2;
  if (nested) {
    kb.for_loop("i", 0, n, [&](IVal i) {
      kb.for_loop("j", 0, n, [&](IVal j) {
        RVal v = expr(j, opt.expr_depth > 1 ? opt.expr_depth - 1 : 0);
        kb.if_then(i < j, [&] { kb.store(v, dst, {i, j}); });
      });
    });
  } else {
    kb.for_loop("i", 0, n, [&](IVal i) {
      RVal v = expr(i, opt.expr_depth);
      if (dst->rank() == 2)
        kb.store(v, dst, {i, i});
      else
        kb.store(v, dst, {i});
    });
  }
  out.function = kb.finish();
  return out;
}

interp::ArrayStore synth_ir_inputs(const ir::Function& f, std::uint64_t seed) {
  interp::ArrayStore store;
  Rng rng(seed);
  for (const auto& arr : f.arrays()) {
    double lo = 0.0, hi = 1.0;
    if (arr->range_annotation()) {
      lo = arr->range_annotation()->first;
      hi = arr->range_annotation()->second;
    }
    auto& buf = store[arr->name()];
    for (std::int64_t i = 0; i < arr->element_count(); ++i)
      buf.push_back(rng.next_double(lo, hi));
  }
  return store;
}

namespace {

numrep::ConcreteType random_concrete_type(Rng& rng) {
  // Every executable registry format is a candidate: differential runs
  // must agree between the VM and the reference interpreter for FP8 and
  // fixed-posit assignments exactly as they do for the classic trio.
  static const std::vector<numrep::NumericFormat> kPool = [] {
    std::vector<numrep::NumericFormat> out;
    const numrep::FormatRegistry& reg = numrep::FormatRegistry::instance();
    for (const numrep::NumericFormat& f : reg.formats())
      if (reg.ops(f.format_class()).executable(f)) out.push_back(f);
    return out;
  }();
  const numrep::NumericFormat fmt = kPool[rng.next_below(kPool.size())];
  if (fmt.is_fixed()) {
    const int frac = static_cast<int>(rng.next_int(2, fmt.width() - 4));
    return {fmt, frac};
  }
  return {fmt, 0};
}

bool stores_bit_equal(const interp::ArrayStore& a, const interp::ArrayStore& b,
                      std::string* where) {
  if (a.size() != b.size()) {
    *where = "array count";
    return false;
  }
  for (const auto& [name, buf] : a) {
    const auto it = b.find(name);
    if (it == b.end() || it->second.size() != buf.size()) {
      *where = name;
      return false;
    }
    if (std::memcmp(buf.data(), it->second.data(),
                    buf.size() * sizeof(double)) != 0) {
      *where = name;
      return false;
    }
  }
  return true;
}

} // namespace

interp::TypeAssignment random_type_assignment(const ir::Function& f, Rng& rng) {
  interp::TypeAssignment assignment;
  for (const auto& arr : f.arrays())
    assignment.set(arr.get(), random_concrete_type(rng));
  for (const auto& bb : f.blocks())
    for (const auto& inst : bb->instructions())
      if (inst->type() == ir::ScalarType::Real)
        assignment.set(inst.get(), random_concrete_type(rng));
  return assignment;
}

CheckResult check_ir_instance(const ir::Function& f,
                              const interp::ArrayStore& inputs, Rng& type_rng,
                              interp::EngineKind engine) {
  const interp::ReferenceEngine reference_engine;
  const interp::VmEngine vm_engine;
  const bool primary_is_vm = engine == interp::EngineKind::Vm;
  const interp::ExecutionEngine& primary =
      primary_is_vm ? static_cast<const interp::ExecutionEngine&>(vm_engine)
                    : reference_engine;
  const interp::ExecutionEngine& secondary =
      primary_is_vm ? static_cast<const interp::ExecutionEngine&>(
                          reference_engine)
                    : vm_engine;
  // 1. Structural invariants.
  const ir::VerifyResult vr = ir::verify(f);
  if (!vr.ok())
    return CheckResult::fail("generated IR fails the verifier: " + vr.message());

  // 2. Printer/parser round trip is a fixpoint.
  const std::string text = ir::print_function(f);
  ir::Module reparse_module;
  const ir::ParseResult parsed = ir::parse_function(reparse_module, text);
  if (!parsed.ok())
    return CheckResult::fail("printed IR does not re-parse: " + parsed.error);
  if (ir::print_function(*parsed.function) != text)
    return CheckResult::fail("print -> parse -> print is not a fixpoint");

  // 3. clone_function is print-exact.
  ir::Module clone_module;
  ir::Function* cloned = ir::clone_function(f, clone_module);
  if (ir::print_function(*cloned) != text)
    return CheckResult::fail("clone_function is not print-exact");

  // 4. The binary64 reference execution succeeds and stays finite.
  interp::ArrayStore reference = inputs;
  const interp::TypeAssignment binary64;
  const interp::RunResult ref_run = primary.run(f, binary64, reference);
  if (!ref_run.ok)
    return CheckResult::fail("binary64 execution failed: " + ref_run.error);
  for (const auto& [name, buf] : reference)
    for (double v : buf)
      if (!std::isfinite(v))
        return CheckResult::fail("binary64 execution produced a non-finite "
                                 "value in @" +
                                 name);

  // 5. Interpreter determinism under a random quantized assignment, across
  // the textual round trip of both the IR and the assignment.
  const interp::TypeAssignment assignment = random_type_assignment(f, type_rng);
  interp::ArrayStore run1 = inputs, run2 = inputs;
  const interp::RunResult r1 = primary.run(f, assignment, run1);
  const interp::RunResult r2 = primary.run(f, assignment, run2);
  if (!r1.ok || !r2.ok)
    return CheckResult::fail("quantized execution failed: " +
                             (r1.ok ? r2.error : r1.error));
  std::string where;
  if (!stores_bit_equal(run1, run2, &where))
    return CheckResult::fail("two identical quantized runs disagree at @" +
                             where);
  if (r1.counters.ops != r2.counters.ops ||
      r1.counters.non_real_ops != r2.counters.non_real_ops)
    return CheckResult::fail(
        "two identical quantized runs disagree in cost counters");

  const std::string assignment_text = core::assignment_to_text(f, assignment);
  const core::AssignmentParseResult reloaded =
      core::assignment_from_text(*parsed.function, assignment_text);
  if (!reloaded.ok())
    return CheckResult::fail(
        "assignment_io text does not reload onto the reparsed IR: " +
        reloaded.error);
  interp::ArrayStore run3 = inputs;
  const interp::RunResult r3 =
      primary.run(*parsed.function, reloaded.assignment, run3);
  if (!r3.ok)
    return CheckResult::fail("reparsed IR failed under reloaded assignment: " +
                             r3.error);
  if (!stores_bit_equal(run1, run3, &where))
    return CheckResult::fail(
        "reparsed IR under the reloaded assignment disagrees at @" + where);

  // 6. Differential: the other engine must reproduce the quantized run bit
  // for bit — outputs, verdict, step count, and cost counters.
  interp::ArrayStore run_other = inputs;
  const interp::RunResult ro = secondary.run(f, assignment, run_other);
  if (ro.ok != r1.ok || ro.error != r1.error)
    return CheckResult::fail("vm and reference engines disagree on the "
                             "verdict: \"" +
                             r1.error + "\" vs \"" + ro.error + "\"");
  if (!stores_bit_equal(run1, run_other, &where))
    return CheckResult::fail("vm and reference engines disagree at @" + where);
  if (ro.steps != r1.steps)
    return CheckResult::fail("vm and reference engines disagree on steps");
  if (ro.counters.ops != r1.counters.ops ||
      ro.counters.non_real_ops != r1.counters.non_real_ops)
    return CheckResult::fail(
        "vm and reference engines disagree in cost counters");

  // 7. Lane-vs-reference equivalence of the batched VM: a random lane set
  // (binary64, the assignment above, and two more random assignments)
  // through VmEngine::run_batch must match per-assignment reference runs
  // bit for bit — per-lane outputs, verdicts, steps, and cost counters.
  const std::vector<interp::TypeAssignment> lane_types = {
      binary64, assignment, random_type_assignment(f, type_rng),
      random_type_assignment(f, type_rng)};
  std::vector<interp::ArrayStore> lane_stores(lane_types.size(), inputs);
  std::vector<interp::BatchRequest> requests(lane_types.size());
  for (std::size_t i = 0; i < lane_types.size(); ++i)
    requests[i] = {&lane_types[i], &lane_stores[i], nullptr};
  const std::vector<interp::RunResult> batch =
      vm_engine.run_batch(f, requests, {});
  for (std::size_t i = 0; i < lane_types.size(); ++i) {
    interp::ArrayStore lane_ref = inputs;
    const interp::RunResult want =
        reference_engine.run(f, lane_types[i], lane_ref);
    const interp::RunResult& got = batch[i];
    const std::string lane = "lane " + std::to_string(i);
    if (got.ok != want.ok || got.error != want.error)
      return CheckResult::fail("batched vm disagrees with reference on the " +
                               lane + " verdict: \"" + want.error + "\" vs \"" +
                               got.error + "\"");
    if (got.steps != want.steps)
      return CheckResult::fail("batched vm disagrees with reference on " +
                               lane + " steps");
    if (got.counters.ops != want.counters.ops ||
        got.counters.non_real_ops != want.counters.non_real_ops)
      return CheckResult::fail("batched vm disagrees with reference in " +
                               lane + " cost counters");
    if (!stores_bit_equal(lane_ref, lane_stores[i], &where))
      return CheckResult::fail("batched vm disagrees with reference on " +
                               lane + " at @" + where);
  }

  return CheckResult::pass();
}

IrShrinkResult shrink_ir_options(
    const IrGenOptions& options,
    const std::function<bool(const IrGenOptions&)>& still_fails) {
  IrShrinkResult out;
  out.options = options;

  const auto try_candidate = [&](const IrGenOptions& candidate) {
    ++out.attempts;
    if (out.attempts > 500) return false;
    if (!still_fails(candidate)) return false;
    out.options = candidate;
    return true;
  };

  bool changed = true;
  while (changed && out.attempts <= 500) {
    changed = false;
    if (out.options.allow_nested) {
      IrGenOptions c = out.options;
      c.allow_nested = false;
      changed |= try_candidate(c);
    }
    if (out.options.allow_2d) {
      IrGenOptions c = out.options;
      c.allow_2d = false;
      changed |= try_candidate(c);
    }
    if (out.options.expr_depth > 0) {
      IrGenOptions c = out.options;
      --c.expr_depth;
      changed |= try_candidate(c);
    }
    if (out.options.max_arrays > out.options.min_arrays) {
      IrGenOptions c = out.options;
      --c.max_arrays;
      changed |= try_candidate(c);
    } else if (out.options.min_arrays > 1) {
      IrGenOptions c = out.options;
      --c.min_arrays;
      --c.max_arrays;
      changed |= try_candidate(c);
    }
    if (out.options.max_extent > out.options.min_extent) {
      IrGenOptions c = out.options;
      --c.max_extent;
      changed |= try_candidate(c);
    } else if (out.options.min_extent > 1) {
      IrGenOptions c = out.options;
      --c.min_extent;
      --c.max_extent;
      changed |= try_candidate(c);
    }
  }
  return out;
}

} // namespace luis::testing
