// Random ILP instances, an exhaustive-enumeration oracle, and a greedy
// model shrinker.
//
// Generated models are pure-integer with small finite boxes, so the
// feasible set can be enumerated outright — the independent ground truth
// every solver configuration is checked against. One instance is then
// required to agree with itself across every code path that must not
// change the answer: presolve on vs off, an lp_writer -> lp_reader round
// trip, and a solver-cache hit vs the fresh solve.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ilp/branch_and_bound.hpp"
#include "ilp/model.hpp"
#include "support/rng.hpp"
#include "testing/fuzz.hpp"

namespace luis::testing {

struct IlpGenOptions {
  int max_variables = 4;   ///< uniform in [1, max]
  int max_constraints = 5; ///< uniform in [0, max]
  /// Variable boxes are [lo, lo + span] with span uniform in [0, max]:
  /// enumeration cost is bounded by (span + 1)^variables.
  int max_bound_span = 3;
  /// Coefficients are nonzero integers in [-range, range]...
  int coeff_range = 3;
  /// ...except with this probability, a half-integer (exercises the
  /// fractional arithmetic of the simplex without float-noise ambiguity).
  double fractional_coeff_p = 0.25;
};

/// Generates a random model under `options`: every variable integer (or
/// binary) with finite bounds, constraints with mixed senses, a random
/// objective direction and optional objective constant. Roughly half the
/// instances are feasible.
ilp::Model random_ilp_model(Rng& rng, const IlpGenOptions& options = {});

struct EnumerationResult {
  bool feasible = false;
  double objective = 0.0;      ///< meaningful when feasible
  std::vector<double> values;  ///< one optimal point (first found)
  long points = 0;             ///< grid points visited
};

/// Brute-force oracle: walks the full integer box. Every variable must be
/// integer/binary with finite bounds (what random_ilp_model generates).
EnumerationResult enumerate_optimum(const ilp::Model& model);

/// Solver under test. Tests substitute a deliberately broken solver to
/// exercise the shrinker; the campaign uses ilp::solve_milp.
using MilpSolver = std::function<ilp::Solution(
    const ilp::Model&, const ilp::BranchAndBoundOptions&)>;

struct IlpCheckOptions {
  MilpSolver solve;        ///< defaults to ilp::solve_milp
  long max_nodes = 200000; ///< ample for the generated sizes
};

/// The four-oracle differential property. Passes iff:
///   1. solve (presolve on) matches exhaustive enumeration in status and
///      optimum, and its claimed solution is feasible and consistent;
///   2. presolve off agrees with presolve on;
///   3. the lp_writer -> lp_reader round trip solves to the same optimum;
///   4. re-solving through a SolverCache returns the first solution
///      bit-identically.
CheckResult check_ilp_instance(const ilp::Model& model,
                               const IlpCheckOptions& options = {});

struct IlpShrinkResult {
  ilp::Model model;
  int rounds = 0;   ///< full passes over the mutation list
  int attempts = 0; ///< candidate models evaluated
};

/// Greedy shrinking: repeatedly tries dropping constraints, dropping
/// variables, deleting coefficients, and narrowing bounds toward zero,
/// keeping every mutation for which `still_fails` returns true. The result
/// is 1-minimal: no single listed mutation keeps it failing.
IlpShrinkResult shrink_ilp_model(
    const ilp::Model& model,
    const std::function<bool(const ilp::Model&)>& still_fails);

} // namespace luis::testing
