// Soundness fuzzing for the static rounding-error analysis.
//
// The oracle pits the certificate against reality: for a random kernel and
// a random quantized type assignment, the measured deviation of the
// quantized run from the binary64 reference run must never exceed the
// statically certified bound. The comparison is made rigorous by also
// certifying the reference run itself — analyze_errors under an
// all-binary64 assignment bounds |reference - exact|, so
//
//   |quantized - reference| <= err(assignment) + err(binary64)
//
// holds for every sound analysis, with no empirical slack factor. A trial
// whose quantized run produces non-finite values is checked only where the
// certificate is unconditional: float-format caps carry the finite-run
// side condition (ErrorAnalysisResult::assumes_finite_run), which such a
// run voids by construction.
#pragma once

#include "interp/engine.hpp"
#include "interp/interpreter.hpp"
#include "ir/function.hpp"
#include "support/rng.hpp"
#include "testing/fuzz.hpp"

namespace luis::testing {

/// The error-bounds property: run the kernel under binary64 and under a
/// random quantized assignment drawn from `type_rng`, certify both with
/// analyze_ranges (join_stores) + analyze_errors, and check every array
/// element's measured |quantized - reference| against the summed bounds.
/// Unbounded (infinite) certificates pass trivially — the analysis never
/// claims anything about them. `engine` selects the executing engine.
///
/// Every trial additionally exercises the shadow-execution oracle: a
/// VM run with RunOptions::error_profile attached must leave the
/// quantized outputs bit-identical, its per-array stats and in-engine
/// MPE must equal an external finalize_error_profile recomputation,
/// zero recorded control divergences must make the shadow outputs
/// bit-identical to the binary64 reference run, and the
/// measured-vs-certified cross-check (analysis/certificate_check.hpp)
/// must report no violation.
CheckResult check_error_bounds_instance(
    const ir::Function& f, const interp::ArrayStore& inputs, Rng& type_rng,
    interp::EngineKind engine = interp::EngineKind::Reference);

} // namespace luis::testing
