#include "testing/numrep_fuzz.hpp"

#include <cmath>

#include <vector>

#include "numrep/fixed_point.hpp"
#include "numrep/iebw.hpp"
#include "numrep/quantize.hpp"
#include "numrep/registry.hpp"
#include "numrep/soft_float.hpp"
#include "support/string_utils.hpp"

namespace luis::testing {
namespace {

using numrep::ConcreteType;
using numrep::NumericFormat;
using numrep::quantize;

/// The formats under test: every executable format the registry knows
/// (FP8, fixed-posit, and any run-time registered class included), with a
/// representative fixed point layout for the fixed family — half the word
/// in fractional bits keeps moderate magnitudes in range.
const std::vector<ConcreteType>& palette() {
  static const std::vector<ConcreteType> kPalette = [] {
    std::vector<ConcreteType> out;
    const numrep::FormatRegistry& reg = numrep::FormatRegistry::instance();
    for (const NumericFormat& f : reg.formats()) {
      if (!reg.ops(f.format_class()).executable(f)) continue;
      out.push_back({f, f.is_fixed() ? f.width() / 2 : 0});
    }
    return out;
  }();
  return kPalette;
}

CheckResult fail_at(const char* property, const ConcreteType& type, double x,
                    double got, double expected) {
  return CheckResult::fail(format_string(
      "%s violated for %s at x=%.17g: got %.17g, expected %.17g", property,
      type.name().c_str(), x, got, expected));
}

/// Idempotence: re-rounding an already-rounded value must not move it.
CheckResult check_idempotent(const ConcreteType& type, double x) {
  const double once = quantize(type, x);
  if (!std::isfinite(once)) return CheckResult::pass(); // saturated to inf
  const double twice = quantize(type, once);
  if (twice != once) return fail_at("idempotence", type, x, twice, once);
  return CheckResult::pass();
}

/// Rounding is monotone: x <= y implies q(x) <= q(y).
CheckResult check_monotone(const ConcreteType& type, double x, double y) {
  if (x > y) std::swap(x, y);
  const double qx = quantize(type, x), qy = quantize(type, y);
  if (qx > qy)
    return CheckResult::fail(format_string(
        "monotonicity violated for %s: q(%.17g)=%.17g > q(%.17g)=%.17g",
        type.name().c_str(), x, qx, y, qy));
  return CheckResult::pass();
}

/// Width nesting: every value a narrow format represents, a strictly wider
/// format of the same family represents exactly.
CheckResult check_nesting(const ConcreteType& narrow, const ConcreteType& wide,
                          double x) {
  const double in_narrow = quantize(narrow, x);
  if (!std::isfinite(in_narrow)) return CheckResult::pass();
  const double relifted = quantize(wide, in_narrow);
  if (relifted != in_narrow)
    return fail_at("width nesting", wide, x, relifted, in_narrow);
  return CheckResult::pass();
}

/// Definition 1 error bound: |q(x) - x| < 2^(1-IEBW) (the IEBW floors the
/// log of the smallest representation-changing perturbation, so the true
/// rounding error can exceed 2^-IEBW by at most one binade).
CheckResult check_error_bound(const ConcreteType& type, double x) {
  // Only meaningful inside the format's dynamic range: below min_positive
  // the result is underflow/flush policy, above max_value it is overflow
  // policy, and neither is a rounding error.
  const numrep::FormatClassOps& ops = numrep::format_ops(type);
  const double mag = std::abs(x);
  if (mag < ops.min_positive(type) || mag > ops.max_value(type))
    return CheckResult::pass();
  const double q = quantize(type, x);
  if (!std::isfinite(q) || q == 0.0) return CheckResult::pass();
  const int iebw = numrep::iebw_of_value(type.format, q, type.frac_bits);
  const double bound = std::ldexp(1.0, 1 - iebw);
  if (std::abs(q - x) > bound)
    return CheckResult::fail(format_string(
        "error bound violated for %s at x=%.17g: |q(x)-x|=%.17g > "
        "2^(1-%d)=%.17g",
        type.name().c_str(), x, std::abs(q - x), iebw, bound));
  return CheckResult::pass();
}

/// Cross-representation agreement at representable points: half-integers
/// in [-2, 2] are exactly representable by every palette format (FP8
/// e5m2's two mantissa bits are the binding constraint — above magnitude
/// 4 its step grows past one half), so all of them must return the value
/// unchanged.
CheckResult check_cross_representation(double half_integer) {
  for (const ConcreteType& type : palette()) {
    const double q = quantize(type, half_integer);
    if (q != half_integer)
      return fail_at("representable point", type, half_integer, q,
                     half_integer);
  }
  return CheckResult::pass();
}

/// IEBW is monotone in width within the float family: more precision and
/// more exponent range never lose fractional resolution. Only meaningful
/// while x stays inside the narrower format's normal range — beyond it the
/// Definition 3 clamp e_v = min(E, floor(log2|x|)) freezes the narrow
/// format's exponent term, so its nominal IEBW stops decreasing even
/// though the value itself has saturated to infinity.
CheckResult check_iebw_float_monotone(double x) {
  const NumericFormat ladder[] = {numrep::kBinary16, numrep::kBinary32,
                                  numrep::kBinary64, numrep::kBinary128};
  for (std::size_t i = 0; i + 1 < std::size(ladder); ++i) {
    if (std::ilogb(std::abs(x)) > ladder[i].max_exponent()) continue;
    const int narrow = numrep::iebw_float(ladder[i], x);
    const int wide = numrep::iebw_float(ladder[i + 1], x);
    if (wide < narrow)
      return CheckResult::fail(format_string(
          "IEBW width monotonicity violated at x=%.17g: %s gives %d, %s "
          "gives %d",
          x, ladder[i].name().c_str(), narrow, ladder[i + 1].name().c_str(),
          wide));
  }
  return CheckResult::pass();
}

/// Fixed point: Definition 4 says IEBW is exactly the fractional bit
/// count, and rounding error is at most half a grid step.
CheckResult check_fixed_point(const numrep::FixedSpec& spec, double x) {
  if (numrep::iebw_fixed(spec.frac) != spec.frac)
    return CheckResult::fail("iebw_fixed is not the fractional bit count");
  if (x < spec.min_value() || x > spec.max_value()) return CheckResult::pass();
  const double q = numrep::quantize_fixed(spec, x);
  const double half_step = std::ldexp(1.0, -spec.frac - 1);
  if (std::abs(q - x) > half_step * (1.0 + 1e-12))
    return CheckResult::fail(format_string(
        "fixed point rounding error exceeds half a step for %s at x=%.17g",
        spec.name().c_str(), x));
  return CheckResult::pass();
}

} // namespace

CheckResult check_numrep_trial(Rng& rng) {
  // Signed magnitudes across a chosen binade range.
  const auto random_value = [&rng](int min_exp, int max_exp) {
    const double magnitude =
        std::ldexp(rng.next_double(1.0, 2.0),
                   static_cast<int>(rng.next_int(min_exp, max_exp)));
    return rng.next_bool(0.5) ? magnitude : -magnitude;
  };

  for (int i = 0; i < 8; ++i) {
    // Wide range — hits subnormals, overflow-to-infinity, and fixed/posit
    // saturation; valid for idempotence, monotonicity, and nesting.
    const double x = random_value(-30, 30);
    const double y = random_value(-30, 30);
    // Moderate range, inside every palette format's exactly-representable
    // span; required by the error-bound property (saturation breaks it).
    const double moderate = random_value(-6, 3);
    for (const ConcreteType& type : palette()) {
      if (CheckResult r = check_idempotent(type, x); !r.ok) return r;
      if (CheckResult r = check_monotone(type, x, y); !r.ok) return r;
      if (CheckResult r = check_error_bound(type, moderate); !r.ok) return r;
    }
    // Family nesting ladders (narrow, wide).
    const std::pair<ConcreteType, ConcreteType> ladders[] = {
        {{numrep::kBinary16, 0}, {numrep::kBinary32, 0}},
        {{numrep::kBfloat16, 0}, {numrep::kBinary32, 0}},
        {{numrep::kBinary32, 0}, {numrep::kBinary64, 0}},
        {{numrep::kFixed16, 8}, {numrep::kFixed32, 8}},
        {{numrep::kFixed16, 8}, {numrep::kFixed32, 16}},
        {{numrep::kPosit8, 0}, {numrep::kPosit16, 0}},
        {{numrep::kPosit16, 0}, {numrep::kPosit32, 0}},
        // FP8 values are exact binary16 values (e5m2's max 57344 and min
        // subnormal 2^-16 both fit), and fixed_posit8_0_3's lattice is a
        // subset of fixed_posit16_1_4's wider scale range and mantissa.
        {{numrep::kFp8E4M3, 0}, {numrep::kBinary16, 0}},
        {{numrep::kFp8E5M2, 0}, {numrep::kBinary16, 0}},
        {{numrep::kFixedPosit8, 0}, {numrep::kFixedPosit16, 0}},
    };
    for (const auto& [narrow, wide] : ladders)
      if (CheckResult r = check_nesting(narrow, wide, x); !r.ok) return r;
    if (CheckResult r = check_iebw_float_monotone(x); !r.ok) return r;

    const numrep::FixedSpec spec{
        rng.next_bool(0.5) ? 16 : 32,
        static_cast<int>(rng.next_int(2, 11)),
        true,
    };
    if (CheckResult r = check_fixed_point(spec, x); !r.ok) return r;
  }
  if (CheckResult r =
          check_cross_representation(static_cast<double>(rng.next_int(-4, 4)) / 2.0);
      !r.ok)
    return r;
  return CheckResult::pass();
}

} // namespace luis::testing
