#include "testing/fuzz.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "ilp/lp_reader.hpp"
#include "ilp/lp_writer.hpp"
#include "ilp/solver_cache.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "support/string_utils.hpp"
#include "testing/error_fuzz.hpp"
#include "testing/ilp_fuzz.hpp"
#include "testing/ir_fuzz.hpp"
#include "testing/numrep_fuzz.hpp"

namespace luis::testing {

const char* to_string(FuzzTarget target) {
  switch (target) {
  case FuzzTarget::Ilp: return "ilp";
  case FuzzTarget::Ir: return "ir";
  case FuzzTarget::Numrep: return "numrep";
  case FuzzTarget::ErrorBounds: return "error";
  }
  return "<invalid>";
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t trial) {
  // splitmix64 step over (base, trial) — the same mixing Rng::reseed uses,
  // so nearby trials get unrelated streams.
  std::uint64_t z = base_seed + 0x9E3779B97F4A7C15ull * (trial + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {

/// Independent stream for the random type assignment of an IR trial, so
/// shrinking the program recipe does not perturb the assignment draw.
constexpr std::uint64_t kTypeSeedSalt = 0x7E57AB1E5EEDull;

/// True if every variable is integer with finite bounds — what the
/// enumeration oracle requires and random_ilp_model guarantees. Corpus
/// files are validated with this before being replayed.
bool is_enumerable(const ilp::Model& model) {
  for (const ilp::Variable& v : model.variables()) {
    if (v.kind == ilp::VarKind::Continuous) return false;
    if (!std::isfinite(v.lower) || !std::isfinite(v.upper)) return false;
    if (v.upper - v.lower > 64.0) return false;
  }
  return model.num_variables() <= 8;
}

CheckResult run_ilp_trial(std::uint64_t seed, std::string* repro) {
  Rng rng(seed);
  const ilp::Model model = random_ilp_model(rng);
  const CheckResult result = check_ilp_instance(model);
  if (!result.ok && repro) {
    const auto still_fails = [](const ilp::Model& candidate) {
      return !check_ilp_instance(candidate).ok;
    };
    *repro = ilp::to_lp_format(shrink_ilp_model(model, still_fails).model);
  }
  return result;
}

CheckResult run_ir_trial(std::uint64_t seed, interp::EngineKind engine,
                         std::string* repro) {
  const auto check_under = [seed, engine](const IrGenOptions& options,
                                          std::string* text) {
    Rng rng(seed);
    ir::Module module;
    const GeneratedIr generated = generate_ir_kernel(module, rng, options);
    Rng type_rng(seed ^ kTypeSeedSalt);
    const CheckResult result = check_ir_instance(
        *generated.function, generated.inputs, type_rng, engine);
    if (text) *text = ir::print_function(*generated.function);
    return result;
  };
  const CheckResult result = check_under(IrGenOptions{}, nullptr);
  if (!result.ok && repro) {
    const auto still_fails = [&check_under](const IrGenOptions& candidate) {
      return !check_under(candidate, nullptr).ok;
    };
    const IrGenOptions smallest =
        shrink_ir_options(IrGenOptions{}, still_fails).options;
    check_under(smallest, repro);
  }
  return result;
}

CheckResult run_numrep_trial(std::uint64_t seed) {
  Rng rng(seed);
  return check_numrep_trial(rng);
}

CheckResult run_error_trial(std::uint64_t seed, interp::EngineKind engine,
                            std::string* repro) {
  const auto check_under = [seed, engine](const IrGenOptions& options,
                                          std::string* text) {
    Rng rng(seed);
    ir::Module module;
    const GeneratedIr generated = generate_ir_kernel(module, rng, options);
    Rng type_rng(seed ^ kTypeSeedSalt);
    const CheckResult result = check_error_bounds_instance(
        *generated.function, generated.inputs, type_rng, engine);
    if (text) *text = ir::print_function(*generated.function);
    return result;
  };
  const CheckResult result = check_under(IrGenOptions{}, nullptr);
  if (!result.ok && repro) {
    const auto still_fails = [&check_under](const IrGenOptions& candidate) {
      return !check_under(candidate, nullptr).ok;
    };
    const IrGenOptions smallest =
        shrink_ir_options(IrGenOptions{}, still_fails).options;
    check_under(smallest, repro);
  }
  return result;
}

std::string write_artifact(const std::string& dir, FuzzTarget target,
                           std::uint64_t seed, const std::string& text) {
  if (dir.empty() || text.empty()) return {};
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const char* extension = target == FuzzTarget::Ilp ? "lp" : "ir";
  const std::string path = format_string(
      "%s/fuzz_%s_%016llx.%s", dir.c_str(), to_string(target),
      static_cast<unsigned long long>(seed), extension);
  std::ofstream os(path);
  if (!os) return {};
  os << text;
  return path;
}

} // namespace

CampaignResult run_campaign(const CampaignOptions& options) {
  CampaignResult out;
  const auto start = std::chrono::steady_clock::now();
  const auto out_of_budget = [&] {
    if (options.seconds <= 0.0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= options.seconds;
  };

  std::vector<int> failures_per_target(4, 0);
  for (long trial = 0;; ++trial) {
    if (options.seconds > 0.0) {
      if (out_of_budget()) break;
    } else if (trial >= options.trials) {
      break;
    }
    ++out.trials;
    const std::uint64_t seed = derive_seed(options.seed, static_cast<std::uint64_t>(trial));
    for (const FuzzTarget target : options.targets) {
      if (failures_per_target[static_cast<int>(target)] >= options.max_failures)
        continue;
      std::string repro;
      CheckResult result;
      switch (target) {
      case FuzzTarget::Ilp: result = run_ilp_trial(seed, &repro); break;
      case FuzzTarget::Ir: result = run_ir_trial(seed, options.engine, &repro); break;
      case FuzzTarget::Numrep: result = run_numrep_trial(seed); break;
      case FuzzTarget::ErrorBounds:
        result = run_error_trial(seed, options.engine, &repro);
        break;
      }
      if (result.ok) continue;
      ++failures_per_target[static_cast<int>(target)];
      FuzzFailure failure;
      failure.target = target;
      failure.seed = seed;
      failure.message = result.message;
      failure.repro_text = repro;
      failure.artifact_path =
          write_artifact(options.artifacts_dir, target, seed, repro);
      if (options.verbose)
        std::fprintf(stderr, "fuzz[%s] seed %016llx FAILED: %s\n",
                     to_string(target), static_cast<unsigned long long>(seed),
                     result.message.c_str());
      out.failures.push_back(std::move(failure));
    }
    if (options.verbose && out.trials % 1000 == 0)
      std::fprintf(stderr, "fuzz: %ld trials, %zu failures\n", out.trials,
                   out.failures.size());
  }
  return out;
}

bool CorpusResult::ok() const {
  if (!error.empty()) return false;
  return std::all_of(entries.begin(), entries.end(),
                     [](const Entry& e) { return e.result.ok; });
}

CorpusResult replay_corpus(const std::string& dir,
                           interp::EngineKind engine) {
  CorpusResult out;
  std::error_code ec;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string extension = entry.path().extension().string();
    if (extension == ".lp" || extension == ".ir") paths.push_back(entry.path());
  }
  if (ec) {
    out.error = "cannot read corpus directory " + dir + ": " + ec.message();
    return out;
  }
  std::sort(paths.begin(), paths.end());

  for (const std::filesystem::path& path : paths) {
    std::ifstream is(path);
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    CorpusResult::Entry entry;
    entry.path = path.string();
    if (path.extension() == ".lp") {
      const ilp::LpParseResult parsed = ilp::parse_lp(text);
      if (!parsed.ok()) {
        entry.result = CheckResult::fail("does not parse: " + parsed.error);
      } else if (!is_enumerable(parsed.model)) {
        entry.result = CheckResult::fail(
            "corpus model is not enumerable (needs small finite integer "
            "boxes)");
      } else {
        entry.result = check_ilp_instance(parsed.model);
      }
    } else {
      ir::Module module;
      const ir::ParseResult parsed = ir::parse_function(module, text);
      if (!parsed.ok()) {
        entry.result = CheckResult::fail("does not parse: " + parsed.error);
      } else {
        const interp::ArrayStore inputs = synth_ir_inputs(*parsed.function);
        Rng type_rng(ilp::fnv1a64(path.filename().string()));
        entry.result =
            check_ir_instance(*parsed.function, inputs, type_rng, engine);
      }
    }
    out.entries.push_back(std::move(entry));
  }
  return out;
}

} // namespace luis::testing
