#include "testing/error_fuzz.hpp"

#include <cmath>

#include "analysis/certificate_check.hpp"
#include "analysis/error_bounds.hpp"
#include "interp/bytecode.hpp"
#include "support/string_utils.hpp"
#include "testing/ir_fuzz.hpp"
#include "vra/range_analysis.hpp"

namespace luis::testing {

namespace {

bool all_finite(const interp::ArrayStore& store) {
  for (const auto& [name, buf] : store)
    for (double v : buf)
      if (!std::isfinite(v)) return false;
  return true;
}

/// Bit-level agreement up to NaN identity (every NaN equals every NaN —
/// the profiler never distinguishes payloads).
bool same_value(double a, double b) {
  return a == b || (std::isnan(a) && std::isnan(b));
}

/// The shadow-execution oracle: re-runs `assignment` through the VM with
/// the error profiler attached and checks every runtime claim the
/// profiler makes.
///
///   1. Profiling is a pure observer: the quantized outputs are
///      bit-identical to the unprofiled run.
///   2. The in-engine per-array stats and whole-program MPE equal an
///      external recomputation (finalize_error_profile) from the final
///      buffers.
///   3. With zero recorded control divergences, the shadow outputs are
///      bit-identical to the independent binary64 reference run.
///   4. The measured-vs-certified cross-check (the `luis profile
///      --errors` gate) reports no violation.
CheckResult check_shadow_oracle(const ir::Function& f,
                                const interp::ArrayStore& inputs,
                                const interp::TypeAssignment& assignment,
                                const interp::ArrayStore& quantized,
                                const interp::ArrayStore& reference) {
  interp::ArrayStore shadowed = inputs;
  interp::ErrorProfile ep;
  interp::RunOptions ropt;
  ropt.error_profile = &ep;
  const interp::CompiledProgram program =
      interp::compile_program(f, assignment);
  const interp::RunResult run =
      interp::run_program(program, f, shadowed, ropt);
  if (!run.ok)
    return CheckResult::fail(
        "shadow-profiled run failed where the plain run succeeded: " +
        run.error);

  for (const auto& [name, buf] : quantized) {
    const auto it = shadowed.find(name);
    if (it == shadowed.end() || it->second.size() != buf.size())
      return CheckResult::fail("shadow run dropped or resized array @" + name);
    for (std::size_t i = 0; i < buf.size(); ++i)
      if (!same_value(buf[i], it->second[i]))
        return CheckResult::fail(format_string(
            "shadow profiling perturbed the quantized run at @%s[%zu]: "
            "%.17g vs %.17g",
            name.c_str(), i, buf[i], it->second[i]));
  }
  if (!ep.finalized)
    return CheckResult::fail(
        "error profile not finalized by a successful run");

  interp::ErrorProfile recomputed;
  std::vector<const std::vector<double>*> qp, sp;
  for (const interp::ArrayBinding& ab : program.arrays) {
    qp.push_back(&shadowed.at(ab.name));
    sp.push_back(&ep.shadow_arrays.at(ab.name));
  }
  interp::finalize_error_profile(recomputed, program, qp, sp);
  if (!same_value(recomputed.program_mpe, ep.program_mpe))
    return CheckResult::fail(format_string(
        "in-engine program MPE %.17g does not reconcile with external "
        "recomputation %.17g",
        ep.program_mpe, recomputed.program_mpe));
  if (recomputed.arrays.size() != ep.arrays.size())
    return CheckResult::fail("per-array stats count mismatch");
  for (std::size_t i = 0; i < ep.arrays.size(); ++i) {
    const interp::ArrayErrorStats& a = ep.arrays[i];
    const interp::ArrayErrorStats& b = recomputed.arrays[i];
    if (a.name != b.name || a.stored != b.stored ||
        a.elements != b.elements || a.finite != b.finite ||
        !same_value(a.max_abs, b.max_abs) ||
        !same_value(a.max_rel, b.max_rel) || !same_value(a.mpe, b.mpe))
      return CheckResult::fail("per-array stats of @" + a.name +
                               " do not reconcile with recomputation");
  }

  if (ep.control_divergences == 0) {
    for (const auto& [name, sbuf] : ep.shadow_arrays) {
      const auto rit = reference.find(name);
      if (rit == reference.end() || rit->second.size() != sbuf.size())
        return CheckResult::fail("shadow array @" + name +
                                 " missing from the reference run");
      for (std::size_t i = 0; i < sbuf.size(); ++i)
        if (!same_value(sbuf[i], rit->second[i]))
          return CheckResult::fail(format_string(
              "zero control divergences but shadow @%s[%zu] = %.17g differs "
              "from the binary64 reference %.17g",
              name.c_str(), i, sbuf[i], rit->second[i]));
    }
  }

  const analysis::CertificateCrossCheck cc =
      analysis::cross_check_certificates(f, assignment, ep.arrays,
                                         ep.control_divergences);
  for (const analysis::ArrayCertCheck& c : cc.arrays)
    if (c.violated)
      return CheckResult::fail(format_string(
          "certificate cross-check violated at @%s: measured %.17g > "
          "certified %.17g",
          c.name.c_str(), c.measured, c.certified));
  return CheckResult::pass();
}

} // namespace

CheckResult check_error_bounds_instance(const ir::Function& f,
                                        const interp::ArrayStore& inputs,
                                        Rng& type_rng,
                                        interp::EngineKind engine) {
  const auto exec = interp::make_engine(engine);

  // The binary64 reference run stands in for the exact execution; its own
  // distance to exactness is certified below and added to the budget.
  interp::ArrayStore reference = inputs;
  const interp::TypeAssignment binary64;
  const interp::RunResult ref_run = exec->run(f, binary64, reference);
  if (!ref_run.ok || !all_finite(reference))
    return CheckResult::pass(); // not this oracle's property (ir target's)

  const interp::TypeAssignment assignment = random_type_assignment(f, type_rng);
  interp::ArrayStore quantized = inputs;
  const interp::RunResult quant_run = exec->run(f, assignment, quantized);
  if (!quant_run.ok)
    return CheckResult::fail("quantized execution failed: " + quant_run.error);

  // join_stores makes the certificate self-contained: the only trusted
  // inputs are the array annotations, which the generator draws the input
  // data from.
  vra::VraOptions vra_options;
  vra_options.join_stores = true;
  const vra::RangeMap ranges = vra::analyze_ranges(f, vra_options);
  const analysis::ErrorAnalysisResult certified =
      analysis::analyze_errors(f, assignment, ranges);
  const analysis::ErrorAnalysisResult reference_err =
      analysis::analyze_errors(f, binary64, ranges);

  // The shadow-execution oracle runs on every trial — its observer and
  // reconciliation properties hold regardless of finiteness.
  const CheckResult shadow =
      check_shadow_oracle(f, inputs, assignment, quantized, reference);
  if (!shadow.ok) return shadow;

  // A non-finite quantized value voids the finite-run side condition that
  // float-format caps certify under; unconditional bounds still apply, but
  // a measured |quantized - reference| is not even well defined here.
  if (!all_finite(quantized))
    return CheckResult::pass();

  for (const auto& arr : f.arrays()) {
    const double bound = certified.errors.of(arr.get()) +
                         reference_err.errors.of(arr.get());
    if (!std::isfinite(bound)) continue; // no claim made
    const auto qit = quantized.find(arr->name());
    const auto rit = reference.find(arr->name());
    if (qit == quantized.end() || rit == reference.end() ||
        qit->second.size() != rit->second.size())
      return CheckResult::fail("engine dropped or resized array @" +
                               arr->name());
    for (std::size_t i = 0; i < qit->second.size(); ++i) {
      const double measured = std::abs(qit->second[i] - rit->second[i]);
      if (measured > bound)
        return CheckResult::fail(format_string(
            "certified bound violated at @%s[%zu]: measured %.17g > "
            "certified %.17g (assignment %s)",
            arr->name().c_str(), i, measured, bound,
            assignment.of(arr.get()).name().c_str()));
    }
  }
  return CheckResult::pass();
}

} // namespace luis::testing
