#include "testing/error_fuzz.hpp"

#include <cmath>

#include "analysis/error_bounds.hpp"
#include "support/string_utils.hpp"
#include "testing/ir_fuzz.hpp"
#include "vra/range_analysis.hpp"

namespace luis::testing {

namespace {

bool all_finite(const interp::ArrayStore& store) {
  for (const auto& [name, buf] : store)
    for (double v : buf)
      if (!std::isfinite(v)) return false;
  return true;
}

} // namespace

CheckResult check_error_bounds_instance(const ir::Function& f,
                                        const interp::ArrayStore& inputs,
                                        Rng& type_rng,
                                        interp::EngineKind engine) {
  const auto exec = interp::make_engine(engine);

  // The binary64 reference run stands in for the exact execution; its own
  // distance to exactness is certified below and added to the budget.
  interp::ArrayStore reference = inputs;
  const interp::TypeAssignment binary64;
  const interp::RunResult ref_run = exec->run(f, binary64, reference);
  if (!ref_run.ok || !all_finite(reference))
    return CheckResult::pass(); // not this oracle's property (ir target's)

  const interp::TypeAssignment assignment = random_type_assignment(f, type_rng);
  interp::ArrayStore quantized = inputs;
  const interp::RunResult quant_run = exec->run(f, assignment, quantized);
  if (!quant_run.ok)
    return CheckResult::fail("quantized execution failed: " + quant_run.error);

  // join_stores makes the certificate self-contained: the only trusted
  // inputs are the array annotations, which the generator draws the input
  // data from.
  vra::VraOptions vra_options;
  vra_options.join_stores = true;
  const vra::RangeMap ranges = vra::analyze_ranges(f, vra_options);
  const analysis::ErrorAnalysisResult certified =
      analysis::analyze_errors(f, assignment, ranges);
  const analysis::ErrorAnalysisResult reference_err =
      analysis::analyze_errors(f, binary64, ranges);

  // A non-finite quantized value voids the finite-run side condition that
  // float-format caps certify under; unconditional bounds still apply, but
  // a measured |quantized - reference| is not even well defined here.
  if (!all_finite(quantized))
    return CheckResult::pass();

  for (const auto& arr : f.arrays()) {
    const double bound = certified.errors.of(arr.get()) +
                         reference_err.errors.of(arr.get());
    if (!std::isfinite(bound)) continue; // no claim made
    const auto qit = quantized.find(arr->name());
    const auto rit = reference.find(arr->name());
    if (qit == quantized.end() || rit == reference.end() ||
        qit->second.size() != rit->second.size())
      return CheckResult::fail("engine dropped or resized array @" +
                               arr->name());
    for (std::size_t i = 0; i < qit->second.size(); ++i) {
      const double measured = std::abs(qit->second[i] - rit->second[i]);
      if (measured > bound)
        return CheckResult::fail(format_string(
            "certified bound violated at @%s[%zu]: measured %.17g > "
            "certified %.17g (assignment %s)",
            arr->name().c_str(), i, measured, bound,
            assignment.of(arr.get()).name().c_str()));
    }
  }
  return CheckResult::pass();
}

} // namespace luis::testing
