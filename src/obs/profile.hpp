// VM hot-spot profiling: prices the per-pc execution counts of a VM run
// (interp::VmProfile) with a platform op-time table and maps the cost back
// to source IR instructions, producing a ranked "where does the modeled
// time go" report.
//
// The attribution is exact, not approximate: every cost the interpreter
// bills — operation counters, operand-fetch casts (including the
// chosen-side cast of a select), phi-move casts on CFG edges, and the flat
// non-real step cost — is assigned to exactly one source instruction
// ordinal, so the per-instruction costs sum to the run's
// platform::simulated_time. obs_test locks this invariant in.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "interp/bytecode.hpp"
#include "platform/cost_model.hpp"

namespace luis::obs {

struct HotSpot {
  /// Source instruction ordinal (block order, phis and terminators
  /// included); -1 collects synthetic costs not tied to an instruction.
  int ordinal = -1;
  std::string text;     ///< the instruction as the IR printer renders it
  long executions = 0;  ///< dynamic executions (phi: edge applications)
  double cost = 0.0;    ///< modeled op-time units attributed here
  double share = 0.0;   ///< cost / total_cost (0 when total is 0)
};

struct HotSpotReport {
  std::string function_name;
  std::string platform;
  double total_cost = 0.0; ///< equals simulated_time of the profiled run
  long total_executions = 0;
  std::vector<HotSpot> entries; ///< cost-descending, ties by ordinal
};

/// One text line per source instruction, in block order — the same
/// ordinals the compiler assigns. Derived from the IR printer's output so
/// reports show instructions exactly as `luis` prints them. Shared by the
/// hot-spot and numerical-error report builders.
std::vector<std::string> instruction_texts(const ir::Function& f);

/// Builds the report for one profiled run of `program` (compiled from
/// `f`). `profile` must come from a run_program call on the same program.
HotSpotReport build_hotspot_report(const interp::CompiledProgram& program,
                                   const ir::Function& f,
                                   const interp::VmProfile& profile,
                                   const platform::OpTimeTable& table,
                                   const platform::CostModelOptions& opt = {});

/// Human-readable ranking. `top` limits the number of rows (0 = all).
std::string hotspot_text(const HotSpotReport& report, std::size_t top = 0);

/// JSON document with the build stamp and every entry.
std::string hotspot_json(const HotSpotReport& report);

} // namespace luis::obs
