#include "obs/metrics.hpp"

#include <algorithm>
#include <limits>

#include "obs/build_info.hpp"
#include "support/json.hpp"
#include "support/string_utils.hpp"

namespace luis::obs {

void Histogram::observe(double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (data_.count == 0) {
    data_.min = data_.max = v;
  } else {
    data_.min = std::min(data_.min, v);
    data_.max = std::max(data_.max, v);
  }
  ++data_.count;
  data_.sum += v;
  int i = 0;
  double bound = kFirstUpperBound;
  while (i < kBuckets - 1 && v > bound) {
    bound *= kGrowth;
    ++i;
  }
  ++data_.buckets[i];
}

double Histogram::Snapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Fractional rank in [0, count]; the covering bucket is the first whose
  // cumulative count reaches it.
  const double rank = q * static_cast<double>(count);
  long before = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const long after = before + buckets[i];
    if (static_cast<double>(after) >= rank) {
      // Interpolate linearly inside the bucket, clamping the open edges
      // (below the first bound, above the last) to the observed extrema.
      double lo = i == 0 ? 0.0 : Histogram::upper_bound(i - 1);
      double hi = Histogram::upper_bound(i);
      lo = std::max(lo, min);
      hi = std::min(hi, max);
      if (hi <= lo) return lo;
      const double frac =
          (rank - static_cast<double>(before)) / static_cast<double>(buckets[i]);
      return lo + frac * (hi - lo);
    }
    before = after;
  }
  return max;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

double Histogram::upper_bound(int i) {
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  double bound = kFirstUpperBound;
  for (int k = 0; k < i; ++k) bound *= kGrowth;
  return bound;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

std::string MetricsRegistry::to_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out += "# build ";
  out += version_string();
  out += '\n';
  for (const auto& [name, c] : counters_)
    out += format_string("counter   %-40s %ld\n", name.c_str(), c->value());
  for (const auto& [name, g] : gauges_)
    out += format_string("gauge     %-40s %.6g\n", name.c_str(), g->value());
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    out += format_string(
        "histogram %-40s count=%ld sum=%.6g mean=%.6g min=%.6g "
        "p50=%.6g p90=%.6g p99=%.6g max=%.6g\n",
        name.c_str(), s.count, s.sum, s.mean(), s.min, s.percentile(0.5),
        s.percentile(0.9), s.percentile(0.99), s.max);
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter w;
  w.begin_object();
  w.newline();
  w.key("build");
  w.raw_value(build_info_json());
  w.newline();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) {
    w.key(name);
    w.value(c->value());
  }
  w.end_object();
  w.newline();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) {
    w.key(name);
    w.value(g->value(), "%.17g");
  }
  w.end_object();
  w.newline();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    w.key(name);
    w.begin_object();
    w.key("count");
    w.value(s.count);
    w.key("sum");
    w.value(s.sum, "%.17g");
    w.key("mean");
    w.value(s.mean(), "%.17g");
    w.key("min");
    w.value(s.min, "%.17g");
    w.key("p50");
    w.value(s.percentile(0.5), "%.17g");
    w.key("p90");
    w.value(s.percentile(0.9), "%.17g");
    w.key("p99");
    w.value(s.percentile(0.99), "%.17g");
    w.key("max");
    w.value(s.max, "%.17g");
    w.key("buckets");
    w.begin_array();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (s.buckets[i] == 0) continue;
      w.begin_object();
      w.key("le");
      w.value(Histogram::upper_bound(i), "%.6g");
      w.key("count");
      w.value(s.buckets[i]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.newline();
  w.end_object();
  w.newline();
  return w.take();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

} // namespace luis::obs
