// Numerical-error profiling: maps a shadow-execution error profile
// (interp::ErrorProfile, filled by a run with RunOptions::error_profile
// set) back to source IR instructions, producing a per-line "where does
// the rounding error come from" report shaped like the hot-spot time
// report — the two tables line up ordinal by ordinal.
//
// Attribution follows the profiler's rules exactly: every recorded
// deviation — real instruction results and real phi moves on CFG edges —
// belongs to exactly one source instruction ordinal (PhiMove::dst is the
// phi's ordinal), so per-line observation counts sum to the run's total
// and the report loses nothing. Percentiles are read off the ErrorCell
// decade histograms and therefore resolve to bucket upper bounds (one
// decade of precision), while max values are exact.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "interp/bytecode.hpp"

namespace luis::obs {

/// Aggregated deviations of one source IR line (instruction results plus
/// phi moves writing that line's register).
struct ErrorLine {
  /// Source instruction ordinal (block order, phis and terminators
  /// included); -1 collects synthetic deviations not tied to a line.
  int ordinal = -1;
  std::string text;    ///< the instruction as the IR printer renders it
  long count = 0;      ///< recorded deviations (executions of the line)
  double mean_abs = 0.0, max_abs = 0.0;
  double mean_rel = 0.0, max_rel = 0.0;
  /// Relative-error percentiles as decade-bucket upper bounds (exact
  /// within one decade; +inf means the bucket collecting >1e2/non-finite).
  double p50_rel = 0.0, p90_rel = 0.0, p99_rel = 0.0;
};

struct ErrorReport {
  std::string function_name;
  long total_observations = 0;
  double max_rel = 0.0; ///< max over every recorded deviation
  double max_abs = 0.0;
  /// Whole-program mean percentage error of stored-to arrays against the
  /// lockstep binary64 shadow (support::mean_percentage_error semantics).
  double program_mpe = 0.0;
  long control_divergences = 0;
  long first_control_divergence_step = -1;
  double spike_rel_threshold = 0.0;
  long first_spike_step = -1; ///< -1: no line ever crossed the threshold
  int first_spike_ordinal = -1;
  double first_spike_rel = 0.0;
  std::vector<ErrorLine> lines; ///< max_rel-descending, ties by ordinal
  std::vector<interp::ArrayErrorStats> arrays; ///< binding order
};

/// Builds the report for one profiled run of `program` (compiled from
/// `f`). `profile` must come from a run on the same program and have been
/// finalized (the run reached Ret).
ErrorReport build_error_report(const interp::CompiledProgram& program,
                               const ir::Function& f,
                               const interp::ErrorProfile& profile);

/// Human-readable ranking. `top` limits the number of rows (0 = all).
std::string error_report_text(const ErrorReport& report, std::size_t top = 0);

/// JSON document with the build stamp, every line, and per-array stats.
std::string error_report_json(const ErrorReport& report);

} // namespace luis::obs
