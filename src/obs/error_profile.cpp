#include "obs/error_profile.hpp"

#include <algorithm>
#include <cmath>

#include "obs/build_info.hpp"
#include "obs/profile.hpp"
#include "support/diag.hpp"
#include "support/json.hpp"
#include "support/string_utils.hpp"

namespace luis::obs {

namespace {

/// Smallest decade-bucket upper bound covering fraction `q` of the
/// histogram's observations (the histogram's resolution: one decade).
double hist_percentile(const long (&hist)[interp::ErrorCell::kBuckets],
                       long count, double q) {
  if (count <= 0) return 0.0;
  const double target = q * static_cast<double>(count);
  long cum = 0;
  for (int i = 0; i < interp::ErrorCell::kBuckets; ++i) {
    cum += hist[i];
    if (static_cast<double>(cum) >= target)
      return interp::ErrorCell::bucket_upper_bound(i);
  }
  return interp::ErrorCell::bucket_upper_bound(interp::ErrorCell::kBuckets -
                                               1);
}

} // namespace

ErrorReport build_error_report(const interp::CompiledProgram& p,
                               const ir::Function& f,
                               const interp::ErrorProfile& profile) {
  LUIS_ASSERT(profile.instr.size() == p.code.size(),
              "error profile does not match the compiled program");
  LUIS_ASSERT(profile.moves.size() == p.moves.size(),
              "error profile does not match the compiled program moves");

  ErrorReport rep;
  rep.function_name = p.function_name;
  rep.program_mpe = profile.program_mpe;
  rep.control_divergences = profile.control_divergences;
  rep.first_control_divergence_step = profile.first_control_divergence_step;
  rep.spike_rel_threshold = profile.spike_rel_threshold;
  rep.first_spike_step = profile.first_spike_step;
  rep.first_spike_ordinal = profile.first_spike_src;
  rep.first_spike_rel = profile.first_spike_rel;
  rep.arrays = profile.arrays;

  // Merge cells by source ordinal; one extra slot for synthetic code.
  const std::size_t n_ord = p.source_instruction_count;
  std::vector<interp::ErrorCell> merged(n_ord + 1);
  const auto slot = [&](std::int32_t src) {
    return src >= 0 ? static_cast<std::size_t>(src) : n_ord;
  };
  for (std::size_t pc = 0; pc < p.code.size(); ++pc)
    if (profile.instr[pc].count > 0)
      merged[slot(p.code[pc].src)].merge(profile.instr[pc]);
  // Phi-move deviations belong to the phi instruction (PhiMove::dst is
  // the phi's ordinal) — same attribution rule as the hot-spot report.
  for (std::size_t i = 0; i < p.moves.size(); ++i)
    if (profile.moves[i].count > 0)
      merged[slot(p.moves[i].dst)].merge(profile.moves[i]);

  const std::vector<std::string> texts = instruction_texts(f);
  LUIS_ASSERT(texts.size() == n_ord,
              "printed instruction count does not match the program");
  for (std::size_t i = 0; i <= n_ord; ++i) {
    const interp::ErrorCell& c = merged[i];
    if (c.count == 0) continue;
    ErrorLine ln;
    ln.ordinal = i < n_ord ? static_cast<int>(i) : -1;
    ln.text = i < n_ord ? texts[i] : "<synthetic>";
    ln.count = c.count;
    ln.mean_abs = c.sum_abs / static_cast<double>(c.count);
    ln.max_abs = c.max_abs;
    ln.mean_rel = c.sum_rel / static_cast<double>(c.count);
    ln.max_rel = c.max_rel;
    ln.p50_rel = hist_percentile(c.hist_rel, c.count, 0.50);
    ln.p90_rel = hist_percentile(c.hist_rel, c.count, 0.90);
    ln.p99_rel = hist_percentile(c.hist_rel, c.count, 0.99);
    rep.total_observations += c.count;
    rep.max_abs = std::max(rep.max_abs, c.max_abs);
    rep.max_rel = std::max(rep.max_rel, c.max_rel);
    rep.lines.push_back(std::move(ln));
  }
  std::sort(rep.lines.begin(), rep.lines.end(),
            [](const ErrorLine& a, const ErrorLine& b) {
              if (a.max_rel != b.max_rel) return a.max_rel > b.max_rel;
              return a.ordinal < b.ordinal;
            });
  return rep;
}

std::string error_report_text(const ErrorReport& rep, std::size_t top) {
  std::string out = format_string(
      "numerical errors of @%s: program MPE %.6g%% over %ld recorded "
      "deviations, %ld control divergence(s)\n",
      rep.function_name.c_str(), rep.program_mpe, rep.total_observations,
      rep.control_divergences);
  if (rep.first_spike_step >= 0)
    out += format_string(
        "first spike (rel > %.3g): step %ld, line %d, rel %.6g\n",
        rep.spike_rel_threshold, rep.first_spike_step, rep.first_spike_ordinal,
        rep.first_spike_rel);
  out += format_string("%5s %12s %12s %12s %10s %10s %10s  %s\n", "rank",
                       "max_rel", "mean_rel", "max_abs", "p50", "p90", "p99",
                       "instruction");
  std::size_t rank = 0;
  for (const ErrorLine& ln : rep.lines) {
    if (top > 0 && rank >= top) {
      out += format_string("  ... %zu more\n", rep.lines.size() - rank);
      break;
    }
    out += format_string("%5zu %12.4g %12.4g %12.4g %10.3g %10.3g %10.3g  %s\n",
                         ++rank, ln.max_rel, ln.mean_rel, ln.max_abs,
                         ln.p50_rel, ln.p90_rel, ln.p99_rel, ln.text.c_str());
  }
  if (!rep.arrays.empty()) {
    out += format_string("%-12s %8s %10s %12s %12s %12s\n", "array", "stored",
                         "elements", "max_abs", "max_rel", "mpe%");
    for (const interp::ArrayErrorStats& a : rep.arrays)
      out += format_string("%-12s %8s %10ld %12.4g %12.4g %12.4g%s\n",
                           a.name.c_str(), a.stored ? "yes" : "no", a.elements,
                           a.max_abs, a.max_rel, a.mpe,
                           a.finite ? "" : "  [non-finite]");
  }
  return out;
}

std::string error_report_json(const ErrorReport& rep) {
  JsonWriter w;
  w.begin_object();
  w.newline();
  w.key("build");
  w.raw_value(build_info_json());
  w.newline();
  w.key("function");
  w.value(rep.function_name);
  w.key("program_mpe");
  w.value(rep.program_mpe, "%.17g");
  w.key("total_observations");
  w.value(rep.total_observations);
  w.key("max_abs");
  w.value(rep.max_abs, "%.17g");
  w.key("max_rel");
  w.value(rep.max_rel, "%.17g");
  w.key("control_divergences");
  w.value(rep.control_divergences);
  w.key("first_control_divergence_step");
  w.value(rep.first_control_divergence_step);
  w.key("spike_rel_threshold");
  w.value(rep.spike_rel_threshold, "%.17g");
  w.key("first_spike_step");
  w.value(rep.first_spike_step);
  w.key("first_spike_ordinal");
  w.value(static_cast<long>(rep.first_spike_ordinal));
  w.key("first_spike_rel");
  w.value(rep.first_spike_rel, "%.17g");
  w.newline();
  w.key("lines");
  w.begin_array();
  w.newline();
  for (const ErrorLine& ln : rep.lines) {
    w.begin_object();
    w.key("ordinal");
    w.value(static_cast<long>(ln.ordinal));
    w.key("instruction");
    w.value(ln.text);
    w.key("count");
    w.value(ln.count);
    w.key("mean_abs");
    w.value(ln.mean_abs, "%.17g");
    w.key("max_abs");
    w.value(ln.max_abs, "%.17g");
    w.key("mean_rel");
    w.value(ln.mean_rel, "%.17g");
    w.key("max_rel");
    w.value(ln.max_rel, "%.17g");
    w.key("p50_rel");
    w.value(ln.p50_rel, "%.17g");
    w.key("p90_rel");
    w.value(ln.p90_rel, "%.17g");
    w.key("p99_rel");
    w.value(ln.p99_rel, "%.17g");
    w.end_object();
    w.newline();
  }
  w.end_array();
  w.newline();
  w.key("arrays");
  w.begin_array();
  w.newline();
  for (const interp::ArrayErrorStats& a : rep.arrays) {
    w.begin_object();
    w.key("name");
    w.value(a.name);
    w.key("stored");
    w.value(a.stored);
    w.key("elements");
    w.value(a.elements);
    w.key("max_abs");
    w.value(a.max_abs, "%.17g");
    w.key("max_rel");
    w.value(a.max_rel, "%.17g");
    w.key("mpe");
    w.value(a.mpe, "%.17g");
    w.key("finite");
    w.value(a.finite);
    w.end_object();
    w.newline();
  }
  w.end_array();
  w.newline();
  w.end_object();
  w.newline();
  return w.take();
}

} // namespace luis::obs
