// Trace spans: wall-clock attribution across the pipeline, the sweep
// driver's worker threads, the ILP solver, and the execution engines,
// emitted as Chrome trace-event JSON (open the file in Perfetto or
// chrome://tracing).
//
// Design. One process-global TraceSink; every thread appends to its own
// buffer (registered once, guarded by a per-buffer mutex that is only ever
// contended during a snapshot), so recording is lock-free with respect to
// other recording threads. When tracing is disabled — the default — the
// entire system is one relaxed atomic load per would-be span: TraceSpan
// constructors check tracing_enabled() before touching anything, and the
// lazy-args overload never invokes its argument builder. Instrumentation
// is therefore safe to leave in hot paths.
//
// Event model. Spans are B/E ("duration") pairs on the recording thread's
// timeline; instant events ("i", thread-scoped) mark points like branch &
// bound incumbents. Timestamps are steady-clock microseconds relative to
// the moment tracing started, so they are monotonic per thread. Thread ids
// are small integers assigned at first use and never reused.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace luis::obs {

/// Fast global tracing switch. Mirrors TraceSink::start()/stop().
extern std::atomic<bool> g_tracing_enabled;

inline bool tracing_enabled() {
  // Acquire pairs with the release store in TraceSink::start() so a thread
  // that observes "enabled" also observes the new timestamp origin.
  return g_tracing_enabled.load(std::memory_order_acquire);
}

struct TraceEvent {
  char phase = 'B';       ///< 'B', 'E', or 'i'
  double ts_micros = 0.0; ///< relative to TraceSink::start()
  std::uint32_t tid = 0;
  std::string name;
  std::string cat;
  std::string args_json; ///< rendered JSON object text, or empty
};

class TraceSink {
public:
  /// Clears previous events and begins recording (timestamps restart at 0).
  void start();
  /// Stops recording. Spans already open still emit their E event so the
  /// written trace stays balanced.
  void stop();
  bool recording() const;

  /// Appends an event on the calling thread's buffer. `phase` 'B'/'E'/'i'.
  void emit(char phase, std::string name, std::string cat,
            std::string args_json);

  /// Snapshot of every recorded event, ordered by (tid, record order).
  std::vector<TraceEvent> snapshot() const;
  std::size_t event_count() const;
  void clear();

  /// The full trace document: {"build": ..., "traceEvents": [...]}.
  std::string to_json() const;
  /// Writes to_json() to `path`; false (with errno intact) on I/O failure.
  bool write_file(const std::string& path) const;

private:
  struct ThreadBuffer {
    mutable std::mutex mutex;
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  ThreadBuffer& local_buffer();

  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::atomic<std::uint32_t> next_tid_{1};
  std::chrono::steady_clock::time_point origin_{};
};

/// The process-global sink behind tracing_enabled().
TraceSink& trace();

/// Tiny builder for span/instant args: obs::Args().str("kernel", k).num(
/// "nodes", n).done() renders {"kernel":"...","nodes":123}. Only build
/// args inside a tracing_enabled() check or a lazy-args lambda.
class Args {
public:
  Args& str(std::string_view key, std::string_view value);
  Args& num(std::string_view key, double value);
  Args& num(std::string_view key, long value);
  Args& num(std::string_view key, std::size_t value)
  { return num(key, static_cast<long>(value)); }
  Args& num(std::string_view key, int value)
  { return num(key, static_cast<long>(value)); }
  Args& boolean(std::string_view key, bool value);
  std::string done();

private:
  void sep();
  std::string s_ = "{";
};

/// Thread-scoped instant event (no-op when tracing is disabled).
void instant(const char* name, const char* cat, std::string args_json = {});

/// RAII duration span: emits B at construction, E at destruction. All
/// constructors are no-ops when tracing is disabled.
class TraceSpan {
public:
  TraceSpan() = default;
  TraceSpan(const char* name, const char* cat) {
    if (tracing_enabled()) begin(name, cat, {});
  }
  TraceSpan(const char* name, const char* cat, std::string args_json) {
    if (tracing_enabled()) begin(name, cat, std::move(args_json));
  }
  /// Lazy args: `make_args` (returning the rendered args object) only runs
  /// when tracing is enabled, so hot paths never pay for string building.
  template <typename F,
            typename = decltype(std::declval<F&>()())>
  TraceSpan(const char* name, const char* cat, F&& make_args) {
    if (tracing_enabled()) begin(name, cat, make_args());
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { end(); }

  /// Closes the span early (idempotent).
  void end();
  bool live() const { return live_; }

private:
  void begin(const char* name, const char* cat, std::string args_json);

  bool live_ = false;
  std::string name_;
  std::string cat_;
};

} // namespace luis::obs
