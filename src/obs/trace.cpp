#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/build_info.hpp"
#include "support/json.hpp"
#include "support/string_utils.hpp"

namespace luis::obs {

std::atomic<bool> g_tracing_enabled{false};

TraceSink& trace() {
  static TraceSink sink;
  return sink;
}

TraceSink::ThreadBuffer& TraceSink::local_buffer() {
  // One buffer per OS thread, owned jointly by the thread and the sink's
  // registry: the registry keeps events alive after the thread exits, the
  // thread-local keeps the pointer stable while the thread records.
  thread_local std::shared_ptr<ThreadBuffer> tl;
  if (!tl) {
    tl = std::make_shared<ThreadBuffer>();
    tl->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffers_.push_back(tl);
  }
  return *tl;
}

void TraceSink::start() {
  clear();
  origin_ = std::chrono::steady_clock::now();
  g_tracing_enabled.store(true, std::memory_order_release);
}

void TraceSink::stop() {
  g_tracing_enabled.store(false, std::memory_order_relaxed);
}

bool TraceSink::recording() const {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void TraceSink::emit(char phase, std::string name, std::string cat,
                     std::string args_json) {
  const double ts = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - origin_)
                        .count();
  ThreadBuffer& buf = local_buffer();
  TraceEvent ev;
  ev.phase = phase;
  ev.ts_micros = ts;
  ev.tid = buf.tid;
  ev.name = std::move(name);
  ev.cat = std::move(cat);
  ev.args_json = std::move(args_json);
  // Uncontended except while a snapshot copies this buffer.
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(std::move(ev));
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffers = buffers_;
  }
  std::stable_sort(buffers.begin(), buffers.end(),
                   [](const auto& a, const auto& b) { return a->tid < b->tid; });
  std::vector<TraceEvent> out;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  return out;
}

std::size_t TraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::size_t n = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> b(buf->mutex);
    n += buf->events.size();
  }
  return n;
}

void TraceSink::clear() {
  // Buffers stay registered (live thread-locals still point at them);
  // only their contents are dropped.
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> b(buf->mutex);
    buf->events.clear();
  }
}

std::string TraceSink::to_json() const {
  const std::vector<TraceEvent> events = snapshot();
  JsonWriter w;
  w.begin_object();
  w.newline();
  w.key("build");
  w.raw_value(build_info_json());
  w.newline();
  w.key("displayTimeUnit");
  w.value("ms");
  w.newline();
  w.key("traceEvents");
  w.begin_array();
  w.newline();
  for (const TraceEvent& ev : events) {
    w.begin_object();
    w.key("name");
    w.value(ev.name);
    w.key("cat");
    w.value(ev.cat.empty() ? std::string_view("luis")
                           : std::string_view(ev.cat));
    w.key("ph");
    w.value(std::string_view(&ev.phase, 1));
    if (ev.phase == 'i') {
      w.key("s");
      w.value("t"); // thread-scoped instant
    }
    w.key("ts");
    w.value(ev.ts_micros, "%.3f");
    w.key("pid");
    w.value(1L);
    w.key("tid");
    w.value(static_cast<long>(ev.tid));
    if (!ev.args_json.empty()) {
      w.key("args");
      w.raw_value(ev.args_json);
    }
    w.end_object();
    w.newline();
  }
  w.end_array();
  w.newline();
  w.end_object();
  w.newline();
  return w.take();
}

bool TraceSink::write_file(const std::string& path) const {
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

void Args::sep() {
  if (s_.size() > 1) s_ += ',';
}

Args& Args::str(std::string_view key, std::string_view value) {
  sep();
  s_ += '"';
  s_ += json_escape(key);
  s_ += "\":\"";
  s_ += json_escape(value);
  s_ += '"';
  return *this;
}

Args& Args::num(std::string_view key, double value) {
  sep();
  s_ += '"';
  s_ += json_escape(key);
  s_ += "\":";
  // JSON has no literal for inf/nan (B&B roots carry a -inf bound);
  // render non-finite values as strings so the document stays parseable.
  if (std::isfinite(value))
    s_ += format_string("%.17g", value);
  else
    s_ += value != value ? "\"nan\"" : (value > 0 ? "\"inf\"" : "\"-inf\"");
  return *this;
}

Args& Args::num(std::string_view key, long value) {
  sep();
  s_ += '"';
  s_ += json_escape(key);
  s_ += "\":";
  s_ += format_string("%ld", value);
  return *this;
}

Args& Args::boolean(std::string_view key, bool value) {
  sep();
  s_ += '"';
  s_ += json_escape(key);
  s_ += "\":";
  s_ += value ? "true" : "false";
  return *this;
}

std::string Args::done() {
  s_ += '}';
  return std::move(s_);
}

void instant(const char* name, const char* cat, std::string args_json) {
  if (!tracing_enabled()) return;
  trace().emit('i', name, cat, std::move(args_json));
}

void TraceSpan::begin(const char* name, const char* cat,
                      std::string args_json) {
  live_ = true;
  name_ = name;
  cat_ = cat;
  trace().emit('B', name_, cat_, std::move(args_json));
}

void TraceSpan::end() {
  if (!live_) return;
  live_ = false;
  // Emitted even if tracing stopped meanwhile, so B/E pairs stay balanced.
  trace().emit('E', std::move(name_), std::move(cat_), {});
}

} // namespace luis::obs
