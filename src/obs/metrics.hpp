// Metrics: one process-wide registry of named counters, gauges, and
// histograms, replacing the scattered ad-hoc Stats structs (solver cache,
// program cache, engine counters) with a single uniform dump (text and
// JSON, both carrying the build stamp).
//
// Counters and gauges are single atomics — cheap enough to stay on in
// production paths. Histograms take a short per-histogram lock. Name
// lookup (counter()/gauge()/histogram()) locks the registry map, so hot
// paths should resolve their instrument once and keep the reference;
// instruments have stable addresses for the registry's lifetime.
//
// The registry is instantiable (unit tests use private instances); the
// instrumented subsystems use the process-global metrics().
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace luis::obs {

class Counter {
public:
  void inc(long n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void set(long n) { v_.store(n, std::memory_order_relaxed); }
  long value() const { return v_.load(std::memory_order_relaxed); }

private:
  std::atomic<long> v_{0};
};

class Gauge {
public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

private:
  std::atomic<double> v_{0.0};
};

/// Exponential-bucket histogram for positive samples (durations, counts).
/// Bucket i covers (base^(i-1), base^i] * smallest; fixed 4x buckets from
/// 1e-7 keep the layout platform-independent and allocation-free.
class Histogram {
public:
  static constexpr int kBuckets = 24;
  static constexpr double kFirstUpperBound = 1e-7;
  static constexpr double kGrowth = 4.0;

  void observe(double v);

  struct Snapshot {
    long count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    long buckets[kBuckets] = {};
    double mean() const { return count > 0 ? sum / count : 0.0; }
    /// Estimated q-quantile (q in [0, 1]) from the bucket counts:
    /// linear interpolation across the covering bucket's range, with the
    /// observed min/max substituted for the open bucket edges so the
    /// estimate never leaves [min, max]. Returns 0 on an empty snapshot.
    double percentile(double q) const;
  };
  Snapshot snapshot() const;

  /// Inclusive upper bound of bucket `i` (the last bucket is +inf).
  static double upper_bound(int i);

private:
  mutable std::mutex mutex_;
  Snapshot data_;
};

class MetricsRegistry {
public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Convenience for one-shot publication: gauge(name).set(v).
  void set_gauge(std::string_view name, double v) { gauge(name).set(v); }

  /// Sorted-by-name dumps. JSON: {"build":...,"counters":{...},
  /// "gauges":{...},"histograms":{...}}.
  std::string to_text() const;
  std::string to_json() const;

  /// Drops every registered instrument (invalidates held references —
  /// only for test isolation).
  void reset();

private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-global registry the instrumented subsystems report into.
MetricsRegistry& metrics();

} // namespace luis::obs
