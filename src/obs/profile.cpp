#include "obs/profile.hpp"

#include <algorithm>

#include "ir/printer.hpp"
#include "obs/build_info.hpp"
#include "support/diag.hpp"
#include "support/json.hpp"
#include "support/string_utils.hpp"

namespace luis::obs {

std::vector<std::string> instruction_texts(const ir::Function& f) {
  std::vector<std::string> out;
  const std::string printed = ir::print_function(f);
  bool in_blocks = false; // skips the header and the array declarations
  std::size_t pos = 0;
  while (pos < printed.size()) {
    std::size_t eol = printed.find('\n', pos);
    if (eol == std::string::npos) eol = printed.size();
    const std::string_view line(printed.data() + pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line.front() != ' ' && line.back() == ':') {
      in_blocks = true;
      continue;
    }
    if (in_blocks && line.size() > 2 && line.substr(0, 2) == "  ")
      out.emplace_back(line.substr(2));
  }
  return out;
}

HotSpotReport build_hotspot_report(const interp::CompiledProgram& p,
                                   const ir::Function& f,
                                   const interp::VmProfile& profile,
                                   const platform::OpTimeTable& table,
                                   const platform::CostModelOptions& opt) {
  LUIS_ASSERT(profile.instr_executions.size() == p.code.size(),
              "profile does not match the compiled program");
  LUIS_ASSERT(profile.edge_applications.size() == p.edges.size(),
              "profile does not match the compiled program edges");

  HotSpotReport rep;
  rep.function_name = p.function_name;
  rep.platform = table.machine();

  // Price of each dense counter slot: exactly what simulated_time pays per
  // increment of that counter.
  std::vector<double> slot_cost(p.counter_keys.size(), 0.0);
  for (std::size_t i = 0; i < p.counter_keys.size(); ++i)
    slot_cost[i] =
        table.op_time(p.counter_keys[i].first, p.counter_keys[i].second);
  const auto billed = [&](std::int32_t counter) {
    return counter >= 0 ? slot_cost[static_cast<std::size_t>(counter)] : 0.0;
  };

  // cost/execs per source ordinal; one extra slot for synthetic code.
  const std::size_t n_ord = p.source_instruction_count;
  std::vector<double> cost(n_ord + 1, 0.0);
  std::vector<long> execs(n_ord + 1, 0);
  const auto slot = [&](std::int32_t src) {
    return src >= 0 ? static_cast<std::size_t>(src) : n_ord;
  };

  using Kind = interp::BInst::Kind;
  for (std::size_t pc = 0; pc < p.code.size(); ++pc) {
    const interp::BInst& bi = p.code[pc];
    const long n = profile.instr_executions[pc];
    if (n == 0) continue;
    double per = 0.0;   // billed on every execution
    double extra = 0.0; // data-dependent (select side)
    switch (bi.kind) {
    case Kind::Arith2:
    case Kind::ExactFixed2:
      per = billed(bi.op_counter) + billed(bi.a.cast_counter) +
            billed(bi.b.cast_counter);
      break;
    case Kind::Arith1:
      per = billed(bi.op_counter) + billed(bi.a.cast_counter);
      break;
    case Kind::CastReal:
      per = billed(bi.a.cast_counter);
      break;
    case Kind::IntToReal:
      per = billed(bi.op_counter);
      break;
    case Kind::Load:
    case Kind::Store:
      per = opt.non_real_op_cost + billed(bi.a.cast_counter);
      break;
    case Kind::RealCmp: // operand casts are compiled out (raw reads)
      per = opt.non_real_op_cost + billed(bi.a.cast_counter) +
            billed(bi.b.cast_counter);
      break;
    case Kind::IntArith:
    case Kind::IntCmp:
    case Kind::SelectInt:
    case Kind::Br:
    case Kind::CondBr:
      per = opt.non_real_op_cost;
      break;
    case Kind::SelectReal: {
      // Only the chosen operand's fetch bills its cast.
      per = opt.non_real_op_cost;
      const long first = profile.select_real_first[pc];
      extra = static_cast<double>(first) * billed(bi.a.cast_counter) +
              static_cast<double>(n - first) * billed(bi.b.cast_counter);
      break;
    }
    case Kind::Ret:
    case Kind::Trap:
      break;
    }
    cost[slot(bi.src)] += static_cast<double>(n) * per + extra;
    execs[slot(bi.src)] += n;
  }

  // Phi moves execute on edge application and may bill a cast; their cost
  // belongs to the phi instruction (PhiMove::dst is the phi's ordinal).
  for (std::size_t e = 0; e < p.edges.size(); ++e) {
    const long n = profile.edge_applications[e];
    if (n == 0) continue;
    const interp::EdgeMoves& em = p.edges[e];
    for (std::int32_t i = 0; i < em.count; ++i) {
      const interp::PhiMove& m = p.moves[static_cast<std::size_t>(em.start + i)];
      const auto s = static_cast<std::size_t>(m.dst);
      execs[s] += n;
      if (m.is_real)
        cost[s] += static_cast<double>(n) * billed(m.rsrc.cast_counter);
    }
  }

  const std::vector<std::string> texts = instruction_texts(f);
  LUIS_ASSERT(texts.size() == n_ord,
              "printed instruction count does not match the program");
  for (std::size_t i = 0; i <= n_ord; ++i) {
    if (execs[i] == 0 && cost[i] == 0.0) continue;
    HotSpot h;
    h.ordinal = i < n_ord ? static_cast<int>(i) : -1;
    h.text = i < n_ord ? texts[i] : "<synthetic>";
    h.executions = execs[i];
    h.cost = cost[i];
    rep.total_cost += cost[i];
    rep.total_executions += execs[i];
    rep.entries.push_back(std::move(h));
  }
  std::sort(rep.entries.begin(), rep.entries.end(),
            [](const HotSpot& a, const HotSpot& b) {
              if (a.cost != b.cost) return a.cost > b.cost;
              return a.ordinal < b.ordinal;
            });
  if (rep.total_cost > 0.0)
    for (HotSpot& h : rep.entries) h.share = h.cost / rep.total_cost;
  return rep;
}

std::string hotspot_text(const HotSpotReport& rep, std::size_t top) {
  std::string out = format_string(
      "hot spots of @%s on %s: total modeled time %.6g across %ld executed "
      "instructions\n",
      rep.function_name.c_str(),
      rep.platform.empty() ? "<unnamed platform>" : rep.platform.c_str(),
      rep.total_cost, rep.total_executions);
  out += format_string("%5s %14s %7s %12s  %s\n", "rank", "cost", "share",
                       "execs", "instruction");
  std::size_t rank = 0;
  for (const HotSpot& h : rep.entries) {
    if (top > 0 && rank >= top) {
      out += format_string("  ... %zu more\n", rep.entries.size() - rank);
      break;
    }
    out += format_string("%5zu %14.6g %6.1f%% %12ld  %s\n", ++rank, h.cost,
                         100.0 * h.share, h.executions, h.text.c_str());
  }
  return out;
}

std::string hotspot_json(const HotSpotReport& rep) {
  JsonWriter w;
  w.begin_object();
  w.newline();
  w.key("build");
  w.raw_value(build_info_json());
  w.newline();
  w.key("function");
  w.value(rep.function_name);
  w.key("platform");
  w.value(rep.platform);
  w.key("total_cost");
  w.value(rep.total_cost, "%.17g");
  w.key("total_executions");
  w.value(rep.total_executions);
  w.newline();
  w.key("hotspots");
  w.begin_array();
  w.newline();
  for (const HotSpot& h : rep.entries) {
    w.begin_object();
    w.key("ordinal");
    w.value(static_cast<long>(h.ordinal));
    w.key("instruction");
    w.value(h.text);
    w.key("executions");
    w.value(h.executions);
    w.key("cost");
    w.value(h.cost, "%.17g");
    w.key("share");
    w.value(h.share, "%.6g");
    w.end_object();
    w.newline();
  }
  w.end_array();
  w.newline();
  w.end_object();
  w.newline();
  return w.take();
}

} // namespace luis::obs
