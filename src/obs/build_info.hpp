// Build-info stamping: which binary produced this artifact?
//
// The values are baked in at CMake configure time (git describe, build
// type, sanitizer mode, compiler) and embedded in the header of every
// trace, metrics, and sweep JSON document, plus the `luis version` verb —
// so a report can always be traced back to the exact build that wrote it.
#pragma once

#include <string>

namespace luis::obs {

struct BuildInfo {
  const char* git_describe; ///< `git describe --always --dirty`, or "unknown"
  const char* build_type;   ///< CMAKE_BUILD_TYPE
  const char* sanitizer;    ///< LUIS_SANITIZE value ("OFF", "address", ...)
  const char* compiler;     ///< compiler id + version
};

const BuildInfo& build_info();

/// The stamp as a JSON object, e.g.
/// {"git":"0ac02f8","build_type":"RelWithDebInfo","sanitizer":"OFF",...}.
std::string build_info_json();

/// One-line human-readable stamp (the `luis version` output).
std::string version_string();

} // namespace luis::obs
