#include "platform/microbench.hpp"

#include <cmath>
#include <cstdint>
#include <ctime>
#include <limits>

namespace luis::platform {
namespace {

double now_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

/// Times `iters` executions of `step` on a dependent value chain, taking
/// the minimum over `blocks` runs. The dependent chain defeats both
/// dead-code elimination and out-of-order overlap, which is what an
/// instruction-latency characterization wants.
template <typename T, typename Step>
double time_blocks(const MicrobenchOptions& opt, T seed, Step step) {
  volatile T sink = seed; // defeat constant folding across blocks
  double best = std::numeric_limits<double>::infinity();
  for (int b = 0; b < opt.blocks; ++b) {
    T x = sink;
    const double start = now_seconds();
    for (int i = 0; i < opt.iterations_per_block; ++i) x = step(x);
    const double elapsed = now_seconds() - start;
    sink = x;
    if (elapsed > 0.0 && elapsed < best) best = elapsed;
  }
  return best;
}

} // namespace

OpTimeTable run_microbenchmark(const MicrobenchOptions& opt) {
  OpTimeTable table("host");

  // Arithmetic. Operand values keep every chain numerically stable so the
  // loop cannot hit inf/NaN slow paths.
  table.set("add", "fix", time_blocks<std::int32_t>(opt, 1, [](std::int32_t x) {
              return x + 12345;
            }));
  table.set("sub", "fix", time_blocks<std::int32_t>(opt, 1, [](std::int32_t x) {
              return x - 12345;
            }));
  table.set("mul", "fix", time_blocks<std::int32_t>(opt, 3, [](std::int32_t x) {
              return x * 3;
            }));
  table.set("div", "fix", time_blocks<std::int32_t>(opt, 1 << 30,
                                                    [](std::int32_t x) {
                                                      return x / 3 + (1 << 30);
                                                    }));
  table.set("rem", "fix", time_blocks<std::int32_t>(opt, 1 << 30,
                                                    [](std::int32_t x) {
                                                      return x % 1234567 + (1 << 30);
                                                    }));

  table.set("add", "float",
            time_blocks<float>(opt, 1.0f, [](float x) { return x + 1.25f; }));
  table.set("sub", "float",
            time_blocks<float>(opt, 1.0f, [](float x) { return x - 1.25f; }));
  table.set("mul", "float", time_blocks<float>(opt, 1.5f, [](float x) {
              return x * 0.99999f;
            }));
  table.set("div", "float", time_blocks<float>(opt, 1.5f, [](float x) {
              return x / 1.00001f;
            }));
  table.set("rem", "float", time_blocks<float>(opt, 123.456f, [](float x) {
              return std::fmod(x, 7.89f) + 123.0f;
            }));

  table.set("add", "double",
            time_blocks<double>(opt, 1.0, [](double x) { return x + 1.25; }));
  table.set("sub", "double",
            time_blocks<double>(opt, 1.0, [](double x) { return x - 1.25; }));
  table.set("mul", "double", time_blocks<double>(opt, 1.5, [](double x) {
              return x * 0.999999999;
            }));
  table.set("div", "double", time_blocks<double>(opt, 1.5, [](double x) {
              return x / 1.000000001;
            }));
  table.set("rem", "double", time_blocks<double>(opt, 123.456, [](double x) {
              return std::fmod(x, 7.89) + 123.0;
            }));

  // Casts: each block round-trips through the target type; the cast pair
  // dominates the loop body.
  table.set("cast_fix", "fix", time_blocks<std::int32_t>(opt, 7, [](std::int32_t x) {
              return (x << 1) >> 1; // fixed-point shift realignment
            }));
  table.set("cast_fix", "float",
            time_blocks<std::int32_t>(opt, 7, [](std::int32_t x) {
              return static_cast<std::int32_t>(static_cast<float>(x) + 1.0f);
            }));
  table.set("cast_fix", "double",
            time_blocks<std::int32_t>(opt, 7, [](std::int32_t x) {
              return static_cast<std::int32_t>(static_cast<double>(x) + 1.0);
            }));
  table.set("cast_float", "fix", time_blocks<float>(opt, 7.5f, [](float x) {
              return static_cast<float>(static_cast<std::int32_t>(x)) + 0.5f;
            }));
  table.set("cast_float", "double", time_blocks<float>(opt, 7.5f, [](float x) {
              return static_cast<float>(static_cast<double>(x) + 0.1);
            }));
  table.set("cast_double", "fix", time_blocks<double>(opt, 7.5, [](double x) {
              return static_cast<double>(static_cast<std::int32_t>(x)) + 0.5;
            }));
  table.set("cast_double", "float", time_blocks<double>(opt, 7.5, [](double x) {
              return static_cast<double>(static_cast<float>(x)) + 0.25;
            }));

  table.normalize();
  return table;
}

} // namespace luis::platform
