#include "platform/optime.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "support/diag.hpp"

namespace luis::platform {
namespace {

/// Reduces extension type classes to a class the table measures. fp8 and
/// fposit arithmetic has explicit measured rows (kSoftEmulated below), so
/// this fallback only fires for their unmeasured ops (casts).
std::string reduce_type(const std::string& type) {
  if (type == "half" || type == "bfloat16" || type == "fp8") return "float";
  if (type == "posit" || type == "fposit") return "float";
  return type;
}

/// Reduces intrinsic ops to a measured op, with a scale factor.
std::pair<std::string, double> reduce_op(const std::string& op) {
  if (op == "neg" || op == "abs" || op == "min" || op == "max")
    return {"add", 1.0};
  if (op == "sqrt") return {"div", 2.0};
  if (op == "exp" || op == "pow") return {"rem", 1.0};
  if (op == "cast_half" || op == "cast_bfloat16" || op == "cast_posit" ||
      op == "cast_fp8" || op == "cast_fposit")
    return {"cast_float", 1.0};
  return {op, 1.0};
}

} // namespace

double OpTimeTable::op_time(const std::string& op, const std::string& type) const {
  const auto exact = times_.find({op, type});
  if (exact != times_.end()) return exact->second;

  auto [o, op_factor] = reduce_op(op);
  // An intrinsic reduced to a measured op keeps the original type class
  // when that class has its own row (the fp8/fposit measured rows): neg
  // on fp8 costs like the measured fp8 add, not like a hardware float
  // add.
  const auto reduced_op = times_.find({o, type});
  if (reduced_op != times_.end()) return reduced_op->second * op_factor;

  double factor = op_factor;
  std::string t = reduce_type(type);
  // Posits have no hardware units on the measured machines and no
  // measured rows either; their ops fall back to float times a software
  // factor. (fposit casts share the penalty — fposit arithmetic has
  // measured rows and never reaches this fallback.)
  if (type == "posit" || type == "fposit") factor *= kPositSoftwareFactor;

  const auto reduced = times_.find({o, t});
  if (reduced != times_.end()) return reduced->second * factor;

  // Casts between identical reduced classes (e.g. posit<->posit shifts
  // reduced to float<->float) cost one base unit.
  if (o.rfind("cast_", 0) == 0 && o.substr(5) == t) return factor;
  LUIS_FATAL("op-time table '" + machine_ + "' has no entry for (" + op + ", " +
             type + ")");
}

void OpTimeTable::normalize() {
  if (times_.empty()) return;
  double min_time = times_.begin()->second;
  for (const auto& [key, t] : times_) min_time = std::min(min_time, t);
  LUIS_ASSERT(min_time > 0.0, "non-positive micro-benchmark time");
  for (auto& [key, t] : times_) t /= min_time;
}

std::string OpTimeTable::to_text() const {
  std::string out = "machine " + machine_ + "\n";
  char buf[128];
  for (const auto& [key, time] : times_) {
    std::snprintf(buf, sizeof buf, "%s %s %.17g\n", key.first.c_str(),
                  key.second.c_str(), time);
    out += buf;
  }
  return out;
}

std::optional<OpTimeTable> parse_optime_table(std::string_view text) {
  OpTimeTable table;
  bool have_machine = false;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string line{text.substr(start, end - start)};
    start = end + 1;
    if (line.empty()) continue;
    char op[64], type[64];
    double value;
    if (std::sscanf(line.c_str(), "machine %63s", op) == 1) {
      table = OpTimeTable(op);
      have_machine = true;
      continue;
    }
    if (std::sscanf(line.c_str(), "%63s %63s %lf", op, type, &value) != 3)
      return std::nullopt;
    table.set(op, type, value);
  }
  if (!have_machine || table.entries().empty()) return std::nullopt;
  return table;
}

namespace {

struct Row {
  const char* op;
  const char* type;
  double stm32, raspberry, intel, amd;
};

// Table II of the paper, verbatim.
constexpr Row kTable2[] = {
    {"add", "fix", 1.24, 1.30, 1.05, 1.35},
    {"add", "float", 2.33, 1.81, 1.03, 1.33},
    {"add", "double", 2.72, 2.15, 1.39, 2.63},
    {"sub", "fix", 1.24, 1.30, 1.05, 1.35},
    {"sub", "float", 2.33, 1.81, 1.03, 1.33},
    {"sub", "double", 2.72, 2.15, 1.39, 2.63},
    {"mul", "fix", 1.62, 2.04, 1.36, 2.63},
    {"mul", "float", 2.65, 3.35, 1.83, 4.43},
    {"mul", "double", 4.02, 4.14, 1.56, 4.58},
    {"div", "fix", 5.30, 3.45, 3.98, 15.14},
    {"div", "float", 5.60, 4.13, 2.03, 6.17},
    {"div", "double", 18.33, 5.68, 2.21, 6.57},
    {"rem", "fix", 1.39, 2.20, 1.59, 9.51},
    {"rem", "float", 27.01, 15.18, 54.01, 13.59},
    {"rem", "double", 152.35, 92.15, 387.09, 74.30},
    {"cast_fix", "fix", 1.00, 1.13, 1.00, 1.00},
    {"cast_fix", "float", 7.63, 5.25, 3.08, 7.35},
    {"cast_fix", "double", 20.89, 6.77, 3.36, 8.37},
    {"cast_float", "fix", 4.28, 4.47, 2.87, 5.41},
    {"cast_float", "double", 1.63, 1.00, 1.18, 1.67},
    {"cast_double", "fix", 5.65, 5.53, 2.72, 6.09},
    {"cast_double", "float", 1.79, 5.91, 1.17, 1.65},
};

// Software-emulated representations (no hardware units on any Table II
// machine): explicit arithmetic rows derived from the bench_micro SoftEmu
// pass instead of the old scaled cost-class factors (fp8 used to price
// like hardware float, fposit like float x kPositSoftwareFactor — both
// guesses). The pass times the VM's emulation sequence (double op +
// quantize into the format, operands pre-quantized) against the native
// float op it displaces; the per-op time ratio below is that quotient.
//
// Provenance — re-measure with `bench_micro --benchmark_filter=SoftEmu`
// and update when the emulation code changes:
//   2026-08-08, Intel Xeon @ 2.70GHz, gcc 12.2.0 -O2, google-benchmark
//   CPU time, >= 4.7M iterations per op.
//     float   : add 0.92ns  mul 0.92ns  div 1.05ns  rem 6.58ns
//     e4m3    : add 29.8ns  mul 34.0ns  div 32.4ns  rem 37.9ns
//     fposit16: add 58.8ns  mul 64.4ns  div 63.2ns  rem 72.8ns
// The ratio is dominated by the host's integer pipeline (decode, clamp,
// re-encode), not the float datapath, so it transfers across machines far
// better than an absolute time: each platform's row is its own float row
// scaled by the measured ratio. rem ratios are small only because float
// rem is itself a library call.
struct SoftEmulatedRow {
  const char* op;
  double fp8, fposit; ///< measured time ratio vs. the native float op
};
constexpr SoftEmulatedRow kSoftEmulated[] = {
    {"add", 32.5, 64.1}, {"sub", 32.5, 64.1}, {"mul", 37.0, 70.1},
    {"div", 30.9, 60.2}, {"rem", 5.76, 11.1},
};

OpTimeTable make_table(const std::string& name, double Row::*column) {
  OpTimeTable table(name);
  for (const Row& row : kTable2) table.set(row.op, row.type, row.*column);
  for (const SoftEmulatedRow& row : kSoftEmulated) {
    const double f = table.op_time(row.op, "float");
    table.set(row.op, "fp8", row.fp8 * f);
    table.set(row.op, "fposit", row.fposit * f);
  }
  return table;
}

} // namespace

const OpTimeTable& stm32_table() {
  static const OpTimeTable t = make_table("Stm32", &Row::stm32);
  return t;
}
const OpTimeTable& raspberry_table() {
  static const OpTimeTable t = make_table("Raspberry", &Row::raspberry);
  return t;
}
const OpTimeTable& intel_table() {
  static const OpTimeTable t = make_table("Intel", &Row::intel);
  return t;
}
const OpTimeTable& amd_table() {
  static const OpTimeTable t = make_table("AMD", &Row::amd);
  return t;
}

std::span<const OpTimeTable* const> standard_platforms() {
  static const OpTimeTable* const kAll[] = {&stm32_table(), &raspberry_table(),
                                            &intel_table(), &amd_table()};
  return kAll;
}

const OpTimeTable* platform_by_name(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (const OpTimeTable* table : standard_platforms()) {
    std::string m = table->machine();
    std::transform(m.begin(), m.end(), m.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (m == lower) return table;
  }
  return nullptr;
}

} // namespace luis::platform
