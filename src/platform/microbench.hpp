// Host platform characterization — the measurement procedure of §IV-C.
//
// Measures the execution time of 128-iteration blocks of each elementary
// operation (add/sub/mul/div/rem) in each native type class (int32 for
// fixed point, float, double) and of every cross-class cast, using
// clock_gettime(CLOCK_PROCESS_CPUTIME_ID) exactly as the paper does on the
// Linux machines. The resulting table is normalized to the fastest
// operation. The benchmark only needs to run once per target and is
// independent of the program being tuned.
#pragma once

#include "platform/optime.hpp"

namespace luis::platform {

struct MicrobenchOptions {
  /// Iterations per timed block (the paper uses 128).
  int iterations_per_block = 128;
  /// Timed blocks per operation; the minimum over blocks is used, which
  /// rejects scheduler noise.
  int blocks = 2000;
};

/// Characterizes the machine this process runs on. Returns a normalized
/// OpTimeTable with the same (op, type) vocabulary as Table II.
OpTimeTable run_microbenchmark(const MicrobenchOptions& options = {});

} // namespace luis::platform
