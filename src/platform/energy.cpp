#include "platform/energy.hpp"

#include "support/diag.hpp"
#include "support/string_utils.hpp"

namespace luis::platform {

double power_factor(const std::string& cost_class, const PowerModel& model) {
  if (cost_class == "fix") return model.fix;
  if (cost_class == "double") return model.dbl;
  // float and the narrow/exotic float classes share the float datapath
  // power envelope (posits run in software on the integer datapath, but
  // for many more cycles — the op-time side carries that factor).
  if (cost_class == "float" || cost_class == "half" ||
      cost_class == "bfloat16" || cost_class == "posit")
    return model.flt;
  LUIS_FATAL("unknown cost class for power model: " + cost_class);
}

double op_energy(const OpTimeTable& table, const std::string& op,
                 const std::string& type, const PowerModel& model) {
  const double time = table.op_time(op, type);
  if (starts_with(op, "cast_")) return time * model.cast * power_factor(type, model);
  return time * power_factor(type, model);
}

double simulated_energy(const interp::CostCounters& counters,
                        const OpTimeTable& table, const PowerModel& model,
                        const CostModelOptions& options) {
  double total = static_cast<double>(counters.non_real_ops) *
                 options.non_real_op_cost * model.non_real;
  for (const auto& [key, count] : counters.ops)
    total += static_cast<double>(count) * op_energy(table, key.first, key.second, model);
  return total;
}

double energy_saving_percent(double baseline_energy, double tuned_energy) {
  LUIS_ASSERT(tuned_energy > 0.0, "tuned energy must be positive");
  return 100.0 * (baseline_energy / tuned_energy - 1.0);
}

} // namespace luis::platform
