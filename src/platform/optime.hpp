// Platform characterization: the op-time(o, t) function of Section IV-C.
//
// An OpTimeTable holds the normalized execution time of every elementary
// operation in every type class, as measured by instruction-level
// micro-benchmarks (128 iterations each, normalized to the fastest
// operation on the machine). The four tables of the paper's Table II are
// provided as canned platform models; the host machine can be
// characterized live with run_microbenchmark (see microbench.hpp).
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace luis::platform {

class OpTimeTable {
public:
  OpTimeTable() = default;
  explicit OpTimeTable(std::string machine) : machine_(std::move(machine)) {}

  const std::string& machine() const { return machine_; }

  void set(const std::string& op, const std::string& type, double time) {
    times_[{op, type}] = time;
  }

  /// op-time(o, t). `op` is one of add/sub/mul/div/rem (plus the math
  /// intrinsics, see the fallback rules), `type` is a cost class:
  /// "fix", "float", "double" (plus "half"/"bfloat16"/"posit" extensions).
  ///
  /// Fallback rules for entries a table does not measure directly:
  ///  - half and bfloat16 fall back to the float datapath;
  ///  - fp8 and fposit arithmetic uses explicit measured rows (the
  ///    bench_micro SoftEmu pass; see optime.cpp) — only their casts
  ///    fall back;
  ///  - posit arithmetic falls back to float times a software-emulation
  ///    factor (posits have no hardware here);
  ///  - neg/abs/min/max cost like add (keeping a measured row's type
  ///    class when one exists);
  ///  - sqrt costs 2x div; exp/pow cost like rem (library calls).
  double op_time(const std::string& op, const std::string& type) const;

  /// op-time(cast_from, to).
  double cast_time(const std::string& from, const std::string& to) const {
    return op_time("cast_" + from, to);
  }

  bool has(const std::string& op, const std::string& type) const {
    return times_.count({op, type}) > 0;
  }
  const std::map<std::pair<std::string, std::string>, double>& entries() const {
    return times_;
  }

  /// Divides every entry by the minimum entry (Section IV-C normalization).
  void normalize();

  /// Serializes as "op type value" lines (with a "machine NAME" header).
  std::string to_text() const;

private:
  std::string machine_;
  std::map<std::pair<std::string, std::string>, double> times_;
};

/// Software-emulation slowdown applied to posit arithmetic (no posit
/// hardware exists on any of the modeled machines).
inline constexpr double kPositSoftwareFactor = 8.0;

// Canned characterizations of the paper's four machines (Table II).
const OpTimeTable& stm32_table();     // Cortex-M3, no FPU
const OpTimeTable& raspberry_table(); // ARMv6, single precision FPU
const OpTimeTable& intel_table();     // Pentium E5300
const OpTimeTable& amd_table();       // Opteron 8435 NUMA node

/// The four canned platforms, in the paper's order.
std::span<const OpTimeTable* const> standard_platforms();

/// Looks up a canned platform by name ("Stm32", "Raspberry", "Intel",
/// "AMD"; case-insensitive). Returns nullptr if unknown.
const OpTimeTable* platform_by_name(const std::string& name);

/// Parses the text form produced by OpTimeTable::to_text. Returns nullopt
/// on malformed input. This is how a characterization measured once on a
/// target machine ("luis characterize -o target.optime") is carried to the
/// machine doing the compilation — the paper's cross-compilation workflow
/// (all kernels were compiled on the AMD machine for every target).
std::optional<OpTimeTable> parse_optime_table(std::string_view text);

} // namespace luis::platform
