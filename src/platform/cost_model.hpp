// Simulated execution time: dynamic operation counts priced by a platform
// op-time table. This is the t / t' pair behind the paper's Speedup metric
// in our hardware-free reproduction.
#pragma once

#include "interp/interpreter.hpp"
#include "platform/optime.hpp"

namespace luis::platform {

struct CostModelOptions {
  /// Cost of every non-real operation (index arithmetic, loads/stores,
  /// branches) in normalized op-time units. These execute identically in
  /// the baseline and the tuned program, so they only dampen speedup
  /// ratios. Real loop nests amortize most of this overhead through
  /// addressing modes and pipelining, so the default prices a non-real
  /// step well below one arithmetic op; the interpreter also counts
  /// several bookkeeping steps per source-level operation.
  double non_real_op_cost = 0.25;
};

/// Total simulated time of an execution profile on a platform.
double simulated_time(const interp::CostCounters& counters,
                      const OpTimeTable& table, const CostModelOptions& = {});

/// The paper's Speedup metric: S = 100 * (t / t' - 1).
double speedup_percent(double baseline_time, double tuned_time);

} // namespace luis::platform
