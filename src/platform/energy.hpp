// Energy cost model — the paper's future-work direction of "different cost
// functions to maximise alternative non-functional metrics, such as ...
// power saving" (Section VI).
//
// Energy per operation is modeled as op-time x a per-datapath power
// factor: integer/fixed point datapaths draw less power per cycle than the
// FPU, wide floats more than narrow ones, and memory/control overhead sits
// below the ALUs. The factors are synthetic (no power rails were measured
// for this reproduction) but their *ordering* follows every published
// embedded-core datasheet; they are configurable for calibrated targets.
#pragma once

#include "interp/interpreter.hpp"
#include "platform/cost_model.hpp"
#include "platform/optime.hpp"

namespace luis::platform {

struct PowerModel {
  double fix = 1.0;      ///< integer datapath (baseline)
  double flt = 1.4;      ///< single precision FPU
  double dbl = 1.9;      ///< double precision FPU
  double cast = 1.1;     ///< inter-datapath transfer
  double non_real = 0.6; ///< address arithmetic, memory, control
};

/// Power factor for a cost class ("fix", "float", "double", extensions).
double power_factor(const std::string& cost_class, const PowerModel& model);

/// Energy of one operation: op-time(o, t) x power(t). Casts are priced at
/// the destination class with the transfer surcharge.
double op_energy(const OpTimeTable& table, const std::string& op,
                 const std::string& type, const PowerModel& model = {});

/// Total simulated energy of an execution profile (the Ex-like integral
/// the Speedup metric's denominator uses, in energy units).
double simulated_energy(const interp::CostCounters& counters,
                        const OpTimeTable& table, const PowerModel& model = {},
                        const CostModelOptions& options = {});

/// Energy saving percentage, mirroring the paper's speedup formula:
/// 100 * (E_base / E_tuned - 1).
double energy_saving_percent(double baseline_energy, double tuned_energy);

} // namespace luis::platform
