#include "platform/cost_model.hpp"

#include "support/diag.hpp"

namespace luis::platform {

double simulated_time(const interp::CostCounters& counters,
                      const OpTimeTable& table, const CostModelOptions& opt) {
  double total = static_cast<double>(counters.non_real_ops) * opt.non_real_op_cost;
  for (const auto& [key, count] : counters.ops)
    total += static_cast<double>(count) * table.op_time(key.first, key.second);
  return total;
}

double speedup_percent(double baseline_time, double tuned_time) {
  LUIS_ASSERT(tuned_time > 0.0, "tuned time must be positive");
  return 100.0 * (baseline_time / tuned_time - 1.0);
}

} // namespace luis::platform
