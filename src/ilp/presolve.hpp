// MILP presolve: standard reductions applied before the simplex / branch &
// bound machinery sees the model.
//
//   - variables with lb == ub are substituted out,
//   - singleton rows (one variable) become bound tightenings and vanish,
//   - empty rows are checked for feasibility and dropped,
//   - integer variable bounds are rounded inward.
//
// The reductions iterate to a fixpoint (tightening can fix a variable,
// fixing can empty a row). The result maps reduced-space solutions back to
// the original variable vector.
#pragma once

#include <vector>

#include "ilp/model.hpp"

namespace luis::ilp {

struct PresolvedModel {
  Model reduced;
  bool infeasible = false;

  /// Per original variable: index in the reduced model, or -1 if the
  /// variable was eliminated (its value is in fixed_value).
  std::vector<int> reduced_index;
  std::vector<double> fixed_value;

  int vars_removed = 0;
  int rows_removed = 0;

  /// Objective contribution of the eliminated (fixed) variables. The
  /// reduced objective deliberately excludes it, so reduced-space
  /// objectives and bounds live in reduced-model terms; callers lift them
  /// back by adding this offset (solve_milp does).
  double objective_offset = 0.0;

  /// Lifts a reduced-space assignment back to the original variables.
  std::vector<double> restore(const std::vector<double>& reduced_values) const;
};

PresolvedModel presolve(const Model& model);

} // namespace luis::ilp
