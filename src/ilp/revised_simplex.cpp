#include "ilp/revised_simplex.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "ilp/basis_lu.hpp"
#include "support/diag.hpp"

namespace luis::ilp {
namespace {

constexpr double kPivotTol = 1e-9;  ///< minimum usable pivot magnitude
constexpr double kRatioTie = 1e-12; ///< ratio-test tie window
constexpr long kStallLimit = 500;   ///< non-improving pivots before Bland

class RevisedSolver {
public:
  RevisedSolver(const Model& model, const SparseColumns& cols,
                const SimplexOptions& opt)
      : model_(model), cols_(cols), opt_(opt),
        m_(static_cast<int>(model.num_constraints())),
        n_(static_cast<int>(model.num_variables())), ncols_(n_ + m_) {}

  Solution run(std::span<const BoundsOverride> overrides, Basis* basis);

private:
  enum class Step { Done, Infeasible, Unbounded, IterationLimit };

  const Model& model_;
  const SparseColumns& cols_;
  SimplexOptions opt_;
  int m_, n_, ncols_;

  std::vector<double> lb_, ub_; ///< per column (structurals then slacks)
  std::vector<double> b_;       ///< rhs per row
  std::vector<double> cost_;    ///< minimization-sign objective per column

  std::vector<std::uint8_t> status_; ///< Basis::Status per column
  std::vector<int> basic_;           ///< per row
  std::vector<double> xb_;           ///< basic values per row
  BasisLu factor_;
  long pivots_ = 0;
  std::vector<char> banned_; ///< numerically rejected entering columns
  std::vector<double> work_; ///< ftran scratch
  std::vector<double> y_, rho_; ///< btran scratch (pricing / leaving row)

  double ptol() const { return opt_.tolerance; }
  double dtol() const { return opt_.tolerance; }

  bool fixed_column(int j) const { return ub_[sz(j)] - lb_[sz(j)] < 1e-12; }
  static std::size_t sz(int i) { return static_cast<std::size_t>(i); }

  void load_column(int j, std::vector<double>& out) const {
    out.assign(sz(m_), 0.0);
    if (j >= n_)
      out[sz(j - n_)] = 1.0;
    else
      cols_.for_entries(j, [&](int r, double v) { out[sz(r)] = v; });
  }

  double dot_column(int j, const std::vector<double>& y) const {
    if (j >= n_) return y[sz(j - n_)];
    double acc = 0.0;
    cols_.for_entries(j, [&](int r, double v) { acc += v * y[sz(r)]; });
    return acc;
  }

  double nonbasic_value(int j) const {
    switch (status_[sz(j)]) {
    case Basis::kAtLower: return lb_[sz(j)];
    case Basis::kAtUpper: return ub_[sz(j)];
    default: return 0.0; // kFree rests at zero
    }
  }

  bool build(std::span<const BoundsOverride> overrides);
  void cold_start();
  bool adopt(const Basis& warm);
  void refactorize();
  void recompute_xb();
  bool primal_infeasible() const;
  bool dual_feasible();
  double current_objective() const;

  Step primal(bool phase1);
  Step dual_reoptimize();
};

bool RevisedSolver::build(std::span<const BoundsOverride> overrides) {
  lb_.resize(sz(ncols_));
  ub_.resize(sz(ncols_));
  for (int j = 0; j < n_; ++j) {
    lb_[sz(j)] = model_.variables()[sz(j)].lower;
    ub_[sz(j)] = model_.variables()[sz(j)].upper;
  }
  for (const BoundsOverride& o : overrides) {
    lb_[sz(o.var)] = o.lower;
    ub_[sz(o.var)] = o.upper;
  }
  for (int j = 0; j < n_; ++j)
    if (lb_[sz(j)] > ub_[sz(j)] + ptol()) return false;
  b_.resize(sz(m_));
  for (int i = 0; i < m_; ++i) {
    const Constraint& c = model_.constraints()[sz(i)];
    b_[sz(i)] = c.rhs;
    // Row sense lives in the slack's bounds: a.x + s = rhs.
    switch (c.sense) {
    case Sense::LE:
      lb_[sz(n_ + i)] = 0.0;
      ub_[sz(n_ + i)] = kInfinity;
      break;
    case Sense::GE:
      lb_[sz(n_ + i)] = -kInfinity;
      ub_[sz(n_ + i)] = 0.0;
      break;
    case Sense::EQ:
      lb_[sz(n_ + i)] = 0.0;
      ub_[sz(n_ + i)] = 0.0;
      break;
    }
  }
  cost_.assign(sz(ncols_), 0.0);
  const double sign =
      model_.objective_direction() == Direction::Minimize ? 1.0 : -1.0;
  for (const auto& [var, coeff] : model_.objective().terms())
    cost_[sz(var)] = sign * coeff;
  banned_.assign(sz(ncols_), 0);
  return true;
}

void RevisedSolver::cold_start() {
  status_.assign(sz(ncols_), Basis::kAtLower);
  for (int j = 0; j < ncols_; ++j) {
    if (std::isfinite(lb_[sz(j)]))
      status_[sz(j)] = Basis::kAtLower;
    else if (std::isfinite(ub_[sz(j)]))
      status_[sz(j)] = Basis::kAtUpper;
    else
      status_[sz(j)] = Basis::kFree;
  }
  basic_.resize(sz(m_));
  for (int i = 0; i < m_; ++i) {
    basic_[sz(i)] = n_ + i;
    status_[sz(n_ + i)] = Basis::kBasic;
  }
}

bool RevisedSolver::adopt(const Basis& warm) {
  if (!warm.fits(sz(n_), sz(m_))) return false;
  status_ = warm.status;
  basic_ = warm.basic;
  std::vector<char> seen(sz(ncols_), 0);
  for (int i = 0; i < m_; ++i) {
    const int j = basic_[sz(i)];
    if (j < 0 || j >= ncols_ || seen[sz(j)] ||
        status_[sz(j)] != Basis::kBasic)
      return false;
    seen[sz(j)] = 1;
  }
  int basics = 0;
  for (int j = 0; j < ncols_; ++j) {
    switch (status_[sz(j)]) {
    case Basis::kBasic:
      if (!seen[sz(j)]) return false;
      ++basics;
      break;
    // Bounds may have changed since the basis was taken (branching
    // overrides): snap nonbasic statuses onto bounds that still exist.
    case Basis::kAtLower:
      if (!std::isfinite(lb_[sz(j)]))
        status_[sz(j)] = std::isfinite(ub_[sz(j)]) ? Basis::kAtUpper
                                                   : Basis::kFree;
      break;
    case Basis::kAtUpper:
      if (!std::isfinite(ub_[sz(j)]))
        status_[sz(j)] = std::isfinite(lb_[sz(j)]) ? Basis::kAtLower
                                                   : Basis::kFree;
      break;
    case Basis::kFree:
      if (std::isfinite(lb_[sz(j)]))
        status_[sz(j)] = Basis::kAtLower;
      else if (std::isfinite(ub_[sz(j)]))
        status_[sz(j)] = Basis::kAtUpper;
      break;
    default: return false;
    }
  }
  return basics == m_;
}

void RevisedSolver::refactorize() {
  if (!factor_.factorize(cols_, basic_)) {
    // A stale or numerically wrecked basis: restart from the always
    // nonsingular slack basis. Progress is lost but soundness is not.
    cold_start();
    const bool ok = factor_.factorize(cols_, basic_);
    LUIS_ASSERT(ok, "slack basis must factorize");
  }
}

void RevisedSolver::recompute_xb() {
  std::vector<double> rhs = b_;
  for (int j = 0; j < ncols_; ++j) {
    if (status_[sz(j)] == Basis::kBasic) continue;
    const double v = nonbasic_value(j);
    if (v == 0.0) continue;
    if (j >= n_)
      rhs[sz(j - n_)] -= v;
    else
      cols_.for_entries(j, [&](int r, double a) { rhs[sz(r)] -= a * v; });
  }
  factor_.ftran(rhs);
  xb_ = std::move(rhs);
}

bool RevisedSolver::primal_infeasible() const {
  for (int i = 0; i < m_; ++i) {
    const int j = basic_[sz(i)];
    if (xb_[sz(i)] < lb_[sz(j)] - ptol() || xb_[sz(i)] > ub_[sz(j)] + ptol())
      return true;
  }
  return false;
}

bool RevisedSolver::dual_feasible() {
  std::vector<double> y(sz(m_));
  for (int i = 0; i < m_; ++i) y[sz(i)] = cost_[sz(basic_[sz(i)])];
  factor_.btran(y);
  const double slack = 10.0 * dtol();
  for (int j = 0; j < ncols_; ++j) {
    if (status_[sz(j)] == Basis::kBasic || fixed_column(j)) continue;
    const double d = cost_[sz(j)] - dot_column(j, y);
    switch (status_[sz(j)]) {
    case Basis::kAtLower:
      if (d < -slack) return false;
      break;
    case Basis::kAtUpper:
      if (d > slack) return false;
      break;
    default: // kFree
      if (std::abs(d) > slack) return false;
      break;
    }
  }
  return true;
}

double RevisedSolver::current_objective() const {
  double z = 0.0;
  for (int j = 0; j < ncols_; ++j) {
    if (status_[sz(j)] == Basis::kBasic) continue;
    z += cost_[sz(j)] * nonbasic_value(j);
  }
  for (int i = 0; i < m_; ++i) z += cost_[sz(basic_[sz(i)])] * xb_[sz(i)];
  return z;
}

RevisedSolver::Step RevisedSolver::primal(bool phase1) {
  long stall = 0;
  double last_obj = kInfinity;
  std::fill(banned_.begin(), banned_.end(), 0);
  std::vector<double> cb(sz(m_));
  for (;;) {
    if (pivots_ >= opt_.max_iterations) return Step::IterationLimit;

    // Phase objective: sum of bound violations (phase 1, costs rebuilt
    // every iteration as violations change) or the real costs (phase 2).
    double infeas = 0.0;
    if (phase1) {
      std::fill(cb.begin(), cb.end(), 0.0);
      for (int i = 0; i < m_; ++i) {
        const int j = basic_[sz(i)];
        if (xb_[sz(i)] < lb_[sz(j)] - ptol()) {
          cb[sz(i)] = -1.0;
          infeas += lb_[sz(j)] - xb_[sz(i)];
        } else if (xb_[sz(i)] > ub_[sz(j)] + ptol()) {
          cb[sz(i)] = 1.0;
          infeas += xb_[sz(i)] - ub_[sz(j)];
        }
      }
      if (infeas <= ptol()) return Step::Done;
    } else {
      for (int i = 0; i < m_; ++i) cb[sz(i)] = cost_[sz(basic_[sz(i)])];
    }

    const double obj = phase1 ? infeas : current_objective();
    if (obj < last_obj - kRatioTie) {
      last_obj = obj;
      stall = 0;
    } else {
      ++stall;
    }
    const bool bland = stall > kStallLimit;

    y_ = cb;
    factor_.btran(y_);
    const std::vector<double>& y = y_;

    // Entering column: Dantzig (most attractive reduced cost), Bland
    // (first eligible index) once the objective stalls.
    int enter = -1, dir = +1;
    double best = 0.0;
    for (int j = 0; j < ncols_; ++j) {
      if (status_[sz(j)] == Basis::kBasic || banned_[sz(j)]) continue;
      if (fixed_column(j)) continue; // cannot move off its value
      const double d = (phase1 ? 0.0 : cost_[sz(j)]) - dot_column(j, y);
      int cand = 0;
      if (status_[sz(j)] == Basis::kAtLower && d < -dtol())
        cand = +1;
      else if (status_[sz(j)] == Basis::kAtUpper && d > dtol())
        cand = -1;
      else if (status_[sz(j)] == Basis::kFree && std::abs(d) > dtol())
        cand = d < 0.0 ? +1 : -1;
      if (cand == 0) continue;
      if (bland) {
        enter = j;
        dir = cand;
        break;
      }
      if (std::abs(d) > best) {
        best = std::abs(d);
        enter = j;
        dir = cand;
      }
    }
    if (enter < 0)
      return phase1 ? Step::Infeasible : Step::Done;

    load_column(enter, work_);
    factor_.ftran(work_);

    // Ratio test. The entering variable moves by t >= 0 in direction
    // `dir`; basic i changes at rate delta_i = -dir * w_i. In phase 1,
    // infeasible basics only block at the bound that makes them feasible
    // and pass freely otherwise.
    const bool can_flip = status_[sz(enter)] != Basis::kFree &&
                          std::isfinite(lb_[sz(enter)]) &&
                          std::isfinite(ub_[sz(enter)]);
    const double t_flip =
        can_flip ? ub_[sz(enter)] - lb_[sz(enter)] : kInfinity;
    int leave = -1;
    bool leave_at_upper = false;
    double t_best = kInfinity, best_piv = 0.0;
    for (int i = 0; i < m_; ++i) {
      const double wi = work_[sz(i)];
      if (std::abs(wi) <= kPivotTol) continue;
      const double delta = -dir * wi;
      const int bj = basic_[sz(i)];
      double bound;
      bool at_upper;
      if (phase1 && xb_[sz(i)] < lb_[sz(bj)] - ptol()) {
        if (delta <= 0.0) continue;
        bound = lb_[sz(bj)];
        at_upper = false;
      } else if (phase1 && xb_[sz(i)] > ub_[sz(bj)] + ptol()) {
        if (delta >= 0.0) continue;
        bound = ub_[sz(bj)];
        at_upper = true;
      } else if (delta < 0.0) {
        if (!std::isfinite(lb_[sz(bj)])) continue;
        bound = lb_[sz(bj)];
        at_upper = false;
      } else {
        if (!std::isfinite(ub_[sz(bj)])) continue;
        bound = ub_[sz(bj)];
        at_upper = true;
      }
      double t = (bound - xb_[sz(i)]) / delta;
      if (t < 0.0) t = 0.0; // tolerance overshoot at a degenerate vertex
      const bool wins =
          t < t_best - kRatioTie ||
          (t < t_best + kRatioTie &&
           (std::abs(wi) > best_piv + kRatioTie ||
            (leave >= 0 && std::abs(std::abs(wi) - best_piv) <= kRatioTie &&
             bj < basic_[sz(leave)])));
      if (wins) {
        t_best = t;
        leave = i;
        leave_at_upper = at_upper;
        best_piv = std::abs(wi);
      }
    }

    if (t_flip <= t_best + kRatioTie && can_flip) {
      // Bound flip: the entering variable crosses its whole range before
      // any basic blocks. No basis change, just shift the basics.
      for (int i = 0; i < m_; ++i)
        xb_[sz(i)] += -dir * work_[sz(i)] * t_flip;
      status_[sz(enter)] = status_[sz(enter)] == Basis::kAtLower
                               ? Basis::kAtUpper
                               : Basis::kAtLower;
      ++pivots_;
      continue;
    }
    if (leave < 0) return phase1 ? Step::Infeasible : Step::Unbounded;
    if (std::abs(work_[sz(leave)]) < kPivotTol) {
      // Unstable pivot: refresh the factorization (the ftran may be eta
      // drift) or, if already fresh, retire this column for the round.
      if (factor_.eta_count() > 0) {
        refactorize();
        recompute_xb();
      } else {
        banned_[sz(enter)] = 1;
      }
      continue;
    }

    const double enter_val = nonbasic_value(enter) + dir * t_best;
    const int lcol = basic_[sz(leave)];
    for (int i = 0; i < m_; ++i)
      if (i != leave) xb_[sz(i)] += -dir * work_[sz(i)] * t_best;
    status_[sz(lcol)] = leave_at_upper ? Basis::kAtUpper : Basis::kAtLower;
    status_[sz(enter)] = Basis::kBasic;
    basic_[sz(leave)] = enter;
    xb_[sz(leave)] = enter_val;
    if (!factor_.update(leave, work_)) {
      refactorize();
    }
    std::fill(banned_.begin(), banned_.end(), 0);
    ++pivots_;
    if (factor_.eta_count() >= opt_.refactor_interval) {
      refactorize();
      recompute_xb();
    }
  }
}

RevisedSolver::Step RevisedSolver::dual_reoptimize() {
  // The dual simplex restores primal feasibility after bound changes
  // while keeping dual feasibility — the warm-start fast path. It is an
  // accelerator only: bailing out (Step::Done) is always sound because
  // run() follows with the primal phases.
  const long cap = std::max<long>(500, 4L * m_ + 200);
  long iters = 0;
  int fumbles = 0;
  for (;;) {
    if (pivots_ >= opt_.max_iterations) return Step::IterationLimit;
    if (++iters > cap) return Step::Done;

    int r = -1;
    bool below = false;
    double worst = ptol();
    for (int i = 0; i < m_; ++i) {
      const int j = basic_[sz(i)];
      const double vb = lb_[sz(j)] - xb_[sz(i)];
      const double va = xb_[sz(i)] - ub_[sz(j)];
      if (vb > worst) {
        worst = vb;
        r = i;
        below = true;
      }
      if (va > worst) {
        worst = va;
        r = i;
        below = false;
      }
    }
    if (r < 0) return Step::Done; // primal feasible again

    y_.resize(sz(m_));
    for (int i = 0; i < m_; ++i) y_[sz(i)] = cost_[sz(basic_[sz(i)])];
    factor_.btran(y_);
    const std::vector<double>& y = y_;
    rho_.assign(sz(m_), 0.0);
    rho_[sz(r)] = 1.0;
    factor_.btran(rho_);
    const std::vector<double>& rho = rho_;

    // Entering column: dual ratio test. The leaving basic must move back
    // to its violated bound, so eligible nonbasics are those whose move
    // pushes row r the right way; among them the smallest |d|/|alpha|
    // keeps every other reduced cost dual feasible.
    int enter = -1;
    double best_ratio = kInfinity, best_alpha = 0.0;
    for (int j = 0; j < ncols_; ++j) {
      if (status_[sz(j)] == Basis::kBasic || fixed_column(j)) continue;
      const double alpha = dot_column(j, rho);
      if (std::abs(alpha) <= kPivotTol) continue;
      bool ok = false;
      const std::uint8_t st = status_[sz(j)];
      if (st == Basis::kAtLower || st == Basis::kFree)
        ok = ok || (below ? alpha < 0.0 : alpha > 0.0);
      if (st == Basis::kAtUpper || st == Basis::kFree)
        ok = ok || (below ? alpha > 0.0 : alpha < 0.0);
      if (!ok) continue;
      const double d = cost_[sz(j)] - dot_column(j, y);
      const double ratio = std::abs(d) / std::abs(alpha);
      if (ratio < best_ratio - kRatioTie ||
          (ratio < best_ratio + kRatioTie &&
           std::abs(alpha) > std::abs(best_alpha))) {
        best_ratio = ratio;
        enter = j;
        best_alpha = alpha;
      }
    }
    if (enter < 0) return Step::Infeasible; // dual unbounded

    load_column(enter, work_);
    factor_.ftran(work_);
    const double wr = work_[sz(r)];
    if (std::abs(wr) < kPivotTol) {
      if (factor_.eta_count() > 0 && fumbles < 3) {
        ++fumbles;
        refactorize();
        recompute_xb();
        continue;
      }
      return Step::Done; // punt to the primal phases
    }
    fumbles = 0;

    const int lcol = basic_[sz(r)];
    const double bound = below ? lb_[sz(lcol)] : ub_[sz(lcol)];
    const double delta = (xb_[sz(r)] - bound) / wr;
    for (int i = 0; i < m_; ++i)
      if (i != r) xb_[sz(i)] -= work_[sz(i)] * delta;
    const double enter_val = nonbasic_value(enter) + delta;
    status_[sz(lcol)] = below ? Basis::kAtLower : Basis::kAtUpper;
    status_[sz(enter)] = Basis::kBasic;
    basic_[sz(r)] = enter;
    xb_[sz(r)] = enter_val;
    if (!factor_.update(r, work_)) refactorize();
    ++pivots_;
    if (factor_.eta_count() >= opt_.refactor_interval) {
      refactorize();
      recompute_xb();
    }
  }
}

Solution RevisedSolver::run(std::span<const BoundsOverride> overrides,
                            Basis* basis) {
  Solution sol;
  if (!build(overrides)) {
    sol.status = SolveStatus::Infeasible;
    return sol;
  }

  const bool warm = basis && !basis->empty() && adopt(*basis);
  if (!warm) cold_start();
  if (!factor_.factorize(cols_, basic_)) {
    cold_start();
    const bool ok = factor_.factorize(cols_, basic_);
    LUIS_ASSERT(ok, "slack basis must factorize");
  }
  recompute_xb();

  Step step = Step::Done;
  if (warm && primal_infeasible() && dual_feasible())
    step = dual_reoptimize();
  if (step == Step::Done && primal_infeasible()) step = primal(true);
  if (step == Step::Done) step = primal(false);

  sol.iterations = pivots_;
  if (basis) {
    // Persist even partial progress: a limit-hit basis is still a better
    // start than cold for whoever retries.
    basis->status = status_;
    basis->basic = basic_;
  }
  switch (step) {
  case Step::Infeasible:
    sol.status = SolveStatus::Infeasible;
    return sol;
  case Step::Unbounded:
    sol.status = SolveStatus::Unbounded;
    return sol;
  case Step::IterationLimit:
    sol.status = SolveStatus::IterationLimit;
    return sol;
  case Step::Done: break;
  }

  sol.values.assign(sz(n_), 0.0);
  for (int j = 0; j < n_; ++j)
    if (status_[sz(j)] != Basis::kBasic) sol.values[sz(j)] = nonbasic_value(j);
  for (int i = 0; i < m_; ++i)
    if (basic_[sz(i)] < n_) sol.values[sz(basic_[sz(i)])] = xb_[sz(i)];
  sol.status = SolveStatus::Optimal;
  sol.objective = model_.objective_value(sol.values);
  sol.best_bound = sol.objective;
  return sol;
}

} // namespace

Solution solve_lp_revised(const Model& model, const SparseColumns& cols,
                          const SimplexOptions& options,
                          std::span<const BoundsOverride> overrides,
                          Basis* basis) {
  RevisedSolver solver(model, cols, options);
  return solver.run(overrides, basis);
}

} // namespace luis::ilp
