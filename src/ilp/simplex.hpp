// LP engines underneath the branch & bound MILP driver.
//
// Two cores share one entry point:
//
//  - LpCore::Revised (default): a bounded-variable sparse revised simplex —
//    column-wise sparse constraint storage, an LU-factorized basis with
//    eta-file updates and periodic refactorization, a primal phase 1/2 and
//    a dual-simplex re-optimization path for warm starts (see
//    revised_simplex.hpp and docs/SOLVER.md).
//  - LpCore::Dense: the original dense two-phase tableau simplex, kept as
//    the differential-testing baseline behind `--lp-core=dense`.
//
// Both handle general variable bounds, detect infeasibility and
// unboundedness, and guard against cycling by falling back to Bland's rule
// when the objective stalls.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ilp/model.hpp"

namespace luis::ilp {

struct BoundsOverride {
  VarId var = 0;
  double lower = 0.0;
  double upper = kInfinity;
};

enum class LpCore { Revised, Dense };

const char* to_string(LpCore core);

/// Process-wide default core for newly constructed SimplexOptions. The CLI
/// sets this from the global `--lp-core` flag before building any solver
/// options; tests and the differential fuzz oracle set the field directly.
LpCore default_lp_core();
void set_default_lp_core(LpCore core);

struct SimplexOptions {
  long max_iterations = 500000;
  double tolerance = 1e-7;
  LpCore core = default_lp_core();
  /// Revised core: pivots between basis refactorizations. Each pivot
  /// appends one eta vector; refactorizing resets the eta file and
  /// recomputes the basic solution from scratch, which bounds drift.
  int refactor_interval = 64;
};

/// Basis snapshot of the revised simplex: enough to warm-start a re-solve
/// after bound changes (branch & bound children, sweep presets). Column
/// order is [structural variables | one slack per constraint row].
struct Basis {
  enum Status : std::uint8_t {
    kAtLower = 0, ///< nonbasic at its lower bound
    kAtUpper = 1, ///< nonbasic at its upper bound
    kBasic = 2,
    kFree = 3, ///< nonbasic free variable, held at zero
  };
  std::vector<std::uint8_t> status; ///< per column; size cols + rows
  std::vector<int> basic;           ///< per row: the column basic in it

  bool empty() const { return status.empty(); }
  /// Structurally compatible with a model of the given shape?
  bool fits(std::size_t num_variables, std::size_t num_constraints) const {
    return status.size() == num_variables + num_constraints &&
           basic.size() == num_constraints;
  }
};

/// Solves the LP relaxation of `model` (integrality is ignored).
/// `overrides` replaces the bounds of selected variables, which is how the
/// branch & bound driver explores subproblems without copying the model.
Solution solve_lp(const Model& model, const SimplexOptions& options = {},
                  std::span<const BoundsOverride> overrides = {});

} // namespace luis::ilp
