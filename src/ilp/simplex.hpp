// Dense two-phase primal simplex for linear programs.
//
// This is the LP engine underneath the branch & bound MILP driver. It
// handles general variable bounds by shifting/mirroring/splitting columns,
// detects infeasibility through a phase-1 artificial objective, and guards
// against cycling by falling back to Bland's rule when the objective
// stalls. Dense tableaus are entirely adequate for the model sizes LUIS
// produces (hundreds of rows after type-class aggregation).
#pragma once

#include <span>

#include "ilp/model.hpp"

namespace luis::ilp {

struct BoundsOverride {
  VarId var = 0;
  double lower = 0.0;
  double upper = kInfinity;
};

struct SimplexOptions {
  long max_iterations = 500000;
  double tolerance = 1e-7;
};

/// Solves the LP relaxation of `model` (integrality is ignored).
/// `overrides` replaces the bounds of selected variables, which is how the
/// branch & bound driver explores subproblems without copying the model.
Solution solve_lp(const Model& model, const SimplexOptions& options = {},
                  std::span<const BoundsOverride> overrides = {});

} // namespace luis::ilp
