#include "ilp/solver_cache.hpp"

#include <cstdio>

#include "ilp/branch_and_bound.hpp"
#include "obs/metrics.hpp"

namespace luis::ilp {
namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
  out += ';';
}

void append_expr(std::string& out, const LinearExpr& expr) {
  append_double(out, expr.constant());
  for (const auto& [var, coeff] : expr.terms()) {
    out += std::to_string(var);
    out += ':';
    append_double(out, coeff);
  }
}

void append_structure(std::string& out, const Model& model) {
  out += "|v|";
  for (const Variable& v : model.variables()) {
    out += v.kind == VarKind::Continuous ? 'c'
           : v.kind == VarKind::Integer  ? 'i'
                                         : 'b';
    append_double(out, v.lower);
    append_double(out, v.upper);
  }

  out += "|c|";
  for (const Constraint& c : model.constraints()) {
    out += c.sense == Sense::LE ? '<' : c.sense == Sense::GE ? '>' : '=';
    append_double(out, c.rhs);
    append_expr(out, c.expr);
  }
}

} // namespace

std::string canonical_model_key(const Model& model,
                                const BranchAndBoundOptions& options) {
  std::string out;
  out.reserve(64 * (model.num_variables() + model.num_constraints()));

  out += model.objective_direction() == Direction::Minimize ? "min|" : "max|";
  append_expr(out, model.objective());
  append_structure(out, model);

  // Result-affecting solver options: the same model under different limits
  // or tolerances can legitimately produce different incumbents/bounds.
  out += "|o|";
  out += std::to_string(options.max_nodes);
  out += ';';
  append_double(out, options.integrality_tolerance);
  append_double(out, options.relative_gap);
  append_double(out, options.prune_tolerance);
  append_double(out, options.child_bound_tolerance);
  out += options.branching == Branching::PseudoCost ? 'p' : 'f';
  out += options.warm_start ? '1' : '0';
  out += options.share_basis ? '1' : '0';
  out += options.presolve ? '1' : '0';
  out += ';';
  out += std::to_string(options.lp.max_iterations);
  out += ';';
  append_double(out, options.lp.tolerance);
  out += to_string(options.lp.core);
  out += ';';
  out += std::to_string(options.lp.refactor_interval);
  return out;
}

std::string structural_model_key(const Model& model) {
  std::string out;
  out.reserve(64 * (model.num_variables() + model.num_constraints()));
  out += "struct";
  append_structure(out, model);
  return out;
}

std::uint64_t fnv1a64(const std::string& key) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::optional<Solution> SolverCache::lookup(const std::string& key) {
  const std::uint64_t h = fnv1a64(key);
  obs::metrics().counter("solver_cache.lookups").inc();
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.lookups;
  const auto it = entries_.find(h);
  if (it != entries_.end()) {
    for (const Entry& e : it->second) {
      if (e.key == key) {
        ++stats_.hits;
        obs::metrics().counter("solver_cache.hits").inc();
        return e.solution;
      }
    }
  }
  return std::nullopt;
}

void SolverCache::insert(const std::string& key, const Solution& solution) {
  const std::uint64_t h = fnv1a64(key);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& bucket = entries_[h];
  for (const Entry& e : bucket) {
    if (e.key == key) return; // first insertion wins
  }
  bucket.push_back(Entry{key, solution});
  ++stats_.insertions;
  obs::metrics().counter("solver_cache.insertions").inc();
}

std::optional<Basis> SolverCache::lookup_basis(const std::string& key) {
  const std::uint64_t h = fnv1a64(key);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = basis_entries_.find(h);
  if (it != basis_entries_.end()) {
    for (const BasisEntry& e : it->second) {
      if (e.key == key) {
        obs::metrics().counter("solver_cache.basis_hits").inc();
        return e.basis;
      }
    }
  }
  return std::nullopt;
}

void SolverCache::store_basis(const std::string& key, const Basis& basis) {
  if (basis.empty()) return;
  const std::uint64_t h = fnv1a64(key);
  std::lock_guard<std::mutex> lock(mutex_);
  auto& bucket = basis_entries_[h];
  for (BasisEntry& e : bucket) {
    if (e.key == key) {
      e.basis = basis; // last-wins: the freshest neighbor seeds best
      return;
    }
  }
  bucket.push_back(BasisEntry{key, basis});
}

SolverCache::Stats SolverCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t SolverCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [h, bucket] : entries_) n += bucket.size();
  return n;
}

void SolverCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  basis_entries_.clear();
  stats_ = Stats{};
}

} // namespace luis::ilp
