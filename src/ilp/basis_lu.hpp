// LU-factorized simplex basis with an eta file.
//
// The revised simplex never forms B^{-1}. It factorizes the basis matrix
// B = P_r L U P_c once, then represents each subsequent pivot as a
// product-form eta matrix:
//
//   B_k = B_0 * E_1 * ... * E_k
//
// where E_i is the identity except for one column, the ftran'd entering
// column of pivot i. ftran/btran apply the factors in opposite orders.
//
// The factorization exploits the shape of simplex bases: unit slack
// columns are pivoted first on their own rows (triangular by construction,
// zero fill, zero elimination work), and only the remaining "bump" of
// structural columns is eliminated densely with partial pivoting. L and U
// are then stored as sparse column lists, so ftran/btran cost
// O(m + nnz(L) + nnz(U)) instead of the O(m^2) of a dense triangular
// solve — on the allocator's slack-dominated bases that is near-linear.
//
// The eta file grows by one sparse vector per pivot; the solver
// refactorizes every SimplexOptions::refactor_interval pivots (or when a
// pivot is numerically unacceptable), which caps both fill-in and drift.
#pragma once

#include <vector>

#include "ilp/model.hpp"

namespace luis::ilp {

class BasisLu {
public:
  /// Factorizes the basis given by `basic` (one column id per row; ids >=
  /// cols.cols are slack columns, i.e. unit vectors). Returns false if the
  /// basis is numerically singular.
  bool factorize(const SparseColumns& cols, const std::vector<int>& basic);

  /// Solves B x = rhs in place (forward transformation). Input is indexed
  /// by row; output by basis position (aligned with `basic`).
  void ftran(std::vector<double>& x) const;

  /// Solves B^T y = rhs in place (backward transformation). Input is
  /// indexed by basis position; output by row.
  void btran(std::vector<double>& x) const;

  /// Appends the eta for replacing basis position `row` with the column
  /// whose ftran'd representation is `w` (w = B^{-1} a_entering). Returns
  /// false — and leaves the factorization unchanged — when the pivot
  /// element w[row] is too small to update stably.
  bool update(int row, const std::vector<double>& w);

  int eta_count() const { return static_cast<int>(etas_.size()); }
  long refactorizations() const { return refactorizations_; }
  bool valid() const { return m_ >= 0; }
  void reset() { m_ = -1; }

private:
  struct Eta {
    int row = 0;
    /// Sparse ftran'd column: (row index, value) with the pivot row
    /// included. Values below the drop tolerance are not stored.
    std::vector<std::pair<int, double>> entries;
    double pivot = 1.0; ///< w[row]
  };

  int m_ = -1; ///< basis dimension; -1 = not factorized

  // Factors in pivot-position space. Position p pivots original row
  // row_of_pos_[p] against basis column col_of_pos_[p]; slack positions
  // come first, the dense-eliminated bump last.
  std::vector<int> row_of_pos_, pos_of_row_, col_of_pos_;
  std::vector<double> udiag_; ///< U diagonal per position
  /// Column lists: lcol_[p] holds (q > p, L[q][p]); ucol_[p] holds
  /// (q < p, U[q][p]).
  std::vector<std::vector<std::pair<int, double>>> lcol_, ucol_;

  std::vector<Eta> etas_;
  long refactorizations_ = 0;
  mutable std::vector<double> scratch_;
};

} // namespace luis::ilp
