#include "ilp/model.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/diag.hpp"

namespace luis::ilp {

const char* to_string(SolveStatus status) {
  switch (status) {
  case SolveStatus::Optimal: return "optimal";
  case SolveStatus::Infeasible: return "infeasible";
  case SolveStatus::Unbounded: return "unbounded";
  case SolveStatus::IterationLimit: return "iteration-limit";
  case SolveStatus::NodeLimit: return "node-limit";
  }
  return "<invalid>";
}

void LinearExpr::normalize() {
  std::map<VarId, double> combined;
  for (const auto& [var, coeff] : terms_) combined[var] += coeff;
  terms_.clear();
  for (const auto& [var, coeff] : combined)
    if (coeff != 0.0) terms_.emplace_back(var, coeff);
}

VarId Model::add_variable(std::string name, VarKind kind, double lower,
                          double upper) {
  LUIS_ASSERT(lower <= upper, "variable bounds crossed: " + name);
  if (kind == VarKind::Binary) {
    LUIS_ASSERT(lower >= 0.0 && upper <= 1.0, "binary bounds must be in [0,1]");
  }
  variables_.push_back(Variable{std::move(name), kind, lower, upper});
  return static_cast<VarId>(variables_.size()) - 1;
}

void Model::add_constraint(LinearExpr expr, Sense sense, double rhs,
                           std::string name) {
  expr.normalize();
  for (const auto& [var, coeff] : expr.terms()) {
    (void)coeff;
    LUIS_ASSERT(var >= 0 && static_cast<std::size_t>(var) < variables_.size(),
                "constraint references unknown variable");
  }
  // Fold the expression constant into the right-hand side.
  const double folded_rhs = rhs - expr.constant();
  constraints_.push_back(
      Constraint{std::move(expr), sense, folded_rhs, std::move(name)});
}

void Model::set_objective(Direction direction, LinearExpr expr) {
  expr.normalize();
  direction_ = direction;
  objective_ = std::move(expr);
}

std::size_t Model::num_integer_variables() const {
  return static_cast<std::size_t>(
      std::count_if(variables_.begin(), variables_.end(), [](const Variable& v) {
        return v.kind != VarKind::Continuous;
      }));
}

SparseColumns Model::sparse_columns() const {
  SparseColumns out;
  out.rows = static_cast<int>(constraints_.size());
  out.cols = static_cast<int>(variables_.size());
  // Count entries per column, then fill with a running cursor.
  std::vector<int> count(variables_.size(), 0);
  std::size_t nnz = 0;
  for (const Constraint& c : constraints_) {
    for (const auto& [var, coeff] : c.expr.terms()) {
      (void)coeff;
      ++count[static_cast<std::size_t>(var)];
      ++nnz;
    }
  }
  out.start.assign(variables_.size() + 1, 0);
  for (std::size_t j = 0; j < variables_.size(); ++j)
    out.start[j + 1] = out.start[j] + count[j];
  out.row.resize(nnz);
  out.value.resize(nnz);
  std::vector<int> cursor(out.start.begin(), out.start.end() - 1);
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    for (const auto& [var, coeff] : constraints_[i].expr.terms()) {
      const int at = cursor[static_cast<std::size_t>(var)]++;
      out.row[static_cast<std::size_t>(at)] = static_cast<int>(i);
      out.value[static_cast<std::size_t>(at)] = coeff;
    }
  }
  return out;
}

double Model::objective_value(const std::vector<double>& values) const {
  double acc = objective_.constant();
  for (const auto& [var, coeff] : objective_.terms())
    acc += coeff * values[static_cast<std::size_t>(var)];
  return acc;
}

bool Model::is_feasible(const std::vector<double>& values, double tol) const {
  if (values.size() != variables_.size()) return false;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    const Variable& v = variables_[i];
    if (values[i] < v.lower - tol || values[i] > v.upper + tol) return false;
    if (v.kind != VarKind::Continuous &&
        std::abs(values[i] - std::round(values[i])) > tol)
      return false;
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : c.expr.terms())
      lhs += coeff * values[static_cast<std::size_t>(var)];
    switch (c.sense) {
    case Sense::LE:
      if (lhs > c.rhs + tol) return false;
      break;
    case Sense::GE:
      if (lhs < c.rhs - tol) return false;
      break;
    case Sense::EQ:
      if (std::abs(lhs - c.rhs) > tol) return false;
      break;
    }
  }
  return true;
}

} // namespace luis::ilp
