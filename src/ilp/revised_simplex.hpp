// Bounded-variable sparse revised simplex.
//
// Works on the computational form  min c'x  s.t.  Ax + s = b,  l <= (x,s) <= u,
// where one slack per row encodes the row sense (LE: s >= 0, GE: s <= 0,
// EQ: s = 0). Nonbasic variables rest at a finite bound (or at zero when
// free); only the m basic values are maintained, through an LU-factorized
// basis with eta updates (basis_lu.hpp). There is no slack explosion for
// bounded columns: a 0 <= x <= 1 SOS row costs one column, not a column
// plus an upper-bound row as in the dense tableau.
//
// Three drivers share the machinery:
//  - primal phase 1: minimizes the sum of bound violations with the
//    textbook dynamic cost vector (-1 / +1 on violating basics);
//  - primal phase 2: Dantzig pricing with a Bland fallback on stalls,
//    bound flips handled in the ratio test;
//  - dual simplex: re-optimizes after bound changes from a still
//    dual-feasible basis — the warm-start path branch & bound children
//    and sweep presets use instead of solving from scratch.
#pragma once

#include <span>

#include "ilp/simplex.hpp"

namespace luis::ilp {

/// Solves the LP relaxation with the revised simplex. `cols` must be
/// `model.sparse_columns()` (hoisted out so branch & bound builds it once).
/// `basis`, when non-null and compatible, seeds the solve (dual simplex if
/// the basis is still dual feasible, primal otherwise) and receives the
/// final basis on any return, making child / neighbor re-solves start one
/// pivot away instead of from scratch.
Solution solve_lp_revised(const Model& model, const SparseColumns& cols,
                          const SimplexOptions& options,
                          std::span<const BoundsOverride> overrides,
                          Basis* basis);

} // namespace luis::ilp
