// CPLEX-LP-format reader — the inverse of to_lp_format. Together they give
// the solver a file interchange format: models can be dumped, inspected,
// edited, and re-solved, and external instances can be imported for solver
// validation.
#pragma once

#include <string>
#include <string_view>

#include "ilp/model.hpp"

namespace luis::ilp {

struct LpParseResult {
  Model model;
  std::string error; ///< empty on success
  bool ok() const { return error.empty(); }
};

/// Parses the subset of the CPLEX LP format that to_lp_format emits:
/// Minimize/Maximize, Subject To, Bounds (with -inf/+inf), General
/// (integer) and Binary sections, End. Variables are created in first-use
/// order; unlisted bounds default to [0, +inf).
LpParseResult parse_lp(std::string_view text);

} // namespace luis::ilp
