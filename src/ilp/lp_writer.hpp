// CPLEX-LP-format dump of a model, for debugging and external validation.
#pragma once

#include <string>

#include "ilp/model.hpp"

namespace luis::ilp {

/// Renders the model in CPLEX LP text format.
std::string to_lp_format(const Model& model);

} // namespace luis::ilp
