#include "ilp/simplex.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "ilp/revised_simplex.hpp"
#include "support/diag.hpp"

namespace luis::ilp {
namespace {

// How a model variable is mapped onto nonnegative tableau columns.
struct ColumnMap {
  enum class Kind {
    Fixed,    // lower == upper: substituted away, no column
    Shifted,  // x = lower + x', x' >= 0
    Mirrored, // x = upper - x', x' >= 0 (lower == -inf, upper finite)
    Split,    // x = x+ - x- (both bounds infinite)
  };
  Kind kind = Kind::Shifted;
  int column = -1;     // first tableau column (x' or x+)
  int neg_column = -1; // x- column for Split
  double offset = 0.0; // lower (Shifted), upper (Mirrored), or fixed value
  double upper_gap = kInfinity; // residual upper bound of x' (Shifted only)
};

struct Row {
  std::vector<double> coeffs; // structural columns only
  Sense sense = Sense::LE;
  double rhs = 0.0;
};

class Tableau {
public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_((rows + 1) * (cols + 1), 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * (cols_ + 1) + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * (cols_ + 1) + c]; }
  double& rhs(std::size_t r) { return data_[r * (cols_ + 1) + cols_]; }
  double rhs(std::size_t r) const { return data_[r * (cols_ + 1) + cols_]; }
  // Row `rows_` is the objective (reduced cost) row.
  double& obj(std::size_t c) { return data_[rows_ * (cols_ + 1) + c]; }
  double obj(std::size_t c) const { return data_[rows_ * (cols_ + 1) + c]; }
  double& obj_value() { return data_[rows_ * (cols_ + 1) + cols_]; }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  void pivot(std::size_t pr, std::size_t pc) {
    const std::size_t stride = cols_ + 1;
    double* prow = &data_[pr * stride];
    const double inv = 1.0 / prow[pc];
    for (std::size_t c = 0; c <= cols_; ++c) prow[c] *= inv;
    prow[pc] = 1.0;
    for (std::size_t r = 0; r <= rows_; ++r) {
      if (r == pr) continue;
      double* row = &data_[r * stride];
      const double factor = row[pc];
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c <= cols_; ++c) row[c] -= factor * prow[c];
      row[pc] = 0.0;
    }
  }

private:
  std::size_t rows_, cols_;
  std::vector<double> data_;
};

struct PivotResult {
  enum class Kind { Optimal, Unbounded, IterationLimit } kind;
  long iterations = 0;
};

/// Runs simplex pivots on `t` until the reduced-cost row is nonnegative.
/// `basis[r]` names the column basic in row r. Columns at index >=
/// `priceable_cols` are never chosen to enter (used to freeze artificials
/// in phase 2).
PivotResult run_pivots(Tableau& t, std::vector<int>& basis,
                       std::size_t priceable_cols, const SimplexOptions& opt) {
  PivotResult result{PivotResult::Kind::Optimal, 0};
  long stall = 0;
  double last_obj = t.obj_value();
  for (; result.iterations < opt.max_iterations; ++result.iterations) {
    const bool bland = stall > 500; // anti-cycling fallback
    // Entering column.
    int enter = -1;
    double best = -opt.tolerance;
    for (std::size_t c = 0; c < priceable_cols; ++c) {
      const double rc = t.obj(c);
      if (rc < best) {
        enter = static_cast<int>(c);
        best = rc;
        if (bland) break; // Bland: first eligible index
      }
    }
    if (enter < 0) return result; // optimal

    // Ratio test; ties broken by smallest basis column (lexicographic-ish,
    // pairs with Bland to prevent cycling).
    int leave = -1;
    double best_ratio = kInfinity;
    for (std::size_t r = 0; r < t.rows(); ++r) {
      const double a = t.at(r, static_cast<std::size_t>(enter));
      if (a <= opt.tolerance) continue;
      const double ratio = t.rhs(r) / a;
      if (ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 && leave >= 0 &&
           basis[r] < basis[static_cast<std::size_t>(leave)])) {
        best_ratio = ratio;
        leave = static_cast<int>(r);
      }
    }
    if (leave < 0) {
      result.kind = PivotResult::Kind::Unbounded;
      return result;
    }

    t.pivot(static_cast<std::size_t>(leave), static_cast<std::size_t>(enter));
    basis[static_cast<std::size_t>(leave)] = enter;

    // The objective cell stores -z, so minimization progress increases it.
    if (t.obj_value() > last_obj + 1e-12) {
      last_obj = t.obj_value();
      stall = 0;
    } else {
      ++stall;
    }
  }
  result.kind = PivotResult::Kind::IterationLimit;
  return result;
}

/// The original dense two-phase tableau simplex, kept verbatim as the
/// differential-testing baseline for the revised core (`--lp-core=dense`).
Solution solve_lp_dense(const Model& model, const SimplexOptions& opt,
                        std::span<const BoundsOverride> overrides) {
  Solution sol;
  const std::size_t nvars = model.num_variables();

  // Effective bounds.
  std::vector<double> lower(nvars), upper(nvars);
  for (std::size_t j = 0; j < nvars; ++j) {
    lower[j] = model.variables()[j].lower;
    upper[j] = model.variables()[j].upper;
  }
  for (const BoundsOverride& o : overrides) {
    lower[static_cast<std::size_t>(o.var)] = o.lower;
    upper[static_cast<std::size_t>(o.var)] = o.upper;
  }
  for (std::size_t j = 0; j < nvars; ++j) {
    if (lower[j] > upper[j] + opt.tolerance) {
      sol.status = SolveStatus::Infeasible;
      return sol;
    }
  }

  // Map model variables to nonnegative tableau columns.
  std::vector<ColumnMap> map(nvars);
  int next_col = 0;
  for (std::size_t j = 0; j < nvars; ++j) {
    ColumnMap& m = map[j];
    if (std::isfinite(lower[j]) && std::isfinite(upper[j]) &&
        upper[j] - lower[j] <= 1e-12) {
      m.kind = ColumnMap::Kind::Fixed;
      m.offset = lower[j];
    } else if (std::isfinite(lower[j])) {
      m.kind = ColumnMap::Kind::Shifted;
      m.offset = lower[j];
      m.column = next_col++;
      m.upper_gap = upper[j] - lower[j]; // may be +inf
    } else if (std::isfinite(upper[j])) {
      m.kind = ColumnMap::Kind::Mirrored;
      m.offset = upper[j];
      m.column = next_col++;
    } else {
      m.kind = ColumnMap::Kind::Split;
      m.column = next_col++;
      m.neg_column = next_col++;
    }
  }
  const auto nstruct = static_cast<std::size_t>(next_col);

  // Build rows: model constraints plus residual upper-bound rows.
  std::vector<Row> rows;
  rows.reserve(model.num_constraints() + nvars);
  auto expr_row = [&](const LinearExpr& expr, Sense sense, double rhs) {
    Row row;
    row.coeffs.assign(nstruct, 0.0);
    row.sense = sense;
    row.rhs = rhs;
    for (const auto& [var, coeff] : expr.terms()) {
      const ColumnMap& m = map[static_cast<std::size_t>(var)];
      switch (m.kind) {
      case ColumnMap::Kind::Fixed:
        row.rhs -= coeff * m.offset;
        break;
      case ColumnMap::Kind::Shifted:
        row.coeffs[static_cast<std::size_t>(m.column)] += coeff;
        row.rhs -= coeff * m.offset;
        break;
      case ColumnMap::Kind::Mirrored:
        row.coeffs[static_cast<std::size_t>(m.column)] -= coeff;
        row.rhs -= coeff * m.offset;
        break;
      case ColumnMap::Kind::Split:
        row.coeffs[static_cast<std::size_t>(m.column)] += coeff;
        row.coeffs[static_cast<std::size_t>(m.neg_column)] -= coeff;
        break;
      }
    }
    return row;
  };
  for (const Constraint& c : model.constraints())
    rows.push_back(expr_row(c.expr, c.sense, c.rhs));
  for (std::size_t j = 0; j < nvars; ++j) {
    const ColumnMap& m = map[j];
    if (m.kind == ColumnMap::Kind::Shifted && std::isfinite(m.upper_gap)) {
      Row row;
      row.coeffs.assign(nstruct, 0.0);
      row.coeffs[static_cast<std::size_t>(m.column)] = 1.0;
      row.sense = Sense::LE;
      row.rhs = m.upper_gap;
      rows.push_back(std::move(row));
    }
  }

  // Normalize to nonnegative right-hand sides.
  for (Row& row : rows) {
    if (row.rhs < 0.0) {
      for (double& c : row.coeffs) c = -c;
      row.rhs = -row.rhs;
      if (row.sense == Sense::LE)
        row.sense = Sense::GE;
      else if (row.sense == Sense::GE)
        row.sense = Sense::LE;
    }
  }

  // Count slack and artificial columns.
  std::size_t nslack = 0, nart = 0;
  for (const Row& row : rows) {
    if (row.sense != Sense::EQ) ++nslack;
    if (row.sense != Sense::LE) ++nart;
  }
  const std::size_t m = rows.size();
  const std::size_t total_cols = nstruct + nslack + nart;
  Tableau t(m, total_cols);
  std::vector<int> basis(m, -1);
  std::vector<bool> is_artificial(total_cols, false);

  std::size_t slack_at = nstruct;
  std::size_t art_at = nstruct + nslack;
  for (std::size_t r = 0; r < m; ++r) {
    const Row& row = rows[r];
    for (std::size_t c = 0; c < nstruct; ++c) t.at(r, c) = row.coeffs[c];
    t.rhs(r) = row.rhs;
    if (row.sense == Sense::LE) {
      t.at(r, slack_at) = 1.0;
      basis[r] = static_cast<int>(slack_at++);
    } else if (row.sense == Sense::GE) {
      t.at(r, slack_at) = -1.0;
      ++slack_at;
      t.at(r, art_at) = 1.0;
      is_artificial[art_at] = true;
      basis[r] = static_cast<int>(art_at++);
    } else {
      t.at(r, art_at) = 1.0;
      is_artificial[art_at] = true;
      basis[r] = static_cast<int>(art_at++);
    }
  }

  long total_iterations = 0;

  // ---- Phase 1: minimize the sum of artificials. ----
  if (nart > 0) {
    // Reduced costs: c = sum over artificial rows, negated into the obj row.
    for (std::size_t r = 0; r < m; ++r) {
      if (!is_artificial[static_cast<std::size_t>(basis[r])]) continue;
      for (std::size_t c = 0; c <= total_cols; ++c) {
        if (c == total_cols)
          t.obj_value() -= t.rhs(r);
        else if (!is_artificial[c])
          t.obj(c) -= t.at(r, c);
      }
    }
    const PivotResult p1 = run_pivots(t, basis, nstruct + nslack, opt);
    total_iterations += p1.iterations;
    if (p1.kind == PivotResult::Kind::IterationLimit) {
      sol.status = SolveStatus::IterationLimit;
      sol.iterations = total_iterations;
      return sol;
    }
    if (-t.obj_value() > 1e-6) { // artificial sum cannot reach zero
      sol.status = SolveStatus::Infeasible;
      sol.iterations = total_iterations;
      return sol;
    }
    // Drive remaining (degenerate) artificials out of the basis.
    for (std::size_t r = 0; r < m; ++r) {
      if (!is_artificial[static_cast<std::size_t>(basis[r])]) continue;
      std::size_t enter = total_cols;
      for (std::size_t c = 0; c < nstruct + nslack; ++c) {
        if (std::abs(t.at(r, c)) > opt.tolerance) {
          enter = c;
          break;
        }
      }
      if (enter < total_cols) {
        t.pivot(r, enter);
        basis[r] = static_cast<int>(enter);
        continue;
      }
      // A row with no pivot candidates is redundant. Leaving the artificial
      // merely basic is not enough: phase-2 pivots in other rows can push a
      // nonzero back into its right-hand side, silently re-violating the
      // original equality. Hard-pin the row to `artificial = 0` so no later
      // pivot can touch it.
      for (std::size_t c = 0; c < total_cols; ++c) t.at(r, c) = 0.0;
      t.at(r, static_cast<std::size_t>(basis[r])) = 1.0;
      t.rhs(r) = 0.0;
    }
    // Reset the objective row for phase 2.
    for (std::size_t c = 0; c <= total_cols; ++c) {
      if (c == total_cols)
        t.obj_value() = 0.0;
      else
        t.obj(c) = 0.0;
    }
  }

  // ---- Phase 2: the real objective (always minimized internally). ----
  const double sign = model.objective_direction() == Direction::Minimize ? 1.0 : -1.0;
  std::vector<double> cost(total_cols, 0.0);
  double const_cost = sign * model.objective().constant();
  for (const auto& [var, coeff] : model.objective().terms()) {
    const ColumnMap& cm = map[static_cast<std::size_t>(var)];
    const double c = sign * coeff;
    switch (cm.kind) {
    case ColumnMap::Kind::Fixed:
      const_cost += c * cm.offset;
      break;
    case ColumnMap::Kind::Shifted:
      cost[static_cast<std::size_t>(cm.column)] += c;
      const_cost += c * cm.offset;
      break;
    case ColumnMap::Kind::Mirrored:
      cost[static_cast<std::size_t>(cm.column)] -= c;
      const_cost += c * cm.offset;
      break;
    case ColumnMap::Kind::Split:
      cost[static_cast<std::size_t>(cm.column)] += c;
      cost[static_cast<std::size_t>(cm.neg_column)] -= c;
      break;
    }
  }
  for (std::size_t c = 0; c < total_cols; ++c) t.obj(c) = cost[c];
  // Make reduced costs of basic columns zero.
  for (std::size_t r = 0; r < m; ++r) {
    const auto b = static_cast<std::size_t>(basis[r]);
    const double cb = cost[b];
    if (cb == 0.0) continue;
    for (std::size_t c = 0; c <= total_cols; ++c) {
      if (c == total_cols)
        t.obj_value() -= cb * t.rhs(r);
      else
        t.obj(c) -= cb * t.at(r, c);
    }
  }

  const PivotResult p2 = run_pivots(t, basis, nstruct + nslack, opt);
  total_iterations += p2.iterations;
  sol.iterations = total_iterations;
  if (p2.kind == PivotResult::Kind::IterationLimit) {
    sol.status = SolveStatus::IterationLimit;
    return sol;
  }
  if (p2.kind == PivotResult::Kind::Unbounded) {
    sol.status = SolveStatus::Unbounded;
    return sol;
  }

  // Extract the solution.
  std::vector<double> col_value(total_cols, 0.0);
  for (std::size_t r = 0; r < m; ++r)
    col_value[static_cast<std::size_t>(basis[r])] = t.rhs(r);
  sol.values.assign(nvars, 0.0);
  for (std::size_t j = 0; j < nvars; ++j) {
    const ColumnMap& cm = map[j];
    switch (cm.kind) {
    case ColumnMap::Kind::Fixed:
      sol.values[j] = cm.offset;
      break;
    case ColumnMap::Kind::Shifted:
      sol.values[j] = cm.offset + col_value[static_cast<std::size_t>(cm.column)];
      break;
    case ColumnMap::Kind::Mirrored:
      sol.values[j] = cm.offset - col_value[static_cast<std::size_t>(cm.column)];
      break;
    case ColumnMap::Kind::Split:
      sol.values[j] = col_value[static_cast<std::size_t>(cm.column)] -
                      col_value[static_cast<std::size_t>(cm.neg_column)];
      break;
    }
  }
  sol.status = SolveStatus::Optimal;
  sol.objective = model.objective_value(sol.values);
  sol.best_bound = sol.objective;
  (void)const_cost; // objective recomputed from values; kept for clarity
  return sol;
}

std::atomic<LpCore> g_default_core{LpCore::Revised};

} // namespace

const char* to_string(LpCore core) {
  return core == LpCore::Dense ? "dense" : "revised";
}

LpCore default_lp_core() {
  return g_default_core.load(std::memory_order_relaxed);
}

void set_default_lp_core(LpCore core) {
  g_default_core.store(core, std::memory_order_relaxed);
}

Solution solve_lp(const Model& model, const SimplexOptions& opt,
                  std::span<const BoundsOverride> overrides) {
  if (opt.core == LpCore::Dense) return solve_lp_dense(model, opt, overrides);
  const SparseColumns cols = model.sparse_columns();
  return solve_lp_revised(model, cols, opt, overrides, nullptr);
}

} // namespace luis::ilp
