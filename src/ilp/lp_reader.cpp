#include "ilp/lp_reader.hpp"

#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "support/string_utils.hpp"

namespace luis::ilp {
namespace {

/// Full-token strtod: succeeds only when the entire token is a number.
/// "3.5.2" or "1e" parse a prefix and leave trailing garbage, which the
/// end-pointer check rejects — the bug class this guards against is such
/// tokens being silently misread as 3.5 (or as variable names).
bool parse_full_number(const std::string& tok, double& out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  out = std::strtod(tok.c_str(), &end);
  return end == tok.c_str() + tok.size();
}

bool is_number_token(const std::string& tok) {
  double unused;
  return parse_full_number(tok, unused);
}

/// Does the token look like it was meant to be a number? Decides whether a
/// non-number token is a malformed literal (error) or a variable name.
bool looks_numeric(const std::string& tok) {
  if (tok.empty()) return false;
  const char c = tok[0];
  if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') return true;
  if ((c == '+' || c == '-') && tok.size() > 1) {
    const char d = tok[1];
    return std::isdigit(static_cast<unsigned char>(d)) || d == '.';
  }
  return false;
}

/// A raw input line with its 1-based position, kept so every parse error
/// can say where it happened.
struct SrcLine {
  int number = 0;
  std::string text;
};

class Reader {
public:
  explicit Reader(std::string_view text) : text_(text) {}

  LpParseResult run() {
    LpParseResult out;
    std::istringstream is{std::string(text_)};
    std::string line;
    enum class Section { None, Objective, Constraints, Bounds, Integers, Done };
    Section section = Section::None;
    Direction direction = Direction::Minimize;
    std::vector<SrcLine> objective_lines;
    std::vector<SrcLine> constraint_lines;
    std::vector<SrcLine> bounds_lines;
    std::vector<std::string> integer_names;

    int line_no = 0;
    while (std::getline(is, line)) {
      ++line_no;
      const std::string t{trim(line)};
      if (t.empty()) continue;
      if (t == "Minimize" || t == "Maximize") {
        direction = t == "Minimize" ? Direction::Minimize : Direction::Maximize;
        section = Section::Objective;
        continue;
      }
      if (t == "Subject To") {
        section = Section::Constraints;
        continue;
      }
      if (t == "Bounds") {
        section = Section::Bounds;
        continue;
      }
      if (t == "General" || t == "Binary") {
        section = Section::Integers;
        continue;
      }
      if (t == "End") {
        section = Section::Done;
        continue;
      }
      switch (section) {
      case Section::Objective:
        objective_lines.push_back({line_no, line});
        break;
      case Section::Constraints:
        constraint_lines.push_back({line_no, line});
        break;
      case Section::Bounds:
        bounds_lines.push_back({line_no, line});
        break;
      case Section::Integers:
        integer_names.push_back(t);
        break;
      default:
        out.error = at(line_no, line, t) + "unexpected content outside any section: " + t;
        return out;
      }
    }

    // Objective.
    std::string obj_text;
    for (const SrcLine& l : objective_lines) obj_text += std::string(trim(l.text)) + " ";
    LinearExpr objective;
    if (!parse_expr(strip_label(obj_text), objective, objective_lines)) {
      out.error = error_;
      return out;
    }

    // Constraints.
    struct Row {
      LinearExpr expr;
      Sense sense;
      double rhs;
      std::string name;
    };
    std::vector<Row> rows;
    for (const SrcLine& l : constraint_lines) {
      std::string body{trim(l.text)};
      std::string name;
      const std::size_t colon = body.find(':');
      if (colon != std::string::npos) {
        name = std::string(trim(body.substr(0, colon)));
        body = body.substr(colon + 1);
      }
      Sense sense;
      std::size_t rel_at, rel_len;
      if ((rel_at = body.find("<=")) != std::string::npos) {
        sense = Sense::LE;
        rel_len = 2;
      } else if ((rel_at = body.find(">=")) != std::string::npos) {
        sense = Sense::GE;
        rel_len = 2;
      } else if ((rel_at = body.find('=')) != std::string::npos) {
        sense = Sense::EQ;
        rel_len = 1;
      } else {
        out.error = at(l, body) + "constraint without relation: " + body;
        return out;
      }
      Row row;
      row.sense = sense;
      row.name = std::move(name);
      if (!parse_expr(body.substr(0, rel_at), row.expr, {l})) {
        out.error = error_;
        return out;
      }
      const std::string rhs_tok{trim(body.substr(rel_at + rel_len))};
      if (!parse_full_number(rhs_tok, row.rhs)) {
        out.error = at(l, rhs_tok) + "malformed right-hand side '" + rhs_tok + "'";
        return out;
      }
      rows.push_back(std::move(row));
    }

    // Bounds: "lo <= name <= hi".
    for (const SrcLine& l : bounds_lines) {
      std::istringstream ls{std::string(trim(l.text))};
      std::string lo_tok, le1, name, le2, hi_tok, extra;
      ls >> lo_tok >> le1 >> name >> le2 >> hi_tok;
      if (le1 != "<=" || le2 != "<=" || hi_tok.empty() || (ls >> extra)) {
        out.error = at(l, lo_tok) + "malformed bounds line (want 'lo <= name <= hi'): " +
                    std::string(trim(l.text));
        return out;
      }
      double lo, hi;
      if (!parse_bound(lo_tok, lo)) {
        out.error = at(l, lo_tok) + "malformed lower bound '" + lo_tok + "'";
        return out;
      }
      if (!parse_bound(hi_tok, hi)) {
        out.error = at(l, hi_tok) + "malformed upper bound '" + hi_tok + "'";
        return out;
      }
      bounds_[var(name)] = {lo, hi};
    }

    for (const std::string& name : integer_names) integers_.insert(var(name));

    // Assemble the model (variables in first-use order).
    for (std::size_t j = 0; j < names_.size(); ++j) {
      double lo = 0.0, hi = kInfinity;
      const auto b = bounds_.find(static_cast<VarId>(j));
      if (b != bounds_.end()) {
        lo = b->second.first;
        hi = b->second.second;
      }
      VarKind kind = VarKind::Continuous;
      if (integers_.count(static_cast<VarId>(j)))
        kind = lo == 0.0 && hi == 1.0 ? VarKind::Binary : VarKind::Integer;
      out.model.add_variable(names_[j], kind, lo, hi);
    }
    for (Row& row : rows)
      out.model.add_constraint(std::move(row.expr), row.sense, row.rhs,
                               std::move(row.name));
    out.model.set_objective(direction, std::move(objective));
    return out;
  }

private:
  /// "line L, column C: " locator. The column is where `tok` appears in
  /// the raw line (1-based), or 1 when it cannot be found.
  static std::string at(int line_no, const std::string& raw,
                        const std::string& tok) {
    std::size_t col = tok.empty() ? std::string::npos : raw.find(tok);
    if (col == std::string::npos) col = 0;
    return "line " + std::to_string(line_no) + ", column " +
           std::to_string(col + 1) + ": ";
  }
  static std::string at(const SrcLine& l, const std::string& tok) {
    return at(l.number, l.text, tok);
  }

  /// Locates `tok` among several source lines (multi-line objective).
  static std::string at(const std::vector<SrcLine>& lines,
                        const std::string& tok) {
    for (const SrcLine& l : lines) {
      if (!tok.empty() && l.text.find(tok) != std::string::npos)
        return at(l, tok);
    }
    return lines.empty() ? std::string() : at(lines.front(), tok);
  }

  static std::string strip_label(const std::string& text) {
    const std::size_t colon = text.find(':');
    return colon == std::string::npos ? text : text.substr(colon + 1);
  }

  static bool parse_bound(const std::string& tok, double& out) {
    if (tok == "-inf") {
      out = -kInfinity;
      return true;
    }
    if (tok == "+inf" || tok == "inf") {
      out = kInfinity;
      return true;
    }
    return parse_full_number(tok, out);
  }

  VarId var(const std::string& name) {
    const auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<VarId>(names_.size());
    ids_[name] = id;
    names_.push_back(name);
    return id;
  }

  /// Parses "2 x + 3.5 y - z + 4" into a LinearExpr (trailing constants
  /// fold into the expression constant). `origin` locates errors.
  bool parse_expr(const std::string& text, LinearExpr& expr,
                  const std::vector<SrcLine>& origin) {
    std::istringstream is(text);
    std::string tok;
    double sign = 1.0;
    double pending_coeff = 1.0;
    bool have_coeff = false;
    while (is >> tok) {
      if (tok == "+") {
        if (have_coeff) expr.add_constant(sign * pending_coeff);
        sign = 1.0;
        pending_coeff = 1.0;
        have_coeff = false;
        continue;
      }
      if (tok == "-") {
        if (have_coeff) expr.add_constant(sign * pending_coeff);
        sign = -1.0;
        pending_coeff = 1.0;
        have_coeff = false;
        continue;
      }
      if (is_number_token(tok)) {
        if (have_coeff) {
          error_ = at(origin, tok) + "two consecutive numbers in expression: " + text;
          return false;
        }
        parse_full_number(tok, pending_coeff);
        have_coeff = true;
        continue;
      }
      if (looks_numeric(tok)) {
        // Starts like a number but is not one ("3.5.2", "1e+"): reject
        // instead of silently treating it as a variable name.
        error_ = at(origin, tok) + "malformed number '" + tok + "'";
        return false;
      }
      if (tok.empty()) continue;
      // A name: consume the pending coefficient.
      expr.add(var(tok), sign * pending_coeff);
      sign = 1.0;
      pending_coeff = 1.0;
      have_coeff = false;
    }
    if (have_coeff) expr.add_constant(sign * pending_coeff);
    return true;
  }

  std::string_view text_;
  std::map<std::string, VarId> ids_;
  std::vector<std::string> names_;
  std::map<VarId, std::pair<double, double>> bounds_;
  std::set<VarId> integers_;
  std::string error_;
};

} // namespace

LpParseResult parse_lp(std::string_view text) { return Reader(text).run(); }

} // namespace luis::ilp
