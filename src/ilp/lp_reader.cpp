#include "ilp/lp_reader.hpp"

#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "support/string_utils.hpp"

namespace luis::ilp {
namespace {

bool is_number_token(const std::string& tok) {
  if (tok.empty()) return false;
  char* end = nullptr;
  std::strtod(tok.c_str(), &end);
  return end == tok.c_str() + tok.size();
}

class Reader {
public:
  explicit Reader(std::string_view text) : text_(text) {}

  LpParseResult run() {
    LpParseResult out;
    std::istringstream is{std::string(text_)};
    std::string line;
    enum class Section { None, Objective, Constraints, Bounds, Integers, Done };
    Section section = Section::None;
    Direction direction = Direction::Minimize;
    std::vector<std::string> objective_lines;
    std::vector<std::string> constraint_lines;
    std::vector<std::string> bounds_lines;
    std::vector<std::string> integer_names;

    while (std::getline(is, line)) {
      const std::string t{trim(line)};
      if (t.empty()) continue;
      if (t == "Minimize" || t == "Maximize") {
        direction = t == "Minimize" ? Direction::Minimize : Direction::Maximize;
        section = Section::Objective;
        continue;
      }
      if (t == "Subject To") {
        section = Section::Constraints;
        continue;
      }
      if (t == "Bounds") {
        section = Section::Bounds;
        continue;
      }
      if (t == "General" || t == "Binary") {
        section = Section::Integers;
        continue;
      }
      if (t == "End") {
        section = Section::Done;
        continue;
      }
      switch (section) {
      case Section::Objective: objective_lines.push_back(t); break;
      case Section::Constraints: constraint_lines.push_back(t); break;
      case Section::Bounds: bounds_lines.push_back(t); break;
      case Section::Integers: integer_names.push_back(t); break;
      default:
        out.error = "unexpected content outside any section: " + t;
        return out;
      }
    }

    // Objective.
    std::string obj_text;
    for (const std::string& l : objective_lines) obj_text += l + " ";
    LinearExpr objective;
    if (!parse_expr(strip_label(obj_text), objective)) {
      out.error = error_;
      return out;
    }

    // Constraints.
    struct Row {
      LinearExpr expr;
      Sense sense;
      double rhs;
      std::string name;
    };
    std::vector<Row> rows;
    for (const std::string& l : constraint_lines) {
      std::string body = l;
      std::string name;
      const std::size_t colon = body.find(':');
      if (colon != std::string::npos) {
        name = std::string(trim(body.substr(0, colon)));
        body = body.substr(colon + 1);
      }
      Sense sense;
      std::size_t rel_at, rel_len;
      if ((rel_at = body.find("<=")) != std::string::npos) {
        sense = Sense::LE;
        rel_len = 2;
      } else if ((rel_at = body.find(">=")) != std::string::npos) {
        sense = Sense::GE;
        rel_len = 2;
      } else if ((rel_at = body.find('=')) != std::string::npos) {
        sense = Sense::EQ;
        rel_len = 1;
      } else {
        out.error = "constraint without relation: " + l;
        return out;
      }
      Row row;
      row.sense = sense;
      row.name = std::move(name);
      if (!parse_expr(body.substr(0, rel_at), row.expr)) {
        out.error = error_;
        return out;
      }
      row.rhs = std::strtod(body.c_str() + rel_at + rel_len, nullptr);
      rows.push_back(std::move(row));
    }

    // Bounds: "lo <= name <= hi".
    for (const std::string& l : bounds_lines) {
      std::istringstream ls(l);
      std::string lo_tok, le1, name, le2, hi_tok;
      ls >> lo_tok >> le1 >> name >> le2 >> hi_tok;
      if (le1 != "<=" || le2 != "<=") {
        out.error = "malformed bounds line: " + l;
        return out;
      }
      const VarId id = var(name);
      bounds_[id] = {parse_bound(lo_tok, true), parse_bound(hi_tok, false)};
    }

    for (const std::string& name : integer_names) integers_.insert(var(name));

    // Assemble the model (variables in first-use order).
    for (std::size_t j = 0; j < names_.size(); ++j) {
      double lo = 0.0, hi = kInfinity;
      const auto b = bounds_.find(static_cast<VarId>(j));
      if (b != bounds_.end()) {
        lo = b->second.first;
        hi = b->second.second;
      }
      VarKind kind = VarKind::Continuous;
      if (integers_.count(static_cast<VarId>(j)))
        kind = lo == 0.0 && hi == 1.0 ? VarKind::Binary : VarKind::Integer;
      out.model.add_variable(names_[j], kind, lo, hi);
    }
    for (Row& row : rows)
      out.model.add_constraint(std::move(row.expr), row.sense, row.rhs,
                               std::move(row.name));
    out.model.set_objective(direction, std::move(objective));
    return out;
  }

private:
  static std::string strip_label(const std::string& text) {
    const std::size_t colon = text.find(':');
    return colon == std::string::npos ? text : text.substr(colon + 1);
  }

  static double parse_bound(const std::string& tok, bool is_lower) {
    if (tok == "-inf") return -kInfinity;
    if (tok == "+inf" || tok == "inf") return kInfinity;
    (void)is_lower;
    return std::strtod(tok.c_str(), nullptr);
  }

  VarId var(const std::string& name) {
    const auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<VarId>(names_.size());
    ids_[name] = id;
    names_.push_back(name);
    return id;
  }

  /// Parses "2 x + 3.5 y - z + 4" into a LinearExpr (trailing constants
  /// fold into the expression constant).
  bool parse_expr(const std::string& text, LinearExpr& expr) {
    std::istringstream is(text);
    std::string tok;
    double sign = 1.0;
    double pending_coeff = 1.0;
    bool have_coeff = false;
    while (is >> tok) {
      if (tok == "+") {
        if (have_coeff) expr.add_constant(sign * pending_coeff);
        sign = 1.0;
        pending_coeff = 1.0;
        have_coeff = false;
        continue;
      }
      if (tok == "-") {
        if (have_coeff) expr.add_constant(sign * pending_coeff);
        sign = -1.0;
        pending_coeff = 1.0;
        have_coeff = false;
        continue;
      }
      if (is_number_token(tok)) {
        if (have_coeff) {
          error_ = "two consecutive numbers in expression: " + text;
          return false;
        }
        pending_coeff = std::strtod(tok.c_str(), nullptr);
        have_coeff = true;
        continue;
      }
      if (tok == "0" || tok.empty()) continue;
      // A name: consume the pending coefficient.
      expr.add(var(tok), sign * pending_coeff);
      sign = 1.0;
      pending_coeff = 1.0;
      have_coeff = false;
    }
    if (have_coeff) expr.add_constant(sign * pending_coeff);
    return true;
  }

  std::string_view text_;
  std::map<std::string, VarId> ids_;
  std::vector<std::string> names_;
  std::map<VarId, std::pair<double, double>> bounds_;
  std::set<VarId> integers_;
  std::string error_;
};

} // namespace

LpParseResult parse_lp(std::string_view text) { return Reader(text).run(); }

} // namespace luis::ilp
