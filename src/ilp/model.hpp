// Mixed integer linear programming model.
//
// This is the in-memory problem description consumed by the simplex LP
// solver and the branch & bound MILP driver. It plays the role that the
// Google OR-Tools modeling layer plays in the paper's implementation.
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace luis::ilp {

using VarId = int;

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class VarKind { Continuous, Integer, Binary };

struct Variable {
  std::string name;
  VarKind kind = VarKind::Continuous;
  double lower = 0.0;
  double upper = kInfinity;
};

/// A linear expression: sum of coeff * var terms plus a constant offset.
/// Duplicate variables are allowed while building; they are combined when
/// the expression is attached to the model.
class LinearExpr {
public:
  LinearExpr() = default;

  LinearExpr& add(VarId var, double coeff) {
    if (coeff != 0.0) terms_.emplace_back(var, coeff);
    return *this;
  }
  LinearExpr& add_constant(double c) {
    constant_ += c;
    return *this;
  }

  const std::vector<std::pair<VarId, double>>& terms() const { return terms_; }
  double constant() const { return constant_; }

  /// Combines duplicate variables and drops zero coefficients.
  void normalize();

private:
  std::vector<std::pair<VarId, double>> terms_;
  double constant_ = 0.0;
};

enum class Sense { LE, GE, EQ };

struct Constraint {
  LinearExpr expr;
  Sense sense = Sense::LE;
  double rhs = 0.0;
  std::string name;
};

enum class Direction { Minimize, Maximize };

enum class SolveStatus { Optimal, Infeasible, Unbounded, IterationLimit, NodeLimit };

const char* to_string(SolveStatus status);

struct Solution {
  SolveStatus status = SolveStatus::Infeasible;
  double objective = 0.0;
  std::vector<double> values; ///< one entry per variable
  long iterations = 0;        ///< total simplex pivots
  long nodes = 0;             ///< branch & bound nodes explored (MILP only)
  double best_bound = 0.0;    ///< proven bound on the optimum (MILP only)

  double value(VarId var) const { return values[static_cast<std::size_t>(var)]; }
};

/// Column-wise (compressed sparse column) view of a model's constraint
/// matrix. The revised simplex prices and ftran's one column at a time, so
/// this is its native storage; it is built once per model and shared across
/// every branch & bound node and warm-started re-solve (bound overrides
/// never change the matrix, only the bound vectors).
struct SparseColumns {
  int rows = 0; ///< constraints
  int cols = 0; ///< structural variables
  std::vector<int> start;    ///< per column: first entry index; size cols+1
  std::vector<int> row;      ///< row index per entry
  std::vector<double> value; ///< coefficient per entry

  std::size_t nonzeros() const { return value.size(); }

  /// Calls fn(row, value) for every entry of column j.
  template <typename Fn> void for_entries(int j, Fn&& fn) const {
    for (int k = start[static_cast<std::size_t>(j)];
         k < start[static_cast<std::size_t>(j) + 1]; ++k)
      fn(row[static_cast<std::size_t>(k)], value[static_cast<std::size_t>(k)]);
  }
};

class Model {
public:
  VarId add_variable(std::string name, VarKind kind, double lower, double upper);
  VarId add_continuous(std::string name, double lower = 0.0, double upper = kInfinity) {
    return add_variable(std::move(name), VarKind::Continuous, lower, upper);
  }
  VarId add_integer(std::string name, double lower, double upper) {
    return add_variable(std::move(name), VarKind::Integer, lower, upper);
  }
  VarId add_binary(std::string name) {
    return add_variable(std::move(name), VarKind::Binary, 0.0, 1.0);
  }

  void add_constraint(LinearExpr expr, Sense sense, double rhs, std::string name = {});
  void add_le(LinearExpr expr, double rhs, std::string name = {}) {
    add_constraint(std::move(expr), Sense::LE, rhs, std::move(name));
  }
  void add_ge(LinearExpr expr, double rhs, std::string name = {}) {
    add_constraint(std::move(expr), Sense::GE, rhs, std::move(name));
  }
  void add_eq(LinearExpr expr, double rhs, std::string name = {}) {
    add_constraint(std::move(expr), Sense::EQ, rhs, std::move(name));
  }

  void set_objective(Direction direction, LinearExpr expr);

  std::size_t num_variables() const { return variables_.size(); }
  std::size_t num_constraints() const { return constraints_.size(); }
  std::size_t num_integer_variables() const;

  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }
  Direction objective_direction() const { return direction_; }
  const LinearExpr& objective() const { return objective_; }

  /// Builds the column-wise sparse form of the constraint matrix.
  /// Duplicate terms are already combined by add_constraint's normalize.
  SparseColumns sparse_columns() const;

  /// Evaluates the objective expression on an assignment.
  double objective_value(const std::vector<double>& values) const;

  /// True if `values` satisfies every constraint and bound within `tol`,
  /// including integrality of integer/binary variables.
  bool is_feasible(const std::vector<double>& values, double tol = 1e-6) const;

private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
  LinearExpr objective_;
  Direction direction_ = Direction::Minimize;
};

} // namespace luis::ilp
