// Branch & bound MILP driver on top of the simplex LP solver.
//
// Best-first search over LP relaxations with bound overrides (no model
// copies). Branching picks the integer variable whose LP value is most
// fractional. The search is exact when it terminates with Optimal; node
// and iteration limits degrade gracefully to the best incumbent found.
#pragma once

#include "ilp/model.hpp"
#include "ilp/simplex.hpp"

namespace luis::ilp {

class SolverCache;

struct BranchAndBoundOptions {
  long max_nodes = 50000;
  double integrality_tolerance = 1e-6;
  /// Relative optimality gap at which the search stops early.
  double relative_gap = 1e-9;
  /// Run the presolve reductions before the search (see presolve.hpp).
  bool presolve = true;
  SimplexOptions lp;
  /// Optional shared memoization of whole-model solves (see
  /// solver_cache.hpp). Not owned; may be shared across threads.
  SolverCache* cache = nullptr;
};

/// Solves `model` to integer optimality (within the configured limits).
/// Continuous variables are left to the LP. Returns the incumbent and the
/// proven bound; status NodeLimit means the incumbent may be suboptimal.
Solution solve_milp(const Model& model, const BranchAndBoundOptions& options = {});

} // namespace luis::ilp
