// Branch & bound MILP driver on top of the simplex LP solver.
//
// Best-first search over LP relaxations with bound overrides (no model
// copies). Branching uses pseudo-costs (per-variable average objective
// degradation observed per unit of fractionality, falling back to most
// fractional until history accumulates). With the revised LP core each
// child node warm-starts from its parent's basis, so a node re-solve is
// typically one dual-simplex pivot instead of a full cold solve. The
// search is exact when it terminates with Optimal; node and iteration
// limits degrade gracefully to the best incumbent found.
#pragma once

#include "ilp/model.hpp"
#include "ilp/simplex.hpp"

namespace luis::ilp {

class SolverCache;

enum class Branching {
  PseudoCost,     ///< history-driven; most fractional until history exists
  MostFractional, ///< always the variable closest to x.5
};

struct BranchAndBoundOptions {
  long max_nodes = 50000;
  double integrality_tolerance = 1e-6;
  /// Relative optimality gap at which the search stops early.
  double relative_gap = 1e-9;
  /// Slack used when pruning nodes and LP relaxations against the
  /// incumbent: a subtree whose bound cannot improve the incumbent by more
  /// than this is cut. Negative (the default) derives it from
  /// lp.tolerance — pruning more finely than the LP's own accuracy just
  /// expands nodes chasing noise.
  double prune_tolerance = -1.0;
  /// Slack for the child-creation bound checks (can floor(v) / ceil(v)
  /// still fit the variable's bounds?). Negative derives
  /// max(1e-9, lp.tolerance).
  double child_bound_tolerance = -1.0;
  Branching branching = Branching::PseudoCost;
  /// Revised core only: child nodes warm-start from the parent's basis.
  bool warm_start = true;
  /// Reuse/store root bases in the SolverCache basis pool, keyed by the
  /// objective-free model structure, so neighboring sweep presets (same
  /// model, different objective weights) start from each other's optimal
  /// bases. Off by default: pool contents depend on solve order, so only
  /// drivers with a deterministic solve order (serial sweeps) enable it.
  bool share_basis = false;
  /// Run the presolve reductions before the search (see presolve.hpp).
  bool presolve = true;
  SimplexOptions lp;
  /// Optional shared memoization of whole-model solves (see
  /// solver_cache.hpp). Not owned; may be shared across threads.
  SolverCache* cache = nullptr;
};

/// Solves `model` to integer optimality (within the configured limits).
/// Continuous variables are left to the LP. Returns the incumbent and the
/// proven bound; status NodeLimit means the incumbent may be suboptimal.
Solution solve_milp(const Model& model, const BranchAndBoundOptions& options = {});

} // namespace luis::ilp
