#include "ilp/presolve.hpp"

#include <cmath>

#include "support/diag.hpp"

namespace luis::ilp {
namespace {

constexpr double kTol = 1e-9;

struct WorkingVar {
  VarKind kind;
  double lower, upper;
  bool fixed = false;
  double value = 0.0;
};

/// Rounds integer bounds inward; returns false if the domain is empty.
bool normalize_bounds(WorkingVar& v) {
  if (v.kind != VarKind::Continuous) {
    if (std::isfinite(v.lower)) v.lower = std::ceil(v.lower - kTol);
    if (std::isfinite(v.upper)) v.upper = std::floor(v.upper + kTol);
  }
  if (v.lower > v.upper + kTol) return false;
  if (std::isfinite(v.lower) && std::isfinite(v.upper) &&
      v.upper - v.lower <= kTol) {
    v.fixed = true;
    v.value = v.kind == VarKind::Continuous ? (v.lower + v.upper) / 2
                                            : std::round(v.lower);
  }
  return true;
}

} // namespace

std::vector<double>
PresolvedModel::restore(const std::vector<double>& reduced_values) const {
  std::vector<double> out(reduced_index.size(), 0.0);
  for (std::size_t j = 0; j < reduced_index.size(); ++j) {
    out[j] = reduced_index[j] < 0
                 ? fixed_value[j]
                 : reduced_values[static_cast<std::size_t>(reduced_index[j])];
  }
  return out;
}

PresolvedModel presolve(const Model& model) {
  PresolvedModel out;
  const std::size_t n = model.num_variables();

  std::vector<WorkingVar> vars(n);
  for (std::size_t j = 0; j < n; ++j) {
    const Variable& v = model.variables()[j];
    vars[j] = WorkingVar{v.kind, v.lower, v.upper, false, 0.0};
    if (!normalize_bounds(vars[j])) {
      out.infeasible = true;
      return out;
    }
  }

  std::vector<bool> row_active(model.num_constraints(), true);

  // Fixpoint over {fix variables, absorb singleton rows}.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t r = 0; r < model.num_constraints(); ++r) {
      if (!row_active[r]) continue;
      const Constraint& c = model.constraints()[r];
      // Count live terms; accumulate the fixed contribution.
      int live = -1;
      double live_coeff = 0.0;
      double fixed_sum = 0.0;
      int live_count = 0;
      for (const auto& [var, coeff] : c.expr.terms()) {
        const auto j = static_cast<std::size_t>(var);
        if (vars[j].fixed) {
          fixed_sum += coeff * vars[j].value;
        } else {
          ++live_count;
          live = var;
          live_coeff = coeff;
        }
      }
      const double rhs = c.rhs - fixed_sum;
      if (live_count == 0) {
        // Empty row: pure feasibility check.
        const bool ok = c.sense == Sense::LE   ? 0.0 <= rhs + kTol
                        : c.sense == Sense::GE ? 0.0 >= rhs - kTol
                                               : std::abs(rhs) <= kTol;
        if (!ok) {
          out.infeasible = true;
          return out;
        }
        row_active[r] = false;
        ++out.rows_removed;
        changed = true;
        continue;
      }
      if (live_count == 1) {
        // Singleton: a*x {<=,>=,=} rhs becomes a bound.
        WorkingVar& v = vars[static_cast<std::size_t>(live)];
        const double bound = rhs / live_coeff;
        switch (c.sense) {
        case Sense::LE:
          if (live_coeff > 0)
            v.upper = std::min(v.upper, bound);
          else
            v.lower = std::max(v.lower, bound);
          break;
        case Sense::GE:
          if (live_coeff > 0)
            v.lower = std::max(v.lower, bound);
          else
            v.upper = std::min(v.upper, bound);
          break;
        case Sense::EQ:
          v.lower = std::max(v.lower, bound);
          v.upper = std::min(v.upper, bound);
          break;
        }
        if (!normalize_bounds(v)) {
          out.infeasible = true;
          return out;
        }
        row_active[r] = false;
        ++out.rows_removed;
        changed = true;
      }
    }
  }

  // Build the reduced model.
  out.reduced_index.assign(n, -1);
  out.fixed_value.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    if (vars[j].fixed) {
      out.fixed_value[j] = vars[j].value;
      ++out.vars_removed;
      continue;
    }
    out.reduced_index[j] = static_cast<int>(out.reduced.add_variable(
        model.variables()[j].name, vars[j].kind, vars[j].lower, vars[j].upper));
  }

  for (std::size_t r = 0; r < model.num_constraints(); ++r) {
    if (!row_active[r]) continue;
    const Constraint& c = model.constraints()[r];
    LinearExpr expr;
    double fixed_sum = 0.0;
    for (const auto& [var, coeff] : c.expr.terms()) {
      const auto j = static_cast<std::size_t>(var);
      if (vars[j].fixed)
        fixed_sum += coeff * vars[j].value;
      else
        expr.add(out.reduced_index[j], coeff);
    }
    out.reduced.add_constraint(std::move(expr), c.sense, c.rhs - fixed_sum,
                               c.name);
  }

  LinearExpr objective;
  objective.add_constant(model.objective().constant());
  for (const auto& [var, coeff] : model.objective().terms()) {
    const auto j = static_cast<std::size_t>(var);
    if (vars[j].fixed)
      out.objective_offset += coeff * vars[j].value;
    else
      objective.add(out.reduced_index[j], coeff);
  }
  out.reduced.set_objective(model.objective_direction(), std::move(objective));
  return out;
}

} // namespace luis::ilp
