// Thread-safe memoization of MILP solves keyed by the canonical model.
//
// The cache lets a batch driver (the sweep orchestrator, repeated
// determinism checks, preset re-runs) skip branch & bound entirely when it
// meets a model it has already solved. Correctness rests on the key being
// a faithful canonicalization: two models share a key only if they are the
// same optimization problem solved under the same result-affecting solver
// options. The canonical form strips names and formatting but deliberately
// preserves variable and constraint order — the solver is deterministic,
// so order-identical models produce bit-identical solutions, and a cache
// hit can never change what a sweep computes (it only skips recomputing
// it). Reordering-insensitive keys would trade that guarantee away.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ilp/model.hpp"
#include "ilp/simplex.hpp"

namespace luis::ilp {

struct BranchAndBoundOptions;

/// Serializes the model plus the result-affecting solver options into a
/// canonical string: name-free, order-preserving, doubles at full
/// round-trip precision. Equal strings imply identical solves.
std::string canonical_model_key(const Model& model,
                                const BranchAndBoundOptions& options);

/// Objective-free canonicalization: variables, bounds and constraints
/// only. Two models share a structural key exactly when they describe the
/// same feasible region in the same variable/constraint order — which is
/// when a simplex basis from one warm-starts the other (sweep presets
/// differ only in objective weights). Keys the SolverCache basis pool.
std::string structural_model_key(const Model& model);

/// FNV-1a 64-bit hash of `key` (stable across platforms and runs).
std::uint64_t fnv1a64(const std::string& key);

class SolverCache {
public:
  struct Stats {
    long lookups = 0;
    long hits = 0;
    long insertions = 0;
    double hit_rate() const {
      return lookups > 0 ? static_cast<double>(hits) / lookups : 0.0;
    }
  };

  /// Returns the cached solution for `key`, if any. Counts a lookup.
  std::optional<Solution> lookup(const std::string& key);

  /// Stores `solution` under `key`. Duplicate keys keep the first entry so
  /// concurrent insert races cannot flip which solution later hits return
  /// (both racers computed identical solutions anyway — see the header
  /// comment — but first-wins makes that independent of timing).
  void insert(const std::string& key, const Solution& solution);

  /// Basis pool: the revised-simplex root basis of a past solve, keyed by
  /// structural_model_key. Unlike the solution entries this is last-wins —
  /// a basis is a hint, not a result, and the most recent neighbor is the
  /// best available seed. Callers that need bit-reproducible results must
  /// only consult the pool from a deterministic solve order (see
  /// BranchAndBoundOptions::share_basis).
  std::optional<Basis> lookup_basis(const std::string& key);
  void store_basis(const std::string& key, const Basis& basis);

  Stats stats() const;
  std::size_t size() const;
  void clear();

private:
  struct Entry {
    std::string key; ///< full key, verified on hit (hash collisions)
    Solution solution;
  };
  struct BasisEntry {
    std::string key;
    Basis basis;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::vector<Entry>> entries_;
  std::unordered_map<std::uint64_t, std::vector<BasisEntry>> basis_entries_;
  Stats stats_;
};

} // namespace luis::ilp
