#include "ilp/branch_and_bound.hpp"

#include "ilp/presolve.hpp"
#include "ilp/solver_cache.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/diag.hpp"

namespace luis::ilp {
namespace {

struct Node {
  std::vector<BoundsOverride> overrides;
  double bound = 0.0; // parent LP objective, in minimization sign
};

struct NodeOrder {
  bool operator()(const std::shared_ptr<Node>& a,
                  const std::shared_ptr<Node>& b) const {
    return a->bound > b->bound; // best (smallest) bound first
  }
};

/// Finds the integer variable with the most fractional LP value.
int most_fractional(const Model& model, const std::vector<double>& values,
                    double tol) {
  int best = -1;
  double best_dist = tol;
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    if (model.variables()[j].kind == VarKind::Continuous) continue;
    const double v = values[j];
    const double dist = std::abs(v - std::round(v));
    const double frac_dist = std::min(v - std::floor(v), std::ceil(v) - v);
    if (dist > tol && frac_dist > best_dist) {
      best = static_cast<int>(j);
      best_dist = frac_dist;
    }
  }
  return best;
}

} // namespace

namespace {
Solution solve_milp_impl(const Model& model, const BranchAndBoundOptions& opt);

Solution solve_milp_uncached(const Model& model,
                             const BranchAndBoundOptions& opt) {
  if (!opt.presolve) return solve_milp_impl(model, opt);

  obs::TraceSpan presolve_span("ilp.presolve", "ilp", [&] {
    return obs::Args()
        .num("variables", model.num_variables())
        .num("constraints", model.constraints().size())
        .done();
  });
  const PresolvedModel pre = presolve(model);
  presolve_span.end();
  if (pre.infeasible) {
    Solution sol;
    sol.status = SolveStatus::Infeasible;
    return sol;
  }
  Solution sol = solve_milp_impl(pre.reduced, opt);
  // The reduced objective omits the fixed-variable contribution; lift the
  // proven bound back into full-model terms so bound and objective are
  // comparable whenever presolve fixed a variable with a nonzero
  // objective coefficient.
  sol.best_bound += pre.objective_offset;
  if (!sol.values.empty()) {
    sol.values = pre.restore(sol.values);
    sol.objective = model.objective_value(sol.values);
  } else if (sol.status == SolveStatus::Optimal ||
             pre.reduced.num_variables() == 0) {
    // Fully presolved model: the fixed assignment is the solution, if it
    // satisfies the (already verified) constraints.
    sol.values = pre.restore({});
    if (model.is_feasible(sol.values)) {
      sol.status = SolveStatus::Optimal;
      sol.objective = model.objective_value(sol.values);
      sol.best_bound = sol.objective;
    }
  }
  return sol;
}
} // namespace

Solution solve_milp(const Model& model, const BranchAndBoundOptions& opt) {
  obs::TraceSpan span("ilp.solve", "ilp", [&] {
    return obs::Args()
        .num("variables", model.num_variables())
        .num("constraints", model.constraints().size())
        .boolean("cached", opt.cache != nullptr)
        .done();
  });
  obs::metrics().counter("ilp.solves").inc();
  if (!opt.cache) return solve_milp_uncached(model, opt);
  const std::string key = canonical_model_key(model, opt);
  if (std::optional<Solution> hit = opt.cache->lookup(key)) return *hit;
  Solution sol = solve_milp_uncached(model, opt);
  opt.cache->insert(key, sol);
  return sol;
}

namespace {

Solution solve_milp_impl(const Model& model, const BranchAndBoundOptions& opt) {
  obs::TraceSpan bnb_span("ilp.bnb", "ilp", [&] {
    return obs::Args()
        .num("variables", model.num_variables())
        .num("constraints", model.constraints().size())
        .done();
  });
  // Work in minimization sign internally.
  const double sign = model.objective_direction() == Direction::Minimize ? 1.0 : -1.0;

  Solution incumbent;
  incumbent.status = SolveStatus::Infeasible;
  double incumbent_cost = kInfinity;
  double best_open_bound = -kInfinity;
  long nodes = 0;
  long iterations = 0;
  bool hit_limit = false;
  // Tightest bound among nodes abandoned because their LP relaxation hit
  // the iteration limit. Their subtrees are unexplored, so their parent
  // bounds must stay in the proven-bound computation or best_bound (and
  // the reported gap) overstate what the search actually proved.
  double dropped_open_bound = kInfinity;

  std::priority_queue<std::shared_ptr<Node>, std::vector<std::shared_ptr<Node>>,
                      NodeOrder>
      open;
  auto root = std::make_shared<Node>();
  root->bound = -kInfinity;
  open.push(std::move(root));

  bool any_unbounded = false;
  while (!open.empty()) {
    if (nodes >= opt.max_nodes) {
      hit_limit = true;
      break;
    }
    const std::shared_ptr<Node> node = open.top();
    open.pop();
    if (node->bound >= incumbent_cost - 1e-12) continue; // pruned by bound
    ++nodes;
    // Early nodes individually, later ones sampled: enough to see the
    // search shape in a trace without drowning big solves in events.
    if (obs::tracing_enabled() && (nodes <= 8 || nodes % 64 == 0))
      obs::instant("bnb.node", "ilp",
                   obs::Args()
                       .num("node", nodes)
                       .num("bound", sign * node->bound)
                       .num("open", open.size())
                       .done());

    Solution lp = solve_lp(model, opt.lp, node->overrides);
    iterations += lp.iterations;
    if (lp.status == SolveStatus::IterationLimit) {
      hit_limit = true;
      dropped_open_bound = std::min(dropped_open_bound, node->bound);
      continue;
    }
    if (lp.status == SolveStatus::Infeasible) continue;
    if (lp.status == SolveStatus::Unbounded) {
      // An unbounded relaxation at the root makes the MILP unbounded or
      // infeasible; report unbounded (LUIS models are always bounded).
      any_unbounded = true;
      continue;
    }
    const double cost = sign * lp.objective;
    if (cost >= incumbent_cost - 1e-12) continue; // bound prune

    const int branch_var =
        most_fractional(model, lp.values, opt.integrality_tolerance);
    if (branch_var < 0) {
      // Integral: new incumbent.
      incumbent.values = lp.values;
      incumbent.objective = lp.objective;
      incumbent.status = SolveStatus::Optimal;
      incumbent_cost = cost;
      if (obs::tracing_enabled()) {
        // Gap against the best bound still open (in minimization sign).
        const double open_bound = open.empty() ? cost : open.top()->bound;
        obs::instant("bnb.incumbent", "ilp",
                     obs::Args()
                         .num("node", nodes)
                         .num("objective", lp.objective)
                         .num("bound_gap", cost - std::min(open_bound,
                                                           dropped_open_bound))
                         .done());
      }
      continue;
    }

    const double v = lp.values[static_cast<std::size_t>(branch_var)];
    const Variable& var = model.variables()[static_cast<std::size_t>(branch_var)];
    // Current effective bounds of the branch variable at this node.
    double cur_lo = var.lower, cur_hi = var.upper;
    for (const BoundsOverride& o : node->overrides) {
      if (o.var == branch_var) {
        cur_lo = o.lower;
        cur_hi = o.upper;
      }
    }
    const double floor_v = std::floor(v);
    // Down child: x <= floor(v).
    if (floor_v >= cur_lo - 1e-9) {
      auto down = std::make_shared<Node>();
      down->overrides = node->overrides;
      down->overrides.push_back({branch_var, cur_lo, floor_v});
      down->bound = cost;
      open.push(std::move(down));
    }
    // Up child: x >= ceil(v).
    if (floor_v + 1.0 <= cur_hi + 1e-9) {
      auto up = std::make_shared<Node>();
      up->overrides = node->overrides;
      up->overrides.push_back({branch_var, floor_v + 1.0, cur_hi});
      up->bound = cost;
      open.push(std::move(up));
    }
  }

  // The tightest bound still open (for gap reporting), including nodes
  // whose relaxations were abandoned at the LP iteration limit.
  best_open_bound = open.empty() ? incumbent_cost : open.top()->bound;
  best_open_bound = std::min(best_open_bound, dropped_open_bound);

  incumbent.nodes = nodes;
  incumbent.iterations = iterations;
  obs::metrics().counter("ilp.bnb.nodes").inc(nodes);
  obs::metrics().counter("ilp.bnb.lp_iterations").inc(iterations);
  obs::metrics().histogram("ilp.bnb.nodes_per_solve")
      .observe(static_cast<double>(nodes));
  incumbent.best_bound = sign * std::min(best_open_bound, incumbent_cost);
  if (incumbent.status == SolveStatus::Optimal) {
    // Snap integer values that are within tolerance of an integer.
    for (std::size_t j = 0; j < model.num_variables(); ++j) {
      if (model.variables()[j].kind == VarKind::Continuous) continue;
      incumbent.values[j] = std::round(incumbent.values[j]);
    }
    incumbent.objective = model.objective_value(incumbent.values);
    if (hit_limit) incumbent.status = SolveStatus::NodeLimit;
    return incumbent;
  }
  if (hit_limit) {
    incumbent.status = SolveStatus::NodeLimit;
  } else if (any_unbounded) {
    incumbent.status = SolveStatus::Unbounded;
  }
  return incumbent;
}

} // namespace

} // namespace luis::ilp
