#include "ilp/branch_and_bound.hpp"

#include "ilp/presolve.hpp"
#include "ilp/revised_simplex.hpp"
#include "ilp/solver_cache.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/diag.hpp"

namespace luis::ilp {
namespace {

struct Node {
  std::vector<BoundsOverride> overrides;
  double bound = 0.0; // parent LP objective, in minimization sign
  /// Parent's final LP basis (revised core): the child re-solve starts
  /// dual feasible and typically finishes in a handful of pivots.
  Basis basis;
  // Branching bookkeeping for pseudo-cost updates.
  int branch_var = -1;        ///< variable branched on to create this node
  bool branch_up = false;     ///< true: x >= ceil(v); false: x <= floor(v)
  double branch_frac = 0.0;   ///< fractional distance moved by the branch
};

struct NodeOrder {
  bool operator()(const std::shared_ptr<Node>& a,
                  const std::shared_ptr<Node>& b) const {
    return a->bound > b->bound; // best (smallest) bound first
  }
};

/// Per-variable pseudo-costs: average objective degradation per unit of
/// fractional distance, kept separately for the up and down branches.
struct PseudoCosts {
  std::vector<double> up_sum, down_sum;
  std::vector<long> up_count, down_count;

  explicit PseudoCosts(std::size_t n)
      : up_sum(n, 0.0), down_sum(n, 0.0), up_count(n, 0), down_count(n, 0) {}

  void record(const Node& node, double child_cost) {
    if (node.branch_var < 0) return;
    const auto j = static_cast<std::size_t>(node.branch_var);
    const double degrade = std::max(0.0, child_cost - node.bound) /
                           std::max(node.branch_frac, 1e-6);
    if (node.branch_up) {
      up_sum[j] += degrade;
      ++up_count[j];
    } else {
      down_sum[j] += degrade;
      ++down_count[j];
    }
  }

  /// Estimated per-unit degradation in a direction; variables without
  /// history borrow `fallback` (the global average).
  double estimate(std::size_t j, bool up, double fallback) const {
    const long n = up ? up_count[j] : down_count[j];
    if (n == 0) return fallback;
    return (up ? up_sum[j] : down_sum[j]) / static_cast<double>(n);
  }

  double global_average() const {
    double sum = 0.0;
    long n = 0;
    for (std::size_t j = 0; j < up_sum.size(); ++j) {
      sum += up_sum[j] + down_sum[j];
      n += up_count[j] + down_count[j];
    }
    return n > 0 ? sum / static_cast<double>(n) : 1.0;
  }
};

/// Finds the integer variable with the most fractional LP value.
int most_fractional(const Model& model, const std::vector<double>& values,
                    double tol) {
  int best = -1;
  double best_dist = tol;
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    if (model.variables()[j].kind == VarKind::Continuous) continue;
    const double v = values[j];
    const double dist = std::abs(v - std::round(v));
    const double frac_dist = std::min(v - std::floor(v), std::ceil(v) - v);
    if (dist > tol && frac_dist > best_dist) {
      best = static_cast<int>(j);
      best_dist = frac_dist;
    }
  }
  return best;
}

/// Pseudo-cost selection: maximize the product of the estimated up and
/// down degradations (the classic reliability-branching score). Variables
/// without history effectively score by fractionality via the fallback.
int select_pseudo_cost(const Model& model, const std::vector<double>& values,
                       double tol, const PseudoCosts& pc) {
  const double fallback = pc.global_average();
  int best = -1;
  double best_score = -1.0;
  double best_frac = 0.0;
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    if (model.variables()[j].kind == VarKind::Continuous) continue;
    const double v = values[j];
    if (std::abs(v - std::round(v)) <= tol) continue;
    const double f_down = v - std::floor(v);
    const double f_up = std::ceil(v) - v;
    const double score = std::max(f_down * pc.estimate(j, false, fallback), 1e-12) *
                         std::max(f_up * pc.estimate(j, true, fallback), 1e-12);
    const double frac = std::min(f_down, f_up);
    if (score > best_score + 1e-15 ||
        (score > best_score - 1e-15 && frac > best_frac + 1e-12)) {
      best = static_cast<int>(j);
      best_score = score;
      best_frac = frac;
    }
  }
  return best;
}

} // namespace

namespace {
Solution solve_milp_impl(const Model& model, const BranchAndBoundOptions& opt);

Solution solve_milp_uncached(const Model& model,
                             const BranchAndBoundOptions& opt) {
  if (!opt.presolve) return solve_milp_impl(model, opt);

  obs::TraceSpan presolve_span("ilp.presolve", "ilp", [&] {
    return obs::Args()
        .num("variables", model.num_variables())
        .num("constraints", model.constraints().size())
        .done();
  });
  const PresolvedModel pre = presolve(model);
  presolve_span.end();
  if (pre.infeasible) {
    Solution sol;
    sol.status = SolveStatus::Infeasible;
    return sol;
  }
  Solution sol = solve_milp_impl(pre.reduced, opt);
  // The reduced objective omits the fixed-variable contribution; lift the
  // proven bound back into full-model terms so bound and objective are
  // comparable whenever presolve fixed a variable with a nonzero
  // objective coefficient.
  sol.best_bound += pre.objective_offset;
  if (!sol.values.empty()) {
    sol.values = pre.restore(sol.values);
    sol.objective = model.objective_value(sol.values);
  } else if (sol.status == SolveStatus::Optimal ||
             pre.reduced.num_variables() == 0) {
    // Fully presolved model: the fixed assignment is the solution, if it
    // satisfies the (already verified) constraints.
    sol.values = pre.restore({});
    if (model.is_feasible(sol.values)) {
      sol.status = SolveStatus::Optimal;
      sol.objective = model.objective_value(sol.values);
      sol.best_bound = sol.objective;
    }
  }
  return sol;
}
} // namespace

Solution solve_milp(const Model& model, const BranchAndBoundOptions& opt) {
  obs::TraceSpan span("ilp.solve", "ilp", [&] {
    return obs::Args()
        .num("variables", model.num_variables())
        .num("constraints", model.constraints().size())
        .boolean("cached", opt.cache != nullptr)
        .done();
  });
  obs::metrics().counter("ilp.solves").inc();
  if (!opt.cache) return solve_milp_uncached(model, opt);
  const std::string key = canonical_model_key(model, opt);
  if (std::optional<Solution> hit = opt.cache->lookup(key)) return *hit;
  Solution sol = solve_milp_uncached(model, opt);
  opt.cache->insert(key, sol);
  return sol;
}

namespace {

Solution solve_milp_impl(const Model& model, const BranchAndBoundOptions& opt) {
  obs::TraceSpan bnb_span("ilp.bnb", "ilp", [&] {
    return obs::Args()
        .num("variables", model.num_variables())
        .num("constraints", model.constraints().size())
        .done();
  });
  // Work in minimization sign internally.
  const double sign = model.objective_direction() == Direction::Minimize ? 1.0 : -1.0;

  // Derived tolerances (see the option docs): everything that compares a
  // bound against the incumbent uses prune_tol; everything that checks a
  // branch against variable bounds uses child_tol. Both default to the LP
  // core's own accuracy instead of unrelated hardcoded constants.
  const double prune_tol =
      opt.prune_tolerance >= 0.0 ? opt.prune_tolerance : opt.lp.tolerance;
  const double child_tol = opt.child_bound_tolerance >= 0.0
                               ? opt.child_bound_tolerance
                               : std::max(1e-9, opt.lp.tolerance);

  const bool revised = opt.lp.core == LpCore::Revised;
  SparseColumns cols;
  if (revised) cols = model.sparse_columns();
  // Structural basis pool: objective-free key, so presets that only differ
  // in objective weights land on the same entry.
  const std::string basis_key =
      (revised && opt.share_basis && opt.cache) ? structural_model_key(model)
                                                : std::string();

  Solution incumbent;
  incumbent.status = SolveStatus::Infeasible;
  double incumbent_cost = kInfinity;
  double best_open_bound = -kInfinity;
  long nodes = 0;
  long iterations = 0;
  bool hit_limit = false;
  // Tightest bound among nodes abandoned unexplored — because their LP
  // relaxation hit the iteration limit, or because the node limit fired
  // with the open queue still populated. Their subtrees are unexplored, so
  // their parent bounds must stay in the proven-bound computation or
  // best_bound (and the reported gap) overstate what the search proved.
  double dropped_open_bound = kInfinity;

  PseudoCosts pseudo(model.num_variables());

  std::priority_queue<std::shared_ptr<Node>, std::vector<std::shared_ptr<Node>>,
                      NodeOrder>
      open;
  auto root = std::make_shared<Node>();
  root->bound = -kInfinity;
  if (!basis_key.empty()) {
    if (std::optional<Basis> warm = opt.cache->lookup_basis(basis_key))
      root->basis = std::move(*warm);
  }
  open.push(std::move(root));

  bool any_unbounded = false;
  while (!open.empty()) {
    if (nodes >= opt.max_nodes) {
      hit_limit = true;
      // Every node still open is abandoned unexplored: fold the tightest
      // of their bounds into the dropped-bound accounting so the reported
      // best_bound stays a true bound on the optimum.
      dropped_open_bound = std::min(dropped_open_bound, open.top()->bound);
      break;
    }
    const std::shared_ptr<Node> node = open.top();
    open.pop();
    // Prune against the incumbent: the LP cannot certify improvements
    // finer than its own tolerance, and the caller may additionally accept
    // a relative gap.
    const double gap_slack =
        std::isfinite(incumbent_cost)
            ? opt.relative_gap * std::max(1.0, std::abs(incumbent_cost))
            : 0.0;
    if (node->bound >= incumbent_cost - std::max(prune_tol, gap_slack))
      continue;
    ++nodes;
    // Early nodes individually, later ones sampled: enough to see the
    // search shape in a trace without drowning big solves in events.
    if (obs::tracing_enabled() && (nodes <= 8 || nodes % 64 == 0))
      obs::instant("bnb.node", "ilp",
                   obs::Args()
                       .num("node", nodes)
                       .num("bound", sign * node->bound)
                       .num("open", open.size())
                       .done());

    Solution lp;
    if (revised)
      lp = solve_lp_revised(model, cols, opt.lp, node->overrides,
                            opt.warm_start ? &node->basis : nullptr);
    else
      lp = solve_lp(model, opt.lp, node->overrides);
    iterations += lp.iterations;
    if (nodes == 1 && !basis_key.empty() && lp.status == SolveStatus::Optimal)
      opt.cache->store_basis(basis_key, node->basis);
    if (lp.status == SolveStatus::IterationLimit) {
      hit_limit = true;
      dropped_open_bound = std::min(dropped_open_bound, node->bound);
      continue;
    }
    if (lp.status == SolveStatus::Infeasible) continue;
    if (lp.status == SolveStatus::Unbounded) {
      // An unbounded relaxation at the root makes the MILP unbounded or
      // infeasible; report unbounded (LUIS models are always bounded).
      any_unbounded = true;
      continue;
    }
    const double cost = sign * lp.objective;
    pseudo.record(*node, cost);
    if (cost >= incumbent_cost - prune_tol) continue; // bound prune

    const int branch_var =
        opt.branching == Branching::PseudoCost
            ? select_pseudo_cost(model, lp.values, opt.integrality_tolerance,
                                 pseudo)
            : most_fractional(model, lp.values, opt.integrality_tolerance);
    if (branch_var < 0) {
      // Integral: new incumbent.
      incumbent.values = lp.values;
      incumbent.objective = lp.objective;
      incumbent.status = SolveStatus::Optimal;
      incumbent_cost = cost;
      if (obs::tracing_enabled()) {
        // Gap against the best bound still open (in minimization sign).
        const double open_bound = open.empty() ? cost : open.top()->bound;
        obs::instant("bnb.incumbent", "ilp",
                     obs::Args()
                         .num("node", nodes)
                         .num("objective", lp.objective)
                         .num("bound_gap", cost - std::min(open_bound,
                                                           dropped_open_bound))
                         .done());
      }
      continue;
    }

    const double v = lp.values[static_cast<std::size_t>(branch_var)];
    const Variable& var = model.variables()[static_cast<std::size_t>(branch_var)];
    // Current effective bounds of the branch variable at this node.
    double cur_lo = var.lower, cur_hi = var.upper;
    for (const BoundsOverride& o : node->overrides) {
      if (o.var == branch_var) {
        cur_lo = o.lower;
        cur_hi = o.upper;
      }
    }
    const double floor_v = std::floor(v);
    // Down child: x <= floor(v).
    if (floor_v >= cur_lo - child_tol) {
      auto down = std::make_shared<Node>();
      down->overrides = node->overrides;
      down->overrides.push_back({branch_var, cur_lo, floor_v});
      down->bound = cost;
      down->basis = node->basis;
      down->branch_var = branch_var;
      down->branch_up = false;
      down->branch_frac = v - floor_v;
      open.push(std::move(down));
    }
    // Up child: x >= ceil(v).
    if (floor_v + 1.0 <= cur_hi + child_tol) {
      auto up = std::make_shared<Node>();
      up->overrides = node->overrides;
      up->overrides.push_back({branch_var, floor_v + 1.0, cur_hi});
      up->bound = cost;
      up->basis = std::move(node->basis);
      up->branch_var = branch_var;
      up->branch_up = true;
      up->branch_frac = floor_v + 1.0 - v;
      open.push(std::move(up));
    }
  }

  // The tightest bound still open (for gap reporting), including nodes
  // whose subtrees were abandoned at the LP iteration or node limit.
  best_open_bound = open.empty() ? incumbent_cost : open.top()->bound;
  best_open_bound = std::min(best_open_bound, dropped_open_bound);

  incumbent.nodes = nodes;
  incumbent.iterations = iterations;
  obs::metrics().counter("ilp.bnb.nodes").inc(nodes);
  obs::metrics().counter("ilp.bnb.lp_iterations").inc(iterations);
  obs::metrics().histogram("ilp.bnb.nodes_per_solve")
      .observe(static_cast<double>(nodes));
  incumbent.best_bound = sign * std::min(best_open_bound, incumbent_cost);
  if (incumbent.status == SolveStatus::Optimal) {
    // Snap integer values that are within tolerance of an integer.
    for (std::size_t j = 0; j < model.num_variables(); ++j) {
      if (model.variables()[j].kind == VarKind::Continuous) continue;
      incumbent.values[j] = std::round(incumbent.values[j]);
    }
    incumbent.objective = model.objective_value(incumbent.values);
    if (hit_limit) incumbent.status = SolveStatus::NodeLimit;
    return incumbent;
  }
  if (hit_limit) {
    incumbent.status = SolveStatus::NodeLimit;
  } else if (any_unbounded) {
    incumbent.status = SolveStatus::Unbounded;
  }
  return incumbent;
}

} // namespace

} // namespace luis::ilp
