#include "ilp/lp_writer.hpp"

#include <cmath>
#include <sstream>

namespace luis::ilp {
namespace {

std::string var_name(const Model& model, VarId id) {
  const std::string& n = model.variables()[static_cast<std::size_t>(id)].name;
  if (!n.empty()) return n;
  return "x" + std::to_string(id);
}

void write_expr(std::ostream& os, const Model& model, const LinearExpr& expr) {
  os.precision(17);
  bool first = true;
  for (const auto& [var, coeff] : expr.terms()) {
    if (coeff >= 0.0 && !first) os << " + ";
    if (coeff < 0.0) os << (first ? "- " : " - ");
    const double mag = std::abs(coeff);
    if (mag != 1.0) os << mag << " ";
    os << var_name(model, var);
    first = false;
  }
  if (first) os << "0";
}

} // namespace

std::string to_lp_format(const Model& model) {
  std::ostringstream os;
  os.precision(17); // round-trip exact through parse_lp
  os << (model.objective_direction() == Direction::Minimize ? "Minimize\n"
                                                            : "Maximize\n");
  os << " obj: ";
  write_expr(os, model, model.objective());
  // The objective's constant term is part of the reported optimum (and of
  // presolve-lifted bounds); dropping it would silently shift objectives
  // on a write/read round-trip.
  const double c0 = model.objective().constant();
  if (c0 > 0.0) os << " + " << c0;
  if (c0 < 0.0) os << " - " << -c0;
  os << "\nSubject To\n";
  int idx = 0;
  for (const Constraint& c : model.constraints()) {
    os << " " << (c.name.empty() ? "c" + std::to_string(idx) : c.name) << ": ";
    write_expr(os, model, c.expr);
    switch (c.sense) {
    case Sense::LE: os << " <= "; break;
    case Sense::GE: os << " >= "; break;
    case Sense::EQ: os << " = "; break;
    }
    os << c.rhs << "\n";
    ++idx;
  }
  os << "Bounds\n";
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    const Variable& v = model.variables()[j];
    os << " ";
    if (std::isinf(v.lower))
      os << "-inf";
    else
      os << v.lower;
    os << " <= " << var_name(model, static_cast<VarId>(j)) << " <= ";
    if (std::isinf(v.upper))
      os << "+inf";
    else
      os << v.upper;
    os << "\n";
  }
  bool have_int = false;
  for (std::size_t j = 0; j < model.num_variables(); ++j) {
    if (model.variables()[j].kind == VarKind::Continuous) continue;
    if (!have_int) {
      os << "General\n";
      have_int = true;
    }
    os << " " << var_name(model, static_cast<VarId>(j)) << "\n";
  }
  os << "End\n";
  return os.str();
}

} // namespace luis::ilp
