#include "ilp/basis_lu.hpp"

#include <algorithm>
#include <cmath>

namespace luis::ilp {
namespace {

constexpr double kPivotFloor = 1e-11; ///< singularity threshold
constexpr double kUpdateFloor = 1e-9; ///< minimum stable eta pivot
constexpr double kDropTol = 1e-14;    ///< entries below this are noise

} // namespace

bool BasisLu::factorize(const SparseColumns& cols, const std::vector<int>& basic) {
  const int m = static_cast<int>(basic.size());
  m_ = m;
  etas_.clear();
  ++refactorizations_;
  row_of_pos_.assign(static_cast<std::size_t>(m), -1);
  pos_of_row_.assign(static_cast<std::size_t>(m), -1);
  col_of_pos_.assign(static_cast<std::size_t>(m), -1);
  udiag_.assign(static_cast<std::size_t>(m), 1.0);
  lcol_.assign(static_cast<std::size_t>(m), {});
  ucol_.assign(static_cast<std::size_t>(m), {});
  if (m == 0) return true;

  // Phase A: pivot every slack basic on its own row. A slack column is a
  // unit vector, so these pivots are triangular by construction — no
  // elimination work and no fill.
  int npos = 0;
  for (int c = 0; c < m; ++c) {
    const int col = basic[static_cast<std::size_t>(c)];
    if (col < cols.cols) continue;
    const int r = col - cols.cols;
    row_of_pos_[static_cast<std::size_t>(npos)] = r;
    pos_of_row_[static_cast<std::size_t>(r)] = npos;
    col_of_pos_[static_cast<std::size_t>(npos)] = c;
    ++npos;
  }
  const int s0 = npos; // bump starts here
  const int s = m - s0;

  // Remaining rows (in index order) host the bump.
  for (int r = 0; r < m; ++r) {
    if (pos_of_row_[static_cast<std::size_t>(r)] >= 0) continue;
    row_of_pos_[static_cast<std::size_t>(npos)] = r;
    pos_of_row_[static_cast<std::size_t>(r)] = npos;
    ++npos;
  }

  // Phase B: scatter the structural basics. Entries landing on slack rows
  // are finished U entries (those rows sit above every bump row); entries
  // on bump rows form the dense s x s bump to eliminate.
  std::vector<double> bump(static_cast<std::size_t>(s) * static_cast<std::size_t>(s), 0.0);
  const auto at = [&](int br, int bc) -> double& {
    return bump[static_cast<std::size_t>(br) * static_cast<std::size_t>(s) +
                static_cast<std::size_t>(bc)];
  };
  int k = 0;
  for (int c = 0; c < m; ++c) {
    const int col = basic[static_cast<std::size_t>(c)];
    if (col >= cols.cols) continue;
    const int p = s0 + k;
    col_of_pos_[static_cast<std::size_t>(p)] = c;
    cols.for_entries(col, [&](int r, double v) {
      const int rp = pos_of_row_[static_cast<std::size_t>(r)];
      if (rp < s0)
        ucol_[static_cast<std::size_t>(p)].emplace_back(rp, v);
      else
        at(rp - s0, k) = v;
    });
    ++k;
  }

  // Dense Gaussian elimination with partial pivoting on the bump. Row
  // swaps permute row_of_pos_ within the bump region only; the inner
  // updates skip zero multipliers, so sparse bumps stay cheap.
  for (int kk = 0; kk < s; ++kk) {
    int piv = kk;
    double best = std::abs(at(kk, kk));
    for (int r = kk + 1; r < s; ++r) {
      const double a = std::abs(at(r, kk));
      if (a > best) {
        best = a;
        piv = r;
      }
    }
    if (best < kPivotFloor) {
      m_ = -1;
      return false; // singular basis
    }
    if (piv != kk) {
      for (int c = 0; c < s; ++c) std::swap(at(kk, c), at(piv, c));
      std::swap(row_of_pos_[static_cast<std::size_t>(s0 + kk)],
                row_of_pos_[static_cast<std::size_t>(s0 + piv)]);
    }
    const double inv = 1.0 / at(kk, kk);
    for (int r = kk + 1; r < s; ++r) {
      const double factor = at(r, kk) * inv;
      if (factor == 0.0) continue;
      at(r, kk) = factor; // store the L multiplier in place
      for (int c = kk + 1; c < s; ++c) {
        const double u = at(kk, c);
        if (u != 0.0) at(r, c) -= factor * u;
      }
    }
  }
  for (int p = s0; p < m; ++p)
    pos_of_row_[static_cast<std::size_t>(row_of_pos_[static_cast<std::size_t>(p)])] = p;

  // Extract the bump's triangles into the sparse column lists.
  for (int kk = 0; kk < s; ++kk) {
    const int p = s0 + kk;
    udiag_[static_cast<std::size_t>(p)] = at(kk, kk);
    for (int r = 0; r < kk; ++r) {
      const double u = at(r, kk);
      if (u != 0.0) ucol_[static_cast<std::size_t>(p)].emplace_back(s0 + r, u);
    }
    for (int r = kk + 1; r < s; ++r) {
      const double l = at(r, kk);
      if (l != 0.0) lcol_[static_cast<std::size_t>(p)].emplace_back(s0 + r, l);
    }
  }
  return true;
}

void BasisLu::ftran(std::vector<double>& x) const {
  const int m = m_;
  if (m <= 0) return;
  std::vector<double>& t = scratch_;
  t.resize(static_cast<std::size_t>(m));
  for (int p = 0; p < m; ++p)
    t[static_cast<std::size_t>(p)] =
        x[static_cast<std::size_t>(row_of_pos_[static_cast<std::size_t>(p)])];
  // L solve: forward column-oriented scatter, skipping zero positions.
  for (int p = 0; p < m; ++p) {
    const double tp = t[static_cast<std::size_t>(p)];
    if (tp == 0.0) continue;
    for (const auto& [q, v] : lcol_[static_cast<std::size_t>(p)])
      t[static_cast<std::size_t>(q)] -= v * tp;
  }
  // U solve: backward column-oriented scatter.
  for (int p = m - 1; p >= 0; --p) {
    const double tp = t[static_cast<std::size_t>(p)] / udiag_[static_cast<std::size_t>(p)];
    t[static_cast<std::size_t>(p)] = tp;
    if (tp == 0.0) continue;
    for (const auto& [q, v] : ucol_[static_cast<std::size_t>(p)])
      t[static_cast<std::size_t>(q)] -= v * tp;
  }
  for (int p = 0; p < m; ++p)
    x[static_cast<std::size_t>(col_of_pos_[static_cast<std::size_t>(p)])] =
        t[static_cast<std::size_t>(p)];
  // E_i^{-1}: x[row] /= pivot; x[j] -= w[j] * x[row] for j != row.
  for (const Eta& e : etas_) {
    const double xr = x[static_cast<std::size_t>(e.row)] / e.pivot;
    if (xr != 0.0) {
      for (const auto& [r, v] : e.entries)
        if (r != e.row) x[static_cast<std::size_t>(r)] -= v * xr;
    }
    x[static_cast<std::size_t>(e.row)] = xr;
  }
}

void BasisLu::btran(std::vector<double>& x) const {
  const int m = m_;
  if (m <= 0) return;
  // (E_k ... E_1)^T applied inverse in reverse order first.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    const Eta& e = *it;
    double acc = x[static_cast<std::size_t>(e.row)];
    for (const auto& [r, v] : e.entries)
      if (r != e.row) acc -= v * x[static_cast<std::size_t>(r)];
    x[static_cast<std::size_t>(e.row)] = acc / e.pivot;
  }
  std::vector<double>& t = scratch_;
  t.resize(static_cast<std::size_t>(m));
  for (int p = 0; p < m; ++p)
    t[static_cast<std::size_t>(p)] =
        x[static_cast<std::size_t>(col_of_pos_[static_cast<std::size_t>(p)])];
  // U^T solve: forward gather over U's column lists.
  for (int p = 0; p < m; ++p) {
    double acc = t[static_cast<std::size_t>(p)];
    for (const auto& [q, v] : ucol_[static_cast<std::size_t>(p)])
      acc -= v * t[static_cast<std::size_t>(q)];
    t[static_cast<std::size_t>(p)] = acc / udiag_[static_cast<std::size_t>(p)];
  }
  // L^T solve: backward gather over L's column lists.
  for (int p = m - 1; p >= 0; --p) {
    double acc = t[static_cast<std::size_t>(p)];
    for (const auto& [q, v] : lcol_[static_cast<std::size_t>(p)])
      acc -= v * t[static_cast<std::size_t>(q)];
    t[static_cast<std::size_t>(p)] = acc;
  }
  for (int p = 0; p < m; ++p)
    x[static_cast<std::size_t>(row_of_pos_[static_cast<std::size_t>(p)])] =
        t[static_cast<std::size_t>(p)];
}

bool BasisLu::update(int row, const std::vector<double>& w) {
  const double pivot = w[static_cast<std::size_t>(row)];
  if (std::abs(pivot) < kUpdateFloor) return false;
  Eta e;
  e.row = row;
  e.pivot = pivot;
  for (int r = 0; r < m_; ++r) {
    const double v = w[static_cast<std::size_t>(r)];
    if (std::abs(v) > kDropTol) e.entries.emplace_back(r, v);
  }
  etas_.push_back(std::move(e));
  return true;
}

} // namespace luis::ilp
