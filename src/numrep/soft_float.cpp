#include "numrep/soft_float.hpp"

#include <cmath>

#include "support/diag.hpp"

namespace luis::numrep {
namespace {

void check_executable(const NumericFormat& f) {
  LUIS_ASSERT(f.is_float(), "round_to_format requires a floating point format");
  LUIS_ASSERT(f.precision() >= 2 && f.precision() <= 53,
              "executable float precision must be in [2, 53]");
  LUIS_ASSERT(f.max_exponent() >= 1 && f.max_exponent() <= 1023,
              "executable float max exponent must be in [1, 1023]");
}

/// Rounds x to an integral multiple of 2^q, round to nearest even.
/// Exact because |x / 2^q| < 2^53 at every call site.
double round_to_quantum(double x, int q) {
  const double scaled = std::ldexp(x, -q);
  // nearbyint honours the current rounding mode; the default mode is
  // round-to-nearest-even, which is what every format here uses.
  return std::ldexp(std::nearbyint(scaled), q);
}

} // namespace

bool is_executable_float(const NumericFormat& format) {
  return format.is_float() && format.precision() >= 2 &&
         format.precision() <= 53 && format.max_exponent() >= 1 &&
         format.max_exponent() <= 1023;
}

double round_to_format(const NumericFormat& format, double x) {
  check_executable(format);
  if (format == kBinary64) return x; // identity: the host format
  // The FiniteOnly and Fnuz encodings have no infinity pattern: out-of-range
  // values saturate at the largest finite magnitude (OCP FP8 saturating
  // conversion), and an infinite input clamps the same way.
  const bool saturating = format.encoding() != FloatEncoding::Ieee;
  if (!std::isfinite(x)) {
    if (std::isnan(x) || !saturating) return x;
    return std::copysign(float_max_value(format), x);
  }
  if (x == 0.0) return x;

  const int p = format.precision();
  const int emax = format.max_exponent();
  const int emin = format.min_exponent();

  const int e = std::ilogb(x); // floor(log2 |x|), exact for finite x
  double rounded;
  if (e < emin) {
    // Subnormal range: fixed quantum 2^(emin - p + 1).
    rounded = round_to_quantum(x, emin - p + 1);
  } else {
    // Normal range: quantum is one ULP, 2^(e - p + 1). Rounding can bump
    // the exponent (e.g. 1.111..1 -> 10.0), which the overflow check below
    // picks up because it looks at the rounded value.
    rounded = round_to_quantum(x, e - p + 1);
  }

  if (saturating) {
    const double maxv = float_max_value(format);
    if (std::abs(rounded) > maxv) return std::copysign(maxv, x);
    return rounded;
  }
  // Overflow: values that round to or beyond 2^(emax+1) - for IEEE round to
  // nearest even, anything >= (2 - 2^-p) * 2^emax becomes infinity.
  const double threshold =
      std::ldexp(2.0 - std::ldexp(1.0, -p), emax); // halfway to 2^(emax+1)
  if (std::abs(rounded) >= threshold)
    return std::copysign(HUGE_VAL, x);
  if (std::abs(rounded) > float_max_value(format))
    return std::copysign(float_max_value(format), x);
  return rounded;
}

double float_max_value(const NumericFormat& f) {
  LUIS_ASSERT(f.is_float(), "float_max_value requires a float format");
  // FiniteOnly spends its all-ones (exp, mantissa) pattern on NaN, so the
  // top binade stops one ULP early: (2 - 2^(2-p)) * 2^E (448 for E4M3).
  const int top = f.encoding() == FloatEncoding::FiniteOnly ? 2 : 1;
  return std::ldexp(2.0 - std::ldexp(1.0, top - f.precision()),
                    f.max_exponent());
}

double float_min_normal(const NumericFormat& f) {
  LUIS_ASSERT(f.is_float(), "float_min_normal requires a float format");
  return std::ldexp(1.0, f.min_exponent());
}

double float_min_subnormal(const NumericFormat& f) {
  LUIS_ASSERT(f.is_float(), "float_min_subnormal requires a float format");
  return std::ldexp(1.0, f.min_exponent() - f.precision() + 1);
}

double soft_add(const NumericFormat& f, double a, double b) {
  return round_to_format(f, a + b);
}
double soft_sub(const NumericFormat& f, double a, double b) {
  return round_to_format(f, a - b);
}
double soft_mul(const NumericFormat& f, double a, double b) {
  return round_to_format(f, a * b);
}
double soft_div(const NumericFormat& f, double a, double b) {
  return round_to_format(f, a / b);
}
double soft_rem(const NumericFormat& f, double a, double b) {
  return round_to_format(f, std::fmod(a, b));
}

} // namespace luis::numrep
