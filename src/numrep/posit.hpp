// Posit (type III unum) arithmetic, parameterized by width and es.
//
// Implements the encoding of Gustafson & Yonemoto ("Beating floating point
// at its own game", 2017): sign bit, run-length-encoded regime, up to `es`
// exponent bits, and the remaining bits of fraction. Encoding rounds to the
// nearest posit (ties to even bit pattern) and saturates at +-maxpos /
// +-minpos: posits never overflow to infinity or underflow to zero.
//
// Supported widths: 3..32 bits, es 0..4 — this covers posit8_0, posit16_1
// and posit32_2, the configurations with adoption roadmaps cited by the
// paper.
#pragma once

#include <cstdint>

#include "numrep/formats.hpp"

namespace luis::numrep {

/// Decoded field view of a posit bit pattern, used by the IEBW metric
/// (Definition 5 of the paper).
struct PositFields {
  bool is_zero = false;
  bool is_nar = false; ///< Not a Real (the posit NaN/inf pattern)
  bool negative = false;
  int regime = 0;        ///< k
  int exponent = 0;      ///< e, 0 <= e < 2^es
  int fraction_bits = 0; ///< n_f: number of fraction bits physically present
  std::uint64_t fraction = 0; ///< fraction field value (n_f bits)
};

class Posit {
public:
  Posit() = default;
  Posit(NumericFormat format, std::uint32_t bits);

  /// Rounds `x` to the nearest posit of the given configuration.
  static Posit from_double(const NumericFormat& format, double x);

  const NumericFormat& format() const { return format_; }
  std::uint32_t bits() const { return bits_; }

  double to_double() const;
  PositFields fields() const;

  bool is_zero() const { return bits_ == 0; }
  bool is_nar() const;

  friend Posit operator+(const Posit& a, const Posit& b);
  friend Posit operator-(const Posit& a, const Posit& b);
  friend Posit operator*(const Posit& a, const Posit& b);
  friend Posit operator/(const Posit& a, const Posit& b);
  Posit negate() const;

private:
  NumericFormat format_ = kPosit32;
  std::uint32_t bits_ = 0;
};

/// Largest finite posit value: 2^((w-2) * 2^es).
double posit_max_value(const NumericFormat& format);
/// Smallest positive posit value: 2^(-(w-2) * 2^es).
double posit_min_value(const NumericFormat& format);

/// Round-trip quantization used by the IR interpreter.
double quantize_posit(const NumericFormat& format, double x);

} // namespace luis::numrep
