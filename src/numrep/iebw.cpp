#include "numrep/iebw.hpp"

#include <algorithm>
#include <cmath>

#include "numrep/posit.hpp"
#include "numrep/registry.hpp"
#include "numrep/soft_float.hpp"
#include "support/diag.hpp"

namespace luis::numrep {

int iebw_float(const NumericFormat& format, double x) {
  LUIS_ASSERT(format.is_float(), "iebw_float requires a float format");
  LUIS_ASSERT(x != 0.0 && std::isfinite(x), "IEBW is undefined for 0/inf/NaN");
  const int E = format.max_exponent();
  const int p = format.precision();
  const double mag = std::abs(x);
  // e_v clamps at BOTH ends: at E above (saturation freezes the exponent)
  // and at emin below — subnormals all share the fixed lattice step
  // 2^(emin - p + 1), so letting e_v follow ilogb below emin would claim
  // resolution the format does not have (exhaustively checked against the
  // enumerated FP8 value sets in format_exhaustive_test).
  const int e_v = std::clamp(std::ilogb(mag), format.min_exponent(), E);
  // p_hat marks the subnormal range, where the hidden bit is lost. The
  // normal/subnormal boundary is the encoding-dependent 2^emin.
  const int p_hat = mag <= std::ldexp(1.0, format.min_exponent()) ? 1 : 0;
  return p - p_hat - e_v;
}

int iebw_fixed(int frac_bits) { return frac_bits; }

int iebw_posit(const NumericFormat& format, double x) {
  LUIS_ASSERT(format.is_posit(), "iebw_posit requires a posit format");
  LUIS_ASSERT(x != 0.0 && std::isfinite(x), "IEBW is undefined for 0/inf/NaN");
  const PositFields f = Posit::from_double(format, x).fields();
  LUIS_ASSERT(!f.is_zero && !f.is_nar, "posit rounding produced zero/NaR");
  return f.fraction_bits - ((f.regime << format.es()) + f.exponent);
}

int iebw_of_value(const NumericFormat& format, double x, int frac_bits) {
  return format_ops(format).iebw(ConcreteType{format, frac_bits}, x);
}

namespace {

/// Smallest positive value the format can represent, used to evaluate the
/// metric when a range endpoint collapses onto zero.
double smallest_positive(const NumericFormat& format) {
  return format_ops(format).min_positive(ConcreteType{format, 0});
}

} // namespace

int iebw_of_range(const NumericFormat& format, double lo, double hi,
                  int frac_bits) {
  LUIS_ASSERT(lo <= hi, "invalid range");
  if (format.is_fixed()) return iebw_fixed(frac_bits);
  const double extreme = std::max(std::abs(lo), std::abs(hi));
  const double x = extreme == 0.0 ? smallest_positive(format) : extreme;
  return iebw_of_value(format, x, frac_bits);
}

int iebw_of_range_best_case(const NumericFormat& format, double lo, double hi,
                            int frac_bits, double zero_floor) {
  LUIS_ASSERT(lo <= hi, "invalid range");
  if (format.is_fixed()) return iebw_fixed(frac_bits);
  double x;
  if (lo <= 0.0 && hi >= 0.0) {
    x = std::max(smallest_positive(format), zero_floor);
    // Degenerate case: the floor exceeds the range extreme; stay inside.
    const double extreme = std::max(std::abs(lo), std::abs(hi));
    if (extreme > 0.0 && x > extreme) x = extreme;
  } else {
    x = std::min(std::abs(lo), std::abs(hi));
  }
  return iebw_of_value(format, x, frac_bits);
}

int fixed_point_max_frac(int width, bool is_signed, double lo, double hi) {
  LUIS_ASSERT(lo <= hi, "invalid range");
  LUIS_ASSERT(width >= 2 && width <= 64, "fixed width must be in [2, 64]");
  const int magnitude_bits = is_signed ? width - 1 : width;
  const double max_mag = std::max(std::abs(lo), std::abs(hi));
  if (max_mag == 0.0) return width - 1; // everything can be fractional
  const double raw_limit =
      magnitude_bits >= 63 ? std::ldexp(1.0, magnitude_bits)
                           : static_cast<double>((std::int64_t{1} << magnitude_bits) - 1);
  // Largest f with max_mag <= raw_limit * 2^-f.
  const int f = static_cast<int>(std::floor(std::log2(raw_limit / max_mag)));
  return std::min(f, width - 1);
}

} // namespace luis::numrep
