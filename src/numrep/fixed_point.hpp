// Run-time parameterized fixed point arithmetic.
//
// A FixedSpec is a concrete fixed point layout: total width w (2..64 bits),
// signedness, and fractional bit count f. Values are stored as raw two's
// complement integers scaled by 2^-f. Arithmetic saturates on overflow
// (matching the behaviour of TAFFO's generated code) and rounds to nearest
// with ties away from zero on precision loss, which is what LLVM emits for
// float-to-fixed conversion sequences.
#pragma once

#include <cstdint>
#include <string>

#include "numrep/formats.hpp"

namespace luis::numrep {

struct FixedSpec {
  int width = 32;
  int frac = 16;
  bool is_signed = true;

  static FixedSpec from(const ConcreteType& type) {
    return FixedSpec{type.format.width(), type.frac_bits, type.format.is_signed()};
  }

  /// Largest representable value.
  double max_value() const;
  /// Smallest representable value (negative for signed, 0 for unsigned).
  double min_value() const;
  /// Value of one unit in the last place: 2^-frac.
  double resolution() const;

  std::string name() const;
  friend bool operator==(const FixedSpec&, const FixedSpec&) = default;
};

/// A fixed point value: raw integer plus its layout.
class FixedValue {
public:
  FixedValue() = default;
  FixedValue(FixedSpec spec, std::int64_t raw) : spec_(spec), raw_(raw) {}

  /// Quantizes `x` into `spec` (round to nearest, saturating).
  static FixedValue from_double(FixedSpec spec, double x);

  const FixedSpec& spec() const { return spec_; }
  std::int64_t raw() const { return raw_; }
  double to_double() const;

  /// Reinterprets this value in a different layout (the "shift cast" of the
  /// paper's C_fix term when widths match, a full cast otherwise).
  FixedValue cast_to(FixedSpec target) const;

  friend FixedValue operator+(const FixedValue& a, const FixedValue& b);
  friend FixedValue operator-(const FixedValue& a, const FixedValue& b);
  friend FixedValue operator*(const FixedValue& a, const FixedValue& b);
  friend FixedValue operator/(const FixedValue& a, const FixedValue& b);
  /// Remainder with the sign of the dividend, like LLVM frem.
  friend FixedValue fixed_rem(const FixedValue& a, const FixedValue& b);
  FixedValue negate() const;

private:
  FixedSpec spec_{};
  std::int64_t raw_ = 0;
};

/// Round-to-nearest quantization of `x` onto the grid of `spec`, saturating
/// at the representable range. This is the single entry point the IR
/// interpreter uses to model fixed point rounding.
double quantize_fixed(const FixedSpec& spec, double x);

// --- Mixed-format arithmetic ---
//
// What TAFFO-generated fixed point code actually computes: operands keep
// their own Q formats and the operation produces `out` directly. Additive
// operations realign both operands to `out` first (shift casts); the
// multiplicative ones fold the realignment into the product/quotient
// rescale. All results round to nearest and saturate at `out`'s range.

FixedValue fixed_add_mixed(const FixedValue& a, const FixedValue& b,
                           const FixedSpec& out);
FixedValue fixed_sub_mixed(const FixedValue& a, const FixedValue& b,
                           const FixedSpec& out);
/// (a_raw * b_raw) >> (fa + fb - f_out), rounded and saturated.
FixedValue fixed_mul_mixed(const FixedValue& a, const FixedValue& b,
                           const FixedSpec& out);
/// (a_raw << (f_out + fb - fa)) / b_raw, rounded and saturated.
FixedValue fixed_div_mixed(const FixedValue& a, const FixedValue& b,
                           const FixedSpec& out);

} // namespace luis::numrep
