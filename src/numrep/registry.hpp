// The pluggable format registry (ROADMAP item 1).
//
// A NumericFormat is pure data; the behavior of its class lives in a
// FormatClassOps policy vtable registered here. Registering a class plus a
// catalog entry is all it takes for a representation system to flow through
// the whole pipeline: the quantize entry point and the VM's op x format
// kernel table bind through ops.quantize, IEBW (and with it the ILP's Err
// term and `luis check`'s certified bounds) through ops.iebw/min_positive/
// max_value, candidate-type filtering through ops.feasible, platform
// pricing through ops.cost_class, the name parser through the catalog and
// parser hooks, and the fuzz palettes through formats() + ops.executable.
//
// The built-in classes (fixed point, floating point with Ieee/FiniteOnly/
// Fnuz encodings, posit, fixed-posit) are registered on first use; the
// Ext0..Ext3 FormatClass slots are free for run-time registration
// (register_class), which is how the pluggability tests prove the axis is
// actually open.
//
// Thread safety: instance() is safe to call concurrently (the built-ins
// are installed under a function-local static); the register_* mutators
// are not synchronized and must run before the registry is shared across
// threads (in practice: at startup, or in single-threaded tests).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "numrep/formats.hpp"

namespace luis::numrep {

/// Per-class policy vtable. Function pointers (not std::function) so a
/// policy is trivially copyable and registrations cannot capture state
/// that outlives the registry. Value-level entry points take a
/// ConcreteType because fixed point behavior depends on the per-variable
/// fractional bit count.
struct FormatClassOps {
  /// Human label for reports ("fixed point", "floating point", ...).
  const char* class_label = "";

  /// Canonical spelling; must round-trip through parse_format.
  std::string (*name)(const NumericFormat&) = nullptr;

  /// Round `x` into the type (the single rounding step every kernel and
  /// the reference interpreter share — bit-identity depends on it).
  double (*quantize)(const ConcreteType&, double x) = nullptr;

  /// Pointwise IEBW (Definition 1 of the paper). `x` nonzero and finite.
  int (*iebw)(const ConcreteType&, double x) = nullptr;

  /// Largest finite representable magnitude.
  double (*max_value)(const ConcreteType&) = nullptr;

  /// Smallest positive representable magnitude.
  double (*min_positive)(const ConcreteType&) = nullptr;

  /// True if quantize/arith kernels can execute this format (e.g. false
  /// for the binary128/binary256 descriptors of Table I).
  bool (*executable)(const NumericFormat&) = nullptr;

  /// ILP candidate filter: can the format hold every value of [lo, hi]?
  bool (*feasible)(const NumericFormat&, double lo, double hi) = nullptr;

  /// Platform cost class keying the op-time tables ("fix", "float",
  /// "double", "half", "bfloat16", "fp8", "posit", "fposit").
  std::string (*cost_class)(const NumericFormat&) = nullptr;

  /// Overflow behavior: true = values beyond max_value saturate to it;
  /// false = they overflow to +-infinity (Ieee floats).
  bool (*saturates)(const NumericFormat&) = nullptr;

  /// Posit-style underflow: nonzero values below min_positive round to
  /// +-min_positive, never to zero.
  bool (*never_underflows)(const NumericFormat&) = nullptr;

  /// True when 2^-IEBW already bounds the worst rounding error (floats,
  /// Definition 3); false when it is the lattice step, of which rounding
  /// incurs at most half (fixed point, posits).
  bool (*eps_is_half_step)(const NumericFormat&) = nullptr;

  // --- Bit-level codec (exhaustive <=8-bit correctness proofs). ---
  // Null/absent for value-only formats. The contract the exhaustive suite
  // enforces: decode is total over the 2^w patterns (NaN patterns decode
  // to NaN), encode(decode(bits)) == bits for every non-NaN pattern, and
  // decoded values are monotone in ordering_key.

  /// True if encode/decode cover this format (typically width <= 16).
  bool (*encodable)(const NumericFormat&) = nullptr;
  /// Exact encoding of a representable value (quantize first otherwise).
  std::uint64_t (*encode)(const ConcreteType&, double x) = nullptr;
  /// Value of a bit pattern (only the low width() bits are read).
  double (*decode)(const ConcreteType&, std::uint64_t bits) = nullptr;
  /// Total-order rank of an encoding; decoded values are monotone in it.
  std::int64_t (*ordering_key)(const ConcreteType&, std::uint64_t bits) = nullptr;
};

class FormatRegistry {
public:
  /// The process-wide registry, with the built-in classes and catalog
  /// installed.
  static FormatRegistry& instance();

  /// Policy for a class. Fatal if the class has not been registered.
  const FormatClassOps& ops(FormatClass cls) const;
  bool has_class(FormatClass cls) const;

  /// Installs (or replaces) the policy for `cls`. Extension classes use
  /// the Ext0..Ext3 slots; replacing a built-in is allowed but on your
  /// head be it.
  void register_class(FormatClass cls, const FormatClassOps& ops);

  /// Adds a format to the catalog: it becomes a standard_formats() member
  /// (hence an ILP candidate for the Multi preset, a fuzz palette member,
  /// and a parse_format name). Its class must already be registered.
  /// No-op if an equal format is already cataloged.
  void add_format(const NumericFormat& fmt);

  /// A parametric spelling hook. Returns true and fills `out` on a match;
  /// returns false with a non-empty `error` for a recognized-but-malformed
  /// spelling (e.g. "posit99_1"); returns false with `error` untouched
  /// when the spelling is not this parser's.
  using ParserFn = bool (*)(std::string_view name, NumericFormat* out,
                            std::string* error);
  void add_parser(ParserFn parser);

  /// The catalog, in registration order. Invalidated by add_format.
  std::span<const NumericFormat> formats() const;

  /// Name lookup: catalog names and aliases first, then parametric
  /// parsers. On failure, a diagnostic is stored in `error` if non-null.
  std::optional<NumericFormat> parse(std::string_view name,
                                     std::string* error = nullptr) const;

private:
  FormatRegistry() = default;

  FormatClassOps ops_[kNumFormatClasses] = {};
  bool registered_[kNumFormatClasses] = {};
  std::vector<NumericFormat> catalog_;
  std::vector<ParserFn> parsers_;
};

/// Policy of a format's class (shorthand for the common lookup).
inline const FormatClassOps& format_ops(const NumericFormat& fmt) {
  return FormatRegistry::instance().ops(fmt.format_class());
}
inline const FormatClassOps& format_ops(const ConcreteType& type) {
  return FormatRegistry::instance().ops(type.format.format_class());
}

} // namespace luis::numrep
