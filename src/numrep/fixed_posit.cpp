#include "numrep/fixed_posit.hpp"

#include <cmath>

#include "support/diag.hpp"

namespace luis::numrep {
namespace {

struct Geometry {
  int width, es, rs, frac;
  int scale_min, scale_max; ///< k_min * 2^es, k_max * 2^es + 2^es - 1
  std::int64_t body_max;    ///< 2^(w-1) - 1
};

Geometry geometry(const NumericFormat& f) {
  LUIS_ASSERT(is_executable_fixed_posit(f), "unsupported fixed-posit geometry");
  Geometry g;
  g.width = f.width();
  g.es = f.es();
  g.rs = f.regime_bits();
  g.frac = g.width - 1 - g.rs - g.es;
  const int k_min = -(1 << (g.rs - 1));
  const int k_max = (1 << (g.rs - 1)) - 1;
  g.scale_min = k_min << g.es;
  g.scale_max = (k_max << g.es) + (1 << g.es) - 1;
  g.body_max = (std::int64_t{1} << (g.width - 1)) - 1;
  return g;
}

/// Magnitude of a body index in [1, body_max]: (1 + f/2^F) * 2^scale with
/// scale = (body >> F) + scale_min.
double body_value(const Geometry& g, std::int64_t body) {
  const std::int64_t f = body & ((std::int64_t{1} << g.frac) - 1);
  const int scale = static_cast<int>(body >> g.frac) + g.scale_min;
  return std::ldexp(1.0 + std::ldexp(static_cast<double>(f), -g.frac), scale);
}

} // namespace

bool is_executable_fixed_posit(const NumericFormat& f) {
  return f.is_fixed_posit() && f.width() >= 3 && f.width() <= 32 &&
         f.es() >= 0 && f.es() <= 4 && f.regime_bits() >= 1 &&
         f.regime_bits() <= 8 && f.width() - 1 - f.regime_bits() - f.es() >= 0;
}

double fixed_posit_max_value(const NumericFormat& f) {
  const Geometry g = geometry(f);
  return body_value(g, g.body_max);
}

double fixed_posit_min_value(const NumericFormat& f) {
  const Geometry g = geometry(f);
  return body_value(g, 1);
}

double quantize_fixed_posit(const NumericFormat& f, double x) {
  const Geometry g = geometry(f);
  if (std::isnan(x)) return std::nan("");
  if (x == 0.0) return 0.0;

  const double mag = std::abs(x);
  const double sign = x < 0.0 ? -1.0 : 1.0;
  const double minpos = body_value(g, 1);
  const double maxpos = body_value(g, g.body_max);
  // Posit-style saturation: no infinities, and nonzero magnitudes never
  // round to zero. The half-way points toward the clamps still round
  // normally, so only the outer halves saturate.
  if (mag >= maxpos) return sign * maxpos;
  if (mag <= minpos) return sign * minpos;

  // mag sits strictly inside the ladder; locate its binade and round the
  // body index to nearest, ties to even. raw = mag / 2^(scale - F) lies in
  // [2^F, 2^(F+1)) and body = (S - 1) * 2^F + raw with S = scale -
  // scale_min; both scalings are exact in binary64, so the tie test is
  // exact too.
  const int scale = std::ilogb(mag);
  const std::int64_t S = scale - g.scale_min; // in [0, 2^(rs+es))
  const double raw = std::ldexp(mag, g.frac - scale);
  const double raw_floor = std::floor(raw);
  const double delta = raw - raw_floor;
  std::int64_t body = ((S - 1) << g.frac) + static_cast<std::int64_t>(raw_floor);
  if (delta > 0.5 || (delta == 0.5 && (body & 1)))
    ++body; // round up; a full carry into the next binade is just body+1
  // The clamps above keep body in range, but the rounding step may land on
  // them exactly.
  if (body < 1) body = 1;
  if (body > g.body_max) body = g.body_max;
  return sign * body_value(g, body);
}

int iebw_fixed_posit(const NumericFormat& f, double x) {
  LUIS_ASSERT(x != 0.0 && std::isfinite(x), "IEBW is undefined for 0/inf/NaN");
  const Geometry g = geometry(f);
  const double q = quantize_fixed_posit(f, x);
  // eps at q is the local step 2^(scale - F); IEBW = -(scale - F).
  const int scale = std::ilogb(std::abs(q));
  return g.frac - scale;
}

double fixed_posit_decode(const NumericFormat& f, std::uint64_t bits) {
  const Geometry g = geometry(f);
  const std::uint64_t mask = (std::uint64_t{1} << g.width) - 1;
  bits &= mask;
  if (bits == 0) return 0.0;
  const std::uint64_t nar = std::uint64_t{1} << (g.width - 1);
  if (bits == nar) return std::nan("");
  if (bits & nar) // negative: two's complement of the whole word
    return -body_value(g, static_cast<std::int64_t>((~bits + 1) & mask));
  return body_value(g, static_cast<std::int64_t>(bits));
}

std::uint64_t fixed_posit_encode(const NumericFormat& f, double x) {
  const Geometry g = geometry(f);
  const std::uint64_t mask = (std::uint64_t{1} << g.width) - 1;
  if (std::isnan(x)) return std::uint64_t{1} << (g.width - 1);
  if (x == 0.0) return 0;
  const double mag = std::abs(x);
  const int scale = std::ilogb(mag);
  const double raw = std::ldexp(mag, g.frac - scale);
  const std::int64_t S = scale - g.scale_min;
  const std::int64_t body =
      ((S - 1) << g.frac) + static_cast<std::int64_t>(raw);
  LUIS_ASSERT(raw == std::floor(raw) && body >= 1 && body <= g.body_max,
              "value is not representable in this fixed-posit");
  const auto ubody = static_cast<std::uint64_t>(body);
  return x < 0.0 ? (~ubody + 1) & mask : ubody;
}

std::int64_t fixed_posit_ordering_key(const NumericFormat& f,
                                      std::uint64_t bits) {
  const int w = f.width();
  bits &= (std::uint64_t{1} << w) - 1;
  const std::uint64_t sign = std::uint64_t{1} << (w - 1);
  return static_cast<std::int64_t>(bits) - ((bits & sign) ? (std::int64_t{1} << w) : 0);
}

} // namespace luis::numrep
