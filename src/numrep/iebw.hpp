// The Integer Equivalent Bit Width (IEBW) metric — Section III of the paper.
//
// IEBW makes the precision of heterogeneous number representations
// comparable by expressing each one as "the number of fractional bits a
// fixed point representation would need to match it":
//
//   Definition 1:  IEBW_R(x) = -floor(log2 eps), where eps is the smallest
//                  perturbation that changes the representation of x.
//   Definition 2:  IEBW_R(v) for a variable with range [l, u] lifts the
//                  pointwise metric to the interval.
//   Definition 3:  floating point (p, E): IEBW = p - p_hat - e_v with
//                  e_v = min(floor(log2 |x|), E) and p_hat = 1 in the
//                  subnormal range.
//   Definition 4:  fixed point with f fractional bits: IEBW = f.
//   Definition 5:  posit(w, es): IEBW = n_f - (2^es * k + e).
//
// For Definition 2 the paper writes max over the interval. The literal max
// is unbounded for float formats on ranges containing zero (resolution
// improves without bound as |x| -> 0), which would degenerate the ILP
// objective, so the allocator uses the *guaranteed* precision over the
// range: the IEBW evaluated at the magnitude extreme (the worst case).
// This matches how fix-max is derived for fixed point and is exposed here
// as iebw_of_range; the literal best-case value is also available for
// reporting. The deviation is documented in DESIGN.md.
#pragma once

#include "numrep/formats.hpp"

namespace luis::numrep {

/// Definition 3. `x` must be nonzero and finite.
int iebw_float(const NumericFormat& format, double x);

/// Definition 4: a fixed point value's IEBW is its fractional bit count.
int iebw_fixed(int frac_bits);

/// Definition 5. `x` must be nonzero; it is first rounded into the posit.
int iebw_posit(const NumericFormat& format, double x);

/// Pointwise IEBW for any representation. For fixed point formats the
/// fractional bit count must be supplied via `frac_bits`.
int iebw_of_value(const NumericFormat& format, double x, int frac_bits = 0);

/// Definition 2 (guaranteed-precision reading): IEBW of a variable with
/// range [lo, hi], evaluated at the magnitude extreme. For ranges that
/// are identically zero, returns the IEBW at the smallest positive value
/// of the format (any representation stores 0 exactly).
int iebw_of_range(const NumericFormat& format, double lo, double hi,
                  int frac_bits = 0);

/// The literal Definition 2 (max over the interval): the IEBW at the
/// smallest-magnitude nonzero point of the range, clamped at the format's
/// smallest positive value when the range straddles zero.
///
/// `zero_floor` bounds how far below zero-straddling ranges the evaluation
/// point may go: magnitudes smaller than the floor are treated as noise
/// below the data's own resolution (0 keeps the format's full subnormal
/// reach). The tuner exposes this as TuningConfig::err_zero_floor.
int iebw_of_range_best_case(const NumericFormat& format, double lo, double hi,
                            int frac_bits = 0, double zero_floor = 0.0);

/// fix-max(v, f) from Section IV-A: the maximum number of fractional bits a
/// fixed point format of width `width` can assign to a variable with range
/// [lo, hi] without overflow. Returns a negative number when even zero
/// fractional bits overflow (the type is infeasible for this variable).
int fixed_point_max_frac(int width, bool is_signed, double lo, double hi);

} // namespace luis::numrep
