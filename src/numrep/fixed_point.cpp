#include "numrep/fixed_point.hpp"

#include <cmath>

#include "support/diag.hpp"
#include "support/string_utils.hpp"

namespace luis::numrep {
namespace {

std::int64_t raw_max(const FixedSpec& s) {
  const int magnitude_bits = s.is_signed ? s.width - 1 : s.width;
  if (magnitude_bits >= 63) return INT64_MAX;
  return (std::int64_t{1} << magnitude_bits) - 1;
}

std::int64_t raw_min(const FixedSpec& s) {
  if (!s.is_signed) return 0;
  if (s.width - 1 >= 63) return INT64_MIN;
  return -(std::int64_t{1} << (s.width - 1));
}

std::int64_t saturate(const FixedSpec& s, __int128 raw) {
  const std::int64_t hi = raw_max(s);
  const std::int64_t lo = raw_min(s);
  if (raw > hi) return hi;
  if (raw < lo) return lo;
  return static_cast<std::int64_t>(raw);
}

/// Arithmetic shift right by `n` with round-to-nearest, ties away from zero.
__int128 shift_right_rounded(__int128 v, int n) {
  if (n <= 0) return v << -n;
  if (n > 126) return 0;
  const __int128 half = __int128{1} << (n - 1);
  if (v >= 0) return (v + half) >> n;
  return -((-v + half) >> n);
}

void check_spec(const FixedSpec& s) {
  LUIS_ASSERT(s.width >= 2 && s.width <= 64, "fixed width must be in [2, 64]");
  LUIS_ASSERT(s.frac >= 0 && s.frac < s.width, "frac bits must be in [0, width)");
}

} // namespace

double FixedSpec::max_value() const {
  return static_cast<double>(raw_max(*this)) * resolution();
}

double FixedSpec::min_value() const {
  return static_cast<double>(raw_min(*this)) * resolution();
}

double FixedSpec::resolution() const { return std::ldexp(1.0, -frac); }

std::string FixedSpec::name() const {
  return format_string("%sfix%d.%d", is_signed ? "" : "u", width, frac);
}

FixedValue FixedValue::from_double(FixedSpec spec, double x) {
  check_spec(spec);
  if (std::isnan(x)) return FixedValue{spec, 0};
  const double scaled = std::ldexp(x, spec.frac);
  // Saturate on overflow, including +-inf inputs.
  if (scaled >= static_cast<double>(raw_max(spec)))
    return FixedValue{spec, raw_max(spec)};
  if (scaled <= static_cast<double>(raw_min(spec)))
    return FixedValue{spec, raw_min(spec)};
  return FixedValue{spec, static_cast<std::int64_t>(std::llround(scaled))};
}

double FixedValue::to_double() const {
  return std::ldexp(static_cast<double>(raw_), -spec_.frac);
}

FixedValue FixedValue::cast_to(FixedSpec target) const {
  check_spec(target);
  const __int128 shifted =
      shift_right_rounded(static_cast<__int128>(raw_), spec_.frac - target.frac);
  return FixedValue{target, saturate(target, shifted)};
}

FixedValue operator+(const FixedValue& a, const FixedValue& b) {
  LUIS_ASSERT(a.spec() == b.spec(), "fixed add requires matching layouts");
  const __int128 sum = static_cast<__int128>(a.raw()) + b.raw();
  return FixedValue{a.spec(), saturate(a.spec(), sum)};
}

FixedValue operator-(const FixedValue& a, const FixedValue& b) {
  LUIS_ASSERT(a.spec() == b.spec(), "fixed sub requires matching layouts");
  const __int128 diff = static_cast<__int128>(a.raw()) - b.raw();
  return FixedValue{a.spec(), saturate(a.spec(), diff)};
}

FixedValue operator*(const FixedValue& a, const FixedValue& b) {
  LUIS_ASSERT(a.spec() == b.spec(), "fixed mul requires matching layouts");
  const __int128 prod = static_cast<__int128>(a.raw()) * b.raw();
  const __int128 rescaled = shift_right_rounded(prod, a.spec().frac);
  return FixedValue{a.spec(), saturate(a.spec(), rescaled)};
}

FixedValue operator/(const FixedValue& a, const FixedValue& b) {
  LUIS_ASSERT(a.spec() == b.spec(), "fixed div requires matching layouts");
  if (b.raw() == 0) {
    // Saturate like a hardware divider with exception masking.
    return FixedValue{a.spec(), a.raw() >= 0 ? raw_max(a.spec()) : raw_min(a.spec())};
  }
  const __int128 scaled = static_cast<__int128>(a.raw()) << a.spec().frac;
  // Round-to-nearest (ties away from zero) division on magnitudes.
  const bool negative = (scaled < 0) != (b.raw() < 0);
  const unsigned __int128 n = scaled < 0 ? static_cast<unsigned __int128>(-scaled)
                                         : static_cast<unsigned __int128>(scaled);
  const unsigned __int128 d = b.raw() < 0 ? static_cast<unsigned __int128>(-static_cast<__int128>(b.raw()))
                                          : static_cast<unsigned __int128>(b.raw());
  const unsigned __int128 q = (n + d / 2) / d;
  const __int128 signed_q = negative ? -static_cast<__int128>(q) : static_cast<__int128>(q);
  return FixedValue{a.spec(), saturate(a.spec(), signed_q)};
}

FixedValue fixed_rem(const FixedValue& a, const FixedValue& b) {
  LUIS_ASSERT(a.spec() == b.spec(), "fixed rem requires matching layouts");
  if (b.raw() == 0) return FixedValue{a.spec(), 0};
  return FixedValue{a.spec(), a.raw() % b.raw()};
}

FixedValue FixedValue::negate() const {
  return FixedValue{spec_, saturate(spec_, -static_cast<__int128>(raw_))};
}

double quantize_fixed(const FixedSpec& spec, double x) {
  return FixedValue::from_double(spec, x).to_double();
}

FixedValue fixed_add_mixed(const FixedValue& a, const FixedValue& b,
                           const FixedSpec& out) {
  check_spec(out);
  const __int128 ar =
      shift_right_rounded(static_cast<__int128>(a.raw()), a.spec().frac - out.frac);
  const __int128 br =
      shift_right_rounded(static_cast<__int128>(b.raw()), b.spec().frac - out.frac);
  return FixedValue{out, saturate(out, ar + br)};
}

FixedValue fixed_sub_mixed(const FixedValue& a, const FixedValue& b,
                           const FixedSpec& out) {
  check_spec(out);
  const __int128 ar =
      shift_right_rounded(static_cast<__int128>(a.raw()), a.spec().frac - out.frac);
  const __int128 br =
      shift_right_rounded(static_cast<__int128>(b.raw()), b.spec().frac - out.frac);
  return FixedValue{out, saturate(out, ar - br)};
}

FixedValue fixed_mul_mixed(const FixedValue& a, const FixedValue& b,
                           const FixedSpec& out) {
  check_spec(out);
  const __int128 prod = static_cast<__int128>(a.raw()) * b.raw();
  const int shift = a.spec().frac + b.spec().frac - out.frac;
  return FixedValue{out, saturate(out, shift_right_rounded(prod, shift))};
}

FixedValue fixed_div_mixed(const FixedValue& a, const FixedValue& b,
                           const FixedSpec& out) {
  check_spec(out);
  if (b.raw() == 0) {
    return FixedValue{out, a.raw() >= 0 ? raw_max(out) : raw_min(out)};
  }
  // Scale the dividend so the quotient lands on out's grid:
  // (a / 2^fa) / (b / 2^fb) * 2^fout = a * 2^(fout + fb - fa) / b.
  const int shift = out.frac + b.spec().frac - a.spec().frac;
  __int128 num = static_cast<__int128>(a.raw());
  if (shift >= 0) {
    if (shift > 100) return FixedValue{out, num >= 0 ? raw_max(out) : raw_min(out)};
    num <<= shift;
  } else {
    num = shift_right_rounded(num, -shift);
  }
  const bool negative = (num < 0) != (b.raw() < 0);
  const unsigned __int128 n = num < 0 ? static_cast<unsigned __int128>(-num)
                                      : static_cast<unsigned __int128>(num);
  const unsigned __int128 d =
      b.raw() < 0 ? static_cast<unsigned __int128>(-static_cast<__int128>(b.raw()))
                  : static_cast<unsigned __int128>(b.raw());
  const unsigned __int128 q = (n + d / 2) / d;
  const __int128 signed_q =
      negative ? -static_cast<__int128>(q) : static_cast<__int128>(q);
  return FixedValue{out, saturate(out, signed_q)};
}

} // namespace luis::numrep
