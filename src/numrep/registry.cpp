#include "numrep/registry.hpp"

#include <array>
#include <cmath>

#include "numrep/fixed_point.hpp"
#include "numrep/fixed_posit.hpp"
#include "numrep/iebw.hpp"
#include "numrep/minifloat.hpp"
#include "numrep/posit.hpp"
#include "numrep/soft_float.hpp"
#include "support/diag.hpp"
#include "support/string_utils.hpp"

namespace luis::numrep {
namespace {

// ---------------------------------------------------------------------------
// Fixed point policy
// ---------------------------------------------------------------------------

std::string fixed_name(const NumericFormat& f) {
  return format_string("%sfix%d", f.is_signed() ? "" : "u", f.width());
}
double fixed_quantize_fn(const ConcreteType& t, double x) {
  return quantize_fixed(FixedSpec::from(t), x);
}
int fixed_iebw_fn(const ConcreteType& t, double) { return iebw_fixed(t.frac_bits); }
double fixed_max_fn(const ConcreteType& t) {
  return FixedSpec::from(t).max_value();
}
double fixed_minpos_fn(const ConcreteType& t) {
  return FixedSpec::from(t).resolution();
}
bool fixed_exec(const NumericFormat& f) {
  return f.width() >= 2 && f.width() <= 64;
}
bool fixed_feasible(const NumericFormat& f, double lo, double hi) {
  return fixed_point_max_frac(f.width(), f.is_signed(), lo, hi) >= 0;
}
std::string fixed_cost(const NumericFormat&) { return "fix"; }
bool always_true(const NumericFormat&) { return true; }
bool always_false(const NumericFormat&) { return false; }
bool fixed_encodable(const NumericFormat& f) {
  return fixed_exec(f) && f.width() <= 16;
}
std::uint64_t fixed_encode_fn(const ConcreteType& t, double x) {
  const FixedValue v = FixedValue::from_double(FixedSpec::from(t), x);
  LUIS_ASSERT(v.to_double() == x, "value is not representable in this fixed type");
  const std::uint64_t mask = (std::uint64_t{1} << t.format.width()) - 1;
  return static_cast<std::uint64_t>(v.raw()) & mask;
}
std::int64_t fixed_raw_of_bits(const ConcreteType& t, std::uint64_t bits) {
  const int w = t.format.width();
  bits &= (std::uint64_t{1} << w) - 1;
  if (t.format.is_signed() && (bits >> (w - 1)))
    return static_cast<std::int64_t>(bits) - (std::int64_t{1} << w);
  return static_cast<std::int64_t>(bits);
}
double fixed_decode_fn(const ConcreteType& t, std::uint64_t bits) {
  return FixedValue(FixedSpec::from(t), fixed_raw_of_bits(t, bits)).to_double();
}
std::int64_t fixed_order_fn(const ConcreteType& t, std::uint64_t bits) {
  return fixed_raw_of_bits(t, bits);
}

// ---------------------------------------------------------------------------
// Floating point policy (all three encodings)
// ---------------------------------------------------------------------------

std::string float_name(const NumericFormat& f) {
  if (f == kBinary16) return "binary16";
  if (f == kBinary32) return "binary32";
  if (f == kBinary64) return "binary64";
  if (f == kBinary128) return "binary128";
  if (f == kBinary256) return "binary256";
  if (f == kBfloat16) return "bfloat16";
  if (f == kFp8E4M3) return "e4m3";
  if (f == kFp8E5M2) return "e5m2";
  if (f == kFp8E4M3Fnuz) return "e4m3fnuz";
  if (f == kFp8E5M2Fnuz) return "e5m2fnuz";
  const char* suffix = "";
  if (f.encoding() == FloatEncoding::FiniteOnly) suffix = "_finite";
  if (f.encoding() == FloatEncoding::Fnuz) suffix = "_fnuz";
  return format_string("float_p%d_E%d%s", f.precision(), f.max_exponent(),
                       suffix);
}
double float_quantize_fn(const ConcreteType& t, double x) {
  return round_to_format(t.format, x);
}
int float_iebw_fn(const ConcreteType& t, double x) {
  return iebw_float(t.format, x);
}
double float_max_fn(const ConcreteType& t) { return float_max_value(t.format); }
double float_minpos_fn(const ConcreteType& t) {
  return float_min_subnormal(t.format);
}
bool float_feasible(const NumericFormat& f, double lo, double hi) {
  return is_executable_float(f) &&
         std::max(std::abs(lo), std::abs(hi)) <= float_max_value(f);
}
std::string float_cost(const NumericFormat& f) {
  if (f == kBinary64) return "double";
  if (f == kBinary16) return "half";
  if (f == kBfloat16) return "bfloat16";
  if (f.width() <= 8) return "fp8";
  // binary32 and any other narrow float run on the float datapath.
  return "float";
}
bool float_saturates(const NumericFormat& f) {
  return f.encoding() != FloatEncoding::Ieee; // no infinity to overflow to
}
std::uint64_t float_encode_fn(const ConcreteType& t, double x) {
  return minifloat_encode(t.format, x);
}
double float_decode_fn(const ConcreteType& t, std::uint64_t bits) {
  return minifloat_decode(t.format, bits);
}
std::int64_t float_order_fn(const ConcreteType& t, std::uint64_t bits) {
  return minifloat_ordering_key(t.format, bits);
}

// ---------------------------------------------------------------------------
// Posit policy
// ---------------------------------------------------------------------------

std::string posit_name(const NumericFormat& f) {
  return format_string("posit%d_%d", f.width(), f.es());
}
double posit_quantize_fn(const ConcreteType& t, double x) {
  return quantize_posit(t.format, x);
}
int posit_iebw_fn(const ConcreteType& t, double x) {
  return iebw_posit(t.format, x);
}
double posit_max_fn(const ConcreteType& t) { return posit_max_value(t.format); }
double posit_minpos_fn(const ConcreteType& t) {
  return posit_min_value(t.format);
}
bool posit_exec(const NumericFormat& f) {
  return f.width() >= 3 && f.width() <= 32 && f.es() >= 0 && f.es() <= 4;
}
bool posit_feasible(const NumericFormat&, double, double) {
  return true; // posits saturate at maxpos/minpos, never trap or overflow
}
std::string posit_cost(const NumericFormat&) { return "posit"; }
bool posit_encodable(const NumericFormat& f) {
  return posit_exec(f) && f.width() <= 16;
}
std::uint64_t posit_encode_fn(const ConcreteType& t, double x) {
  const Posit p = Posit::from_double(t.format, x);
  LUIS_ASSERT(std::isnan(x) || p.to_double() == x,
              "value is not representable in this posit");
  return p.bits();
}
double posit_decode_fn(const ConcreteType& t, std::uint64_t bits) {
  return Posit(t.format, static_cast<std::uint32_t>(bits)).to_double();
}
std::int64_t posit_order_fn(const ConcreteType& t, std::uint64_t bits) {
  const int w = t.format.width();
  bits &= (std::uint64_t{1} << w) - 1;
  const std::uint64_t sign = std::uint64_t{1} << (w - 1);
  return static_cast<std::int64_t>(bits) -
         ((bits & sign) ? (std::int64_t{1} << w) : 0);
}

// ---------------------------------------------------------------------------
// Fixed-posit policy
// ---------------------------------------------------------------------------

std::string fposit_name(const NumericFormat& f) {
  return format_string("fposit%d_%d_%d", f.width(), f.es(), f.regime_bits());
}
double fposit_quantize_fn(const ConcreteType& t, double x) {
  return quantize_fixed_posit(t.format, x);
}
int fposit_iebw_fn(const ConcreteType& t, double x) {
  return iebw_fixed_posit(t.format, x);
}
double fposit_max_fn(const ConcreteType& t) {
  return fixed_posit_max_value(t.format);
}
double fposit_minpos_fn(const ConcreteType& t) {
  return fixed_posit_min_value(t.format);
}
bool fposit_feasible(const NumericFormat& f, double lo, double hi) {
  // Unlike run-length posits, a fixed regime field covers few binades
  // (fposit8_0_3 reaches only 2^3..2^4-ish magnitudes), so treating
  // saturation as feasibility would assign it to wildly out-of-range
  // data. Require the range to fit, like floats. See docs/FORMATS.md.
  return is_executable_fixed_posit(f) &&
         std::max(std::abs(lo), std::abs(hi)) <= fixed_posit_max_value(f);
}
std::string fposit_cost(const NumericFormat&) { return "fposit"; }
bool fposit_encodable(const NumericFormat& f) {
  return is_executable_fixed_posit(f) && f.width() <= 16;
}
std::uint64_t fposit_encode_fn(const ConcreteType& t, double x) {
  return fixed_posit_encode(t.format, x);
}
double fposit_decode_fn(const ConcreteType& t, std::uint64_t bits) {
  return fixed_posit_decode(t.format, bits);
}
std::int64_t fposit_order_fn(const ConcreteType& t, std::uint64_t bits) {
  return fixed_posit_ordering_key(t.format, bits);
}

// ---------------------------------------------------------------------------
// Parametric name parsers
// ---------------------------------------------------------------------------

/// Parses an unsigned decimal with no sign or leading garbage.
bool parse_uint(std::string_view s, int* out) {
  if (s.empty() || s.size() > 7) return false;
  int v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  *out = v;
  return true;
}

/// Splits "A_B" / "A_B_C" around '_' separators into integer fields.
template <std::size_t N>
bool split_uints(std::string_view s, std::array<int, N>& out) {
  for (std::size_t i = 0; i < N; ++i) {
    const std::size_t sep = s.find('_');
    const bool last = i + 1 == N;
    if (last != (sep == std::string_view::npos)) return false;
    if (!parse_uint(last ? s : s.substr(0, sep), &out[i])) return false;
    if (!last) s = s.substr(sep + 1);
  }
  return true;
}

bool alias_parser(std::string_view name, NumericFormat* out, std::string*) {
  if (name == "float") return *out = kBinary32, true;
  if (name == "double") return *out = kBinary64, true;
  if (name == "half") return *out = kBinary16, true;
  if (name == "fix") return *out = kFixed32, true;
  return false;
}

bool fixed_parser(std::string_view name, NumericFormat* out,
                  std::string* error) {
  const bool is_signed = !starts_with(name, "ufix");
  if (is_signed && !starts_with(name, "fix")) return false;
  int w = 0;
  if (!parse_uint(name.substr(is_signed ? 3 : 4), &w)) return false;
  if (w < 2 || w > 64) {
    if (error)
      *error = format_string("fixed point width must be in [2, 64], got %d", w);
    return false;
  }
  *out = NumericFormat::fixed(w, is_signed);
  return true;
}

bool posit_parser(std::string_view name, NumericFormat* out,
                  std::string* error) {
  if (!starts_with(name, "posit")) return false;
  std::array<int, 2> f{};
  if (!split_uints(name.substr(5), f)) return false;
  const NumericFormat fmt = NumericFormat::posit(f[0], f[1]);
  if (!posit_exec(fmt)) {
    if (error)
      *error = format_string(
          "posit width must be in [3, 32] and es in [0, 4], got posit(%d, %d)",
          f[0], f[1]);
    return false;
  }
  *out = fmt;
  return true;
}

bool fposit_parser(std::string_view name, NumericFormat* out,
                   std::string* error) {
  if (!starts_with(name, "fposit")) return false;
  std::array<int, 3> f{};
  if (!split_uints(name.substr(6), f)) return false;
  const NumericFormat fmt = NumericFormat::fixed_posit(f[0], f[1], f[2]);
  if (!is_executable_fixed_posit(fmt)) {
    if (error)
      *error = format_string(
          "fixed-posit needs width in [3, 32], es in [0, 4], regime bits in "
          "[1, 8] and a nonnegative fraction width; got fposit(%d, %d, %d)",
          f[0], f[1], f[2]);
    return false;
  }
  *out = fmt;
  return true;
}

/// "float_pP_EE" and the shorthand "floatP_E", both with optional
/// "_finite" / "_fnuz" encoding suffixes. The storage width is the
/// smallest layout that fits: 1 + (p - 1) + exponent field bits.
bool minifloat_parser(std::string_view name, NumericFormat* out,
                      std::string* error) {
  if (!starts_with(name, "float")) return false;
  std::string_view rest = name.substr(5);
  if (starts_with(rest, "_p")) rest = rest.substr(2);
  else if (rest.empty() || rest[0] < '0' || rest[0] > '9') return false;

  FloatEncoding encoding = FloatEncoding::Ieee;
  if (rest.ends_with("_finite")) {
    encoding = FloatEncoding::FiniteOnly;
    rest = rest.substr(0, rest.size() - 7);
  } else if (rest.ends_with("_fnuz")) {
    encoding = FloatEncoding::Fnuz;
    rest = rest.substr(0, rest.size() - 5);
  }

  const std::size_t sep = rest.find('_');
  int p = 0, E = 0;
  bool shape_ok = sep != std::string_view::npos &&
                  parse_uint(rest.substr(0, sep), &p) &&
                  parse_uint(starts_with(rest.substr(sep + 1), "E")
                                 ? rest.substr(sep + 2)
                                 : rest.substr(sep + 1),
                             &E);
  if (!shape_ok || p < 2 || p > 240 || E < 1 || E > 262143) {
    if (error)
      *error = "minifloat spelling is floatP_E or float_pP_EE with precision "
               "P in [2, 240] and max exponent E in [1, 262143], optionally "
               "suffixed _finite or _fnuz (e.g. float4_8_finite is e4m3)";
    return false;
  }
  // Exponent field width: smallest eb whose bias rule reaches E.
  const int target = encoding == FloatEncoding::FiniteOnly ? E : E + 1;
  int eb = 2;
  while ((1 << (eb - 1)) < target && eb < 20) ++eb;
  *out = NumericFormat::minifloat(p, E, 1 + eb + (p - 1), encoding);
  return true;
}

void install_builtins(FormatRegistry& reg) {
  FormatClassOps fixed_ops;
  fixed_ops.class_label = "fixed point";
  fixed_ops.name = &fixed_name;
  fixed_ops.quantize = &fixed_quantize_fn;
  fixed_ops.iebw = &fixed_iebw_fn;
  fixed_ops.max_value = &fixed_max_fn;
  fixed_ops.min_positive = &fixed_minpos_fn;
  fixed_ops.executable = &fixed_exec;
  fixed_ops.feasible = &fixed_feasible;
  fixed_ops.cost_class = &fixed_cost;
  fixed_ops.saturates = &always_true;
  fixed_ops.never_underflows = &always_false;
  fixed_ops.eps_is_half_step = &always_false;
  fixed_ops.encodable = &fixed_encodable;
  fixed_ops.encode = &fixed_encode_fn;
  fixed_ops.decode = &fixed_decode_fn;
  fixed_ops.ordering_key = &fixed_order_fn;
  reg.register_class(FormatClass::FixedPoint, fixed_ops);

  FormatClassOps float_ops;
  float_ops.class_label = "floating point";
  float_ops.name = &float_name;
  float_ops.quantize = &float_quantize_fn;
  float_ops.iebw = &float_iebw_fn;
  float_ops.max_value = &float_max_fn;
  float_ops.min_positive = &float_minpos_fn;
  float_ops.executable = &is_executable_float;
  float_ops.feasible = &float_feasible;
  float_ops.cost_class = &float_cost;
  float_ops.saturates = &float_saturates;
  float_ops.never_underflows = &always_false;
  float_ops.eps_is_half_step = &always_true;
  float_ops.encodable = &is_minifloat_encodable;
  float_ops.encode = &float_encode_fn;
  float_ops.decode = &float_decode_fn;
  float_ops.ordering_key = &float_order_fn;
  reg.register_class(FormatClass::FloatingPoint, float_ops);

  FormatClassOps posit_ops;
  posit_ops.class_label = "posit";
  posit_ops.name = &posit_name;
  posit_ops.quantize = &posit_quantize_fn;
  posit_ops.iebw = &posit_iebw_fn;
  posit_ops.max_value = &posit_max_fn;
  posit_ops.min_positive = &posit_minpos_fn;
  posit_ops.executable = &posit_exec;
  posit_ops.feasible = &posit_feasible;
  posit_ops.cost_class = &posit_cost;
  posit_ops.saturates = &always_true;
  posit_ops.never_underflows = &always_true;
  posit_ops.eps_is_half_step = &always_false;
  posit_ops.encodable = &posit_encodable;
  posit_ops.encode = &posit_encode_fn;
  posit_ops.decode = &posit_decode_fn;
  posit_ops.ordering_key = &posit_order_fn;
  reg.register_class(FormatClass::Posit, posit_ops);

  FormatClassOps fposit_ops;
  fposit_ops.class_label = "fixed-posit";
  fposit_ops.name = &fposit_name;
  fposit_ops.quantize = &fposit_quantize_fn;
  fposit_ops.iebw = &fposit_iebw_fn;
  fposit_ops.max_value = &fposit_max_fn;
  fposit_ops.min_positive = &fposit_minpos_fn;
  fposit_ops.executable = &is_executable_fixed_posit;
  fposit_ops.feasible = &fposit_feasible;
  fposit_ops.cost_class = &fposit_cost;
  fposit_ops.saturates = &always_true;
  fposit_ops.never_underflows = &always_true;
  fposit_ops.eps_is_half_step = &always_false;
  fposit_ops.encodable = &fposit_encodable;
  fposit_ops.encode = &fposit_encode_fn;
  fposit_ops.decode = &fposit_decode_fn;
  fposit_ops.ordering_key = &fposit_order_fn;
  reg.register_class(FormatClass::FixedPosit, fposit_ops);

  // The catalog: Table I plus the formats this reproduction grew. Order
  // is user-facing (luis formats, fuzz palettes), so keep it grouped.
  for (const NumericFormat& fmt :
       {kFixed16, kFixed32, kFixed64, kBinary16, kBinary32, kBinary64,
        kBinary128, kBinary256, kBfloat16, kFp8E4M3, kFp8E5M2, kFp8E4M3Fnuz,
        kFp8E5M2Fnuz, kPosit8, kPosit16, kPosit32, kFixedPosit8,
        kFixedPosit16})
    reg.add_format(fmt);

  reg.add_parser(&alias_parser);
  reg.add_parser(&fixed_parser);
  reg.add_parser(&fposit_parser); // before posit: "fposit" is not a posit
  reg.add_parser(&posit_parser);
  reg.add_parser(&minifloat_parser);
}

} // namespace

FormatRegistry& FormatRegistry::instance() {
  static FormatRegistry* reg = [] {
    auto* r = new FormatRegistry;
    install_builtins(*r);
    return r;
  }();
  return *reg;
}

const FormatClassOps& FormatRegistry::ops(FormatClass cls) const {
  const auto i = static_cast<std::size_t>(cls);
  LUIS_ASSERT(i < kNumFormatClasses && registered_[i],
              "format class has no registered policy");
  return ops_[i];
}

bool FormatRegistry::has_class(FormatClass cls) const {
  const auto i = static_cast<std::size_t>(cls);
  return i < kNumFormatClasses && registered_[i];
}

void FormatRegistry::register_class(FormatClass cls,
                                    const FormatClassOps& ops) {
  const auto i = static_cast<std::size_t>(cls);
  LUIS_ASSERT(i < kNumFormatClasses, "format class out of range");
  LUIS_ASSERT(ops.name && ops.quantize && ops.iebw && ops.max_value &&
                  ops.min_positive && ops.executable && ops.feasible &&
                  ops.cost_class && ops.saturates && ops.never_underflows &&
                  ops.eps_is_half_step && ops.encodable,
              "format policy is missing required entries");
  ops_[i] = ops;
  registered_[i] = true;
}

void FormatRegistry::add_format(const NumericFormat& fmt) {
  LUIS_ASSERT(has_class(fmt.format_class()),
              "register the format's class before cataloging it");
  for (const NumericFormat& existing : catalog_)
    if (existing == fmt) return;
  catalog_.push_back(fmt);
}

void FormatRegistry::add_parser(ParserFn parser) { parsers_.push_back(parser); }

std::span<const NumericFormat> FormatRegistry::formats() const {
  return catalog_;
}

std::optional<NumericFormat> FormatRegistry::parse(std::string_view name,
                                                   std::string* error) const {
  for (const NumericFormat& fmt : catalog_)
    if (ops(fmt.format_class()).name(fmt) == name) return fmt;
  for (const ParserFn parser : parsers_) {
    NumericFormat out;
    std::string diag;
    if (parser(name, &out, &diag)) return out;
    if (!diag.empty()) {
      if (error) *error = diag;
      return std::nullopt;
    }
  }
  if (error)
    *error = "unknown format '" + std::string(name) +
             "'; see `luis formats` for the catalog and parametric spellings";
  return std::nullopt;
}

} // namespace luis::numrep
