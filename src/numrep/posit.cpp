#include "numrep/posit.hpp"

#include <cmath>

#include "support/diag.hpp"

namespace luis::numrep {
namespace {

using u128 = unsigned __int128;

void check_format(const NumericFormat& f) {
  LUIS_ASSERT(f.is_posit(), "Posit requires a posit format");
  LUIS_ASSERT(f.width() >= 3 && f.width() <= 32, "posit width must be in [3, 32]");
  LUIS_ASSERT(f.es() >= 0 && f.es() <= 4, "posit es must be in [0, 4]");
}

std::uint32_t width_mask(int w) {
  return w == 32 ? 0xFFFFFFFFu : ((std::uint32_t{1} << w) - 1);
}

std::uint32_t nar_pattern(int w) { return std::uint32_t{1} << (w - 1); }

} // namespace

Posit::Posit(NumericFormat format, std::uint32_t bits)
    : format_(format), bits_(bits & width_mask(format.width())) {
  check_format(format);
}

bool Posit::is_nar() const { return bits_ == nar_pattern(format_.width()); }

Posit Posit::from_double(const NumericFormat& format, double x) {
  check_format(format);
  const int w = format.width();
  const int es = format.es();
  if (x == 0.0) return Posit{format, 0};
  if (!std::isfinite(x)) return Posit{format, nar_pattern(w)};

  const bool negative = x < 0.0;
  const double a = std::abs(x);
  const int t = std::ilogb(a);         // floor(log2 a)
  const double sig = std::ldexp(a, -t); // significand in [1, 2)

  // C++20 guarantees arithmetic right shift for signed values, so this is
  // floor division by 2^es even for negative scales.
  int k = t >> es;
  const int e = t - (k << es);
  // Regimes beyond the representable range saturate; clamping k here keeps
  // the bit stream bounded, and the body clamp below finishes the job.
  if (k > w - 2) k = w - 2;
  if (k < -(w - 1)) k = -(w - 1);

  // Assemble the unrounded magnitude bit stream: regime, exponent, and 63
  // bits of fraction (exact for a binary64 significand).
  const int regime_len = k >= 0 ? k + 2 : -k + 1;
  const u128 regime_pattern = k >= 0 ? ((u128{1} << (k + 1)) - 1) << 1 // 1...10
                                     : u128{1};                       // 0...01
  const auto fraction63 = static_cast<std::uint64_t>(std::ldexp(sig - 1.0, 63));
  u128 stream = regime_pattern;
  stream = (stream << es) | static_cast<unsigned>(e);
  stream = (stream << 63) | fraction63;
  const int stream_len = regime_len + es + 63;

  // Round the stream into the w-1 magnitude bits: nearest, ties to even.
  const int body_bits = w - 1;
  std::uint64_t body;
  if (stream_len <= body_bits) {
    body = static_cast<std::uint64_t>(stream) << (body_bits - stream_len);
  } else {
    const int shift = stream_len - body_bits;
    u128 keep = stream >> shift;
    const u128 rest = stream & ((u128{1} << shift) - 1);
    const u128 half = u128{1} << (shift - 1);
    if (rest > half || (rest == half && (keep & 1)))
      ++keep;
    body = static_cast<std::uint64_t>(keep);
  }

  // Posits saturate: never round a nonzero value to zero or past maxpos.
  const std::uint64_t max_body = (std::uint64_t{1} << body_bits) - 1;
  if (body < 1) body = 1;
  if (body > max_body) body = max_body;

  std::uint32_t bits = static_cast<std::uint32_t>(body);
  if (negative) bits = (~bits + 1) & width_mask(w); // two's complement
  return Posit{format, bits};
}

PositFields Posit::fields() const {
  const int w = format_.width();
  const int es = format_.es();
  PositFields out;
  if (bits_ == 0) {
    out.is_zero = true;
    return out;
  }
  if (is_nar()) {
    out.is_nar = true;
    return out;
  }
  out.negative = (bits_ >> (w - 1)) & 1;
  const std::uint32_t magnitude =
      out.negative ? (~bits_ + 1) & width_mask(w) : bits_;
  const std::uint32_t body = magnitude & (width_mask(w) >> 1);

  // Scan the regime run from the top magnitude bit downward.
  const int top = w - 2;
  const int first = (body >> top) & 1;
  int run = 0;
  while (run <= top && static_cast<int>((body >> (top - run)) & 1) == first)
    ++run;
  out.regime = first ? run - 1 : -run;

  // Skip the terminator bit (absent if the run fills the body).
  const int remaining = top - run; // bits available after regime + terminator
  const int exp_bits = remaining < es ? (remaining < 0 ? 0 : remaining) : es;
  const int frac_bits = remaining > es ? remaining - es : 0;
  std::uint32_t chunk = frac_bits + exp_bits > 0
                            ? body & ((std::uint32_t{1} << (exp_bits + frac_bits)) - 1)
                            : 0;
  // Truncated exponent bits are implicitly zero (low-order padding).
  out.exponent = exp_bits > 0
                     ? static_cast<int>(chunk >> frac_bits) << (es - exp_bits)
                     : 0;
  out.fraction_bits = frac_bits;
  out.fraction = frac_bits > 0 ? (chunk & ((std::uint32_t{1} << frac_bits) - 1)) : 0;
  return out;
}

double Posit::to_double() const {
  const PositFields f = fields();
  if (f.is_zero) return 0.0;
  if (f.is_nar) return std::nan("");
  const int scale = (f.regime << format_.es()) + f.exponent;
  const double frac =
      f.fraction_bits > 0
          ? std::ldexp(static_cast<double>(f.fraction), -f.fraction_bits)
          : 0.0;
  const double magnitude = std::ldexp(1.0 + frac, scale);
  return f.negative ? -magnitude : magnitude;
}

Posit operator+(const Posit& a, const Posit& b) {
  return Posit::from_double(a.format(), a.to_double() + b.to_double());
}
Posit operator-(const Posit& a, const Posit& b) {
  return Posit::from_double(a.format(), a.to_double() - b.to_double());
}
Posit operator*(const Posit& a, const Posit& b) {
  return Posit::from_double(a.format(), a.to_double() * b.to_double());
}
Posit operator/(const Posit& a, const Posit& b) {
  return Posit::from_double(a.format(), a.to_double() / b.to_double());
}
Posit Posit::negate() const {
  return Posit{format_, (~bits_ + 1) & width_mask(format_.width())};
}

double posit_max_value(const NumericFormat& format) {
  check_format(format);
  return std::ldexp(1.0, (format.width() - 2) << format.es());
}

double posit_min_value(const NumericFormat& format) {
  check_format(format);
  return std::ldexp(1.0, -((format.width() - 2) << format.es()));
}

double quantize_posit(const NumericFormat& format, double x) {
  return Posit::from_double(format, x).to_double();
}

} // namespace luis::numrep
