// Pre-bound numeric kernels: one specialized (operation x format-class)
// function per table slot, selected once at bytecode-compile time instead
// of re-deriving the FormatClass and routing through the generic
// numrep::quantize switch on every executed instruction.
//
// Bit-identity contract. Every kernel computes exactly what the reference
// interpreter computes: the operation in binary64 (using the same libm
// entry points), then a rounding step through the same per-class routine
// quantize() dispatches to (round_to_format / quantize_fixed /
// quantize_posit / quantize_fixed_posit, or the registered policy's
// quantize for extension classes). The only thing removed is the
// per-execution dispatch; the arithmetic is shared, so VM and reference
// agree bit for bit.
#pragma once

#include "numrep/fixed_point.hpp"
#include "numrep/formats.hpp"
#include "numrep/registry.hpp"

namespace luis::numrep {

/// Quantization parameters resolved once per ConcreteType at compile time:
/// the format for the float/posit rounders, the FixedSpec for the fixed
/// point one (so quantize_fixed no longer rebuilds it per call), and the
/// registry policy for extension classes bound through the generic slot.
struct QuantSpec {
  NumericFormat format = kBinary64;
  FixedSpec fixed{};
  const FormatClassOps* ops = nullptr;
};

QuantSpec make_quant_spec(const ConcreteType& type);

/// A pre-selected rounding routine for one format class.
using QuantFn = double (*)(const QuantSpec&, double);

/// The rounder quantize() would dispatch to for `type`'s class.
QuantFn bind_quantizer(const ConcreteType& type);

/// Binary real operations of the kernel table (the costed opcodes with two
/// real operands).
enum class KernelOp2 : int { Add, Sub, Mul, Div, Rem, Pow, Min, Max };
/// Unary real operations of the kernel table.
enum class KernelOp1 : int { Neg, Abs, Sqrt, Exp };

/// A fused operate-then-round kernel: binary64 op + one rounding step.
using Kernel2 = double (*)(const QuantSpec&, double, double);
using Kernel1 = double (*)(const QuantSpec&, double);

/// Kernel table lookups: the slot for (op, result format class).
Kernel2 bind_kernel2(KernelOp2 op, const ConcreteType& result);
Kernel1 bind_kernel1(KernelOp1 op, const ConcreteType& result);

/// Pre-resolved operand/result layouts for the exact integer fixed point
/// path (RunOptions::exact_fixed_arithmetic).
struct ExactFixedBind {
  FixedSpec a{};
  FixedSpec b{};
  FixedSpec out{};
};

using ExactKernel = double (*)(const ExactFixedBind&, double, double);

/// Exact mixed-format fixed point kernel for Add/Sub/Mul/Div; other ops
/// return nullptr (the caller falls back to the compute-in-double table).
ExactKernel bind_exact_fixed(KernelOp2 op);

} // namespace luis::numrep
