// Single quantization entry point over all representation systems.
#pragma once

#include "numrep/formats.hpp"

namespace luis::numrep {

/// Rounds `x` into the given concrete type: soft-float rounding for
/// floating point formats, grid quantization with saturation for fixed
/// point, posit rounding for posits. binary64 is the identity.
double quantize(const ConcreteType& type, double x);

} // namespace luis::numrep
