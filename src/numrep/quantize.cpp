#include "numrep/quantize.hpp"

#include "numrep/fixed_point.hpp"
#include "numrep/posit.hpp"
#include "numrep/soft_float.hpp"
#include "support/diag.hpp"

namespace luis::numrep {

double quantize(const ConcreteType& type, double x) {
  switch (type.format.format_class()) {
  case FormatClass::FloatingPoint:
    return round_to_format(type.format, x);
  case FormatClass::FixedPoint:
    return quantize_fixed(FixedSpec::from(type), x);
  case FormatClass::Posit:
    return quantize_posit(type.format, x);
  }
  LUIS_UNREACHABLE("unknown format class");
}

} // namespace luis::numrep
