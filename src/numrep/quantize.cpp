#include "numrep/quantize.hpp"

#include "numrep/registry.hpp"

namespace luis::numrep {

double quantize(const ConcreteType& type, double x) {
  return format_ops(type).quantize(type, x);
}

} // namespace luis::numrep
