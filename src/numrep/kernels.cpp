#include "numrep/kernels.hpp"

#include <cmath>

#include "numrep/fixed_posit.hpp"
#include "numrep/posit.hpp"
#include "numrep/soft_float.hpp"
#include "support/diag.hpp"

namespace luis::numrep {
namespace {

// Rounding steps, one per format class. These call the exact routines
// quantize() dispatches to, so a kernel result is bit-identical to
// "compute in binary64, then numrep::quantize".
double round_float(const QuantSpec& s, double x) {
  return round_to_format(s.format, x);
}
double round_fixed(const QuantSpec& s, double x) {
  return quantize_fixed(s.fixed, x);
}
double round_posit(const QuantSpec& s, double x) {
  return quantize_posit(s.format, x);
}
double round_fposit(const QuantSpec& s, double x) {
  return quantize_fixed_posit(s.format, x);
}
// Extension classes registered at run time round through their policy;
// same routine as quantize(), so bit-identity holds for them too.
double round_generic(const QuantSpec& s, double x) {
  return s.ops->quantize(ConcreteType{s.format, s.fixed.frac}, x);
}

// The binary64 operations, spelled with the same libm entry points the
// reference interpreter uses.
struct OpAdd { static double eval(double a, double b) { return a + b; } };
struct OpSub { static double eval(double a, double b) { return a - b; } };
struct OpMul { static double eval(double a, double b) { return a * b; } };
struct OpDiv { static double eval(double a, double b) { return a / b; } };
struct OpRem { static double eval(double a, double b) { return std::fmod(a, b); } };
struct OpPow { static double eval(double a, double b) { return std::pow(a, b); } };
struct OpMin { static double eval(double a, double b) { return std::fmin(a, b); } };
struct OpMax { static double eval(double a, double b) { return std::fmax(a, b); } };

struct OpNeg { static double eval(double a) { return -a; } };
struct OpAbs { static double eval(double a) { return std::abs(a); } };
struct OpSqrt { static double eval(double a) { return std::sqrt(a); } };
struct OpExp { static double eval(double a) { return std::exp(a); } };

template <typename Op, double (*Round)(const QuantSpec&, double)>
double fused2(const QuantSpec& s, double a, double b) {
  return Round(s, Op::eval(a, b));
}

template <typename Op, double (*Round)(const QuantSpec&, double)>
double fused1(const QuantSpec& s, double a) {
  return Round(s, Op::eval(a));
}

// Table slot index for a format class: the built-in classes get fused
// fast-path rounders, everything else the generic policy slot.
int class_index(const ConcreteType& type) {
  switch (type.format.format_class()) {
  case FormatClass::FixedPoint: return 0;
  case FormatClass::FloatingPoint: return 1;
  case FormatClass::Posit: return 2;
  case FormatClass::FixedPosit: return 3;
  default: return 4;
  }
}

template <typename Op>
constexpr Kernel2 row2(int cls) {
  return cls == 0   ? &fused2<Op, round_fixed>
         : cls == 1 ? &fused2<Op, round_float>
         : cls == 2 ? &fused2<Op, round_posit>
         : cls == 3 ? &fused2<Op, round_fposit>
                    : &fused2<Op, round_generic>;
}

template <typename Op>
constexpr Kernel1 row1(int cls) {
  return cls == 0   ? &fused1<Op, round_fixed>
         : cls == 1 ? &fused1<Op, round_float>
         : cls == 2 ? &fused1<Op, round_posit>
         : cls == 3 ? &fused1<Op, round_fposit>
                    : &fused1<Op, round_generic>;
}

template <FixedValue (*OpFn)(const FixedValue&, const FixedValue&,
                             const FixedSpec&)>
double exact2(const ExactFixedBind& b, double x, double y) {
  const FixedValue fa = FixedValue::from_double(b.a, x);
  const FixedValue fb = FixedValue::from_double(b.b, y);
  return OpFn(fa, fb, b.out).to_double();
}

} // namespace

QuantSpec make_quant_spec(const ConcreteType& type) {
  QuantSpec s;
  s.format = type.format;
  // FixedSpec doubles as the frac_bits carrier for the generic slot's
  // ConcreteType reconstruction, so fill it for every class.
  s.fixed = FixedSpec::from(type);
  s.ops = &format_ops(type);
  return s;
}

QuantFn bind_quantizer(const ConcreteType& type) {
  switch (class_index(type)) {
  case 0: return &round_fixed;
  case 1: return &round_float;
  case 2: return &round_posit;
  case 3: return &round_fposit;
  default: return &round_generic;
  }
}

Kernel2 bind_kernel2(KernelOp2 op, const ConcreteType& result) {
  const int cls = class_index(result);
  switch (op) {
  case KernelOp2::Add: return row2<OpAdd>(cls);
  case KernelOp2::Sub: return row2<OpSub>(cls);
  case KernelOp2::Mul: return row2<OpMul>(cls);
  case KernelOp2::Div: return row2<OpDiv>(cls);
  case KernelOp2::Rem: return row2<OpRem>(cls);
  case KernelOp2::Pow: return row2<OpPow>(cls);
  case KernelOp2::Min: return row2<OpMin>(cls);
  case KernelOp2::Max: return row2<OpMax>(cls);
  }
  LUIS_UNREACHABLE("unknown binary kernel op");
}

Kernel1 bind_kernel1(KernelOp1 op, const ConcreteType& result) {
  const int cls = class_index(result);
  switch (op) {
  case KernelOp1::Neg: return row1<OpNeg>(cls);
  case KernelOp1::Abs: return row1<OpAbs>(cls);
  case KernelOp1::Sqrt: return row1<OpSqrt>(cls);
  case KernelOp1::Exp: return row1<OpExp>(cls);
  }
  LUIS_UNREACHABLE("unknown unary kernel op");
}

ExactKernel bind_exact_fixed(KernelOp2 op) {
  switch (op) {
  case KernelOp2::Add: return &exact2<fixed_add_mixed>;
  case KernelOp2::Sub: return &exact2<fixed_sub_mixed>;
  case KernelOp2::Mul: return &exact2<fixed_mul_mixed>;
  case KernelOp2::Div: return &exact2<fixed_div_mixed>;
  default: return nullptr;
  }
}

} // namespace luis::numrep
