#include "numrep/formats.hpp"

#include "numrep/registry.hpp"
#include "support/string_utils.hpp"

namespace luis::numrep {

std::string NumericFormat::name() const {
  const FormatRegistry& reg = FormatRegistry::instance();
  if (!reg.has_class(class_)) return "<unregistered>";
  return reg.ops(class_).name(*this);
}

std::span<const NumericFormat> standard_formats() {
  return FormatRegistry::instance().formats();
}

std::optional<NumericFormat> parse_format(std::string_view name,
                                          std::string* error) {
  return FormatRegistry::instance().parse(name, error);
}

std::string ConcreteType::name() const {
  if (format.is_fixed())
    return format_string("%s.%d", format.name().c_str(), frac_bits);
  return format.name();
}

} // namespace luis::numrep
