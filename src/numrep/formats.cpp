#include "numrep/formats.hpp"

#include <array>
#include <cstdlib>

#include "support/string_utils.hpp"

namespace luis::numrep {

std::string NumericFormat::name() const {
  switch (class_) {
  case FormatClass::FixedPoint:
    return format_string("%sfix%d", signed_ ? "" : "u", width_);
  case FormatClass::FloatingPoint:
    if (*this == kBinary16) return "binary16";
    if (*this == kBinary32) return "binary32";
    if (*this == kBinary64) return "binary64";
    if (*this == kBinary128) return "binary128";
    if (*this == kBinary256) return "binary256";
    if (*this == kBfloat16) return "bfloat16";
    return format_string("float_p%d_E%d", precision_, max_exponent_);
  case FormatClass::Posit:
    return format_string("posit%d_%d", width_, es_);
  }
  return "<invalid>";
}

std::span<const NumericFormat> standard_formats() {
  static const std::array<NumericFormat, 12> kFormats = {
      kFixed16,  kFixed32,   kFixed64,   kBinary16, kBinary32, kBinary64,
      kBinary128, kBinary256, kBfloat16, kPosit8,   kPosit16,  kPosit32,
  };
  return kFormats;
}

std::optional<NumericFormat> parse_format(std::string_view name) {
  for (const NumericFormat& fmt : standard_formats())
    if (fmt.name() == name) return fmt;
  // Convenience aliases matching the paper's terminology.
  if (name == "float") return kBinary32;
  if (name == "double") return kBinary64;
  if (name == "half") return kBinary16;
  if (name == "fix") return kFixed32;
  // Parametric spellings: fixN, ufixN, positW_ES.
  if (starts_with(name, "ufix")) {
    const int w = std::atoi(std::string(name.substr(4)).c_str());
    if (w >= 2 && w <= 64) return NumericFormat::fixed(w, /*is_signed=*/false);
  }
  if (starts_with(name, "fix")) {
    const int w = std::atoi(std::string(name.substr(3)).c_str());
    if (w >= 2 && w <= 64) return NumericFormat::fixed(w);
  }
  if (starts_with(name, "posit")) {
    const auto rest = name.substr(5);
    const auto sep = rest.find('_');
    if (sep != std::string_view::npos) {
      const int w = std::atoi(std::string(rest.substr(0, sep)).c_str());
      const int es = std::atoi(std::string(rest.substr(sep + 1)).c_str());
      if (w >= 3 && w <= 32 && es >= 0 && es <= 4)
        return NumericFormat::posit(w, es);
    }
  }
  return std::nullopt;
}

std::string ConcreteType::name() const {
  if (format.is_fixed())
    return format_string("%s.%d", format.name().c_str(), frac_bits);
  return format.name();
}

} // namespace luis::numrep
