// Fixed-posit arithmetic per Gohil, Walia, Mekie & Jain, "Fixed-Posit: A
// Floating-Point Representation for Error-Resilient Applications" (arXiv
// 2104.04763): a posit whose regime field has a fixed width `rs` instead
// of a run-length encoding.
//
// Layout (w bits): sign | regime (rs bits) | exponent (es bits) | fraction
// (F = w - 1 - rs - es bits). A magnitude's scale is k * 2^es + e with
// regime k in [-2^(rs-1), 2^(rs-1) - 1] and exponent e in [0, 2^es); the
// value is (1 + f / 2^F) * 2^scale. There are no subnormals; like posits,
// negative values are the two's complement of the whole word and rounding
// saturates at +-maxpos / +-minpos (never to infinity, never to zero).
//
// Deviation from the paper's bit layout: the regime is stored biased
// (k - k_min) rather than in two's complement, so the all-zero body is
// free for the reserved patterns (0...0 = zero, 10...0 = NaR) and the
// scale is monotone in the stored bits. The representable value set is
// identical except that the biased ladder starts at body 1, i.e. minpos
// is (1 + 2^-F) * 2^(k_min * 2^es) instead of 2^(k_min * 2^es). See
// docs/FORMATS.md.
#pragma once

#include <cstdint>

#include "numrep/formats.hpp"

namespace luis::numrep {

/// True for fixed-posit geometries this codec executes: width 3..32,
/// es 0..4, rs 1..8, and at least 0 fraction bits.
bool is_executable_fixed_posit(const NumericFormat& format);

/// Largest finite value: (2 - 2^-F) * 2^(k_max * 2^es + 2^es - 1).
double fixed_posit_max_value(const NumericFormat& format);
/// Smallest positive value: (1 + 2^-F) * 2^(k_min * 2^es) (body 1).
double fixed_posit_min_value(const NumericFormat& format);

/// Rounds `x` to the nearest fixed-posit: ties to even body, saturation
/// at +-maxpos and +-minpos (posit-style: nonzero never rounds to zero),
/// NaN to NaN. Zero is exact.
double quantize_fixed_posit(const NumericFormat& format, double x);

/// IEBW (Definition 5 applied to the fixed field layout): F - scale of
/// the rounded value. `x` must be nonzero and finite.
int iebw_fixed_posit(const NumericFormat& format, double x);

/// Value of a bit pattern (low width() bits; 0 = zero, 10...0 = NaR/NaN).
double fixed_posit_decode(const NumericFormat& format, std::uint64_t bits);
/// Pattern of an exactly representable value (quantize first otherwise).
std::uint64_t fixed_posit_encode(const NumericFormat& format, double x);
/// Total-order rank: the sign-extended two's complement word.
std::int64_t fixed_posit_ordering_key(const NumericFormat& format,
                                      std::uint64_t bits);

} // namespace luis::numrep
