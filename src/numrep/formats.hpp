// Number representation descriptors.
//
// A NumericFormat describes one representation system the tuner can assign
// to a virtual register. The descriptor is pure data (bit geometry plus an
// encoding variant); everything behavioral — quantization, IEBW, kernel
// rows, cost classes, bit-level codecs — lives in the per-class policy
// vtable registered with FormatRegistry (see registry.hpp). The built-in
// classes are:
//
//   FixedPoint     signed/unsigned fixed point of a given width (the
//                  fractional bit count is a per-variable decision, made by
//                  the ILP model through the z variables);
//   FloatingPoint  binary floating point parameterized by precision p and
//                  maximum exponent E (Table I of the paper), with three
//                  encoding variants: Ieee (inf + NaNs, the classic layout),
//                  FiniteOnly (OCP FP8 E4M3: no infinity, the all-ones
//                  pattern is NaN, one extra binade of finite range), and
//                  Fnuz (no infinity, no negative zero, NaN only at the
//                  sign-bit pattern — the E4M3FNUZ/E5M2FNUZ layouts);
//   Posit          posit(w, es), Gustafson type III unums;
//   FixedPosit     fixed-posit(w, es, rs) per Gohil et al. (arXiv
//                  2104.04763): a posit whose regime field has a fixed
//                  width rs instead of a run-length encoding;
//   Ext0..Ext3     open slots for formats registered at run time through
//                  FormatRegistry::register_class (pluggability tests and
//                  downstream experiments claim these).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace luis::numrep {

enum class FormatClass : std::uint8_t {
  FixedPoint,
  FloatingPoint,
  Posit,
  FixedPosit,
  Ext0,
  Ext1,
  Ext2,
  Ext3,
};

inline constexpr int kNumFormatClasses = 8;

/// Special-value layout of a floating point format. Only FloatingPoint
/// formats carry a meaningful encoding; every other class stores Ieee.
enum class FloatEncoding : std::uint8_t {
  Ieee,       ///< inf at the all-ones exponent, gradual underflow, -0
  FiniteOnly, ///< no inf; only the all-ones (exp, mantissa) pattern is NaN
  Fnuz,       ///< no inf, no -0; NaN is the lone sign-bit pattern
};

class NumericFormat {
public:
  /// Signed fixed point type of `width` total bits. The fractional bit count
  /// is not part of the format: it is chosen per variable.
  static constexpr NumericFormat fixed(int width, bool is_signed = true) {
    NumericFormat f;
    f.class_ = FormatClass::FixedPoint;
    f.width_ = width;
    f.signed_ = is_signed;
    return f;
  }

  /// Binary floating point with precision `p` (significand bits including
  /// the hidden bit) and maximum exponent `E`, as in Table I.
  static constexpr NumericFormat floating(int p, int max_exponent, int width) {
    NumericFormat f;
    f.class_ = FormatClass::FloatingPoint;
    f.width_ = width;
    f.precision_ = p;
    f.max_exponent_ = max_exponent;
    return f;
  }

  /// Floating point with an explicit special-value encoding (the FP8
  /// family). `max_exponent` is the largest exponent of a finite normal
  /// value under that encoding (448 = 1.75 * 2^8 for E4M3, so E = 8).
  static constexpr NumericFormat minifloat(int p, int max_exponent, int width,
                                           FloatEncoding encoding) {
    NumericFormat f = floating(p, max_exponent, width);
    f.encoding_ = encoding;
    return f;
  }

  /// Posit configuration posit(w, es).
  static constexpr NumericFormat posit(int width, int es) {
    NumericFormat f;
    f.class_ = FormatClass::Posit;
    f.width_ = width;
    f.es_ = es;
    return f;
  }

  /// Fixed-posit(w, es, rs): sign bit, rs-bit regime field, es exponent
  /// bits, and w - 1 - rs - es fraction bits (arXiv 2104.04763).
  static constexpr NumericFormat fixed_posit(int width, int es,
                                             int regime_bits) {
    NumericFormat f;
    f.class_ = FormatClass::FixedPosit;
    f.width_ = width;
    f.es_ = es;
    f.regime_bits_ = regime_bits;
    return f;
  }

  /// Descriptor for an extension class registered through FormatRegistry.
  /// `param_a`/`param_b` are free per-class parameters (readable back
  /// through precision() and es()).
  static constexpr NumericFormat ext(FormatClass cls, int width,
                                     int param_a = 0, int param_b = 0) {
    NumericFormat f;
    f.class_ = cls;
    f.width_ = width;
    f.precision_ = param_a;
    f.es_ = param_b;
    return f;
  }

  constexpr FormatClass format_class() const { return class_; }
  constexpr bool is_fixed() const { return class_ == FormatClass::FixedPoint; }
  constexpr bool is_float() const { return class_ == FormatClass::FloatingPoint; }
  constexpr bool is_posit() const { return class_ == FormatClass::Posit; }
  constexpr bool is_fixed_posit() const {
    return class_ == FormatClass::FixedPosit;
  }

  /// Total storage width in bits.
  constexpr int width() const { return width_; }

  /// Fixed point: signedness.
  constexpr bool is_signed() const { return signed_; }

  /// Floating point: precision p (includes the hidden bit).
  constexpr int precision() const { return precision_; }
  /// Floating point: maximum exponent E.
  constexpr int max_exponent() const { return max_exponent_; }
  /// Floating point: minimum normal exponent. The bias differs per
  /// encoding: Ieee pairs E with bias E (emin = 1 - E), FiniteOnly spends
  /// its top exponent code on finite values (bias E - 1, emin = 2 - E),
  /// and Fnuz reclaims the inf/NaN codes for one extra low binade
  /// (bias E + 1, emin = -E).
  constexpr int min_exponent() const {
    switch (encoding_) {
    case FloatEncoding::Ieee: return 1 - max_exponent_;
    case FloatEncoding::FiniteOnly: return 2 - max_exponent_;
    case FloatEncoding::Fnuz: return -max_exponent_;
    }
    return 1 - max_exponent_;
  }
  /// Floating point: special-value layout.
  constexpr FloatEncoding encoding() const { return encoding_; }

  /// Posit / fixed-posit: maximum exponent field size es.
  constexpr int es() const { return es_; }
  /// Fixed-posit: width of the fixed regime field.
  constexpr int regime_bits() const { return regime_bits_; }

  /// Canonical name, e.g. "fix32", "binary64", "e4m3", "posit32_2",
  /// "fposit8_0_3". Every name round-trips through parse_format.
  std::string name() const;

  friend constexpr bool operator==(const NumericFormat&, const NumericFormat&) = default;

private:
  FormatClass class_ = FormatClass::FloatingPoint;
  int width_ = 64;
  bool signed_ = true;    // fixed point only
  int precision_ = 53;    // floating point only (param_a for ext classes)
  int max_exponent_ = 1023; // floating point only
  int es_ = 2;            // posit / fixed-posit only (param_b for ext classes)
  int regime_bits_ = 0;   // fixed-posit only
  FloatEncoding encoding_ = FloatEncoding::Ieee; // floating point only
};

// --- Standard formats (Table I plus the fixed point widths we support). ---

inline constexpr NumericFormat kBinary16 = NumericFormat::floating(11, 15, 16);
inline constexpr NumericFormat kBinary32 = NumericFormat::floating(24, 127, 32);
inline constexpr NumericFormat kBinary64 = NumericFormat::floating(53, 1023, 64);
inline constexpr NumericFormat kBinary128 = NumericFormat::floating(113, 16383, 128);
inline constexpr NumericFormat kBinary256 = NumericFormat::floating(237, 262143, 256);
inline constexpr NumericFormat kBfloat16 = NumericFormat::floating(8, 127, 16);

// --- FP8 (OCP 8-bit floating point, arXiv 2209.05433) ---
// E4M3 uses the FiniteOnly layout: bias 7, but the all-ones exponent code
// carries finite values up to 448 = 1.75 * 2^8 (only S.1111.111 is NaN),
// so E = 8 here. E5M2 is a classic IEEE layout (bias 15, inf + NaNs).
// The FNUZ variants (used by several training stacks) drop inf and -0,
// move NaN to 0x80, and re-bias one binade lower.
inline constexpr NumericFormat kFp8E4M3 =
    NumericFormat::minifloat(4, 8, 8, FloatEncoding::FiniteOnly);
inline constexpr NumericFormat kFp8E5M2 =
    NumericFormat::minifloat(3, 15, 8, FloatEncoding::Ieee);
inline constexpr NumericFormat kFp8E4M3Fnuz =
    NumericFormat::minifloat(4, 7, 8, FloatEncoding::Fnuz);
inline constexpr NumericFormat kFp8E5M2Fnuz =
    NumericFormat::minifloat(3, 15, 8, FloatEncoding::Fnuz);

inline constexpr NumericFormat kFixed16 = NumericFormat::fixed(16);
inline constexpr NumericFormat kFixed32 = NumericFormat::fixed(32);
inline constexpr NumericFormat kFixed64 = NumericFormat::fixed(64);

inline constexpr NumericFormat kPosit8 = NumericFormat::posit(8, 0);
inline constexpr NumericFormat kPosit16 = NumericFormat::posit(16, 1);
inline constexpr NumericFormat kPosit32 = NumericFormat::posit(32, 2);

// --- Fixed-posit reference points (arXiv 2104.04763) ---
// fposit8_0_3: sign + 3 regime bits (k in [-4, 3]) + 4 fraction bits;
// fposit16_1_4: sign + 4 regime bits + 1 exponent bit + 10 fraction bits
// (scales in [-16, 15], binary16-like coverage without subnormals).
inline constexpr NumericFormat kFixedPosit8 = NumericFormat::fixed_posit(8, 0, 3);
inline constexpr NumericFormat kFixedPosit16 =
    NumericFormat::fixed_posit(16, 1, 4);

/// All formats known by name (used by CLIs and the format parser). Backed
/// by the FormatRegistry catalog; registering a format extends this list.
std::span<const NumericFormat> standard_formats();

/// Parses a canonical format name; returns nullopt if unknown. Accepts the
/// registry names plus the parametric spellings "fixN"/"ufixN",
/// "positW_ES", "fpositW_ES_RS", and "float_pP_EE" / "floatP_E" (arbitrary
/// minifloats). When `error` is non-null and the spelling is recognized
/// but malformed, a diagnostic is stored there.
std::optional<NumericFormat> parse_format(std::string_view name,
                                          std::string* error = nullptr);

/// A fully concrete run-time type: a format plus, for fixed point, the
/// number of fractional bits selected by the tuner.
struct ConcreteType {
  NumericFormat format = kBinary64;
  int frac_bits = 0; ///< meaningful only when format.is_fixed()

  std::string name() const;
  friend bool operator==(const ConcreteType&, const ConcreteType&) = default;
};

} // namespace luis::numrep
