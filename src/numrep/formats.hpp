// Number representation descriptors.
//
// A NumericFormat describes one representation system the tuner can assign
// to a virtual register: a fixed point type of a given width (the amount of
// fractional bits is a per-variable decision, made by the ILP model through
// the z variables), a binary floating point format parameterized by
// precision p and maximum exponent E (Table I of the paper), or a Posit
// configuration (width, es).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace luis::numrep {

enum class FormatClass : std::uint8_t { FixedPoint, FloatingPoint, Posit };

class NumericFormat {
public:
  /// Signed fixed point type of `width` total bits. The fractional bit count
  /// is not part of the format: it is chosen per variable.
  static constexpr NumericFormat fixed(int width, bool is_signed = true) {
    NumericFormat f;
    f.class_ = FormatClass::FixedPoint;
    f.width_ = width;
    f.signed_ = is_signed;
    return f;
  }

  /// Binary floating point with precision `p` (significand bits including
  /// the hidden bit) and maximum exponent `E`, as in Table I.
  static constexpr NumericFormat floating(int p, int max_exponent, int width) {
    NumericFormat f;
    f.class_ = FormatClass::FloatingPoint;
    f.width_ = width;
    f.precision_ = p;
    f.max_exponent_ = max_exponent;
    return f;
  }

  /// Posit configuration posit(w, es).
  static constexpr NumericFormat posit(int width, int es) {
    NumericFormat f;
    f.class_ = FormatClass::Posit;
    f.width_ = width;
    f.es_ = es;
    return f;
  }

  constexpr FormatClass format_class() const { return class_; }
  constexpr bool is_fixed() const { return class_ == FormatClass::FixedPoint; }
  constexpr bool is_float() const { return class_ == FormatClass::FloatingPoint; }
  constexpr bool is_posit() const { return class_ == FormatClass::Posit; }

  /// Total storage width in bits.
  constexpr int width() const { return width_; }

  /// Fixed point: signedness.
  constexpr bool is_signed() const { return signed_; }

  /// Floating point: precision p (includes the hidden bit).
  constexpr int precision() const { return precision_; }
  /// Floating point: maximum exponent E.
  constexpr int max_exponent() const { return max_exponent_; }
  /// Floating point: minimum normal exponent (1 - E for IEEE-style bias).
  constexpr int min_exponent() const { return 1 - max_exponent_; }

  /// Posit: maximum exponent field size es.
  constexpr int es() const { return es_; }

  /// Canonical name, e.g. "fix32", "binary64", "bfloat16", "posit32_2".
  std::string name() const;

  friend constexpr bool operator==(const NumericFormat&, const NumericFormat&) = default;

private:
  FormatClass class_ = FormatClass::FloatingPoint;
  int width_ = 64;
  bool signed_ = true;    // fixed point only
  int precision_ = 53;    // floating point only
  int max_exponent_ = 1023; // floating point only
  int es_ = 2;            // posit only
};

// --- Standard formats (Table I plus the fixed point widths we support). ---

inline constexpr NumericFormat kBinary16 = NumericFormat::floating(11, 15, 16);
inline constexpr NumericFormat kBinary32 = NumericFormat::floating(24, 127, 32);
inline constexpr NumericFormat kBinary64 = NumericFormat::floating(53, 1023, 64);
inline constexpr NumericFormat kBinary128 = NumericFormat::floating(113, 16383, 128);
inline constexpr NumericFormat kBinary256 = NumericFormat::floating(237, 262143, 256);
inline constexpr NumericFormat kBfloat16 = NumericFormat::floating(8, 127, 16);

inline constexpr NumericFormat kFixed16 = NumericFormat::fixed(16);
inline constexpr NumericFormat kFixed32 = NumericFormat::fixed(32);
inline constexpr NumericFormat kFixed64 = NumericFormat::fixed(64);

inline constexpr NumericFormat kPosit8 = NumericFormat::posit(8, 0);
inline constexpr NumericFormat kPosit16 = NumericFormat::posit(16, 1);
inline constexpr NumericFormat kPosit32 = NumericFormat::posit(32, 2);

/// All formats known by name (used by CLIs and the format parser).
std::span<const NumericFormat> standard_formats();

/// Parses a canonical format name; returns nullopt if unknown.
/// Accepts the registry names plus "fixN", "positW_ES" for custom parameters.
std::optional<NumericFormat> parse_format(std::string_view name);

/// A fully concrete run-time type: a format plus, for fixed point, the
/// number of fractional bits selected by the tuner.
struct ConcreteType {
  NumericFormat format = kBinary64;
  int frac_bits = 0; ///< meaningful only when format.is_fixed()

  std::string name() const;
  friend bool operator==(const ConcreteType&, const ConcreteType&) = default;
};

} // namespace luis::numrep
