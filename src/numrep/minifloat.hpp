// Bit-level codec for small binary floating point formats (width <= 16),
// covering the three FloatEncoding layouts: Ieee (binary16-style, the
// FP8 E5M2 layout), FiniteOnly (OCP FP8 E4M3: no infinity, the all-ones
// exponent code carries finite values, only the all-ones (exp, mantissa)
// pattern is NaN), and Fnuz (no infinity, no -0, NaN is the lone
// sign-bit-only pattern; one extra low binade from re-biasing).
//
// Value-level rounding stays in soft_float.cpp (round_to_format is the
// single rounding routine every kernel shares); this codec exists for
// encode/decode — the bit patterns the exhaustive <=8-bit enumeration
// suite walks, and that the SWAR lanes of ROADMAP item 4 will pack.
#pragma once

#include <cstdint>

#include "numrep/formats.hpp"

namespace luis::numrep {

/// Field geometry of a minifloat: sign | exp_bits | mant_bits, with the
/// exponent bias implied by the encoding (Ieee: E, FiniteOnly: E - 1,
/// Fnuz: E + 1).
struct MinifloatLayout {
  int width = 0;
  int exp_bits = 0;
  int mant_bits = 0; ///< stored mantissa bits, p - 1
  int bias = 0;
};

/// True when the format's (p, E, width, encoding) are mutually consistent
/// (1 + exp_bits + mant_bits == width) and width <= 16 — the formats this
/// codec covers.
bool is_minifloat_encodable(const NumericFormat& format);

/// Geometry of an encodable format.
MinifloatLayout minifloat_layout(const NumericFormat& format);

/// Value of the bit pattern `bits` (only the low width() bits are read).
/// Total: NaN patterns decode to quiet NaN, the Ieee inf patterns to
/// +-infinity.
double minifloat_decode(const NumericFormat& format, std::uint64_t bits);

/// Encodes a value that is exactly representable in the format (quantize
/// through round_to_format first otherwise); NaN encodes to the format's
/// canonical NaN pattern. Inverse of minifloat_decode on non-NaN patterns
/// (up to the canonical NaN choice).
std::uint64_t minifloat_encode(const NumericFormat& format, double x);

/// Total-order rank of a pattern: decoded values are monotone
/// (non-strictly, because of the Ieee -0/+0 pair) in this key. Only
/// meaningful for non-NaN patterns.
std::int64_t minifloat_ordering_key(const NumericFormat& format,
                                    std::uint64_t bits);

} // namespace luis::numrep
