#include "numrep/minifloat.hpp"

#include <cmath>

#include "support/diag.hpp"

namespace luis::numrep {
namespace {

/// Exponent field width implied by (E, encoding): the inverse of the bias
/// rules in NumericFormat::min_exponent. Returns 0 when no field width
/// reproduces E under the encoding.
int exp_bits_for(const NumericFormat& f) {
  const int E = f.max_exponent();
  for (int eb = 2; eb <= 14; ++eb) {
    const int implied = f.encoding() == FloatEncoding::FiniteOnly
                            ? (1 << (eb - 1))      // bias E-1, top code finite
                            : (1 << (eb - 1)) - 1; // Ieee and Fnuz share E
    if (implied == E) return eb;
  }
  return 0;
}

} // namespace

bool is_minifloat_encodable(const NumericFormat& f) {
  if (!f.is_float() || f.width() > 16 || f.precision() < 2) return false;
  const int eb = exp_bits_for(f);
  return eb > 0 && 1 + eb + (f.precision() - 1) == f.width();
}

MinifloatLayout minifloat_layout(const NumericFormat& f) {
  LUIS_ASSERT(is_minifloat_encodable(f), "format has no minifloat layout");
  MinifloatLayout l;
  l.width = f.width();
  l.mant_bits = f.precision() - 1;
  l.exp_bits = exp_bits_for(f);
  switch (f.encoding()) {
  case FloatEncoding::Ieee: l.bias = f.max_exponent(); break;
  case FloatEncoding::FiniteOnly: l.bias = f.max_exponent() - 1; break;
  case FloatEncoding::Fnuz: l.bias = f.max_exponent() + 1; break;
  }
  return l;
}

double minifloat_decode(const NumericFormat& f, std::uint64_t bits) {
  const MinifloatLayout l = minifloat_layout(f);
  bits &= (std::uint64_t{1} << l.width) - 1;
  const bool neg = (bits >> (l.width - 1)) & 1;
  const std::uint64_t exp = (bits >> l.mant_bits) & ((1u << l.exp_bits) - 1);
  const std::uint64_t mant = bits & ((std::uint64_t{1} << l.mant_bits) - 1);
  const std::uint64_t exp_all = (1u << l.exp_bits) - 1;
  const std::uint64_t mant_all = (std::uint64_t{1} << l.mant_bits) - 1;

  switch (f.encoding()) {
  case FloatEncoding::Ieee:
    if (exp == exp_all)
      return mant == 0 ? (neg ? -HUGE_VAL : HUGE_VAL) : std::nan("");
    break;
  case FloatEncoding::FiniteOnly:
    if (exp == exp_all && mant == mant_all) return std::nan("");
    break;
  case FloatEncoding::Fnuz:
    if (neg && exp == 0 && mant == 0) return std::nan(""); // the 1000...0 pattern
    break;
  }

  double mag;
  if (exp == 0) { // subnormal (or zero): value = mant * 2^(1 - bias - m)
    mag = std::ldexp(static_cast<double>(mant), 1 - l.bias - l.mant_bits);
  } else {
    mag = std::ldexp(1.0 + std::ldexp(static_cast<double>(mant), -l.mant_bits),
                     static_cast<int>(exp) - l.bias);
  }
  return neg ? -mag : mag;
}

std::uint64_t minifloat_encode(const NumericFormat& f, double x) {
  const MinifloatLayout l = minifloat_layout(f);
  const std::uint64_t sign_bit = std::uint64_t{1} << (l.width - 1);
  const std::uint64_t exp_all = (1u << l.exp_bits) - 1;
  const std::uint64_t mant_all = (std::uint64_t{1} << l.mant_bits) - 1;

  if (std::isnan(x)) {
    switch (f.encoding()) {
    case FloatEncoding::Ieee: // quiet NaN: top mantissa bit set
      return (exp_all << l.mant_bits) | (std::uint64_t{1} << (l.mant_bits - 1));
    case FloatEncoding::FiniteOnly:
      return (exp_all << l.mant_bits) | mant_all; // +NaN pattern
    case FloatEncoding::Fnuz:
      return sign_bit;
    }
  }
  if (std::isinf(x)) {
    LUIS_ASSERT(f.encoding() == FloatEncoding::Ieee,
                "saturating encodings have no infinity pattern");
    return (std::signbit(x) ? sign_bit : 0) | (exp_all << l.mant_bits);
  }
  if (x == 0.0) {
    // Fnuz has a single zero: the sign bit pattern is NaN, not -0.
    const bool keep_sign = f.encoding() != FloatEncoding::Fnuz;
    return keep_sign && std::signbit(x) ? sign_bit : 0;
  }

  const std::uint64_t s = std::signbit(x) ? sign_bit : 0;
  const double mag = std::abs(x);
  const int e = std::ilogb(mag);
  const int emin = f.min_exponent();
  if (e < emin) { // subnormal: mant = mag / 2^(emin - m)
    const double m = std::ldexp(mag, l.mant_bits - emin);
    const auto mant = static_cast<std::uint64_t>(m);
    LUIS_ASSERT(static_cast<double>(mant) == m && mant <= mant_all,
                "value is not representable (subnormal)");
    return s | mant;
  }
  const double frac = std::ldexp(mag, l.mant_bits - e) -
                      std::ldexp(1.0, l.mant_bits); // (mag/2^e - 1) * 2^m
  const auto mant = static_cast<std::uint64_t>(frac);
  const auto exp = static_cast<std::uint64_t>(e + l.bias);
  LUIS_ASSERT(static_cast<double>(mant) == frac && mant <= mant_all &&
                  exp >= 1 && exp <= exp_all,
              "value is not representable (normal)");
  return s | (exp << l.mant_bits) | mant;
}

std::int64_t minifloat_ordering_key(const NumericFormat& f,
                                    std::uint64_t bits) {
  const MinifloatLayout l = minifloat_layout(f);
  bits &= (std::uint64_t{1} << l.width) - 1;
  const std::uint64_t sign_bit = std::uint64_t{1} << (l.width - 1);
  const auto mag = static_cast<std::int64_t>(bits & ~sign_bit);
  // Sign-magnitude to total order; -0 ranks just below +0 so the Ieee
  // zero pair stays adjacent (their decoded values are equal).
  return (bits & sign_bit) ? -mag - 1 : mag;
}

} // namespace luis::numrep
