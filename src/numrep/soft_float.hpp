// Software emulation of parametric binary floating point formats.
//
// The emulation strategy is operate-then-round: inputs are held as IEEE-754
// binary64 values that are already exactly representable in the target
// format, the operation is computed in binary64, and the result is rounded
// into the target format (precision p, maximum exponent E) with round to
// nearest, ties to even. For formats with p <= 53 and E <= 1023 — every
// format we execute (binary16, bfloat16, binary32, binary64) — a single
// binary64 operation is exact enough that the final rounding yields the
// correctly rounded target result for +, -, *; for / and sqrt the rare
// double-rounding cases are below the error floor of the experiments (the
// paper's MPE metric), and are documented in DESIGN.md.
//
// binary128/binary256 are *described* by NumericFormat for the IEBW metric
// (Table I), but cannot be executed through this emulator.
#pragma once

#include "numrep/formats.hpp"

namespace luis::numrep {

/// True if `format` can be executed by round_to_format (p <= 53, E <= 1023).
bool is_executable_float(const NumericFormat& format);

/// Rounds a binary64 value into the given floating point format: round to
/// nearest even, gradual underflow to subnormals and zero, NaN propagated.
/// Overflow behavior follows the encoding: Ieee overflows to +-infinity;
/// FiniteOnly and Fnuz have no infinity pattern and saturate at the largest
/// finite magnitude (OCP FP8 saturating conversion) — an infinite input
/// clamps the same way. `format` must be a floating point format with
/// p <= 53 and E <= 1023.
double round_to_format(const NumericFormat& format, double x);

/// Largest finite value of the format: (2 - 2^(1-p)) * 2^E, except
/// FiniteOnly where the all-ones pattern is NaN: (2 - 2^(2-p)) * 2^E.
double float_max_value(const NumericFormat& format);

/// Smallest positive normal value: 2^(1-E).
double float_min_normal(const NumericFormat& format);

/// Smallest positive subnormal value: 2^(1-E) * 2^(1-p) = 2^(2-E-p).
double float_min_subnormal(const NumericFormat& format);

// Convenience arithmetic wrappers (operate in binary64, then round).
double soft_add(const NumericFormat& f, double a, double b);
double soft_sub(const NumericFormat& f, double a, double b);
double soft_mul(const NumericFormat& f, double a, double b);
double soft_div(const NumericFormat& f, double a, double b);
double soft_rem(const NumericFormat& f, double a, double b);

} // namespace luis::numrep
