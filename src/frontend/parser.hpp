// The LUIS kernel language — a small C-like source language that lowers
// onto the IR through KernelBuilder, playing the role Clang plays in the
// paper's pipeline (Figure 1). Grammar:
//
//   kernel NAME {
//     array A[16][20] range [-1.0, 1.0];     # annotated input/output
//     scalar acc range [0.0, 100.0];         # one-element accumulator
//     acc = 0.0;
//     for i in 0 .. 16 {                     # half-open ascending
//       for j in 15 downto 0 { ... }         # inclusive descending
//       if (i < 8) { ... } else { ... }
//       A[i][0] = sqrt(A[i][0]) + acc * 2.0;
//       acc = acc + A[i][1];
//     }
//   }
//
// Expressions mix freely over Real values (array/scalar reads, real
// literals, sqrt/exp/abs/pow/min/max calls) and Int values (loop
// variables, integer literals); Int promotes to Real where a Real is
// required. Comparisons pick icmp or fcmp by operand type. '#' starts a
// comment.
#pragma once

#include <string>
#include <string_view>

#include "ir/function.hpp"

namespace luis::frontend {

struct CompileResult {
  ir::Function* function = nullptr; ///< owned by the module
  std::string error;                ///< empty on success
  int line = 0;
  int column = 0;
  bool ok() const { return error.empty(); }
};

/// Compiles one kernel definition into `module`.
CompileResult compile_kernel(ir::Module& module, std::string_view source);

} // namespace luis::frontend
