#include "frontend/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <map>

namespace luis::frontend {

const char* to_string(TokenKind kind) {
  switch (kind) {
  case TokenKind::Identifier: return "identifier";
  case TokenKind::IntLiteral: return "integer";
  case TokenKind::RealLiteral: return "real";
  case TokenKind::KwKernel: return "'kernel'";
  case TokenKind::KwArray: return "'array'";
  case TokenKind::KwScalar: return "'scalar'";
  case TokenKind::KwRange: return "'range'";
  case TokenKind::KwFor: return "'for'";
  case TokenKind::KwIn: return "'in'";
  case TokenKind::KwIf: return "'if'";
  case TokenKind::KwElse: return "'else'";
  case TokenKind::KwDownTo: return "'downto'";
  case TokenKind::LBrace: return "'{'";
  case TokenKind::RBrace: return "'}'";
  case TokenKind::LParen: return "'('";
  case TokenKind::RParen: return "')'";
  case TokenKind::LBracket: return "'['";
  case TokenKind::RBracket: return "']'";
  case TokenKind::Comma: return "','";
  case TokenKind::Semicolon: return "';'";
  case TokenKind::Assign: return "'='";
  case TokenKind::DotDot: return "'..'";
  case TokenKind::Plus: return "'+'";
  case TokenKind::Minus: return "'-'";
  case TokenKind::Star: return "'*'";
  case TokenKind::Slash: return "'/'";
  case TokenKind::Percent: return "'%'";
  case TokenKind::Lt: return "'<'";
  case TokenKind::Le: return "'<='";
  case TokenKind::Gt: return "'>'";
  case TokenKind::Ge: return "'>='";
  case TokenKind::EqEq: return "'=='";
  case TokenKind::NotEq: return "'!='";
  case TokenKind::End: return "end of input";
  case TokenKind::Error: return "error";
  }
  return "<invalid>";
}

std::vector<Token> tokenize(std::string_view source) {
  static const std::map<std::string_view, TokenKind> kKeywords = {
      {"kernel", TokenKind::KwKernel}, {"array", TokenKind::KwArray},
      {"scalar", TokenKind::KwScalar}, {"range", TokenKind::KwRange},
      {"for", TokenKind::KwFor},       {"in", TokenKind::KwIn},
      {"if", TokenKind::KwIf},         {"else", TokenKind::KwElse},
      {"downto", TokenKind::KwDownTo},
  };

  std::vector<Token> out;
  int line = 1, column = 1;
  std::size_t i = 0;
  auto emit = [&](TokenKind kind, std::string text) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.column = column;
    out.push_back(std::move(t));
  };
  auto error = [&](const std::string& msg) {
    emit(TokenKind::Error, msg);
  };

  while (i < source.size()) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      column = 1;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++column;
      ++i;
      continue;
    }
    if (c == '#') { // comment to end of line
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) ||
              source[i] == '_'))
        ++i;
      const std::string_view word = source.substr(start, i - start);
      const auto kw = kKeywords.find(word);
      emit(kw != kKeywords.end() ? kw->second : TokenKind::Identifier,
           std::string(word));
      column += static_cast<int>(i - start);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      bool is_real = false;
      while (i < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i])))
        ++i;
      // A '.' introduces a fraction — unless it is the '..' range operator.
      if (i + 1 < source.size() && source[i] == '.' && source[i + 1] != '.') {
        is_real = true;
        ++i;
        while (i < source.size() &&
               std::isdigit(static_cast<unsigned char>(source[i])))
          ++i;
      }
      if (i < source.size() && (source[i] == 'e' || source[i] == 'E')) {
        is_real = true;
        ++i;
        if (i < source.size() && (source[i] == '+' || source[i] == '-')) ++i;
        while (i < source.size() &&
               std::isdigit(static_cast<unsigned char>(source[i])))
          ++i;
      }
      const std::string text(source.substr(start, i - start));
      Token t;
      t.kind = is_real ? TokenKind::RealLiteral : TokenKind::IntLiteral;
      t.text = text;
      t.line = line;
      t.column = column;
      if (is_real)
        t.real_value = std::strtod(text.c_str(), nullptr);
      else
        t.int_value = std::atoll(text.c_str());
      out.push_back(std::move(t));
      column += static_cast<int>(text.size());
      continue;
    }
    auto two = [&](char second) {
      return i + 1 < source.size() && source[i + 1] == second;
    };
    switch (c) {
    case '{': emit(TokenKind::LBrace, "{"); break;
    case '}': emit(TokenKind::RBrace, "}"); break;
    case '(': emit(TokenKind::LParen, "("); break;
    case ')': emit(TokenKind::RParen, ")"); break;
    case '[': emit(TokenKind::LBracket, "["); break;
    case ']': emit(TokenKind::RBracket, "]"); break;
    case ',': emit(TokenKind::Comma, ","); break;
    case ';': emit(TokenKind::Semicolon, ";"); break;
    case '+': emit(TokenKind::Plus, "+"); break;
    case '-': emit(TokenKind::Minus, "-"); break;
    case '*': emit(TokenKind::Star, "*"); break;
    case '/': emit(TokenKind::Slash, "/"); break;
    case '%': emit(TokenKind::Percent, "%"); break;
    case '.':
      if (two('.')) {
        emit(TokenKind::DotDot, "..");
        ++i;
        ++column;
      } else {
        error("stray '.'");
        return out;
      }
      break;
    case '<':
      if (two('=')) {
        emit(TokenKind::Le, "<=");
        ++i;
        ++column;
      } else {
        emit(TokenKind::Lt, "<");
      }
      break;
    case '>':
      if (two('=')) {
        emit(TokenKind::Ge, ">=");
        ++i;
        ++column;
      } else {
        emit(TokenKind::Gt, ">");
      }
      break;
    case '=':
      if (two('=')) {
        emit(TokenKind::EqEq, "==");
        ++i;
        ++column;
      } else {
        emit(TokenKind::Assign, "=");
      }
      break;
    case '!':
      if (two('=')) {
        emit(TokenKind::NotEq, "!=");
        ++i;
        ++column;
      } else {
        error("stray '!'");
        return out;
      }
      break;
    default:
      error(std::string("unexpected character '") + c + "'");
      return out;
    }
    ++i;
    ++column;
  }
  emit(TokenKind::End, "");
  return out;
}

} // namespace luis::frontend
