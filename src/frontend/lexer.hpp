// Lexer for the LUIS kernel language (see frontend/parser.hpp for the
// grammar). Produces a token stream with source positions for error
// reporting.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace luis::frontend {

enum class TokenKind {
  // Literals and names.
  Identifier, IntLiteral, RealLiteral,
  // Keywords.
  KwKernel, KwArray, KwScalar, KwRange, KwFor, KwIn, KwIf, KwElse, KwDownTo,
  // Punctuation.
  LBrace, RBrace, LParen, RParen, LBracket, RBracket,
  Comma, Semicolon, Assign, DotDot,
  // Operators.
  Plus, Minus, Star, Slash, Percent,
  Lt, Le, Gt, Ge, EqEq, NotEq,
  End, Error,
};

const char* to_string(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::End;
  std::string text;     ///< identifier spelling / literal spelling
  double real_value = 0.0;
  std::int64_t int_value = 0;
  int line = 1;
  int column = 1;
};

/// Tokenizes `source`. On a lexical error the last token has kind Error
/// and `text` holds the message. Comments run from '#' to end of line.
std::vector<Token> tokenize(std::string_view source);

} // namespace luis::frontend
