#include "frontend/parser.hpp"

#include <map>
#include <stdexcept>

#include "frontend/lexer.hpp"
#include "ir/kernel_builder.hpp"

namespace luis::frontend {
namespace {

using ir::BVal;
using ir::CmpPred;
using ir::IVal;
using ir::KernelBuilder;
using ir::RVal;
using ir::ScalarCell;

/// Parse-time error carrying the offending token's position.
struct ParseError : std::runtime_error {
  ParseError(const std::string& msg, const Token& at)
      : std::runtime_error(msg), line(at.line), column(at.column) {}
  int line, column;
};

/// A value of either type domain during expression parsing.
struct Val {
  bool is_real = false;
  RVal real;
  IVal index;
};

class Parser {
public:
  Parser(ir::Module& module, std::string_view source)
      : module_(module), tokens_(tokenize(source)) {}

  ir::Function* run() {
    if (!tokens_.empty() && tokens_.back().kind == TokenKind::Error)
      throw ParseError(tokens_.back().text, tokens_.back());

    expect(TokenKind::KwKernel);
    const std::string name = expect(TokenKind::Identifier).text;
    kb_ = std::make_unique<KernelBuilder>(module_, name);
    expect(TokenKind::LBrace);
    while (at(TokenKind::KwArray) || at(TokenKind::KwScalar)) parse_decl();
    while (!at(TokenKind::RBrace)) parse_stmt();
    expect(TokenKind::RBrace);
    expect(TokenKind::End);
    return kb_->finish();
  }

private:
  // --- Token plumbing ---
  const Token& peek(int ahead = 0) const {
    const std::size_t i = std::min(pos_ + static_cast<std::size_t>(ahead),
                                   tokens_.size() - 1);
    return tokens_[i];
  }
  bool at(TokenKind kind) const { return peek().kind == kind; }
  const Token& advance() { return tokens_[pos_++]; }
  const Token& expect(TokenKind kind) {
    if (!at(kind))
      throw ParseError(std::string("expected ") + to_string(kind) + ", found " +
                           to_string(peek().kind),
                       peek());
    return advance();
  }
  bool accept(TokenKind kind) {
    if (!at(kind)) return false;
    advance();
    return true;
  }

  // --- Declarations ---
  double parse_signed_number() {
    const bool neg = accept(TokenKind::Minus);
    const Token& t = advance();
    double v;
    if (t.kind == TokenKind::RealLiteral)
      v = t.real_value;
    else if (t.kind == TokenKind::IntLiteral)
      v = static_cast<double>(t.int_value);
    else
      throw ParseError("expected a number", t);
    return neg ? -v : v;
  }

  void parse_decl() {
    if (accept(TokenKind::KwArray)) {
      const std::string name = expect(TokenKind::Identifier).text;
      std::vector<std::int64_t> dims;
      while (accept(TokenKind::LBracket)) {
        dims.push_back(expect(TokenKind::IntLiteral).int_value);
        expect(TokenKind::RBracket);
      }
      if (dims.empty())
        throw ParseError("array needs at least one dimension", peek());
      expect(TokenKind::KwRange);
      expect(TokenKind::LBracket);
      const double lo = parse_signed_number();
      expect(TokenKind::Comma);
      const double hi = parse_signed_number();
      expect(TokenKind::RBracket);
      expect(TokenKind::Semicolon);
      arrays_[name] = kb_->array(name, dims, lo, hi);
      return;
    }
    expect(TokenKind::KwScalar);
    const std::string name = expect(TokenKind::Identifier).text;
    expect(TokenKind::KwRange);
    expect(TokenKind::LBracket);
    const double lo = parse_signed_number();
    expect(TokenKind::Comma);
    const double hi = parse_signed_number();
    expect(TokenKind::RBracket);
    expect(TokenKind::Semicolon);
    scalars_.emplace(name, kb_->scalar(name, lo, hi));
  }

  // --- Statements ---
  void parse_stmt() {
    if (at(TokenKind::KwFor)) {
      parse_for();
      return;
    }
    if (at(TokenKind::KwIf)) {
      parse_if();
      return;
    }
    parse_assignment();
  }

  void parse_for() {
    expect(TokenKind::KwFor);
    const Token name = expect(TokenKind::Identifier);
    if (loop_vars_.count(name.text) || arrays_.count(name.text) ||
        scalars_.count(name.text))
      throw ParseError("loop variable '" + name.text + "' shadows a name", name);
    expect(TokenKind::KwIn);
    const IVal begin = parse_index_expr();
    const bool descending = at(TokenKind::KwDownTo);
    if (!descending) expect(TokenKind::DotDot);
    else advance();
    const IVal end = parse_index_expr();
    expect(TokenKind::LBrace);
    const std::size_t body_start = pos_;

    // KernelBuilder's loop body is a callback; re-enter the parser there.
    auto body = [&](IVal iv) {
      loop_vars_[name.text] = iv;
      pos_ = body_start;
      while (!at(TokenKind::RBrace)) parse_stmt();
      loop_vars_.erase(name.text);
    };
    if (descending)
      kb_->for_down(name.text, begin, end, body);
    else
      kb_->for_loop(name.text, begin, end, body);
    expect(TokenKind::RBrace);
  }

  void parse_if() {
    expect(TokenKind::KwIf);
    expect(TokenKind::LParen);
    const BVal cond = parse_condition();
    expect(TokenKind::RParen);
    expect(TokenKind::LBrace);
    const std::size_t then_start = pos_;
    // First scan: find the matching close brace so we can locate 'else'.
    skip_block();
    const std::size_t after_then = pos_;
    const bool has_else = accept(TokenKind::KwElse);
    std::size_t else_start = 0, after_else = after_then;
    if (has_else) {
      expect(TokenKind::LBrace);
      else_start = pos_;
      skip_block();
      after_else = pos_;
    }

    auto then_body = [&] {
      pos_ = then_start;
      while (!at(TokenKind::RBrace)) parse_stmt();
    };
    if (has_else) {
      auto else_body = [&] {
        pos_ = else_start;
        while (!at(TokenKind::RBrace)) parse_stmt();
      };
      kb_->if_then_else(cond, then_body, else_body);
    } else {
      kb_->if_then(cond, then_body);
    }
    pos_ = after_else;
  }

  /// Skips a balanced { ... } body (the opening brace already consumed),
  /// leaving the cursor after the closing brace.
  void skip_block() {
    int depth = 1;
    while (depth > 0) {
      const Token& t = advance();
      if (t.kind == TokenKind::LBrace) ++depth;
      if (t.kind == TokenKind::RBrace) --depth;
      if (t.kind == TokenKind::End)
        throw ParseError("unterminated block", t);
    }
  }

  void parse_assignment() {
    const Token name = expect(TokenKind::Identifier);
    if (arrays_.count(name.text)) {
      ir::Array* arr = arrays_.at(name.text);
      std::vector<IVal> indices = parse_indices(arr, name);
      expect(TokenKind::Assign);
      const RVal value = as_real(parse_expr(), name);
      expect(TokenKind::Semicolon);
      // store wants an initializer_list; spell out the ranks we support.
      store_indexed(value, arr, indices, name);
      return;
    }
    if (scalars_.count(name.text)) {
      expect(TokenKind::Assign);
      const RVal value = as_real(parse_expr(), name);
      expect(TokenKind::Semicolon);
      kb_->set(scalars_.at(name.text), value);
      return;
    }
    throw ParseError("assignment to unknown name '" + name.text + "'", name);
  }

  std::vector<IVal> parse_indices(const ir::Array* arr, const Token& at_tok) {
    std::vector<IVal> indices;
    while (accept(TokenKind::LBracket)) {
      indices.push_back(parse_index_expr());
      expect(TokenKind::RBracket);
    }
    if (indices.size() != arr->rank())
      throw ParseError("array '" + arr->name() + "' expects " +
                           std::to_string(arr->rank()) + " indices",
                       at_tok);
    return indices;
  }

  void store_indexed(RVal value, ir::Array* arr, const std::vector<IVal>& idx,
                     const Token& at_tok) {
    switch (idx.size()) {
    case 1: kb_->store(value, arr, {idx[0]}); return;
    case 2: kb_->store(value, arr, {idx[0], idx[1]}); return;
    case 3: kb_->store(value, arr, {idx[0], idx[1], idx[2]}); return;
    default: throw ParseError("arrays of rank > 3 are not supported", at_tok);
    }
  }

  RVal load_indexed(ir::Array* arr, const std::vector<IVal>& idx,
                    const Token& at_tok) {
    switch (idx.size()) {
    case 1: return kb_->load(arr, {idx[0]});
    case 2: return kb_->load(arr, {idx[0], idx[1]});
    case 3: return kb_->load(arr, {idx[0], idx[1], idx[2]});
    default: throw ParseError("arrays of rank > 3 are not supported", at_tok);
    }
  }

  // --- Conditions ---
  BVal parse_condition() {
    const Val lhs = parse_expr();
    CmpPred pred;
    const Token& op = advance();
    switch (op.kind) {
    case TokenKind::Lt: pred = CmpPred::LT; break;
    case TokenKind::Le: pred = CmpPred::LE; break;
    case TokenKind::Gt: pred = CmpPred::GT; break;
    case TokenKind::Ge: pred = CmpPred::GE; break;
    case TokenKind::EqEq: pred = CmpPred::EQ; break;
    case TokenKind::NotEq: pred = CmpPred::NE; break;
    default: throw ParseError("expected a comparison operator", op);
    }
    const Val rhs = parse_expr();
    if (lhs.is_real || rhs.is_real)
      return kb_->fcmp(pred, as_real(lhs, op), as_real(rhs, op));
    return kb_->icmp(pred, lhs.index, rhs.index);
  }

  // --- Expressions (shared grammar for both type domains) ---
  Val parse_expr() {
    Val lhs = parse_term();
    while (at(TokenKind::Plus) || at(TokenKind::Minus)) {
      const Token& op = advance();
      Val rhs = parse_term();
      lhs = combine(lhs, rhs, op);
    }
    return lhs;
  }

  Val parse_term() {
    Val lhs = parse_factor();
    while (at(TokenKind::Star) || at(TokenKind::Slash) || at(TokenKind::Percent)) {
      const Token& op = advance();
      Val rhs = parse_factor();
      lhs = combine(lhs, rhs, op);
    }
    return lhs;
  }

  Val combine(const Val& lhs, const Val& rhs, const Token& op) {
    Val out;
    if (lhs.is_real || rhs.is_real) {
      const RVal a = as_real(lhs, op);
      const RVal b = as_real(rhs, op);
      out.is_real = true;
      switch (op.kind) {
      case TokenKind::Plus: out.real = kb_->add(a, b); break;
      case TokenKind::Minus: out.real = kb_->sub(a, b); break;
      case TokenKind::Star: out.real = kb_->mul(a, b); break;
      case TokenKind::Slash: out.real = kb_->div(a, b); break;
      case TokenKind::Percent: out.real = kb_->rem(a, b); break;
      default: throw ParseError("bad operator", op);
      }
      return out;
    }
    out.is_real = false;
    switch (op.kind) {
    case TokenKind::Plus: out.index = kb_->iadd(lhs.index, rhs.index); break;
    case TokenKind::Minus: out.index = kb_->isub(lhs.index, rhs.index); break;
    case TokenKind::Star: out.index = kb_->imul(lhs.index, rhs.index); break;
    case TokenKind::Slash: out.index = kb_->idiv(lhs.index, rhs.index); break;
    case TokenKind::Percent: {
      ir::IRBuilder& b = kb_->ir();
      out.index = IVal{b.irem(lhs.index.value, rhs.index.value), kb_.get()};
      break;
    }
    default: throw ParseError("bad operator", op);
    }
    return out;
  }

  Val parse_factor() {
    if (accept(TokenKind::Minus)) {
      Val v = parse_factor();
      if (v.is_real) {
        v.real = kb_->neg(v.real);
      } else {
        v.index = kb_->isub(kb_->idx(0), v.index);
      }
      return v;
    }
    if (accept(TokenKind::LParen)) {
      const Val v = parse_expr();
      expect(TokenKind::RParen);
      return v;
    }
    const Token t = advance();
    Val out;
    switch (t.kind) {
    case TokenKind::RealLiteral:
      out.is_real = true;
      out.real = kb_->real(t.real_value);
      return out;
    case TokenKind::IntLiteral:
      out.is_real = false;
      out.index = kb_->idx(t.int_value);
      return out;
    case TokenKind::Identifier:
      return parse_reference(t);
    default:
      throw ParseError(std::string("unexpected ") + to_string(t.kind) +
                           " in expression",
                       t);
    }
  }

  Val parse_reference(const Token& name) {
    Val out;
    // Math intrinsics.
    if (at(TokenKind::LParen)) {
      advance();
      std::vector<Val> args;
      if (!at(TokenKind::RParen)) {
        args.push_back(parse_expr());
        while (accept(TokenKind::Comma)) args.push_back(parse_expr());
      }
      expect(TokenKind::RParen);
      auto arg = [&](std::size_t i) -> RVal {
        if (i >= args.size())
          throw ParseError("missing argument to " + name.text, name);
        return as_real(args[i], name);
      };
      out.is_real = true;
      if (name.text == "sqrt") out.real = kb_->sqrt(arg(0));
      else if (name.text == "exp") out.real = kb_->exp(arg(0));
      else if (name.text == "abs") out.real = kb_->abs(arg(0));
      else if (name.text == "pow") out.real = kb_->pow(arg(0), arg(1));
      else if (name.text == "min") out.real = kb_->fmin(arg(0), arg(1));
      else if (name.text == "max") out.real = kb_->fmax(arg(0), arg(1));
      else
        throw ParseError("unknown function '" + name.text + "'", name);
      return out;
    }
    if (arrays_.count(name.text)) {
      ir::Array* arr = arrays_.at(name.text);
      const std::vector<IVal> indices = parse_indices(arr, name);
      out.is_real = true;
      out.real = load_indexed(arr, indices, name);
      return out;
    }
    if (scalars_.count(name.text)) {
      out.is_real = true;
      out.real = kb_->get(scalars_.at(name.text));
      return out;
    }
    if (loop_vars_.count(name.text)) {
      out.is_real = false;
      out.index = loop_vars_.at(name.text);
      return out;
    }
    throw ParseError("unknown name '" + name.text + "'", name);
  }

  // Index expressions are ordinary expressions restricted to Int.
  IVal parse_index_expr() {
    const Token& where = peek();
    const Val v = parse_expr();
    if (v.is_real)
      throw ParseError("expected an integer index expression", where);
    return v.index;
  }

  RVal as_real(const Val& v, const Token& where) {
    if (v.is_real) return v.real;
    // Int promotes to Real through an explicit conversion...
    if (v.index.value->is_constant()) {
      // ...except literals, which become real literals directly.
      const auto* c = static_cast<const ir::ConstInt*>(v.index.value);
      return kb_->real(static_cast<double>(c->value()));
    }
    (void)where;
    return kb_->to_real(v.index);
  }

  ir::Module& module_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::unique_ptr<KernelBuilder> kb_;
  std::map<std::string, ir::Array*> arrays_;
  std::map<std::string, ScalarCell> scalars_;
  std::map<std::string, IVal> loop_vars_;
};

} // namespace

CompileResult compile_kernel(ir::Module& module, std::string_view source) {
  CompileResult result;
  try {
    Parser parser(module, source);
    result.function = parser.run();
  } catch (const ParseError& e) {
    result.error = e.what();
    result.line = e.line;
    result.column = e.column;
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  return result;
}

} // namespace luis::frontend
