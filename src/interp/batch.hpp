// Batched multi-lane execution of compiled programs.
//
// run_batch_programs() runs N programs compiled from the SAME Function by
// one compile_programs() call — identical control skeletons, different
// numeric bindings — over a struct-of-arrays register file: real register
// slot r of lane l lives at reals[r * L + l]. Control flow (integer
// arithmetic, addressing, comparisons on integers, branches, phi moves of
// int registers) is type-independent, so it executes once per *lane
// group* instead of once per lane; only the real-valued work fans out.
//
// Lane groups and retirement. All lanes start in one lockstep group. A
// CondBr whose condition differs across lanes (conditions derive from
// FCmp, which sees per-lane quantized values) splits the group; the two
// halves proceed independently, each with a private copy of the uniform
// (type-independent) registers. A group retires all of its lanes at once
// on Ret, on a trap (phi with no incoming edge, fall-through, step
// limit), carrying the exact scalar-VM diagnostics and step counts —
// which is how one lane can trap and retire while the survivors keep
// running. Within a group every lane observes identical control
// decisions, so per-lane steps, counters, ranges, and trap messages are
// bit-identical to running each lane alone through run_program().
//
// SWAR packing. Eligible fixed-point additive ops (Add/Sub where every
// lane in a run shares one FixedSpec of width w with w + 2 <= 16 and
// needs no operand conversion) execute packed: raw integers are biased
// into 2^ceil-width fields of one 64-bit word (8 lanes for w <= 6, 4 for
// w <= 14, 2 for w <= 16 with 32-bit fields) and added in a single
// integer op, then unpacked, saturated, and rescaled. In-format fixed
// values are exact multiples of 2^-f whose scaled sum fits a double
// exactly, so the packed path reproduces quantize_fixed() bit for bit.
// See docs/INTERP.md ("Batched execution") for the eligibility rules and
// why FP8 lanes are not packed.
#pragma once

#include <span>
#include <vector>

#include "interp/bytecode.hpp"

namespace luis::interp {

/// One execution lane: a program from a compile_programs() batch plus the
/// lane's private array store (seeded with inputs, receives outputs) and
/// optional per-lane instrumentation (same layouts as
/// RunOptions::vm_profile / ::error_profile).
struct BatchLane {
  const CompiledProgram* program = nullptr;
  ArrayStore* store = nullptr;
  VmProfile* profile = nullptr;
  ErrorProfile* errors = nullptr;
};

struct BatchRunOptions {
  /// Scalar run options applied to every lane (max_steps, count_costs,
  /// range tracking, ...). RunOptions::vm_profile and ::error_profile are
  /// ignored — use BatchLane::profile / ::errors for per-lane attribution.
  RunOptions run;
  /// Pack eligible <=16-bit fixed-point additive lanes into 64-bit SWAR
  /// words. Bit-identical either way; off is useful for differential
  /// testing of the packing itself. Shadow execution (any lane with an
  /// ErrorProfile) disables packing for the whole batch — the packed path
  /// computes no shadow values, and packing is bit-identical anyway.
  bool swar = true;
};

/// Executes all lanes and returns one RunResult per lane, bit-identical
/// (outputs, steps, counters, ranges, trap diagnostics) to running each
/// lane's program alone through run_program(). `f` must have the printed
/// IR the programs were compiled from; as in run_program() it is only
/// consulted to attribute register ranges.
std::vector<RunResult>
run_batch_programs(std::span<const BatchLane> lanes, const ir::Function& f,
                   const BatchRunOptions& options = {});

} // namespace luis::interp
