#include "interp/batch.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>

#include "obs/trace.hpp"
#include "support/diag.hpp"
#include "support/statistics.hpp"

namespace luis::interp {

namespace {

using ir::Instruction;
using ir::Opcode;

template <typename T> bool compare(ir::CmpPred pred, T a, T b) {
  switch (pred) {
  case ir::CmpPred::EQ: return a == b;
  case ir::CmpPred::NE: return a != b;
  case ir::CmpPred::LT: return a < b;
  case ir::CmpPred::LE: return a <= b;
  case ir::CmpPred::GT: return a > b;
  case ir::CmpPred::GE: return a >= b;
  }
  LUIS_UNREACHABLE("unknown predicate");
}

/// Compile-time taint analysis over the shared skeleton: which integer /
/// boolean registers can differ across lanes. Real registers are always
/// per-lane (their values are quantized into per-lane formats). The only
/// source of lane-dependence outside the reals is RealCmp (it compares
/// per-lane stored representations); the taint propagates through int
/// arithmetic, int comparisons, int selects, and int phi moves. Because
/// every lane of a *group* has the same control history, a register whose
/// sources are all untainted holds one value per group — which is what
/// lets the executor run the control skeleton once per group instead of
/// once per lane.
std::vector<std::uint8_t> compute_varying(const CompiledProgram& p) {
  std::vector<std::uint8_t> varying(static_cast<std::size_t>(p.num_regs), 0);
  const auto tainted = [&](const IntArg& a) {
    return a.reg >= 0 && varying[static_cast<std::size_t>(a.reg)];
  };
  bool changed = true;
  while (changed) {
    changed = false;
    const auto mark = [&](std::int32_t r) {
      if (r >= 0 && !varying[static_cast<std::size_t>(r)]) {
        varying[static_cast<std::size_t>(r)] = 1;
        changed = true;
      }
    };
    for (const BInst& bi : p.code) {
      switch (bi.kind) {
      case BInst::Kind::RealCmp:
        mark(bi.dst);
        break;
      case BInst::Kind::IntCmp:
      case BInst::Kind::IntArith:
        if (tainted(bi.ia) || tainted(bi.ib)) mark(bi.dst);
        break;
      case BInst::Kind::SelectInt:
        if ((bi.cond >= 0 && varying[static_cast<std::size_t>(bi.cond)]) ||
            tainted(bi.ia) || tainted(bi.ib))
          mark(bi.dst);
        break;
      default:
        break;
      }
    }
    for (const PhiMove& m : p.moves)
      if (!m.is_real && m.isrc.reg >= 0 &&
          varying[static_cast<std::size_t>(m.isrc.reg)])
        mark(m.dst);
  }
  return varying;
}

/// A set of lanes executing in lockstep: same pc, same control history.
/// Type-independent ("uniform") registers are stored once per group; a
/// divergent CondBr splits the group, each half inheriting a copy.
struct Group {
  std::vector<std::int32_t> lanes;
  long steps = 0;
  long non_real = 0;
  std::int32_t edge = -1;  ///< edge to apply when (re)scheduled
  std::int32_t block = -1; ///< block entered after the edge
  std::vector<std::int64_t> uints;
  std::vector<std::uint8_t> ubools;
};

} // namespace

std::vector<RunResult>
run_batch_programs(std::span<const BatchLane> lanes, const ir::Function& f,
                   const BatchRunOptions& options) {
  const auto L = static_cast<std::int32_t>(lanes.size());
  LUIS_ASSERT(L > 0, "run_batch_programs needs at least one lane");
  const CompiledProgram& p0 = *lanes[0].program;
  const RunOptions& opt = options.run;
  std::vector<RunResult> results(static_cast<std::size_t>(L));

  // Shape checks: every lane must come from one compile_programs() batch
  // over this function (identical skeleton).
  LUIS_ASSERT(f.instruction_count() == p0.source_instruction_count,
              "compiled program does not match the function shape");
  LUIS_ASSERT(f.arrays().size() == p0.arrays.size(),
              "compiled program does not match the function arrays");
  std::vector<const CompiledProgram*> progs(static_cast<std::size_t>(L));
  for (std::int32_t l = 0; l < L; ++l) {
    const CompiledProgram& p = *lanes[static_cast<std::size_t>(l)].program;
    progs[static_cast<std::size_t>(l)] = &p;
    LUIS_ASSERT(p.code.size() == p0.code.size() &&
                    p.num_regs == p0.num_regs &&
                    p.blocks.size() == p0.blocks.size() &&
                    p.edges.size() == p0.edges.size() &&
                    p.moves.size() == p0.moves.size() &&
                    p.arrays.size() == p0.arrays.size() &&
                    p.entry_edge == p0.entry_edge,
                "batch lanes do not share one compiled skeleton");
  }

  const bool track_regs = opt.track_register_ranges;
  const bool track_arrays = opt.track_array_ranges;

  // Per-lane array range observation (same NaN-skipping min/max as the
  // scalar VM).
  std::vector<std::map<std::string, std::pair<double, double>>> array_ranges(
      static_cast<std::size_t>(L));
  const auto observe_array = [&](std::int32_t l, const std::string& name,
                                 double v) {
    if (std::isnan(v)) return;
    auto [it, fresh] =
        array_ranges[static_cast<std::size_t>(l)].try_emplace(name, v, v);
    if (!fresh) {
      it->second.first = std::min(it->second.first, v);
      it->second.second = std::max(it->second.second, v);
    }
  };

  // Shadow execution: when any lane carries an ErrorProfile, the batch
  // maintains a lockstep binary64 shadow for every lane (uniform indexing
  // keeps the hot loop simple; sweep batches enable errors for all lanes
  // or none). Deviations are recorded only into lanes that asked.
  bool any_errors = false;
  for (std::int32_t l = 0; l < L; ++l) {
    ErrorProfile* const ep = lanes[static_cast<std::size_t>(l)].errors;
    if (!ep) continue;
    any_errors = true;
    ep->instr.assign(p0.code.size(), ErrorCell{});
    ep->moves.assign(p0.moves.size(), ErrorCell{});
    ep->first_spike_step = -1;
    ep->first_spike_pc = -1;
    ep->first_spike_src = -1;
    ep->first_spike_rel = 0.0;
    ep->control_divergences = 0;
    ep->first_control_divergence_step = -1;
    ep->arrays.clear();
    ep->program_mpe = 0.0;
    ep->finalized = false;
    ep->shadow_arrays.clear();
  }

  // Bind every lane's array buffers by name and quantize initial contents
  // with the lane's own array formats: buffers[array * L + lane]. Shadow
  // buffers capture the raw (pre-quantization) contents.
  std::vector<std::vector<double>*> buffers(p0.arrays.size() *
                                            static_cast<std::size_t>(L));
  std::vector<std::vector<double>> shadow_buffers(
      any_errors ? p0.arrays.size() * static_cast<std::size_t>(L) : 0);
  for (std::int32_t l = 0; l < L; ++l) {
    const CompiledProgram& p = *progs[static_cast<std::size_t>(l)];
    ArrayStore& store = *lanes[static_cast<std::size_t>(l)].store;
    for (std::size_t ai = 0; ai < p.arrays.size(); ++ai) {
      const ArrayBinding& ab = p.arrays[ai];
      auto& buf = store[ab.name];
      buf.resize(static_cast<std::size_t>(ab.element_count), 0.0);
      if (any_errors)
        shadow_buffers[ai * static_cast<std::size_t>(L) +
                       static_cast<std::size_t>(l)] = buf;
      const numrep::QuantSpec& spec =
          p.specs[static_cast<std::size_t>(ab.spec)];
      for (double& v : buf) {
        v = ab.init_conv(spec, v);
        if (track_arrays) observe_array(l, ab.name, v);
      }
      buffers[ai * static_cast<std::size_t>(L) +
              static_cast<std::size_t>(l)] = &buf;
    }
  }

  if (p0.blocks.empty()) {
    for (RunResult& r : results) r.error = "no entry block";
    return results;
  }

  // Register ordinal -> Instruction*, for range attribution only.
  std::vector<const Instruction*> inst_of;
  std::vector<std::map<const Instruction*, std::pair<double, double>>>
      register_ranges(static_cast<std::size_t>(L));
  if (track_regs) {
    inst_of.reserve(static_cast<std::size_t>(p0.num_regs));
    for (const auto& bb : f.blocks())
      for (const auto& inst : bb->instructions()) inst_of.push_back(inst.get());
  }
  const auto observe_reg = [&](std::int32_t l, std::int32_t r, double v) {
    if (std::isnan(v)) return;
    auto [it, fresh] = register_ranges[static_cast<std::size_t>(l)].try_emplace(
        inst_of[static_cast<std::size_t>(r)], v, v);
    if (!fresh) {
      it->second.first = std::min(it->second.first, v);
      it->second.second = std::max(it->second.second, v);
    }
  };

  // Struct-of-arrays register file: slot r of lane l at [r * L + l].
  const auto nregs = static_cast<std::size_t>(p0.num_regs);
  std::vector<double> reals(nregs * static_cast<std::size_t>(L), 0.0);
  std::vector<double> shadow_reals(
      any_errors ? nregs * static_cast<std::size_t>(L) : 0, 0.0);
  std::vector<std::int64_t> vints(nregs * static_cast<std::size_t>(L), 0);
  std::vector<std::uint8_t> vbools(nregs * static_cast<std::size_t>(L), 0);
  const std::vector<std::uint8_t> varying = compute_varying(p0);

  // Per-lane dense counters over the lane's own counter table.
  std::vector<std::vector<long>> counts(static_cast<std::size_t>(L));
  for (std::int32_t l = 0; l < L; ++l)
    counts[static_cast<std::size_t>(l)].assign(
        progs[static_cast<std::size_t>(l)]->counter_keys.size(), 0);

  // Per-lane profiles (per-pc counts attributed to each lane).
  bool any_profile = false;
  for (std::int32_t l = 0; l < L; ++l) {
    VmProfile* const prof = lanes[static_cast<std::size_t>(l)].profile;
    if (!prof) continue;
    any_profile = true;
    prof->instr_executions.assign(p0.code.size(), 0);
    prof->edge_applications.assign(p0.edges.size(), 0);
    prof->select_real_first.assign(p0.code.size(), 0);
  }

  const auto fetch_real = [&](const RealArg& a, std::int32_t l) {
    double v = a.reg >= 0 ? reals[static_cast<std::size_t>(a.reg) *
                                      static_cast<std::size_t>(L) +
                                  static_cast<std::size_t>(l)]
                          : a.imm;
    if (a.cast_counter >= 0)
      ++counts[static_cast<std::size_t>(l)]
              [static_cast<std::size_t>(a.cast_counter)];
    if (a.conv)
      v = a.conv(progs[static_cast<std::size_t>(l)]
                     ->specs[static_cast<std::size_t>(a.spec)],
                 v);
    return v;
  };
  const auto fetch_exact = [&](const RealArg& a, std::int32_t l) {
    if (a.cast_counter >= 0)
      ++counts[static_cast<std::size_t>(l)]
              [static_cast<std::size_t>(a.cast_counter)];
    return a.reg >= 0 ? reals[static_cast<std::size_t>(a.reg) *
                                  static_cast<std::size_t>(L) +
                              static_cast<std::size_t>(l)]
                      : a.imm;
  };
  // Shadow operand fetch / register write: raw values, never converted.
  const auto fetch_shadow = [&](const RealArg& a, std::int32_t l) {
    return a.reg >= 0 ? shadow_reals[static_cast<std::size_t>(a.reg) *
                                         static_cast<std::size_t>(L) +
                                     static_cast<std::size_t>(l)]
                      : a.shadow_imm;
  };
  const auto set_shadow = [&](std::int32_t r, std::int32_t l, double s) {
    shadow_reals[static_cast<std::size_t>(r) * static_cast<std::size_t>(L) +
                 static_cast<std::size_t>(l)] = s;
  };
  // Same deviation accounting as the scalar VM's record() — step counts,
  // spike placement, and cell contents are bit-identical per lane.
  const auto record = [&](std::int32_t l, ErrorCell& cell, double q, double s,
                          std::int32_t at_pc, std::int32_t at_src, long step) {
    ErrorProfile& ep = *lanes[static_cast<std::size_t>(l)].errors;
    double abs_err = std::fabs(q - s);
    if (std::isnan(abs_err)) abs_err = std::numeric_limits<double>::infinity();
    double rel_err;
    if (std::fabs(s) > 0.0)
      rel_err = abs_err / std::fabs(s);
    else
      rel_err = abs_err > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
    const bool spike = rel_err > ep.spike_rel_threshold &&
                       cell.max_rel <= ep.spike_rel_threshold;
    cell.observe(abs_err, rel_err);
    if (spike) {
      if (ep.first_spike_step < 0) {
        ep.first_spike_step = step;
        ep.first_spike_pc = at_pc;
        ep.first_spike_src = at_src;
        ep.first_spike_rel = rel_err;
      }
      obs::instant("vm.error_spike", "vm",
                   obs::Args()
                       .str("function", p0.function_name)
                       .num("lane", l)
                       .num("pc", at_pc)
                       .num("src", at_src)
                       .num("rel", rel_err)
                       .num("step", step)
                       .done());
    }
  };

  // Integer/boolean reads route to the group's uniform copy or the
  // per-lane slot depending on the taint analysis.
  const auto geti = [&](const IntArg& a, const Group& g, std::int32_t l) {
    if (a.reg < 0) return a.imm;
    const auto r = static_cast<std::size_t>(a.reg);
    return varying[r] ? vints[r * static_cast<std::size_t>(L) +
                              static_cast<std::size_t>(l)]
                      : g.uints[r];
  };
  const auto getb = [&](std::int32_t reg, const Group& g, std::int32_t l) {
    const auto r = static_cast<std::size_t>(reg);
    return (varying[r] ? vbools[r * static_cast<std::size_t>(L) +
                                static_cast<std::size_t>(l)]
                       : g.ubools[r]) != 0;
  };

  // Does any index operand of this Load/Store differ across lanes?
  std::vector<std::uint8_t> index_varying(p0.code.size(), 0);
  for (std::size_t pc = 0; pc < p0.code.size(); ++pc) {
    const BInst& bi = p0.code[pc];
    if (bi.kind != BInst::Kind::Load && bi.kind != BInst::Kind::Store) continue;
    for (std::int32_t d = 0; d < bi.index_count; ++d) {
      const IntArg& a =
          p0.index_args[static_cast<std::size_t>(bi.index_start + d)];
      if (a.reg >= 0 && varying[static_cast<std::size_t>(a.reg)])
        index_varying[pc] = 1;
    }
  }

  const auto flat_index = [&](const BInst& bi, const Group& g,
                              std::int32_t l) {
    const ArrayBinding& ab = p0.arrays[static_cast<std::size_t>(bi.array)];
    std::size_t flat = 0;
    for (std::int32_t d = 0; d < bi.index_count; ++d) {
      const std::int64_t idx = geti(
          p0.index_args[static_cast<std::size_t>(bi.index_start + d)], g, l);
      LUIS_ASSERT(idx >= 0 && idx < ab.dims[static_cast<std::size_t>(d)],
                  "array index out of bounds on " + ab.name);
      flat = flat * static_cast<std::size_t>(
                        ab.dims[static_cast<std::size_t>(d)]) +
             static_cast<std::size_t>(idx);
    }
    return flat;
  };

  // SWAR eligibility, resolved once per (pc, lane): an Arith2 Add/Sub in a
  // fixed format of width w with w + 2 <= 16 (so the biased field fits an
  // 8/16-bit subword; widths 15..16 use 32-bit fields) whose operands need
  // no conversion and bill no cast — i.e. both are already in the result
  // format, which makes the packed integer add exact. FP8 lanes are never
  // packed: their ops are dominated by the software decode/encode, not the
  // add itself (see docs/INTERP.md).
  std::vector<const numrep::FixedSpec*> swar_spec;
  if (options.swar && L > 1 && !any_errors) {
    swar_spec.assign(p0.code.size() * static_cast<std::size_t>(L), nullptr);
    for (std::size_t pc = 0; pc < p0.code.size(); ++pc) {
      const BInst& b0 = p0.code[pc];
      if (b0.op != Opcode::Add && b0.op != Opcode::Sub) continue;
      for (std::int32_t l = 0; l < L; ++l) {
        const CompiledProgram& p = *progs[static_cast<std::size_t>(l)];
        const BInst& bl = p.code[pc];
        if (bl.kind != BInst::Kind::Arith2) continue;
        const numrep::QuantSpec& spec =
            p.specs[static_cast<std::size_t>(bl.spec)];
        if (!spec.format.is_fixed()) continue;
        if (spec.fixed.width > 16) continue;
        if (bl.a.conv || bl.b.conv || bl.a.cast_counter >= 0 ||
            bl.b.cast_counter >= 0)
          continue;
        swar_spec[pc * static_cast<std::size_t>(L) +
                  static_cast<std::size_t>(l)] = &spec.fixed;
      }
    }
  }

  // Retirement: fill the lane results exactly as run_program() would at
  // the same point. Counters and ranges are only materialized on Ret.
  const auto retire_error = [&](const Group& g, const std::string& message) {
    for (const std::int32_t l : g.lanes) {
      RunResult& r = results[static_cast<std::size_t>(l)];
      r.error = message;
      r.steps = g.steps;
    }
  };
  const auto retire_ok = [&](const Group& g) {
    for (const std::int32_t l : g.lanes) {
      RunResult& r = results[static_cast<std::size_t>(l)];
      r.ok = true;
      r.steps = g.steps;
      if (opt.count_costs) {
        const CompiledProgram& p = *progs[static_cast<std::size_t>(l)];
        const std::vector<long>& c = counts[static_cast<std::size_t>(l)];
        for (std::size_t i = 0; i < c.size(); ++i)
          if (c[i] > 0) r.counters.ops[p.counter_keys[i]] = c[i];
        r.counters.non_real_ops = g.non_real;
      }
      if (ErrorProfile* const ep = lanes[static_cast<std::size_t>(l)].errors) {
        std::vector<const std::vector<double>*> qp, sp;
        qp.reserve(p0.arrays.size());
        sp.reserve(p0.arrays.size());
        for (std::size_t ai = 0; ai < p0.arrays.size(); ++ai) {
          const std::size_t slot =
              ai * static_cast<std::size_t>(L) + static_cast<std::size_t>(l);
          qp.push_back(buffers[slot]);
          sp.push_back(&shadow_buffers[slot]);
        }
        finalize_error_profile(*ep, *progs[static_cast<std::size_t>(l)], qp,
                               sp);
      }
      r.array_ranges = std::move(array_ranges[static_cast<std::size_t>(l)]);
      r.register_ranges =
          std::move(register_ranges[static_cast<std::size_t>(l)]);
    }
  };

  // Phi scratch: simultaneous read, then commit, per lane.
  std::size_t max_moves = 0;
  for (const EdgeMoves& e : p0.edges)
    max_moves = std::max(max_moves, static_cast<std::size_t>(e.count));
  std::vector<double> scratch_real(max_moves * static_cast<std::size_t>(L));
  std::vector<double> scratch_shadow(
      any_errors ? max_moves * static_cast<std::size_t>(L) : 0);
  std::vector<std::int64_t> scratch_int(max_moves *
                                        static_cast<std::size_t>(L));
  std::vector<std::int64_t> scratch_uint(max_moves);

  // Applies one phi edge for the whole group. Returns false on an edge
  // trap (the caller retires the group with the message).
  std::string edge_trap_message;
  const auto apply_edge = [&](Group& g, std::int32_t id) {
    const EdgeMoves& e = p0.edges[static_cast<std::size_t>(id)];
    if (e.trap_msg >= 0) {
      edge_trap_message = p0.messages[static_cast<std::size_t>(e.trap_msg)];
      return false;
    }
    if (any_profile)
      for (const std::int32_t l : g.lanes)
        if (VmProfile* const prof = lanes[static_cast<std::size_t>(l)].profile)
          ++prof->edge_applications[static_cast<std::size_t>(id)];
    for (std::int32_t i = 0; i < e.count; ++i) {
      const PhiMove& m0 = p0.moves[static_cast<std::size_t>(e.start + i)];
      if (m0.is_real) {
        for (const std::int32_t l : g.lanes) {
          const PhiMove& ml =
              progs[static_cast<std::size_t>(l)]
                  ->moves[static_cast<std::size_t>(e.start + i)];
          scratch_real[static_cast<std::size_t>(i) *
                           static_cast<std::size_t>(L) +
                       static_cast<std::size_t>(l)] = fetch_real(ml.rsrc, l);
          if (any_errors)
            scratch_shadow[static_cast<std::size_t>(i) *
                               static_cast<std::size_t>(L) +
                           static_cast<std::size_t>(l)] =
                fetch_shadow(ml.rsrc, l);
        }
      } else if (varying[static_cast<std::size_t>(m0.dst)]) {
        for (const std::int32_t l : g.lanes)
          scratch_int[static_cast<std::size_t>(i) *
                          static_cast<std::size_t>(L) +
                      static_cast<std::size_t>(l)] = geti(m0.isrc, g, l);
      } else {
        scratch_uint[static_cast<std::size_t>(i)] =
            geti(m0.isrc, g, g.lanes.front());
      }
    }
    for (std::int32_t i = 0; i < e.count; ++i) {
      const PhiMove& m0 = p0.moves[static_cast<std::size_t>(e.start + i)];
      const auto dst = static_cast<std::size_t>(m0.dst);
      if (m0.is_real) {
        for (const std::int32_t l : g.lanes) {
          const double v = scratch_real[static_cast<std::size_t>(i) *
                                            static_cast<std::size_t>(L) +
                                        static_cast<std::size_t>(l)];
          reals[dst * static_cast<std::size_t>(L) +
                static_cast<std::size_t>(l)] = v;
          if (any_errors) {
            const double s = scratch_shadow[static_cast<std::size_t>(i) *
                                                static_cast<std::size_t>(L) +
                                            static_cast<std::size_t>(l)];
            set_shadow(m0.dst, l, s);
            if (ErrorProfile* const ep =
                    lanes[static_cast<std::size_t>(l)].errors)
              record(l, ep->moves[static_cast<std::size_t>(e.start + i)], v,
                     s, -1, m0.dst, g.steps);
          }
          if (track_regs) observe_reg(l, m0.dst, v);
        }
      } else if (varying[dst]) {
        for (const std::int32_t l : g.lanes)
          vints[dst * static_cast<std::size_t>(L) +
                static_cast<std::size_t>(l)] =
              scratch_int[static_cast<std::size_t>(i) *
                              static_cast<std::size_t>(L) +
                          static_cast<std::size_t>(l)];
      } else {
        g.uints[dst] = scratch_uint[static_cast<std::size_t>(i)];
      }
    }
    g.steps += e.count;
    return true;
  };

  // Packed fixed-point Add/Sub over a run of same-spec lanes. Raw values
  // are biased by 2^w into fields of 2^ceil(log2(w+2)) bits, summed in one
  // 64-bit op (the bias keeps every field non-negative so no carry or
  // borrow crosses a boundary), then unpacked, saturated, and rescaled —
  // bit-identical to the scalar kernel because in-format operands make
  // both the double add and the llround inside quantize_fixed exact.
  const auto swar_run = [&](const BInst& b0, std::int32_t pc, const Group& g,
                            std::size_t first, std::size_t last,
                            const numrep::FixedSpec& spec) {
    const bool is_sub = b0.op == Opcode::Sub;
    const int w = spec.width;
    const int fb = w + 2 <= 8 ? 8 : (w + 2 <= 16 ? 16 : 32);
    const std::size_t per = static_cast<std::size_t>(64 / fb);
    const std::uint64_t mask = (std::uint64_t{1} << fb) - 1;
    const std::int64_t beta = std::int64_t{1} << w;
    const std::int64_t raw_max = spec.is_signed
                                     ? (std::int64_t{1} << (w - 1)) - 1
                                     : (std::int64_t{1} << w) - 1;
    const std::int64_t raw_min =
        spec.is_signed ? -(std::int64_t{1} << (w - 1)) : 0;
    for (std::size_t k0 = first; k0 < last; k0 += per) {
      const std::size_t cnt = std::min(per, last - k0);
      std::uint64_t wa = 0, wb = 0, wbias = 0;
      for (std::size_t t = 0; t < cnt; ++t) {
        const std::int32_t l = g.lanes[k0 + t];
        const BInst& bl = progs[static_cast<std::size_t>(l)]
                              ->code[static_cast<std::size_t>(pc)];
        const double av =
            bl.a.reg >= 0 ? reals[static_cast<std::size_t>(bl.a.reg) *
                                      static_cast<std::size_t>(L) +
                                  static_cast<std::size_t>(l)]
                          : bl.a.imm;
        const double bv =
            bl.b.reg >= 0 ? reals[static_cast<std::size_t>(bl.b.reg) *
                                      static_cast<std::size_t>(L) +
                                  static_cast<std::size_t>(l)]
                          : bl.b.imm;
        const auto ma = static_cast<std::int64_t>(std::ldexp(av, spec.frac));
        const auto mb = static_cast<std::int64_t>(std::ldexp(bv, spec.frac));
        const int shift = static_cast<int>(t) * fb;
        wa |= static_cast<std::uint64_t>(ma + beta) << shift;
        wb |= static_cast<std::uint64_t>(mb + beta) << shift;
        wbias |= static_cast<std::uint64_t>(beta) << shift;
      }
      // add: fields hold (ma+b)+(mb+b) = ma+mb+2b; sub: (ma+2b)-(mb+b) =
      // ma-mb+b. Both stay in (0, 2^(w+2)) <= field size, so fieldwise.
      const std::uint64_t sum = is_sub ? (wa + wbias) - wb : wa + wb;
      const std::int64_t unbias = is_sub ? beta : 2 * beta;
      for (std::size_t t = 0; t < cnt; ++t) {
        const std::int32_t l = g.lanes[k0 + t];
        const BInst& bl = progs[static_cast<std::size_t>(l)]
                              ->code[static_cast<std::size_t>(pc)];
        std::int64_t m = static_cast<std::int64_t>(
                             (sum >> (static_cast<int>(t) * fb)) & mask) -
                         unbias;
        m = std::clamp(m, raw_min, raw_max);
        const double r = std::ldexp(static_cast<double>(m), -spec.frac);
        reals[static_cast<std::size_t>(bl.dst) * static_cast<std::size_t>(L) +
              static_cast<std::size_t>(l)] = r;
        ++counts[static_cast<std::size_t>(l)]
                [static_cast<std::size_t>(bl.op_counter)];
        if (track_regs) observe_reg(l, bl.dst, r);
      }
    }
  };

  // Initial group: every lane, lockstep, about to apply the entry edge.
  std::vector<Group> work;
  {
    Group g0;
    g0.lanes.resize(static_cast<std::size_t>(L));
    for (std::int32_t l = 0; l < L; ++l)
      g0.lanes[static_cast<std::size_t>(l)] = l;
    g0.edge = p0.entry_edge;
    g0.block = 0;
    g0.uints.assign(nregs, 0);
    g0.ubools.assign(nregs, 0);
    work.push_back(std::move(g0));
  }

  while (!work.empty()) {
    Group g = std::move(work.back());
    work.pop_back();
    if (!apply_edge(g, g.edge)) {
      retire_error(g, edge_trap_message);
      continue;
    }
    std::int32_t pc = p0.blocks[static_cast<std::size_t>(g.block)].entry;
    bool running = true;
    while (running) {
      const BInst& bi = p0.code[static_cast<std::size_t>(pc)];
      if (bi.kind == BInst::Kind::Trap) {
        retire_error(g, p0.messages[static_cast<std::size_t>(bi.trap_msg)]);
        break;
      }
      if (++g.steps > opt.max_steps) {
        retire_error(g, "step limit exceeded");
        break;
      }
      if (any_profile)
        for (const std::int32_t l : g.lanes)
          if (VmProfile* const prof =
                  lanes[static_cast<std::size_t>(l)].profile)
            ++prof->instr_executions[static_cast<std::size_t>(pc)];
      switch (bi.kind) {
      case BInst::Kind::Arith2:
      case BInst::Kind::ExactFixed2: {
        // Kinds may differ per lane (exact fixed only fires on fixed
        // result types), so dispatch on the lane's own instruction.
        const auto scalar_one = [&](std::int32_t l) {
          const CompiledProgram& p = *progs[static_cast<std::size_t>(l)];
          const BInst& bl = p.code[static_cast<std::size_t>(pc)];
          double r;
          if (bl.kind == BInst::Kind::ExactFixed2) {
            const double a = fetch_exact(bl.a, l);
            const double b = fetch_exact(bl.b, l);
            r = bl.exact(
                p.exact_binds[static_cast<std::size_t>(bl.exact_bind)], a, b);
          } else {
            const double a = fetch_real(bl.a, l);
            const double b = fetch_real(bl.b, l);
            r = bl.kernel2(p.specs[static_cast<std::size_t>(bl.spec)], a, b);
          }
          reals[static_cast<std::size_t>(bl.dst) *
                    static_cast<std::size_t>(L) +
                static_cast<std::size_t>(l)] = r;
          if (any_errors) {
            const double s = shadow_op2(bl.op, fetch_shadow(bl.a, l),
                                        fetch_shadow(bl.b, l));
            set_shadow(bl.dst, l, s);
            if (ErrorProfile* const ep =
                    lanes[static_cast<std::size_t>(l)].errors)
              record(l, ep->instr[static_cast<std::size_t>(pc)], r, s, pc,
                     bl.src, g.steps);
          }
          ++counts[static_cast<std::size_t>(l)]
                  [static_cast<std::size_t>(bl.op_counter)];
          if (track_regs) observe_reg(l, bl.dst, r);
        };
        if (!swar_spec.empty() &&
            (bi.op == Opcode::Add || bi.op == Opcode::Sub)) {
          // Pack maximal runs of adjacent same-spec eligible lanes.
          std::size_t i = 0;
          while (i < g.lanes.size()) {
            const numrep::FixedSpec* s =
                swar_spec[static_cast<std::size_t>(pc) *
                              static_cast<std::size_t>(L) +
                          static_cast<std::size_t>(g.lanes[i])];
            if (!s) {
              scalar_one(g.lanes[i]);
              ++i;
              continue;
            }
            std::size_t j = i + 1;
            while (j < g.lanes.size()) {
              const numrep::FixedSpec* s2 =
                  swar_spec[static_cast<std::size_t>(pc) *
                                static_cast<std::size_t>(L) +
                            static_cast<std::size_t>(g.lanes[j])];
              if (!s2 || !(*s2 == *s)) break;
              ++j;
            }
            if (j - i >= 2) {
              swar_run(bi, pc, g, i, j, *s);
            } else {
              scalar_one(g.lanes[i]);
            }
            i = j;
          }
        } else {
          for (const std::int32_t l : g.lanes) scalar_one(l);
        }
        ++pc;
        break;
      }
      case BInst::Kind::Arith1: {
        for (const std::int32_t l : g.lanes) {
          const CompiledProgram& p = *progs[static_cast<std::size_t>(l)];
          const BInst& bl = p.code[static_cast<std::size_t>(pc)];
          const double a = fetch_real(bl.a, l);
          const double r =
              bl.kernel1(p.specs[static_cast<std::size_t>(bl.spec)], a);
          reals[static_cast<std::size_t>(bl.dst) *
                    static_cast<std::size_t>(L) +
                static_cast<std::size_t>(l)] = r;
          if (any_errors) {
            const double s = shadow_op1(bl.op, fetch_shadow(bl.a, l));
            set_shadow(bl.dst, l, s);
            if (ErrorProfile* const ep =
                    lanes[static_cast<std::size_t>(l)].errors)
              record(l, ep->instr[static_cast<std::size_t>(pc)], r, s, pc,
                     bl.src, g.steps);
          }
          ++counts[static_cast<std::size_t>(l)]
                  [static_cast<std::size_t>(bl.op_counter)];
          if (track_regs) observe_reg(l, bl.dst, r);
        }
        ++pc;
        break;
      }
      case BInst::Kind::CastReal: {
        for (const std::int32_t l : g.lanes) {
          const BInst& bl = progs[static_cast<std::size_t>(l)]
                                ->code[static_cast<std::size_t>(pc)];
          const double r = fetch_real(bl.a, l);
          reals[static_cast<std::size_t>(bl.dst) *
                    static_cast<std::size_t>(L) +
                static_cast<std::size_t>(l)] = r;
          if (any_errors) {
            // Casts are exact in the shadow world: the binary64 value
            // passes through unconverted (same as the scalar VM).
            const double s = fetch_shadow(bl.a, l);
            set_shadow(bl.dst, l, s);
            if (ErrorProfile* const ep =
                    lanes[static_cast<std::size_t>(l)].errors)
              record(l, ep->instr[static_cast<std::size_t>(pc)], r, s, pc,
                     bl.src, g.steps);
          }
          if (track_regs) observe_reg(l, bl.dst, r);
        }
        ++pc;
        break;
      }
      case BInst::Kind::IntToReal: {
        for (const std::int32_t l : g.lanes) {
          const CompiledProgram& p = *progs[static_cast<std::size_t>(l)];
          const BInst& bl = p.code[static_cast<std::size_t>(pc)];
          const std::int64_t iv = geti(bi.ia, g, l);
          const double r =
              bl.a.conv(p.specs[static_cast<std::size_t>(bl.a.spec)],
                        static_cast<double>(iv));
          reals[static_cast<std::size_t>(bl.dst) *
                    static_cast<std::size_t>(L) +
                static_cast<std::size_t>(l)] = r;
          if (any_errors) {
            const double s = static_cast<double>(iv);
            set_shadow(bl.dst, l, s);
            if (ErrorProfile* const ep =
                    lanes[static_cast<std::size_t>(l)].errors)
              record(l, ep->instr[static_cast<std::size_t>(pc)], r, s, pc,
                     bl.src, g.steps);
          }
          ++counts[static_cast<std::size_t>(l)]
                  [static_cast<std::size_t>(bl.op_counter)];
          if (track_regs) observe_reg(l, bl.dst, r);
        }
        ++pc;
        break;
      }
      case BInst::Kind::Load: {
        std::size_t flat = 0;
        const bool uniform_index = !index_varying[static_cast<std::size_t>(pc)];
        if (uniform_index) flat = flat_index(bi, g, g.lanes.front());
        for (const std::int32_t l : g.lanes) {
          const CompiledProgram& p = *progs[static_cast<std::size_t>(l)];
          const BInst& bl = p.code[static_cast<std::size_t>(pc)];
          const std::size_t fi = uniform_index ? flat : flat_index(bi, g, l);
          double v = (*buffers[static_cast<std::size_t>(bi.array) *
                                   static_cast<std::size_t>(L) +
                               static_cast<std::size_t>(l)])[fi];
          if (bl.a.cast_counter >= 0)
            ++counts[static_cast<std::size_t>(l)]
                    [static_cast<std::size_t>(bl.a.cast_counter)];
          if (bl.a.conv)
            v = bl.a.conv(p.specs[static_cast<std::size_t>(bl.a.spec)], v);
          reals[static_cast<std::size_t>(bl.dst) *
                    static_cast<std::size_t>(L) +
                static_cast<std::size_t>(l)] = v;
          if (any_errors) {
            const double s = shadow_buffers[static_cast<std::size_t>(bi.array) *
                                                static_cast<std::size_t>(L) +
                                            static_cast<std::size_t>(l)][fi];
            set_shadow(bl.dst, l, s);
            if (ErrorProfile* const ep =
                    lanes[static_cast<std::size_t>(l)].errors)
              record(l, ep->instr[static_cast<std::size_t>(pc)], v, s, pc,
                     bl.src, g.steps);
          }
          if (track_regs) observe_reg(l, bl.dst, v);
        }
        ++g.non_real;
        ++pc;
        break;
      }
      case BInst::Kind::Store: {
        std::size_t flat = 0;
        const bool uniform_index = !index_varying[static_cast<std::size_t>(pc)];
        if (uniform_index) flat = flat_index(bi, g, g.lanes.front());
        for (const std::int32_t l : g.lanes) {
          const BInst& bl = progs[static_cast<std::size_t>(l)]
                                ->code[static_cast<std::size_t>(pc)];
          const std::size_t fi = uniform_index ? flat : flat_index(bi, g, l);
          const double v = fetch_real(bl.a, l);
          (*buffers[static_cast<std::size_t>(bi.array) *
                        static_cast<std::size_t>(L) +
                    static_cast<std::size_t>(l)])[fi] = v;
          if (any_errors) {
            const double s = fetch_shadow(bl.a, l);
            shadow_buffers[static_cast<std::size_t>(bi.array) *
                               static_cast<std::size_t>(L) +
                           static_cast<std::size_t>(l)][fi] = s;
            if (ErrorProfile* const ep =
                    lanes[static_cast<std::size_t>(l)].errors)
              record(l, ep->instr[static_cast<std::size_t>(pc)], v, s, pc,
                     bl.src, g.steps);
          }
          if (track_arrays)
            observe_array(
                l, p0.arrays[static_cast<std::size_t>(bi.array)].name, v);
        }
        ++g.non_real;
        ++pc;
        break;
      }
      case BInst::Kind::IntArith: {
        const auto eval = [&](std::int64_t a, std::int64_t b) {
          switch (bi.op) {
          case Opcode::IAdd: return a + b;
          case Opcode::ISub: return a - b;
          case Opcode::IMul: return a * b;
          case Opcode::IDiv: return b == 0 ? 0 : a / b;
          case Opcode::IRem: return b == 0 ? 0 : a % b;
          case Opcode::IMin: return std::min(a, b);
          case Opcode::IMax: return std::max(a, b);
          default: LUIS_UNREACHABLE("not an int op");
          }
        };
        const auto dst = static_cast<std::size_t>(bi.dst);
        if (varying[dst]) {
          for (const std::int32_t l : g.lanes)
            vints[dst * static_cast<std::size_t>(L) +
                  static_cast<std::size_t>(l)] =
                eval(geti(bi.ia, g, l), geti(bi.ib, g, l));
        } else {
          // Uniform dst implies uniform operands (taint analysis): the
          // shared control work runs once per group, not once per lane.
          const std::int32_t l0 = g.lanes.front();
          g.uints[dst] = eval(geti(bi.ia, g, l0), geti(bi.ib, g, l0));
        }
        ++g.non_real;
        ++pc;
        break;
      }
      case BInst::Kind::IntCmp: {
        const auto dst = static_cast<std::size_t>(bi.dst);
        if (varying[dst]) {
          for (const std::int32_t l : g.lanes)
            vbools[dst * static_cast<std::size_t>(L) +
                   static_cast<std::size_t>(l)] =
                compare(bi.pred, geti(bi.ia, g, l), geti(bi.ib, g, l)) ? 1 : 0;
        } else {
          const std::int32_t l0 = g.lanes.front();
          g.ubools[dst] =
              compare(bi.pred, geti(bi.ia, g, l0), geti(bi.ib, g, l0)) ? 1 : 0;
        }
        ++g.non_real;
        ++pc;
        break;
      }
      case BInst::Kind::RealCmp: {
        const auto dst = static_cast<std::size_t>(bi.dst);
        for (const std::int32_t l : g.lanes) {
          const BInst& bl = progs[static_cast<std::size_t>(l)]
                                ->code[static_cast<std::size_t>(pc)];
          const bool c =
              compare(bl.pred, fetch_real(bl.a, l), fetch_real(bl.b, l));
          vbools[dst * static_cast<std::size_t>(L) +
                 static_cast<std::size_t>(l)] = c ? 1 : 0;
          if (any_errors) {
            if (ErrorProfile* const ep =
                    lanes[static_cast<std::size_t>(l)].errors) {
              // Control stays lockstep on the quantized outcome; a
              // disagreement with the shadow values means an independent
              // binary64 run could take a different path from here on.
              const bool sc = compare(bl.pred, fetch_shadow(bl.a, l),
                                      fetch_shadow(bl.b, l));
              if (sc != c) {
                if (ep->control_divergences == 0)
                  ep->first_control_divergence_step = g.steps;
                ++ep->control_divergences;
              }
            }
          }
        }
        ++g.non_real;
        ++pc;
        break;
      }
      case BInst::Kind::SelectReal: {
        for (const std::int32_t l : g.lanes) {
          const BInst& bl = progs[static_cast<std::size_t>(l)]
                                ->code[static_cast<std::size_t>(pc)];
          const bool c = getb(bi.cond, g, l);
          if (any_profile && c)
            if (VmProfile* const prof =
                    lanes[static_cast<std::size_t>(l)].profile)
              ++prof->select_real_first[static_cast<std::size_t>(pc)];
          const double v = fetch_real(c ? bl.a : bl.b, l);
          reals[static_cast<std::size_t>(bl.dst) *
                    static_cast<std::size_t>(L) +
                static_cast<std::size_t>(l)] = v;
          if (any_errors) {
            // The shadow takes the side the quantized condition chose.
            const double s = fetch_shadow(c ? bl.a : bl.b, l);
            set_shadow(bl.dst, l, s);
            if (ErrorProfile* const ep =
                    lanes[static_cast<std::size_t>(l)].errors)
              record(l, ep->instr[static_cast<std::size_t>(pc)], v, s, pc,
                     bl.src, g.steps);
          }
          if (track_regs) observe_reg(l, bl.dst, v);
        }
        ++g.non_real;
        ++pc;
        break;
      }
      case BInst::Kind::SelectInt: {
        const auto dst = static_cast<std::size_t>(bi.dst);
        if (varying[dst]) {
          for (const std::int32_t l : g.lanes) {
            const bool c = getb(bi.cond, g, l);
            vints[dst * static_cast<std::size_t>(L) +
                  static_cast<std::size_t>(l)] = geti(c ? bi.ia : bi.ib, g, l);
          }
        } else {
          const std::int32_t l0 = g.lanes.front();
          const bool c = getb(bi.cond, g, l0);
          g.uints[dst] = geti(c ? bi.ia : bi.ib, g, l0);
        }
        ++g.non_real;
        ++pc;
        break;
      }
      case BInst::Kind::Br:
        ++g.non_real;
        if (!apply_edge(g, bi.edge0)) {
          retire_error(g, edge_trap_message);
          running = false;
          break;
        }
        pc = p0.blocks[static_cast<std::size_t>(bi.target0)].entry;
        break;
      case BInst::Kind::CondBr: {
        ++g.non_real;
        bool uniform = !varying[static_cast<std::size_t>(bi.cond)];
        bool c0 = getb(bi.cond, g, g.lanes.front());
        if (!uniform) {
          // A varying condition may still agree across this group's lanes.
          std::vector<std::int32_t> taken, other;
          for (const std::int32_t l : g.lanes)
            (getb(bi.cond, g, l) == c0 ? taken : other).push_back(l);
          if (other.empty()) {
            uniform = true;
          } else {
            // Divergence: the not-taken half resumes later with a private
            // copy of the uniform registers and the same step count.
            Group rest;
            rest.lanes = std::move(other);
            rest.steps = g.steps;
            rest.non_real = g.non_real;
            rest.edge = c0 ? bi.edge1 : bi.edge0;
            rest.block = c0 ? bi.target1 : bi.target0;
            rest.uints = g.uints;
            rest.ubools = g.ubools;
            work.push_back(std::move(rest));
            g.lanes = std::move(taken);
          }
        }
        if (!apply_edge(g, c0 ? bi.edge0 : bi.edge1)) {
          retire_error(g, edge_trap_message);
          running = false;
          break;
        }
        pc = p0.blocks[static_cast<std::size_t>(c0 ? bi.target0 : bi.target1)]
                 .entry;
        break;
      }
      case BInst::Kind::Ret:
        retire_ok(g);
        running = false;
        break;
      case BInst::Kind::Trap:
        LUIS_UNREACHABLE("handled before the step check");
      }
    }
  }
  return results;
}

} // namespace luis::interp
