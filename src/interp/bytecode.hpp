// Register-based bytecode for the VM execution engine.
//
// compile_program() lowers a (Function, TypeAssignment) pair once into a
// flat program: blocks linearized with resolved branch targets, dense
// register slots instead of value-map lookups, constants pre-quantized
// into their use format, and every real operation carrying a pre-bound
// kernel function pointer from the numrep kernel table — the fixed /
// posit / float dispatch and the operand-alignment decision are made here,
// not per execution.
//
// The program is pointer-free with respect to its source Function: it
// refers to registers by dense index, arrays by position (bound by name at
// run time), and blocks by id. A program compiled from one Function
// therefore runs against any Function with identical printed IR — which is
// what lets the sweep's program cache serve jobs that re-parse the same
// kernel text into private modules.
//
// Semantics are bit-identical to run_function(): same quantization entry
// points, same cast/operation cost accounting, same step counting
// (including the phi batches), same trap diagnostics. The differential
// oracle in src/testing enforces this.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "interp/interpreter.hpp"
#include "numrep/kernels.hpp"

namespace luis::interp {

struct CompileOptions {
  /// Mirrors RunOptions::exact_fixed_arithmetic: route all-fixed
  /// add/sub/mul/div through the exact integer kernels.
  bool exact_fixed_arithmetic = false;
};

/// A real operand resolved at compile time. Fetch order matches the
/// reference interpreter's real_operand(): read raw value (register or
/// pre-quantized immediate), count the cast if one is billed, then apply
/// the conversion if the operand is numerically aligned.
struct RealArg {
  std::int32_t reg = -1;          ///< register index; -1 = immediate
  std::int32_t spec = -1;         ///< index into CompiledProgram::specs
  std::int32_t cast_counter = -1; ///< counter slot billed on fetch; -1 = none
  numrep::QuantFn conv = nullptr; ///< alignment conversion; null = raw
  double imm = 0.0;               ///< immediate (quantized per align rules)
  double shadow_imm = 0.0;        ///< raw source constant (shadow execution)
};

struct IntArg {
  std::int32_t reg = -1; ///< register index; -1 = immediate
  std::int64_t imm = 0;
};

/// One phi assignment performed when control crosses a CFG edge.
struct PhiMove {
  std::int32_t dst = -1;
  bool is_real = false;
  RealArg rsrc;
  IntArg isrc;
};

/// The phi moves of one (target block, predecessor) edge. All moves of an
/// edge read their sources before any destination is written (the
/// simultaneous-read semantics of a phi batch).
struct EdgeMoves {
  std::int32_t start = 0; ///< slice into CompiledProgram::moves
  std::int32_t count = 0;
  std::int32_t trap_msg = -1; ///< >=0: taking this edge raises messages[i]
};

struct BInst {
  enum class Kind : std::uint8_t {
    Arith2,      ///< kernel2(a, b) -> dst
    ExactFixed2, ///< exact integer fixed point a op b -> dst
    Arith1,      ///< kernel1(a) -> dst
    CastReal,    ///< fetch(a) -> dst (conversion folded into the fetch)
    IntToReal,   ///< conv(int ia) -> dst
    Load,        ///< array[indices] converted to dst's format
    Store,       ///< fetch(a) -> array[indices]
    IntArith,    ///< op(ia, ib) -> dst
    IntCmp,      ///< pred(ia, ib) -> dst
    RealCmp,     ///< pred(a, b) on raw stored representations -> dst
    SelectReal,  ///< cond ? fetch(a) : fetch(b) -> dst
    SelectInt,   ///< cond ? ia : ib -> dst
    Br,          ///< apply edge0, jump target0
    CondBr,      ///< cond ? (edge0, target0) : (edge1, target1)
    Ret,         ///< successful termination
    Trap,        ///< raise messages[trap_msg] (does not count a step)
  };

  Kind kind = Kind::Trap;
  ir::Opcode op = ir::Opcode::Ret;       ///< source opcode (disassembly, int sub-op)
  ir::CmpPred pred = ir::CmpPred::EQ;
  std::int32_t dst = -1;
  RealArg a, b;
  IntArg ia, ib;
  std::int32_t cond = -1;                ///< boolean register (CondBr, selects)
  numrep::Kernel2 kernel2 = nullptr;
  numrep::Kernel1 kernel1 = nullptr;
  numrep::ExactKernel exact = nullptr;
  std::int32_t spec = -1;                ///< result QuantSpec (Arith*, IntToReal)
  std::int32_t exact_bind = -1;          ///< index into exact_binds
  std::int32_t op_counter = -1;          ///< counter slot for the operation
  std::int32_t array = -1;               ///< index into arrays (Load/Store)
  std::int32_t index_start = 0;          ///< slice into index_args
  std::int32_t index_count = 0;
  std::int32_t target0 = -1, target1 = -1; ///< block ids
  std::int32_t edge0 = -1, edge1 = -1;     ///< indices into edges
  std::int32_t trap_msg = -1;
  /// Source instruction ordinal (block order, phis and terminators
  /// included — the same ordinal as the register slot). -1 for synthetic
  /// instructions (fall-through traps). Lets the profiler map pc-level
  /// execution counts back to IR lines.
  std::int32_t src = -1;
};

struct BlockInfo {
  std::int32_t entry = 0; ///< pc of the block's first non-phi instruction
};

/// Run-time binding requirements of one source array, in declaration
/// order. Buffers are looked up by name in the ArrayStore.
struct ArrayBinding {
  std::string name;
  std::vector<std::int64_t> dims;
  std::int64_t element_count = 0;
  std::int32_t spec = -1;               ///< array's own representation
  numrep::QuantFn init_conv = nullptr;  ///< quantizes initial contents
};

struct CompiledProgram {
  std::string function_name;
  CompileOptions options;
  std::vector<BInst> code;
  std::vector<BlockInfo> blocks;       ///< empty = function had no entry block
  std::vector<PhiMove> moves;
  std::vector<EdgeMoves> edges;
  std::int32_t entry_edge = -1;        ///< edge applied before the entry block
  std::vector<IntArg> index_args;
  std::vector<numrep::QuantSpec> specs;
  std::vector<numrep::ExactFixedBind> exact_binds;
  std::vector<ArrayBinding> arrays;
  /// Dense cost counters: slot i accumulates counter_keys[i]. Only nonzero
  /// slots are materialized into CostCounters at the end of a run.
  std::vector<std::pair<std::string, std::string>> counter_keys;
  std::vector<std::string> messages;   ///< trap diagnostics
  std::int32_t num_regs = 0;
  std::size_t source_instruction_count = 0; ///< shape check at bind time
};

/// Lowers `f` under `types` into a compiled program.
CompiledProgram compile_program(const ir::Function& f,
                                const TypeAssignment& types,
                                const CompileOptions& options = {});

/// Batched lowering: walks `f` once and emits one program per type
/// assignment ("lane"). All resulting programs share the same structural
/// skeleton — identical pc layout, register numbering, block entries,
/// edge/move counts, branch targets, and trap placement — because none of
/// those depend on the type assignment; only the numeric bindings
/// (kernels, quant specs, immediates, conversions, cast counters, array
/// init quantizers) differ per lane. That invariant is what the batched
/// executor (interp/batch.hpp) relies on to run all lanes in lockstep off
/// lane 0's control flow. compile_program() is the one-lane special case.
std::vector<CompiledProgram>
compile_programs(const ir::Function& f,
                 std::span<const TypeAssignment* const> lanes,
                 const CompileOptions& options = {});

/// Executes a compiled program. `f` must have the same printed IR as the
/// compile-time function (asserted by shape); it is consulted only to
/// attribute register ranges back to Instruction pointers when
/// RunOptions::track_register_ranges is set.
RunResult run_program(const CompiledProgram& program, const ir::Function& f,
                      ArrayStore& store, const RunOptions& options = {});

/// Fills an ErrorProfile's per-array stats, whole-program MPE, and shadow
/// array snapshots from the final buffer contents of a successful run.
/// `quantized` and `shadow` hold one buffer per ArrayBinding, in binding
/// order. Shared by the scalar and batched executors; exposed so the fuzz
/// oracle can recompute the same reduction independently.
void finalize_error_profile(ErrorProfile& ep, const CompiledProgram& program,
                            std::span<const std::vector<double>* const> quantized,
                            std::span<const std::vector<double>* const> shadow);

/// Human-readable listing of the program (opcodes via ir::opcode_name).
std::string disassemble(const CompiledProgram& program);

/// Canonical cache key for (f, types, options): the printed IR plus a
/// positional serialization of every array's and Real instruction's
/// concrete type. Pointer-free, so re-parsed identical-text kernels map to
/// the same key.
std::string program_cache_key(const ir::Function& f,
                              const TypeAssignment& types,
                              const CompileOptions& options = {});

} // namespace luis::interp
