#include "interp/bytecode.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "ir/printer.hpp"
#include "numrep/quantize.hpp"
#include "obs/trace.hpp"
#include "support/diag.hpp"
#include "support/statistics.hpp"
#include "support/string_utils.hpp"

namespace luis::interp {

using ir::Instruction;
using ir::Opcode;
using ir::ScalarType;
using numrep::ConcreteType;

namespace {

numrep::KernelOp2 kernel_op2(Opcode op) {
  switch (op) {
  case Opcode::Add: return numrep::KernelOp2::Add;
  case Opcode::Sub: return numrep::KernelOp2::Sub;
  case Opcode::Mul: return numrep::KernelOp2::Mul;
  case Opcode::Div: return numrep::KernelOp2::Div;
  case Opcode::Rem: return numrep::KernelOp2::Rem;
  case Opcode::Pow: return numrep::KernelOp2::Pow;
  case Opcode::Min: return numrep::KernelOp2::Min;
  case Opcode::Max: return numrep::KernelOp2::Max;
  default: LUIS_UNREACHABLE("not a binary real op");
  }
}

numrep::KernelOp1 kernel_op1(Opcode op) {
  switch (op) {
  case Opcode::Neg: return numrep::KernelOp1::Neg;
  case Opcode::Abs: return numrep::KernelOp1::Abs;
  case Opcode::Sqrt: return numrep::KernelOp1::Sqrt;
  case Opcode::Exp: return numrep::KernelOp1::Exp;
  default: LUIS_UNREACHABLE("not a unary real op");
  }
}

double const_real_value(const ir::Value* v) {
  return static_cast<const ir::ConstReal*>(v)->value();
}

/// Lowers one Function against N type assignments ("lanes") in a single
/// IR walk. Everything structural — register numbering, pc layout, block
/// entries, branch targets, edge/move ids, trap placement — is computed
/// once and is identical across lanes by construction; the per-lane loop
/// only re-resolves the type-dependent bindings (kernels, specs,
/// immediates, conversions, cast counters). The batched executor depends
/// on that skeleton identity.
class Compiler {
public:
  Compiler(const ir::Function& f, std::span<const TypeAssignment* const> lanes,
           const CompileOptions& options)
      : f_(f), opt_(options), lanes_(lanes.size()) {
    LUIS_ASSERT(!lanes.empty(), "compile_programs needs at least one lane");
    for (std::size_t i = 0; i < lanes.size(); ++i) lanes_[i].types = lanes[i];
  }

  std::vector<CompiledProgram> compile() {
    // Dense register slots: one per instruction, in block order (the same
    // ordinal the reference interpreter's slot map uses).
    std::int32_t n = 0;
    for (const auto& bb : f_.blocks())
      for (const auto& inst : bb->instructions()) reg_[inst.get()] = n++;

    for (Lane& L : lanes_) {
      L.p.function_name = f_.name();
      L.p.options = opt_;
      L.p.num_regs = n;
      L.p.source_instruction_count = static_cast<std::size_t>(n);
    }

    for (const auto& arr : f_.arrays()) {
      array_id_[arr.get()] =
          static_cast<std::int32_t>(lanes_[0].p.arrays.size());
      for (Lane& L : lanes_) {
        ArrayBinding ab;
        ab.name = arr->name();
        ab.dims.assign(arr->dims().begin(), arr->dims().end());
        ab.element_count = arr->element_count();
        const ConcreteType at = L.types->of(arr.get());
        ab.spec = spec_id(L, at);
        ab.init_conv = numrep::bind_quantizer(at);
        L.p.arrays.push_back(std::move(ab));
      }
    }

    for (std::size_t i = 0; i < f_.blocks().size(); ++i)
      block_id_[f_.blocks()[i].get()] = static_cast<std::int32_t>(i);
    for (Lane& L : lanes_) L.p.blocks.resize(f_.blocks().size());

    for (std::size_t i = 0; i < f_.blocks().size(); ++i)
      compile_block(static_cast<std::int32_t>(i), *f_.blocks()[i]);

    if (!f_.blocks().empty()) {
      const std::int32_t entry = edge_id(f_.entry(), nullptr);
      for (Lane& L : lanes_) L.p.entry_edge = entry;
    }
    std::vector<CompiledProgram> out;
    out.reserve(lanes_.size());
    for (Lane& L : lanes_) out.push_back(std::move(L.p));
    return out;
  }

private:
  /// Per-lane compilation state: the program under construction plus the
  /// lane-local interning tables (counter slots, quant specs, exact binds
  /// depend on the lane's types, so their ids are lane-private).
  struct Lane {
    const TypeAssignment* types = nullptr;
    CompiledProgram p;
    std::map<std::pair<std::string, std::string>, std::int32_t> counter_ids;
    std::vector<ConcreteType> spec_types; ///< parallel to p.specs
  };

  std::int32_t reg(const ir::Value* v) const { return reg_.at(v); }

  std::int32_t counter_id(Lane& L, const std::string& op,
                          const std::string& type) {
    const auto key = std::make_pair(op, type);
    const auto it = L.counter_ids.find(key);
    if (it != L.counter_ids.end()) return it->second;
    const auto id = static_cast<std::int32_t>(L.p.counter_keys.size());
    L.p.counter_keys.push_back(key);
    L.counter_ids.emplace(key, id);
    return id;
  }

  std::int32_t spec_id(Lane& L, const ConcreteType& type) {
    for (std::size_t i = 0; i < L.spec_types.size(); ++i)
      if (L.spec_types[i] == type) return static_cast<std::int32_t>(i);
    L.spec_types.push_back(type);
    L.p.specs.push_back(numrep::make_quant_spec(type));
    return static_cast<std::int32_t>(L.p.specs.size() - 1);
  }

  /// Messages are emitted at structurally determined points, so the id is
  /// the same in every lane; intern into all of them and return it.
  std::int32_t message_id(const std::string& message) {
    std::int32_t id = -1;
    for (Lane& L : lanes_) {
      std::int32_t lane_id = -1;
      for (std::size_t i = 0; i < L.p.messages.size(); ++i)
        if (L.p.messages[i] == message) {
          lane_id = static_cast<std::int32_t>(i);
          break;
        }
      if (lane_id < 0) {
        lane_id = static_cast<std::int32_t>(L.p.messages.size());
        L.p.messages.push_back(message);
      }
      LUIS_ASSERT(id < 0 || id == lane_id, "message ids diverged across lanes");
      id = lane_id;
    }
    return id;
  }

  std::int32_t exact_bind_id(Lane& L, const numrep::ExactFixedBind& bind) {
    for (std::size_t i = 0; i < L.p.exact_binds.size(); ++i)
      if (L.p.exact_binds[i].a == bind.a && L.p.exact_binds[i].b == bind.b &&
          L.p.exact_binds[i].out == bind.out)
        return static_cast<std::int32_t>(i);
    L.p.exact_binds.push_back(bind);
    return static_cast<std::int32_t>(L.p.exact_binds.size() - 1);
  }

  IntArg int_arg(const ir::Value* v) {
    IntArg a;
    if (v->kind() == ir::Value::Kind::ConstInt)
      a.imm = static_cast<const ir::ConstInt*>(v)->value();
    else
      a.reg = reg(v);
    return a;
  }

  /// Resolves a real operand with the reference interpreter's
  /// real_operand() semantics: constants materialize in the target format
  /// when aligned (raw otherwise, never billed); register operands bill a
  /// cast when the formats differ — except the fixed->fixed realignment of
  /// a non-aligning op, which is folded into the op's own rescale — and
  /// are numerically converted only when aligned.
  RealArg real_arg(Lane& L, const ir::Value* v, const ConcreteType& target,
                   bool align) {
    RealArg a;
    if (v->is_constant()) {
      const double raw = const_real_value(v);
      a.imm = align ? numrep::quantize(target, raw) : raw;
      a.shadow_imm = raw;
      return a;
    }
    a.reg = reg(v);
    const ConcreteType& from = L.types->of(v);
    if (from == target) return a;
    const bool folded_shift =
        !align && from.format.is_fixed() && target.format.is_fixed();
    if (!folded_shift)
      a.cast_counter =
          counter_id(L, "cast_" + cost_class(from), cost_class(target));
    if (align) {
      a.conv = numrep::bind_quantizer(target);
      a.spec = spec_id(L, target);
    }
    return a;
  }

  /// Rewrites an already-billed operand for the exact fixed point path,
  /// which reads raw stored values: alignment conversion dropped,
  /// constants kept unquantized.
  void make_raw(RealArg& a, const ir::Value* v) {
    a.conv = nullptr;
    a.spec = -1;
    if (v->is_constant()) a.imm = const_real_value(v);
  }

  /// The phi moves for entering `to` from `from` (nullptr = function
  /// entry), deduplicated per edge. A phi with no matching incoming edge
  /// turns the whole edge into a trap, exactly like the reference
  /// interpreter erroring before it commits the batch. Whether an edge
  /// traps and how many moves it has are type-independent, so the edge id
  /// and move slice layout are shared across lanes.
  std::int32_t edge_id(const ir::BasicBlock* to, const ir::BasicBlock* from) {
    const auto key = std::make_pair(to, from);
    const auto it = edge_ids_.find(key);
    if (it != edge_ids_.end()) return it->second;

    // Resolve the incoming operand of each leading phi once.
    const auto& insts = to->instructions();
    std::vector<std::pair<const Instruction*, int>> phis;
    bool trap = false;
    for (std::size_t i = 0; i < insts.size() && insts[i]->is_phi(); ++i) {
      const Instruction* phi = insts[i].get();
      int incoming = -1;
      for (std::size_t k = 0; k < phi->incoming_blocks().size(); ++k)
        if (phi->incoming_blocks()[k] == from) incoming = static_cast<int>(k);
      if (incoming < 0) {
        trap = true;
        break;
      }
      phis.emplace_back(phi, incoming);
    }

    std::int32_t trap_id = -1;
    if (trap) trap_id = message_id("phi has no incoming edge for predecessor");

    std::int32_t id = -1;
    for (Lane& L : lanes_) {
      EdgeMoves e;
      e.start = static_cast<std::int32_t>(L.p.moves.size());
      e.trap_msg = trap_id;
      if (!trap) {
        for (const auto& [phi, incoming] : phis) {
          PhiMove m;
          m.dst = reg(phi);
          const ir::Value* in =
              phi->operand(static_cast<std::size_t>(incoming));
          if (phi->type() == ScalarType::Int) {
            m.isrc = int_arg(in);
          } else {
            m.is_real = true;
            const ConcreteType to_ty = L.types->of(phi);
            if (in->is_constant()) {
              m.rsrc.imm = numrep::quantize(to_ty, const_real_value(in));
              m.rsrc.shadow_imm = const_real_value(in);
            } else {
              m.rsrc.reg = reg(in);
              const ConcreteType& from_ty = L.types->of(in);
              if (!(from_ty == to_ty)) {
                m.rsrc.cast_counter = counter_id(
                    L, "cast_" + cost_class(from_ty), cost_class(to_ty));
                m.rsrc.conv = numrep::bind_quantizer(to_ty);
                m.rsrc.spec = spec_id(L, to_ty);
              }
            }
          }
          L.p.moves.push_back(m);
          ++e.count;
        }
      }
      const auto lane_id = static_cast<std::int32_t>(L.p.edges.size());
      L.p.edges.push_back(e);
      LUIS_ASSERT(id < 0 || id == lane_id, "edge ids diverged across lanes");
      id = lane_id;
    }
    edge_ids_.emplace(key, id);
    return id;
  }

  void compile_block(std::int32_t id, const ir::BasicBlock& bb) {
    for (Lane& L : lanes_)
      L.p.blocks[static_cast<std::size_t>(id)].entry =
          static_cast<std::int32_t>(L.p.code.size());
    const auto& insts = bb.instructions();
    std::size_t i = 0;
    while (i < insts.size() && insts[i]->is_phi()) ++i; // edges carry these
    bool terminated = false;
    for (; i < insts.size(); ++i) {
      const Instruction* inst = insts[i].get();
      LUIS_ASSERT(!inst->is_phi(), "phi in non-leading position");
      if (inst->is_terminator()) {
        compile_terminator(&bb, inst);
        terminated = true;
        break;
      }
      for (Lane& L : lanes_) compile_instruction(L, inst);
    }
    if (!terminated) {
      BInst bi;
      bi.kind = BInst::Kind::Trap;
      bi.trap_msg = message_id("block fell through without a terminator");
      for (Lane& L : lanes_) L.p.code.push_back(bi);
    }
  }

  void compile_terminator(const ir::BasicBlock* from, const Instruction* inst) {
    BInst bi;
    bi.op = inst->opcode();
    bi.src = reg(inst);
    switch (inst->opcode()) {
    case Opcode::Ret:
      bi.kind = BInst::Kind::Ret;
      break;
    case Opcode::Br:
      bi.kind = BInst::Kind::Br;
      bi.target0 = block_id_.at(inst->target(0));
      bi.edge0 = edge_id(inst->target(0), from);
      break;
    case Opcode::CondBr:
      bi.kind = BInst::Kind::CondBr;
      bi.cond = reg(inst->operand(0));
      bi.target0 = block_id_.at(inst->target(0));
      bi.edge0 = edge_id(inst->target(0), from);
      bi.target1 = block_id_.at(inst->target(1));
      bi.edge1 = edge_id(inst->target(1), from);
      break;
    default: LUIS_UNREACHABLE("not a terminator");
    }
    // Terminators carry no type-dependent state: one BInst for every lane.
    for (Lane& L : lanes_) L.p.code.push_back(bi);
  }

  void compile_instruction(Lane& L, const Instruction* inst) {
    BInst bi;
    bi.op = inst->opcode();
    bi.dst = reg(inst);
    bi.src = bi.dst;
    const ConcreteType ty = L.types->of(inst);
    switch (inst->opcode()) {
    case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::Div:
    case Opcode::Rem: case Opcode::Pow: case Opcode::Min: case Opcode::Max: {
      // Additive ops align operands into the result format; multiplicative
      // ones rescale only the result.
      const bool align = inst->opcode() == Opcode::Add ||
                         inst->opcode() == Opcode::Sub ||
                         inst->opcode() == Opcode::Min ||
                         inst->opcode() == Opcode::Max;
      bi.a = real_arg(L, inst->operand(0), ty, align);
      bi.b = real_arg(L, inst->operand(1), ty, align);
      bi.op_counter =
          counter_id(L, ir::opcode_name(inst->opcode()), cost_class(ty));
      bool exact = false;
      if (opt_.exact_fixed_arithmetic && ty.format.is_fixed()) {
        const auto operand_type = [&](const ir::Value* v) {
          return v->is_constant() ? ty : L.types->of(v);
        };
        const ConcreteType ta = operand_type(inst->operand(0));
        const ConcreteType tb = operand_type(inst->operand(1));
        const numrep::ExactKernel kernel =
            numrep::bind_exact_fixed(kernel_op2(inst->opcode()));
        if (kernel && ta.format.is_fixed() && tb.format.is_fixed()) {
          bi.kind = BInst::Kind::ExactFixed2;
          bi.exact = kernel;
          bi.exact_bind =
              exact_bind_id(L, {numrep::FixedSpec::from(ta),
                                numrep::FixedSpec::from(tb),
                                numrep::FixedSpec::from(ty)});
          make_raw(bi.a, inst->operand(0));
          make_raw(bi.b, inst->operand(1));
          exact = true;
        }
      }
      if (!exact) {
        bi.kind = BInst::Kind::Arith2;
        bi.kernel2 = numrep::bind_kernel2(kernel_op2(inst->opcode()), ty);
        bi.spec = spec_id(L, ty);
      }
      break;
    }
    case Opcode::Neg: case Opcode::Abs: case Opcode::Sqrt: case Opcode::Exp:
      bi.kind = BInst::Kind::Arith1;
      bi.a = real_arg(L, inst->operand(0), ty, /*align=*/false);
      bi.kernel1 = numrep::bind_kernel1(kernel_op1(inst->opcode()), ty);
      bi.spec = spec_id(L, ty);
      bi.op_counter =
          counter_id(L, ir::opcode_name(inst->opcode()), cost_class(ty));
      break;
    case Opcode::Cast:
      // Explicit representation change: the conversion cost is carried by
      // the operand fetch.
      bi.kind = BInst::Kind::CastReal;
      bi.a = real_arg(L, inst->operand(0), ty, /*align=*/true);
      break;
    case Opcode::IntToReal:
      bi.kind = BInst::Kind::IntToReal;
      bi.ia = int_arg(inst->operand(0));
      bi.a.conv = numrep::bind_quantizer(ty);
      bi.a.spec = spec_id(L, ty);
      bi.op_counter = counter_id(L, "cast_fix", cost_class(ty));
      break;
    case Opcode::Load: {
      const auto* arr = static_cast<const ir::Array*>(inst->operand(0));
      bi.kind = BInst::Kind::Load;
      bi.array = array_id_.at(arr);
      compile_indices(L, bi, inst, 1, arr);
      const ConcreteType at = L.types->of(arr);
      if (!(at == ty)) {
        bi.a.cast_counter =
            counter_id(L, "cast_" + cost_class(at), cost_class(ty));
        bi.a.conv = numrep::bind_quantizer(ty);
        bi.a.spec = spec_id(L, ty);
      }
      break;
    }
    case Opcode::Store: {
      const auto* arr = static_cast<const ir::Array*>(inst->operand(1));
      bi.kind = BInst::Kind::Store;
      bi.array = array_id_.at(arr);
      bi.a = real_arg(L, inst->operand(0), L.types->of(arr), /*align=*/true);
      compile_indices(L, bi, inst, 2, arr);
      break;
    }
    case Opcode::IAdd: case Opcode::ISub: case Opcode::IMul:
    case Opcode::IDiv: case Opcode::IRem: case Opcode::IMin:
    case Opcode::IMax:
      bi.kind = BInst::Kind::IntArith;
      bi.ia = int_arg(inst->operand(0));
      bi.ib = int_arg(inst->operand(1));
      break;
    case Opcode::ICmp:
      bi.kind = BInst::Kind::IntCmp;
      bi.pred = inst->predicate();
      bi.ia = int_arg(inst->operand(0));
      bi.ib = int_arg(inst->operand(1));
      break;
    case Opcode::FCmp:
      // Comparison happens on the stored representations directly.
      bi.kind = BInst::Kind::RealCmp;
      bi.pred = inst->predicate();
      bi.a = real_arg(L, inst->operand(0), ty, /*align=*/false);
      bi.b = real_arg(L, inst->operand(1), ty, /*align=*/false);
      bi.a.cast_counter = bi.b.cast_counter = -1; // raw reads, never billed
      break;
    case Opcode::Select:
      bi.cond = reg(inst->operand(0));
      if (inst->type() == ScalarType::Int) {
        bi.kind = BInst::Kind::SelectInt;
        bi.ia = int_arg(inst->operand(1));
        bi.ib = int_arg(inst->operand(2));
      } else {
        bi.kind = BInst::Kind::SelectReal;
        bi.a = real_arg(L, inst->operand(1), ty, /*align=*/true);
        bi.b = real_arg(L, inst->operand(2), ty, /*align=*/true);
      }
      break;
    case Opcode::Phi: case Opcode::Br: case Opcode::CondBr: case Opcode::Ret:
      LUIS_UNREACHABLE("handled by the block walk");
    }
    L.p.code.push_back(std::move(bi));
  }

  void compile_indices(Lane& L, BInst& bi, const Instruction* inst,
                       std::size_t first_operand, const ir::Array* arr) {
    bi.index_start = static_cast<std::int32_t>(L.p.index_args.size());
    bi.index_count = static_cast<std::int32_t>(arr->dims().size());
    for (std::size_t d = 0; d < arr->dims().size(); ++d)
      L.p.index_args.push_back(int_arg(inst->operand(first_operand + d)));
  }

  const ir::Function& f_;
  const CompileOptions opt_;
  std::vector<Lane> lanes_;
  std::map<const ir::Value*, std::int32_t> reg_;
  std::map<const ir::BasicBlock*, std::int32_t> block_id_;
  std::map<const ir::Array*, std::int32_t> array_id_;
  std::map<std::pair<const ir::BasicBlock*, const ir::BasicBlock*>,
           std::int32_t>
      edge_ids_;
};

/// Register file of the VM (same layout as the reference interpreter's
/// slots).
struct Reg {
  double real = 0.0;
  std::int64_t integer = 0;
  bool boolean = false;
};

template <typename T> bool compare(ir::CmpPred pred, T a, T b) {
  switch (pred) {
  case ir::CmpPred::EQ: return a == b;
  case ir::CmpPred::NE: return a != b;
  case ir::CmpPred::LT: return a < b;
  case ir::CmpPred::LE: return a <= b;
  case ir::CmpPred::GT: return a > b;
  case ir::CmpPred::GE: return a >= b;
  }
  LUIS_UNREACHABLE("unknown predicate");
}

} // namespace

CompiledProgram compile_program(const ir::Function& f,
                                const TypeAssignment& types,
                                const CompileOptions& options) {
  const TypeAssignment* const one[] = {&types};
  return std::move(Compiler(f, one, options).compile().front());
}

std::vector<CompiledProgram>
compile_programs(const ir::Function& f,
                 std::span<const TypeAssignment* const> lanes,
                 const CompileOptions& options) {
  return Compiler(f, lanes, options).compile();
}

void finalize_error_profile(
    ErrorProfile& ep, const CompiledProgram& p,
    std::span<const std::vector<double>* const> quantized,
    std::span<const std::vector<double>* const> shadow) {
  LUIS_ASSERT(quantized.size() == p.arrays.size() &&
                  shadow.size() == p.arrays.size(),
              "error-profile finalization needs one buffer pair per array");
  std::vector<std::uint8_t> is_stored(p.arrays.size(), 0);
  for (const BInst& bi : p.code)
    if (bi.kind == BInst::Kind::Store && bi.array >= 0)
      is_stored[static_cast<std::size_t>(bi.array)] = 1;

  // Whole-program MPE: the stored-to arrays concatenated in binding order,
  // shadow as the reference — the same mean_percentage_error definition
  // the sweep driver applies to its binary64 baseline.
  std::vector<double> all_q, all_s;
  for (std::size_t ai = 0; ai < p.arrays.size(); ++ai) {
    const std::vector<double>& q = *quantized[ai];
    const std::vector<double>& s = *shadow[ai];
    ArrayErrorStats st;
    st.name = p.arrays[ai].name;
    st.stored = is_stored[ai] != 0;
    st.elements = static_cast<long>(q.size());
    for (std::size_t i = 0; i < q.size(); ++i) {
      if (!std::isfinite(q[i]) || !std::isfinite(s[i])) st.finite = false;
      double abs_err = std::fabs(q[i] - s[i]);
      if (std::isnan(abs_err))
        abs_err = std::numeric_limits<double>::infinity();
      st.max_abs = std::max(st.max_abs, abs_err);
      if (std::fabs(s[i]) > 0.0)
        st.max_rel = std::max(st.max_rel, abs_err / std::fabs(s[i]));
      else if (abs_err > 0.0)
        st.max_rel = std::numeric_limits<double>::infinity();
    }
    st.mpe = mean_percentage_error(s, q);
    if (st.stored) {
      all_q.insert(all_q.end(), q.begin(), q.end());
      all_s.insert(all_s.end(), s.begin(), s.end());
    }
    ep.shadow_arrays[st.name] = s;
    ep.arrays.push_back(std::move(st));
  }
  ep.program_mpe = mean_percentage_error(all_s, all_q);
  ep.finalized = true;
}

RunResult run_program(const CompiledProgram& p, const ir::Function& f,
                      ArrayStore& store, const RunOptions& opt) {
  RunResult result;
  LUIS_ASSERT(f.instruction_count() == p.source_instruction_count,
              "compiled program does not match the function shape");
  LUIS_ASSERT(f.arrays().size() == p.arrays.size(),
              "compiled program does not match the function arrays");

  const bool track_regs = opt.track_register_ranges;
  const bool track_arrays = opt.track_array_ranges;

  std::map<std::string, std::pair<double, double>> array_ranges;
  const auto observe_array = [&](const std::string& name, double v) {
    if (std::isnan(v)) return;
    auto [it, fresh] = array_ranges.try_emplace(name, v, v);
    if (!fresh) {
      it->second.first = std::min(it->second.first, v);
      it->second.second = std::max(it->second.second, v);
    }
  };

  // Shadow execution (RunOptions::error_profile): a lockstep binary64
  // value per real register and array slot, following the quantized run's
  // control flow. Everything below is gated on `ep` so shadow-off runs
  // stay bit-identical (and nearly free).
  ErrorProfile* const ep = opt.error_profile;
  std::vector<double> shadow;
  std::vector<std::vector<double>> shadow_bufs;
  if (ep) {
    ep->instr.assign(p.code.size(), ErrorCell{});
    ep->moves.assign(p.moves.size(), ErrorCell{});
    ep->first_spike_step = -1;
    ep->first_spike_pc = -1;
    ep->first_spike_src = -1;
    ep->first_spike_rel = 0.0;
    ep->control_divergences = 0;
    ep->first_control_divergence_step = -1;
    ep->arrays.clear();
    ep->program_mpe = 0.0;
    ep->finalized = false;
    ep->shadow_arrays.clear();
    shadow.assign(static_cast<std::size_t>(p.num_regs), 0.0);
    shadow_bufs.reserve(p.arrays.size());
  }

  // Bind array buffers by name and quantize their initial contents. The
  // shadow buffers capture the raw (pre-quantization) contents — the
  // shadow world never quantizes, including at initialization.
  std::vector<std::vector<double>*> buffers;
  buffers.reserve(p.arrays.size());
  for (const ArrayBinding& ab : p.arrays) {
    auto& buf = store[ab.name];
    buf.resize(static_cast<std::size_t>(ab.element_count), 0.0);
    if (ep) shadow_bufs.push_back(buf);
    const numrep::QuantSpec& spec = p.specs[static_cast<std::size_t>(ab.spec)];
    for (double& v : buf) {
      v = ab.init_conv(spec, v);
      if (track_arrays) observe_array(ab.name, v);
    }
    buffers.push_back(&buf);
  }

  if (p.blocks.empty()) {
    result.error = "no entry block";
    return result;
  }

  // Register ordinal -> Instruction*, only needed to attribute observed
  // register ranges back to the source IR.
  std::vector<const Instruction*> inst_of;
  std::map<const Instruction*, std::pair<double, double>> register_ranges;
  if (track_regs) {
    inst_of.reserve(static_cast<std::size_t>(p.num_regs));
    for (const auto& bb : f.blocks())
      for (const auto& inst : bb->instructions()) inst_of.push_back(inst.get());
  }
  const auto observe_reg = [&](std::int32_t r, double v) {
    if (std::isnan(v)) return;
    auto [it, fresh] =
        register_ranges.try_emplace(inst_of[static_cast<std::size_t>(r)], v, v);
    if (!fresh) {
      it->second.first = std::min(it->second.first, v);
      it->second.second = std::max(it->second.second, v);
    }
  };

  std::vector<Reg> regs(static_cast<std::size_t>(p.num_regs));
  std::vector<long> counts(p.counter_keys.size(), 0);
  long non_real = 0;

  // Per-pc execution profile (hot-spot attribution, see obs/profile.hpp).
  VmProfile* const prof = opt.vm_profile;
  if (prof) {
    prof->instr_executions.assign(p.code.size(), 0);
    prof->edge_applications.assign(p.edges.size(), 0);
    prof->select_real_first.assign(p.code.size(), 0);
  }

  const auto fetch_real = [&](const RealArg& a) {
    double v = a.reg >= 0 ? regs[static_cast<std::size_t>(a.reg)].real : a.imm;
    if (a.cast_counter >= 0) ++counts[static_cast<std::size_t>(a.cast_counter)];
    if (a.conv) v = a.conv(p.specs[static_cast<std::size_t>(a.spec)], v);
    return v;
  };
  const auto fetch_exact = [&](const RealArg& a) {
    if (a.cast_counter >= 0) ++counts[static_cast<std::size_t>(a.cast_counter)];
    return a.reg >= 0 ? regs[static_cast<std::size_t>(a.reg)].real : a.imm;
  };
  const auto fetch_int = [&](const IntArg& a) {
    return a.reg >= 0 ? regs[static_cast<std::size_t>(a.reg)].integer : a.imm;
  };
  // Shadow operand fetch: raw register or raw constant, never converted.
  const auto fetch_shadow = [&](const RealArg& a) {
    return a.reg >= 0 ? shadow[static_cast<std::size_t>(a.reg)] : a.shadow_imm;
  };
  // Records the deviation of one quantized real write against its shadow
  // value. `pc` is -1 for phi moves (they have no program counter; their
  // spikes carry the move's destination register instead).
  const auto record = [&](ErrorCell& cell, double q, double s,
                          std::int32_t at_pc, std::int32_t at_src) {
    double abs_err = std::fabs(q - s);
    if (std::isnan(abs_err)) abs_err = std::numeric_limits<double>::infinity();
    double rel_err;
    if (std::fabs(s) > 0.0)
      rel_err = abs_err / std::fabs(s);
    else
      rel_err = abs_err > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
    const bool spike = rel_err > ep->spike_rel_threshold &&
                       cell.max_rel <= ep->spike_rel_threshold;
    cell.observe(abs_err, rel_err);
    if (spike) {
      if (ep->first_spike_step < 0) {
        ep->first_spike_step = result.steps;
        ep->first_spike_pc = at_pc;
        ep->first_spike_src = at_src;
        ep->first_spike_rel = rel_err;
      }
      obs::instant("vm.error_spike", "vm", obs::Args()
                                               .str("function", p.function_name)
                                               .num("pc", at_pc)
                                               .num("src", at_src)
                                               .num("rel", rel_err)
                                               .num("step", result.steps)
                                               .done());
    }
  };
  const auto flat_index = [&](const BInst& bi) {
    const ArrayBinding& ab = p.arrays[static_cast<std::size_t>(bi.array)];
    std::size_t flat = 0;
    for (std::int32_t d = 0; d < bi.index_count; ++d) {
      const std::int64_t idx =
          fetch_int(p.index_args[static_cast<std::size_t>(bi.index_start + d)]);
      LUIS_ASSERT(idx >= 0 && idx < ab.dims[static_cast<std::size_t>(d)],
                  "array index out of bounds on " + ab.name);
      flat = flat * static_cast<std::size_t>(ab.dims[static_cast<std::size_t>(d)]) +
             static_cast<std::size_t>(idx);
    }
    return flat;
  };

  // Phi batches commit through a scratch buffer so every move reads the
  // pre-edge register values (simultaneous-read semantics).
  std::size_t max_moves = 0;
  for (const EdgeMoves& e : p.edges)
    max_moves = std::max(max_moves, static_cast<std::size_t>(e.count));
  std::vector<Reg> scratch(max_moves);
  std::vector<double> shadow_scratch(ep ? max_moves : 0);

  // Returns false when the edge traps (sets result.error).
  const auto apply_edge = [&](std::int32_t id) {
    const EdgeMoves& e = p.edges[static_cast<std::size_t>(id)];
    if (e.trap_msg >= 0) {
      result.error = p.messages[static_cast<std::size_t>(e.trap_msg)];
      return false;
    }
    if (prof) ++prof->edge_applications[static_cast<std::size_t>(id)];
    for (std::int32_t i = 0; i < e.count; ++i) {
      const PhiMove& m = p.moves[static_cast<std::size_t>(e.start + i)];
      if (m.is_real) {
        scratch[static_cast<std::size_t>(i)].real = fetch_real(m.rsrc);
        if (ep)
          shadow_scratch[static_cast<std::size_t>(i)] = fetch_shadow(m.rsrc);
      } else {
        scratch[static_cast<std::size_t>(i)].integer = fetch_int(m.isrc);
      }
    }
    for (std::int32_t i = 0; i < e.count; ++i) {
      const PhiMove& m = p.moves[static_cast<std::size_t>(e.start + i)];
      if (m.is_real) {
        regs[static_cast<std::size_t>(m.dst)].real =
            scratch[static_cast<std::size_t>(i)].real;
        if (ep) {
          shadow[static_cast<std::size_t>(m.dst)] =
              shadow_scratch[static_cast<std::size_t>(i)];
          record(ep->moves[static_cast<std::size_t>(e.start + i)],
                 scratch[static_cast<std::size_t>(i)].real,
                 shadow_scratch[static_cast<std::size_t>(i)], -1, m.dst);
        }
        if (track_regs)
          observe_reg(m.dst, scratch[static_cast<std::size_t>(i)].real);
      } else {
        regs[static_cast<std::size_t>(m.dst)].integer =
            scratch[static_cast<std::size_t>(i)].integer;
      }
    }
    result.steps += e.count;
    return true;
  };

  if (!apply_edge(p.entry_edge)) return result;
  std::int32_t pc = p.blocks[0].entry;

  for (;;) {
    const BInst& bi = p.code[static_cast<std::size_t>(pc)];
    if (bi.kind == BInst::Kind::Trap) {
      result.error = p.messages[static_cast<std::size_t>(bi.trap_msg)];
      return result;
    }
    if (++result.steps > opt.max_steps) {
      result.error = "step limit exceeded";
      return result;
    }
    if (prof) ++prof->instr_executions[static_cast<std::size_t>(pc)];
    switch (bi.kind) {
    case BInst::Kind::Arith2: {
      const double a = fetch_real(bi.a);
      const double b = fetch_real(bi.b);
      const double r = bi.kernel2(p.specs[static_cast<std::size_t>(bi.spec)], a, b);
      regs[static_cast<std::size_t>(bi.dst)].real = r;
      ++counts[static_cast<std::size_t>(bi.op_counter)];
      if (ep) {
        const double s =
            shadow_op2(bi.op, fetch_shadow(bi.a), fetch_shadow(bi.b));
        shadow[static_cast<std::size_t>(bi.dst)] = s;
        record(ep->instr[static_cast<std::size_t>(pc)], r, s, pc, bi.src);
      }
      if (track_regs) observe_reg(bi.dst, r);
      ++pc;
      break;
    }
    case BInst::Kind::ExactFixed2: {
      const double a = fetch_exact(bi.a);
      const double b = fetch_exact(bi.b);
      const double r =
          bi.exact(p.exact_binds[static_cast<std::size_t>(bi.exact_bind)], a, b);
      regs[static_cast<std::size_t>(bi.dst)].real = r;
      ++counts[static_cast<std::size_t>(bi.op_counter)];
      if (ep) {
        const double s =
            shadow_op2(bi.op, fetch_shadow(bi.a), fetch_shadow(bi.b));
        shadow[static_cast<std::size_t>(bi.dst)] = s;
        record(ep->instr[static_cast<std::size_t>(pc)], r, s, pc, bi.src);
      }
      if (track_regs) observe_reg(bi.dst, r);
      ++pc;
      break;
    }
    case BInst::Kind::Arith1: {
      const double a = fetch_real(bi.a);
      const double r = bi.kernel1(p.specs[static_cast<std::size_t>(bi.spec)], a);
      regs[static_cast<std::size_t>(bi.dst)].real = r;
      ++counts[static_cast<std::size_t>(bi.op_counter)];
      if (ep) {
        const double s = shadow_op1(bi.op, fetch_shadow(bi.a));
        shadow[static_cast<std::size_t>(bi.dst)] = s;
        record(ep->instr[static_cast<std::size_t>(pc)], r, s, pc, bi.src);
      }
      if (track_regs) observe_reg(bi.dst, r);
      ++pc;
      break;
    }
    case BInst::Kind::CastReal: {
      const double r = fetch_real(bi.a);
      regs[static_cast<std::size_t>(bi.dst)].real = r;
      if (ep) {
        // Representation change only: the shadow value passes through.
        const double s = fetch_shadow(bi.a);
        shadow[static_cast<std::size_t>(bi.dst)] = s;
        record(ep->instr[static_cast<std::size_t>(pc)], r, s, pc, bi.src);
      }
      if (track_regs) observe_reg(bi.dst, r);
      ++pc;
      break;
    }
    case BInst::Kind::IntToReal: {
      const std::int64_t iv = fetch_int(bi.ia);
      const double r = bi.a.conv(p.specs[static_cast<std::size_t>(bi.a.spec)],
                                 static_cast<double>(iv));
      regs[static_cast<std::size_t>(bi.dst)].real = r;
      ++counts[static_cast<std::size_t>(bi.op_counter)];
      if (ep) {
        const double s = static_cast<double>(iv);
        shadow[static_cast<std::size_t>(bi.dst)] = s;
        record(ep->instr[static_cast<std::size_t>(pc)], r, s, pc, bi.src);
      }
      if (track_regs) observe_reg(bi.dst, r);
      ++pc;
      break;
    }
    case BInst::Kind::Load: {
      const std::size_t ix = flat_index(bi);
      double v = (*buffers[static_cast<std::size_t>(bi.array)])[ix];
      if (bi.a.cast_counter >= 0)
        ++counts[static_cast<std::size_t>(bi.a.cast_counter)];
      if (bi.a.conv) v = bi.a.conv(p.specs[static_cast<std::size_t>(bi.a.spec)], v);
      regs[static_cast<std::size_t>(bi.dst)].real = v;
      ++non_real;
      if (ep) {
        const double s = shadow_bufs[static_cast<std::size_t>(bi.array)][ix];
        shadow[static_cast<std::size_t>(bi.dst)] = s;
        record(ep->instr[static_cast<std::size_t>(pc)], v, s, pc, bi.src);
      }
      if (track_regs) observe_reg(bi.dst, v);
      ++pc;
      break;
    }
    case BInst::Kind::Store: {
      const std::size_t ix = flat_index(bi);
      const double v = fetch_real(bi.a);
      (*buffers[static_cast<std::size_t>(bi.array)])[ix] = v;
      if (ep) {
        const double s = fetch_shadow(bi.a);
        shadow_bufs[static_cast<std::size_t>(bi.array)][ix] = s;
        record(ep->instr[static_cast<std::size_t>(pc)], v, s, pc, bi.src);
      }
      if (track_arrays)
        observe_array(p.arrays[static_cast<std::size_t>(bi.array)].name, v);
      ++non_real;
      ++pc;
      break;
    }
    case BInst::Kind::IntArith: {
      const std::int64_t a = fetch_int(bi.ia);
      const std::int64_t b = fetch_int(bi.ib);
      std::int64_t r = 0;
      switch (bi.op) {
      case Opcode::IAdd: r = a + b; break;
      case Opcode::ISub: r = a - b; break;
      case Opcode::IMul: r = a * b; break;
      case Opcode::IDiv: r = b == 0 ? 0 : a / b; break;
      case Opcode::IRem: r = b == 0 ? 0 : a % b; break;
      case Opcode::IMin: r = std::min(a, b); break;
      case Opcode::IMax: r = std::max(a, b); break;
      default: LUIS_UNREACHABLE("not an int op");
      }
      regs[static_cast<std::size_t>(bi.dst)].integer = r;
      ++non_real;
      ++pc;
      break;
    }
    case BInst::Kind::IntCmp:
      regs[static_cast<std::size_t>(bi.dst)].boolean =
          compare(bi.pred, fetch_int(bi.ia), fetch_int(bi.ib));
      ++non_real;
      ++pc;
      break;
    case BInst::Kind::RealCmp: {
      const bool c = compare(bi.pred, fetch_real(bi.a), fetch_real(bi.b));
      regs[static_cast<std::size_t>(bi.dst)].boolean = c;
      if (ep) {
        // Control stays lockstep on the quantized outcome; a disagreement
        // with the shadow values means an independent binary64 run could
        // take a different path from here on.
        const bool sc =
            compare(bi.pred, fetch_shadow(bi.a), fetch_shadow(bi.b));
        if (sc != c) {
          if (ep->control_divergences == 0)
            ep->first_control_divergence_step = result.steps;
          ++ep->control_divergences;
        }
      }
      ++non_real;
      ++pc;
      break;
    }
    case BInst::Kind::SelectReal: {
      const bool c = regs[static_cast<std::size_t>(bi.cond)].boolean;
      if (prof && c) ++prof->select_real_first[static_cast<std::size_t>(pc)];
      const double v = fetch_real(c ? bi.a : bi.b);
      regs[static_cast<std::size_t>(bi.dst)].real = v;
      ++non_real;
      if (ep) {
        // The shadow takes the side the quantized condition chose.
        const double s = fetch_shadow(c ? bi.a : bi.b);
        shadow[static_cast<std::size_t>(bi.dst)] = s;
        record(ep->instr[static_cast<std::size_t>(pc)], v, s, pc, bi.src);
      }
      if (track_regs) observe_reg(bi.dst, v);
      ++pc;
      break;
    }
    case BInst::Kind::SelectInt: {
      const bool c = regs[static_cast<std::size_t>(bi.cond)].boolean;
      regs[static_cast<std::size_t>(bi.dst)].integer =
          fetch_int(c ? bi.ia : bi.ib);
      ++non_real;
      ++pc;
      break;
    }
    case BInst::Kind::Br:
      ++non_real;
      if (!apply_edge(bi.edge0)) return result;
      pc = p.blocks[static_cast<std::size_t>(bi.target0)].entry;
      break;
    case BInst::Kind::CondBr: {
      ++non_real;
      const bool c = regs[static_cast<std::size_t>(bi.cond)].boolean;
      if (!apply_edge(c ? bi.edge0 : bi.edge1)) return result;
      pc = p.blocks[static_cast<std::size_t>(c ? bi.target0 : bi.target1)].entry;
      break;
    }
    case BInst::Kind::Ret:
      result.ok = true;
      if (opt.count_costs) {
        for (std::size_t i = 0; i < counts.size(); ++i)
          if (counts[i] > 0) result.counters.ops[p.counter_keys[i]] = counts[i];
        result.counters.non_real_ops = non_real;
      }
      if (ep) {
        std::vector<const std::vector<double>*> qp(buffers.begin(),
                                                   buffers.end());
        std::vector<const std::vector<double>*> sp;
        sp.reserve(shadow_bufs.size());
        for (const auto& b : shadow_bufs) sp.push_back(&b);
        finalize_error_profile(*ep, p, qp, sp);
      }
      result.array_ranges = std::move(array_ranges);
      result.register_ranges = std::move(register_ranges);
      return result;
    case BInst::Kind::Trap:
      LUIS_UNREACHABLE("handled before the step check");
    }
  }
}

std::string disassemble(const CompiledProgram& p) {
  std::string out = "program " + p.function_name +
                    format_string(": %d regs, %zu blocks, %zu counters\n",
                                  p.num_regs, p.blocks.size(),
                                  p.counter_keys.size());
  const auto real_arg_text = [](const RealArg& a) {
    std::string s = a.reg >= 0 ? format_string("r%d", a.reg)
                               : format_string("#%g", a.imm);
    if (a.conv) s += "!";             // aligned into the result format
    if (a.cast_counter >= 0) s += "$"; // fetch bills a cast
    return s;
  };
  const auto int_arg_text = [](const IntArg& a) {
    return a.reg >= 0 ? format_string("r%d", a.reg)
                      : format_string("#%lld", static_cast<long long>(a.imm));
  };
  for (std::size_t b = 0; b < p.blocks.size(); ++b) {
    out += format_string("b%zu:\n", b);
    const std::int32_t end = b + 1 < p.blocks.size()
                                 ? p.blocks[b + 1].entry
                                 : static_cast<std::int32_t>(p.code.size());
    for (std::int32_t pc = p.blocks[b].entry; pc < end; ++pc) {
      const BInst& bi = p.code[static_cast<std::size_t>(pc)];
      out += format_string("  %4d: ", pc);
      switch (bi.kind) {
      case BInst::Kind::Arith2:
      case BInst::Kind::ExactFixed2:
        out += format_string("r%d = %s%s %s, %s", bi.dst,
                             ir::opcode_name(bi.op),
                             bi.kind == BInst::Kind::ExactFixed2 ? ".exact" : "",
                             real_arg_text(bi.a).c_str(),
                             real_arg_text(bi.b).c_str());
        break;
      case BInst::Kind::Arith1:
        out += format_string("r%d = %s %s", bi.dst, ir::opcode_name(bi.op),
                             real_arg_text(bi.a).c_str());
        break;
      case BInst::Kind::CastReal:
        out += format_string("r%d = cast %s", bi.dst,
                             real_arg_text(bi.a).c_str());
        break;
      case BInst::Kind::IntToReal:
        out += format_string("r%d = inttoreal %s", bi.dst,
                             int_arg_text(bi.ia).c_str());
        break;
      case BInst::Kind::Load:
      case BInst::Kind::Store: {
        std::string idx;
        for (std::int32_t d = 0; d < bi.index_count; ++d) {
          if (d) idx += ", ";
          idx += int_arg_text(
              p.index_args[static_cast<std::size_t>(bi.index_start + d)]);
        }
        const std::string& arr =
            p.arrays[static_cast<std::size_t>(bi.array)].name;
        if (bi.kind == BInst::Kind::Load)
          out += format_string("r%d = load @%s[%s]", bi.dst, arr.c_str(),
                               idx.c_str());
        else
          out += format_string("store %s -> @%s[%s]",
                               real_arg_text(bi.a).c_str(), arr.c_str(),
                               idx.c_str());
        break;
      }
      case BInst::Kind::IntArith:
        out += format_string("r%d = %s %s, %s", bi.dst, ir::opcode_name(bi.op),
                             int_arg_text(bi.ia).c_str(),
                             int_arg_text(bi.ib).c_str());
        break;
      case BInst::Kind::IntCmp:
        out += format_string("r%d = icmp %s %s, %s", bi.dst,
                             ir::to_string(bi.pred),
                             int_arg_text(bi.ia).c_str(),
                             int_arg_text(bi.ib).c_str());
        break;
      case BInst::Kind::RealCmp:
        out += format_string("r%d = fcmp %s %s, %s", bi.dst,
                             ir::to_string(bi.pred),
                             real_arg_text(bi.a).c_str(),
                             real_arg_text(bi.b).c_str());
        break;
      case BInst::Kind::SelectReal:
        out += format_string("r%d = select r%d, %s, %s", bi.dst, bi.cond,
                             real_arg_text(bi.a).c_str(),
                             real_arg_text(bi.b).c_str());
        break;
      case BInst::Kind::SelectInt:
        out += format_string("r%d = select r%d, %s, %s", bi.dst, bi.cond,
                             int_arg_text(bi.ia).c_str(),
                             int_arg_text(bi.ib).c_str());
        break;
      case BInst::Kind::Br:
        out += format_string("br b%d", bi.target0);
        break;
      case BInst::Kind::CondBr:
        out += format_string("condbr r%d, b%d, b%d", bi.cond, bi.target0,
                             bi.target1);
        break;
      case BInst::Kind::Ret:
        out += "ret";
        break;
      case BInst::Kind::Trap:
        out += "trap \"" +
               p.messages[static_cast<std::size_t>(bi.trap_msg)] + "\"";
        break;
      }
      out += "\n";
    }
  }
  return out;
}

std::string program_cache_key(const ir::Function& f,
                              const TypeAssignment& types,
                              const CompileOptions& options) {
  std::string key = options.exact_fixed_arithmetic ? "exact_fixed\n" : "model\n";
  key += ir::print_function(f);
  key += "#types\n";
  for (const auto& arr : f.arrays()) {
    key += types.of(arr.get()).name();
    key += '\n';
  }
  for (const auto& bb : f.blocks())
    for (const auto& inst : bb->instructions())
      if (inst->type() == ScalarType::Real) {
        key += types.of(inst.get()).name();
        key += '\n';
      }
  return key;
}

} // namespace luis::interp
