#include "interp/engine.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/diag.hpp"

namespace luis::interp {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

} // namespace

const char* to_string(EngineKind kind) {
  switch (kind) {
  case EngineKind::Reference: return "ref";
  case EngineKind::Vm: return "vm";
  }
  LUIS_UNREACHABLE("unknown engine kind");
}

std::optional<EngineKind> parse_engine(std::string_view name) {
  if (name == "ref" || name == "reference") return EngineKind::Reference;
  if (name == "vm") return EngineKind::Vm;
  return std::nullopt;
}

std::shared_ptr<const CompiledProgram> ProgramCache::lookup(
    const std::string& key) {
  obs::metrics().counter("program_cache.lookups").inc();
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.lookups;
  const auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  ++stats_.hits;
  obs::metrics().counter("program_cache.hits").inc();
  return it->second;
}

void ProgramCache::insert(const std::string& key,
                          std::shared_ptr<const CompiledProgram> program) {
  std::lock_guard<std::mutex> lock(mutex_);
  // First insert wins: concurrent compilers produced identical programs,
  // but first-wins keeps later hits independent of scheduling.
  if (entries_.emplace(key, std::move(program)).second) {
    ++stats_.insertions;
    obs::metrics().counter("program_cache.insertions").inc();
  }
}

ProgramCache::Stats ProgramCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ProgramCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void ProgramCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  stats_ = Stats{};
}

std::vector<RunResult>
ExecutionEngine::run_batch(const ir::Function& f,
                           std::span<const BatchRequest> lanes,
                           const BatchRunOptions& options) const {
  std::vector<RunResult> results;
  results.reserve(lanes.size());
  for (const BatchRequest& lane : lanes) {
    RunOptions ro = options.run;
    ro.vm_profile = lane.profile;
    ro.error_profile = lane.errors;
    results.push_back(run(f, *lane.types, *lane.store, ro));
  }
  return results;
}

RunResult ReferenceEngine::run(const ir::Function& f,
                               const TypeAssignment& types, ArrayStore& store,
                               const RunOptions& options) const {
  obs::TraceSpan span("ref.execute", "engine", [&] {
    return obs::Args().str("function", f.name()).done();
  });
  const auto t0 = std::chrono::steady_clock::now();
  RunResult result = run_function(f, types, store, options);
  result.execute_seconds = seconds_since(t0);
  obs::metrics().counter("engine.ref.runs").inc();
  obs::metrics().histogram("engine.ref.execute_seconds")
      .observe(result.execute_seconds);
  return result;
}

RunResult VmEngine::run(const ir::Function& f, const TypeAssignment& types,
                        ArrayStore& store, const RunOptions& options) const {
  CompileOptions copt;
  copt.exact_fixed_arithmetic = options.exact_fixed_arithmetic;

  const auto t0 = std::chrono::steady_clock::now();
  std::shared_ptr<const CompiledProgram> program;
  bool cache_hit = false;
  {
    obs::TraceSpan span("vm.compile", "engine", [&] {
      return obs::Args().str("function", f.name()).done();
    });
    if (cache_) {
      const std::string key = program_cache_key(f, types, copt);
      program = cache_->lookup(key);
      cache_hit = program != nullptr;
      if (!program) {
        program = std::make_shared<const CompiledProgram>(
            compile_program(f, types, copt));
        cache_->insert(key, program);
      }
    } else {
      program = std::make_shared<const CompiledProgram>(
          compile_program(f, types, copt));
    }
  }
  const double compile_seconds = seconds_since(t0);

  const auto t1 = std::chrono::steady_clock::now();
  RunResult result;
  {
    obs::TraceSpan span("vm.execute", "engine", [&] {
      return obs::Args()
          .str("function", f.name())
          .boolean("cache_hit", cache_hit)
          .done();
    });
    result = run_program(*program, f, store, options);
  }
  result.execute_seconds = seconds_since(t1);
  result.compile_seconds = compile_seconds;
  obs::metrics().counter("engine.vm.runs").inc();
  obs::metrics().histogram("engine.vm.compile_seconds").observe(compile_seconds);
  obs::metrics().histogram("engine.vm.execute_seconds")
      .observe(result.execute_seconds);
  return result;
}

std::vector<RunResult>
VmEngine::run_batch(const ir::Function& f, std::span<const BatchRequest> lanes,
                    const BatchRunOptions& options) const {
  if (lanes.empty()) return {};
  CompileOptions copt;
  copt.exact_fixed_arithmetic = options.run.exact_fixed_arithmetic;
  const auto n = lanes.size();

  // Resolve every lane against the cache, then lower all missing lanes in
  // one compile_programs() walk over the function. Mixing cached and
  // freshly compiled programs is sound: the structural skeleton depends
  // only on the printed IR and the compile options, never on the type
  // assignment.
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<const CompiledProgram>> programs(n);
  long cache_hits = 0;
  {
    obs::TraceSpan span("vm.batch_compile", "engine", [&] {
      return obs::Args().str("function", f.name()).num("lanes", n).done();
    });
    std::vector<std::string> keys(n);
    std::vector<std::size_t> missing;
    if (cache_) {
      for (std::size_t i = 0; i < n; ++i) {
        keys[i] = program_cache_key(f, *lanes[i].types, copt);
        programs[i] = cache_->lookup(keys[i]);
        if (programs[i])
          ++cache_hits;
        else
          missing.push_back(i);
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) missing.push_back(i);
    }
    if (!missing.empty()) {
      std::vector<const TypeAssignment*> types;
      types.reserve(missing.size());
      for (const std::size_t i : missing) types.push_back(lanes[i].types);
      std::vector<CompiledProgram> compiled = compile_programs(f, types, copt);
      for (std::size_t k = 0; k < missing.size(); ++k) {
        const std::size_t i = missing[k];
        programs[i] = std::make_shared<const CompiledProgram>(
            std::move(compiled[k]));
        if (cache_) cache_->insert(keys[i], programs[i]);
      }
    }
  }
  const double compile_seconds = seconds_since(t0);

  const auto t1 = std::chrono::steady_clock::now();
  std::vector<RunResult> results;
  {
    obs::TraceSpan span("vm.batch_execute", "engine", [&] {
      return obs::Args()
          .str("function", f.name())
          .num("lanes", n)
          .num("cache_hits", cache_hits)
          .done();
    });
    std::vector<BatchLane> bl(n);
    for (std::size_t i = 0; i < n; ++i) {
      bl[i].program = programs[i].get();
      bl[i].store = lanes[i].store;
      bl[i].profile = lanes[i].profile;
      bl[i].errors = lanes[i].errors;
    }
    results = run_batch_programs(bl, f, options);
  }
  const double execute_seconds = seconds_since(t1);
  for (RunResult& r : results) {
    r.compile_seconds = compile_seconds / static_cast<double>(n);
    r.execute_seconds = execute_seconds / static_cast<double>(n);
  }
  obs::metrics().counter("engine.vm.batch_runs").inc();
  obs::metrics().counter("engine.vm.batch_lanes").inc(static_cast<long>(n));
  obs::metrics().histogram("engine.vm.compile_seconds").observe(compile_seconds);
  obs::metrics().histogram("engine.vm.execute_seconds").observe(execute_seconds);
  return results;
}

std::unique_ptr<ExecutionEngine> make_engine(EngineKind kind,
                                             ProgramCache* cache) {
  if (kind == EngineKind::Vm) return std::make_unique<VmEngine>(cache);
  return std::make_unique<ReferenceEngine>();
}

} // namespace luis::interp
