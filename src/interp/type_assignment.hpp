// Mapping from IR values (virtual registers and arrays) to the concrete
// numeric representation chosen by the tuner. The interpreter executes a
// function *under* a TypeAssignment, which is how the same IR runs both as
// the binary64 reference and as the tuned mixed-precision program.
#pragma once

#include <map>

#include "ir/function.hpp"
#include "numrep/formats.hpp"

namespace luis::interp {

class TypeAssignment {
public:
  /// Default representation for values with no explicit entry.
  explicit TypeAssignment(numrep::ConcreteType fallback = {numrep::kBinary64, 0})
      : fallback_(fallback) {}

  void set(const ir::Value* value, numrep::ConcreteType type) {
    types_[value] = type;
  }

  const numrep::ConcreteType& of(const ir::Value* value) const {
    const auto it = types_.find(value);
    return it == types_.end() ? fallback_ : it->second;
  }

  bool has_explicit(const ir::Value* value) const { return types_.count(value) > 0; }
  std::size_t size() const { return types_.size(); }
  const std::map<const ir::Value*, numrep::ConcreteType>& entries() const {
    return types_;
  }

  /// Assigns `type` to every Real instruction and array of `f` (the
  /// "retype everything uniformly" baseline, e.g. all-binary32).
  static TypeAssignment uniform(const ir::Function& f, numrep::ConcreteType type);

private:
  numrep::ConcreteType fallback_;
  std::map<const ir::Value*, numrep::ConcreteType> types_;
};

} // namespace luis::interp
