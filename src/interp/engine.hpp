// Execution engines: one interface over the two ways LUIS runs IR.
//
// ReferenceEngine is the tree-walking interpreter (run_function) — the
// semantic ground truth. VmEngine lowers the (Function, TypeAssignment)
// pair to bytecode once (interp/bytecode.hpp) and runs the flat program;
// it produces bit-identical results and cost counters, just faster, and
// can share compiled programs across runs through a ProgramCache. The
// differential oracle in src/testing holds the two engines equal.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "interp/batch.hpp"
#include "interp/bytecode.hpp"
#include "interp/interpreter.hpp"

namespace luis::interp {

enum class EngineKind { Reference, Vm };

const char* to_string(EngineKind kind);

/// Parses "ref"/"reference"/"vm"; nullopt for anything else.
std::optional<EngineKind> parse_engine(std::string_view name);

/// Thread-safe cache of compiled programs, keyed by program_cache_key()
/// (printed IR + positional type serialization). Keys are pointer-free,
/// so jobs that re-parse the same kernel text into private modules share
/// entries. First insert wins, like the solver cache.
class ProgramCache {
public:
  struct Stats {
    long lookups = 0;
    long hits = 0;
    long insertions = 0;
    double hit_rate() const {
      return lookups > 0 ? static_cast<double>(hits) / lookups : 0.0;
    }
  };

  std::shared_ptr<const CompiledProgram> lookup(const std::string& key);
  void insert(const std::string& key,
              std::shared_ptr<const CompiledProgram> program);

  Stats stats() const;
  std::size_t size() const;
  void clear();

private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const CompiledProgram>>
      entries_;
  Stats stats_;
};

/// One lane of a batched run: a type assignment plus its private array
/// store (and optional per-lane VM profile). Stores must be distinct
/// objects per lane.
struct BatchRequest {
  const TypeAssignment* types = nullptr;
  ArrayStore* store = nullptr;
  VmProfile* profile = nullptr;
  ErrorProfile* errors = nullptr; ///< per-lane shadow-error profile
};

/// Abstract executor of a function under a type assignment. Engines are
/// stateless apart from an optional shared program cache, and safe to use
/// from multiple threads.
class ExecutionEngine {
public:
  virtual ~ExecutionEngine() = default;
  virtual EngineKind kind() const = 0;
  const char* name() const { return to_string(kind()); }

  /// Runs `f` under `types` with run_function() semantics: `store` seeds
  /// and receives array contents; results are bit-identical across
  /// engines. Fills RunResult::compile_seconds / execute_seconds.
  virtual RunResult run(const ir::Function& f, const TypeAssignment& types,
                        ArrayStore& store,
                        const RunOptions& options = {}) const = 0;

  /// Runs `f` once per lane and returns one RunResult per lane,
  /// bit-identical (outputs, steps, counters, ranges, trap diagnostics)
  /// to calling run() per lane. The base implementation is exactly that
  /// scalar loop; VmEngine overrides it with the multi-lane executor
  /// (interp/batch.hpp), which compiles the function once for all
  /// cache-missing lanes and interprets the shared control skeleton once
  /// per lane group. Per-lane compile/execute seconds are the batch
  /// totals split evenly.
  virtual std::vector<RunResult>
  run_batch(const ir::Function& f, std::span<const BatchRequest> lanes,
            const BatchRunOptions& options = {}) const;
};

/// The tree-walking interpreter behind the interface.
class ReferenceEngine final : public ExecutionEngine {
public:
  EngineKind kind() const override { return EngineKind::Reference; }
  RunResult run(const ir::Function& f, const TypeAssignment& types,
                ArrayStore& store,
                const RunOptions& options = {}) const override;
};

/// Compile-then-execute engine. With a cache, the compile phase becomes a
/// key render + lookup after the first run of each (kernel, assignment).
class VmEngine final : public ExecutionEngine {
public:
  explicit VmEngine(ProgramCache* cache = nullptr) : cache_(cache) {}
  EngineKind kind() const override { return EngineKind::Vm; }
  RunResult run(const ir::Function& f, const TypeAssignment& types,
                ArrayStore& store,
                const RunOptions& options = {}) const override;
  std::vector<RunResult>
  run_batch(const ir::Function& f, std::span<const BatchRequest> lanes,
            const BatchRunOptions& options = {}) const override;

private:
  ProgramCache* cache_;
};

std::unique_ptr<ExecutionEngine> make_engine(EngineKind kind,
                                             ProgramCache* cache = nullptr);

} // namespace luis::interp
