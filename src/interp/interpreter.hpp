// IR interpreter with representation-faithful numerics and dynamic cost
// accounting.
//
// This is the execution substrate standing in for the paper's four hardware
// platforms: functional results are produced by software arithmetic in the
// assigned representation of every value (so the MPE metric is faithful),
// and the dynamic operation/cast counts are priced by a platform's
// op-time table to obtain the simulated execution time used for the
// speedup metric.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "interp/type_assignment.hpp"

namespace luis::interp {

/// Dynamic execution profile: how many times each (operation, type-class)
/// and each (from-class, to-class) cast executed. Keys use the platform
/// characterization vocabulary ("add"/"fix", "cast_float"/"double", ...).
struct CostCounters {
  std::map<std::pair<std::string, std::string>, long> ops;
  long non_real_ops = 0; ///< index arithmetic, loads/stores, branches

  void count_op(const std::string& op, const std::string& type) {
    ++ops[{op, type}];
  }
  long total_real_ops() const;
};

/// Classifies a concrete type into the characterization vocabulary of
/// Table II: "fix", "float", "double" (plus "half", "bfloat16", "posit"
/// for the extension formats).
std::string cost_class(const numrep::ConcreteType& type);

struct RunResult {
  bool ok = false;
  std::string error;
  long steps = 0;
  CostCounters counters;
  /// Per-array observed value range (initial contents joined with every
  /// stored value). Filled when RunOptions::track_array_ranges is set;
  /// used to derive range annotations by profiling, the alternative the
  /// paper mentions to hand-written annotations.
  std::map<std::string, std::pair<double, double>> array_ranges;
  /// Per-instruction observed value range of every Real register. Filled
  /// when RunOptions::track_register_ranges is set; the basis of the
  /// dynamic-profiling range source (see vra::ranges_from_profile).
  std::map<const ir::Instruction*, std::pair<double, double>> register_ranges;
  /// Wall-clock split of the run, filled by the ExecutionEngine wrappers
  /// (see interp/engine.hpp): bytecode compilation (or program cache
  /// lookup) vs. execution. The reference engine reports zero compile
  /// time.
  double compile_seconds = 0.0;
  double execute_seconds = 0.0;
};

/// Array contents, indexed by array name. Input and output of a run.
using ArrayStore = std::map<std::string, std::vector<double>>;

/// Execution-count profile of one VM run, indexed by compiled-program
/// position (see interp/bytecode.hpp). The VM fills it when
/// RunOptions::vm_profile is set; the reference interpreter ignores it.
/// obs::build_hotspot_report prices these counts with a platform op-time
/// table and maps them back to source instructions — the attribution is
/// exact: the per-instruction costs sum to the run's simulated_time.
struct VmProfile {
  /// Times each program counter executed (index: pc into code).
  std::vector<long> instr_executions;
  /// Times each phi edge was applied (index: edge id), including the
  /// function-entry edge.
  std::vector<long> edge_applications;
  /// For SelectReal pcs: executions that chose the true-side operand
  /// (whose fetch may bill a different cast than the false side).
  std::vector<long> select_real_first;
};

/// Per-slot deviation accumulator of the shadow-execution error profiler.
/// Histogram buckets are decades: bucket i (0 < i < kBuckets-1) counts
/// errors in (10^(i-31), 10^(i-30)]; bucket 0 absorbs everything <= 1e-30
/// (including exact zeros), the last bucket everything above 1e+2 plus
/// non-finite deviations. Decade buckets from 1e-30 cover the full span
/// from binary64 rounding noise to FP8/fixed saturation error — the
/// obs::Histogram layout (4x from 1e-7) cannot resolve the small end.
struct ErrorCell {
  static constexpr int kBuckets = 34;
  long count = 0;
  double sum_abs = 0.0, max_abs = 0.0;
  double sum_rel = 0.0, max_rel = 0.0;
  long hist_abs[kBuckets] = {};
  long hist_rel[kBuckets] = {};

  /// Bucket index of one error magnitude (NaN maps to the top bucket).
  static int bucket(double v);
  /// Inclusive upper bound of bucket `i` (+inf for the last).
  static double bucket_upper_bound(int i);
  void observe(double abs_err, double rel_err);
  void merge(const ErrorCell& other);
};

/// Final-contents deviation summary of one array after a shadow-mode run.
struct ArrayErrorStats {
  std::string name;
  bool stored = false; ///< array was the target of at least one Store
  long elements = 0;
  double max_abs = 0.0; ///< max |quantized - shadow| over all elements
  double max_rel = 0.0; ///< max relative deviation (vs the shadow value)
  double mpe = 0.0;     ///< mean_percentage_error(shadow, quantized)
  bool finite = true;   ///< no non-finite element in either buffer
};

/// Output of a shadow-mode run (RunOptions::error_profile): the VM carries
/// a lockstep binary64 shadow value for every real register and array slot
/// and records the deviation of every quantized real write here, indexed
/// like VmProfile (per compiled pc, per phi-move ordinal). The shadow
/// follows the *quantized* run's control flow; when control_divergences is
/// zero, every dynamic comparison agreed between the two worlds, so the
/// shadow outputs are bit-identical to an independent binary64 run of the
/// same inputs (the fuzz oracle checks exactly that).
struct ErrorProfile {
  /// Input: relative deviation above which a write counts as a spike (one
  /// trace instant per pc per run, plus the first_spike_* fields).
  double spike_rel_threshold = 1e-3;

  std::vector<ErrorCell> instr; ///< per compiled pc
  std::vector<ErrorCell> moves; ///< per phi-move ordinal
  /// First write whose relative deviation crossed the threshold. The pc
  /// is -1 for phi moves; the src ordinal (phi: the phi's own ordinal)
  /// always identifies the source line.
  long first_spike_step = -1;
  std::int32_t first_spike_pc = -1;
  std::int32_t first_spike_src = -1;
  double first_spike_rel = 0.0;
  /// Dynamic comparisons (RealCmp) whose quantized outcome differed from
  /// the outcome on the shadow values, and the step of the first one.
  long control_divergences = 0;
  long first_control_divergence_step = -1;
  /// Filled at Ret from the final buffer contents (empty if the run
  /// trapped first; `finalized` distinguishes the two).
  std::vector<ArrayErrorStats> arrays;
  /// MPE of the concatenated stored-to arrays, quantized vs shadow — the
  /// in-engine whole-program MPE (same definition the sweep driver uses).
  double program_mpe = 0.0;
  bool finalized = false;
  /// Final binary64 shadow contents of every array, for reconciliation.
  std::map<std::string, std::vector<double>> shadow_arrays;
};

/// The binary64 shadow operations: the same libm entry points the numrep
/// kernels fuse with their rounding step, minus the rounding step.
double shadow_op2(ir::Opcode op, double a, double b);
double shadow_op1(ir::Opcode op, double a);

struct RunOptions {
  long max_steps = 500'000'000;
  bool count_costs = true;
  bool track_array_ranges = false;
  bool track_register_ranges = false;
  /// Execute fixed point add/sub/mul/div through exact integer arithmetic
  /// (numrep's mixed-format FixedValue ops) instead of the default
  /// compute-in-binary64-then-quantize model. The two paths agree to one
  /// unit in the last place; the exact path is bit-faithful to what
  /// TAFFO-generated integer code computes.
  bool exact_fixed_arithmetic = false;
  /// When set, the VM engine records per-pc execution counts here (the
  /// vectors are sized and zeroed by run_program). Ignored by the
  /// reference engine.
  VmProfile* vm_profile = nullptr;
  /// When set, the VM engine runs a lockstep binary64 shadow and records
  /// per-pc deviation accumulators here (sized and zeroed by run_program).
  /// Quantized results are bit-identical with or without the shadow.
  /// Ignored by the reference engine.
  ErrorProfile* error_profile = nullptr;
};

/// Executes `f` under `types`. `store` provides the initial contents of
/// every array (missing arrays are zero-initialized) and receives the
/// final contents. Array contents are quantized into the array's assigned
/// representation both at initialization and on every store.
RunResult run_function(const ir::Function& f, const TypeAssignment& types,
                       ArrayStore& store, const RunOptions& options = {});

} // namespace luis::interp
