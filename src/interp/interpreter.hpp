// IR interpreter with representation-faithful numerics and dynamic cost
// accounting.
//
// This is the execution substrate standing in for the paper's four hardware
// platforms: functional results are produced by software arithmetic in the
// assigned representation of every value (so the MPE metric is faithful),
// and the dynamic operation/cast counts are priced by a platform's
// op-time table to obtain the simulated execution time used for the
// speedup metric.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "interp/type_assignment.hpp"

namespace luis::interp {

/// Dynamic execution profile: how many times each (operation, type-class)
/// and each (from-class, to-class) cast executed. Keys use the platform
/// characterization vocabulary ("add"/"fix", "cast_float"/"double", ...).
struct CostCounters {
  std::map<std::pair<std::string, std::string>, long> ops;
  long non_real_ops = 0; ///< index arithmetic, loads/stores, branches

  void count_op(const std::string& op, const std::string& type) {
    ++ops[{op, type}];
  }
  long total_real_ops() const;
};

/// Classifies a concrete type into the characterization vocabulary of
/// Table II: "fix", "float", "double" (plus "half", "bfloat16", "posit"
/// for the extension formats).
std::string cost_class(const numrep::ConcreteType& type);

struct RunResult {
  bool ok = false;
  std::string error;
  long steps = 0;
  CostCounters counters;
  /// Per-array observed value range (initial contents joined with every
  /// stored value). Filled when RunOptions::track_array_ranges is set;
  /// used to derive range annotations by profiling, the alternative the
  /// paper mentions to hand-written annotations.
  std::map<std::string, std::pair<double, double>> array_ranges;
  /// Per-instruction observed value range of every Real register. Filled
  /// when RunOptions::track_register_ranges is set; the basis of the
  /// dynamic-profiling range source (see vra::ranges_from_profile).
  std::map<const ir::Instruction*, std::pair<double, double>> register_ranges;
  /// Wall-clock split of the run, filled by the ExecutionEngine wrappers
  /// (see interp/engine.hpp): bytecode compilation (or program cache
  /// lookup) vs. execution. The reference engine reports zero compile
  /// time.
  double compile_seconds = 0.0;
  double execute_seconds = 0.0;
};

/// Array contents, indexed by array name. Input and output of a run.
using ArrayStore = std::map<std::string, std::vector<double>>;

/// Execution-count profile of one VM run, indexed by compiled-program
/// position (see interp/bytecode.hpp). The VM fills it when
/// RunOptions::vm_profile is set; the reference interpreter ignores it.
/// obs::build_hotspot_report prices these counts with a platform op-time
/// table and maps them back to source instructions — the attribution is
/// exact: the per-instruction costs sum to the run's simulated_time.
struct VmProfile {
  /// Times each program counter executed (index: pc into code).
  std::vector<long> instr_executions;
  /// Times each phi edge was applied (index: edge id), including the
  /// function-entry edge.
  std::vector<long> edge_applications;
  /// For SelectReal pcs: executions that chose the true-side operand
  /// (whose fetch may bill a different cast than the false side).
  std::vector<long> select_real_first;
};

struct RunOptions {
  long max_steps = 500'000'000;
  bool count_costs = true;
  bool track_array_ranges = false;
  bool track_register_ranges = false;
  /// Execute fixed point add/sub/mul/div through exact integer arithmetic
  /// (numrep's mixed-format FixedValue ops) instead of the default
  /// compute-in-binary64-then-quantize model. The two paths agree to one
  /// unit in the last place; the exact path is bit-faithful to what
  /// TAFFO-generated integer code computes.
  bool exact_fixed_arithmetic = false;
  /// When set, the VM engine records per-pc execution counts here (the
  /// vectors are sized and zeroed by run_program). Ignored by the
  /// reference engine.
  VmProfile* vm_profile = nullptr;
};

/// Executes `f` under `types`. `store` provides the initial contents of
/// every array (missing arrays are zero-initialized) and receives the
/// final contents. Array contents are quantized into the array's assigned
/// representation both at initialization and on every store.
RunResult run_function(const ir::Function& f, const TypeAssignment& types,
                       ArrayStore& store, const RunOptions& options = {});

} // namespace luis::interp
