#include "interp/interpreter.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "numrep/fixed_point.hpp"
#include "numrep/quantize.hpp"
#include "numrep/registry.hpp"
#include "support/diag.hpp"

namespace luis::interp {

using ir::Instruction;
using ir::Opcode;
using ir::ScalarType;
using numrep::ConcreteType;

long CostCounters::total_real_ops() const {
  long n = 0;
  for (const auto& [key, count] : ops) n += count;
  return n;
}

std::string cost_class(const ConcreteType& type) {
  return numrep::format_ops(type).cost_class(type.format);
}

int ErrorCell::bucket(double v) {
  if (std::isnan(v)) return kBuckets - 1;
  if (!(v > 1e-30)) return 0;
  const double lg = std::ceil(std::log10(v));
  if (lg > 2.0) return kBuckets - 1;
  return static_cast<int>(lg) + 30;
}

double ErrorCell::bucket_upper_bound(int i) {
  if (i >= kBuckets - 1)
    return std::numeric_limits<double>::infinity();
  return std::pow(10.0, i - 30);
}

void ErrorCell::observe(double abs_err, double rel_err) {
  ++count;
  sum_abs += abs_err;
  if (abs_err > max_abs || std::isnan(abs_err))
    max_abs = std::isnan(abs_err)
                  ? std::numeric_limits<double>::infinity()
                  : abs_err;
  sum_rel += rel_err;
  if (rel_err > max_rel || std::isnan(rel_err))
    max_rel = std::isnan(rel_err)
                  ? std::numeric_limits<double>::infinity()
                  : rel_err;
  ++hist_abs[bucket(abs_err)];
  ++hist_rel[bucket(rel_err)];
}

void ErrorCell::merge(const ErrorCell& other) {
  count += other.count;
  sum_abs += other.sum_abs;
  max_abs = std::max(max_abs, other.max_abs);
  sum_rel += other.sum_rel;
  max_rel = std::max(max_rel, other.max_rel);
  for (int i = 0; i < kBuckets; ++i) {
    hist_abs[i] += other.hist_abs[i];
    hist_rel[i] += other.hist_rel[i];
  }
}

double shadow_op2(Opcode op, double a, double b) {
  switch (op) {
  case Opcode::Add: return a + b;
  case Opcode::Sub: return a - b;
  case Opcode::Mul: return a * b;
  case Opcode::Div: return a / b;
  case Opcode::Rem: return std::fmod(a, b);
  case Opcode::Pow: return std::pow(a, b);
  case Opcode::Min: return std::fmin(a, b);
  case Opcode::Max: return std::fmax(a, b);
  default: LUIS_UNREACHABLE("not a binary real op");
  }
}

double shadow_op1(Opcode op, double a) {
  switch (op) {
  case Opcode::Neg: return -a;
  case Opcode::Abs: return std::abs(a);
  case Opcode::Sqrt: return std::sqrt(a);
  case Opcode::Exp: return std::exp(a);
  default: LUIS_UNREACHABLE("not a unary real op");
  }
}

namespace {

struct Slot {
  double real = 0.0;
  std::int64_t integer = 0;
  bool boolean = false;
};

class Machine {
public:
  Machine(const ir::Function& f, const TypeAssignment& types, ArrayStore& store,
          const RunOptions& opt)
      : f_(f), types_(types), store_(store), opt_(opt) {}

  RunResult run() {
    RunResult result;
    // Index instructions and bind array buffers.
    std::size_t n = 0;
    for (const auto& bb : f_.blocks())
      for (const auto& inst : bb->instructions()) slot_index_[inst.get()] = n++;
    slots_.assign(n, Slot{});

    for (const auto& arr : f_.arrays()) {
      auto& buf = store_[arr->name()];
      buf.resize(static_cast<std::size_t>(arr->element_count()), 0.0);
      // Quantize initial contents into the array's representation.
      const ConcreteType at = types_.of(arr.get());
      for (double& v : buf) {
        v = numrep::quantize(at, v);
        if (opt_.track_array_ranges) observe(arr.get(), v);
      }
      buffers_[arr.get()] = &buf;
    }

    const ir::BasicBlock* prev = nullptr;
    const ir::BasicBlock* cur = f_.entry();
    std::vector<std::pair<const Instruction*, Slot>> phi_updates;
    while (cur) {
      // Phis read their incoming values simultaneously.
      phi_updates.clear();
      std::size_t first_non_phi = 0;
      const auto& insts = cur->instructions();
      while (first_non_phi < insts.size() && insts[first_non_phi]->is_phi()) {
        const Instruction* phi = insts[first_non_phi].get();
        int incoming = -1;
        for (std::size_t i = 0; i < phi->incoming_blocks().size(); ++i)
          if (phi->incoming_blocks()[i] == prev) incoming = static_cast<int>(i);
        if (incoming < 0) {
          result.error = "phi has no incoming edge for predecessor";
          return result;
        }
        Slot s;
        const ir::Value* in = phi->operand(static_cast<std::size_t>(incoming));
        if (phi->type() == ScalarType::Int) {
          s.integer = int_of(in);
        } else if (in->is_constant()) {
          s.real = numrep::quantize(types_.of(phi), real_of(in));
        } else {
          s.real = convert(real_of(in), types_.of(in), types_.of(phi));
        }
        phi_updates.emplace_back(phi, s);
        ++first_non_phi;
      }
      for (const auto& [phi, slot] : phi_updates) slots_[slot_index_[phi]] = slot;
      if (opt_.track_register_ranges)
        for (const auto& [phi, slot] : phi_updates)
          if (phi->type() == ScalarType::Real) observe_register(phi, slot.real);
      result.steps += static_cast<long>(phi_updates.size());

      const ir::BasicBlock* next = nullptr;
      for (std::size_t i = first_non_phi; i < insts.size(); ++i) {
        const Instruction* inst = insts[i].get();
        if (++result.steps > opt_.max_steps) {
          result.error = "step limit exceeded";
          return result;
        }
        if (inst->is_terminator()) {
          if (inst->opcode() == Opcode::Ret) {
            result.ok = true;
            result.counters = std::move(counters_);
            result.array_ranges = std::move(observed_);
            result.register_ranges = std::move(observed_registers_);
            return result;
          }
          if (inst->opcode() == Opcode::Br) {
            next = inst->target(0);
          } else {
            next = bool_of(inst->operand(0)) ? inst->target(0) : inst->target(1);
          }
          count_non_real();
          break;
        }
        execute(inst);
        if (opt_.track_register_ranges && inst->type() == ScalarType::Real)
          observe_register(inst, slots_[slot_index_.at(inst)].real);
      }
      if (!next) {
        result.error = "block fell through without a terminator";
        return result;
      }
      prev = cur;
      cur = next;
    }
    result.error = "no entry block";
    return result;
  }

private:
  double real_of(const ir::Value* v) {
    if (v->kind() == ir::Value::Kind::ConstReal)
      return static_cast<const ir::ConstReal*>(v)->value();
    return slots_[slot_index_.at(static_cast<const Instruction*>(v))].real;
  }
  std::int64_t int_of(const ir::Value* v) {
    if (v->kind() == ir::Value::Kind::ConstInt)
      return static_cast<const ir::ConstInt*>(v)->value();
    return slots_[slot_index_.at(static_cast<const Instruction*>(v))].integer;
  }
  bool bool_of(const ir::Value* v) {
    return slots_[slot_index_.at(static_cast<const Instruction*>(v))].boolean;
  }

  /// Converts a value between representations, counting the cast.
  /// Constants are materialized directly in the target format (no cast).
  double convert(double value, const ConcreteType& from, const ConcreteType& to) {
    if (from == to) return value;
    if (opt_.count_costs)
      counters_.count_op("cast_" + cost_class(from), cost_class(to));
    return numrep::quantize(to, value);
  }

  /// Fetches a real operand for an instruction of format `target`.
  ///
  /// If `align` is set, the value is numerically converted into `target`
  /// — the semantics of add/sub-style operations, whose operands are
  /// rescaled to a common format before the ALU sees them (safe because
  /// the result's range bounds the aligned operands' magnitudes).
  ///
  /// Multiplicative and unary operations read operands in their own
  /// formats and rescale only the result (what TAFFO's generated fixed
  /// point code does); for those `align` is false: the cast is still
  /// *counted* when the formats differ, but no numeric conversion is
  /// applied, so a small result range can never saturate a large operand.
  double real_operand(const Instruction* inst, std::size_t idx,
                      const ConcreteType& target, bool align = true) {
    const ir::Value* v = inst->operand(idx);
    const double raw = real_of(v);
    if (v->is_constant())
      return align ? numrep::quantize(target, raw) : raw;
    const ConcreteType& from = types_.of(v);
    if (from == target) return raw;
    // Fixed->fixed realignment on a non-aligning op is folded into the
    // operation's own rescaling step (a multiply shifts the product by
    // fa+fb-fr regardless of the operand formats), so it is not billed.
    const bool folded_shift =
        !align && from.format.is_fixed() && target.format.is_fixed();
    if (opt_.count_costs && !folded_shift)
      counters_.count_op("cast_" + cost_class(from), cost_class(target));
    return align ? numrep::quantize(target, raw) : raw;
  }

  void count_non_real() {
    if (opt_.count_costs) ++counters_.non_real_ops;
  }

  /// Exact integer execution of a fixed point binary op. Returns false for
  /// opcodes or operand formats the exact path does not cover (the caller
  /// falls through to the compute-in-double model).
  bool execute_exact_fixed(const Instruction* inst, const ConcreteType& ty,
                           Slot& out) {
    const Opcode op = inst->opcode();
    if (op != Opcode::Add && op != Opcode::Sub && op != Opcode::Mul &&
        op != Opcode::Div)
      return false;
    auto operand_type = [&](const ir::Value* v) {
      return v->is_constant() ? ty : types_.of(v);
    };
    const ConcreteType ta = operand_type(inst->operand(0));
    const ConcreteType tb = operand_type(inst->operand(1));
    if (!ta.format.is_fixed() || !tb.format.is_fixed()) return false;

    using numrep::FixedSpec;
    using numrep::FixedValue;
    const FixedValue fa =
        FixedValue::from_double(FixedSpec::from(ta), real_of(inst->operand(0)));
    const FixedValue fb =
        FixedValue::from_double(FixedSpec::from(tb), real_of(inst->operand(1)));
    const FixedSpec spec = FixedSpec::from(ty);
    FixedValue r{spec, 0};
    switch (op) {
    case Opcode::Add: r = numrep::fixed_add_mixed(fa, fb, spec); break;
    case Opcode::Sub: r = numrep::fixed_sub_mixed(fa, fb, spec); break;
    case Opcode::Mul: r = numrep::fixed_mul_mixed(fa, fb, spec); break;
    case Opcode::Div: r = numrep::fixed_div_mixed(fa, fb, spec); break;
    default: LUIS_UNREACHABLE("covered above");
    }
    out.real = r.to_double();
    if (opt_.count_costs) counters_.count_op(ir::opcode_name(op), cost_class(ty));
    return true;
  }

  void observe(const ir::Array* arr, double v) {
    if (std::isnan(v)) return;
    auto [it, fresh] = observed_.try_emplace(arr->name(), v, v);
    if (!fresh) {
      it->second.first = std::min(it->second.first, v);
      it->second.second = std::max(it->second.second, v);
    }
  }

  void observe_register(const Instruction* inst, double v) {
    if (std::isnan(v)) return;
    auto [it, fresh] = observed_registers_.try_emplace(inst, v, v);
    if (!fresh) {
      it->second.first = std::min(it->second.first, v);
      it->second.second = std::max(it->second.second, v);
    }
  }

  void execute(const Instruction* inst) {
    Slot& out = slots_[slot_index_.at(inst)];
    const ConcreteType ty = types_.of(inst);
    switch (inst->opcode()) {
    case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::Div:
    case Opcode::Rem: case Opcode::Pow: case Opcode::Min: case Opcode::Max: {
      // Additive ops align operands into the result format; multiplicative
      // ones rescale only the result.
      const bool align = inst->opcode() == Opcode::Add ||
                         inst->opcode() == Opcode::Sub ||
                         inst->opcode() == Opcode::Min ||
                         inst->opcode() == Opcode::Max;
      const double a = real_operand(inst, 0, ty, align);
      const double b = real_operand(inst, 1, ty, align);
      if (opt_.exact_fixed_arithmetic && ty.format.is_fixed() &&
          execute_exact_fixed(inst, ty, out))
        break;
      double r = 0.0;
      switch (inst->opcode()) {
      case Opcode::Add: r = a + b; break;
      case Opcode::Sub: r = a - b; break;
      case Opcode::Mul: r = a * b; break;
      case Opcode::Div: r = a / b; break;
      case Opcode::Rem: r = std::fmod(a, b); break;
      case Opcode::Pow: r = std::pow(a, b); break;
      case Opcode::Min: r = std::fmin(a, b); break;
      case Opcode::Max: r = std::fmax(a, b); break;
      default: break;
      }
      out.real = numrep::quantize(ty, r);
      if (opt_.count_costs)
        counters_.count_op(ir::opcode_name(inst->opcode()), cost_class(ty));
      break;
    }
    case Opcode::Neg: case Opcode::Abs: case Opcode::Sqrt: case Opcode::Exp: {
      const double a = real_operand(inst, 0, ty, /*align=*/false);
      double r = 0.0;
      switch (inst->opcode()) {
      case Opcode::Neg: r = -a; break;
      case Opcode::Abs: r = std::abs(a); break;
      case Opcode::Sqrt: r = std::sqrt(a); break;
      case Opcode::Exp: r = std::exp(a); break;
      default: break;
      }
      out.real = numrep::quantize(ty, r);
      if (opt_.count_costs)
        counters_.count_op(ir::opcode_name(inst->opcode()), cost_class(ty));
      break;
    }
    case Opcode::Cast: {
      // Explicit representation change: the conversion cost is counted by
      // the operand fetch.
      out.real = real_operand(inst, 0, ty);
      break;
    }
    case Opcode::IntToReal: {
      out.real = numrep::quantize(ty, static_cast<double>(int_of(inst->operand(0))));
      if (opt_.count_costs)
        counters_.count_op("cast_fix", cost_class(ty)); // int->real conversion
      break;
    }
    case Opcode::Load: {
      const auto* arr = static_cast<const ir::Array*>(inst->operand(0));
      out.real = convert((*buffers_.at(arr))[flat_index(inst, arr, 1)],
                         types_.of(arr), ty);
      count_non_real();
      break;
    }
    case Opcode::Store: {
      const auto* arr = static_cast<const ir::Array*>(inst->operand(1));
      const ConcreteType at = types_.of(arr);
      const double v = real_operand(inst, 0, at);
      (*buffers_.at(arr))[flat_index(inst, arr, 2)] = v;
      if (opt_.track_array_ranges) observe(arr, v);
      count_non_real();
      break;
    }
    case Opcode::IAdd: out.integer = int_of(inst->operand(0)) + int_of(inst->operand(1)); count_non_real(); break;
    case Opcode::ISub: out.integer = int_of(inst->operand(0)) - int_of(inst->operand(1)); count_non_real(); break;
    case Opcode::IMul: out.integer = int_of(inst->operand(0)) * int_of(inst->operand(1)); count_non_real(); break;
    case Opcode::IDiv: {
      const std::int64_t d = int_of(inst->operand(1));
      out.integer = d == 0 ? 0 : int_of(inst->operand(0)) / d;
      count_non_real();
      break;
    }
    case Opcode::IRem: {
      const std::int64_t d = int_of(inst->operand(1));
      out.integer = d == 0 ? 0 : int_of(inst->operand(0)) % d;
      count_non_real();
      break;
    }
    case Opcode::IMin: out.integer = std::min(int_of(inst->operand(0)), int_of(inst->operand(1))); count_non_real(); break;
    case Opcode::IMax: out.integer = std::max(int_of(inst->operand(0)), int_of(inst->operand(1))); count_non_real(); break;
    case Opcode::ICmp: {
      const std::int64_t a = int_of(inst->operand(0));
      const std::int64_t b = int_of(inst->operand(1));
      out.boolean = compare(inst->predicate(), a, b);
      count_non_real();
      break;
    }
    case Opcode::FCmp: {
      // Comparison happens on the stored representations directly.
      const double a = real_of(inst->operand(0));
      const double b = real_of(inst->operand(1));
      out.boolean = compare(inst->predicate(), a, b);
      count_non_real();
      break;
    }
    case Opcode::Select: {
      const bool c = bool_of(inst->operand(0));
      if (inst->type() == ScalarType::Int) {
        out.integer = int_of(inst->operand(c ? 1 : 2));
      } else {
        out.real = real_operand(inst, c ? 1 : 2, ty);
      }
      count_non_real();
      break;
    }
    case Opcode::Phi:
    case Opcode::Br:
    case Opcode::CondBr:
    case Opcode::Ret:
      LUIS_UNREACHABLE("handled by the block driver");
    }
  }

  template <typename T> static bool compare(ir::CmpPred pred, T a, T b) {
    switch (pred) {
    case ir::CmpPred::EQ: return a == b;
    case ir::CmpPred::NE: return a != b;
    case ir::CmpPred::LT: return a < b;
    case ir::CmpPred::LE: return a <= b;
    case ir::CmpPred::GT: return a > b;
    case ir::CmpPred::GE: return a >= b;
    }
    LUIS_UNREACHABLE("unknown predicate");
  }

  std::size_t flat_index(const Instruction* inst, const ir::Array* arr,
                         std::size_t first_idx_operand) {
    std::size_t flat = 0;
    const auto& dims = arr->dims();
    for (std::size_t d = 0; d < dims.size(); ++d) {
      std::int64_t idx = int_of(inst->operand(first_idx_operand + d));
      LUIS_ASSERT(idx >= 0 && idx < dims[d],
                  "array index out of bounds on " + arr->name());
      flat = flat * static_cast<std::size_t>(dims[d]) + static_cast<std::size_t>(idx);
    }
    return flat;
  }

  const ir::Function& f_;
  const TypeAssignment& types_;
  ArrayStore& store_;
  const RunOptions& opt_;
  std::map<const Instruction*, std::size_t> slot_index_;
  std::vector<Slot> slots_;
  std::map<const ir::Array*, std::vector<double>*> buffers_;
  CostCounters counters_;
  std::map<std::string, std::pair<double, double>> observed_;
  std::map<const Instruction*, std::pair<double, double>> observed_registers_;
};

} // namespace

TypeAssignment TypeAssignment::uniform(const ir::Function& f,
                                       ConcreteType type) {
  TypeAssignment out;
  for (const auto& arr : f.arrays()) out.set(arr.get(), type);
  for (const auto& bb : f.blocks())
    for (const auto& inst : bb->instructions())
      if (inst->type() == ir::ScalarType::Real) out.set(inst.get(), type);
  return out;
}

RunResult run_function(const ir::Function& f, const TypeAssignment& types,
                       ArrayStore& store, const RunOptions& options) {
  return Machine(f, types, store, options).run();
}

} // namespace luis::interp
