#include "analysis/lint.hpp"

#include <algorithm>
#include <sstream>

#include "ir/printer.hpp"

namespace luis::analysis {

// Implemented in checks.cpp.
void check_assignment_completeness(const LintContext&, DiagnosticEngine&);
void check_dangling_entries(const LintContext&, DiagnosticEngine&);
void check_same_type_operands(const LintContext&, DiagnosticEngine&);
void check_fixed_point_overflow(const LintContext&, DiagnosticEngine&);
void check_precision_loss_casts(const LintContext&, DiagnosticEngine&);
void check_redundant_casts(const LintContext&, DiagnosticEngine&);
void check_range_escape(const LintContext&, DiagnosticEngine&);
// Implemented in checks_error.cpp (need a LintContext with an ErrorMap).
void check_error_budget(const LintContext&, DiagnosticEngine&);
void check_error_dominated(const LintContext&, DiagnosticEngine&);
void check_cancellation(const LintContext&, DiagnosticEngine&);
void check_phi_imbalance(const LintContext&, DiagnosticEngine&);

namespace {

constexpr LintPass kPasses[] = {
    {"assignment-completeness", "L001", check_assignment_completeness},
    {"dangling-entry", "L002", check_dangling_entries},
    {"same-type-operands", "L003", check_same_type_operands},
    {"fixed-point-overflow", "L004", check_fixed_point_overflow},
    {"precision-loss-cast", "L005", check_precision_loss_casts},
    {"redundant-cast", "L006", check_redundant_casts},
    {"range-escape", "L007", check_range_escape},
    {"error-budget-exceeded", "L008", check_error_budget},
    {"error-dominated-output", "L009", check_error_dominated},
    {"catastrophic-cancellation", "L010", check_cancellation},
    {"phi-error-imbalance", "L011", check_phi_imbalance},
};

} // namespace

std::span<const LintPass> lint_passes() { return kPasses; }

std::string LintContext::describe(const ir::Value* value) const {
  if (value->is_array()) return "@" + value->name();
  if (value->kind() == ir::Value::Kind::ConstReal) {
    std::ostringstream os;
    os << "const " << static_cast<const ir::ConstReal*>(value)->value();
    return os.str();
  }
  if (value->kind() == ir::Value::Kind::ConstInt) {
    std::ostringstream os;
    os << "const " << static_cast<const ir::ConstInt*>(value)->value();
    return os.str();
  }
  const auto* inst = static_cast<const ir::Instruction*>(value);
  std::ostringstream os;
  const auto it = ids.find(inst);
  if (it != ids.end())
    os << "%" << it->second << " ";
  os << "(" << ir::to_string(inst->opcode());
  if (inst->parent()) os << " in " << inst->parent()->name();
  os << ")";
  return os.str();
}

DiagnosticEngine run_lint(const ir::Function& function,
                          const interp::TypeAssignment& assignment,
                          const vra::RangeMap& ranges,
                          const LintOptions& options, const ErrorMap* errors) {
  LintContext context{function,
                      assignment,
                      ranges,
                      options,
                      ir::number_instructions(function),
                      ir::compute_uses(function),
                      errors};
  DiagnosticEngine engine;
  const auto& disabled = options.disabled_codes;
  for (const LintPass& pass : kPasses) {
    if (std::find(disabled.begin(), disabled.end(), pass.codes) !=
        disabled.end())
      continue;
    pass.run(context, engine);
  }
  return engine;
}

} // namespace luis::analysis
