#include "analysis/diagnostics.hpp"

#include <cstdio>
#include <sstream>

namespace luis::analysis {

const char* to_string(Severity severity) {
  switch (severity) {
  case Severity::Note: return "note";
  case Severity::Warning: return "warning";
  case Severity::Error: return "error";
  }
  return "?";
}

std::string Diagnostic::to_text() const {
  std::ostringstream os;
  os << to_string(severity) << " [" << code << "] " << location << ": "
     << message;
  if (!fix_hint.empty()) os << " (fix: " << fix_hint << ")";
  return os.str();
}

int DiagnosticEngine::count(Severity severity) const {
  int n = 0;
  for (const Diagnostic& d : diagnostics_)
    if (d.severity == severity) ++n;
  return n;
}

int DiagnosticEngine::count_code(const std::string& code) const {
  int n = 0;
  for (const Diagnostic& d : diagnostics_)
    if (d.code == code) ++n;
  return n;
}

std::string DiagnosticEngine::to_text() const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics_) os << d.to_text() << "\n";
  os << count(Severity::Error) << " error(s), " << count(Severity::Warning)
     << " warning(s), " << count(Severity::Note) << " note(s)\n";
  return os.str();
}

namespace {

void write_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
    case '"': os << "\\\""; break;
    case '\\': os << "\\\\"; break;
    case '\n': os << "\\n"; break;
    case '\t': os << "\\t"; break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        os << buf;
      } else {
        os << c;
      }
    }
  }
  os << '"';
}

} // namespace

std::string DiagnosticEngine::to_json() const {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& d = diagnostics_[i];
    os << "  {\"code\": ";
    write_json_string(os, d.code);
    os << ", \"severity\": ";
    write_json_string(os, to_string(d.severity));
    os << ", \"check\": ";
    write_json_string(os, d.check);
    os << ", \"location\": ";
    write_json_string(os, d.location);
    os << ", \"message\": ";
    write_json_string(os, d.message);
    os << ", \"fix_hint\": ";
    write_json_string(os, d.fix_hint);
    os << "}" << (i + 1 < diagnostics_.size() ? "," : "") << "\n";
  }
  os << "]\n";
  return os.str();
}

} // namespace luis::analysis
