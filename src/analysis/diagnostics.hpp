// Diagnostic engine of the precision lint suite.
//
// Every finding a lint pass produces is a Diagnostic: a stable
// machine-readable code (L001, L002, ...), a severity, a human-readable
// location inside the linted function (printer ids for instructions, @name
// for arrays), the violation message, and an optional fix hint. The engine
// collects findings across passes and renders them as compiler-style text
// or as a JSON array for CI and tooling consumers.
#pragma once

#include <string>
#include <vector>

namespace luis::analysis {

enum class Severity { Note, Warning, Error };

const char* to_string(Severity severity);

struct Diagnostic {
  std::string code;     ///< stable id, e.g. "L004"
  Severity severity = Severity::Warning;
  std::string check;    ///< registry name of the producing pass
  std::string location; ///< "%12 (mul) in body", "@A", "<deleted value>"
  std::string message;
  std::string fix_hint; ///< empty when no mechanical fix applies

  /// One "file:line: severity: message"-style line.
  std::string to_text() const;
};

class DiagnosticEngine {
public:
  void report(Diagnostic diagnostic) {
    diagnostics_.push_back(std::move(diagnostic));
  }

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  std::size_t size() const { return diagnostics_.size(); }

  int count(Severity severity) const;
  int count_code(const std::string& code) const;
  bool has_errors() const { return count(Severity::Error) > 0; }
  bool has_warnings() const { return count(Severity::Warning) > 0; }

  /// Compiler-style report, one line per diagnostic plus a summary line.
  std::string to_text() const;
  /// JSON array of objects with the Diagnostic field names as keys.
  std::string to_json() const;

private:
  std::vector<Diagnostic> diagnostics_;
};

} // namespace luis::analysis
