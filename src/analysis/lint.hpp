// Precision lint: static soundness checks over (Function, TypeAssignment,
// VRA ranges).
//
// The ILP allocator promises that its output respects the same-type operand
// constraints, the fix-max(v, f) fractional-bit bounds derived from the VRA
// ranges, and the representable range of every chosen format. Nothing
// downstream re-checks those promises: ir::verify only validates SSA
// structure, and a buggy allocation surfaces (or silently skews the
// measurements) only when the interpreter runs it. The lint suite proves a
// type assignment sound *before* it runs, as a dataflow analysis over the
// allocation artifacts.
//
// Checks ship as registered passes, each owning one stable diagnostic code:
//
//   L001  assignment-completeness   register/array/literal without a type
//   L002  dangling-entry            entry for a value not in the function
//   L003  same-type-operands        ILP same-type constraint violated
//   L004  fixed-point-overflow      frac bits exceed fix-max(v, f)
//   L005  precision-loss-cast       IEBW drop across a cast / double rounding
//   L006  redundant-cast            identity cast or cancelling cast pair
//   L007  range-escape              VRA range exceeds the format's range
//
// The error-aware rules (checks_error.cpp) additionally consult the static
// error-bound analysis (analysis/error_bounds.hpp) when the caller supplies
// one; without an ErrorMap they are silently skipped:
//
//   L008  error-budget-exceeded     certified output error above the budget
//   L009  error-dominated-output    certified error swamps the value scale
//   L010  catastrophic-cancellation subtraction cancels leading bits of
//                                   operands that carry rounding error
//   L011  phi-error-imbalance       join paths with wildly different
//                                   certified precision
//
// See docs/LINT.md for the full catalog with examples and fixes.
#pragma once

#include <limits>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "interp/type_assignment.hpp"
#include "ir/function.hpp"
#include "ir/verifier.hpp"
#include "vra/range_analysis.hpp"

namespace luis::analysis {

class ErrorMap;

struct LintOptions {
  /// L005 trips when a single cast drops more than this many guaranteed
  /// fractional bits (IEBW over the operand's range).
  int precision_loss_threshold = 12;
  /// The function has been through cast materialization: every remaining
  /// representation mismatch — including at stores — is a hard error
  /// because no later stage will reconcile it.
  bool casts_materialized = false;
  /// L008: certified relative-error budget for stored-to arrays. The
  /// default (infinity) disables the check; `luis check --max-rel-error`
  /// and the CLI lint flag set it.
  double max_rel_error = std::numeric_limits<double>::infinity();
  /// L009: an output array whose certified absolute error reaches this
  /// fraction of its value scale carries no trustworthy bits.
  double error_dominated_ratio = 1.0;
  /// L010 trips when a subtraction cancels at least this many leading
  /// magnitude bits of error-carrying operands.
  int cancellation_bits = 16;
  /// L011 trips when two non-constant phi inputs' certified errors differ
  /// by at least this many bits.
  int imbalance_bits = 20;
  /// Codes to suppress entirely (e.g. {"L006"}).
  std::vector<std::string> disabled_codes;
};

/// Everything a lint pass may consult, built once per run.
struct LintContext {
  const ir::Function& function;
  const interp::TypeAssignment& assignment;
  const vra::RangeMap& ranges;
  LintOptions options;

  /// Printer ids (%0, %1, ...) for result-producing instructions.
  std::map<const ir::Instruction*, int> ids;
  /// Def -> uses map (ir::compute_uses).
  std::map<const ir::Value*, std::vector<ir::Use>> uses;
  /// Certified error bounds for the error-aware rules (L008–L011), or
  /// nullptr when the caller did not run the error analysis.
  const ErrorMap* errors = nullptr;

  /// "%12 (mul) in body", "@A", "const 2.5" — never dereferences pointers
  /// outside the function.
  std::string describe(const ir::Value* value) const;
};

/// A registered check. `codes` names the diagnostic code(s) the pass owns.
struct LintPass {
  const char* name;
  const char* codes;
  void (*run)(const LintContext& context, DiagnosticEngine& engine);
};

/// The built-in pass registry, in execution (and code) order.
std::span<const LintPass> lint_passes();

/// Runs every registered pass (minus `options.disabled_codes`) and returns
/// the collected diagnostics. Deterministic: passes run in registry order
/// and walk the function in program order. Pass the ErrorMap from
/// analyze_errors to enable the error-aware rules (L008–L011); they are
/// skipped when `errors` is null.
DiagnosticEngine run_lint(const ir::Function& function,
                          const interp::TypeAssignment& assignment,
                          const vra::RangeMap& ranges,
                          const LintOptions& options = {},
                          const ErrorMap* errors = nullptr);

} // namespace luis::analysis
