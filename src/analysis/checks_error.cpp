// The error-aware lint passes (L008–L011, registered in lint.cpp).
//
// These rules consume the static error-bound analysis
// (analysis/error_bounds.hpp) through LintContext::errors and are skipped
// when the caller did not run it. Like the structural checks they walk the
// function in program order and never mutate anything.
#include <cmath>
#include <sstream>

#include "analysis/error_bounds.hpp"
#include "analysis/lint.hpp"

namespace luis::analysis {

using ir::Instruction;
using ir::Opcode;
using ir::ScalarType;

namespace {

std::string fmt_error(double e) {
  if (e == ErrorMap::kUnbounded) return "unbounded";
  std::ostringstream os;
  os << e;
  return os.str();
}

/// Arrays the kernel writes: the values whose certified error the caller
/// observes after the run.
bool is_output_array(const LintContext& ctx, const ir::Value* arr) {
  const auto it = ctx.uses.find(arr);
  if (it == ctx.uses.end()) return false;
  for (const ir::Use& use : it->second)
    if (use.user->opcode() == Opcode::Store && use.operand_index == 1)
      return true;
  return false;
}

} // namespace

// ---------------------------------------------------------------------------
// L008 error-budget-exceeded: a stored-to array's certified relative error
// is above the configured budget (luis check --max-rel-error).
// ---------------------------------------------------------------------------
void check_error_budget(const LintContext& ctx, DiagnosticEngine& engine) {
  if (ctx.errors == nullptr) return;
  const double budget = ctx.options.max_rel_error;
  if (budget == std::numeric_limits<double>::infinity()) return;
  for (const auto& arr : ctx.function.arrays()) {
    if (!is_output_array(ctx, arr.get())) continue;
    const double abs = ctx.errors->of(arr.get());
    const double scale = ctx.ranges.of(arr.get()).max_magnitude();
    const double rel =
        (scale > 0.0 && std::isfinite(scale)) ? abs / scale : abs;
    if (!(rel > budget)) continue;
    std::ostringstream msg;
    msg << "certified relative error " << fmt_error(rel)
        << " exceeds the budget " << budget;
    engine.report({"L008", Severity::Error, "error-budget-exceeded",
                   ctx.describe(arr.get()), msg.str(),
                   "widen the formats on the paths feeding this array, or "
                   "relax --max-rel-error"});
  }
}

// ---------------------------------------------------------------------------
// L009 error-dominated-output: the certified error of an output array is as
// large as the values it holds — no stored bit is trustworthy.
// ---------------------------------------------------------------------------
void check_error_dominated(const LintContext& ctx, DiagnosticEngine& engine) {
  if (ctx.errors == nullptr) return;
  for (const auto& arr : ctx.function.arrays()) {
    if (!is_output_array(ctx, arr.get())) continue;
    const double abs = ctx.errors->of(arr.get());
    const double scale = ctx.ranges.of(arr.get()).max_magnitude();
    const double rel =
        (scale > 0.0 && std::isfinite(scale)) ? abs / scale : abs;
    if (!(rel >= ctx.options.error_dominated_ratio)) continue;
    std::ostringstream msg;
    msg << "certified error " << fmt_error(abs)
        << " dominates the value scale " << scale
        << "; the stored values carry no information";
    engine.report({"L009", Severity::Warning, "error-dominated-output",
                   ctx.describe(arr.get()), msg.str(),
                   "this usually means an unbounded loop accumulation or an "
                   "untrusted range; check the VRA report"});
  }
}

// ---------------------------------------------------------------------------
// L010 catastrophic-cancellation: a subtraction whose result range is many
// binades below its operands'. The absolute operand errors survive the
// subtraction unchanged, so the *relative* error of the small result is
// amplified by the cancelled magnitude ratio.
// ---------------------------------------------------------------------------
void check_cancellation(const LintContext& ctx, DiagnosticEngine& engine) {
  if (ctx.errors == nullptr) return;
  const double ratio = std::ldexp(1.0, ctx.options.cancellation_bits);
  for (const auto& bb : ctx.function.blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() != Opcode::Sub || inst->type() != ScalarType::Real)
        continue;
      const double in_mag =
          std::max(ctx.ranges.of(inst->operand(0)).max_magnitude(),
                   ctx.ranges.of(inst->operand(1)).max_magnitude());
      const double out_mag = ctx.ranges.of(inst.get()).max_magnitude();
      if (!(out_mag > 0.0) || !std::isfinite(in_mag)) continue;
      if (in_mag / out_mag < ratio) continue;
      // Exact operands cancel harmlessly; only rounded ones amplify.
      const double carried = std::max(ctx.errors->of(inst->operand(0)),
                                      ctx.errors->of(inst->operand(1)));
      if (!(carried > 0.0)) continue;
      std::ostringstream msg;
      msg << "operands of magnitude " << in_mag << " cancel to " << out_mag
          << " (" << std::ilogb(in_mag / out_mag)
          << " bits), amplifying carried error " << fmt_error(carried);
      engine.report({"L010", Severity::Warning, "catastrophic-cancellation",
                     ctx.describe(inst.get()), msg.str(),
                     "compute the difference in a wider format, or refactor "
                     "the expression to avoid the cancellation"});
    }
  }
}

// ---------------------------------------------------------------------------
// L011 phi-error-imbalance: a real phi joining paths whose certified errors
// differ by many bits — one path's precision is wasted on the other's
// sloppiness (or one path is under-allocated).
// ---------------------------------------------------------------------------
void check_phi_imbalance(const LintContext& ctx, DiagnosticEngine& engine) {
  if (ctx.errors == nullptr) return;
  const double ratio = std::ldexp(1.0, ctx.options.imbalance_bits);
  for (const auto& bb : ctx.function.blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (!inst->is_phi() || inst->type() != ScalarType::Real) continue;
      // Constant incomings are exact by construction; comparing them
      // against computed paths would flag every accumulator's init edge.
      double lo = std::numeric_limits<double>::infinity();
      double hi = 0.0;
      int considered = 0;
      for (std::size_t i = 0; i < inst->num_operands(); ++i) {
        const ir::Value* in = inst->operand(i);
        if (in->is_constant()) continue;
        const double e = ctx.errors->of(in);
        lo = std::min(lo, e);
        hi = std::max(hi, e);
        ++considered;
      }
      if (considered < 2 || !(lo > 0.0) || !std::isfinite(lo)) continue;
      if (!(hi / lo >= ratio)) continue;
      std::ostringstream msg;
      msg << "incoming certified errors span " << fmt_error(lo) << " to "
          << fmt_error(hi) << " (>= " << ctx.options.imbalance_bits
          << " bits apart)";
      engine.report({"L011", Severity::Warning, "phi-error-imbalance",
                     ctx.describe(inst.get()), msg.str(),
                     "raise the precision of the sloppy incoming path (its "
                     "bits are discarded at this join anyway)"});
    }
  }
}

} // namespace luis::analysis
