#include "analysis/certificate_check.hpp"

#include <cmath>
#include <limits>

#include "support/json.hpp"
#include "support/string_utils.hpp"
#include "vra/range_analysis.hpp"

namespace luis::analysis {

CertificateCrossCheck
cross_check_certificates(const ir::Function& f,
                         const interp::TypeAssignment& assignment,
                         std::span<const interp::ArrayErrorStats> measured,
                         long control_divergences,
                         const ErrorBoundsOptions& options) {
  // join_stores makes the certificate self-contained: the only trusted
  // inputs are the array range annotations (same setup as the fuzz
  // oracle and `luis check`).
  vra::VraOptions vra_options;
  vra_options.join_stores = true;
  const vra::RangeMap ranges = vra::analyze_ranges(f, vra_options);
  const ErrorAnalysisResult certified =
      analyze_errors(f, assignment, ranges, options);
  const interp::TypeAssignment binary64;
  const ErrorAnalysisResult reference_err =
      analyze_errors(f, binary64, ranges, options);

  CertificateCrossCheck out;
  out.shadow_is_reference = control_divergences == 0;
  out.divergent_control =
      certified.divergent_control || reference_err.divergent_control;
  out.assumes_finite_run =
      certified.assumes_finite_run || reference_err.assumes_finite_run;
  out.capped_bounds = certified.capped_bounds + reference_err.capped_bounds;

  // The float finite-run side condition is a whole-run property: one
  // overflowed buffer voids every capped float bound, not just its own.
  bool run_finite = true;
  for (const interp::ArrayErrorStats& m : measured)
    run_finite = run_finite && m.finite;

  for (const interp::ArrayErrorStats& m : measured) {
    ArrayCertCheck c;
    c.name = m.name;
    c.measured = m.max_abs;
    const ir::Value* arr = nullptr;
    for (const auto& a : f.arrays())
      if (a->name() == m.name) {
        arr = a.get();
        break;
      }
    c.certified = arr ? certified.errors.of(arr) + reference_err.errors.of(arr)
                      : ErrorMap::kUnbounded;
    c.tightness = c.measured > 0.0
                      ? c.certified / c.measured
                      : std::numeric_limits<double>::infinity();
    // A claim applies only when the certificate is finite, the run stayed
    // finite wherever a float cap demands it, and the shadow actually is
    // the reference execution.
    c.checked = std::isfinite(c.certified) && m.finite &&
                out.shadow_is_reference &&
                (run_finite || !out.assumes_finite_run);
    c.violated = c.checked && c.measured > c.certified;
    out.any_violation = out.any_violation || c.violated;
    out.arrays.push_back(std::move(c));
  }
  return out;
}

std::string certificate_check_text(const CertificateCrossCheck& check) {
  std::string out = format_string(
      "certificate cross-check (%s%s%s):\n",
      check.shadow_is_reference ? "shadow = binary64 reference"
                                : "control diverged - advisory only",
      check.divergent_control ? ", divergent control certified" : "",
      check.assumes_finite_run ? ", assumes finite run" : "");
  out += format_string("%-12s %12s %12s %12s  %s\n", "array", "measured",
                       "certified", "tightness", "status");
  for (const ArrayCertCheck& c : check.arrays) {
    const char* status = !c.checked      ? "no claim"
                         : c.violated    ? "VIOLATED"
                                         : "ok";
    out += format_string("%-12s %12.4g %12.4g %12.4g  %s\n", c.name.c_str(),
                         c.measured, c.certified, c.tightness, status);
  }
  out += check.any_violation
             ? "FAIL: a measured error exceeds its certified bound\n"
             : "pass: every checked array within its certified bound\n";
  return out;
}

std::string certificate_check_json(const CertificateCrossCheck& check) {
  JsonWriter w;
  w.begin_object();
  w.key("shadow_is_reference");
  w.value(check.shadow_is_reference);
  w.key("divergent_control");
  w.value(check.divergent_control);
  w.key("assumes_finite_run");
  w.value(check.assumes_finite_run);
  w.key("capped_bounds");
  w.value(check.capped_bounds);
  w.key("any_violation");
  w.value(check.any_violation);
  w.key("arrays");
  w.begin_array();
  for (const ArrayCertCheck& c : check.arrays) {
    w.begin_object();
    w.key("name");
    w.value(c.name);
    w.key("measured");
    w.value(c.measured, "%.17g");
    w.key("certified");
    w.value(c.certified, "%.17g");
    w.key("tightness");
    w.value(c.tightness, "%.6g");
    w.key("checked");
    w.value(c.checked);
    w.key("violated");
    w.value(c.violated);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

} // namespace luis::analysis
