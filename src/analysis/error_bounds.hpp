// Static rounding-error analysis: certified worst-case absolute error
// bounds for a (Function, TypeAssignment, RangeMap) triple.
//
// The pipeline's MPE numbers are dynamic — they measure the precision an
// allocation loses on the inputs that were actually executed. This
// analysis is the static counterpart (in the spirit of the bit-level
// tuners of arXiv 2103.05241): a forward abstract interpretation, built on
// analysis/dataflow.hpp, where every Real value carries a worst-case
// absolute deviation between the quantized execution and the exact (real
// arithmetic) execution over the annotated input ranges.
//
// The domain, per value v: err(v) such that for every execution whose
// array inputs respect the VRA ranges, |quantized(v) - exact(v)| <= err(v).
//
//   * Each arithmetic instruction first contributes the operate-then-round
//     model's own rounding: eps/2 of the result format's local resolution
//     (2^-IEBW over the perturbed result range, via the existing IEBW
//     machinery), plus eps/2 of binary64 for the internal computation (a
//     few ulps for the libm intrinsics), plus a saturation allowance for
//     fixed/posit formats and infinity past a float format's max value.
//   * Operand errors propagate through the operation's sensitivity on the
//     VRA intervals: linearly for add/sub, scaled by the co-operand's
//     magnitude for mul, through perturbed divisor bounds for div (the
//     bound is infinite when the perturbed divisor can straddle zero), and
//     via range-hull widths where no tighter argument exists (rem,
//     non-integer pow, unstable selects).
//   * Loop accumulation goes through arrays (and loop-carried phis). Join
//     effects that keep growing are widened geometrically: after a few
//     observation sweeps that estimate the loop's error-growth ratio r
//     (the largest pass-over-pass increment ratio — a Collatz-Wielandt
//     style upper bound on the system's loop gain), the bound jumps to
//     `current + increment * N * r^N`, where N is a trip-count bound
//     extracted from the loop's induction phis (constant guards,
//     guard-bounded outer phis for triangular nests, or trusted VRA
//     ranges). A target that outgrows two extrapolations saturates.
//   * Every array bound saturates at the *representation cap*: the format's
//     largest representable magnitude plus the reference range magnitude.
//     Fixed and posit kernels saturate in hardware, so the cap is
//     unconditional; float formats can overflow to infinity, so a capped
//     float bound is certified only for executions whose quantized run
//     stays finite (`assumes_finite_run` in the result).
//
// Soundness caveats (see docs/ANALYSIS.md for the full argument):
//   * Array range annotations are trusted, exactly as the rest of the
//     pipeline trusts them ("array ranges are authoritative"). Run the VRA
//     in join_stores mode for a self-contained certificate.
//   * Ranges that touch the VRA clamp magnitude are treated as unknown and
//     poison dependent bounds to infinity.
//   * A real-valued comparison steering control flow (CondBr on FCmp, or
//     an integer select on FCmp) can make the two executions diverge; every
//     store then charges the representation cap instead of a propagated
//     bound. Real-valued selects on FCmp are handled per-instruction via
//     comparison stability.
//
// Every bound is inflated multiplicatively so the analysis's own binary64
// rounding cannot undercut the true bound.
#pragma once

#include <limits>
#include <map>

#include "analysis/dataflow.hpp"
#include "interp/type_assignment.hpp"
#include "ir/function.hpp"
#include "numrep/formats.hpp"
#include "vra/range_analysis.hpp"

namespace luis::analysis {

struct ErrorBoundsOptions {
  /// Fixpoint sweep cap. A run that exhausts it reports every join target
  /// (arrays, loop phis) as unbounded rather than trusting a truncated
  /// iteration.
  int max_passes = 200;
  /// Sweeps before trip-count widening engages on growing join targets.
  int widen_after = 8;
  /// Multiplicative inflation applied to every computed bound, absorbing
  /// the analysis's own rounding.
  double inflate = 1.0 + 0x1p-20;
  /// Widening multiplies the observed per-iteration increment by this
  /// headroom before extrapolating over the trip count.
  double widen_headroom = 2.0;
  /// Trip-count products beyond this are treated as unbounded.
  double max_trip_product = 1e18;
};

/// Certified absolute error per value. Real registers and arrays have
/// entries; constants are exact (their quantization is charged at the
/// consuming instruction); anything unknown is unbounded.
class ErrorMap {
public:
  static constexpr double kUnbounded = std::numeric_limits<double>::infinity();

  double of(const ir::Value* value) const {
    const auto it = errors_.find(value);
    if (it != errors_.end()) return it->second;
    return value->is_constant() ? 0.0 : kUnbounded;
  }
  bool has(const ir::Value* value) const { return errors_.count(value) > 0; }
  void set(const ir::Value* value, double err) { errors_[value] = err; }
  std::size_t size() const { return errors_.size(); }
  const std::map<const ir::Value*, double>& entries() const { return errors_; }

private:
  std::map<const ir::Value*, double> errors_;
};

struct ErrorAnalysisResult {
  ErrorMap errors;
  DataflowStats stats;
  /// True when a real-valued comparison can steer control flow or integer
  /// data (CondBr on FCmp / integer select on FCmp): the two executions
  /// may diverge and every store charges the representation cap.
  bool divergent_control = false;
  /// Join updates that were truncated at an array's representation cap
  /// (the format's largest representable magnitude plus the reference
  /// range magnitude).
  long capped_bounds = 0;
  /// True when a cap on a *float*-format array carries the finite-run side
  /// condition: floats overflow to infinity instead of saturating, so the
  /// capped bound certifies only executions whose quantized run stays
  /// finite. Saturating formats (fixed, posit) cap unconditionally.
  bool assumes_finite_run = false;

  /// Certified relative bound for `value`: abs bound normalized by the
  /// largest magnitude of its VRA range (the scale of the data flowing
  /// through it). Zero-width zero ranges normalize to the abs bound.
  double relative(const ir::Value* value, const vra::RangeMap& ranges) const;
};

/// Worst-case |quantize(type, x) - x| over |x| <= max_magnitude: half the
/// format's local resolution at the magnitude extreme (2^-IEBW), plus a
/// saturation allowance for fixed point and posits. Infinite when a float
/// format overflows to infinity at that magnitude.
double quantization_bound(const numrep::ConcreteType& type,
                          double max_magnitude);

/// Runs the analysis. `ranges` must come from analyze_ranges over the same
/// function (its clamp magnitude marks untrusted top ranges).
ErrorAnalysisResult analyze_errors(const ir::Function& f,
                                   const interp::TypeAssignment& assignment,
                                   const vra::RangeMap& ranges,
                                   const ErrorBoundsOptions& options = {});

} // namespace luis::analysis
