#include "analysis/dataflow.hpp"

#include <set>

namespace luis::analysis {

bool Loop::contains(const ir::BasicBlock* bb) const {
  return std::find(blocks.begin(), blocks.end(), bb) != blocks.end();
}

std::vector<std::size_t> LoopInfo::containing(const ir::BasicBlock* bb) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < loops.size(); ++i)
    if (loops[i].contains(bb)) out.push_back(i);
  // Innermost first: in a reducible CFG nested loops are ordered by block
  // count (the inner loop's body is a strict subset of the outer's).
  std::sort(out.begin(), out.end(), [this](std::size_t a, std::size_t b) {
    return loops[a].blocks.size() < loops[b].blocks.size();
  });
  return out;
}

namespace {

/// Iterative DFS collecting back edges (edges to a block still on the DFS
/// stack). For reducible CFGs — everything the structured builders emit —
/// the target of a back edge is the natural-loop header.
void find_back_edges(
    const ir::Function& f,
    std::vector<std::pair<const ir::BasicBlock*, const ir::BasicBlock*>>& out) {
  if (!f.entry()) return;
  std::set<const ir::BasicBlock*> visited;
  std::set<const ir::BasicBlock*> on_stack;
  struct Frame {
    const ir::BasicBlock* bb;
    std::vector<ir::BasicBlock*> succs;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({f.entry(), f.entry()->successors()});
  visited.insert(f.entry());
  on_stack.insert(f.entry());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next >= frame.succs.size()) {
      on_stack.erase(frame.bb);
      stack.pop_back();
      continue;
    }
    const ir::BasicBlock* succ = frame.succs[frame.next++];
    if (on_stack.count(succ)) {
      out.emplace_back(frame.bb, succ); // latch -> header
    } else if (!visited.count(succ)) {
      visited.insert(succ);
      on_stack.insert(succ);
      stack.push_back({succ, succ->successors()});
    }
  }
}

} // namespace

LoopInfo LoopInfo::compute(const ir::Function& f) {
  LoopInfo info;
  std::vector<std::pair<const ir::BasicBlock*, const ir::BasicBlock*>> edges;
  find_back_edges(f, edges);

  // Natural loop of a back edge latch->header: header plus every block that
  // reaches the latch without passing through the header. Multiple latches
  // with the same header merge into one loop.
  std::map<const ir::BasicBlock*, std::set<const ir::BasicBlock*>> bodies;
  for (const auto& [latch, header] : edges) {
    std::set<const ir::BasicBlock*>& body = bodies[header];
    body.insert(header);
    std::vector<const ir::BasicBlock*> work;
    if (body.insert(latch).second) work.push_back(latch);
    while (!work.empty()) {
      const ir::BasicBlock* bb = work.back();
      work.pop_back();
      for (ir::BasicBlock* pred : f.predecessors(bb))
        if (body.insert(pred).second) work.push_back(pred);
    }
  }

  for (const auto& [header, body] : bodies) {
    Loop loop;
    loop.header = header;
    loop.blocks.assign(body.begin(), body.end());
    info.loops.push_back(std::move(loop));
  }
  return info;
}

} // namespace luis::analysis
