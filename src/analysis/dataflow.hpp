// Forward-dataflow / abstract-interpretation framework over the SSA IR.
//
// The LUIS pipeline keeps growing analyses that iterate transfer functions
// over basic blocks to a fixpoint — value range analysis first, the static
// rounding-error analysis next, and every per-format soundness gate the
// ROADMAP format axis will need after that. This header factors the
// fixpoint engine out once: a forward worklist over blocks, per-domain
// transfer functions, join semantics at phis and memory, and pass-indexed
// widening, parameterized by an abstract *domain*.
//
// A Domain supplies (duck-typed; see vra::RangeDomain and
// analysis::ErrorDomain for the two in-tree clients):
//
//   using Value = ...;                       // the abstract value
//   void seed(State& state);                 // initial entries (arrays, ...)
//   std::optional<Value> constant(const ir::Value*) const;
//                                            // abstract value of literals
//   void transfer(const ir::Instruction*, const Reader&, Effects<Value>&);
//   Value join(const Value&, const Value&) const;
//   Value widen(const ir::Value* target, const Value& old, const Value& grown,
//               int pass);
//   bool equal(const Value&, const Value&) const;
//
// A transfer reads operands through the Reader (std::nullopt = bottom, the
// not-yet-visited optimistic element) and emits *effects*: an Assign effect
// replaces the target's value (exact re-evaluation, may shrink), a Join
// effect merges into it (phis, integer cycles, stores into arrays). Join
// effects that still grow after `widen_after` passes go through the
// domain's widening operator. A transfer that saw a bottom operand calls
// poison() and is retried automatically once the operand gets a value.
//
// The engine runs block sweeps in program order but skips blocks none of
// whose inputs changed — observationally identical to full round-robin
// passes (a skipped block would recompute exactly what it produced last
// time) while doing work proportional to the actual change frontier.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "ir/function.hpp"

namespace luis::analysis {

struct DataflowOptions {
  /// Hard cap on block sweeps; a run that exhausts it did not converge.
  int max_passes = 50;
  /// Join effects that grow on a pass >= this one are widened.
  int widen_after = 10;
};

struct DataflowStats {
  /// Block sweeps executed (including the final clean sweep).
  int passes = 0;
  /// Transfer functions evaluated.
  long transfers = 0;
  /// Join updates that went through the widening operator.
  long widenings = 0;
  /// True when a fixpoint was reached within max_passes.
  bool converged = false;
};

/// How an effect combines with the target's current abstract value.
enum class UpdateKind {
  Assign, ///< replace: the transfer result is exact and may shrink
  Join,   ///< merge via the domain's join (and widen when growing late)
};

/// The updates one transfer-function evaluation wants to apply.
template <typename Value>
class Effects {
public:
  struct Effect {
    const ir::Value* target;
    Value value;
    UpdateKind kind;
  };

  /// Replace `target`'s value (registers: exact function of the operands).
  void assign(const ir::Value* target, Value value) {
    effects_.push_back({target, std::move(value), UpdateKind::Assign});
  }
  /// Merge into `target`'s value (phis, integer cycles, array stores).
  void join(const ir::Value* target, Value value) {
    effects_.push_back({target, std::move(value), UpdateKind::Join});
  }
  /// A strict operand was bottom: drop every effect and retry later.
  void poison() { poisoned_ = true; }

  bool poisoned() const { return poisoned_; }
  const std::vector<Effect>& effects() const { return effects_; }

private:
  std::vector<Effect> effects_;
  bool poisoned_ = false;
};

template <typename Domain>
class ForwardDataflow {
public:
  using Value = typename Domain::Value;
  using State = std::map<const ir::Value*, Value>;
  using Reader = std::function<std::optional<Value>(const ir::Value*)>;

  ForwardDataflow(const ir::Function& f, Domain& domain,
                  const DataflowOptions& options)
      : f_(f), domain_(domain), options_(options) {}

  /// Runs to a fixpoint (or the pass cap) and returns the statistics; the
  /// final abstract state is available via state().
  DataflowStats run() {
    domain_.seed(state_);
    index_blocks();

    const std::size_t num_blocks = f_.blocks().size();
    // Sweep a block on pass p iff dirty_until_[b] >= p; everything starts
    // dirty for pass 0.
    dirty_until_.assign(num_blocks, 0);

    const Reader read = [this](const ir::Value* v) -> std::optional<Value> {
      const auto it = state_.find(v);
      if (it != state_.end()) return it->second;
      return domain_.constant(v);
    };

    DataflowStats stats;
    for (int pass = 0; pass < options_.max_passes; ++pass) {
      pass_ = pass;
      widen_phase_ = pass >= options_.widen_after;
      bool swept = false;
      for (std::size_t bi = 0; bi < num_blocks; ++bi) {
        if (dirty_until_[bi] < pass) continue;
        swept = true;
        block_ = bi;
        for (const auto& inst : f_.blocks()[bi]->instructions()) {
          ++stats.transfers;
          Effects<Value> fx;
          domain_.transfer(inst.get(), read, fx);
          if (fx.poisoned()) continue;
          for (const auto& e : fx.effects()) apply(e, stats);
        }
      }
      if (!swept) {
        stats.converged = true;
        break;
      }
      ++stats.passes;
    }
    return stats;
  }

  State& state() { return state_; }
  const State& state() const { return state_; }

private:
  void index_blocks() {
    block_of_.clear();
    users_.clear();
    for (std::size_t bi = 0; bi < f_.blocks().size(); ++bi) {
      for (const auto& inst : f_.blocks()[bi]->instructions()) {
        for (const ir::Value* op : inst->operands()) {
          std::vector<std::size_t>& blocks = users_[op];
          if (blocks.empty() || blocks.back() != bi) blocks.push_back(bi);
        }
      }
      block_of_[f_.blocks()[bi].get()] = bi;
    }
  }

  /// A value changed while sweeping block `block_`: blocks reading it later
  /// in this sweep see the new value live; earlier (or the current) ones
  /// must be reswept next pass.
  void mark_users(const ir::Value* v) {
    const auto it = users_.find(v);
    if (it == users_.end()) return;
    for (const std::size_t u : it->second)
      dirty_until_[u] = std::max(dirty_until_[u], u > block_ ? pass_ : pass_ + 1);
  }

  void apply(const typename Effects<Value>::Effect& e, DataflowStats& stats) {
    const auto it = state_.find(e.target);
    if (it == state_.end()) {
      state_.emplace(e.target, e.value);
      mark_users(e.target);
      return;
    }
    if (e.kind == UpdateKind::Assign) {
      if (domain_.equal(it->second, e.value)) return;
      it->second = e.value;
      mark_users(e.target);
      return;
    }
    Value merged = domain_.join(it->second, e.value);
    if (domain_.equal(merged, it->second)) return;
    if (widen_phase_) {
      merged = domain_.widen(e.target, it->second, merged, pass_);
      ++stats.widenings;
      // A widening operator may *absorb* the growth (return the old value
      // unchanged — e.g. a budgeted post-fixpoint bound that already covers
      // it). Re-marking users would keep them dirty forever.
      if (domain_.equal(merged, it->second)) return;
    }
    it->second = std::move(merged);
    mark_users(e.target);
  }

  const ir::Function& f_;
  Domain& domain_;
  DataflowOptions options_;
  State state_;
  std::map<const ir::BasicBlock*, std::size_t> block_of_;
  std::map<const ir::Value*, std::vector<std::size_t>> users_;
  std::vector<int> dirty_until_;
  int pass_ = 0;
  std::size_t block_ = 0;
  bool widen_phase_ = false;
};

// --- Natural-loop structure (shared by clients that need trip bounds). ---

/// One natural loop: a header plus every block on a path from a latch back
/// to the header. Computed from DFS back edges; LUIS CFGs come out of the
/// structured KernelBuilder (or the structured frontend) and are reducible.
struct Loop {
  const ir::BasicBlock* header = nullptr;
  std::vector<const ir::BasicBlock*> blocks; ///< includes the header
  bool contains(const ir::BasicBlock* bb) const;
};

struct LoopInfo {
  std::vector<Loop> loops;

  /// Indices (into loops) of every loop containing `bb`, innermost first.
  std::vector<std::size_t> containing(const ir::BasicBlock* bb) const;

  static LoopInfo compute(const ir::Function& f);
};

} // namespace luis::analysis
