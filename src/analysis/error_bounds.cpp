#include "analysis/error_bounds.hpp"

#include <cmath>

#include "numrep/fixed_point.hpp"
#include "numrep/iebw.hpp"
#include "numrep/posit.hpp"
#include "numrep/quantize.hpp"
#include "numrep/registry.hpp"
#include "numrep/soft_float.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "vra/interval.hpp"

namespace luis::analysis {

using ir::Instruction;
using ir::Opcode;
using ir::ScalarType;
using numrep::ConcreteType;
using vra::Interval;

namespace {

constexpr double kInf = ErrorMap::kUnbounded;

/// Slack multipliers, in units of binary64 half-ulps at the result
/// magnitude, for the interpreter's compute-in-double step. Add/sub/mul/
/// div and IEEE sqrt are correctly rounded (one half-ulp); fmod and
/// min/max selection are exact; exp/pow are only faithfully rounded by
/// libm, so they get generous headroom.
constexpr double kExactUlps = 0.0;
constexpr double kRoundedUlps = 1.0;
constexpr double kLibmUlps = 8.0;

double sanitize(double e) { return std::isnan(e) ? kInf : e; }

} // namespace

double quantization_bound(const ConcreteType& type, double max_magnitude) {
  if (std::isnan(max_magnitude) || !std::isfinite(max_magnitude)) return kInf;
  const double m = std::abs(max_magnitude);
  const numrep::NumericFormat& f = type.format;
  const numrep::FormatClassOps& ops = numrep::format_ops(type);
  const double rep = ops.max_value(type);
  // Past a non-saturating format's largest finite value the rounder
  // overflows to infinity: no finite bound exists. Saturating formats
  // (fixed point, posits, the FiniteOnly/Fnuz FP8 encodings) clamp
  // instead and are charged the saturation distance below.
  if (!ops.saturates(f) && m > rep) return kInf;
  const int iebw = numrep::iebw_of_range(f, -m, m, type.frac_bits);
  // IEBW's Definition-1 eps is the smallest representation-changing
  // perturbation: for floats 2^-IEBW is already the half-ulp (the maximum
  // round-to-nearest error), while for fixed point, posits and
  // fixed-posits it is the lattice step, of which rounding incurs at most
  // half.
  double bound = std::ldexp(1.0, -iebw);
  if (!ops.eps_is_half_step(f)) bound *= 0.5;
  // The (1 - 2^-50) factor keeps the representable maximum a true lower
  // bound under this function's own rounding.
  if (ops.saturates(f)) bound += std::max(0.0, m - rep * (1.0 - 0x1p-50));
  // Unsigned fixed point saturates negative values at zero; without the
  // sign of the data only the full magnitude is a safe allowance.
  if (f.is_fixed() && !f.is_signed()) bound += m;
  // Never-underflow representations (posits, fixed-posits): a nonzero
  // value below minpos rounds *up* to +-minpos, so near zero the worst
  // error is the full minpos, not half the local step.
  if (ops.never_underflows(f) && m > 0.0)
    bound = std::max(bound, ops.min_positive(type));
  return bound;
}

double ErrorAnalysisResult::relative(const ir::Value* value,
                                     const vra::RangeMap& ranges) const {
  const double abs = errors.of(value);
  if (abs == 0.0) return 0.0;
  const double scale = ranges.of(value).max_magnitude();
  if (!(scale > 0.0) || !std::isfinite(scale)) return abs;
  return abs / scale;
}

namespace {

/// The rounding-error domain: err(v) bounds |quantized(v) - exact(v)| over
/// every execution whose inputs respect the VRA ranges. See the header for
/// the model and docs/ANALYSIS.md for the soundness argument.
class ErrorDomain {
public:
  using Value = double;
  using Reader = ForwardDataflow<ErrorDomain>::Reader;

  ErrorDomain(const ir::Function& f, const interp::TypeAssignment& assignment,
              const vra::RangeMap& ranges, const ErrorBoundsOptions& opt)
      : f_(f), types_(assignment), ranges_(ranges), opt_(opt) {
    precompute();
  }

  bool divergent() const { return divergent_; }
  long capped() const { return capped_; }
  bool assumes_finite_run() const { return float_capped_; }

  void seed(std::map<const ir::Value*, double>& state) {
    // Array contents are quantized into the array's representation when
    // the run binds its buffers, so inputs start with that rounding. Both
    // executions bind the same data, so control divergence does not touch
    // the seeds — it is charged at the stores that may differ.
    for (const auto& arr : f_.arrays()) {
      const Interval r = ranges_.of(arr.get());
      double e = kInf;
      if (trusted(r))
        e = inflate(quantization_bound(types_.of(arr.get()), r.max_magnitude()));
      state.emplace(arr.get(), e);
    }
  }

  std::optional<double> constant(const ir::Value* v) const {
    // Literals are exact; their materialization into a format is charged
    // at the consuming (aligning) read.
    return v->is_constant() ? std::optional<double>(0.0) : std::nullopt;
  }

  double join(double a, double b) const { return std::max(a, b); }
  bool equal(double a, double b) const { return a == b; }

  /// Trip-count widening for accumulation through arrays and loop-carried
  /// phis. The error of a loop-carried accumulator often has no finite
  /// inductive invariant (every store adds a fresh increment, possibly
  /// amplified by the loop body), so the sound bound is extrapolated from
  /// the concrete execution count instead:
  ///
  ///   * Observation (the first kObservePasses widening sweeps): growing
  ///     joins pass through unchanged while the domain records each
  ///     target's per-pass increment and its pass-over-pass increment
  ///     ratio r. For a monotone affine error system E' = A E + B the
  ///     increments obey d' = A d, so a component's increment ratio tracks
  ///     the loop gain it sits in (Collatz-Wielandt: A^k d <= r^k d when
  ///     A d <= r d).
  ///   * First extrapolation — additive budget: one concrete run fires
  ///     this target's joins at most N times (execution_bound), and an
  ///     additive accumulator grows by at most the observed increment per
  ///     firing, so `grown + increment * N` (with headroom) covers the
  ///     run. Chained accumulators and contractive stencils settle inside
  ///     this allowance once their upstream bounds stop moving.
  ///   * Second extrapolation — amplified budget: growth that outruns the
  ///     additive allowance is loop-gain amplified, so the remaining
  ///     firings are charged `increment * N * r^N` (sum_{k<=N} r^k d <=
  ///     N r^N d). Outgrowing that too saturates at the representation
  ///     cap.
  double widen(const ir::Value* target, double old_e, double grown, int pass) {
    if (!std::isfinite(grown)) return capped(kInf, target);
    WidenState& st = widen_[target];
    const double delta = grown - old_e;
    if (st.widened && delta <= st.allowance) return old_e;

    // Another target's extrapolation jump is still propagating: pass the
    // growth through untouched. In a contractive coupled system (stencil
    // ping-pong) the partners settle below the extrapolated bound during
    // the wash-through and never need their own extrapolation.
    if (last_extrap_pass_ >= 0 && target != last_extrap_target_ &&
        pass - last_extrap_pass_ <= kPollutionWindow)
      return capped(grown, target);

    // Per-pass natural increments; the latest consecutive-pass ratio is
    // the gain estimate (transient ratios of polynomially growing chains
    // decay toward 1, so the latest reading dominates stale ones).
    if (st.last_pass == pass) {
      st.pass_delta += delta;
    } else {
      st.prev_delta = st.last_pass == pass - 1 ? st.pass_delta : 0.0;
      st.pass_delta = delta;
      st.last_pass = pass;
      if (st.prev_delta > 0.0 && st.pass_delta > 0.0)
        st.ratio = st.pass_delta / st.prev_delta;
    }
    if (pass < opt_.widen_after + kObservePasses) return capped(grown, target);

    if (st.extrapolations >= kMaxExtrapolations) return capped(kInf, target);
    const double n = execution_bound(target);
    if (!std::isfinite(n)) return capped(kInf, target);
    ++st.extrapolations;
    st.widened = true;
    last_extrap_pass_ = pass;
    last_extrap_target_ = target;
    const double d = std::max(st.pass_delta, delta) * opt_.widen_headroom;
    double tail = d * n;
    if (st.ratio < 1.0) {
      // Contracting increments (stencil-style feedback with gain < 1): the
      // remaining growth is a decaying geometric series; extrapolate its
      // sum, halving the gap to 1 as cushion against ratio misreads. The
      // sum is valid for any number of firings, so it also rides out the
      // cross-jumps of mutually coupled arrays.
      const double rc = 0.5 * (1.0 + st.ratio);
      tail = std::max(tail, d * rc / (1.0 - rc));
    } else if (st.extrapolations > 1) {
      const double r = st.ratio * (1.0 + 0x1p-10);
      const double ln_tail = std::log(n) + n * std::log(r);
      tail = ln_tail > 700.0 ? kInf : tail * std::exp(n * std::log(r));
    }
    st.allowance = tail;
    return capped(sanitize(inflate(grown + tail)), target);
  }

  void transfer(const Instruction* inst, const Reader& read,
                Effects<double>& fx) {
    if (inst->opcode() == Opcode::Store) {
      transfer_store(inst, read, fx);
      return;
    }
    if (inst->type() != ScalarType::Real) return;

    bool poisoned = false;
    // Raw operand error: the value as stored in its own representation
    // (how mul/div/rem/pow and the unary ops read their operands).
    const auto raw_err = [&](const ir::Value* v) -> double {
      if (v->type() != ScalarType::Real) return 0.0; // ints/bools are exact
      const std::optional<double> e = read(v);
      if (!e) {
        poisoned = true;
        return 0.0;
      }
      return sanitize(*e);
    };
    // Aligning operand error: the value numerically converted into `to`
    // (add/sub/min/max operands, select arms, casts, stores, phis).
    // Constants materialize directly in `to`, exactly measurable.
    const auto aligned_err = [&](const ir::Value* v,
                                 const ConcreteType& to) -> double {
      if (v->kind() == ir::Value::Kind::ConstReal) {
        const double c = static_cast<const ir::ConstReal*>(v)->value();
        return sanitize(std::abs(numrep::quantize(to, c) - c));
      }
      const double e = raw_err(v);
      if (poisoned || !std::isfinite(e)) return e;
      const Interval r = ranges_.of(v);
      if (!trusted(r)) return kInf;
      if (types_.of(v) == to) return e;
      return e + quantization_bound(to, r.max_magnitude() + e);
    };

    const ConcreteType ty = types_.of(inst);
    const Interval result_range = ranges_.of(inst);

    // Finish an operate-then-round instruction: `prop` bounds the
    // deviation reaching the binary64 compute step, whose result lies in
    // `range` ⊕ prop; charge the double rounding and the quantization into
    // the result format at that magnitude.
    const auto emit_in = [&](const Interval& range, double prop, double ulps) {
      if (poisoned) {
        fx.poison();
        return;
      }
      if (!trusted(range) || !std::isfinite(prop)) {
        fx.assign(inst, kInf);
        return;
      }
      const double m = range.max_magnitude() + prop;
      fx.assign(inst, sanitize(inflate(prop + half64(m) * ulps +
                                       quantization_bound(ty, m))));
    };
    const auto emit = [&](double prop, double ulps) {
      emit_in(result_range, prop, ulps);
    };
    // Finish an instruction whose result is only converted (no binary64
    // compute step): casts, loads, stable selects, phis.
    const auto emit_converted = [&](double e) {
      if (poisoned) fx.poison();
      else fx.assign(inst, sanitize(inflate(e)));
    };

    switch (inst->opcode()) {
    case Opcode::Add:
    case Opcode::Sub:
      emit(aligned_err(inst->operand(0), ty) + aligned_err(inst->operand(1), ty),
           kRoundedUlps);
      break;
    case Opcode::Min:
    case Opcode::Max:
      // fmin/fmax select one aligned operand exactly.
      emit(std::max(aligned_err(inst->operand(0), ty),
                    aligned_err(inst->operand(1), ty)),
           kExactUlps);
      break;
    case Opcode::Mul: {
      const double ea = raw_err(inst->operand(0));
      const double eb = raw_err(inst->operand(1));
      const Interval a = ranges_.of(inst->operand(0));
      const Interval b = ranges_.of(inst->operand(1));
      if (!trusted(a) || !trusted(b)) {
        emit(kInf, kRoundedUlps);
        break;
      }
      // |a'b' - ab| <= |a'||b'-b| + |b||a'-a|.
      emit((a.max_magnitude() + ea) * eb + b.max_magnitude() * ea, kRoundedUlps);
      break;
    }
    case Opcode::Div: {
      const double ea = raw_err(inst->operand(0));
      const double eb = raw_err(inst->operand(1));
      const Interval a = ranges_.of(inst->operand(0));
      const Interval b = ranges_.of(inst->operand(1));
      if (!trusted(a) || !trusted(b) || !std::isfinite(ea) ||
          !std::isfinite(eb)) {
        emit(kInf, kRoundedUlps);
        break;
      }
      // The perturbed divisor must stay away from zero, or the quantized
      // run can divide by (nearly) nothing the exact run never sees.
      const double min_b = min_magnitude(b) - eb;
      if (!(min_b > 0.0)) {
        emit(kInf, kRoundedUlps);
        break;
      }
      // |a'/b' - a/b| <= |a'-a|/|b'| + |a||b-b'|/(|b||b'|).
      emit(ea / min_b + a.max_magnitude() * eb / (min_b * min_b), kRoundedUlps);
      break;
    }
    case Opcode::Rem: {
      const double ea = raw_err(inst->operand(0));
      const double eb = raw_err(inst->operand(1));
      if (!std::isfinite(ea) || !std::isfinite(eb)) {
        emit(kInf, kExactUlps);
        break;
      }
      const Interval a = ranges_.of(inst->operand(0));
      const Interval b = ranges_.of(inst->operand(1));
      if (!trusted(a) || !trusted(b)) {
        emit(kInf, kExactUlps);
        break;
      }
      // No usable sensitivity (fmod is discontinuous in the divisor):
      // both runs land in the hull over the perturbed operands. fmod
      // itself is exact in binary64.
      const Interval h = vra::iv_rem(expand(a, ea), expand(b, eb));
      emit_in(h, h.width(), kExactUlps);
      break;
    }
    case Opcode::Neg:
    case Opcode::Abs:
      // Exact in binary64; only the result quantization rounds.
      emit(raw_err(inst->operand(0)), kExactUlps);
      break;
    case Opcode::Sqrt: {
      const double ea = raw_err(inst->operand(0));
      const Interval a = ranges_.of(inst->operand(0));
      if (!trusted(a) || !std::isfinite(ea)) {
        emit(kInf, kRoundedUlps);
        break;
      }
      const double lo = a.lo - ea;
      if (lo < 0.0) {
        // The quantized (or exact) operand may go negative: NaN, no bound.
        emit(kInf, kRoundedUlps);
        break;
      }
      // |sqrt(x) - sqrt(y)| <= |x-y| / (2 sqrt(min)) and <= sqrt(|x-y|).
      const double prop = lo > 0.0
                              ? std::min(std::sqrt(ea), ea / (2.0 * std::sqrt(lo)))
                              : std::sqrt(ea);
      emit(prop, kRoundedUlps);
      break;
    }
    case Opcode::Exp: {
      const double ea = raw_err(inst->operand(0));
      const Interval a = ranges_.of(inst->operand(0));
      if (!trusted(a) || !std::isfinite(ea)) {
        emit(kInf, kLibmUlps);
        break;
      }
      // Mean value bound: |e^x - e^y| <= e^max(x,y) |x-y|.
      emit(std::exp(a.hi + ea) * ea, kLibmUlps);
      break;
    }
    case Opcode::Pow: {
      const double ea = raw_err(inst->operand(0));
      const double eb = raw_err(inst->operand(1));
      const Interval a = ranges_.of(inst->operand(0));
      const Interval b = ranges_.of(inst->operand(1));
      if (!trusted(a) || !trusted(b) || !std::isfinite(ea) ||
          !std::isfinite(eb)) {
        emit(kInf, kLibmUlps);
        break;
      }
      const ir::Value* exp_op = inst->operand(1);
      if (exp_op->kind() == ir::Value::Kind::ConstReal) {
        // Constant exponents are read raw and used exactly.
        const double c = static_cast<const ir::ConstReal*>(exp_op)->value();
        if (c == std::floor(c) && c >= 0.0) {
          if (c == 0.0) {
            emit(0.0, kLibmUlps); // x^0 == 1 in both runs
            break;
          }
          // d/dx x^n bound: n * max|x|^(n-1) over the perturbed base.
          const double m = a.max_magnitude() + ea;
          emit(c * std::pow(m, c - 1.0) * ea, kLibmUlps);
          break;
        }
      }
      // General case: hull width over the perturbed operands.
      const Interval h =
          vra::iv_pow(expand(a, ea), expand(b, eb), ranges_.top_magnitude());
      if (!trusted(h)) {
        emit(kInf, kLibmUlps);
        break;
      }
      emit_in(h, h.width(), kLibmUlps);
      break;
    }
    case Opcode::Cast:
      // The conversion is the aligning read; no second rounding.
      emit_converted(aligned_err(inst->operand(0), ty));
      break;
    case Opcode::IntToReal: {
      if (divergent_) {
        // The integer operand itself may differ between the two runs.
        emit_converted(kInf);
        break;
      }
      const Interval a = ranges_.of(inst->operand(0));
      emit_converted(trusted(a)
                         ? quantization_bound(ty, a.max_magnitude())
                         : kInf);
      break;
    }
    case Opcode::Load: {
      const ir::Value* arr = inst->operand(0);
      const double e = raw_err(arr);
      if (poisoned || !std::isfinite(e)) {
        emit_converted(e);
        break;
      }
      if (types_.of(arr) == ty) {
        emit_converted(e);
        break;
      }
      const Interval r = ranges_.of(arr);
      emit_converted(trusted(r)
                         ? e + quantization_bound(ty, r.max_magnitude() + e)
                         : kInf);
      break;
    }
    case Opcode::Select: {
      const double e1 = aligned_err(inst->operand(1), ty);
      const double e2 = aligned_err(inst->operand(2), ty);
      if (poisoned) {
        fx.poison();
        break;
      }
      if (comparison_stable(inst->operand(0), read)) {
        // Both runs pick the same (aligned) arm.
        emit_converted(std::max(e1, e2));
        break;
      }
      // The runs may pick different arms: hull width over both.
      const Interval r1 = ranges_.of(inst->operand(1));
      const Interval r2 = ranges_.of(inst->operand(2));
      if (!trusted(r1) || !trusted(r2)) {
        emit_converted(kInf);
        break;
      }
      emit_converted(vra::iv_join(r1, r2).width() + std::max(e1, e2));
      break;
    }
    case Opcode::Phi: {
      // Both runs arrive over the same edge (real-valued control
      // divergence collapses memory bounds globally instead), so the
      // error is the worst incoming one, plus each edge's conversion into
      // the phi's format. Bottom incoming edges (the back edge on the
      // first sweep) do not contribute yet.
      std::optional<double> acc;
      for (std::size_t i = 0; i < inst->num_operands(); ++i) {
        const ir::Value* in = inst->operand(i);
        double e;
        if (in->kind() == ir::Value::Kind::ConstReal) {
          const double c = static_cast<const ir::ConstReal*>(in)->value();
          e = sanitize(std::abs(numrep::quantize(ty, c) - c));
        } else {
          const std::optional<double> ein = read(in);
          if (!ein) continue;
          e = sanitize(*ein);
          if (std::isfinite(e) && !(types_.of(in) == ty)) {
            const Interval r = ranges_.of(in);
            e = trusted(r)
                    ? e + quantization_bound(ty, r.max_magnitude() + e)
                    : kInf;
          }
        }
        acc = acc ? std::max(*acc, e) : e;
      }
      if (acc) fx.join(inst, sanitize(inflate(*acc)));
      break;
    }
    default:
      break;
    }
  }

private:
  /// Widening sweeps that only observe increments before extrapolating.
  static constexpr int kObservePasses = 3;
  /// Extrapolations per target before saturating at the cap.
  static constexpr int kMaxExtrapolations = 2;
  /// Passes after another target extrapolates during which widening only
  /// passes growth through: the extrapolation jump washes through coupled
  /// arrays as giant one-off deltas that would corrupt their increment and
  /// ratio estimates (and compound the jump if extrapolated from).
  static constexpr int kPollutionWindow = 3;

  struct WidenState {
    int last_pass = -1;
    double pass_delta = 0.0; ///< summed growth seen on last_pass
    double prev_delta = 0.0; ///< summed growth on the pass before it
    double ratio = 1.0;      ///< latest consecutive-pass increment ratio
    int extrapolations = 0;
    bool widened = false;
    double allowance = 0.0;
  };

  double inflate(double e) const { return e * opt_.inflate; }

  /// Saturate an array bound at its representation cap: no matter what the
  /// quantized run computes, a stored cell holds a representable value, so
  /// its distance to the in-range reference cell is at most the format's
  /// largest representable magnitude plus the range magnitude. Saturating
  /// representations (fixed point, posits, fixed-posits, the FP8
  /// FiniteOnly/Fnuz encodings) make the cap unconditional; Ieee float
  /// formats overflow to infinity instead, so their cap certifies only
  /// finite quantized runs (reported via assumes_finite_run).
  double capped(double e, const ir::Value* target) {
    const auto it = caps_.find(target);
    if (it == caps_.end() || e <= it->second) return e;
    ++capped_;
    const ConcreteType t = types_.of(target);
    if (!numrep::format_ops(t).saturates(t.format)) float_capped_ = true;
    return it->second;
  }
  double cap_of(const ir::Value* target) const {
    const auto it = caps_.find(target);
    return it != caps_.end() ? it->second : kInf;
  }

  /// Ranges at the VRA clamp magnitude mean "don't know": the clamp cuts
  /// genuinely larger values, so nothing derived from them can be trusted.
  bool trusted(const Interval& r) const {
    return r.max_magnitude() < ranges_.top_magnitude();
  }

  static double min_magnitude(const Interval& r) {
    if (r.contains_zero()) return 0.0;
    return std::min(std::abs(r.lo), std::abs(r.hi));
  }

  static Interval expand(const Interval& r, double e) {
    return {r.lo - e, r.hi + e};
  }

  static double half64(double m) {
    if (!std::isfinite(m)) return kInf;
    // For float formats 2^-IEBW is the half-ulp itself (Definition 1's
    // smallest representation-changing perturbation).
    const int iebw =
        numrep::iebw_of_range(numrep::kBinary64, -std::abs(m), std::abs(m));
    return std::ldexp(1.0, -iebw);
  }

  /// True when both runs provably evaluate `cond` to the same outcome.
  /// Integer comparisons are exact; real comparisons are stable when the
  /// perturbed operand intervals cannot overlap.
  bool comparison_stable(const ir::Value* cond, const Reader& read) const {
    if (!cond->is_instruction()) return false;
    const auto* ci = static_cast<const Instruction*>(cond);
    if (ci->opcode() == Opcode::ICmp) return !divergent_;
    if (ci->opcode() != Opcode::FCmp) return false;
    const auto err = [&](const ir::Value* v) {
      if (v->is_constant()) return 0.0;
      const std::optional<double> e = read(v);
      return e ? sanitize(*e) : kInf;
    };
    const double ex = err(ci->operand(0));
    const double ey = err(ci->operand(1));
    if (!std::isfinite(ex) || !std::isfinite(ey)) return false;
    const Interval x = expand(ranges_.of(ci->operand(0)), ex);
    const Interval y = expand(ranges_.of(ci->operand(1)), ey);
    return x.hi < y.lo || y.hi < x.lo;
  }

  void transfer_store(const Instruction* inst, const Reader& read,
                      Effects<double>& fx) {
    const ir::Value* arr = inst->operand(1);
    if (divergent_) {
      // The two runs may execute different stores entirely; the cell still
      // holds a representable value against an in-range reference.
      fx.join(arr, capped(kInf, arr));
      return;
    }
    const ir::Value* value = inst->operand(0);
    const ConcreteType at = types_.of(arr);
    double e;
    if (value->kind() == ir::Value::Kind::ConstReal) {
      const double c = static_cast<const ir::ConstReal*>(value)->value();
      e = sanitize(std::abs(numrep::quantize(at, c) - c));
    } else {
      const std::optional<double> ev = read(value);
      if (!ev) {
        fx.poison();
        return;
      }
      e = sanitize(*ev);
      if (std::isfinite(e) && !(types_.of(value) == at)) {
        const Interval r = ranges_.of(value);
        e = trusted(r) ? e + quantization_bound(at, r.max_magnitude() + e)
                       : kInf;
      }
    }
    fx.join(arr, capped(sanitize(inflate(e)), arr));
  }

  // --- Trip counts and execution bounds (for widening) ---

  void precompute() {
    // Real-valued comparisons steering control flow or integer data make
    // the two executions diverge; see the header.
    for (const auto& bb : f_.blocks()) {
      for (const auto& inst : bb->instructions()) {
        const bool selects_int = inst->opcode() == Opcode::Select &&
                                 inst->type() == ScalarType::Int;
        if (inst->opcode() != Opcode::CondBr && !selects_int) continue;
        const ir::Value* cond = inst->operand(0);
        if (cond->is_instruction() &&
            static_cast<const Instruction*>(cond)->opcode() == Opcode::FCmp)
          divergent_ = true;
      }
    }

    loops_ = LoopInfo::compute(f_);
    loop_trips_.assign(loops_.loops.size(), kInf);
    for (std::size_t li = 0; li < loops_.loops.size(); ++li)
      loop_trips_[li] = trip_bound(loops_.loops[li]);

    for (const auto& bb : f_.blocks())
      for (const auto& inst : bb->instructions())
        if (inst->opcode() == Opcode::Store)
          store_bounds_[inst->operand(1)] += block_bound(bb.get());

    // Representation caps (see capped()); only arrays with trusted
    // reference ranges have one — an untrusted range bounds nothing.
    for (const auto& arr : f_.arrays()) {
      const Interval r = ranges_.of(arr.get());
      if (!trusted(r)) continue;
      const ConcreteType t = types_.of(arr.get());
      const double rep = numrep::format_ops(t).max_value(t);
      const double cap = rep + r.max_magnitude();
      if (std::isfinite(cap)) caps_[arr.get()] = cap;
    }
  }

  /// Iteration bound of a natural loop, from its integer induction phis: a
  /// header phi whose in-loop incoming values all step it by a constant in
  /// one direction. Two bounding arguments, best wins:
  ///   * a guarding comparison against a constant on an exit branch caps
  ///     the phi while the loop keeps running (the canonical lowered-loop
  ///     shape: `%i = phi ...; icmp lt %i, N; condbr`);
  ///   * a trusted (non-widened) VRA range bounds the phi directly.
  double trip_bound(const Loop& loop) const {
    double best = kInf;
    for (const auto& inst : loop.header->instructions()) {
      if (!inst->is_phi()) break;
      if (inst->type() != ScalarType::Int) continue;
      double min_step = kInf;
      int direction = 0; // +1 up, -1 down, 0 invalid
      bool ok = false;
      for (std::size_t i = 0; i < inst->num_operands(); ++i) {
        if (!loop.contains(inst->incoming_blocks()[i])) continue;
        const double step = affine_step(inst.get(), inst->operand(i));
        const int dir = step > 0.0 ? 1 : step < 0.0 ? -1 : 0;
        if (dir == 0 || (direction != 0 && dir != direction)) {
          ok = false;
          break;
        }
        direction = dir;
        min_step = std::min(min_step, std::abs(step));
        ok = true;
      }
      if (!ok || !std::isfinite(min_step)) continue;

      // The phi's entry value: bound every incoming from outside the loop
      // (up-counting starts at the smallest, down-counting at the largest;
      // non-constant starts — triangular nests — go through the structural
      // integer bounds).
      double start = direction > 0 ? kInf : -kInf;
      for (std::size_t i = 0; i < inst->num_operands(); ++i) {
        if (loop.contains(inst->incoming_blocks()[i])) continue;
        const ir::Value* in = inst->operand(i);
        const double c = direction > 0 ? int_lower_bound(in, kIntBoundDepth)
                                       : int_upper_bound(in, kIntBoundDepth);
        start = direction > 0 ? std::min(start, c) : std::max(start, c);
      }
      if (std::isfinite(start)) {
        const double limit =
            guard_limit(loop, inst.get(), direction, kIntBoundDepth);
        if (std::isfinite(limit)) {
          const double span = direction > 0 ? limit - start : start - limit;
          best = std::min(best,
                          std::floor(std::max(0.0, span) / min_step) + 1.0);
        }
      }

      const Interval r = ranges_.of(inst.get());
      if (trusted(r))
        best = std::min(best, std::floor(r.width() / min_step) + 1.0);
    }
    return best;
  }

  /// The value the phi cannot pass while the loop keeps iterating, from a
  /// conditional exit branch comparing the phi against a bounded integer
  /// expression: the largest still-in-loop value for an up-counting phi
  /// (direction > 0), the smallest for a down-counting one. kInf/-kInf
  /// when no usable guard exists. NE guards are ignored (a stride over 1
  /// can step past the limit without ever being equal to it).
  double guard_limit(const Loop& loop, const Instruction* phi, int direction,
                     int depth) const {
    double limit = direction > 0 ? kInf : -kInf;
    for (const ir::BasicBlock* bb : loop.blocks) {
      const Instruction* term = bb->terminator();
      if (term == nullptr || term->opcode() != Opcode::CondBr) continue;
      const auto targets = term->targets();
      if (targets.size() != 2) continue;
      const bool true_in = loop.contains(targets[0]);
      const bool false_in = loop.contains(targets[1]);
      if (true_in == false_in) continue; // not an exit branch
      const ir::Value* cond = term->operand(0);
      if (!cond->is_instruction()) continue;
      const auto* cmp = static_cast<const Instruction*>(cond);
      if (cmp->opcode() != Opcode::ICmp) continue;
      // Normalize to `phi PRED limit`.
      const ir::Value* lhs = cmp->operand(0);
      const ir::Value* rhs = cmp->operand(1);
      ir::CmpPred pred = cmp->predicate();
      if (rhs == phi && lhs != phi) {
        std::swap(lhs, rhs);
        pred = swap_pred(pred);
      }
      if (lhs != phi) continue;
      // The predicate that holds while control stays in the loop. A
      // non-constant limit (triangular nests: `j < i`) is bounded
      // structurally in the direction that keeps the span an upper bound.
      if (false_in) pred = negate_pred(pred);
      const double c = direction > 0 ? int_upper_bound(rhs, depth)
                                     : int_lower_bound(rhs, depth);
      if (!std::isfinite(c)) continue;
      if (direction > 0) {
        if (pred == ir::CmpPred::LT) limit = std::min(limit, c - 1.0);
        else if (pred == ir::CmpPred::LE) limit = std::min(limit, c);
      } else {
        if (pred == ir::CmpPred::GT) limit = std::max(limit, c + 1.0);
        else if (pred == ir::CmpPred::GE) limit = std::max(limit, c);
      }
    }
    return limit;
  }

  /// Structural upper bound on an integer value's runtime magnitude:
  /// constants, affine combinations, and guard-bounded induction phis
  /// (which is what makes triangular loop nests — `for j < i` — yield
  /// finite trip products). kInf when no bound is derivable.
  double int_upper_bound(const ir::Value* v, int depth) const {
    if (v->kind() == ir::Value::Kind::ConstInt)
      return static_cast<double>(static_cast<const ir::ConstInt*>(v)->value());
    if (depth <= 0 || !v->is_instruction()) return kInf;
    const auto* inst = static_cast<const Instruction*>(v);
    switch (inst->opcode()) {
    case Opcode::IAdd:
      return int_upper_bound(inst->operand(0), depth - 1) +
             int_upper_bound(inst->operand(1), depth - 1);
    case Opcode::ISub:
      return int_upper_bound(inst->operand(0), depth - 1) -
             int_lower_bound(inst->operand(1), depth - 1);
    case Opcode::IMul: {
      const auto cfactor = [](const ir::Value* x) -> double {
        if (x->kind() != ir::Value::Kind::ConstInt) return -1.0;
        const auto c = static_cast<const ir::ConstInt*>(x)->value();
        return c >= 0 ? static_cast<double>(c) : -1.0;
      };
      double c = cfactor(inst->operand(1));
      const ir::Value* other = inst->operand(0);
      if (c < 0.0) {
        c = cfactor(inst->operand(0));
        other = inst->operand(1);
      }
      if (c < 0.0) return kInf;
      const double ub = int_upper_bound(other, depth - 1);
      return ub >= 0.0 ? ub * c : kInf; // negative ub * c would flip sign
    }
    case Opcode::Phi:
      return phi_bound(inst, depth, +1);
    default:
      return kInf;
    }
  }

  /// Structural lower bound, mirror of int_upper_bound.
  double int_lower_bound(const ir::Value* v, int depth) const {
    if (v->kind() == ir::Value::Kind::ConstInt)
      return static_cast<double>(static_cast<const ir::ConstInt*>(v)->value());
    if (depth <= 0 || !v->is_instruction()) return -kInf;
    const auto* inst = static_cast<const Instruction*>(v);
    switch (inst->opcode()) {
    case Opcode::IAdd:
      return int_lower_bound(inst->operand(0), depth - 1) +
             int_lower_bound(inst->operand(1), depth - 1);
    case Opcode::ISub:
      return int_lower_bound(inst->operand(0), depth - 1) -
             int_upper_bound(inst->operand(1), depth - 1);
    case Opcode::Phi:
      return phi_bound(inst, depth, -1);
    default:
      return -kInf;
    }
  }

  /// Bound of an induction phi in `direction` (+1 upper, -1 lower): the
  /// bound over its entry values, extended along the stepping direction by
  /// the loop's guard limit (plus one step of overshoot before the guard
  /// exits). Non-induction phis and mixed-direction steps are unbounded.
  double phi_bound(const Instruction* phi, int depth, int direction) const {
    const Loop* loop = nullptr;
    for (const auto& l : loops_.loops)
      if (l.header == phi->parent()) {
        loop = &l;
        break;
      }
    double entry = direction > 0 ? -kInf : kInf;
    bool any_entry = false;
    int step_dir = 0;
    double max_step = 0.0;
    for (std::size_t i = 0; i < phi->num_operands(); ++i) {
      const ir::BasicBlock* in_bb = phi->incoming_blocks()[i];
      if (loop != nullptr && loop->contains(in_bb)) {
        const double step = affine_step(phi, phi->operand(i));
        const int dir = step > 0.0 ? 1 : step < 0.0 ? -1 : 0;
        if (dir == 0 || (step_dir != 0 && dir != step_dir))
          return direction > 0 ? kInf : -kInf;
        step_dir = dir;
        max_step = std::max(max_step, std::abs(step));
        continue;
      }
      const double b = direction > 0 ? int_upper_bound(phi->operand(i), depth - 1)
                                     : int_lower_bound(phi->operand(i), depth - 1);
      entry = direction > 0 ? std::max(entry, b) : std::min(entry, b);
      any_entry = true;
    }
    if (!any_entry || !std::isfinite(entry))
      return direction > 0 ? kInf : -kInf;
    if (loop == nullptr || step_dir == 0 || step_dir != direction)
      return entry; // steps away from `direction`: the entry value bounds it
    const double limit = guard_limit(*loop, phi, direction, depth - 1);
    if (!std::isfinite(limit)) return direction > 0 ? kInf : -kInf;
    return direction > 0 ? std::max(entry, limit + max_step)
                         : std::min(entry, limit - max_step);
  }

  static ir::CmpPred swap_pred(ir::CmpPred p) {
    switch (p) {
    case ir::CmpPred::LT: return ir::CmpPred::GT;
    case ir::CmpPred::LE: return ir::CmpPred::GE;
    case ir::CmpPred::GT: return ir::CmpPred::LT;
    case ir::CmpPred::GE: return ir::CmpPred::LE;
    default: return p;
    }
  }

  static ir::CmpPred negate_pred(ir::CmpPred p) {
    switch (p) {
    case ir::CmpPred::EQ: return ir::CmpPred::NE;
    case ir::CmpPred::NE: return ir::CmpPred::EQ;
    case ir::CmpPred::LT: return ir::CmpPred::GE;
    case ir::CmpPred::LE: return ir::CmpPred::GT;
    case ir::CmpPred::GT: return ir::CmpPred::LE;
    case ir::CmpPred::GE: return ir::CmpPred::LT;
    }
    return p;
  }

  /// The constant step if `v` is `phi + c` / `phi - c`; 0 otherwise.
  static double affine_step(const Instruction* phi, const ir::Value* v) {
    if (!v->is_instruction()) return 0.0;
    const auto* inst = static_cast<const Instruction*>(v);
    const auto const_int = [](const ir::Value* x) -> double {
      if (x->kind() != ir::Value::Kind::ConstInt) return 0.0;
      return static_cast<double>(static_cast<const ir::ConstInt*>(x)->value());
    };
    if (inst->opcode() == Opcode::IAdd) {
      if (inst->operand(0) == phi) return const_int(inst->operand(1));
      if (inst->operand(1) == phi) return const_int(inst->operand(0));
    } else if (inst->opcode() == Opcode::ISub && inst->operand(0) == phi) {
      return -const_int(inst->operand(1));
    }
    return 0.0;
  }

  double block_bound(const ir::BasicBlock* bb) const {
    double n = 1.0;
    for (const std::size_t li : loops_.containing(bb)) {
      n *= loop_trips_[li];
      if (!std::isfinite(n) || n > opt_.max_trip_product) return kInf;
    }
    return n;
  }

  /// How often the target's joins can fire in one concrete run: total
  /// store executions for an array, block executions for a loop phi.
  double execution_bound(const ir::Value* target) const {
    if (target->is_array()) {
      const auto it = store_bounds_.find(target);
      if (it == store_bounds_.end()) return 1.0;
      return it->second > opt_.max_trip_product ? kInf : it->second;
    }
    if (target->is_instruction()) {
      const auto* inst = static_cast<const Instruction*>(target);
      if (inst->parent()) return block_bound(inst->parent());
    }
    return kInf;
  }

  /// Recursion budget for the structural integer bounds.
  static constexpr int kIntBoundDepth = 6;

  const ir::Function& f_;
  const interp::TypeAssignment& types_;
  const vra::RangeMap& ranges_;
  const ErrorBoundsOptions& opt_;
  bool divergent_ = false;
  LoopInfo loops_;
  std::vector<double> loop_trips_;
  std::map<const ir::Value*, double> store_bounds_;
  std::map<const ir::Value*, double> caps_;
  std::map<const ir::Value*, WidenState> widen_;
  int last_extrap_pass_ = -1;
  const ir::Value* last_extrap_target_ = nullptr;
  long capped_ = 0;
  bool float_capped_ = false;
};

} // namespace

ErrorAnalysisResult analyze_errors(const ir::Function& f,
                                   const interp::TypeAssignment& assignment,
                                   const vra::RangeMap& ranges,
                                   const ErrorBoundsOptions& options) {
  obs::TraceSpan span("analysis.error_bounds", "analysis", [&] {
    return obs::Args().str("function", f.name()).done();
  });

  ErrorAnalysisResult out;
  ErrorDomain domain(f, assignment, ranges, options);
  DataflowOptions df;
  df.max_passes = options.max_passes;
  df.widen_after = options.widen_after;
  ForwardDataflow<ErrorDomain> engine(f, domain, df);
  out.stats = engine.run();
  out.divergent_control = domain.divergent();
  out.capped_bounds = domain.capped();
  out.assumes_finite_run = domain.assumes_finite_run();

  for (const auto& [value, err] : engine.state())
    out.errors.set(value, sanitize(err));
  if (!out.stats.converged) {
    // A truncated iteration under-approximates whatever was still
    // growing; nothing in the state is a certificate.
    for (const auto& [value, err] : out.errors.entries())
      out.errors.set(value, ErrorMap::kUnbounded);
  }

  obs::metrics().counter("analysis.error.runs").inc();
  obs::metrics().counter("analysis.error.fixpoint_passes").inc(out.stats.passes);
  obs::metrics().counter("analysis.error.widenings").inc(out.stats.widenings);
  obs::metrics().counter("analysis.error.capped_bounds").inc(out.capped_bounds);
  if (!out.stats.converged)
    obs::metrics().counter("analysis.error.nonconverged").inc();
  return out;
}

} // namespace luis::analysis
