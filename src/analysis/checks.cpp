// The built-in lint passes (registered in lint.cpp).
//
// Every pass walks the function in program order and reports through the
// shared DiagnosticEngine, so the combined report is deterministic. The
// checks deliberately re-derive their facts from first principles (ranges,
// format parameters) instead of trusting allocator internals: the lint is
// only worth having if it can catch the allocator lying.
#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "analysis/lint.hpp"
#include "numrep/iebw.hpp"
#include "numrep/posit.hpp"
#include "numrep/registry.hpp"
#include "numrep/soft_float.hpp"

namespace luis::analysis {

using ir::Instruction;
using ir::Opcode;
using ir::ScalarType;
using numrep::ConcreteType;
using numrep::FormatClass;

namespace {

bool is_real_register(const ir::Value* v) {
  return (v->is_instruction() && v->type() == ScalarType::Real) || v->is_array();
}

std::string fmt_range(const vra::Interval& range) {
  std::ostringstream os;
  os << "[" << range.lo << ", " << range.hi << "]";
  return os.str();
}

/// Guaranteed precision (IEBW) of `type` over `range` — the worst case
/// over the interval, matching the fix-max derivation.
int guaranteed_iebw(const ConcreteType& type, const vra::Interval& range) {
  return numrep::iebw_of_range(type.format, range.lo, range.hi, type.frac_bits);
}

/// Largest finite magnitude `format` can represent; +inf for formats whose
/// range cannot be exceeded (wide fixed handled by L004 instead).
double representable_max(const ConcreteType& type) {
  if (type.format.is_fixed()) {
    const int magnitude_bits =
        type.format.width() - (type.format.is_signed() ? 1 : 0);
    return std::ldexp(1.0, magnitude_bits - type.frac_bits);
  }
  return numrep::format_ops(type).max_value(type);
}

/// The value that defines the representation a Real literal operand
/// materializes in: stores write in the array's type, fcmp compares in the
/// register operand's type, and every other Real consumer materializes its
/// literals in its own result type. Returns nullptr when no owner exists
/// (e.g. an fcmp between two literals).
const ir::Value* literal_format_owner(const Instruction* user,
                                      std::size_t operand_index) {
  switch (user->opcode()) {
  case Opcode::Store:
    return operand_index == 0 ? user->operand(1) : nullptr;
  case Opcode::FCmp: {
    const ir::Value* other = user->operand(1 - operand_index);
    return is_real_register(other) ? other : nullptr;
  }
  default:
    return user->type() == ScalarType::Real ? user : nullptr;
  }
}

/// Applies `fn` to every Real register of the function (arrays first, then
/// instructions in program order — the allocator's register enumeration).
template <typename Fn>
void for_each_register(const ir::Function& f, Fn&& fn) {
  for (const auto& arr : f.arrays()) fn(arr.get());
  for (const auto& bb : f.blocks())
    for (const auto& inst : bb->instructions())
      if (inst->type() == ScalarType::Real) fn(inst.get());
}

} // namespace

// ---------------------------------------------------------------------------
// L001 assignment-completeness: every register and literal is covered.
// ---------------------------------------------------------------------------
void check_assignment_completeness(const LintContext& ctx,
                                   DiagnosticEngine& engine) {
  for_each_register(ctx.function, [&](const ir::Value* v) {
    if (ctx.assignment.has_explicit(v)) return;
    engine.report({"L001", Severity::Error, "assignment-completeness",
                   ctx.describe(v),
                   "no representation assigned; the interpreter would fall "
                   "back to the assignment default",
                   "re-run allocation, or add an explicit entry"});
  });
  // Literals materialize in their consumer's format, so they are covered
  // exactly when a format-defining consumer exists.
  for (const auto& bb : ctx.function.blocks()) {
    for (const auto& inst : bb->instructions()) {
      for (std::size_t i = 0; i < inst->num_operands(); ++i) {
        const ir::Value* op = inst->operand(i);
        if (op->kind() != ir::Value::Kind::ConstReal) continue;
        if (literal_format_owner(inst.get(), i) == nullptr)
          engine.report({"L001", Severity::Warning, "assignment-completeness",
                         ctx.describe(op),
                         "literal used by " + ctx.describe(inst.get()) +
                             " has no value defining its representation",
                         "fold the constant expression"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L002 dangling-entry: assignment entries for values not in the function.
// ---------------------------------------------------------------------------
void check_dangling_entries(const LintContext& ctx, DiagnosticEngine& engine) {
  // The key of a dangling entry may point at freed memory (an instruction
  // erased by DCE), so it must never be dereferenced: membership is decided
  // purely on pointer identity against the function's live values.
  std::set<const ir::Value*> live;
  for (const auto& arr : ctx.function.arrays()) live.insert(arr.get());
  for (const auto& bb : ctx.function.blocks()) {
    for (const auto& inst : bb->instructions()) {
      live.insert(inst.get());
      for (const ir::Value* op : inst->operands()) live.insert(op);
    }
  }
  int dangling = 0;
  for (const auto& [value, type] : ctx.assignment.entries())
    if (!live.count(value)) ++dangling;
  if (dangling > 0)
    engine.report({"L002", Severity::Warning, "dangling-entry", "<assignment>",
                   std::to_string(dangling) +
                       " entr" + (dangling == 1 ? "y" : "ies") +
                       " for values not present in the function (deleted by "
                       "a pass, or from a different function)",
                   "re-run allocation after IR transformations"});
}

// ---------------------------------------------------------------------------
// L003 same-type-operands: the ILP same-type constraint holds.
// ---------------------------------------------------------------------------
void check_same_type_operands(const LintContext& ctx, DiagnosticEngine& engine) {
  const auto& types = ctx.assignment;
  auto mismatch = [&](const ir::Value* a, const ir::Value* b) {
    // Only judge pairs the assignment actually pins down; missing entries
    // are L001's finding, not a type conflict.
    if (!types.has_explicit(a) || !types.has_explicit(b)) return false;
    if (ctx.options.casts_materialized) return !(types.of(a) == types.of(b));
    // Before materialization, fixed-point registers of one class may carry
    // different fractional splits (the materializer realigns them with
    // shift casts); only a format disagreement violates the ILP class
    // constraint at this stage.
    return !(types.of(a).format == types.of(b).format);
  };
  auto report = [&](const Instruction* inst, const ir::Value* a,
                    const ir::Value* b, const char* what) {
    engine.report({"L003", Severity::Error, "same-type-operands",
                   ctx.describe(inst),
                   std::string(what) + ": " + ctx.describe(a) + " is " +
                       types.of(a).name() + " but " + ctx.describe(b) + " is " +
                       types.of(b).name(),
                   "insert a cast or merge the two into one type class"});
  };
  for (const auto& bb : ctx.function.blocks()) {
    for (const auto& inst_ptr : bb->instructions()) {
      const Instruction* inst = inst_ptr.get();
      switch (inst->opcode()) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::Div:
      case Opcode::Rem: case Opcode::Pow: case Opcode::Min: case Opcode::Max:
      case Opcode::Neg: case Opcode::Abs: case Opcode::Sqrt: case Opcode::Exp:
        for (const ir::Value* op : inst->operands())
          if (is_real_register(op) && mismatch(inst, op))
            report(inst, inst, op, "arithmetic operand representation differs");
        break;
      case Opcode::Phi:
        if (inst->type() != ScalarType::Real) break;
        for (const ir::Value* op : inst->operands())
          if (is_real_register(op) && mismatch(inst, op))
            report(inst, inst, op, "phi incoming representation differs");
        break;
      case Opcode::Select:
        if (inst->type() != ScalarType::Real) break;
        for (std::size_t i = 1; i <= 2; ++i)
          if (is_real_register(inst->operand(i)) &&
              mismatch(inst, inst->operand(i)))
            report(inst, inst, inst->operand(i),
                   "select arm representation differs");
        break;
      case Opcode::FCmp:
        if (is_real_register(inst->operand(0)) &&
            is_real_register(inst->operand(1)) &&
            mismatch(inst->operand(0), inst->operand(1)))
          report(inst, inst->operand(0), inst->operand(1),
                 "fcmp operands compare in different representations");
        break;
      case Opcode::Load:
        if (mismatch(inst, inst->operand(0)))
          report(inst, inst, inst->operand(0),
                 "load result representation differs from its array");
        break;
      case Opcode::Store:
        // Before cast materialization a store is a legal representation
        // boundary; afterwards nothing reconciles a mismatch.
        if (ctx.options.casts_materialized && is_real_register(inst->operand(0)) &&
            mismatch(inst->operand(0), inst->operand(1)))
          report(inst, inst->operand(0), inst->operand(1),
                 "stored value representation differs from its array after "
                 "cast materialization");
        break;
      default:
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L004 fixed-point-overflow: frac bits respect fix-max(v, f).
// ---------------------------------------------------------------------------
void check_fixed_point_overflow(const LintContext& ctx,
                                DiagnosticEngine& engine) {
  for_each_register(ctx.function, [&](const ir::Value* v) {
    if (!ctx.assignment.has_explicit(v)) return;
    const ConcreteType type = ctx.assignment.of(v);
    if (!type.format.is_fixed()) return;
    const int width = type.format.width();
    if (type.frac_bits < 0 || type.frac_bits >= width) {
      engine.report({"L004", Severity::Error, "fixed-point-overflow",
                     ctx.describe(v),
                     type.name() + " has " + std::to_string(type.frac_bits) +
                         " fractional bits outside [0, " +
                         std::to_string(width - 1) + "]",
                     "clamp frac_bits into the format's width"});
      return;
    }
    const vra::Interval range = ctx.ranges.of(v);
    const int fixmax = numrep::fixed_point_max_frac(
        width, type.format.is_signed(), range.lo, range.hi);
    // A cast is a deliberate narrowing point: its target format trusts the
    // consumer's contract (typically an array's authoritative range
    // annotation), and fixed point quantization saturates rather than
    // wraps. A static operand range wider than the target's span is worth
    // flagging, but it is the annotation's risk, not an allocation bug.
    if (v->is_instruction() &&
        static_cast<const Instruction*>(v)->opcode() == Opcode::Cast) {
      if (type.frac_bits > fixmax)
        engine.report({"L004", Severity::Warning, "fixed-point-overflow",
                       ctx.describe(v),
                       "cast saturates: static operand range " +
                           fmt_range(range) + " exceeds the span of " +
                           type.name() +
                           "; correctness rests on the consumer's range "
                           "contract",
                       "widen the consumer's annotation or lower its "
                       "fractional bits"});
      return;
    }
    if (fixmax < 0) {
      engine.report({"L004", Severity::Error, "fixed-point-overflow",
                     ctx.describe(v),
                     "range " + fmt_range(range) + " needs more integer bits "
                         "than " + type.format.name() + " has at any "
                         "fractional split",
                     "assign a wider fixed format or a float"});
    } else if (type.frac_bits > fixmax) {
      engine.report({"L004", Severity::Error, "fixed-point-overflow",
                     ctx.describe(v),
                     std::to_string(type.frac_bits) + " fractional bits "
                         "overflow on range " + fmt_range(range) +
                         "; fix-max is " + std::to_string(fixmax),
                     "reduce frac_bits to " + std::to_string(fixmax)});
    }
  });
}

// ---------------------------------------------------------------------------
// L005 precision-loss-cast: IEBW drops and double-rounding chains.
// ---------------------------------------------------------------------------
void check_precision_loss_casts(const LintContext& ctx,
                                DiagnosticEngine& engine) {
  for (const auto& bb : ctx.function.blocks()) {
    for (const auto& inst_ptr : bb->instructions()) {
      const Instruction* inst = inst_ptr.get();
      if (inst->opcode() != Opcode::Cast) continue;
      const ir::Value* src = inst->operand(0);
      if (!ctx.assignment.has_explicit(inst) || !ctx.assignment.has_explicit(src))
        continue;
      const ConcreteType from = ctx.assignment.of(src);
      const ConcreteType to = ctx.assignment.of(inst);
      const vra::Interval range = ctx.ranges.of(src);
      const int iebw_from = guaranteed_iebw(from, range);
      const int iebw_to = guaranteed_iebw(to, range);
      const int drop = iebw_from - iebw_to;
      if (drop > ctx.options.precision_loss_threshold)
        engine.report({"L005", Severity::Warning, "precision-loss-cast",
                       ctx.describe(inst),
                       "cast " + from.name() + " -> " + to.name() + " drops " +
                           std::to_string(drop) + " guaranteed fractional "
                           "bits over range " + fmt_range(range) +
                           " (threshold " +
                           std::to_string(ctx.options.precision_loss_threshold) +
                           ")",
                       "keep the producer narrow or widen the consumer"});
      // Double rounding: t -> t' -> t'' where the middle format is strictly
      // the least precise — both roundings are lossy and the second hides
      // the first.
      if (src->is_instruction() &&
          static_cast<const Instruction*>(src)->opcode() == Opcode::Cast) {
        const Instruction* inner = static_cast<const Instruction*>(src);
        const ir::Value* origin = inner->operand(0);
        if (!ctx.assignment.has_explicit(origin)) continue;
        const ConcreteType t0 = ctx.assignment.of(origin);
        const vra::Interval origin_range = ctx.ranges.of(origin);
        const int i0 = guaranteed_iebw(t0, origin_range);
        const int i1 = guaranteed_iebw(from, origin_range);
        const int i2 = guaranteed_iebw(to, origin_range);
        if (i1 < i0 && i1 < i2)
          engine.report({"L005", Severity::Warning, "precision-loss-cast",
                         ctx.describe(inst),
                         "double rounding " + t0.name() + " -> " + from.name() +
                             " -> " + to.name() + ": the intermediate format "
                             "is the least precise of the chain",
                         "cast directly from " + t0.name() + " to " +
                             to.name()});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// L006 redundant-cast: identity casts and cancelling cast pairs.
// ---------------------------------------------------------------------------
void check_redundant_casts(const LintContext& ctx, DiagnosticEngine& engine) {
  for (const auto& bb : ctx.function.blocks()) {
    for (const auto& inst_ptr : bb->instructions()) {
      const Instruction* inst = inst_ptr.get();
      if (inst->opcode() != Opcode::Cast) continue;
      const ir::Value* src = inst->operand(0);
      if (!ctx.assignment.has_explicit(inst) || !ctx.assignment.has_explicit(src))
        continue;
      const ConcreteType from = ctx.assignment.of(src);
      const ConcreteType to = ctx.assignment.of(inst);
      if (from == to) {
        engine.report({"L006", Severity::Warning, "redundant-cast",
                       ctx.describe(inst),
                       "cast to the identical representation " + to.name(),
                       "forward the operand and delete the cast"});
        continue;
      }
      // Back-to-back pair that cancels: t -> t' -> t with a lossless middle
      // hop (the intermediate is at least as precise over the range).
      if (src->is_instruction() &&
          static_cast<const Instruction*>(src)->opcode() == Opcode::Cast) {
        const Instruction* inner = static_cast<const Instruction*>(src);
        const ir::Value* origin = inner->operand(0);
        if (ctx.assignment.has_explicit(origin) &&
            ctx.assignment.of(origin) == to) {
          const vra::Interval range = ctx.ranges.of(origin);
          if (guaranteed_iebw(from, range) >= guaranteed_iebw(to, range))
            engine.report({"L006", Severity::Warning, "redundant-cast",
                           ctx.describe(inst),
                           "casts " + to.name() + " -> " + from.name() +
                               " -> " + to.name() + " cancel (the middle "
                               "format loses no precision)",
                           "use " + ctx.describe(origin) + " directly and "
                               "delete both casts"});
        }
      }
      // A cast nothing consumes is dead weight from a partial rewrite.
      const auto uses = ctx.uses.find(inst);
      if (uses == ctx.uses.end() || uses->second.empty())
        engine.report({"L006", Severity::Note, "redundant-cast",
                       ctx.describe(inst), "cast result has no uses",
                       "delete the cast (dead code)"});
    }
  }
}

// ---------------------------------------------------------------------------
// L007 range-escape: values the assigned format cannot represent.
// ---------------------------------------------------------------------------
void check_range_escape(const LintContext& ctx, DiagnosticEngine& engine) {
  for_each_register(ctx.function, [&](const ir::Value* v) {
    if (!ctx.assignment.has_explicit(v)) return;
    const ConcreteType type = ctx.assignment.of(v);
    if (type.format.is_fixed()) return; // the fractional-bit budget is L004
    const vra::Interval range = ctx.ranges.of(v);
    const double max_mag = range.max_magnitude();
    const numrep::FormatClassOps& ops = numrep::format_ops(type);
    if (!ops.executable(type.format))
      engine.report({"L007", Severity::Note, "range-escape", ctx.describe(v),
                     type.format.name() + " is described for the IEBW "
                         "metric but cannot be executed by the soft "
                         "emulator",
                     "use an executable format (see `luis formats`)"});
    const double rep = ops.max_value(type);
    if (max_mag > rep) {
      if (ops.saturates(type.format))
        // Saturating representations (posits, fixed-posits, finite-only
        // and FNUZ floats) clamp instead of producing infinities.
        engine.report({"L007", Severity::Warning, "range-escape",
                       ctx.describe(v),
                       "range " + fmt_range(range) + " exceeds the largest "
                           "finite " + type.format.name() + " value " +
                           std::to_string(rep) + "; values will saturate",
                       "assign a wider format"});
      else
        engine.report({"L007", Severity::Error, "range-escape", ctx.describe(v),
                       "range " + fmt_range(range) + " exceeds the largest "
                           "finite " + type.format.name() + " value " +
                           std::to_string(rep) +
                           "; overflow to infinity is guaranteed reachable",
                       "assign a format with a wider exponent range"});
    }
  });
  // Literals materialize in their consumer's format; the allocator's
  // feasibility check only looks at register ranges, so an oversized
  // literal coefficient slips through it — exactly the gap this check
  // closes. Warning severity: execution saturates rather than traps.
  for (const auto& bb : ctx.function.blocks()) {
    for (const auto& inst : bb->instructions()) {
      for (std::size_t i = 0; i < inst->num_operands(); ++i) {
        const ir::Value* op = inst->operand(i);
        if (op->kind() != ir::Value::Kind::ConstReal) continue;
        const ir::Value* owner = literal_format_owner(inst.get(), i);
        if (!owner || !ctx.assignment.has_explicit(owner)) continue;
        const ConcreteType type = ctx.assignment.of(owner);
        const double value =
            std::abs(static_cast<const ir::ConstReal*>(op)->value());
        if (value > representable_max(type))
          engine.report({"L007", Severity::Warning, "range-escape",
                         ctx.describe(op),
                         "literal materializes in " + type.name() + " (via " +
                             ctx.describe(owner) + ") but exceeds its largest "
                             "representable magnitude",
                         "widen the consumer's format or rescale the "
                             "expression"});
      }
    }
  }
}

} // namespace luis::analysis
