// Measured-vs-certified cross-check: compares the per-array deviations a
// shadow-execution run measured (interp::ErrorProfile's ArrayErrorStats)
// against the static certificates of analysis/error_bounds.hpp.
//
// The certificate is composed exactly as the fuzz oracle composes it: the
// assignment's certified bound plus the certified bound of the binary64
// reference itself (the shadow stands in for the exact execution, and its
// own distance to exactness must be budgeted). The comparison is a hard
// soundness check — a finite certified bound exceeded by a measured
// deviation means either the analysis or the profiler is wrong — plus a
// quality signal: the tightness ratio certified/measured says how much
// headroom the static analysis leaves on real data.
//
// Applicability. The shadow follows the *quantized* run's control flow.
// Only when the run recorded zero control divergences is the shadow
// bit-identical to an independent binary64 run, which is the execution
// the certificate speaks about; with divergences the comparison is still
// reported (the capped certificates are far larger than any path-following
// deviation) but no violation is claimed. Likewise, a non-finite buffer
// voids the float finite-run side condition, and an infinite certificate
// makes no claim at all.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "analysis/error_bounds.hpp"
#include "interp/interpreter.hpp"

namespace luis::analysis {

/// One array's measured-vs-certified comparison.
struct ArrayCertCheck {
  std::string name;
  double measured = 0.0;  ///< max |quantized - shadow| over final contents
  double certified = 0.0; ///< certified(assignment) + certified(binary64)
  /// certified / measured; +inf when nothing was measurably lost.
  double tightness = 0.0;
  bool checked = false;  ///< a finite claim existed and applied
  bool violated = false; ///< checked and measured > certified
};

struct CertificateCrossCheck {
  /// Zero recorded control divergences: the shadow outputs equal an
  /// independent binary64 run, so the certificate's claim applies.
  bool shadow_is_reference = false;
  bool divergent_control = false;  ///< static analysis saw FCmp control
  bool assumes_finite_run = false; ///< float caps carry the side condition
  long capped_bounds = 0;
  bool any_violation = false;
  std::vector<ArrayCertCheck> arrays; ///< in `measured` order
};

/// Runs the VRA (join_stores, self-contained certificate) and both error
/// analyses, then compares each measured array stat against its composed
/// certificate. `measured` comes from a finalized ErrorProfile's `arrays`;
/// `control_divergences` from the same profile.
CertificateCrossCheck
cross_check_certificates(const ir::Function& f,
                         const interp::TypeAssignment& assignment,
                         std::span<const interp::ArrayErrorStats> measured,
                         long control_divergences,
                         const ErrorBoundsOptions& options = {});

/// Human-readable table (one row per array) plus the verdict line.
std::string certificate_check_text(const CertificateCrossCheck& check);

/// JSON object (no build stamp — meant to be embedded in a report).
std::string certificate_check_json(const CertificateCrossCheck& check);

} // namespace luis::analysis
