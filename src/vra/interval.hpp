// Interval arithmetic domain for Value Range Analysis.
#pragma once

#include <algorithm>
#include <string>

namespace luis::vra {

/// A closed interval [lo, hi] over the extended reals. The default
/// constructed interval is the single point 0.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  Interval() = default;
  Interval(double l, double h) : lo(l), hi(h) {}
  static Interval point(double x) { return {x, x}; }
  /// The "don't know" element (clamped to +-bound by the analysis).
  static Interval top(double bound);

  bool contains(double x) const { return lo <= x && x <= hi; }
  bool contains_zero() const { return contains(0.0); }
  double width() const { return hi - lo; }
  double max_magnitude() const { return std::max(std::abs(lo), std::abs(hi)); }
  bool valid() const { return lo <= hi; }

  std::string to_string() const;

  friend bool operator==(const Interval&, const Interval&) = default;
};

// Exact interval transfer functions for every Real operation of the IR.
Interval iv_add(const Interval& a, const Interval& b);
Interval iv_sub(const Interval& a, const Interval& b);
Interval iv_mul(const Interval& a, const Interval& b);
/// Division widens to `huge` when the divisor straddles zero.
Interval iv_div(const Interval& a, const Interval& b, double huge);
/// fmod: bounded by the divisor magnitude and the dividend.
Interval iv_rem(const Interval& a, const Interval& b);
Interval iv_neg(const Interval& a);
Interval iv_abs(const Interval& a);
/// sqrt clamps the negative part (NaN region) at 0.
Interval iv_sqrt(const Interval& a);
Interval iv_exp(const Interval& a, double huge);
/// pow with a constant exponent handles the monotone and even cases
/// exactly; anything else falls back to [-huge, huge].
Interval iv_pow(const Interval& base, const Interval& exponent, double huge);
Interval iv_min(const Interval& a, const Interval& b);
Interval iv_max(const Interval& a, const Interval& b);

/// Least upper bound (interval hull).
Interval iv_join(const Interval& a, const Interval& b);
/// Standard widening: bounds that grew since `old` jump to +-bound.
Interval iv_widen(const Interval& old_iv, const Interval& new_iv, double bound);
/// Clamps both bounds into [-bound, bound].
Interval iv_clamp(const Interval& a, double bound);

} // namespace luis::vra
