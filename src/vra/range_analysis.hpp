// Value Range Analysis (VRA) — the first stage of the LUIS pipeline
// (Figure 1 of the paper).
//
// Propagates the user's range annotations on arrays to every virtual
// register of the kernel. Arrays are annotated with the dynamic range of
// the values they hold over the whole execution (the TAFFO annotation
// discipline), so array ranges are authoritative: loads read the
// annotation, and real-valued data flow through registers is acyclic
// (accumulation goes through memory). Integer registers (loop induction
// variables feeding IntToReal) are analyzed to a fixpoint with widening.
//
// The optional join_stores mode additionally flows stored-value ranges
// back into arrays (with widening); it exists to *check* annotations
// rather than to replace them.
#pragma once

#include <map>

#include "ir/function.hpp"
#include "vra/interval.hpp"

namespace luis::analysis {
struct DataflowStats;
} // namespace luis::analysis

namespace luis::vra {

struct VraOptions {
  int max_passes = 50;
  int widen_after = 10;
  /// Hard clamp on every bound; also the "don't know" magnitude.
  double clamp = 1e30;
  /// Flow store ranges back into array ranges (annotation checking mode).
  bool join_stores = false;
};

class RangeMap {
public:
  /// Range of a value; constants are their point interval, unannotated
  /// arrays and unknown values return the clamped top element.
  Interval of(const ir::Value* value) const;

  void set(const ir::Value* value, Interval iv) { ranges_[value] = iv; }
  bool has(const ir::Value* value) const { return ranges_.count(value) > 0; }
  std::size_t size() const { return ranges_.size(); }
  double top_magnitude() const { return top_; }
  void set_top_magnitude(double m) { top_ = m; }

private:
  std::map<const ir::Value*, Interval> ranges_;
  double top_ = 1e30;
};

/// Runs the analysis over `f`. Every Real instruction and every array has
/// an entry in the result. When `stats` is non-null the fixpoint statistics
/// (passes, transfers, widenings, convergence) are written there.
RangeMap analyze_ranges(const ir::Function& f, const VraOptions& options = {},
                        analysis::DataflowStats* stats = nullptr);

} // namespace luis::vra
