#include "vra/interval.hpp"

#include <cmath>
#include <limits>

#include "support/string_utils.hpp"

namespace luis::vra {

Interval Interval::top(double bound) { return {-bound, bound}; }

std::string Interval::to_string() const {
  return format_string("[%g, %g]", lo, hi);
}

Interval iv_add(const Interval& a, const Interval& b) {
  return {a.lo + b.lo, a.hi + b.hi};
}

Interval iv_sub(const Interval& a, const Interval& b) {
  return {a.lo - b.hi, a.hi - b.lo};
}

Interval iv_mul(const Interval& a, const Interval& b) {
  const double c[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi};
  return {std::min({c[0], c[1], c[2], c[3]}), std::max({c[0], c[1], c[2], c[3]})};
}

Interval iv_div(const Interval& a, const Interval& b, double huge) {
  if (b.contains_zero()) return Interval::top(huge);
  const double c[4] = {a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi};
  return {std::min({c[0], c[1], c[2], c[3]}), std::max({c[0], c[1], c[2], c[3]})};
}

Interval iv_rem(const Interval& a, const Interval& b) {
  // |fmod(a, b)| <= min(|a|, |b|), sign follows the dividend.
  const double bound = std::min(a.max_magnitude(), b.max_magnitude());
  const double lo = a.lo < 0.0 ? -bound : 0.0;
  const double hi = a.hi > 0.0 ? bound : 0.0;
  return {lo, hi};
}

Interval iv_neg(const Interval& a) { return {-a.hi, -a.lo}; }

Interval iv_abs(const Interval& a) {
  if (a.lo >= 0.0) return a;
  if (a.hi <= 0.0) return {-a.hi, -a.lo};
  return {0.0, a.max_magnitude()};
}

Interval iv_sqrt(const Interval& a) {
  return {std::sqrt(std::max(a.lo, 0.0)), std::sqrt(std::max(a.hi, 0.0))};
}

Interval iv_exp(const Interval& a, double huge) {
  return {std::exp(a.lo), std::min(std::exp(a.hi), huge)};
}

Interval iv_pow(const Interval& base, const Interval& exponent, double huge) {
  if (exponent.lo != exponent.hi) return Interval::top(huge);
  const double e = exponent.lo;
  if (e == std::floor(e) && e >= 0.0) {
    const auto n = static_cast<long>(e);
    if (n % 2 == 0) {
      // Even power: minimum at the smallest magnitude.
      const double m = base.contains_zero() ? 0.0
                                            : std::min(std::abs(base.lo),
                                                       std::abs(base.hi));
      return {std::pow(m, e), std::pow(base.max_magnitude(), e)};
    }
    // Odd power: monotone.
    return {std::pow(base.lo, e), std::pow(base.hi, e)};
  }
  if (base.lo >= 0.0) {
    // Monotone in base for positive bases.
    const double c[4] = {std::pow(base.lo, exponent.lo), std::pow(base.lo, exponent.hi),
                         std::pow(base.hi, exponent.lo), std::pow(base.hi, exponent.hi)};
    return {std::min({c[0], c[1], c[2], c[3]}), std::max({c[0], c[1], c[2], c[3]})};
  }
  return Interval::top(huge);
}

Interval iv_min(const Interval& a, const Interval& b) {
  return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Interval iv_max(const Interval& a, const Interval& b) {
  return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval iv_join(const Interval& a, const Interval& b) {
  // A NaN endpoint means "unknown"; std::min/max would silently drop it
  // (they return the other argument), shrinking the join. Widen instead —
  // iv_clamp downstream turns the infinities into the top element.
  if (std::isnan(a.lo) || std::isnan(b.lo) || std::isnan(a.hi) ||
      std::isnan(b.hi))
    return {-std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity()};
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval iv_widen(const Interval& old_iv, const Interval& new_iv, double bound) {
  return {new_iv.lo < old_iv.lo ? -bound : old_iv.lo,
          new_iv.hi > old_iv.hi ? bound : old_iv.hi};
}

Interval iv_clamp(const Interval& a, double bound) {
  const double lo = std::isnan(a.lo) ? -bound : std::clamp(a.lo, -bound, bound);
  const double hi = std::isnan(a.hi) ? bound : std::clamp(a.hi, -bound, bound);
  return {lo, hi};
}

} // namespace luis::vra
