#include "vra/range_analysis.hpp"

#include <optional>

#include "analysis/dataflow.hpp"
#include "support/diag.hpp"
#include "support/string_utils.hpp"

namespace luis::vra {

using ir::Instruction;
using ir::Opcode;
using ir::ScalarType;

Interval RangeMap::of(const ir::Value* value) const {
  const auto it = ranges_.find(value);
  if (it != ranges_.end()) return it->second;
  switch (value->kind()) {
  case ir::Value::Kind::ConstReal:
    return Interval::point(static_cast<const ir::ConstReal*>(value)->value());
  case ir::Value::Kind::ConstInt:
    return Interval::point(
        static_cast<double>(static_cast<const ir::ConstInt*>(value)->value()));
  default:
    return Interval::top(top_);
  }
}

namespace {

/// The interval domain, expressed as a client of the shared forward
/// dataflow framework (analysis/dataflow.hpp). Real registers use Assign
/// effects (their range is an exact function of the operand ranges and may
/// shrink on re-evaluation); integer registers, phis, and store-joined
/// arrays use Join effects, which the framework widens once the pass count
/// passes widen_after.
class RangeDomain {
public:
  using Value = Interval;
  using Reader = analysis::ForwardDataflow<RangeDomain>::Reader;

  RangeDomain(const ir::Function& f, const VraOptions& opt) : f_(f), opt_(opt) {}

  void seed(std::map<const ir::Value*, Interval>& state) {
    for (const auto& arr : f_.arrays()) {
      if (arr->range_annotation()) {
        state.emplace(arr.get(), iv_clamp({arr->range_annotation()->first,
                                           arr->range_annotation()->second},
                                          opt_.clamp));
      } else {
        // Loads treat the annotation as authoritative, so a missing one
        // silently degrades every dependent range (and error bound) to top.
        LUIS_LOG_WARN(format_string(
            "vra: array @%s has no range annotation; assuming [-%g, %g]",
            arr->name().c_str(), opt_.clamp, opt_.clamp));
        state.emplace(arr.get(), Interval::top(opt_.clamp));
      }
    }
  }

  std::optional<Interval> constant(const ir::Value* v) const {
    switch (v->kind()) {
    case ir::Value::Kind::ConstReal:
      return Interval::point(static_cast<const ir::ConstReal*>(v)->value());
    case ir::Value::Kind::ConstInt:
      return Interval::point(
          static_cast<double>(static_cast<const ir::ConstInt*>(v)->value()));
    default:
      return std::nullopt;
    }
  }

  Interval join(const Interval& a, const Interval& b) const {
    return iv_join(a, b);
  }

  Interval widen(const ir::Value*, const Interval& old_iv,
                 const Interval& grown, int /*pass*/) const {
    return iv_widen(old_iv, grown, opt_.clamp);
  }

  bool equal(const Interval& a, const Interval& b) const { return a == b; }

  void transfer(const Instruction* inst, const Reader& read,
                analysis::Effects<Interval>& fx) {
    const double huge = opt_.clamp;
    bool poisoned = false;
    const auto in = [&](const ir::Value* v) -> Interval {
      const std::optional<Interval> iv = read(v);
      if (!iv) {
        poisoned = true;
        return Interval{};
      }
      return *iv;
    };
    const auto assign = [&](Interval next) {
      if (poisoned) fx.poison();
      else fx.assign(inst, iv_clamp(next, opt_.clamp));
    };
    const auto join_into = [&](const ir::Value* target, Interval next) {
      if (poisoned) fx.poison();
      else fx.join(target, iv_clamp(next, opt_.clamp));
    };

    switch (inst->opcode()) {
    case Opcode::Add:
      assign(iv_add(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::Sub:
      assign(iv_sub(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::Mul:
      assign(iv_mul(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::Div:
      assign(iv_div(in(inst->operand(0)), in(inst->operand(1)), huge));
      break;
    case Opcode::Rem:
      assign(iv_rem(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::Neg:
      assign(iv_neg(in(inst->operand(0))));
      break;
    case Opcode::Abs:
      assign(iv_abs(in(inst->operand(0))));
      break;
    case Opcode::Sqrt:
      assign(iv_sqrt(in(inst->operand(0))));
      break;
    case Opcode::Exp:
      assign(iv_exp(in(inst->operand(0)), huge));
      break;
    case Opcode::Pow:
      assign(iv_pow(in(inst->operand(0)), in(inst->operand(1)), huge));
      break;
    case Opcode::Min:
      assign(iv_min(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::Max:
      assign(iv_max(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::Cast:
    case Opcode::IntToReal:
      assign(in(inst->operand(0)));
      break;
    case Opcode::Load:
      // The array annotation is authoritative for loaded values.
      assign(in(inst->operand(0)));
      break;
    case Opcode::Store:
      if (opt_.join_stores)
        join_into(inst->operand(1), in(inst->operand(0)));
      break;
    case Opcode::Select: {
      if (inst->type() == ScalarType::Real)
        assign(iv_join(in(inst->operand(1)), in(inst->operand(2))));
      else if (inst->type() == ScalarType::Int)
        join_into(inst, iv_join(in(inst->operand(1)), in(inst->operand(2))));
      break;
    }
    case Opcode::Phi: {
      // Joins across loop back edges grow monotonically; widening bounds
      // the iteration count. Not-yet-visited incoming values (the back
      // edge on the first pass) are bottom and do not contribute.
      std::optional<Interval> acc;
      for (std::size_t i = 0; i < inst->num_operands(); ++i) {
        const auto iv = read(inst->operand(i));
        if (!iv) continue;
        acc = acc ? iv_join(*acc, *iv) : *iv;
      }
      if (acc) join_into(inst, *acc);
      return;
    }
    case Opcode::IAdd:
      join_into(inst, iv_add(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::ISub:
      join_into(inst, iv_sub(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::IMul:
      join_into(inst, iv_mul(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::IDiv:
      join_into(inst, iv_div(in(inst->operand(0)), in(inst->operand(1)), huge));
      break;
    case Opcode::IRem:
      join_into(inst, iv_rem(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::IMin:
      join_into(inst, iv_min(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::IMax:
      join_into(inst, iv_max(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::ICmp:
    case Opcode::FCmp:
    case Opcode::Br:
    case Opcode::CondBr:
    case Opcode::Ret:
      break;
    }
  }

private:
  const ir::Function& f_;
  const VraOptions& opt_;
};

} // namespace

RangeMap analyze_ranges(const ir::Function& f, const VraOptions& options,
                        analysis::DataflowStats* stats) {
  RangeDomain domain(f, options);
  analysis::DataflowOptions df;
  df.max_passes = options.max_passes;
  df.widen_after = options.widen_after;
  analysis::ForwardDataflow<RangeDomain> engine(f, domain, df);
  const analysis::DataflowStats run_stats = engine.run();
  if (stats) *stats = run_stats;

  RangeMap map;
  map.set_top_magnitude(options.clamp);
  for (const auto& [value, interval] : engine.state()) map.set(value, interval);
  return map;
}

} // namespace luis::vra
