#include "vra/range_analysis.hpp"

#include <optional>

#include "support/diag.hpp"

namespace luis::vra {

using ir::Instruction;
using ir::Opcode;
using ir::ScalarType;

Interval RangeMap::of(const ir::Value* value) const {
  const auto it = ranges_.find(value);
  if (it != ranges_.end()) return it->second;
  switch (value->kind()) {
  case ir::Value::Kind::ConstReal:
    return Interval::point(static_cast<const ir::ConstReal*>(value)->value());
  case ir::Value::Kind::ConstInt:
    return Interval::point(
        static_cast<double>(static_cast<const ir::ConstInt*>(value)->value()));
  default:
    return Interval::top(top_);
  }
}

namespace {

class Analyzer {
public:
  Analyzer(const ir::Function& f, const VraOptions& opt) : f_(f), opt_(opt) {
    map_.set_top_magnitude(opt.clamp);
  }

  RangeMap run() {
    // Seed arrays from annotations.
    for (const auto& arr : f_.arrays()) {
      if (arr->range_annotation()) {
        map_.set(arr.get(), iv_clamp({arr->range_annotation()->first,
                                      arr->range_annotation()->second},
                                     opt_.clamp));
      } else {
        map_.set(arr.get(), Interval::top(opt_.clamp));
      }
    }

    for (int pass = 0; pass < opt_.max_passes; ++pass) {
      changed_ = false;
      widen_ = pass >= opt_.widen_after;
      for (const auto& bb : f_.blocks())
        for (const auto& inst : bb->instructions()) transfer(inst.get());
      if (!changed_) break;
    }
    return std::move(map_);
  }

private:
  /// Operand range during the fixpoint: constants are points, seeded and
  /// already-computed values read the map, and not-yet-visited registers
  /// are bottom (nullopt) so the optimistic iteration can start tight.
  std::optional<Interval> in_opt(const ir::Value* v) const {
    if (v->is_constant() || map_.has(v)) return map_.of(v);
    return std::nullopt;
  }

  /// Strict operand read: bottom operands poison the transfer (sets the
  /// poisoned_ flag and returns a dummy).
  Interval in(const ir::Value* v) {
    const auto iv = in_opt(v);
    if (!iv) {
      poisoned_ = true;
      return Interval{};
    }
    return *iv;
  }

  void update(const ir::Value* v, Interval next) {
    if (poisoned_) return; // a bottom operand: try again next pass
    next = iv_clamp(next, opt_.clamp);
    if (!map_.has(v)) {
      map_.set(v, next);
      changed_ = true;
      return;
    }
    const Interval old = map_.of(v);
    Interval merged = iv_join(old, next);
    if (merged == old) return;
    if (widen_) merged = iv_widen(old, merged, opt_.clamp);
    map_.set(v, merged);
    changed_ = true;
  }

  /// Replaces (rather than joins) the range of a register: real data flow
  /// through registers is a pure function of the operand ranges, so the
  /// transfer result is exact and re-evaluation must be able to shrink it.
  void assign(const ir::Value* v, Interval next) {
    if (poisoned_) return; // a bottom operand: try again next pass
    next = iv_clamp(next, opt_.clamp);
    if (map_.has(v) && map_.of(v) == next) return;
    map_.set(v, next);
    changed_ = true;
  }

  void transfer(const Instruction* inst) {
    const double huge = opt_.clamp;
    poisoned_ = false;
    switch (inst->opcode()) {
    case Opcode::Add:
      assign(inst, iv_add(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::Sub:
      assign(inst, iv_sub(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::Mul:
      assign(inst, iv_mul(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::Div:
      assign(inst, iv_div(in(inst->operand(0)), in(inst->operand(1)), huge));
      break;
    case Opcode::Rem:
      assign(inst, iv_rem(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::Neg:
      assign(inst, iv_neg(in(inst->operand(0))));
      break;
    case Opcode::Abs:
      assign(inst, iv_abs(in(inst->operand(0))));
      break;
    case Opcode::Sqrt:
      assign(inst, iv_sqrt(in(inst->operand(0))));
      break;
    case Opcode::Exp:
      assign(inst, iv_exp(in(inst->operand(0)), huge));
      break;
    case Opcode::Pow:
      assign(inst, iv_pow(in(inst->operand(0)), in(inst->operand(1)), huge));
      break;
    case Opcode::Min:
      assign(inst, iv_min(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::Max:
      assign(inst, iv_max(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::Cast:
    case Opcode::IntToReal:
      assign(inst, in(inst->operand(0)));
      break;
    case Opcode::Load:
      // The array annotation is authoritative for loaded values.
      assign(inst, in(inst->operand(0)));
      break;
    case Opcode::Store:
      if (opt_.join_stores)
        update(inst->operand(1), in(inst->operand(0)));
      break;
    case Opcode::Select: {
      if (inst->type() == ScalarType::Real)
        assign(inst, iv_join(in(inst->operand(1)), in(inst->operand(2))));
      else if (inst->type() == ScalarType::Int)
        update(inst, iv_join(in(inst->operand(1)), in(inst->operand(2))));
      break;
    }
    case Opcode::Phi: {
      // Joins across loop back edges grow monotonically; widening bounds
      // the iteration count. Not-yet-visited incoming values (the back
      // edge on the first pass) are bottom and do not contribute.
      std::optional<Interval> acc;
      for (std::size_t i = 0; i < inst->num_operands(); ++i) {
        const auto iv = in_opt(inst->operand(i));
        if (!iv) continue;
        acc = acc ? iv_join(*acc, *iv) : *iv;
      }
      if (acc) update(inst, *acc);
      return;
    }
    case Opcode::IAdd:
      update(inst, iv_add(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::ISub:
      update(inst, iv_sub(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::IMul:
      update(inst, iv_mul(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::IDiv:
      update(inst, iv_div(in(inst->operand(0)), in(inst->operand(1)), huge));
      break;
    case Opcode::IRem:
      update(inst, iv_rem(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::IMin:
      update(inst, iv_min(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::IMax:
      update(inst, iv_max(in(inst->operand(0)), in(inst->operand(1))));
      break;
    case Opcode::ICmp:
    case Opcode::FCmp:
    case Opcode::Br:
    case Opcode::CondBr:
    case Opcode::Ret:
      break;
    }
  }

  const ir::Function& f_;
  const VraOptions& opt_;
  RangeMap map_;
  bool changed_ = false;
  bool widen_ = false;
  bool poisoned_ = false;
};

} // namespace

RangeMap analyze_ranges(const ir::Function& f, const VraOptions& options) {
  return Analyzer(f, options).run();
}

} // namespace luis::vra
