// Small statistics helpers shared by the evaluation harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace luis {

/// Accumulates streaming summary statistics (Welford's algorithm).
class RunningStats {
public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const; ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Arithmetic mean of a sequence (0 for empty input).
double mean_of(std::span<const double> xs);

/// Geometric mean; all inputs must be positive.
double geomean_of(std::span<const double> xs);

/// p-th percentile (0 <= p <= 100) with linear interpolation.
double percentile_of(std::vector<double> xs, double p);

/// Mean Percentage Error between a reference and a tuned output vector,
/// exactly as defined in the paper (section V-A.4):
///   MPE = 100/n * sum_i |(o_i - o'_i) / o_i|
/// Elements where the reference is zero are skipped to keep the metric
/// finite (the paper's MPE is undefined there); if every reference element
/// is zero the MPE is 0 when the outputs agree and infinity otherwise.
double mean_percentage_error(std::span<const double> reference,
                             std::span<const double> tuned);

} // namespace luis
