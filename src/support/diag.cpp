#include "support/diag.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace luis {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::Info)};

// One lock around the stderr write so concurrent workers emit whole lines.
std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

} // namespace

[[noreturn]] void fatal_error(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "luis fatal error at %s:%d: %s\n", file, line, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] void assert_fail(const char* file, int line, const char* expr,
                              const std::string& msg) {
  std::fprintf(stderr, "luis assertion failed at %s:%d: (%s) %s\n", file, line,
               expr, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

const char* to_string(LogLevel level) {
  switch (level) {
  case LogLevel::Error: return "error";
  case LogLevel::Warn: return "warn";
  case LogLevel::Info: return "info";
  case LogLevel::Debug: return "debug";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "error") return LogLevel::Error;
  if (name == "warn" || name == "warning") return LogLevel::Warn;
  if (name == "info") return LogLevel::Info;
  if (name == "debug") return LogLevel::Debug;
  return std::nullopt;
}

void set_log_level(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <=
         g_log_level.load(std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& msg) {
  if (!log_enabled(level)) return;
  std::string line = "[";
  line += to_string(level);
  line += "] ";
  line += msg;
  if (line.empty() || line.back() != '\n') line += '\n';
  std::lock_guard<std::mutex> lock(log_mutex());
  std::fputs(line.c_str(), stderr);
}

} // namespace luis
