#include "support/diag.hpp"

#include <cstdio>
#include <cstdlib>

namespace luis {

[[noreturn]] void fatal_error(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "luis fatal error at %s:%d: %s\n", file, line, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] void assert_fail(const char* file, int line, const char* expr,
                              const std::string& msg) {
  std::fprintf(stderr, "luis assertion failed at %s:%d: (%s) %s\n", file, line,
               expr, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

} // namespace luis
