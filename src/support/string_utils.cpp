#include "support/string_utils.hpp"

#include <cstdarg>
#include <cstdio>

namespace luis {

std::vector<std::string> split_fields(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(sep, start);
    if (end == std::string_view::npos) end = text.size();
    if (end > start) out.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string format_string(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string pad_left(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string pad_right(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

} // namespace luis
