#include "support/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/diag.hpp"

namespace luis {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double logsum = 0.0;
  for (double x : xs) {
    LUIS_ASSERT(x > 0.0, "geomean requires positive inputs");
    logsum += std::log(x);
  }
  return std::exp(logsum / static_cast<double>(xs.size()));
}

double percentile_of(std::vector<double> xs, double p) {
  LUIS_ASSERT(!xs.empty(), "percentile of empty sample");
  LUIS_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double mean_percentage_error(std::span<const double> reference,
                             std::span<const double> tuned) {
  LUIS_ASSERT(reference.size() == tuned.size(),
              "MPE requires equally sized output vectors");
  if (reference.empty()) return 0.0;
  double acc = 0.0;
  std::size_t counted = 0;
  bool diverged_at_zero = false;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (reference[i] == 0.0) {
      if (tuned[i] != 0.0) diverged_at_zero = true;
      continue;
    }
    acc += std::abs((reference[i] - tuned[i]) / reference[i]);
    ++counted;
  }
  if (counted == 0)
    return diverged_at_zero ? std::numeric_limits<double>::infinity() : 0.0;
  return 100.0 * acc / static_cast<double>(counted);
}

} // namespace luis
