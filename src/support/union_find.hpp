// Disjoint-set forest with union by rank and path compression.
//
// Used by the LUIS ILP model builder to merge virtual registers that are
// forced to share a data type (operands of the same arithmetic operation,
// phi webs, loads tied to their backing array) into type equivalence
// classes, which keeps the ILP model compact.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

namespace luis {

class UnionFind {
public:
  explicit UnionFind(std::size_t n = 0) { reset(n); }

  void reset(std::size_t n) {
    parent_.resize(n);
    rank_.assign(n, 0);
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
    components_ = n;
  }

  /// Adds one element and returns its index.
  std::size_t add() {
    parent_.push_back(parent_.size());
    rank_.push_back(0);
    ++components_;
    return parent_.size() - 1;
  }

  std::size_t size() const { return parent_.size(); }
  std::size_t component_count() const { return components_; }

  std::size_t find(std::size_t x) {
    std::size_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      const std::size_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  /// Merges the sets containing a and b. Returns the surviving root.
  std::size_t unite(std::size_t a, std::size_t b) {
    std::size_t ra = find(a), rb = find(b);
    if (ra == rb) return ra;
    if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    if (rank_[ra] == rank_[rb]) ++rank_[ra];
    --components_;
    return ra;
  }

  bool same(std::size_t a, std::size_t b) { return find(a) == find(b); }

private:
  std::vector<std::size_t> parent_;
  std::vector<unsigned> rank_;
  std::size_t components_ = 0;
};

} // namespace luis
