// String helpers used by the IR printer/parser and report generators.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace luis {

/// Splits on `sep`, dropping empty fields.
std::vector<std::string> split_fields(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string format_string(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Left-pads `text` with spaces to at least `width` characters.
std::string pad_left(std::string_view text, std::size_t width);

/// Right-pads `text` with spaces to at least `width` characters.
std::string pad_right(std::string_view text, std::size_t width);

} // namespace luis
