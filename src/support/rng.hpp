// Deterministic pseudo-random number generation.
//
// All randomized components (workload generators, property tests, solver
// perturbations) draw from this engine so that every experiment in the
// repository is reproducible from a seed.
#pragma once

#include <cstdint>

namespace luis {

/// xoshiro256** by Blackman & Vigna: small, fast, and high quality.
/// Seeded through splitmix64 so that nearby seeds give unrelated streams.
class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// Bernoulli trial with probability p.
  bool next_bool(double p = 0.5);

private:
  std::uint64_t state_[4];
};

} // namespace luis
