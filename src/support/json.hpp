// Minimal JSON emission shared by every report generator in LUIS: the
// sweep report, the trace-event sink, and the metrics dump all render
// through this writer instead of hand-rolled string appends.
//
// The writer tracks the container stack and inserts commas itself, so a
// generator cannot produce structurally invalid JSON, and every string
// value goes through json_escape() — the historical sweep report
// interpolated names with %s and would have emitted broken JSON for any
// name containing a quote or backslash.
//
// Output is compact by default; newline() inserts a line break between
// tokens (legal anywhere whitespace is) so reports can stay diffable.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace luis {

/// Escapes `text` for use inside a JSON string literal: quote, backslash,
/// and control characters (the latter as \n, \t, \r or \u00XX).
std::string json_escape(std::string_view text);

class JsonWriter {
public:
  /// Starts a value at the current position: objects, arrays, scalars.
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits an object key (escaped). Must be inside an object; the next
  /// emitted value is the key's value.
  void key(std::string_view k);

  void value(std::string_view s); ///< escaped string value
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b);
  void value(long v);
  void value(int v) { value(static_cast<long>(v)); }
  void value(std::size_t v);
  /// Doubles take a printf format so reports keep their established
  /// precision conventions (%.6g timings, %.17g objectives, ...).
  /// Non-finite values — which JSON cannot represent as numbers — are
  /// emitted as the strings "Infinity", "-Infinity", "NaN".
  void value(double v, const char* fmt = "%.17g");

  /// Emits pre-rendered JSON as a value (the caller guarantees validity).
  void raw_value(std::string_view json);

  /// Inserts a newline between tokens (purely cosmetic).
  void newline();
  /// Inserts `n` spaces between tokens (purely cosmetic).
  void indent(int n);

  /// The document rendered so far. Call when every container is closed.
  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

private:
  void comma_for_value();

  enum class Scope : unsigned char { Object, Array };
  struct Frame {
    Scope scope;
    bool has_items = false;
    bool expecting_value = false; ///< object: key() seen, value pending
  };

  std::string out_;
  std::vector<Frame> stack_;
};

} // namespace luis
