// Diagnostics: assertion and fatal-error helpers used throughout LUIS.
//
// LUIS_ASSERT is an always-on invariant check (it is not compiled out in
// release builds): this is a compiler-style tool where silently corrupt IR
// or ILP models are far more expensive than the cost of a branch.
#pragma once

#include <string>

namespace luis {

/// Prints `msg` with source location context and aborts.
[[noreturn]] void fatal_error(const char* file, int line, const std::string& msg);

/// Formats the failing expression and aborts. Used by LUIS_ASSERT.
[[noreturn]] void assert_fail(const char* file, int line, const char* expr,
                              const std::string& msg);

} // namespace luis

#define LUIS_ASSERT(cond, msg)                                                 \
  do {                                                                         \
    if (!(cond)) ::luis::assert_fail(__FILE__, __LINE__, #cond, (msg));        \
  } while (0)

#define LUIS_FATAL(msg) ::luis::fatal_error(__FILE__, __LINE__, (msg))

#define LUIS_UNREACHABLE(msg) ::luis::fatal_error(__FILE__, __LINE__, (msg))
