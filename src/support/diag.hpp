// Diagnostics: assertion/fatal-error helpers and the leveled logging
// facility used throughout LUIS.
//
// LUIS_ASSERT is an always-on invariant check (it is not compiled out in
// release builds): this is a compiler-style tool where silently corrupt IR
// or ILP models are far more expensive than the cost of a branch.
//
// Logging. All progress/diagnostic prints route through log_message(),
// which writes each line to stderr atomically (one locked fputs), so
// concurrent workers — and the trace/metrics writers — can never
// interleave-corrupt each other's lines. The global threshold is set by
// the CLI's --log-level flag; the LUIS_LOG_* macros evaluate their message
// expression only when the level is enabled.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace luis {

/// Prints `msg` with source location context and aborts.
[[noreturn]] void fatal_error(const char* file, int line, const std::string& msg);

/// Formats the failing expression and aborts. Used by LUIS_ASSERT.
[[noreturn]] void assert_fail(const char* file, int line, const char* expr,
                              const std::string& msg);

enum class LogLevel { Error = 0, Warn = 1, Info = 2, Debug = 3 };

const char* to_string(LogLevel level);

/// Parses "error"/"warn"/"info"/"debug"; nullopt for anything else.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Sets / reads the global log threshold (default Info). Thread-safe.
void set_log_level(LogLevel level);
LogLevel log_level();

/// True when `level` passes the global threshold.
bool log_enabled(LogLevel level);

/// Writes "[level] msg\n" to stderr as one atomic line if `level` passes
/// the threshold. A trailing newline in `msg` is not required.
void log_message(LogLevel level, const std::string& msg);

} // namespace luis

#define LUIS_ASSERT(cond, msg)                                                 \
  do {                                                                         \
    if (!(cond)) ::luis::assert_fail(__FILE__, __LINE__, #cond, (msg));        \
  } while (0)

#define LUIS_FATAL(msg) ::luis::fatal_error(__FILE__, __LINE__, (msg))

#define LUIS_UNREACHABLE(msg) ::luis::fatal_error(__FILE__, __LINE__, (msg))

#define LUIS_LOG(level, msg)                                                   \
  do {                                                                         \
    if (::luis::log_enabled(level)) ::luis::log_message((level), (msg));       \
  } while (0)

#define LUIS_LOG_ERROR(msg) LUIS_LOG(::luis::LogLevel::Error, (msg))
#define LUIS_LOG_WARN(msg) LUIS_LOG(::luis::LogLevel::Warn, (msg))
#define LUIS_LOG_INFO(msg) LUIS_LOG(::luis::LogLevel::Info, (msg))
#define LUIS_LOG_DEBUG(msg) LUIS_LOG(::luis::LogLevel::Debug, (msg))
