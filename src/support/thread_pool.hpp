// Fixed-size worker pool for CPU-bound batch jobs (the sweep driver).
//
// Deliberately minimal: submit() enqueues a task, wait_idle() blocks until
// every queued and running task has finished. Tasks must not throw — the
// LUIS failure path is LUIS_FATAL/abort, and sweep jobs record their own
// error state instead of unwinding across threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace luis::support {

class ThreadPool {
public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task for execution on some worker.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void wait_idle();

private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(i)` for i in [0, n). With `threads` <= 1 the loop runs inline
/// on the calling thread in index order — the bit-exact serial reference
/// path the sweep determinism check compares against. Otherwise the
/// iterations are distributed over a pool and may run in any order, so
/// `fn` must only touch state owned by its own index (or thread-safe
/// shared state).
void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& fn);

} // namespace luis::support
