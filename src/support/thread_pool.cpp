#include "support/thread_pool.hpp"

#include <algorithm>

namespace luis::support {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return; // stopping, queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& fn) {
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads), n)));
  for (std::size_t i = 0; i < n; ++i)
    pool.submit([&fn, i] { fn(i); });
  pool.wait_idle();
}

} // namespace luis::support
