#include "support/json.hpp"

#include <cmath>

#include "support/diag.hpp"
#include "support/string_utils.hpp"

namespace luis {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\n': out += "\\n"; break;
    case '\t': out += "\\t"; break;
    case '\r': out += "\\r"; break;
    default:
      if (static_cast<unsigned char>(c) < 0x20)
        out += format_string("\\u%04x", static_cast<unsigned>(c));
      else
        out += c;
    }
  }
  return out;
}

void JsonWriter::comma_for_value() {
  if (stack_.empty()) return; // top-level document value
  Frame& f = stack_.back();
  if (f.scope == Scope::Object) {
    LUIS_ASSERT(f.expecting_value, "JsonWriter: object value without a key");
    f.expecting_value = false;
    return; // key() already placed the comma
  }
  if (f.has_items) out_ += ',';
  f.has_items = true;
}

void JsonWriter::begin_object() {
  comma_for_value();
  out_ += '{';
  stack_.push_back({Scope::Object, false, false});
}

void JsonWriter::end_object() {
  LUIS_ASSERT(!stack_.empty() && stack_.back().scope == Scope::Object &&
                  !stack_.back().expecting_value,
              "JsonWriter: unbalanced end_object");
  stack_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  comma_for_value();
  out_ += '[';
  stack_.push_back({Scope::Array, false, false});
}

void JsonWriter::end_array() {
  LUIS_ASSERT(!stack_.empty() && stack_.back().scope == Scope::Array,
              "JsonWriter: unbalanced end_array");
  stack_.pop_back();
  out_ += ']';
}

void JsonWriter::key(std::string_view k) {
  LUIS_ASSERT(!stack_.empty() && stack_.back().scope == Scope::Object &&
                  !stack_.back().expecting_value,
              "JsonWriter: key() outside an object slot");
  Frame& f = stack_.back();
  if (f.has_items) out_ += ',';
  f.has_items = true;
  f.expecting_value = true;
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
}

void JsonWriter::value(std::string_view s) {
  comma_for_value();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
}

void JsonWriter::value(bool b) {
  comma_for_value();
  out_ += b ? "true" : "false";
}

void JsonWriter::value(long v) {
  comma_for_value();
  out_ += format_string("%ld", v);
}

void JsonWriter::value(std::size_t v) {
  comma_for_value();
  out_ += format_string("%zu", v);
}

void JsonWriter::value(double v, const char* fmt) {
  comma_for_value();
  // JSON has no literal for non-finite numbers; printf would emit the
  // invalid tokens `inf`/`nan`. Encode them as the strings Python's json
  // module uses for its (non-standard) literals, so documents stay
  // strictly valid and the sentinel is recognizable.
  if (std::isnan(v)) {
    out_ += "\"NaN\"";
  } else if (std::isinf(v)) {
    out_ += v > 0 ? "\"Infinity\"" : "\"-Infinity\"";
  } else {
    out_ += format_string(fmt, v);
  }
}

void JsonWriter::raw_value(std::string_view json) {
  comma_for_value();
  out_ += json;
}

void JsonWriter::newline() { out_ += '\n'; }

void JsonWriter::indent(int n) { out_.append(static_cast<std::size_t>(n), ' '); }

} // namespace luis
