#include "support/rng.hpp"

#include "support/diag.hpp"

namespace luis {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

} // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  LUIS_ASSERT(bound != 0, "next_below requires a nonzero bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  LUIS_ASSERT(lo <= hi, "next_int requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64()); // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) { return next_double() < p; }

} // namespace luis
