#include "ir/kernel_builder.hpp"

#include "support/diag.hpp"

namespace luis::ir {

KernelBuilder::KernelBuilder(Module& module, const std::string& kernel_name)
    : builder_(module.add_function(kernel_name)) {
  BasicBlock* entry = builder_.function()->add_block("entry");
  builder_.set_insertion_block(entry);
}

Function* KernelBuilder::finish() {
  builder_.ret();
  return builder_.function();
}

std::string KernelBuilder::fresh(const std::string& base) {
  return base + "." + std::to_string(next_block_id_++);
}

Array* KernelBuilder::array(const std::string& name,
                            std::vector<std::int64_t> dims, double range_lo,
                            double range_hi) {
  Array* a = builder_.function()->add_array(name, std::move(dims));
  a->annotate_range(range_lo, range_hi);
  return a;
}

ScalarCell KernelBuilder::scalar(const std::string& name, double range_lo,
                                 double range_hi) {
  return ScalarCell{array(name, {1}, range_lo, range_hi), this};
}

RVal KernelBuilder::real(double constant) { return {builder_.real(constant), this}; }
IVal KernelBuilder::idx(std::int64_t constant) {
  return {builder_.integer(constant), this};
}

void KernelBuilder::for_loop(const std::string& name, IVal begin, IVal end,
                             const std::function<void(IVal)>& body) {
  Function* f = builder_.function();
  BasicBlock* header = f->add_block(fresh(name + ".header"));
  BasicBlock* body_bb = f->add_block(fresh(name + ".body"));
  BasicBlock* latch = f->add_block(fresh(name + ".latch"));
  BasicBlock* exit = f->add_block(fresh(name + ".exit"));

  BasicBlock* preheader = builder_.insertion_block();
  builder_.br(header);

  builder_.set_insertion_block(header);
  Instruction* iv = builder_.phi(ScalarType::Int);
  iv->set_name(name);
  iv->add_incoming(begin.value, preheader);
  Instruction* cond = builder_.icmp(CmpPred::LT, iv, end.value);
  builder_.cond_br(cond, body_bb, exit);

  builder_.set_insertion_block(body_bb);
  body(IVal{iv, this});
  builder_.br(latch); // from wherever the body left the insertion point

  builder_.set_insertion_block(latch);
  Instruction* next = builder_.iadd(iv, builder_.integer(1));
  iv->add_incoming(next, latch);
  builder_.br(header);

  builder_.set_insertion_block(exit);
}

void KernelBuilder::for_down(const std::string& name, IVal begin, IVal last,
                             const std::function<void(IVal)>& body) {
  Function* f = builder_.function();
  BasicBlock* header = f->add_block(fresh(name + ".header"));
  BasicBlock* body_bb = f->add_block(fresh(name + ".body"));
  BasicBlock* latch = f->add_block(fresh(name + ".latch"));
  BasicBlock* exit = f->add_block(fresh(name + ".exit"));

  BasicBlock* preheader = builder_.insertion_block();
  builder_.br(header);

  builder_.set_insertion_block(header);
  Instruction* iv = builder_.phi(ScalarType::Int);
  iv->set_name(name);
  iv->add_incoming(begin.value, preheader);
  Instruction* cond = builder_.icmp(CmpPred::GE, iv, last.value);
  builder_.cond_br(cond, body_bb, exit);

  builder_.set_insertion_block(body_bb);
  body(IVal{iv, this});
  builder_.br(latch);

  builder_.set_insertion_block(latch);
  Instruction* next = builder_.isub(iv, builder_.integer(1));
  iv->add_incoming(next, latch);
  builder_.br(header);

  builder_.set_insertion_block(exit);
}

void KernelBuilder::if_then(BVal cond, const std::function<void()>& then_body) {
  Function* f = builder_.function();
  BasicBlock* then_bb = f->add_block(fresh("if.then"));
  BasicBlock* end_bb = f->add_block(fresh("if.end"));
  builder_.cond_br(cond.value, then_bb, end_bb);
  builder_.set_insertion_block(then_bb);
  then_body();
  builder_.br(end_bb);
  builder_.set_insertion_block(end_bb);
}

void KernelBuilder::if_then_else(BVal cond,
                                 const std::function<void()>& then_body,
                                 const std::function<void()>& else_body) {
  Function* f = builder_.function();
  BasicBlock* then_bb = f->add_block(fresh("if.then"));
  BasicBlock* else_bb = f->add_block(fresh("if.else"));
  BasicBlock* end_bb = f->add_block(fresh("if.end"));
  builder_.cond_br(cond.value, then_bb, else_bb);
  builder_.set_insertion_block(then_bb);
  then_body();
  builder_.br(end_bb);
  builder_.set_insertion_block(else_bb);
  else_body();
  builder_.br(end_bb);
  builder_.set_insertion_block(end_bb);
}

RVal KernelBuilder::load(Array* array, std::initializer_list<IVal> indices) {
  std::vector<Value*> idxs;
  for (const IVal& i : indices) idxs.push_back(i.value);
  return {builder_.load(array, std::move(idxs)), this};
}

void KernelBuilder::store(RVal value, Array* array,
                          std::initializer_list<IVal> indices) {
  std::vector<Value*> idxs;
  for (const IVal& i : indices) idxs.push_back(i.value);
  builder_.store(value.value, array, std::move(idxs));
}

RVal KernelBuilder::get(const ScalarCell& s) {
  return {builder_.load(s.cell, {builder_.integer(0)}), this};
}

void KernelBuilder::set(const ScalarCell& s, RVal value) {
  builder_.store(value.value, s.cell, {builder_.integer(0)});
}

RVal KernelBuilder::add(RVal a, RVal b) { return {builder_.add(a.value, b.value), this}; }
RVal KernelBuilder::sub(RVal a, RVal b) { return {builder_.sub(a.value, b.value), this}; }
RVal KernelBuilder::mul(RVal a, RVal b) { return {builder_.mul(a.value, b.value), this}; }
RVal KernelBuilder::div(RVal a, RVal b) { return {builder_.div(a.value, b.value), this}; }
RVal KernelBuilder::rem(RVal a, RVal b) { return {builder_.rem(a.value, b.value), this}; }
RVal KernelBuilder::neg(RVal a) { return {builder_.neg(a.value), this}; }
RVal KernelBuilder::abs(RVal a) { return {builder_.abs(a.value), this}; }
RVal KernelBuilder::sqrt(RVal a) { return {builder_.sqrt(a.value), this}; }
RVal KernelBuilder::exp(RVal a) { return {builder_.exp(a.value), this}; }
RVal KernelBuilder::pow(RVal a, RVal b) { return {builder_.pow(a.value, b.value), this}; }
RVal KernelBuilder::fmin(RVal a, RVal b) { return {builder_.fmin(a.value, b.value), this}; }
RVal KernelBuilder::fmax(RVal a, RVal b) { return {builder_.fmax(a.value, b.value), this}; }
RVal KernelBuilder::select(BVal cond, RVal a, RVal b) {
  return {builder_.select(cond.value, a.value, b.value), this};
}
RVal KernelBuilder::to_real(IVal a) { return {builder_.int_to_real(a.value), this}; }

IVal KernelBuilder::iadd(IVal a, IVal b) { return {builder_.iadd(a.value, b.value), this}; }
IVal KernelBuilder::isub(IVal a, IVal b) { return {builder_.isub(a.value, b.value), this}; }
IVal KernelBuilder::imul(IVal a, IVal b) { return {builder_.imul(a.value, b.value), this}; }
IVal KernelBuilder::idiv(IVal a, IVal b) { return {builder_.idiv(a.value, b.value), this}; }
IVal KernelBuilder::imin(IVal a, IVal b) { return {builder_.imin(a.value, b.value), this}; }
IVal KernelBuilder::imax(IVal a, IVal b) { return {builder_.imax(a.value, b.value), this}; }

BVal KernelBuilder::icmp(CmpPred pred, IVal a, IVal b) {
  return {builder_.icmp(pred, a.value, b.value), this};
}
BVal KernelBuilder::fcmp(CmpPred pred, RVal a, RVal b) {
  return {builder_.fcmp(pred, a.value, b.value), this};
}

namespace {
KernelBuilder* kb_of(const RVal& a, const RVal& b) {
  LUIS_ASSERT(a.kb && a.kb == b.kb, "RVal operands from different builders");
  return a.kb;
}
KernelBuilder* kb_of(const IVal& a, const IVal& b) {
  LUIS_ASSERT(a.kb && a.kb == b.kb, "IVal operands from different builders");
  return a.kb;
}
} // namespace

RVal operator+(RVal a, RVal b) { return kb_of(a, b)->add(a, b); }
RVal operator-(RVal a, RVal b) { return kb_of(a, b)->sub(a, b); }
RVal operator*(RVal a, RVal b) { return kb_of(a, b)->mul(a, b); }
RVal operator/(RVal a, RVal b) { return kb_of(a, b)->div(a, b); }
RVal operator-(RVal a) { return a.kb->neg(a); }

IVal operator+(IVal a, IVal b) { return kb_of(a, b)->iadd(a, b); }
IVal operator-(IVal a, IVal b) { return kb_of(a, b)->isub(a, b); }
IVal operator*(IVal a, IVal b) { return kb_of(a, b)->imul(a, b); }
IVal operator+(IVal a, std::int64_t b) { return a.kb->iadd(a, a.kb->idx(b)); }
IVal operator-(IVal a, std::int64_t b) { return a.kb->isub(a, a.kb->idx(b)); }
IVal operator*(IVal a, std::int64_t b) { return a.kb->imul(a, a.kb->idx(b)); }

BVal operator<(IVal a, IVal b) { return kb_of(a, b)->icmp(CmpPred::LT, a, b); }
BVal operator<=(IVal a, IVal b) { return kb_of(a, b)->icmp(CmpPred::LE, a, b); }
BVal operator>(IVal a, IVal b) { return kb_of(a, b)->icmp(CmpPred::GT, a, b); }
BVal operator>=(IVal a, IVal b) { return kb_of(a, b)->icmp(CmpPred::GE, a, b); }
BVal operator==(IVal a, IVal b) { return kb_of(a, b)->icmp(CmpPred::EQ, a, b); }
BVal operator<(RVal a, RVal b) { return kb_of(a, b)->fcmp(CmpPred::LT, a, b); }
BVal operator>(RVal a, RVal b) { return kb_of(a, b)->fcmp(CmpPred::GT, a, b); }

} // namespace luis::ir
