#include "ir/parser.hpp"

#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "support/string_utils.hpp"

namespace luis::ir {
namespace {

bool is_real_literal(std::string_view tok) {
  return tok.find('.') != std::string_view::npos ||
         tok.find('e') != std::string_view::npos ||
         tok.find("inf") != std::string_view::npos ||
         tok.find("nan") != std::string_view::npos;
}

std::optional<Opcode> opcode_by_name(std::string_view name) {
  static const std::map<std::string_view, Opcode> kTable = {
      {"add", Opcode::Add},       {"sub", Opcode::Sub},
      {"mul", Opcode::Mul},       {"div", Opcode::Div},
      {"rem", Opcode::Rem},       {"neg", Opcode::Neg},
      {"abs", Opcode::Abs},       {"sqrt", Opcode::Sqrt},
      {"exp", Opcode::Exp},       {"pow", Opcode::Pow},
      {"min", Opcode::Min},       {"max", Opcode::Max},
      {"cast", Opcode::Cast},     {"inttoreal", Opcode::IntToReal},
      {"load", Opcode::Load},     {"store", Opcode::Store},
      {"iadd", Opcode::IAdd},     {"isub", Opcode::ISub},
      {"imul", Opcode::IMul},     {"idiv", Opcode::IDiv},
      {"irem", Opcode::IRem},     {"imin", Opcode::IMin},
      {"imax", Opcode::IMax},     {"icmp", Opcode::ICmp},
      {"fcmp", Opcode::FCmp},     {"select", Opcode::Select},
      {"phi", Opcode::Phi},       {"br", Opcode::Br},
      {"condbr", Opcode::CondBr}, {"ret", Opcode::Ret},
  };
  const auto it = kTable.find(name);
  if (it == kTable.end()) return std::nullopt;
  return it->second;
}

std::optional<CmpPred> pred_by_name(std::string_view name) {
  static const std::map<std::string_view, CmpPred> kTable = {
      {"eq", CmpPred::EQ}, {"ne", CmpPred::NE}, {"lt", CmpPred::LT},
      {"le", CmpPred::LE}, {"gt", CmpPred::GT}, {"ge", CmpPred::GE},
  };
  const auto it = kTable.find(name);
  if (it == kTable.end()) return std::nullopt;
  return it->second;
}

ScalarType result_type_of(Opcode op) {
  switch (op) {
  case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::Div:
  case Opcode::Rem: case Opcode::Neg: case Opcode::Abs: case Opcode::Sqrt:
  case Opcode::Exp: case Opcode::Pow: case Opcode::Min: case Opcode::Max:
  case Opcode::Cast: case Opcode::IntToReal: case Opcode::Load:
    return ScalarType::Real;
  case Opcode::IAdd: case Opcode::ISub: case Opcode::IMul: case Opcode::IDiv:
  case Opcode::IRem: case Opcode::IMin: case Opcode::IMax:
    return ScalarType::Int;
  case Opcode::ICmp: case Opcode::FCmp:
    return ScalarType::Bool;
  default:
    return ScalarType::Void;
  }
}

class Parser {
public:
  Parser(Module& module, std::string_view text) : module_(module), text_(text) {}

  ParseResult run() {
    ParseResult result;
    std::vector<std::string> lines;
    {
      std::istringstream is{std::string(text_)};
      std::string line;
      while (std::getline(is, line)) {
        const auto t = trim(line);
        if (!t.empty()) lines.emplace_back(t);
      }
    }
    if (lines.empty() || !starts_with(lines.front(), "func @")) {
      result.error = "expected 'func @name {'";
      return result;
    }
    std::string header = lines.front();
    const auto brace = header.find('{');
    std::string fname{trim(header.substr(6, brace == std::string::npos
                                                ? std::string::npos
                                                : brace - 6))};
    function_ = module_.add_function(fname);

    // Pass 1: create blocks and arrays.
    for (std::size_t i = 1; i < lines.size(); ++i) {
      const std::string& line = lines[i];
      if (line == "}") break;
      if (starts_with(line, "array @")) {
        if (!parse_array(line)) {
          result.error = "bad array declaration: " + line;
          return result;
        }
      } else if (line.back() == ':') {
        function_->add_block(line.substr(0, line.size() - 1));
      }
    }

    // Pass 2: instructions.
    BasicBlock* current = nullptr;
    for (std::size_t i = 1; i < lines.size(); ++i) {
      const std::string& line = lines[i];
      if (line == "}") break;
      if (starts_with(line, "array @")) continue;
      if (line.back() == ':') {
        current = function_->block_by_name(line.substr(0, line.size() - 1));
        continue;
      }
      if (!current) {
        result.error = "instruction outside of a block: " + line;
        return result;
      }
      std::string err = parse_instruction(current, line);
      if (!err.empty()) {
        result.error = err + " in line: " + line;
        return result;
      }
    }

    // Resolve pending (forward) references.
    for (const auto& [inst, slot, token] : pending_) {
      Value* v = resolve(token);
      if (!v) {
        result.error = "unresolved operand " + token;
        return result;
      }
      inst->set_operand(slot, v);
    }
    result.function = function_;
    return result;
  }

private:
  bool parse_array(const std::string& line) {
    // array @NAME[d0][d1]... [range [lo, hi]]
    std::size_t pos = 7; // after "array @"
    std::size_t bracket = line.find('[', pos);
    if (bracket == std::string::npos) return false;
    const std::string name = line.substr(pos, bracket - pos);
    std::vector<std::int64_t> dims;
    std::size_t cursor = bracket;
    while (cursor < line.size() && line[cursor] == '[') {
      const std::size_t close = line.find(']', cursor);
      if (close == std::string::npos) return false;
      dims.push_back(std::atoll(line.substr(cursor + 1, close - cursor - 1).c_str()));
      cursor = close + 1;
      if (cursor < line.size() && line[cursor] == ' ') break;
    }
    Array* arr = function_->add_array(name, std::move(dims));
    const std::size_t range_at = line.find("range [", cursor);
    if (range_at != std::string::npos) {
      const std::size_t open = range_at + 7;
      const std::size_t comma = line.find(',', open);
      const std::size_t close = line.find(']', open);
      if (comma == std::string::npos || close == std::string::npos) return false;
      arr->annotate_range(std::strtod(line.substr(open, comma - open).c_str(), nullptr),
                          std::strtod(line.substr(comma + 1, close - comma - 1).c_str(),
                                      nullptr));
    }
    return true;
  }

  /// Resolves an operand token to a value, or nullptr if it names an
  /// instruction id that has not been defined (caller defers it).
  Value* resolve(const std::string& token) {
    if (token.empty()) return nullptr;
    if (token[0] == '%') {
      const int id = std::atoi(token.c_str() + 1);
      const auto it = by_id_.find(id);
      return it == by_id_.end() ? nullptr : it->second;
    }
    if (token[0] == '@') return function_->array_by_name(token.substr(1));
    if (is_real_literal(token))
      return function_->const_real(std::strtod(token.c_str(), nullptr));
    return function_->const_int(std::atoll(token.c_str()));
  }

  /// Adds `token` as operand `slot` of `inst`, deferring forward refs.
  void add_operand(Instruction* inst, std::size_t slot, const std::string& token) {
    Value* v = resolve(token);
    if (v) {
      inst->set_operand(slot, v);
    } else {
      pending_.emplace_back(inst, slot, token);
    }
  }

  std::string parse_instruction(BasicBlock* bb, const std::string& line) {
    std::string body = line;
    bool has_result = false;
    int result_id = -1;
    if (body[0] == '%') {
      const std::size_t eq = body.find('=');
      if (eq == std::string::npos) return "missing '='";
      result_id = std::atoi(body.c_str() + 1);
      has_result = true;
      body = std::string(trim(body.substr(eq + 1)));
    }
    const std::size_t sp = body.find(' ');
    const std::string opname = sp == std::string::npos ? body : body.substr(0, sp);
    const std::string rest =
        sp == std::string::npos ? "" : std::string(trim(body.substr(sp + 1)));
    const auto op = opcode_by_name(opname);
    if (!op) return "unknown opcode '" + opname + "'";

    Instruction* inst = nullptr;
    switch (*op) {
    case Opcode::Phi: {
      // phi TYPE [ tok, block ], [ tok, block ]...
      const std::size_t tsp = rest.find(' ');
      const std::string tname = rest.substr(0, tsp);
      ScalarType type;
      if (tname == "real")
        type = ScalarType::Real;
      else if (tname == "int")
        type = ScalarType::Int;
      else
        return "bad phi type";
      inst = bb->append(std::make_unique<Instruction>(Opcode::Phi, type,
                                                      std::vector<Value*>{}));
      std::size_t cursor = rest.find('[');
      while (cursor != std::string::npos) {
        const std::size_t comma = rest.find(',', cursor);
        const std::size_t close = rest.find(']', cursor);
        if (comma == std::string::npos || close == std::string::npos)
          return "bad phi incoming";
        const std::string tok{trim(rest.substr(cursor + 1, comma - cursor - 1))};
        const std::string bname{trim(rest.substr(comma + 1, close - comma - 1))};
        BasicBlock* from = function_->block_by_name(bname);
        if (!from) return "unknown block " + bname;
        inst->add_incoming(nullptr, from);
        add_operand(inst, inst->num_operands() - 1, tok);
        cursor = rest.find('[', close);
      }
      break;
    }
    case Opcode::ICmp:
    case Opcode::FCmp: {
      const std::size_t psp = rest.find(' ');
      const auto pred = pred_by_name(rest.substr(0, psp));
      if (!pred) return "bad predicate";
      const auto toks = split_fields(rest.substr(psp + 1), ',');
      if (toks.size() != 2) return "cmp needs two operands";
      inst = bb->append(std::make_unique<Instruction>(
          *op, ScalarType::Bool, std::vector<Value*>{nullptr, nullptr}));
      inst->set_predicate(*pred);
      add_operand(inst, 0, std::string(trim(toks[0])));
      add_operand(inst, 1, std::string(trim(toks[1])));
      break;
    }
    case Opcode::Load: {
      // load @A[i][j]...
      const std::size_t bracket = rest.find('[');
      if (rest.empty() || rest[0] != '@' || bracket == std::string::npos)
        return "bad load";
      Array* arr = function_->array_by_name(rest.substr(1, bracket - 1));
      if (!arr) return "unknown array in load";
      std::vector<std::string> idx_tokens;
      std::size_t cursor = bracket;
      while (cursor != std::string::npos && cursor < rest.size() &&
             rest[cursor] == '[') {
        const std::size_t close = rest.find(']', cursor);
        if (close == std::string::npos) return "bad load index";
        idx_tokens.emplace_back(trim(rest.substr(cursor + 1, close - cursor - 1)));
        cursor = close + 1;
      }
      std::vector<Value*> ops(1 + idx_tokens.size(), nullptr);
      ops[0] = arr;
      inst = bb->append(std::make_unique<Instruction>(Opcode::Load,
                                                      ScalarType::Real,
                                                      std::move(ops)));
      for (std::size_t i = 0; i < idx_tokens.size(); ++i)
        add_operand(inst, 1 + i, idx_tokens[i]);
      break;
    }
    case Opcode::Store: {
      // store tok, @A[i][j]...
      const std::size_t comma = rest.find(',');
      if (comma == std::string::npos) return "bad store";
      const std::string vtok{trim(rest.substr(0, comma))};
      const std::string addr{trim(rest.substr(comma + 1))};
      const std::size_t bracket = addr.find('[');
      if (addr.empty() || addr[0] != '@' || bracket == std::string::npos)
        return "bad store address";
      Array* arr = function_->array_by_name(addr.substr(1, bracket - 1));
      if (!arr) return "unknown array in store";
      std::vector<std::string> idx_tokens;
      std::size_t cursor = bracket;
      while (cursor < addr.size() && addr[cursor] == '[') {
        const std::size_t close = addr.find(']', cursor);
        if (close == std::string::npos) return "bad store index";
        idx_tokens.emplace_back(trim(addr.substr(cursor + 1, close - cursor - 1)));
        cursor = close + 1;
      }
      std::vector<Value*> ops(2 + idx_tokens.size(), nullptr);
      ops[1] = arr;
      inst = bb->append(std::make_unique<Instruction>(Opcode::Store,
                                                      ScalarType::Void,
                                                      std::move(ops)));
      add_operand(inst, 0, vtok);
      for (std::size_t i = 0; i < idx_tokens.size(); ++i)
        add_operand(inst, 2 + i, idx_tokens[i]);
      break;
    }
    case Opcode::Br: {
      BasicBlock* target = function_->block_by_name(rest);
      if (!target) return "unknown branch target " + rest;
      inst = bb->append(std::make_unique<Instruction>(Opcode::Br, ScalarType::Void,
                                                      std::vector<Value*>{}));
      inst->set_targets({target});
      break;
    }
    case Opcode::CondBr: {
      const auto toks = split_fields(rest, ',');
      if (toks.size() != 3) return "condbr needs cond and two targets";
      BasicBlock* t = function_->block_by_name(std::string(trim(toks[1])));
      BasicBlock* e = function_->block_by_name(std::string(trim(toks[2])));
      if (!t || !e) return "unknown condbr target";
      inst = bb->append(std::make_unique<Instruction>(
          Opcode::CondBr, ScalarType::Void, std::vector<Value*>{nullptr}));
      inst->set_targets({t, e});
      add_operand(inst, 0, std::string(trim(toks[0])));
      break;
    }
    case Opcode::Ret: {
      inst = bb->append(std::make_unique<Instruction>(Opcode::Ret, ScalarType::Void,
                                                      std::vector<Value*>{}));
      break;
    }
    case Opcode::Select: {
      const auto toks = split_fields(rest, ',');
      if (toks.size() != 3) return "select needs three operands";
      // Result type follows the true arm: literal form or earlier def.
      const std::string arm{trim(toks[1])};
      ScalarType type = ScalarType::Real;
      if (Value* v = resolve(arm)) type = v->type();
      inst = bb->append(std::make_unique<Instruction>(
          Opcode::Select, type, std::vector<Value*>{nullptr, nullptr, nullptr}));
      for (std::size_t i = 0; i < 3; ++i)
        add_operand(inst, i, std::string(trim(toks[i])));
      break;
    }
    default: {
      const auto toks = rest.empty() ? std::vector<std::string>{}
                                     : split_fields(rest, ',');
      inst = bb->append(std::make_unique<Instruction>(
          *op, result_type_of(*op), std::vector<Value*>(toks.size(), nullptr)));
      for (std::size_t i = 0; i < toks.size(); ++i)
        add_operand(inst, i, std::string(trim(toks[i])));
      break;
    }
    }

    if (has_result) by_id_[result_id] = inst;
    return "";
  }

  Module& module_;
  std::string_view text_;
  Function* function_ = nullptr;
  std::map<int, Instruction*> by_id_;
  std::vector<std::tuple<Instruction*, std::size_t, std::string>> pending_;
};

} // namespace

ParseResult parse_function(Module& module, std::string_view text) {
  return Parser(module, text).run();
}

} // namespace luis::ir
