// Structured kernel construction on top of IRBuilder.
//
// PolyBench-style kernels are counted loop nests over arrays. KernelBuilder
// provides exactly that vocabulary — for_loop / for_down / if_then /
// arrays / scalar cells — and lowers it to SSA blocks with phi induction
// variables, so each kernel definition reads like the original C source.
//
// Real-valued accumulation goes through memory (arrays or 1-element scalar
// cells), matching how PolyBench kernels are written and how TAFFO sees
// them after Clang's lowering at -O0..-O1.
#pragma once

#include <functional>
#include <string>

#include "ir/builder.hpp"

namespace luis::ir {

class KernelBuilder;

/// Real-valued SSA handle with arithmetic sugar.
struct RVal {
  Value* value = nullptr;
  KernelBuilder* kb = nullptr;
};

/// Int-valued SSA handle (loop indices, address arithmetic).
struct IVal {
  Value* value = nullptr;
  KernelBuilder* kb = nullptr;
};

/// Bool-valued SSA handle (comparison results).
struct BVal {
  Value* value = nullptr;
  KernelBuilder* kb = nullptr;
};

/// A one-element array used as a mutable scalar (sum accumulators etc.).
struct ScalarCell {
  Array* cell = nullptr;
  KernelBuilder* kb = nullptr;
};

class KernelBuilder {
public:
  KernelBuilder(Module& module, const std::string& kernel_name);

  /// Emits the final `ret` and returns the finished function.
  Function* finish();

  Function* function() const { return builder_.function(); }
  IRBuilder& ir() { return builder_; }

  // --- Data ---
  Array* array(const std::string& name, std::vector<std::int64_t> dims,
               double range_lo, double range_hi);
  ScalarCell scalar(const std::string& name, double range_lo, double range_hi);

  RVal real(double constant);
  IVal idx(std::int64_t constant);

  // --- Structured control flow ---
  /// for (name = begin; name < end; ++name) body(name)
  void for_loop(const std::string& name, IVal begin, IVal end,
                const std::function<void(IVal)>& body);
  void for_loop(const std::string& name, std::int64_t begin, std::int64_t end,
                const std::function<void(IVal)>& body) {
    for_loop(name, idx(begin), idx(end), body);
  }
  /// for (name = begin; name >= last; --name) body(name)
  void for_down(const std::string& name, IVal begin, IVal last,
                const std::function<void(IVal)>& body);
  void for_down(const std::string& name, std::int64_t begin, std::int64_t last,
                const std::function<void(IVal)>& body) {
    for_down(name, idx(begin), idx(last), body);
  }

  void if_then(BVal cond, const std::function<void()>& then_body);
  void if_then_else(BVal cond, const std::function<void()>& then_body,
                    const std::function<void()>& else_body);

  // --- Memory ---
  RVal load(Array* array, std::initializer_list<IVal> indices);
  void store(RVal value, Array* array, std::initializer_list<IVal> indices);
  RVal get(const ScalarCell& s);
  void set(const ScalarCell& s, RVal value);

  // --- Real ops (also available via RVal operators) ---
  RVal add(RVal a, RVal b);
  RVal sub(RVal a, RVal b);
  RVal mul(RVal a, RVal b);
  RVal div(RVal a, RVal b);
  RVal rem(RVal a, RVal b);
  RVal neg(RVal a);
  RVal abs(RVal a);
  RVal sqrt(RVal a);
  RVal exp(RVal a);
  RVal pow(RVal a, RVal b);
  RVal fmin(RVal a, RVal b);
  RVal fmax(RVal a, RVal b);
  RVal select(BVal cond, RVal a, RVal b);
  RVal to_real(IVal a);

  // --- Int ops (also available via IVal operators) ---
  IVal iadd(IVal a, IVal b);
  IVal isub(IVal a, IVal b);
  IVal imul(IVal a, IVal b);
  IVal idiv(IVal a, IVal b);
  IVal imin(IVal a, IVal b);
  IVal imax(IVal a, IVal b);

  // --- Comparisons ---
  BVal icmp(CmpPred pred, IVal a, IVal b);
  BVal fcmp(CmpPred pred, RVal a, RVal b);

private:
  IRBuilder builder_;
  int next_block_id_ = 0;

  std::string fresh(const std::string& base);
};

// Operator sugar so kernels read like the PolyBench C sources.
RVal operator+(RVal a, RVal b);
RVal operator-(RVal a, RVal b);
RVal operator*(RVal a, RVal b);
RVal operator/(RVal a, RVal b);
RVal operator-(RVal a);
IVal operator+(IVal a, IVal b);
IVal operator-(IVal a, IVal b);
IVal operator*(IVal a, IVal b);
IVal operator+(IVal a, std::int64_t b);
IVal operator-(IVal a, std::int64_t b);
IVal operator*(IVal a, std::int64_t b);
BVal operator<(IVal a, IVal b);
BVal operator<=(IVal a, IVal b);
BVal operator>(IVal a, IVal b);
BVal operator>=(IVal a, IVal b);
BVal operator==(IVal a, IVal b);
BVal operator<(RVal a, RVal b);
BVal operator>(RVal a, RVal b);

} // namespace luis::ir
