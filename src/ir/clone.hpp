// Deep copy of a Function into another Module.
//
// The clone goes through the textual IR (print -> parse): the printer and
// parser already round-trip every construct exactly — including
// full-precision real literals and array range annotations — and this
// keeps the copy independent of internal ownership details. The per-job
// isolation of the sweep driver depends on clones being exact: tuning a
// clone must produce the same allocation as tuning the original.
#pragma once

#include "ir/function.hpp"

namespace luis::ir {

/// Clones `f` into `dest` and returns the new function (owned by `dest`).
/// Aborts (LUIS_FATAL) if the function does not round-trip through the
/// printer/parser pair — that is a printer bug, not a caller error.
Function* clone_function(const Function& f, Module& dest);

} // namespace luis::ir
