#include "ir/verifier.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "support/string_utils.hpp"

namespace luis::ir {
namespace {

/// Reverse postorder over reachable blocks.
std::vector<const BasicBlock*> reverse_postorder(const Function& f) {
  std::vector<const BasicBlock*> order;
  std::set<const BasicBlock*> visited;
  // Iterative DFS with explicit post stack.
  struct Frame {
    const BasicBlock* bb;
    std::vector<BasicBlock*> succs;
    std::size_t next = 0;
  };
  if (!f.entry()) return order;
  std::vector<Frame> stack;
  stack.push_back({f.entry(), f.entry()->successors()});
  visited.insert(f.entry());
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next < top.succs.size()) {
      BasicBlock* s = top.succs[top.next++];
      if (visited.insert(s).second) stack.push_back({s, s->successors()});
    } else {
      order.push_back(top.bb);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

} // namespace

std::map<const BasicBlock*, const BasicBlock*> compute_dominators(const Function& f) {
  std::map<const BasicBlock*, const BasicBlock*> idom;
  const std::vector<const BasicBlock*> rpo = reverse_postorder(f);
  if (rpo.empty()) return idom;
  std::map<const BasicBlock*, std::size_t> rpo_index;
  for (std::size_t i = 0; i < rpo.size(); ++i) rpo_index[rpo[i]] = i;

  const BasicBlock* entry = rpo.front();
  idom[entry] = entry;

  auto intersect = [&](const BasicBlock* a, const BasicBlock* b) {
    while (a != b) {
      while (rpo_index.at(a) > rpo_index.at(b)) a = idom.at(a);
      while (rpo_index.at(b) > rpo_index.at(a)) b = idom.at(b);
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 1; i < rpo.size(); ++i) {
      const BasicBlock* bb = rpo[i];
      const BasicBlock* new_idom = nullptr;
      for (const BasicBlock* pred : f.predecessors(bb)) {
        if (!idom.count(pred)) continue; // unreachable or not yet processed
        new_idom = new_idom ? intersect(new_idom, pred) : pred;
      }
      if (new_idom && (!idom.count(bb) || idom[bb] != new_idom)) {
        idom[bb] = new_idom;
        changed = true;
      }
    }
  }
  return idom;
}

bool dominates(const std::map<const BasicBlock*, const BasicBlock*>& idom,
               const BasicBlock* a, const BasicBlock* b) {
  if (!idom.count(b) || !idom.count(a)) return false;
  const BasicBlock* cur = b;
  for (;;) {
    if (cur == a) return true;
    const BasicBlock* up = idom.at(cur);
    if (up == cur) return false; // reached entry
    cur = up;
  }
}

std::map<const Value*, std::vector<Use>> compute_uses(const Function& f) {
  std::map<const Value*, std::vector<Use>> uses;
  for (const auto& bb : f.blocks())
    for (const auto& inst : bb->instructions())
      for (std::size_t i = 0; i < inst->num_operands(); ++i)
        uses[inst->operand(i)].push_back({inst.get(), i});
  return uses;
}

std::string VerifyResult::message() const {
  std::ostringstream os;
  for (const std::string& e : errors) os << e << "\n";
  return os.str();
}

VerifyResult verify(const Function& f) {
  VerifyResult result;
  auto fail = [&](const std::string& msg) { result.errors.push_back(msg); };

  if (!f.entry()) {
    fail("function has no entry block");
    return result;
  }

  // Position of each instruction for same-block ordering checks.
  std::map<const Instruction*, std::pair<const BasicBlock*, std::size_t>> position;
  for (const auto& bb : f.blocks()) {
    for (std::size_t i = 0; i < bb->instructions().size(); ++i)
      position[bb->instructions()[i].get()] = {bb.get(), i};
  }

  // Block-local structure.
  for (const auto& bb : f.blocks()) {
    const auto& insts = bb->instructions();
    if (insts.empty() || !insts.back()->is_terminator()) {
      fail("block " + bb->name() + " is not terminated");
      continue;
    }
    bool seen_non_phi = false;
    for (std::size_t i = 0; i < insts.size(); ++i) {
      const Instruction* inst = insts[i].get();
      if (inst->is_terminator() && i + 1 != insts.size())
        fail("block " + bb->name() + " has a terminator in the middle");
      if (inst->is_phi()) {
        if (seen_non_phi)
          fail("block " + bb->name() + " has a phi after non-phi instructions");
      } else {
        seen_non_phi = true;
      }
    }
  }

  // Phi / predecessor agreement.
  for (const auto& bb : f.blocks()) {
    const std::vector<BasicBlock*> preds = f.predecessors(bb.get());
    const std::set<const BasicBlock*> pred_set(preds.begin(), preds.end());
    for (const auto& inst : bb->instructions()) {
      if (!inst->is_phi()) continue;
      if (bb.get() == f.entry())
        fail("entry block contains a phi");
      const auto& incoming = inst->incoming_blocks();
      if (incoming.size() != inst->num_operands()) {
        fail("phi in " + bb->name() + " has mismatched incoming arity");
        continue;
      }
      std::set<const BasicBlock*> in_set(incoming.begin(), incoming.end());
      if (in_set != pred_set)
        fail("phi in " + bb->name() + " incoming blocks do not match predecessors");
      for (const Value* op : inst->operands())
        if (op->type() != inst->type())
          fail("phi in " + bb->name() + " has operand of wrong type");
    }
  }

  // Operand typing per opcode.
  auto expect = [&](const Instruction* inst, std::size_t idx, ScalarType t) {
    if (inst->num_operands() <= idx || inst->operand(idx)->type() != t)
      fail(std::string("operand ") + std::to_string(idx) + " of " +
           to_string(inst->opcode()) + " in " + inst->parent()->name() +
           " must be " + to_string(t));
  };
  for (const auto& bb : f.blocks()) {
    for (const auto& inst_ptr : bb->instructions()) {
      const Instruction* inst = inst_ptr.get();
      switch (inst->opcode()) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::Div:
      case Opcode::Rem: case Opcode::Pow: case Opcode::Min: case Opcode::Max:
        expect(inst, 0, ScalarType::Real);
        expect(inst, 1, ScalarType::Real);
        break;
      case Opcode::Neg: case Opcode::Abs: case Opcode::Sqrt: case Opcode::Exp:
      case Opcode::Cast:
        expect(inst, 0, ScalarType::Real);
        break;
      case Opcode::IntToReal:
        expect(inst, 0, ScalarType::Int);
        break;
      case Opcode::IAdd: case Opcode::ISub: case Opcode::IMul:
      case Opcode::IDiv: case Opcode::IRem: case Opcode::IMin: case Opcode::IMax:
      case Opcode::ICmp:
        expect(inst, 0, ScalarType::Int);
        expect(inst, 1, ScalarType::Int);
        break;
      case Opcode::FCmp:
        expect(inst, 0, ScalarType::Real);
        expect(inst, 1, ScalarType::Real);
        break;
      case Opcode::Select:
        expect(inst, 0, ScalarType::Bool);
        if (inst->num_operands() == 3 &&
            (inst->operand(1)->type() != inst->type() ||
             inst->operand(2)->type() != inst->type()))
          fail("select arms must match the result type");
        break;
      case Opcode::Load: {
        if (inst->num_operands() == 0 || !inst->operand(0)->is_array()) {
          fail("load must address an array");
          break;
        }
        const auto* arr = static_cast<const Array*>(inst->operand(0));
        if (inst->num_operands() != 1 + arr->rank())
          fail("load of " + arr->name() + " has wrong index arity");
        for (std::size_t i = 1; i < inst->num_operands(); ++i)
          expect(inst, i, ScalarType::Int);
        break;
      }
      case Opcode::Store: {
        expect(inst, 0, ScalarType::Real);
        if (inst->num_operands() < 2 || !inst->operand(1)->is_array()) {
          fail("store must address an array");
          break;
        }
        const auto* arr = static_cast<const Array*>(inst->operand(1));
        if (inst->num_operands() != 2 + arr->rank())
          fail("store to " + arr->name() + " has wrong index arity");
        for (std::size_t i = 2; i < inst->num_operands(); ++i)
          expect(inst, i, ScalarType::Int);
        break;
      }
      case Opcode::CondBr:
        expect(inst, 0, ScalarType::Bool);
        if (inst->targets().size() != 2) fail("condbr needs two targets");
        break;
      case Opcode::Br:
        if (inst->targets().size() != 1) fail("br needs one target");
        break;
      case Opcode::Ret:
      case Opcode::Phi:
        break;
      }
    }
  }

  // Dominance: defs dominate uses (reachable code only).
  const auto idom = compute_dominators(f);
  for (const auto& bb : f.blocks()) {
    if (!idom.count(bb.get())) {
      fail("block " + bb->name() + " is unreachable");
      continue;
    }
    for (const auto& inst_ptr : bb->instructions()) {
      const Instruction* user = inst_ptr.get();
      for (std::size_t i = 0; i < user->num_operands(); ++i) {
        const Value* op = user->operand(i);
        if (!op->is_instruction()) continue;
        const auto* def = static_cast<const Instruction*>(op);
        const auto def_pos = position.find(def);
        if (def_pos == position.end()) {
          fail("use of instruction not present in this function");
          continue;
        }
        if (user->is_phi()) {
          const BasicBlock* from = user->incoming_blocks()[i];
          if (!dominates(idom, def_pos->second.first, from))
            fail("phi operand does not dominate incoming edge in " + bb->name());
        } else if (def_pos->second.first == bb.get()) {
          if (def_pos->second.second >= position.at(user).second)
            fail("use before def inside block " + bb->name());
        } else if (!dominates(idom, def_pos->second.first, bb.get())) {
          fail("operand does not dominate its use in " + bb->name());
        }
      }
    }
  }

  return result;
}

} // namespace luis::ir
