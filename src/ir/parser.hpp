// Textual IR parser — the inverse of print_function.
#pragma once

#include <string>
#include <string_view>

#include "ir/function.hpp"

namespace luis::ir {

struct ParseResult {
  Function* function = nullptr; ///< owned by the module passed in
  std::string error;            ///< empty on success
  bool ok() const { return error.empty(); }
};

/// Parses one `func @name { ... }` definition into `module`.
ParseResult parse_function(Module& module, std::string_view text);

} // namespace luis::ir
