// IR structural verifier.
//
// Checks the SSA well-formedness invariants the rest of the stack relies
// on: block termination, phi/predecessor agreement, operand typing, and
// def-dominates-use (via an iterative dominator computation). Returns all
// violations found rather than stopping at the first one.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/function.hpp"

namespace luis::ir {

struct VerifyResult {
  std::vector<std::string> errors;
  bool ok() const { return errors.empty(); }
  std::string message() const;
};

VerifyResult verify(const Function& function);

/// Immediate dominator computation (Cooper-Harvey-Kennedy iterative scheme).
/// Returns block -> immediate dominator (entry maps to itself). Unreachable
/// blocks are absent from the map.
std::map<const BasicBlock*, const BasicBlock*> compute_dominators(const Function& f);

/// True if `a` dominates `b` under the given dominator tree.
bool dominates(const std::map<const BasicBlock*, const BasicBlock*>& idom,
               const BasicBlock* a, const BasicBlock* b);

} // namespace luis::ir
