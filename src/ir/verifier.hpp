// IR structural verifier.
//
// Checks the SSA well-formedness invariants the rest of the stack relies
// on: block termination, phi/predecessor agreement, operand typing, and
// def-dominates-use (via an iterative dominator computation). Returns all
// violations found rather than stopping at the first one.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/function.hpp"

namespace luis::ir {

struct VerifyResult {
  std::vector<std::string> errors;
  bool ok() const { return errors.empty(); }
  std::string message() const;
};

VerifyResult verify(const Function& function);

/// Immediate dominator computation (Cooper-Harvey-Kennedy iterative scheme).
/// Returns block -> immediate dominator (entry maps to itself). Unreachable
/// blocks are absent from the map.
std::map<const BasicBlock*, const BasicBlock*> compute_dominators(const Function& f);

/// True if `a` dominates `b` under the given dominator tree.
bool dominates(const std::map<const BasicBlock*, const BasicBlock*>& idom,
               const BasicBlock* a, const BasicBlock* b);

/// One use of a value: operand `operand_index` of `user` references it.
struct Use {
  const Instruction* user = nullptr;
  std::size_t operand_index = 0;
};

/// Def -> uses over every operand reference in `f`, in program order — the
/// use walk the verifier performs for its dominance check, exposed for the
/// analysis passes (dead-cast detection, cast-chain pattern matching).
std::map<const Value*, std::vector<Use>> compute_uses(const Function& f);

} // namespace luis::ir
