// Values of the LUIS IR: the common base of everything an instruction can
// reference as an operand — instructions themselves, literal constants, and
// arrays (memory objects with a tunable element representation).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ir/type.hpp"

namespace luis::ir {

class Value {
public:
  enum class Kind { Instruction, ConstReal, ConstInt, Array };

  virtual ~Value() = default;

  Kind kind() const { return kind_; }
  ScalarType type() const { return type_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  bool is_instruction() const { return kind_ == Kind::Instruction; }
  bool is_constant() const {
    return kind_ == Kind::ConstReal || kind_ == Kind::ConstInt;
  }
  bool is_array() const { return kind_ == Kind::Array; }

protected:
  Value(Kind kind, ScalarType type, std::string name)
      : kind_(kind), type_(type), name_(std::move(name)) {}

private:
  Kind kind_;
  ScalarType type_;
  std::string name_;
};

/// A literal Real constant.
class ConstReal final : public Value {
public:
  explicit ConstReal(double value)
      : Value(Kind::ConstReal, ScalarType::Real, {}), value_(value) {}
  double value() const { return value_; }

private:
  double value_;
};

/// A literal Int constant.
class ConstInt final : public Value {
public:
  explicit ConstInt(std::int64_t value)
      : Value(Kind::ConstInt, ScalarType::Int, {}), value_(value) {}
  std::int64_t value() const { return value_; }

private:
  std::int64_t value_;
};

/// A dense row-major array of Real elements with static dimensions — the
/// memory substrate of PolyBench-style kernels. The tuner assigns one
/// representation to the whole array, as TAFFO does for buffers.
class Array final : public Value {
public:
  Array(std::string name, std::vector<std::int64_t> dims)
      : Value(Kind::Array, ScalarType::Real, std::move(name)),
        dims_(std::move(dims)) {}

  const std::vector<std::int64_t>& dims() const { return dims_; }
  std::size_t rank() const { return dims_.size(); }
  std::int64_t element_count() const {
    std::int64_t n = 1;
    for (const std::int64_t d : dims_) n *= d;
    return n;
  }

  /// User annotation of the dynamic value range of the array's contents —
  /// the range metadata TAFFO reads from source annotations. This is the
  /// seed information for Value Range Analysis.
  void annotate_range(double lo, double hi) { annotation_ = {lo, hi}; }
  const std::optional<std::pair<double, double>>& range_annotation() const {
    return annotation_;
  }

private:
  std::vector<std::int64_t> dims_;
  std::optional<std::pair<double, double>> annotation_;
};

} // namespace luis::ir
