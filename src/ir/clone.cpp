#include "ir/clone.hpp"

#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "support/diag.hpp"

namespace luis::ir {

Function* clone_function(const Function& f, Module& dest) {
  const std::string text = print_function(f);
  ParseResult parsed = parse_function(dest, text);
  LUIS_ASSERT(parsed.ok(),
              ("clone_function round-trip failed: " + parsed.error).c_str());
  return parsed.function;
}

} // namespace luis::ir
