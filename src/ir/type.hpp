// Scalar type system of the LUIS IR.
//
// The IR deliberately distinguishes only what precision tuning needs:
//   Real — numeric values whose representation the tuner may change
//          (the "virtual registers" of the paper's ILP model);
//   Int  — loop indices and address arithmetic, never retyped;
//   Bool — comparison results feeding control flow and selects;
//   Void — instructions executed for effect (stores, branches).
#pragma once

namespace luis::ir {

enum class ScalarType { Real, Int, Bool, Void };

inline const char* to_string(ScalarType t) {
  switch (t) {
  case ScalarType::Real: return "real";
  case ScalarType::Int: return "int";
  case ScalarType::Bool: return "bool";
  case ScalarType::Void: return "void";
  }
  return "<invalid>";
}

} // namespace luis::ir
