#include "ir/builder.hpp"

#include "support/diag.hpp"

namespace luis::ir {

Instruction* IRBuilder::emit(std::unique_ptr<Instruction> inst) {
  LUIS_ASSERT(block_ != nullptr, "IRBuilder has no insertion block");
  LUIS_ASSERT(block_->terminator() == nullptr,
              "appending to a terminated block: " + block_->name());
  return block_->append(std::move(inst));
}

Instruction* IRBuilder::binary(Opcode op, Value* a, Value* b) {
  LUIS_ASSERT(a->type() == ScalarType::Real && b->type() == ScalarType::Real,
              std::string("real binary op on non-real operands: ") + to_string(op));
  return emit(std::make_unique<Instruction>(op, ScalarType::Real,
                                            std::vector<Value*>{a, b}));
}

Instruction* IRBuilder::unary(Opcode op, Value* a) {
  LUIS_ASSERT(a->type() == ScalarType::Real,
              std::string("real unary op on non-real operand: ") + to_string(op));
  return emit(std::make_unique<Instruction>(op, ScalarType::Real,
                                            std::vector<Value*>{a}));
}

Instruction* IRBuilder::int_to_real(Value* a) {
  LUIS_ASSERT(a->type() == ScalarType::Int, "inttoreal needs an int operand");
  return emit(std::make_unique<Instruction>(Opcode::IntToReal, ScalarType::Real,
                                            std::vector<Value*>{a}));
}

Instruction* IRBuilder::ibinary(Opcode op, Value* a, Value* b) {
  LUIS_ASSERT(a->type() == ScalarType::Int && b->type() == ScalarType::Int,
              std::string("int binary op on non-int operands: ") + to_string(op));
  return emit(std::make_unique<Instruction>(op, ScalarType::Int,
                                            std::vector<Value*>{a, b}));
}

Instruction* IRBuilder::icmp(CmpPred pred, Value* a, Value* b) {
  LUIS_ASSERT(a->type() == ScalarType::Int && b->type() == ScalarType::Int,
              "icmp needs int operands");
  Instruction* inst = emit(std::make_unique<Instruction>(
      Opcode::ICmp, ScalarType::Bool, std::vector<Value*>{a, b}));
  inst->set_predicate(pred);
  return inst;
}

Instruction* IRBuilder::fcmp(CmpPred pred, Value* a, Value* b) {
  LUIS_ASSERT(a->type() == ScalarType::Real && b->type() == ScalarType::Real,
              "fcmp needs real operands");
  Instruction* inst = emit(std::make_unique<Instruction>(
      Opcode::FCmp, ScalarType::Bool, std::vector<Value*>{a, b}));
  inst->set_predicate(pred);
  return inst;
}

Instruction* IRBuilder::select(Value* cond, Value* if_true, Value* if_false) {
  LUIS_ASSERT(cond->type() == ScalarType::Bool, "select needs a bool condition");
  LUIS_ASSERT(if_true->type() == if_false->type(),
              "select arms must have matching types");
  return emit(std::make_unique<Instruction>(
      Opcode::Select, if_true->type(),
      std::vector<Value*>{cond, if_true, if_false}));
}

Instruction* IRBuilder::load(Array* array, std::vector<Value*> indices) {
  LUIS_ASSERT(indices.size() == array->rank(), "load index arity mismatch");
  std::vector<Value*> ops{array};
  for (Value* idx : indices) {
    LUIS_ASSERT(idx->type() == ScalarType::Int, "load indices must be int");
    ops.push_back(idx);
  }
  return emit(std::make_unique<Instruction>(Opcode::Load, ScalarType::Real,
                                            std::move(ops)));
}

Instruction* IRBuilder::store(Value* value, Array* array,
                              std::vector<Value*> indices) {
  LUIS_ASSERT(value->type() == ScalarType::Real, "store value must be real");
  LUIS_ASSERT(indices.size() == array->rank(), "store index arity mismatch");
  std::vector<Value*> ops{value, array};
  for (Value* idx : indices) {
    LUIS_ASSERT(idx->type() == ScalarType::Int, "store indices must be int");
    ops.push_back(idx);
  }
  return emit(std::make_unique<Instruction>(Opcode::Store, ScalarType::Void,
                                            std::move(ops)));
}

Instruction* IRBuilder::phi(ScalarType type) {
  LUIS_ASSERT(type == ScalarType::Real || type == ScalarType::Int,
              "phi must be real or int");
  // Phis must precede non-phi instructions; the verifier enforces it, the
  // builder simply appends (KernelBuilder emits them first).
  return emit(std::make_unique<Instruction>(Opcode::Phi, type,
                                            std::vector<Value*>{}));
}

Instruction* IRBuilder::br(BasicBlock* target) {
  Instruction* inst = emit(std::make_unique<Instruction>(
      Opcode::Br, ScalarType::Void, std::vector<Value*>{}));
  inst->set_targets({target});
  return inst;
}

Instruction* IRBuilder::cond_br(Value* cond, BasicBlock* if_true,
                                BasicBlock* if_false) {
  LUIS_ASSERT(cond->type() == ScalarType::Bool, "condbr needs a bool condition");
  Instruction* inst = emit(std::make_unique<Instruction>(
      Opcode::CondBr, ScalarType::Void, std::vector<Value*>{cond}));
  inst->set_targets({if_true, if_false});
  return inst;
}

Instruction* IRBuilder::ret() {
  return emit(std::make_unique<Instruction>(Opcode::Ret, ScalarType::Void,
                                            std::vector<Value*>{}));
}

} // namespace luis::ir
