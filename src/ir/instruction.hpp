// Instructions of the LUIS IR.
//
// A deliberately small SSA instruction set: Real arithmetic (the tunable
// operations of the paper's Table II, plus the math intrinsics PolyBench
// kernels need), Int index arithmetic, comparisons, selects, phi nodes,
// memory access on arrays, casts, and terminators.
#pragma once

#include <span>
#include <vector>

#include "ir/value.hpp"

namespace luis::ir {

class BasicBlock;

enum class Opcode {
  // Real arithmetic (tunable; costed via op-time(o, t)).
  Add, Sub, Mul, Div, Rem, Neg,
  // Real math intrinsics (library calls in the characterization).
  Abs, Sqrt, Exp, Pow, Min, Max,
  // Representation change point (created by cast materialization).
  Cast,
  // Int -> Real conversion (e.g. float(i) in correlation).
  IntToReal,
  // Memory: Load(array, idx...) -> Real; Store(value, array, idx...).
  Load, Store,
  // Int index arithmetic.
  IAdd, ISub, IMul, IDiv, IRem, IMin, IMax,
  // Comparisons -> Bool.
  ICmp, FCmp,
  // cond ? a : b, Real or Int flavour by operand type.
  Select,
  // SSA merge.
  Phi,
  // Terminators.
  Br, CondBr, Ret,
};

/// Canonical lowercase opcode spelling — the single table shared by the
/// printer, the interpreter's cost-counter keys, and the bytecode
/// disassembler.
constexpr const char* opcode_name(Opcode op) {
  switch (op) {
  case Opcode::Add: return "add";
  case Opcode::Sub: return "sub";
  case Opcode::Mul: return "mul";
  case Opcode::Div: return "div";
  case Opcode::Rem: return "rem";
  case Opcode::Neg: return "neg";
  case Opcode::Abs: return "abs";
  case Opcode::Sqrt: return "sqrt";
  case Opcode::Exp: return "exp";
  case Opcode::Pow: return "pow";
  case Opcode::Min: return "min";
  case Opcode::Max: return "max";
  case Opcode::Cast: return "cast";
  case Opcode::IntToReal: return "inttoreal";
  case Opcode::Load: return "load";
  case Opcode::Store: return "store";
  case Opcode::IAdd: return "iadd";
  case Opcode::ISub: return "isub";
  case Opcode::IMul: return "imul";
  case Opcode::IDiv: return "idiv";
  case Opcode::IRem: return "irem";
  case Opcode::IMin: return "imin";
  case Opcode::IMax: return "imax";
  case Opcode::ICmp: return "icmp";
  case Opcode::FCmp: return "fcmp";
  case Opcode::Select: return "select";
  case Opcode::Phi: return "phi";
  case Opcode::Br: return "br";
  case Opcode::CondBr: return "condbr";
  case Opcode::Ret: return "ret";
  }
  return "<invalid>";
}

const char* to_string(Opcode op);

/// Comparison predicates (shared by ICmp and FCmp).
enum class CmpPred { EQ, NE, LT, LE, GT, GE };

const char* to_string(CmpPred pred);

class Instruction final : public Value {
public:
  Instruction(Opcode op, ScalarType type, std::vector<Value*> operands)
      : Value(Kind::Instruction, type, {}), op_(op),
        operands_(std::move(operands)) {}

  Opcode opcode() const { return op_; }

  std::span<Value* const> operands() const { return operands_; }
  Value* operand(std::size_t i) const { return operands_[i]; }
  std::size_t num_operands() const { return operands_.size(); }
  void set_operand(std::size_t i, Value* v) { operands_[i] = v; }

  BasicBlock* parent() const { return parent_; }
  void set_parent(BasicBlock* bb) { parent_ = bb; }

  // --- Comparison payload ---
  CmpPred predicate() const { return pred_; }
  void set_predicate(CmpPred p) { pred_ = p; }

  // --- Phi payload: incoming blocks, parallel to operands. ---
  const std::vector<BasicBlock*>& incoming_blocks() const { return incoming_; }
  void add_incoming(Value* value, BasicBlock* from) {
    operands_.push_back(value);
    incoming_.push_back(from);
  }
  /// Rewrites incoming edges `from` -> `to` (CFG simplification).
  void replace_incoming_block(const BasicBlock* from, BasicBlock* to) {
    for (BasicBlock*& b : incoming_)
      if (b == from) b = to;
  }

  // --- Terminator payload ---
  BasicBlock* target(std::size_t i) const { return targets_[i]; }
  const std::vector<BasicBlock*>& targets() const { return targets_; }
  void set_targets(std::vector<BasicBlock*> targets) { targets_ = std::move(targets); }

  bool is_terminator() const {
    return op_ == Opcode::Br || op_ == Opcode::CondBr || op_ == Opcode::Ret;
  }
  bool is_phi() const { return op_ == Opcode::Phi; }

  /// True for Real-valued arithmetic whose execution cost depends on the
  /// chosen representation (the op-time rows of Table II).
  bool is_tunable_arithmetic() const {
    switch (op_) {
    case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::Div:
    case Opcode::Rem: case Opcode::Neg: case Opcode::Abs: case Opcode::Sqrt:
    case Opcode::Exp: case Opcode::Pow: case Opcode::Min: case Opcode::Max:
      return true;
    default:
      return false;
    }
  }

private:
  Opcode op_;
  std::vector<Value*> operands_;
  BasicBlock* parent_ = nullptr;
  CmpPred pred_ = CmpPred::EQ;
  std::vector<BasicBlock*> incoming_;
  std::vector<BasicBlock*> targets_;
};

} // namespace luis::ir
