#include "ir/function.hpp"

#include <algorithm>

#include "support/diag.hpp"

namespace luis::ir {

const char* to_string(Opcode op) { return opcode_name(op); }

const char* to_string(CmpPred pred) {
  switch (pred) {
  case CmpPred::EQ: return "eq";
  case CmpPred::NE: return "ne";
  case CmpPred::LT: return "lt";
  case CmpPred::LE: return "le";
  case CmpPred::GT: return "gt";
  case CmpPred::GE: return "ge";
  }
  return "<invalid>";
}

Instruction* BasicBlock::insert_before(const Instruction* position,
                                       std::unique_ptr<Instruction> inst) {
  const auto it = std::find_if(
      instructions_.begin(), instructions_.end(),
      [&](const std::unique_ptr<Instruction>& p) { return p.get() == position; });
  LUIS_ASSERT(it != instructions_.end(), "insert_before: position not in block");
  inst->set_parent(this);
  return instructions_.insert(it, std::move(inst))->get();
}

void BasicBlock::erase(const Instruction* inst) {
  const auto it = std::find_if(
      instructions_.begin(), instructions_.end(),
      [&](const std::unique_ptr<Instruction>& p) { return p.get() == inst; });
  LUIS_ASSERT(it != instructions_.end(), "erase: instruction not in block");
  instructions_.erase(it);
}

std::vector<std::unique_ptr<Instruction>> BasicBlock::take_instructions() {
  std::vector<std::unique_ptr<Instruction>> out = std::move(instructions_);
  instructions_.clear();
  return out;
}

void Function::remove_block(const BasicBlock* bb) {
  LUIS_ASSERT(entry() != bb, "cannot remove the entry block");
  const auto it = std::find_if(
      blocks_.begin(), blocks_.end(),
      [&](const std::unique_ptr<BasicBlock>& p) { return p.get() == bb; });
  LUIS_ASSERT(it != blocks_.end(), "remove_block: block not in function");
  blocks_.erase(it);
}

ConstReal* Function::const_real(double value) {
  for (const auto& c : real_constants_)
    if (c->value() == value) return c.get();
  real_constants_.push_back(std::make_unique<ConstReal>(value));
  return real_constants_.back().get();
}

ConstInt* Function::const_int(std::int64_t value) {
  for (const auto& c : int_constants_)
    if (c->value() == value) return c.get();
  int_constants_.push_back(std::make_unique<ConstInt>(value));
  return int_constants_.back().get();
}

Array* Function::array_by_name(const std::string& name) const {
  for (const auto& a : arrays_)
    if (a->name() == name) return a.get();
  return nullptr;
}

BasicBlock* Function::block_by_name(const std::string& name) const {
  for (const auto& b : blocks_)
    if (b->name() == name) return b.get();
  return nullptr;
}

std::vector<BasicBlock*> Function::predecessors(const BasicBlock* bb) const {
  std::vector<BasicBlock*> preds;
  for (const auto& candidate : blocks_) {
    for (BasicBlock* succ : candidate->successors())
      if (succ == bb) {
        preds.push_back(candidate.get());
        break;
      }
  }
  return preds;
}

std::size_t Function::instruction_count() const {
  std::size_t n = 0;
  for (const auto& bb : blocks_) n += bb->instructions().size();
  return n;
}

Function* Module::function_by_name(const std::string& name) const {
  for (const auto& f : functions_)
    if (f->name() == name) return f.get();
  return nullptr;
}

} // namespace luis::ir
