// IR optimization passes.
//
// The paper positions LUIS after Clang's lowering, i.e. on IR that the
// standard pipeline has already cleaned up. These passes provide that
// cleanup for IR built through KernelBuilder or parsed from text:
//
//   fold_constants    evaluates Real/Int operations over literal operands
//                     and rewrites uses to the folded literal;
//   eliminate_dead_code
//                     removes instructions whose results are never used
//                     and which have no side effects;
//   simplify_cfg      merges straight-line block chains and removes empty
//                     forwarding blocks (KernelBuilder's latch/exit
//                     scaffolding collapses to the natural loop shape);
//   run_default_pipeline
//                     the three above to a fixpoint.
//
// All passes preserve verifier invariants; each returns the number of
// changes it made.
#pragma once

#include "ir/function.hpp"

namespace luis::ir {

/// Rewrites every use of `from` to `to` across the function (operands of
/// all instructions). Returns the number of operand slots rewritten.
int replace_all_uses(Function& f, const Value* from, Value* to);

/// True if the instruction's result is used by any instruction in `f`.
bool has_uses(const Function& f, const Instruction* inst);

int fold_constants(Function& f);
int eliminate_dead_code(Function& f);
int simplify_cfg(Function& f);

/// Runs fold / DCE / CFG-simplify to a fixpoint (bounded). Returns the
/// total number of changes.
int run_default_pipeline(Function& f);

} // namespace luis::ir
