#include "ir/passes.hpp"

#include <cmath>
#include <set>

#include "support/diag.hpp"

namespace luis::ir {

int replace_all_uses(Function& f, const Value* from, Value* to) {
  int rewritten = 0;
  for (const auto& bb : f.blocks()) {
    for (const auto& inst : bb->instructions()) {
      for (std::size_t i = 0; i < inst->num_operands(); ++i) {
        if (inst->operand(i) == from) {
          inst->set_operand(i, to);
          ++rewritten;
        }
      }
    }
  }
  return rewritten;
}

bool has_uses(const Function& f, const Instruction* inst) {
  for (const auto& bb : f.blocks())
    for (const auto& user : bb->instructions())
      for (const Value* op : user->operands())
        if (op == inst) return true;
  return false;
}

namespace {

bool all_real_constants(const Instruction* inst) {
  for (const Value* op : inst->operands())
    if (op->kind() != Value::Kind::ConstReal) return false;
  return inst->num_operands() > 0;
}

bool all_int_constants(const Instruction* inst) {
  for (const Value* op : inst->operands())
    if (op->kind() != Value::Kind::ConstInt) return false;
  return inst->num_operands() > 0;
}

double real_const(const Instruction* inst, std::size_t i) {
  return static_cast<const ConstReal*>(inst->operand(i))->value();
}

std::int64_t int_const(const Instruction* inst, std::size_t i) {
  return static_cast<const ConstInt*>(inst->operand(i))->value();
}

} // namespace

int fold_constants(Function& f) {
  int folded = 0;
  for (const auto& bb : f.blocks()) {
    // Collect first: replacing uses while iterating the same list is fine
    // (operand pointers, not list structure), but erasing is not; dead
    // folded instructions are left for DCE.
    for (const auto& inst_ptr : bb->instructions()) {
      Instruction* inst = inst_ptr.get();
      Value* replacement = nullptr;
      switch (inst->opcode()) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::Div:
      case Opcode::Rem: case Opcode::Pow: case Opcode::Min: case Opcode::Max: {
        if (!all_real_constants(inst)) break;
        const double a = real_const(inst, 0), b = real_const(inst, 1);
        double v = 0.0;
        switch (inst->opcode()) {
        case Opcode::Add: v = a + b; break;
        case Opcode::Sub: v = a - b; break;
        case Opcode::Mul: v = a * b; break;
        case Opcode::Div: v = a / b; break;
        case Opcode::Rem: v = std::fmod(a, b); break;
        case Opcode::Pow: v = std::pow(a, b); break;
        case Opcode::Min: v = std::fmin(a, b); break;
        case Opcode::Max: v = std::fmax(a, b); break;
        default: break;
        }
        replacement = f.const_real(v);
        break;
      }
      case Opcode::Neg: case Opcode::Abs: case Opcode::Sqrt: case Opcode::Exp: {
        if (!all_real_constants(inst)) break;
        const double a = real_const(inst, 0);
        double v = 0.0;
        switch (inst->opcode()) {
        case Opcode::Neg: v = -a; break;
        case Opcode::Abs: v = std::abs(a); break;
        case Opcode::Sqrt: v = std::sqrt(a); break;
        case Opcode::Exp: v = std::exp(a); break;
        default: break;
        }
        replacement = f.const_real(v);
        break;
      }
      case Opcode::IntToReal:
        if (all_int_constants(inst))
          replacement = f.const_real(static_cast<double>(int_const(inst, 0)));
        break;
      case Opcode::IAdd: case Opcode::ISub: case Opcode::IMul:
      case Opcode::IDiv: case Opcode::IRem: case Opcode::IMin:
      case Opcode::IMax: {
        if (!all_int_constants(inst)) break;
        const std::int64_t a = int_const(inst, 0), b = int_const(inst, 1);
        if ((inst->opcode() == Opcode::IDiv || inst->opcode() == Opcode::IRem) &&
            b == 0)
          break; // leave the trap semantics to the interpreter
        std::int64_t v = 0;
        switch (inst->opcode()) {
        case Opcode::IAdd: v = a + b; break;
        case Opcode::ISub: v = a - b; break;
        case Opcode::IMul: v = a * b; break;
        case Opcode::IDiv: v = a / b; break;
        case Opcode::IRem: v = a % b; break;
        case Opcode::IMin: v = std::min(a, b); break;
        case Opcode::IMax: v = std::max(a, b); break;
        default: break;
        }
        replacement = f.const_int(v);
        break;
      }
      case Opcode::Phi: {
        // A phi whose incoming values are all the same is that value.
        if (inst->num_operands() == 0) break;
        Value* first = inst->operand(0);
        bool uniform = true;
        for (const Value* op : inst->operands()) uniform &= op == first;
        if (uniform && first != inst) replacement = first;
        break;
      }
      default:
        break;
      }
      if (replacement && replacement != inst) {
        folded += replace_all_uses(f, inst, replacement) > 0 ? 1 : 0;
      }
    }
  }
  return folded;
}

int eliminate_dead_code(Function& f) {
  int removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& bb : f.blocks()) {
      // Walk a snapshot of candidates: erase invalidates iteration.
      std::vector<const Instruction*> dead;
      for (const auto& inst : bb->instructions()) {
        if (inst->type() == ScalarType::Void) continue; // stores, terminators
        if (has_uses(f, inst.get())) continue;
        dead.push_back(inst.get());
      }
      for (const Instruction* inst : dead) {
        bb->erase(inst);
        ++removed;
        changed = true;
      }
    }
  }
  return removed;
}

namespace {

/// Rewrites branch targets of every terminator: old_target -> new_target.
void retarget(Function& f, BasicBlock* old_target, BasicBlock* new_target) {
  for (const auto& bb : f.blocks()) {
    Instruction* term = bb->terminator();
    if (!term) continue;
    std::vector<BasicBlock*> targets = term->targets();
    bool hit = false;
    for (BasicBlock*& t : targets) {
      if (t == old_target) {
        t = new_target;
        hit = true;
      }
    }
    if (hit) term->set_targets(std::move(targets));
  }
}

/// Replaces `from` in every phi's incoming-block list of `bb` with `with`.
void replace_phi_incoming(BasicBlock* bb, const BasicBlock* from,
                          BasicBlock* with) {
  for (const auto& inst : bb->instructions()) {
    if (!inst->is_phi()) break;
    inst->replace_incoming_block(from, with);
  }
}

bool block_is_empty_forwarder(const BasicBlock* bb) {
  return bb->instructions().size() == 1 &&
         bb->instructions().front()->opcode() == Opcode::Br;
}

} // namespace

int simplify_cfg(Function& f) {
  int changes = 0;
  bool changed = true;
  while (changed) {
    changed = false;

    // 1. Remove empty forwarding blocks (B: "br T").
    for (const auto& bb_ptr : f.blocks()) {
      BasicBlock* bb = bb_ptr.get();
      if (bb == f.entry() || !block_is_empty_forwarder(bb)) continue;
      BasicBlock* target = bb->terminator()->target(0);
      if (target == bb) continue; // degenerate self loop
      const std::vector<BasicBlock*> preds = f.predecessors(bb);
      if (preds.empty()) continue; // unreachable; leave for the verifier
      // Phis in the target must not already see any of B's predecessors,
      // and must have B as an incoming block exactly once.
      bool safe = true;
      for (const auto& inst : target->instructions()) {
        if (!inst->is_phi()) break;
        for (BasicBlock* pred : preds)
          for (const BasicBlock* in : inst->incoming_blocks())
            if (in == pred) safe = false;
      }
      if (!safe || preds.size() != 1) continue; // keep it simple & correct
      BasicBlock* pred = preds.front();
      retarget(f, bb, target);
      replace_phi_incoming(target, bb, pred);
      f.remove_block(bb);
      ++changes;
      changed = true;
      break; // block list mutated; restart the scan
    }
    if (changed) continue;

    // 2. Merge a straight-line pair B -> S (S's only predecessor is B).
    for (const auto& bb_ptr : f.blocks()) {
      BasicBlock* bb = bb_ptr.get();
      Instruction* term = bb->terminator();
      if (!term || term->opcode() != Opcode::Br) continue;
      BasicBlock* succ = term->target(0);
      if (succ == bb || succ == f.entry()) continue;
      const std::vector<BasicBlock*> preds = f.predecessors(succ);
      if (preds.size() != 1 || preds.front() != bb) continue;
      // Single-predecessor phis are trivial: replace with their value.
      bool ok = true;
      std::vector<const Instruction*> trivial_phis;
      for (const auto& inst : succ->instructions()) {
        if (!inst->is_phi()) break;
        if (inst->num_operands() != 1) {
          ok = false;
          break;
        }
        trivial_phis.push_back(inst.get());
      }
      if (!ok) continue;
      for (const Instruction* phi : trivial_phis) {
        replace_all_uses(f, phi, phi->operand(0));
        succ->erase(phi);
      }
      // Splice: drop B's br, move S's instructions into B.
      bb->erase(term);
      for (auto& inst : succ->take_instructions()) {
        inst->set_parent(bb);
        bb->append(std::move(inst));
      }
      // S's successors' phis now come from B.
      for (BasicBlock* after : bb->successors())
        replace_phi_incoming(after, succ, bb);
      f.remove_block(succ);
      ++changes;
      changed = true;
      break; // restart
    }
  }
  return changes;
}

int run_default_pipeline(Function& f) {
  int total = 0;
  for (int round = 0; round < 8; ++round) {
    const int delta =
        fold_constants(f) + eliminate_dead_code(f) + simplify_cfg(f);
    total += delta;
    if (delta == 0) break;
  }
  return total;
}

} // namespace luis::ir
