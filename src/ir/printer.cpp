#include "ir/printer.hpp"

#include <sstream>

#include "support/diag.hpp"

namespace luis::ir {
namespace {

void print_real_literal(std::ostream& os, double v) {
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  std::string s = tmp.str();
  // Ensure the token is recognizably a real literal.
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos)
    s += ".0";
  os << s;
}

class FunctionPrinter {
public:
  explicit FunctionPrinter(const Function& f)
      : f_(f), ids_(number_instructions(f)) {}

  std::string run() {
    os_ << "func @" << f_.name() << " {\n";
    for (const auto& arr : f_.arrays()) {
      os_ << "  array @" << arr->name();
      for (const std::int64_t d : arr->dims()) os_ << "[" << d << "]";
      if (arr->range_annotation()) {
        // Full-precision bounds: print -> parse must reproduce the exact
        // annotation or a cloned function sees shifted VRA ranges.
        os_ << " range [";
        print_real_literal(os_, arr->range_annotation()->first);
        os_ << ", ";
        print_real_literal(os_, arr->range_annotation()->second);
        os_ << "]";
      }
      os_ << "\n";
    }
    for (const auto& bb : f_.blocks()) {
      os_ << bb->name() << ":\n";
      for (const auto& inst : bb->instructions()) print_inst(*inst);
    }
    os_ << "}\n";
    return os_.str();
  }

private:
  void print_operand(const Value* v) {
    switch (v->kind()) {
    case Value::Kind::Instruction:
      os_ << "%" << ids_.at(static_cast<const Instruction*>(v));
      break;
    case Value::Kind::ConstReal:
      print_real_literal(os_, static_cast<const ConstReal*>(v)->value());
      break;
    case Value::Kind::ConstInt:
      os_ << static_cast<const ConstInt*>(v)->value();
      break;
    case Value::Kind::Array:
      os_ << "@" << v->name();
      break;
    }
  }

  void print_inst(const Instruction& inst) {
    os_ << "  ";
    if (inst.type() != ScalarType::Void)
      os_ << "%" << ids_.at(&inst) << " = ";
    switch (inst.opcode()) {
    case Opcode::Phi: {
      os_ << "phi " << to_string(inst.type());
      for (std::size_t i = 0; i < inst.num_operands(); ++i) {
        os_ << (i == 0 ? " [ " : ", [ ");
        print_operand(inst.operand(i));
        os_ << ", " << inst.incoming_blocks()[i]->name() << " ]";
      }
      break;
    }
    case Opcode::ICmp:
    case Opcode::FCmp:
      os_ << to_string(inst.opcode()) << " " << to_string(inst.predicate()) << " ";
      print_operand(inst.operand(0));
      os_ << ", ";
      print_operand(inst.operand(1));
      break;
    case Opcode::Load: {
      const auto* arr = static_cast<const Array*>(inst.operand(0));
      os_ << "load @" << arr->name();
      for (std::size_t i = 1; i < inst.num_operands(); ++i) {
        os_ << "[";
        print_operand(inst.operand(i));
        os_ << "]";
      }
      break;
    }
    case Opcode::Store: {
      const auto* arr = static_cast<const Array*>(inst.operand(1));
      os_ << "store ";
      print_operand(inst.operand(0));
      os_ << ", @" << arr->name();
      for (std::size_t i = 2; i < inst.num_operands(); ++i) {
        os_ << "[";
        print_operand(inst.operand(i));
        os_ << "]";
      }
      break;
    }
    case Opcode::Br:
      os_ << "br " << inst.target(0)->name();
      break;
    case Opcode::CondBr:
      os_ << "condbr ";
      print_operand(inst.operand(0));
      os_ << ", " << inst.target(0)->name() << ", " << inst.target(1)->name();
      break;
    case Opcode::Ret:
      os_ << "ret";
      break;
    default:
      os_ << to_string(inst.opcode());
      for (std::size_t i = 0; i < inst.num_operands(); ++i) {
        os_ << (i == 0 ? " " : ", ");
        print_operand(inst.operand(i));
      }
      break;
    }
    os_ << "\n";
  }

  const Function& f_;
  std::map<const Instruction*, int> ids_;
  std::ostringstream os_;
};

} // namespace

std::map<const Instruction*, int> number_instructions(const Function& f) {
  std::map<const Instruction*, int> ids;
  int next = 0;
  for (const auto& bb : f.blocks())
    for (const auto& inst : bb->instructions())
      if (inst->type() != ScalarType::Void) ids[inst.get()] = next++;
  return ids;
}

std::string print_function(const Function& f) { return FunctionPrinter(f).run(); }

std::string print_module(const Module& m) {
  std::string out;
  for (const auto& f : m.functions()) out += print_function(*f);
  return out;
}

} // namespace luis::ir
