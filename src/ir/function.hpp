// Basic blocks, functions, and modules of the LUIS IR.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/instruction.hpp"

namespace luis::ir {

class Function;

class BasicBlock {
public:
  BasicBlock(std::string name, Function* parent)
      : name_(std::move(name)), parent_(parent) {}

  const std::string& name() const { return name_; }
  Function* parent() const { return parent_; }

  const std::vector<std::unique_ptr<Instruction>>& instructions() const {
    return instructions_;
  }

  Instruction* append(std::unique_ptr<Instruction> inst) {
    inst->set_parent(this);
    instructions_.push_back(std::move(inst));
    return instructions_.back().get();
  }

  /// Inserts `inst` immediately before `position` (which must be in this
  /// block). Used by cast materialization.
  Instruction* insert_before(const Instruction* position,
                             std::unique_ptr<Instruction> inst);

  /// Removes and destroys `inst` (which must be in this block and must no
  /// longer have uses). Used by the optimization passes.
  void erase(const Instruction* inst);

  /// Moves every instruction out of this block (for block merging).
  std::vector<std::unique_ptr<Instruction>> take_instructions();

  Instruction* terminator() const {
    if (instructions_.empty()) return nullptr;
    Instruction* last = instructions_.back().get();
    return last->is_terminator() ? last : nullptr;
  }

  /// Successor blocks, read off the terminator.
  std::vector<BasicBlock*> successors() const {
    Instruction* term = terminator();
    if (!term) return {};
    return term->targets();
  }

private:
  std::string name_;
  Function* parent_;
  std::vector<std::unique_ptr<Instruction>> instructions_;
};

class Function {
public:
  explicit Function(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  BasicBlock* add_block(std::string name) {
    blocks_.push_back(std::make_unique<BasicBlock>(std::move(name), this));
    return blocks_.back().get();
  }

  /// Removes and destroys an (empty or fully-detached) block. The entry
  /// block cannot be removed.
  void remove_block(const BasicBlock* bb);

  Array* add_array(std::string name, std::vector<std::int64_t> dims) {
    arrays_.push_back(std::make_unique<Array>(std::move(name), std::move(dims)));
    return arrays_.back().get();
  }

  /// Interned literal constants (pointer-identical for equal values).
  ConstReal* const_real(double value);
  ConstInt* const_int(std::int64_t value);

  BasicBlock* entry() const { return blocks_.empty() ? nullptr : blocks_.front().get(); }
  const std::vector<std::unique_ptr<BasicBlock>>& blocks() const { return blocks_; }
  const std::vector<std::unique_ptr<Array>>& arrays() const { return arrays_; }

  Array* array_by_name(const std::string& name) const;
  BasicBlock* block_by_name(const std::string& name) const;

  /// Predecessor map (recomputed on demand; blocks are append-only).
  std::vector<BasicBlock*> predecessors(const BasicBlock* bb) const;

  /// Total instruction count across all blocks.
  std::size_t instruction_count() const;

private:
  std::string name_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
  std::vector<std::unique_ptr<Array>> arrays_;
  std::vector<std::unique_ptr<ConstReal>> real_constants_;
  std::vector<std::unique_ptr<ConstInt>> int_constants_;
};

class Module {
public:
  explicit Module(std::string name = "module") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  Function* add_function(std::string name) {
    functions_.push_back(std::make_unique<Function>(std::move(name)));
    return functions_.back().get();
  }

  const std::vector<std::unique_ptr<Function>>& functions() const {
    return functions_;
  }
  Function* function_by_name(const std::string& name) const;

private:
  std::string name_;
  std::vector<std::unique_ptr<Function>> functions_;
};

} // namespace luis::ir
