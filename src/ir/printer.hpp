// Textual IR printer. The output round-trips through parse_function.
#pragma once

#include <map>
#include <string>

#include "ir/function.hpp"

namespace luis::ir {

std::string print_function(const Function& function);
std::string print_module(const Module& module);

/// Stable textual ids (%0, %1, ...) for every result-producing instruction,
/// in program order. Shared by the printer and diagnostics.
std::map<const Instruction*, int> number_instructions(const Function& function);

} // namespace luis::ir
