// Low-level IR construction: appends instructions to a current insertion
// block with per-opcode type checking. The structured KernelBuilder sits on
// top of this and is what kernel authors normally use.
#pragma once

#include <memory>

#include "ir/function.hpp"

namespace luis::ir {

class IRBuilder {
public:
  explicit IRBuilder(Function* function) : function_(function) {}

  Function* function() const { return function_; }
  BasicBlock* insertion_block() const { return block_; }
  void set_insertion_block(BasicBlock* bb) { block_ = bb; }

  // --- Constants ---
  ConstReal* real(double v) { return function_->const_real(v); }
  ConstInt* integer(std::int64_t v) { return function_->const_int(v); }

  // --- Real arithmetic ---
  Instruction* add(Value* a, Value* b) { return binary(Opcode::Add, a, b); }
  Instruction* sub(Value* a, Value* b) { return binary(Opcode::Sub, a, b); }
  Instruction* mul(Value* a, Value* b) { return binary(Opcode::Mul, a, b); }
  Instruction* div(Value* a, Value* b) { return binary(Opcode::Div, a, b); }
  Instruction* rem(Value* a, Value* b) { return binary(Opcode::Rem, a, b); }
  Instruction* pow(Value* a, Value* b) { return binary(Opcode::Pow, a, b); }
  Instruction* fmin(Value* a, Value* b) { return binary(Opcode::Min, a, b); }
  Instruction* fmax(Value* a, Value* b) { return binary(Opcode::Max, a, b); }
  Instruction* neg(Value* a) { return unary(Opcode::Neg, a); }
  Instruction* abs(Value* a) { return unary(Opcode::Abs, a); }
  Instruction* sqrt(Value* a) { return unary(Opcode::Sqrt, a); }
  Instruction* exp(Value* a) { return unary(Opcode::Exp, a); }
  Instruction* cast(Value* a) { return unary(Opcode::Cast, a); }
  Instruction* int_to_real(Value* a);

  // --- Int arithmetic ---
  Instruction* iadd(Value* a, Value* b) { return ibinary(Opcode::IAdd, a, b); }
  Instruction* isub(Value* a, Value* b) { return ibinary(Opcode::ISub, a, b); }
  Instruction* imul(Value* a, Value* b) { return ibinary(Opcode::IMul, a, b); }
  Instruction* idiv(Value* a, Value* b) { return ibinary(Opcode::IDiv, a, b); }
  Instruction* irem(Value* a, Value* b) { return ibinary(Opcode::IRem, a, b); }
  Instruction* imin(Value* a, Value* b) { return ibinary(Opcode::IMin, a, b); }
  Instruction* imax(Value* a, Value* b) { return ibinary(Opcode::IMax, a, b); }

  // --- Comparisons & select ---
  Instruction* icmp(CmpPred pred, Value* a, Value* b);
  Instruction* fcmp(CmpPred pred, Value* a, Value* b);
  Instruction* select(Value* cond, Value* if_true, Value* if_false);

  // --- Memory ---
  Instruction* load(Array* array, std::vector<Value*> indices);
  Instruction* store(Value* value, Array* array, std::vector<Value*> indices);

  // --- Phi & terminators ---
  Instruction* phi(ScalarType type);
  Instruction* br(BasicBlock* target);
  Instruction* cond_br(Value* cond, BasicBlock* if_true, BasicBlock* if_false);
  Instruction* ret();

private:
  Instruction* emit(std::unique_ptr<Instruction> inst);
  Instruction* binary(Opcode op, Value* a, Value* b);
  Instruction* unary(Opcode op, Value* a);
  Instruction* ibinary(Opcode op, Value* a, Value* b);

  Function* function_;
  BasicBlock* block_ = nullptr;
};

} // namespace luis::ir
