#include "core/pipeline.hpp"

#include <chrono>

#include "core/cast_materializer.hpp"
#include "ir/passes.hpp"

namespace luis::core {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

} // namespace

PipelineResult tune_kernel(ir::Function& f, const platform::OpTimeTable& table,
                           const TuningConfig& config,
                           const PipelineOptions& options) {
  PipelineResult result;
  const auto t0 = std::chrono::steady_clock::now();

  if (options.optimize_ir) result.ir_changes = ir::run_default_pipeline(f);

  result.ranges = vra::analyze_ranges(f, options.vra);
  result.vra_seconds = seconds_since(t0);

  const auto t1 = std::chrono::steady_clock::now();
  result.allocation = options.allocator == AllocatorKind::Ilp
                          ? allocate_ilp(f, result.ranges, table, config)
                          : allocate_greedy(f, result.ranges, config);
  result.allocation_seconds = seconds_since(t1);

  if (options.materialize_casts)
    result.casts_inserted = materialize_casts(f, result.allocation.assignment);

  result.total_seconds = seconds_since(t0);
  return result;
}

} // namespace luis::core
