#include "core/pipeline.hpp"

#include <chrono>

#include "core/cast_materializer.hpp"
#include "ir/passes.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace luis::core {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

} // namespace

PipelineResult tune_kernel(ir::Function& f, const platform::OpTimeTable& table,
                           const TuningConfig& config,
                           const PipelineOptions& options) {
  PipelineResult result;
  obs::TraceSpan pipeline_span("pipeline.tune", "pipeline", [&] {
    return obs::Args()
        .str("function", f.name())
        .str("platform", table.machine())
        .done();
  });
  const auto t0 = std::chrono::steady_clock::now();

  {
    obs::TraceSpan span("pipeline.ir_passes", "pipeline");
    if (options.optimize_ir) result.ir_changes = ir::run_default_pipeline(f);
  }
  // Stamp the IR pass before VRA starts: vra_seconds must cover only the
  // range analysis, not the optional IR cleanup that precedes it.
  const auto t_vra = std::chrono::steady_clock::now();
  result.timings.ir_seconds =
      std::chrono::duration<double>(t_vra - t0).count();

  {
    obs::TraceSpan span("pipeline.vra", "pipeline");
    analysis::DataflowStats vra_stats;
    result.ranges = vra::analyze_ranges(f, options.vra, &vra_stats);
    obs::metrics().counter("vra.fixpoint_passes").inc(vra_stats.passes);
    obs::metrics().counter("vra.widenings").inc(vra_stats.widenings);
  }
  result.timings.vra_seconds = seconds_since(t_vra);

  const auto t_alloc = std::chrono::steady_clock::now();
  {
    obs::TraceSpan span("pipeline.allocate", "pipeline", [&] {
      return obs::Args()
          .str("allocator",
               options.allocator == AllocatorKind::Ilp ? "ilp" : "greedy")
          .done();
    });
    result.allocation = options.allocator == AllocatorKind::Ilp
                            ? allocate_ilp(f, result.ranges, table, config)
                            : allocate_greedy(f, result.ranges, config);
  }
  result.timings.allocation_seconds = seconds_since(t_alloc);
  result.timings.model_build_seconds =
      result.allocation.stats.model_build_seconds;
  result.timings.solve_seconds = result.allocation.stats.solve_seconds;

  if (options.materialize_casts) {
    const auto t_mat = std::chrono::steady_clock::now();
    obs::TraceSpan span("pipeline.materialize_casts", "pipeline");
    result.casts_inserted = materialize_casts(f, result.allocation.assignment);
    result.timings.materialize_seconds = seconds_since(t_mat);
  }

  // Materialized casts postdate the VRA pass; refresh the ranges so the
  // downstream analyses see them (a cast carries its operand's range, not
  // top).
  if (result.casts_inserted > 0 &&
      (options.analyze_errors || options.lint != LintMode::Off))
    result.ranges = vra::analyze_ranges(f, options.vra);

  if (options.analyze_errors) {
    const auto t_err = std::chrono::steady_clock::now();
    result.errors = analysis::analyze_errors(f, result.allocation.assignment,
                                             result.ranges,
                                             options.error_options);
    result.timings.error_seconds = seconds_since(t_err);
  }

  if (options.lint != LintMode::Off) {
    const auto t_lint = std::chrono::steady_clock::now();
    obs::TraceSpan span("pipeline.lint", "pipeline");
    analysis::LintOptions lint_options = options.lint_options;
    lint_options.casts_materialized = options.materialize_casts;
    // Deliberately lints the allocator's raw output: a load whose entry
    // disagrees with its array is an allocator bug L003 must surface, not
    // something to normalize away.
    result.lint = analysis::run_lint(
        f, result.allocation.assignment, result.ranges, lint_options,
        options.analyze_errors ? &result.errors.errors : nullptr);
    result.timings.lint_seconds = seconds_since(t_lint);
    if (options.lint == LintMode::Error && result.lint.has_errors())
      result.lint_ok = false;
  }

  result.timings.total_seconds = seconds_since(t0);
  obs::metrics().counter("pipeline.tunes").inc();
  obs::metrics().histogram("pipeline.tune_seconds")
      .observe(result.timings.total_seconds);
  return result;
}

} // namespace luis::core
