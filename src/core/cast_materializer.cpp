#include "core/cast_materializer.hpp"

#include <vector>

#include "support/diag.hpp"

namespace luis::core {

using ir::Instruction;
using ir::Opcode;
using ir::ScalarType;

namespace {

bool is_real_register(const ir::Value* v) {
  return v->is_instruction() && v->type() == ScalarType::Real;
}

struct Boundary {
  Instruction* consumer;
  std::size_t operand_index;
  numrep::ConcreteType target;
};

std::vector<Boundary> find_boundaries(const ir::Function& f,
                                      const interp::TypeAssignment& assignment) {
  std::vector<Boundary> out;
  for (const auto& bb : f.blocks()) {
    for (const auto& inst_ptr : bb->instructions()) {
      Instruction* inst = inst_ptr.get();
      if (inst->opcode() == Opcode::Store) {
        const ir::Value* value = inst->operand(0);
        if (is_real_register(value) &&
            !(assignment.of(value) == assignment.of(inst->operand(1))))
          out.push_back({inst, 0, assignment.of(inst->operand(1))});
        continue;
      }
      if (inst->type() != ScalarType::Real && inst->opcode() != Opcode::FCmp)
        continue;
      // Loads produce their array's type and casts convert by definition:
      // neither ever needs an operand conversion, and skipping casts is what
      // makes materialization idempotent.
      if (inst->opcode() == Opcode::Load || inst->opcode() == Opcode::Cast)
        continue;
      const numrep::ConcreteType target = assignment.of(inst);
      for (std::size_t i = 0; i < inst->num_operands(); ++i) {
        const ir::Value* op = inst->operand(i);
        if (!is_real_register(op)) continue;
        // FCmp compares its operands in the second operand's type.
        const numrep::ConcreteType want =
            inst->opcode() == Opcode::FCmp ? assignment.of(inst->operand(1))
                                           : target;
        if (!(assignment.of(op) == want))
          out.push_back({inst, i, want});
      }
    }
  }
  return out;
}

} // namespace

// Loads produce the array's representation by definition; pinning the
// assignment down makes boundary detection consumer-side only.
void normalize_load_types(const ir::Function& f,
                          interp::TypeAssignment& assignment) {
  for (const auto& bb : f.blocks())
    for (const auto& inst : bb->instructions())
      if (inst->opcode() == Opcode::Load)
        assignment.set(inst.get(), assignment.of(inst->operand(0)));
}

int count_type_boundaries(const ir::Function& f,
                          const interp::TypeAssignment& assignment) {
  interp::TypeAssignment normalized = assignment;
  normalize_load_types(f, normalized);
  return static_cast<int>(find_boundaries(f, normalized).size());
}

int materialize_casts(ir::Function& f, interp::TypeAssignment& assignment) {
  normalize_load_types(f, assignment);
  const std::vector<Boundary> boundaries = find_boundaries(f, assignment);
  for (const Boundary& b : boundaries) {
    ir::Value* op = b.consumer->operand(b.operand_index);
    ir::BasicBlock* where;
    const Instruction* before;
    if (b.consumer->is_phi()) {
      // The cast must execute on the incoming edge.
      where = b.consumer->incoming_blocks()[b.operand_index];
      before = where->terminator();
      LUIS_ASSERT(before != nullptr, "unterminated incoming block");
    } else {
      where = b.consumer->parent();
      before = b.consumer;
    }
    auto cast = std::make_unique<Instruction>(Opcode::Cast, ScalarType::Real,
                                              std::vector<ir::Value*>{op});
    Instruction* inserted = where->insert_before(before, std::move(cast));
    assignment.set(inserted, b.target);
    b.consumer->set_operand(b.operand_index, inserted);
  }
  return static_cast<int>(boundaries.size());
}

} // namespace luis::core
