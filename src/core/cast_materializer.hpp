// Cast materialization — the conversion stage of the pipeline (Figure 1).
//
// Given a function and a type assignment, inserts an explicit Cast
// instruction at every use whose operand representation differs from the
// consumer's, and extends the assignment to the new casts. After this
// pass the IR makes every representation change visible, exactly like the
// code TAFFO emits.
#pragma once

#include "interp/type_assignment.hpp"
#include "ir/function.hpp"

namespace luis::core {

/// Returns the number of casts inserted. The function is modified in
/// place; `assignment` gains entries for the inserted casts.
int materialize_casts(ir::Function& f, interp::TypeAssignment& assignment);

/// Counts uses whose operand and consumer representations differ (the
/// casts materialize_casts would insert).
int count_type_boundaries(const ir::Function& f,
                          const interp::TypeAssignment& assignment);

/// Pins every Load's entry to its array's representation — the canonical
/// view both materialization passes start from. Exposed so external
/// assignments (hand-edited or loaded from disk) can be normalized before
/// boundary counting or linting.
void normalize_load_types(const ir::Function& f,
                          interp::TypeAssignment& assignment);

} // namespace luis::core
