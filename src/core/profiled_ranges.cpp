#include "core/profiled_ranges.hpp"

#include <algorithm>
#include <cmath>

namespace luis::core {
namespace {

vra::Interval widened(double lo, double hi, double margin) {
  const double mag = std::max({std::abs(lo), std::abs(hi), 1e-6});
  return {lo - margin * mag, hi + margin * mag};
}

} // namespace

vra::RangeMap ranges_from_profile(const ir::Function& f,
                                  const interp::RunResult& profile,
                                  double margin) {
  vra::RangeMap map;
  for (const auto& arr : f.arrays()) {
    const auto it = profile.array_ranges.find(arr->name());
    if (it != profile.array_ranges.end())
      map.set(arr.get(), widened(it->second.first, it->second.second, margin));
  }
  for (const auto& [inst, range] : profile.register_ranges)
    map.set(inst, widened(range.first, range.second, margin));
  return map;
}

vra::RangeMap profile_ranges(const ir::Function& f,
                             const interp::ArrayStore& inputs, double margin,
                             std::string* error,
                             const interp::ExecutionEngine* engine) {
  interp::ArrayStore store = inputs;
  interp::TypeAssignment binary64;
  interp::RunOptions opt;
  opt.track_array_ranges = true;
  opt.track_register_ranges = true;
  opt.count_costs = false;
  const interp::RunResult run = engine ? engine->run(f, binary64, store, opt)
                                       : run_function(f, binary64, store, opt);
  if (!run.ok) {
    if (error) *error = run.error;
    return {};
  }
  return ranges_from_profile(f, run, margin);
}

} // namespace luis::core
