#include "core/sweep.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <thread>

#include "core/assignment_io.hpp"
#include "interp/interpreter.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "platform/cost_model.hpp"
#include "polybench/polybench.hpp"
#include "support/diag.hpp"
#include "support/json.hpp"
#include "support/statistics.hpp"
#include "support/string_utils.hpp"
#include "support/thread_pool.hpp"

namespace luis::core {
namespace {

TuningConfig config_by_name(const std::string& name, long max_nodes) {
  TuningConfig c;
  if (name == "Precise")
    c = TuningConfig::precise();
  else if (name == "Balanced")
    c = TuningConfig::balanced();
  else if (name == "Fast")
    c = TuningConfig::fast();
  else if (name == "Multi")
    c = TuningConfig::multi();
  else
    LUIS_FATAL("unknown sweep config " + name);
  c.solver.max_nodes = max_nodes;
  return c;
}

/// MPE across all output arrays (concatenated, as PolyBench dumps them).
double kernel_mpe(const std::vector<std::string>& outputs,
                  const interp::ArrayStore& reference,
                  const interp::ArrayStore& tuned) {
  std::vector<double> ref, out;
  for (const std::string& name : outputs) {
    const auto& r = reference.at(name);
    const auto& t = tuned.at(name);
    ref.insert(ref.end(), r.begin(), r.end());
    out.insert(out.end(), t.begin(), t.end());
  }
  return mean_percentage_error(ref, out);
}

/// Everything a tuning job needs from its kernel, produced once per
/// kernel and read-only afterwards. Jobs re-parse `ir_text` into a
/// private Module instead of sharing the Function (the pipeline interns
/// constants on it).
struct KernelContext {
  std::string name;
  bool ok = false;
  std::string error;
  std::string ir_text;
  interp::ArrayStore inputs;
  std::vector<std::string> outputs;
  interp::ArrayStore reference;       ///< all-binary64 outputs
  interp::CostCounters base_counters; ///< all-binary64 execution profile
  // Interpretation time of the baseline run (not attached to any job row;
  // folded into the sweep's stage totals).
  double base_compile_seconds = 0.0;
  double base_execute_seconds = 0.0;
  // TAFFO greedy baseline — platform-blind, so computed once and priced
  // per platform when the job slots are filled.
  bool taffo_ok = false;
  std::string taffo_error;
  StageTimings taffo_timings;
  AllocationStats taffo_stats;
  std::string taffo_assignment;
  interp::CostCounters taffo_counters;
  double taffo_mpe = 0.0;
};

void prepare_kernel(KernelContext& ctx, bool include_taffo,
                    const vra::VraOptions& vra_options,
                    const interp::ExecutionEngine& engine) {
  ir::Module module;
  polybench::BuiltKernel kernel = polybench::build_kernel(ctx.name, module);
  ctx.inputs = kernel.inputs;
  ctx.outputs = kernel.outputs;

  ctx.reference = kernel.inputs;
  interp::TypeAssignment binary64;
  const interp::RunResult base =
      engine.run(*kernel.function, binary64, ctx.reference);
  ctx.base_compile_seconds = base.compile_seconds;
  ctx.base_execute_seconds = base.execute_seconds;
  if (!base.ok) {
    ctx.error = ctx.name + " baseline failed: " + base.error;
    return;
  }
  ctx.base_counters = base.counters;
  ctx.ir_text = ir::print_function(*kernel.function);

  if (include_taffo) {
    PipelineOptions popt;
    popt.allocator = AllocatorKind::Greedy;
    popt.vra = vra_options;
    const PipelineResult tuned =
        tune_kernel(*kernel.function,
                    platform::stm32_table(), // unused by greedy
                    TuningConfig::balanced(), popt);
    ctx.taffo_timings = tuned.timings;
    ctx.taffo_stats = tuned.allocation.stats;
    ctx.taffo_assignment =
        assignment_to_text(*kernel.function, tuned.allocation.assignment);
    interp::ArrayStore out = kernel.inputs;
    const interp::RunResult run =
        engine.run(*kernel.function, tuned.allocation.assignment, out);
    ctx.taffo_timings.interp_compile_seconds += run.compile_seconds;
    ctx.taffo_timings.interp_execute_seconds += run.execute_seconds;
    if (!run.ok) {
      ctx.taffo_error = ctx.name + " TAFFO run failed: " + run.error;
    } else {
      ctx.taffo_ok = true;
      ctx.taffo_counters = run.counters;
      ctx.taffo_mpe = kernel_mpe(ctx.outputs, ctx.reference, out);
    }
  }
  ctx.ok = true;
}

/// Copies a finished shadow-execution profile's telemetry into a job row.
/// Max deviations scan every per-pc and per-phi-move cell — the same
/// accumulators the per-line error report aggregates.
void fold_error_profile(const interp::ErrorProfile& ep, SweepJobResult& out) {
  out.errors_profiled = true;
  out.shadow_mpe = ep.program_mpe;
  out.control_divergences = ep.control_divergences;
  out.max_abs_error = 0.0;
  out.max_rel_error = 0.0;
  const auto fold = [&](const interp::ErrorCell& c) {
    out.max_abs_error = std::max(out.max_abs_error, c.max_abs);
    out.max_rel_error = std::max(out.max_rel_error, c.max_rel);
  };
  for (const interp::ErrorCell& c : ep.instr) fold(c);
  for (const interp::ErrorCell& c : ep.moves) fold(c);
}

/// Tunes one (kernel, config, platform) job on a private clone of the
/// kernel. With `execute` the tuned kernel is also interpreted for the
/// speedup/MPE metrics; the determinism re-check skips that (the
/// assignment fully determines the execution).
void run_ilp_job(const KernelContext& ctx, const platform::OpTimeTable& table,
                 const SweepOptions& opt, ilp::SolverCache* cache,
                 const interp::ExecutionEngine& engine, bool execute,
                 SweepJobResult& out) {
  ir::Module module;
  const ir::ParseResult parsed = ir::parse_function(module, ctx.ir_text);
  LUIS_ASSERT(parsed.ok(),
              ("sweep: kernel IR re-parse failed: " + parsed.error).c_str());
  ir::Function& f = *parsed.function;

  TuningConfig config = config_by_name(out.config, opt.solver_max_nodes);
  config.solver.cache = cache;
  // Neighboring presets (same kernel/platform structure, different
  // objective weights) reuse each other's root bases — but only when the
  // solve order is deterministic, i.e. an explicitly serial sweep. Under
  // parallelism the pool's contents depend on job completion order, which
  // would break the parallel == serial bit-identity guarantee.
  config.solver.share_basis = cache != nullptr && opt.threads == 1;
  PipelineOptions popt;
  popt.vra = opt.vra;
  const PipelineResult tuned = tune_kernel(f, table, config, popt);
  out.timings = tuned.timings;
  out.stats = tuned.allocation.stats;
  out.assignment_text = assignment_to_text(f, tuned.allocation.assignment);

  if (execute) {
    interp::ArrayStore store = ctx.inputs;
    interp::ErrorProfile errors;
    interp::RunOptions ropt;
    if (opt.errors) ropt.error_profile = &errors;
    const interp::RunResult run =
        engine.run(f, tuned.allocation.assignment, store, ropt);
    out.timings.interp_compile_seconds = run.compile_seconds;
    out.timings.interp_execute_seconds = run.execute_seconds;
    if (!run.ok) {
      out.error = ctx.name + "/" + out.config + " run failed: " + run.error;
      return;
    }
    const double t_base = platform::simulated_time(ctx.base_counters, table);
    out.speedup_percent = platform::speedup_percent(
        t_base, platform::simulated_time(run.counters, table));
    out.mpe = kernel_mpe(ctx.outputs, ctx.reference, store);
    if (opt.errors && errors.finalized) fold_error_profile(errors, out);
  }
  out.ok = true;
}

void write_timings(JsonWriter& w, const StageTimings& t) {
  w.begin_object();
  w.key("ir_seconds");
  w.value(t.ir_seconds, "%.6g");
  w.key("vra_seconds");
  w.value(t.vra_seconds, "%.6g");
  w.key("allocation_seconds");
  w.value(t.allocation_seconds, "%.6g");
  w.key("model_build_seconds");
  w.value(t.model_build_seconds, "%.6g");
  w.key("solve_seconds");
  w.value(t.solve_seconds, "%.6g");
  w.key("materialize_seconds");
  w.value(t.materialize_seconds, "%.6g");
  w.key("error_seconds");
  w.value(t.error_seconds, "%.6g");
  w.key("lint_seconds");
  w.value(t.lint_seconds, "%.6g");
  w.key("interp_compile_seconds");
  w.value(t.interp_compile_seconds, "%.6g");
  w.key("interp_execute_seconds");
  w.value(t.interp_execute_seconds, "%.6g");
  w.key("total_seconds");
  w.value(t.total_seconds, "%.6g");
  w.end_object();
}

void write_cache_stats(JsonWriter& w, long lookups, long hits, long insertions,
                       double hit_rate) {
  w.begin_object();
  w.key("lookups");
  w.value(lookups);
  w.key("hits");
  w.value(hits);
  w.key("insertions");
  w.value(insertions);
  w.key("hit_rate");
  w.value(hit_rate, "%.4f");
  w.end_object();
}

} // namespace

SweepResult run_sweep(const SweepOptions& options) {
  obs::TraceSpan sweep_span("sweep.run", "sweep");
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<std::string> kernels = options.kernels;
  if (kernels.empty())
    kernels.assign(polybench::kernel_names().begin(),
                   polybench::kernel_names().end());
  for (const std::string& k : kernels) {
    const auto names = polybench::kernel_names();
    if (std::find(names.begin(), names.end(), k) == names.end())
      LUIS_FATAL("unknown kernel " + k);
  }
  std::vector<std::string> configs = options.configs;
  if (configs.empty()) configs = {"Precise", "Balanced", "Fast"};
  for (const std::string& c : configs)
    (void)config_by_name(c, 1); // validates the name
  std::vector<std::string> platforms = options.platforms;
  if (platforms.empty()) platforms = {"Stm32", "Raspberry", "Intel", "AMD"};
  std::vector<const platform::OpTimeTable*> tables;
  for (const std::string& p : platforms) {
    const platform::OpTimeTable* table = platform::platform_by_name(p);
    LUIS_ASSERT(table != nullptr, ("unknown platform " + p).c_str());
    tables.push_back(table);
  }

  int threads = options.threads;
  if (threads <= 0)
    threads = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));

  ilp::SolverCache cache;
  ilp::SolverCache* cache_ptr = options.use_cache ? &cache : nullptr;

  const std::optional<interp::EngineKind> engine_kind =
      interp::parse_engine(options.engine);
  if (!engine_kind) LUIS_FATAL("unknown engine " + options.engine);
  // The program cache rides the same switch as the solver cache:
  // use_cache=false must mean no shared state between jobs at all.
  interp::ProgramCache program_cache;
  const std::unique_ptr<interp::ExecutionEngine> engine = interp::make_engine(
      *engine_kind, options.use_cache ? &program_cache : nullptr);

  // Phase 1: per-kernel setup (build, binary64 reference, IR rendering,
  // TAFFO baseline), parallel over kernels.
  const LogLevel progress_level =
      options.verbose ? LogLevel::Info : LogLevel::Debug;
  std::vector<KernelContext> contexts(kernels.size());
  for (std::size_t i = 0; i < kernels.size(); ++i) contexts[i].name = kernels[i];
  {
    obs::TraceSpan phase("sweep.prepare", "sweep", [&] {
      return obs::Args().num("kernels", kernels.size()).done();
    });
    support::parallel_for(contexts.size(), threads, [&](std::size_t i) {
      obs::TraceSpan span("sweep.prepare_kernel", "sweep", [&] {
        return obs::Args().str("kernel", contexts[i].name).done();
      });
      prepare_kernel(contexts[i], options.include_taffo, options.vra, *engine);
      LUIS_LOG(progress_level, "[sweep] " + contexts[i].name + " prepared");
    });
  }

  // Job slots in their fixed kernel-major order.
  SweepResult result;
  std::vector<std::size_t> ilp_jobs;      // indices into result.jobs
  std::vector<const KernelContext*> ctx_of; // parallel to result.jobs
  std::vector<const platform::OpTimeTable*> table_of;
  for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
    for (std::size_t pi = 0; pi < platforms.size(); ++pi) {
      for (const std::string& config : configs) {
        SweepJobResult job;
        job.kernel = kernels[ki];
        job.config = config;
        job.platform = platforms[pi];
        job.engine = engine->name();
        ilp_jobs.push_back(result.jobs.size());
        result.jobs.push_back(std::move(job));
        ctx_of.push_back(&contexts[ki]);
        table_of.push_back(tables[pi]);
      }
      if (options.include_taffo) {
        SweepJobResult job;
        job.kernel = kernels[ki];
        job.config = "TAFFO";
        job.platform = platforms[pi];
        job.engine = engine->name();
        const KernelContext& ctx = contexts[ki];
        if (!ctx.ok) {
          job.error = ctx.error;
        } else if (!ctx.taffo_ok) {
          job.error = ctx.taffo_error;
        } else {
          job.ok = true;
          job.timings = ctx.taffo_timings;
          job.stats = ctx.taffo_stats;
          job.assignment_text = ctx.taffo_assignment;
          const double t_base =
              platform::simulated_time(ctx.base_counters, *tables[pi]);
          job.speedup_percent = platform::speedup_percent(
              t_base, platform::simulated_time(ctx.taffo_counters, *tables[pi]));
          job.mpe = ctx.taffo_mpe;
        }
        result.jobs.push_back(std::move(job));
        ctx_of.push_back(&contexts[ki]);
        table_of.push_back(tables[pi]);
      }
    }
  }

  // Phase 2: the ILP jobs, parallel over (kernel x platform x config).
  // With batching on, jobs only tune here; the interpretation runs in the
  // batched phase below.
  {
    obs::TraceSpan phase("sweep.jobs", "sweep", [&] {
      return obs::Args().num("jobs", ilp_jobs.size()).done();
    });
    support::parallel_for(ilp_jobs.size(), threads, [&](std::size_t i) {
      const std::size_t j = ilp_jobs[i];
      SweepJobResult& job = result.jobs[j];
      const KernelContext& ctx = *ctx_of[j];
      if (!ctx.ok) {
        job.error = ctx.error;
        return;
      }
      obs::TraceSpan span("sweep.job", "sweep", [&] {
        return obs::Args()
            .str("kernel", job.kernel)
            .str("config", job.config)
            .str("platform", job.platform)
            .done();
      });
      run_ilp_job(ctx, *table_of[j], options, cache_ptr, *engine,
                  /*execute=*/!options.batch, job);
      LUIS_LOG(progress_level, "[sweep] " + job.kernel + "/" + job.config +
                                   "/" + job.platform +
                                   (job.ok ? " ok" : " FAILED"));
    });
  }

  // Phase 2b (batch mode): execute each kernel's tuned assignments as
  // lanes of one batched engine run. Duplicate assignments — presets that
  // converged to the same allocation, or the same preset across platforms
  // (tuning is platform-specific but often agrees) — collapse into one
  // lane; every job sharing a lane reads that lane's counters and store.
  // Speedup/MPE come out bit-identical to the scalar path because the
  // batched VM is bit-identical per lane.
  if (options.batch) {
    obs::TraceSpan phase("sweep.batch_execute", "sweep", [&] {
      return obs::Args().num("kernels", kernels.size()).done();
    });
    std::vector<std::array<long, 3>> per_kernel(kernels.size(),
                                                {0, 0, 0}); // runs/lanes/unique
    support::parallel_for(kernels.size(), threads, [&](std::size_t ki) {
      const KernelContext& ctx = contexts[ki];
      if (!ctx.ok) return;
      std::vector<std::size_t> kernel_jobs;
      for (const std::size_t j : ilp_jobs)
        if (ctx_of[j] == &contexts[ki] && result.jobs[j].ok)
          kernel_jobs.push_back(j);
      if (kernel_jobs.empty()) return;

      ir::Module module;
      const ir::ParseResult parsed = ir::parse_function(module, ctx.ir_text);
      LUIS_ASSERT(parsed.ok(),
                  ("sweep: kernel IR re-parse failed: " + parsed.error).c_str());
      ir::Function& f = *parsed.function;

      // Dedup the tuned assignments into unique lanes.
      std::vector<std::string> lane_texts;
      std::vector<interp::TypeAssignment> lane_types;
      std::vector<int> lane_shares;
      std::vector<std::size_t> lane_of(kernel_jobs.size());
      for (std::size_t k = 0; k < kernel_jobs.size(); ++k) {
        const std::string& text =
            result.jobs[kernel_jobs[k]].assignment_text;
        const auto it =
            std::find(lane_texts.begin(), lane_texts.end(), text);
        if (it != lane_texts.end()) {
          lane_of[k] = static_cast<std::size_t>(it - lane_texts.begin());
          ++lane_shares[lane_of[k]];
          continue;
        }
        const AssignmentParseResult reloaded = assignment_from_text(f, text);
        LUIS_ASSERT(reloaded.ok(),
                    ("sweep: tuned assignment does not reload: " +
                     reloaded.error)
                        .c_str());
        lane_of[k] = lane_texts.size();
        lane_texts.push_back(text);
        lane_types.push_back(reloaded.assignment);
        lane_shares.push_back(1);
      }

      std::vector<interp::ArrayStore> lane_stores(lane_types.size(),
                                                  ctx.inputs);
      std::vector<interp::ErrorProfile> lane_errors(
          options.errors ? lane_types.size() : 0);
      std::vector<interp::BatchRequest> requests(lane_types.size());
      for (std::size_t l = 0; l < lane_types.size(); ++l)
        requests[l] = {&lane_types[l], &lane_stores[l], nullptr,
                       options.errors ? &lane_errors[l] : nullptr};
      const std::vector<interp::RunResult> runs =
          engine->run_batch(f, requests, {});
      per_kernel[ki] = {1, static_cast<long>(kernel_jobs.size()),
                        static_cast<long>(lane_types.size())};

      for (std::size_t k = 0; k < kernel_jobs.size(); ++k) {
        SweepJobResult& job = result.jobs[kernel_jobs[k]];
        const interp::RunResult& run = runs[lane_of[k]];
        // Lane costs are shared by every job the lane serves, so the
        // stage totals still sum to the wall-clock actually spent.
        const double share =
            static_cast<double>(lane_shares[lane_of[k]]);
        job.timings.interp_compile_seconds = run.compile_seconds / share;
        job.timings.interp_execute_seconds = run.execute_seconds / share;
        if (!run.ok) {
          job.ok = false;
          job.error =
              ctx.name + "/" + job.config + " run failed: " + run.error;
          continue;
        }
        const double t_base = platform::simulated_time(
            ctx.base_counters, *table_of[kernel_jobs[k]]);
        job.speedup_percent = platform::speedup_percent(
            t_base,
            platform::simulated_time(run.counters,
                                     *table_of[kernel_jobs[k]]));
        job.mpe = kernel_mpe(ctx.outputs, ctx.reference,
                             lane_stores[lane_of[k]]);
        // Jobs sharing a lane share that lane's shadow profile — the
        // assignment fully determines the deviations.
        if (options.errors && lane_errors[lane_of[k]].finalized)
          fold_error_profile(lane_errors[lane_of[k]], job);
      }
      LUIS_LOG(progress_level,
               "[sweep] " + ctx.name + " batch-executed " +
                   std::to_string(lane_types.size()) + " lanes for " +
                   std::to_string(kernel_jobs.size()) + " jobs");
    });
    for (const auto& [r, l, u] : per_kernel) {
      result.stats.batch_runs += r;
      result.stats.batch_lanes += l;
      result.stats.batch_unique_lanes += u;
    }
  }

  // Determinism check: serially re-tune every ILP job and compare. The
  // re-solves hit the shared cache (same canonical model), so this is
  // cheap — and it is what proves a parallel sweep computed exactly what
  // the serial path would have.
  if (options.check_determinism) {
    obs::TraceSpan phase("sweep.determinism_check", "sweep");
    int mismatches = 0;
    for (const std::size_t j : ilp_jobs) {
      const SweepJobResult& job = result.jobs[j];
      const KernelContext& ctx = *ctx_of[j];
      if (!ctx.ok) continue;
      SweepJobResult redo;
      redo.kernel = job.kernel;
      redo.config = job.config;
      redo.platform = job.platform;
      run_ilp_job(ctx, *table_of[j], options, cache_ptr, *engine,
                  /*execute=*/false, redo);
      const bool same = redo.assignment_text == job.assignment_text &&
                        redo.stats.objective == job.stats.objective &&
                        redo.stats.status == job.stats.status;
      if (!same) {
        ++mismatches;
        // A mismatch is a real defect, not progress chatter: always warn.
        LUIS_LOG_WARN("[sweep] determinism MISMATCH " + job.kernel + "/" +
                      job.config + "/" + job.platform);
      }
    }
    result.stats.determinism_mismatches = mismatches;
  }

  result.stats.jobs = static_cast<int>(result.jobs.size());
  result.stats.threads = threads;
  for (const SweepJobResult& job : result.jobs) {
    if (!job.ok) ++result.stats.failed;
    result.stats.stage_totals += job.timings;
    result.stats.solver_nodes += job.stats.nodes;
    result.stats.solver_iterations += job.stats.iterations;
  }
  // Baseline (binary64 reference) interpretation time belongs to the sweep
  // but to no job row; fold it into the totals here.
  for (const KernelContext& ctx : contexts) {
    result.stats.stage_totals.interp_compile_seconds += ctx.base_compile_seconds;
    result.stats.stage_totals.interp_execute_seconds += ctx.base_execute_seconds;
  }
  result.stats.engine = engine->name();
  result.stats.vra = options.vra;
  if (cache_ptr) result.stats.cache = cache_ptr->stats();
  result.stats.program_cache = program_cache.stats();
  result.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  obs::metrics().counter("sweep.runs").inc();
  obs::metrics().counter("sweep.jobs").inc(result.stats.jobs);
  obs::metrics().counter("sweep.failed_jobs").inc(result.stats.failed);
  obs::metrics().set_gauge("sweep.last_wall_seconds",
                           result.stats.wall_seconds);
  if (options.errors) {
    // Per-job error telemetry into the registry: the MPE/deviation
    // distributions across the grid, plus the divergence total.
    long profiled = 0, divergences = 0;
    for (const SweepJobResult& job : result.jobs) {
      if (!job.errors_profiled) continue;
      ++profiled;
      divergences += job.control_divergences;
      obs::metrics().histogram("sweep.shadow_mpe").observe(job.shadow_mpe);
      obs::metrics().histogram("sweep.max_rel_error")
          .observe(job.max_rel_error);
    }
    obs::metrics().counter("sweep.error_profiled_jobs").inc(profiled);
    obs::metrics().counter("sweep.control_divergences").inc(divergences);
  }
  return result;
}

std::string sweep_summary_text(const SweepResult& result) {
  const SweepStats& s = result.stats;
  std::string out;
  out += format_string("jobs: %d (%d failed), %d thread%s, %.2f s wall\n",
                       s.jobs, s.failed, s.threads, s.threads == 1 ? "" : "s",
                       s.wall_seconds);
  const StageTimings& t = s.stage_totals;
  out += format_string("stage totals: ir %.2fs | vra %.2fs | alloc %.2fs "
                       "(build %.2fs, solve %.2fs) | materialize %.2fs | "
                       "lint %.2fs\n",
                       t.ir_seconds, t.vra_seconds, t.allocation_seconds,
                       t.model_build_seconds, t.solve_seconds,
                       t.materialize_seconds, t.lint_seconds);
  out += format_string("engine: %s; interpretation: compile %.2fs | "
                       "execute %.2fs\n",
                       s.engine.c_str(), t.interp_compile_seconds,
                       t.interp_execute_seconds);
  if (s.batch_runs > 0)
    out += format_string("batched execution: %ld kernel batches served %ld "
                         "job lanes (%ld unique assignments)\n",
                         s.batch_runs, s.batch_lanes, s.batch_unique_lanes);
  out += format_string("solver: %ld nodes, %ld simplex iterations\n",
                       s.solver_nodes, s.solver_iterations);
  out += format_string("cache: %ld lookups, %ld hits (%.1f%%)\n",
                       s.cache.lookups, s.cache.hits,
                       100.0 * s.cache.hit_rate());
  out += format_string("program cache: %ld lookups, %ld hits (%.1f%%)\n",
                       s.program_cache.lookups, s.program_cache.hits,
                       100.0 * s.program_cache.hit_rate());
  {
    long profiled = 0, divergences = 0;
    double worst_rel = 0.0;
    for (const SweepJobResult& job : result.jobs) {
      if (!job.errors_profiled) continue;
      ++profiled;
      divergences += job.control_divergences;
      worst_rel = std::max(worst_rel, job.max_rel_error);
    }
    if (profiled > 0)
      out += format_string("error profiling: %ld jobs shadow-executed, "
                           "worst rel deviation %.4g, %ld control "
                           "divergence(s)\n",
                           profiled, worst_rel, divergences);
  }
  if (s.determinism_mismatches < 0)
    out += "determinism check: skipped\n";
  else if (s.determinism_mismatches == 0)
    out += "determinism check: PASS (serial re-tune reproduced every job)\n";
  else
    out += format_string("determinism check: FAIL (%d mismatching jobs)\n",
                         s.determinism_mismatches);
  return out;
}

std::string sweep_report_json(const SweepResult& result) {
  JsonWriter w;
  w.begin_object();
  w.newline();
  w.key("build");
  w.raw_value(obs::build_info_json());
  w.newline();
  w.key("jobs");
  w.begin_array();
  w.newline();
  for (const SweepJobResult& job : result.jobs) {
    w.begin_object();
    w.key("kernel");
    w.value(job.kernel);
    w.key("config");
    w.value(job.config);
    w.key("platform");
    w.value(job.platform);
    w.key("engine");
    w.value(job.engine);
    w.key("ok");
    w.value(job.ok);
    w.key("speedup_percent");
    w.value(job.speedup_percent, "%.6g");
    w.key("mpe");
    w.value(job.mpe, "%.6g");
    if (job.errors_profiled) {
      w.key("shadow_mpe");
      w.value(job.shadow_mpe, "%.6g");
      w.key("max_abs_error");
      w.value(job.max_abs_error, "%.6g");
      w.key("max_rel_error");
      w.value(job.max_rel_error, "%.6g");
      w.key("control_divergences");
      w.value(job.control_divergences);
    }
    w.key("status");
    w.value(ilp::to_string(job.stats.status));
    w.key("objective");
    w.value(job.stats.objective, "%.17g");
    w.key("nodes");
    w.value(job.stats.nodes);
    w.key("iterations");
    w.value(job.stats.iterations);
    w.key("model_variables");
    w.value(job.stats.model_variables);
    w.key("model_constraints");
    w.value(job.stats.model_constraints);
    w.key("timings");
    write_timings(w, job.timings);
    w.end_object();
    w.newline();
  }
  w.end_array();
  w.newline();
  const SweepStats& s = result.stats;
  w.key("summary");
  w.begin_object();
  w.key("jobs");
  w.value(s.jobs);
  w.key("failed");
  w.value(s.failed);
  w.key("threads");
  w.value(s.threads);
  w.key("wall_seconds");
  w.value(s.wall_seconds, "%.6g");
  w.key("solver_nodes");
  w.value(s.solver_nodes);
  w.key("solver_iterations");
  w.value(s.solver_iterations);
  w.key("cache");
  write_cache_stats(w, s.cache.lookups, s.cache.hits, s.cache.insertions,
                    s.cache.hit_rate());
  w.key("engine");
  w.value(s.engine);
  w.key("vra");
  w.begin_object();
  w.key("max_passes");
  w.value(s.vra.max_passes);
  w.key("widen_after");
  w.value(s.vra.widen_after);
  w.key("clamp");
  w.value(s.vra.clamp, "%.17g");
  w.key("join_stores");
  w.value(s.vra.join_stores);
  w.end_object();
  w.key("program_cache");
  write_cache_stats(w, s.program_cache.lookups, s.program_cache.hits,
                    s.program_cache.insertions, s.program_cache.hit_rate());
  w.key("batch");
  w.begin_object();
  w.key("runs");
  w.value(s.batch_runs);
  w.key("lanes");
  w.value(s.batch_lanes);
  w.key("unique_lanes");
  w.value(s.batch_unique_lanes);
  w.end_object();
  w.key("determinism_mismatches");
  w.value(s.determinism_mismatches);
  w.key("stage_totals");
  write_timings(w, s.stage_totals);
  w.end_object();
  w.newline();
  w.end_object();
  w.newline();
  return w.take();
}

} // namespace luis::core
