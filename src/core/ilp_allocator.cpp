#include "core/ilp_allocator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/type_classes.hpp"
#include "ilp/branch_and_bound.hpp"
#include "interp/interpreter.hpp"
#include "numrep/iebw.hpp"
#include "numrep/posit.hpp"
#include "numrep/registry.hpp"
#include "numrep/soft_float.hpp"
#include "support/diag.hpp"

namespace luis::core {

using interp::cost_class;
using numrep::ConcreteType;
using numrep::NumericFormat;

namespace {

/// Big-M for the fractional-bit coupling constraints: z never exceeds the
/// widest supported fixed point word.
constexpr double kBigM = 64.0;

const char* model_op_name(ir::Opcode op) {
  switch (op) {
  case ir::Opcode::Add: return "add";
  case ir::Opcode::Sub: return "sub";
  case ir::Opcode::Mul: return "mul";
  case ir::Opcode::Div: return "div";
  case ir::Opcode::Rem: return "rem";
  case ir::Opcode::Neg: return "neg";
  case ir::Opcode::Abs: return "abs";
  case ir::Opcode::Sqrt: return "sqrt";
  case ir::Opcode::Exp: return "exp";
  case ir::Opcode::Pow: return "pow";
  case ir::Opcode::Min: return "min";
  case ir::Opcode::Max: return "max";
  default: LUIS_UNREACHABLE("not tunable arithmetic");
  }
}

std::string class_of_format(const NumericFormat& fmt) {
  return cost_class(ConcreteType{fmt, 0});
}

/// True if `fmt` can hold every value of `range`, as judged by the
/// format's registered policy (fixed point: a nonnegative fractional bit
/// count exists; floats and fixed-posits: executable and within the
/// finite range; posits: always, by saturation).
bool format_feasible(const NumericFormat& fmt, const vra::Interval& range) {
  return numrep::format_ops(fmt).feasible(fmt, range.lo, range.hi);
}

} // namespace

AllocationResult allocate_ilp(const ir::Function& f, const vra::RangeMap& ranges,
                              const platform::OpTimeTable& table,
                              const TuningConfig& config) {
  AllocationResult out;
  const auto t_build = std::chrono::steady_clock::now();
  const TypeClasses classes = compute_type_classes(f);
  const auto& types = config.types;
  const int ntypes = static_cast<int>(types.size());
  LUIS_ASSERT(ntypes > 0, "empty candidate type set");
  const bool literal = config.literal_model;

  out.stats.num_registers = static_cast<int>(classes.registers.size());
  out.stats.num_classes = classes.num_classes();
  out.stats.num_uses = static_cast<int>(classes.uses.size());

  // A model *unit* carries one set of x variables: a type class in the
  // merged formulation, an individual virtual register in the literal one.
  std::map<const ir::Value*, int> reg_index;
  for (std::size_t i = 0; i < classes.registers.size(); ++i)
    reg_index[classes.registers[i]] = static_cast<int>(i);
  const int num_units =
      literal ? static_cast<int>(classes.registers.size()) : classes.num_classes();
  auto unit_of = [&](const ir::Value* v) {
    return literal ? reg_index.at(v) : classes.class_of.at(v);
  };

  // Cost pricing: op-time for the paper's model, op-energy for the
  // Section VI extension.
  auto priced = [&](const std::string& op, const std::string& type_class) {
    return config.metric == CostMetric::Time
               ? table.op_time(op, type_class)
               : platform::op_energy(table, op, type_class, config.power);
  };
  auto priced_cast = [&](const std::string& from, const std::string& to) {
    return priced("cast_" + from, to);
  };

  // ---- Type feasibility (always judged class-wide so that same-type
  // webs agree on the candidate set). ----
  std::vector<std::vector<bool>> class_feasible(
      static_cast<std::size_t>(classes.num_classes()),
      std::vector<bool>(static_cast<std::size_t>(ntypes), true));
  for (int c = 0; c < classes.num_classes(); ++c) {
    bool any = false;
    for (int ti = 0; ti < ntypes; ++ti) {
      bool ok = true;
      for (const ir::Value* v : classes.members[static_cast<std::size_t>(c)])
        ok = ok && format_feasible(types[static_cast<std::size_t>(ti)],
                                   ranges.of(v));
      class_feasible[static_cast<std::size_t>(c)][static_cast<std::size_t>(ti)] = ok;
      any = any || ok;
    }
    if (!any) {
      // Fall back to the widest float in the set (ranges beyond even
      // binary64 are clamped artifacts; binary64 is the sane default).
      int widest = 0;
      for (int ti = 1; ti < ntypes; ++ti)
        if (types[static_cast<std::size_t>(ti)].is_float() &&
            types[static_cast<std::size_t>(ti)].precision() >
                types[static_cast<std::size_t>(widest)].precision())
          widest = ti;
      class_feasible[static_cast<std::size_t>(c)][static_cast<std::size_t>(widest)] =
          true;
    }
  }
  auto unit_feasible = [&](int unit, int ti) {
    const int c = literal ? classes.class_of.at(
                                classes.registers[static_cast<std::size_t>(unit)])
                          : unit;
    return class_feasible[static_cast<std::size_t>(c)][static_cast<std::size_t>(ti)];
  };

  // ---- x variables and one-hot rows. ----
  ilp::Model model;
  std::vector<std::vector<ilp::VarId>> x(
      static_cast<std::size_t>(num_units),
      std::vector<ilp::VarId>(static_cast<std::size_t>(ntypes), -1));
  for (int u = 0; u < num_units; ++u) {
    ilp::LinearExpr one_hot;
    for (int ti = 0; ti < ntypes; ++ti) {
      if (!unit_feasible(u, ti)) continue;
      const ilp::VarId var = model.add_binary(
          "x_u" + std::to_string(u) + "_" +
          types[static_cast<std::size_t>(ti)].name());
      x[static_cast<std::size_t>(u)][static_cast<std::size_t>(ti)] = var;
      one_hot.add(var, 1.0);
    }
    model.add_eq(std::move(one_hot), 1.0, "onehot_u" + std::to_string(u));
  }

  // Literal formulation: the hard x_{a,t} = x_{b,t} rows the merged
  // formulation folds into the classes.
  if (literal) {
    for (const auto& [a, b] : classes.same_type_edges) {
      const int ua = unit_of(a), ub = unit_of(b);
      if (ua == ub) continue;
      for (int ti = 0; ti < ntypes; ++ti) {
        const ilp::VarId xa = x[static_cast<std::size_t>(ua)][static_cast<std::size_t>(ti)];
        const ilp::VarId xb = x[static_cast<std::size_t>(ub)][static_cast<std::size_t>(ti)];
        if (xa < 0 && xb < 0) continue;
        ilp::LinearExpr eq;
        if (xa >= 0) eq.add(xa, 1.0);
        if (xb >= 0) eq.add(xb, -1.0);
        model.add_eq(std::move(eq), 0.0);
      }
    }
  }

  // ---- z variables: fractional bits per (register, fixed type). ----
  std::vector<std::vector<ilp::VarId>> z(
      classes.registers.size(),
      std::vector<ilp::VarId>(static_cast<std::size_t>(ntypes), -1));
  for (std::size_t r = 0; r < classes.registers.size(); ++r) {
    const ir::Value* v = classes.registers[r];
    const int u = unit_of(v);
    for (int ti = 0; ti < ntypes; ++ti) {
      const NumericFormat& fmt = types[static_cast<std::size_t>(ti)];
      if (!fmt.is_fixed()) continue;
      const ilp::VarId xv =
          x[static_cast<std::size_t>(u)][static_cast<std::size_t>(ti)];
      if (xv < 0) continue;
      const vra::Interval range = ranges.of(v);
      const int fixmax = std::min(
          numrep::fixed_point_max_frac(fmt.width(), fmt.is_signed(), range.lo,
                                       range.hi),
          fmt.width() - 1);
      if (fixmax < 0) continue; // this member forbids the type class-wide
      const ilp::VarId zv = model.add_continuous(
          "z_r" + std::to_string(r) + "_" + fmt.name(), 0.0,
          static_cast<double>(fixmax));
      z[r][static_cast<std::size_t>(ti)] = zv;
      // z <= M * x : no fractional bits unless the type is chosen.
      model.add_le(ilp::LinearExpr().add(zv, 1.0).add(xv, -kBigM), 0.0);
    }
  }

  // ---- Ex: execution time of tunable arithmetic. ----
  ilp::LinearExpr ex;
  double ex_max = 0.0;
  for (const auto& bb : f.blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (!inst->is_tunable_arithmetic()) continue;
      const int u = unit_of(inst.get());
      const char* op = model_op_name(inst->opcode());
      double worst = 0.0;
      for (int ti = 0; ti < ntypes; ++ti) {
        const ilp::VarId xv =
            x[static_cast<std::size_t>(u)][static_cast<std::size_t>(ti)];
        if (xv < 0) continue;
        const double t =
            priced(op, class_of_format(types[static_cast<std::size_t>(ti)]));
        ex.add(xv, t);
        worst = std::max(worst, t);
      }
      ex_max += worst;
    }
  }

  // ---- C: cast cost. Aggregated per ordered unit pair (each use of the
  // same pair shares the y indicators, scaled by the use count); in the
  // literal formulation every unit is a register, so this degenerates to
  // the paper's per-use y variables. ----
  std::map<std::pair<int, int>, int> pair_count;
  for (const UseEdge& use : classes.uses) {
    // Uses inside one type class can never cast: the x equalities (folded
    // or explicit) force both ends onto the same type. Their indicators
    // would be dead variables and would inflate the C normalization.
    if (classes.class_of.at(use.used) == classes.class_of.at(use.user)) continue;
    ++pair_count[{unit_of(use.used), unit_of(use.user)}];
  }
  ilp::LinearExpr cast_cost;
  double cast_max = 0.0;
  for (const auto& [pair, count] : pair_count) {
    const auto [ua, ub] = pair;
    double worst = 0.0;
    for (int ta = 0; ta < ntypes; ++ta) {
      const ilp::VarId xa =
          x[static_cast<std::size_t>(ua)][static_cast<std::size_t>(ta)];
      if (xa < 0) continue;
      for (int tb = 0; tb < ntypes; ++tb) {
        const ilp::VarId xb =
            x[static_cast<std::size_t>(ub)][static_cast<std::size_t>(tb)];
        if (xb < 0) continue;
        if (types[static_cast<std::size_t>(ta)] ==
            types[static_cast<std::size_t>(tb)])
          continue; // same format: at most a shift realignment (Cfix)
        const double t =
            priced_cast(class_of_format(types[static_cast<std::size_t>(ta)]),
                        class_of_format(types[static_cast<std::size_t>(tb)]));
        const ilp::VarId y = model.add_continuous(
            "y_u" + std::to_string(ua) + "t" + std::to_string(ta) + "_u" +
                std::to_string(ub) + "t" + std::to_string(tb),
            0.0, 1.0);
        // x_a + x_b <= y + 1
        model.add_le(ilp::LinearExpr().add(xa, 1.0).add(xb, 1.0).add(y, -1.0),
                     1.0);
        cast_cost.add(y, static_cast<double>(count) * t);
        worst = std::max(worst, t);
      }
    }
    cast_max += static_cast<double>(count) * worst;
  }

  // ---- Cfix: fixed point realignment (shift) casts per use. ----
  ilp::LinearExpr fix_cost;
  double fix_max = 0.0;
  for (const UseEdge& use : classes.uses) {
    const int ra = reg_index.at(use.used);
    const int rb = reg_index.at(use.user);
    for (int ti = 0; ti < ntypes; ++ti) {
      const NumericFormat& fmt = types[static_cast<std::size_t>(ti)];
      if (!fmt.is_fixed()) continue;
      const ilp::VarId za = z[static_cast<std::size_t>(ra)][static_cast<std::size_t>(ti)];
      const ilp::VarId zb = z[static_cast<std::size_t>(rb)][static_cast<std::size_t>(ti)];
      if (za < 0 || zb < 0) continue;
      const double t = priced_cast("fix", "fix");
      const ilp::VarId y1 = model.add_continuous("yfix1", 0.0, 1.0);
      const ilp::VarId y2 = model.add_continuous("yfix2", 0.0, 1.0);
      model.add_le(ilp::LinearExpr().add(za, 1.0).add(zb, -1.0).add(y1, -kBigM), 0.0);
      model.add_le(ilp::LinearExpr().add(zb, 1.0).add(za, -1.0).add(y2, -kBigM), 0.0);
      fix_cost.add(y1, t);
      fix_cost.add(y2, t);
      fix_max += 2.0 * t;
    }
  }

  // ---- Err: total IEBW (maximized). ----
  ilp::LinearExpr err;
  double err_max = 0.0;
  for (std::size_t r = 0; r < classes.registers.size(); ++r) {
    const ir::Value* v = classes.registers[r];
    const int u = unit_of(v);
    const vra::Interval range = ranges.of(v);
    double best = 0.0;
    for (int ti = 0; ti < ntypes; ++ti) {
      const ilp::VarId xv =
          x[static_cast<std::size_t>(u)][static_cast<std::size_t>(ti)];
      if (xv < 0) continue;
      const NumericFormat& fmt = types[static_cast<std::size_t>(ti)];
      if (fmt.is_fixed()) {
        const ilp::VarId zv = z[r][static_cast<std::size_t>(ti)];
        if (zv >= 0) {
          err.add(zv, 1.0);
          best = std::max(best, model.variables()[static_cast<std::size_t>(zv)].upper);
        }
      } else {
        // Literal Definition 2: max IEBW over the interval, i.e. the
        // resolution at the smallest representable magnitude. This is
        // what makes wide floats dominate the Err term for ranges that
        // approach zero — and what reproduces the paper's Balanced
        // behaviour (Table V: mostly binary64 at W1 = W2).
        const double iebw = static_cast<double>(numrep::iebw_of_range_best_case(
            fmt, range.lo, range.hi, 0, config.err_zero_floor));
        err.add(xv, iebw);
        best = std::max(best, std::abs(iebw));
      }
    }
    err_max += best;
  }

  // ---- Objective: min W1 (Ex^ + C^ + Cfix^) - W2 Err^. ----
  const double exn = config.w1 / std::max(ex_max, 1.0);
  const double cn = config.w1 / std::max(cast_max, 1.0);
  const double fn = config.w1 / std::max(fix_max, 1.0);
  const double en = config.w2 / std::max(err_max, 1.0);
  ilp::LinearExpr objective;
  for (const auto& [var, coeff] : ex.terms()) objective.add(var, exn * coeff);
  for (const auto& [var, coeff] : cast_cost.terms()) objective.add(var, cn * coeff);
  for (const auto& [var, coeff] : fix_cost.terms()) objective.add(var, fn * coeff);
  for (const auto& [var, coeff] : err.terms()) objective.add(var, -en * coeff);
  model.set_objective(ilp::Direction::Minimize, std::move(objective));

  out.stats.model_variables = model.num_variables();
  out.stats.model_constraints = model.num_constraints();
  const auto t_solve = std::chrono::steady_clock::now();
  out.stats.model_build_seconds =
      std::chrono::duration<double>(t_solve - t_build).count();

  // ---- Solve. ----
  const ilp::Solution solution = ilp::solve_milp(model, config.solver);
  out.stats.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_solve)
          .count();
  out.stats.status = solution.status;
  out.stats.nodes = solution.nodes;
  out.stats.iterations = solution.iterations;
  out.stats.objective = solution.objective;

  const bool have_solution = solution.status == ilp::SolveStatus::Optimal ||
                             (solution.status == ilp::SolveStatus::NodeLimit &&
                              !solution.values.empty());

  // ---- Extract the assignment. ----
  std::vector<int> chosen(static_cast<std::size_t>(num_units), -1);
  for (int u = 0; u < num_units; ++u) {
    if (have_solution) {
      for (int ti = 0; ti < ntypes; ++ti) {
        const ilp::VarId xv =
            x[static_cast<std::size_t>(u)][static_cast<std::size_t>(ti)];
        if (xv >= 0 && solution.value(xv) > 0.5)
          chosen[static_cast<std::size_t>(u)] = ti;
      }
    }
    if (chosen[static_cast<std::size_t>(u)] < 0) {
      // Defensive fallback: binary64 (or the last feasible type).
      for (int ti = 0; ti < ntypes; ++ti)
        if (unit_feasible(u, ti) &&
            (chosen[static_cast<std::size_t>(u)] < 0 ||
             types[static_cast<std::size_t>(ti)] == numrep::kBinary64))
          chosen[static_cast<std::size_t>(u)] = ti;
    }
  }

  for (std::size_t r = 0; r < classes.registers.size(); ++r) {
    const ir::Value* v = classes.registers[r];
    const int ti = chosen[static_cast<std::size_t>(unit_of(v))];
    const NumericFormat& fmt = types[static_cast<std::size_t>(ti)];
    ConcreteType ct{fmt, 0};
    if (fmt.is_fixed()) {
      const ilp::VarId zv = z[r][static_cast<std::size_t>(ti)];
      int frac = 0;
      if (zv >= 0 && have_solution)
        frac = static_cast<int>(std::floor(solution.value(zv) + 1e-6));
      else if (zv >= 0)
        frac = static_cast<int>(model.variables()[static_cast<std::size_t>(zv)].upper);
      ct.frac_bits = std::clamp(frac, 0, fmt.width() - 1);
    }
    out.assignment.set(v, ct);
  }

  // ---- Instruction mix (Table V metric). ----
  for (const auto& bb : f.blocks())
    for (const auto& inst : bb->instructions())
      if (inst->is_tunable_arithmetic())
        ++out.stats.instruction_mix[cost_class(out.assignment.of(inst.get()))];

  return out;
}

} // namespace luis::core
