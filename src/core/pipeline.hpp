// The end-to-end LUIS tuning pipeline (Figure 1 of the paper):
//
//   annotated IR --VRA--> value ranges --Data Type Allocation--> ILP model
//   --solver--> type assignment --conversion--> tuned kernel
//
// The pipeline also exposes per-stage wall-clock timings, which the
// compilation-overhead experiment (Section V-B) consumes.
#pragma once

#include "analysis/lint.hpp"
#include "core/config.hpp"
#include "core/ilp_allocator.hpp"
#include "core/greedy_allocator.hpp"
#include "platform/optime.hpp"

namespace luis::core {

enum class AllocatorKind { Ilp, Greedy };

/// Opt-in precision lint over the pipeline's output (see analysis/lint.hpp):
/// Warn collects diagnostics for reporting only; Error additionally fails
/// the pipeline (PipelineResult::lint_ok) on error-severity findings.
enum class LintMode { Off, Warn, Error };

struct PipelineOptions {
  AllocatorKind allocator = AllocatorKind::Ilp;
  vra::VraOptions vra;
  /// Run the IR cleanup passes (constant folding, DCE, CFG simplification)
  /// before analysis — the position LUIS occupies after LLVM's pipeline.
  /// Mutates the IR; off by default so one build can be tuned repeatedly.
  bool optimize_ir = false;
  /// Insert explicit Cast instructions into the function after allocation
  /// (mutates the IR; off by default so one build can be tuned repeatedly).
  bool materialize_casts = false;
  /// Run the precision lint after allocation (and after cast
  /// materialization when that stage is enabled, so the casts are checked
  /// too).
  LintMode lint = LintMode::Off;
  analysis::LintOptions lint_options;
};

struct PipelineResult {
  AllocationResult allocation;
  vra::RangeMap ranges;
  int ir_changes = 0; ///< rewrites made by the optional cleanup passes
  double vra_seconds = 0.0;
  double allocation_seconds = 0.0; ///< model build + solve (or greedy scan)
  double total_seconds = 0.0;
  int casts_inserted = 0;
  /// Lint findings (empty when PipelineOptions::lint is Off).
  analysis::DiagnosticEngine lint;
  double lint_seconds = 0.0;
  /// False iff lint ran in Error mode and found error-severity diagnostics.
  bool lint_ok = true;
};

/// Runs the pipeline on `f`. The op-time table is only consulted by the
/// ILP allocator (the greedy baseline is cost-blind, as in stock TAFFO).
PipelineResult tune_kernel(ir::Function& f, const platform::OpTimeTable& table,
                           const TuningConfig& config,
                           const PipelineOptions& options = {});

} // namespace luis::core
