// The end-to-end LUIS tuning pipeline (Figure 1 of the paper):
//
//   annotated IR --VRA--> value ranges --Data Type Allocation--> ILP model
//   --solver--> type assignment --conversion--> tuned kernel
//
// The pipeline also exposes per-stage wall-clock timings, which the
// compilation-overhead experiment (Section V-B) consumes.
#pragma once

#include "analysis/error_bounds.hpp"
#include "analysis/lint.hpp"
#include "core/config.hpp"
#include "core/ilp_allocator.hpp"
#include "core/greedy_allocator.hpp"
#include "platform/optime.hpp"

namespace luis::core {

enum class AllocatorKind { Ilp, Greedy };

/// Opt-in precision lint over the pipeline's output (see analysis/lint.hpp):
/// Warn collects diagnostics for reporting only; Error additionally fails
/// the pipeline (PipelineResult::lint_ok) on error-severity findings.
enum class LintMode { Off, Warn, Error };

struct PipelineOptions {
  AllocatorKind allocator = AllocatorKind::Ilp;
  vra::VraOptions vra;
  /// Run the IR cleanup passes (constant folding, DCE, CFG simplification)
  /// before analysis — the position LUIS occupies after LLVM's pipeline.
  /// Mutates the IR; off by default so one build can be tuned repeatedly.
  bool optimize_ir = false;
  /// Insert explicit Cast instructions into the function after allocation
  /// (mutates the IR; off by default so one build can be tuned repeatedly).
  bool materialize_casts = false;
  /// Run the precision lint after allocation (and after cast
  /// materialization when that stage is enabled, so the casts are checked
  /// too).
  LintMode lint = LintMode::Off;
  analysis::LintOptions lint_options;
  /// Run the static error-bound analysis over the allocator's output
  /// (analysis/error_bounds.hpp). The certified bounds land in
  /// PipelineResult::errors and feed the error-aware lint rules
  /// (L008–L011) when the lint stage is also enabled.
  bool analyze_errors = false;
  analysis::ErrorBoundsOptions error_options;
};

/// Wall-clock seconds per pipeline stage. Each stage is measured from the
/// end of the previous one, so the stages are disjoint and their sum is
/// bounded by `total_seconds` (the sum can be slightly below the total —
/// bookkeeping between stages is not attributed to any of them).
struct StageTimings {
  double ir_seconds = 0.0;          ///< optional IR cleanup passes
  double vra_seconds = 0.0;         ///< value range analysis only
  double allocation_seconds = 0.0;  ///< model build + solve (or greedy scan)
  double materialize_seconds = 0.0; ///< cast materialization
  double error_seconds = 0.0;       ///< static error-bound analysis
  double lint_seconds = 0.0;        ///< precision lint (incl. range refresh)
  double total_seconds = 0.0;       ///< whole tune_kernel call
  /// Sub-stages of allocation, sourced from AllocationStats: ILP model
  /// construction vs. branch & bound solve. Greedy reports its scan as
  /// solve time. Both are contained in allocation_seconds, so they are
  /// excluded from stage_sum().
  double model_build_seconds = 0.0;
  double solve_seconds = 0.0;
  /// Interpretation time of the job's tuned-kernel execution, split by the
  /// engine into bytecode compilation (zero on the reference engine) and
  /// execution. Interpretation happens outside tune_kernel, so these are
  /// not part of stage_sum() or total_seconds.
  double interp_compile_seconds = 0.0;
  double interp_execute_seconds = 0.0;

  /// Sum of the disjoint top-level stages (always <= total_seconds).
  double stage_sum() const {
    return ir_seconds + vra_seconds + allocation_seconds +
           materialize_seconds + error_seconds + lint_seconds;
  }

  StageTimings& operator+=(const StageTimings& o) {
    ir_seconds += o.ir_seconds;
    vra_seconds += o.vra_seconds;
    allocation_seconds += o.allocation_seconds;
    materialize_seconds += o.materialize_seconds;
    error_seconds += o.error_seconds;
    lint_seconds += o.lint_seconds;
    total_seconds += o.total_seconds;
    model_build_seconds += o.model_build_seconds;
    solve_seconds += o.solve_seconds;
    interp_compile_seconds += o.interp_compile_seconds;
    interp_execute_seconds += o.interp_execute_seconds;
    return *this;
  }
};

struct PipelineResult {
  AllocationResult allocation;
  vra::RangeMap ranges;
  int ir_changes = 0; ///< rewrites made by the optional cleanup passes
  StageTimings timings;
  int casts_inserted = 0;
  /// Certified error bounds (empty unless PipelineOptions::analyze_errors).
  analysis::ErrorAnalysisResult errors;
  /// Lint findings (empty when PipelineOptions::lint is Off).
  analysis::DiagnosticEngine lint;
  /// False iff lint ran in Error mode and found error-severity diagnostics.
  bool lint_ok = true;
};

/// Runs the pipeline on `f`. The op-time table is only consulted by the
/// ILP allocator (the greedy baseline is cost-blind, as in stock TAFFO).
PipelineResult tune_kernel(ir::Function& f, const platform::OpTimeTable& table,
                           const TuningConfig& config,
                           const PipelineOptions& options = {});

} // namespace luis::core
