#include "core/type_classes.hpp"

#include "support/diag.hpp"
#include "support/union_find.hpp"

namespace luis::core {

using ir::Instruction;
using ir::Opcode;
using ir::ScalarType;

TypeClasses compute_type_classes(const ir::Function& f) {
  TypeClasses out;

  // Enumerate model registers: arrays first, then Real instructions.
  std::map<const ir::Value*, std::size_t> index;
  auto add_register = [&](const ir::Value* v) {
    if (index.count(v)) return;
    index[v] = out.registers.size();
    out.registers.push_back(v);
  };
  for (const auto& arr : f.arrays()) add_register(arr.get());
  for (const auto& bb : f.blocks())
    for (const auto& inst : bb->instructions())
      if (inst->type() == ScalarType::Real) add_register(inst.get());

  UnionFind uf(out.registers.size());
  auto merge = [&](const ir::Value* a, const ir::Value* b) {
    out.same_type_edges.emplace_back(a, b);
    uf.unite(index.at(a), index.at(b));
  };
  auto is_register = [&](const ir::Value* v) {
    return index.count(v) > 0; // Real instruction or array (not a constant)
  };

  for (const auto& bb : f.blocks()) {
    for (const auto& inst_ptr : bb->instructions()) {
      const Instruction* inst = inst_ptr.get();
      switch (inst->opcode()) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::Div:
      case Opcode::Rem: case Opcode::Pow: case Opcode::Min: case Opcode::Max:
      case Opcode::Neg: case Opcode::Abs: case Opcode::Sqrt: case Opcode::Exp:
        for (const ir::Value* op : inst->operands())
          if (is_register(op)) merge(inst, op);
        break;
      case Opcode::Phi:
        for (const ir::Value* op : inst->operands())
          if (inst->type() == ScalarType::Real && is_register(op))
            merge(inst, op);
        break;
      case Opcode::Select:
        if (inst->type() == ScalarType::Real) {
          if (is_register(inst->operand(1))) merge(inst, inst->operand(1));
          if (is_register(inst->operand(2))) merge(inst, inst->operand(2));
        }
        break;
      case Opcode::FCmp:
        // Operands must agree with each other (not with the bool result).
        if (is_register(inst->operand(0)) && is_register(inst->operand(1)))
          merge(inst->operand(0), inst->operand(1));
        break;
      case Opcode::Load:
        merge(inst, inst->operand(0)); // load result shares the array type
        break;
      case Opcode::Store:
      case Opcode::Cast:
      case Opcode::IntToReal:
        break; // representation change points / free result type
      default:
        break;
      }
    }
  }

  // Densify class ids.
  std::map<std::size_t, int> root_to_class;
  out.class_of.clear();
  for (std::size_t i = 0; i < out.registers.size(); ++i) {
    const std::size_t root = uf.find(i);
    const auto it = root_to_class.find(root);
    int cls;
    if (it == root_to_class.end()) {
      cls = static_cast<int>(out.members.size());
      root_to_class[root] = cls;
      out.members.emplace_back();
    } else {
      cls = it->second;
    }
    out.class_of[out.registers[i]] = cls;
    out.members[static_cast<std::size_t>(cls)].push_back(out.registers[i]);
  }

  // Collect the use set U.
  for (const auto& bb : f.blocks()) {
    for (const auto& inst_ptr : bb->instructions()) {
      const Instruction* inst = inst_ptr.get();
      if (inst->opcode() == Opcode::Store) {
        // Use of the stored value by the array.
        if (is_register(inst->operand(0)))
          out.uses.push_back({inst->operand(0), inst->operand(1)});
        continue;
      }
      if (inst->type() != ScalarType::Real) continue;
      if (inst->opcode() == Opcode::Load) {
        out.uses.push_back({inst->operand(0), inst});
        continue;
      }
      for (const ir::Value* op : inst->operands())
        if (is_register(op)) out.uses.push_back({op, inst});
    }
  }

  return out;
}

} // namespace luis::core
