// The LUIS Data Type Allocation pass — Section IV of the paper.
//
// Builds the ILP model of the kernel's precision profile from the SSA
// def/use graph, the value ranges, and the platform characterization, then
// solves it and extracts a TypeAssignment:
//
//   variables   x_{c,t}   type t chosen for type-class c (binary)
//               z_{v,f}   fractional bits of register v if fixed type f
//               y_{A,t,B,t'} cast indicator per class pair and type pair
//               y-shift   fixed point realignment indicator per use
//   objective   min  W1 (Ex^ + C^ + Cfix^) - W2 Err^
//
// Deviations from the paper's formulation, chosen for solver efficiency
// and documented in DESIGN.md: hard x_{a,t} = x_{b,t} equalities are
// merged into type classes up front; cast indicators are aggregated per
// (class, class) pair with a use-count multiplier; z and y variables are
// continuous (their LP values are integral whenever the x's are, except
// the shift indicators, whose cost the LP may under-estimate).
#pragma once

#include "core/allocation.hpp"
#include "core/config.hpp"
#include "ir/function.hpp"
#include "platform/optime.hpp"
#include "vra/range_analysis.hpp"

namespace luis::core {

AllocationResult allocate_ilp(const ir::Function& f, const vra::RangeMap& ranges,
                              const platform::OpTimeTable& table,
                              const TuningConfig& config);

} // namespace luis::core
