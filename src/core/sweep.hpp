// Multithreaded batch tuning driver: the paper's full evaluation grid
// (PolyBench kernel x preset x platform) fanned across a thread pool.
//
// Isolation model. Every job tunes its own clone of the kernel (parsed
// from IR text pre-rendered once per kernel), so no job ever touches
// another job's Function — the pipeline interns constants on the Function
// and is therefore not shareable across threads. The only mutable shared
// state is the solver result cache, which is internally locked and, by
// construction of its canonical key, cannot change what any job computes
// (see ilp/solver_cache.hpp).
//
// Determinism. Job results are written into a preallocated slot vector in
// a fixed (kernel-major) order, so the output is identical no matter how
// the pool schedules jobs. With `check_determinism` the driver re-runs
// every ILP job's tuning serially after the parallel phase and compares
// status, objective bits, and the serialized assignment; the re-solves
// hit the solver cache, which is what makes the check cheap — and is the
// sweep's organic source of cache hits, since the grid's 360 models are
// pairwise distinct.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "ilp/solver_cache.hpp"
#include "interp/engine.hpp"

namespace luis::core {

struct SweepOptions {
  std::vector<std::string> kernels;   ///< empty = all 30 PolyBench kernels
  std::vector<std::string> configs;   ///< empty = Precise, Balanced, Fast
  std::vector<std::string> platforms; ///< empty = Stm32/Raspberry/Intel/AMD
  /// Also run the platform-blind TAFFO greedy baseline (once per kernel).
  bool include_taffo = true;
  long solver_max_nodes = 3000;
  /// Worker threads; 0 = hardware concurrency, 1 = serial reference path.
  int threads = 0;
  /// Share one solver result cache across all jobs. Also controls the
  /// VM engine's shared compiled-program cache (off = no shared state).
  bool use_cache = true;
  /// Execution engine for every interpretation in the sweep: "vm" (the
  /// bytecode engine, default) or "ref" (the tree-walking reference).
  /// Results are bit-identical either way.
  std::string engine = "vm";
  /// Execute the tuned assignments of each kernel as parallel lanes of
  /// one batched engine run (ExecutionEngine::run_batch) instead of one
  /// scalar run per job: the kernel is parsed once, duplicate assignments
  /// collapse into a single lane, and the VM walks the shared control
  /// skeleton once per lane group. Per-job speedup/MPE are bit-identical
  /// to the scalar path; only the timing split differs.
  bool batch = true;
  /// After the (possibly parallel) sweep, serially re-tune every ILP job
  /// and verify it reproduces the same assignment and objective.
  bool check_determinism = true;
  /// Shadow-execute every tuned job (scalar and batched paths alike): the
  /// VM carries a lockstep binary64 shadow and each job's row gains the
  /// in-engine MPE, max abs/rel deviation, and control-divergence count
  /// (see docs/OBSERVABILITY.md, "Numerical-error profiling"). Quantized
  /// outputs are bit-identical with this on.
  bool errors = false;
  /// VRA fixpoint knobs, applied to every job's pipeline and recorded in
  /// the JSON report (so a sweep is reproducible from its own artifact).
  vra::VraOptions vra;
  bool verbose = false; ///< per-kernel progress lines on stderr
};

struct SweepJobResult {
  std::string kernel;
  std::string config;   ///< "Precise", "Balanced", "Fast", or "TAFFO"
  std::string platform;
  bool ok = false;
  std::string error;
  double speedup_percent = 0.0; ///< vs. the all-binary64 kernel
  double mpe = 0.0;             ///< vs. the all-binary64 outputs
  /// Shadow-execution telemetry (SweepOptions::errors; zeros otherwise).
  /// shadow_mpe is the in-engine whole-program MPE vs the lockstep
  /// binary64 shadow — with zero control divergences it equals `mpe`
  /// computed externally against the binary64 reference outputs.
  bool errors_profiled = false;
  double shadow_mpe = 0.0;
  double max_abs_error = 0.0; ///< over every recorded register/array write
  double max_rel_error = 0.0;
  long control_divergences = 0;
  StageTimings timings;
  AllocationStats stats;
  std::string engine; ///< resolved engine that executed this job
  /// Canonical serialization of the type assignment (assignment_io) — the
  /// artifact the determinism check compares.
  std::string assignment_text;
};

struct SweepStats {
  int jobs = 0;
  int failed = 0;
  int threads = 1;         ///< resolved worker count
  double wall_seconds = 0.0;
  StageTimings stage_totals; ///< summed over all jobs
  long solver_nodes = 0;
  long solver_iterations = 0;
  ilp::SolverCache::Stats cache; ///< zeros when the cache is disabled
  std::string engine; ///< resolved engine name ("vm" or "ref")
  /// Compiled-program cache of the VM engine; zeros on the reference
  /// engine or with use_cache off.
  interp::ProgramCache::Stats program_cache;
  /// -1 when the check is disabled; otherwise the number of jobs whose
  /// serial re-tune disagreed with the sweep result (0 = proven).
  int determinism_mismatches = -1;
  /// Batched-execution stats (all zero with SweepOptions::batch off): one
  /// "run" per kernel whose tuned jobs executed as lanes of a single
  /// batched engine call; `lanes` counts the job executions served that
  /// way and `unique_lanes` the deduplicated assignments actually
  /// interpreted.
  long batch_runs = 0;
  long batch_lanes = 0;
  long batch_unique_lanes = 0;
  /// The VRA knobs every job ran under (echoed into the JSON report).
  vra::VraOptions vra;
};

struct SweepResult {
  /// One entry per job in a fixed kernel-major order, independent of
  /// scheduling: kernels in input order, then platforms, then configs
  /// (TAFFO last when enabled).
  std::vector<SweepJobResult> jobs;
  SweepStats stats;
};

/// Runs the sweep. Aborts (LUIS_FATAL) on unknown kernel/config/platform
/// names; per-job execution failures are reported in the job result.
SweepResult run_sweep(const SweepOptions& options = {});

/// Human-readable stats block (stage totals, solver work, cache hit rate,
/// determinism verdict).
std::string sweep_summary_text(const SweepResult& result);

/// The full report — every job plus the summary — as a JSON document.
std::string sweep_report_json(const SweepResult& result);

} // namespace luis::core
