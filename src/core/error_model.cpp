#include "core/error_model.hpp"

#include <algorithm>
#include <cmath>

#include "numrep/iebw.hpp"
#include "support/diag.hpp"

namespace luis::core {

using interp::TypeAssignment;
using ir::Instruction;
using ir::Opcode;
using ir::ScalarType;
using numrep::ConcreteType;
using vra::Interval;

double quantization_error(const ConcreteType& type, const Interval& range) {
  if (type.format == numrep::kBinary64) return 0.0; // the reference format
  if (type.format.is_fixed())
    // Round-to-nearest onto the 2^-f grid.
    return std::ldexp(1.0, -(type.frac_bits + 1));
  // Every range-dependent representation (floats, posits, fixed-posits,
  // registered extensions): IEBW at the magnitude extreme is the
  // guaranteed resolution; its Definition-3 form already accounts for the
  // half ULP.
  if (range.max_magnitude() == 0.0) return 0.0;
  const int iebw = numrep::iebw_of_range(type.format, range.lo, range.hi);
  return std::ldexp(1.0, -iebw);
}

namespace {

/// Smallest magnitude of an interval (0 if it straddles zero).
double min_magnitude(const Interval& iv) {
  if (iv.lo > 0.0) return iv.lo;
  if (iv.hi < 0.0) return -iv.hi;
  return 0.0;
}

/// Largest accumulation depth the kernel can reach in one loop: the max
/// constant trip count of any counted loop (phi from a constant, compared
/// against a constant) joined with the largest array extent (triangular
/// loops run up to a dimension).
int estimate_accumulation_depth(const ir::Function& f) {
  std::int64_t depth = 1;
  for (const auto& arr : f.arrays())
    for (const std::int64_t d : arr->dims()) depth = std::max(depth, d);
  for (const auto& bb : f.blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() != Opcode::ICmp) continue;
      const ir::Value* a = inst->operand(0);
      const ir::Value* b = inst->operand(1);
      if (a->kind() == ir::Value::Kind::ConstInt)
        depth = std::max(depth, static_cast<const ir::ConstInt*>(a)->value());
      if (b->kind() == ir::Value::Kind::ConstInt)
        depth = std::max(depth, static_cast<const ir::ConstInt*>(b)->value());
    }
  }
  return static_cast<int>(std::min<std::int64_t>(depth, 1 << 20));
}

class Analyzer {
public:
  Analyzer(const ir::Function& f, const TypeAssignment& assignment,
           const vra::RangeMap& ranges, const ErrorAnalysisOptions& opt)
      : f_(f), assignment_(assignment), ranges_(ranges), opt_(opt) {}

  ErrorAnalysis run() {
    int budget = opt_.max_passes;
    if (opt_.auto_depth)
      budget = std::min(budget, 2 * estimate_accumulation_depth(f_) + 8);
    // Arrays start with their own storage quantization (inputs are
    // binary64 data quantized into the array's representation).
    for (const auto& arr : f_.arrays())
      result_.array_bound[arr->name()] =
          quantization_error(assignment_.of(arr.get()), ranges_.of(arr.get()));

    for (result_.passes = 0; result_.passes < budget; ++result_.passes) {
      changed_ = false;
      for (const auto& bb : f_.blocks())
        for (const auto& inst : bb->instructions()) transfer(inst.get());
      if (!changed_) {
        result_.converged = true;
        break;
      }
    }
    return std::move(result_);
  }

private:
  double err_of(const ir::Value* v, const ConcreteType& consumer_type) {
    if (v->is_constant()) {
      // Constants materialize in the consumer's format.
      const double mag =
          std::abs(static_cast<const ir::ConstReal*>(v)->value());
      return quantization_error(consumer_type, Interval{-mag, mag});
    }
    if (v->is_array()) {
      return result_.array_bound.at(v->name());
    }
    const auto it = result_.bound.find(v);
    double e = it == result_.bound.end() ? 0.0 : it->second;
    // A format change at the use adds the target's quantum.
    if (!(assignment_.of(v) == consumer_type))
      e += quantization_error(consumer_type, ranges_.of(v));
    return e;
  }

  void set_bound(const ir::Value* v, double e) {
    e = std::min(e, opt_.infinity_threshold);
    auto [it, fresh] = result_.bound.try_emplace(v, e);
    if (!fresh) {
      if (e <= it->second) return;
      it->second = e;
    }
    changed_ = true;
  }

  void join_array(const std::string& name, double e) {
    e = std::min(e, opt_.infinity_threshold);
    double& slot = result_.array_bound.at(name);
    if (e > slot) {
      slot = e;
      changed_ = true;
    }
  }

  void transfer(const Instruction* inst) {
    if (inst->opcode() == Opcode::Store) {
      const auto* arr = static_cast<const ir::Array*>(inst->operand(1));
      const ConcreteType at = assignment_.of(arr);
      join_array(arr->name(), err_of(inst->operand(0), at) +
                                  quantization_error(at, ranges_.of(arr)));
      return;
    }
    if (inst->type() != ScalarType::Real) return;

    const ConcreteType ty = assignment_.of(inst);
    const Interval range = ranges_.of(inst);
    const double q = quantization_error(ty, range);
    const double inf = opt_.infinity_threshold;

    auto operand_range = [&](std::size_t i) {
      return ranges_.of(inst->operand(i));
    };
    auto e = [&](std::size_t i) { return err_of(inst->operand(i), ty); };

    double out = 0.0;
    switch (inst->opcode()) {
    case Opcode::Add:
    case Opcode::Sub:
      out = e(0) + e(1) + q;
      break;
    case Opcode::Mul: {
      const double ma = operand_range(0).max_magnitude();
      const double mb = operand_range(1).max_magnitude();
      out = ma * e(1) + mb * e(0) + e(0) * e(1) + q;
      break;
    }
    case Opcode::Div: {
      const double ea = e(0), eb = e(1);
      const double bmin = min_magnitude(operand_range(1));
      if (bmin - eb <= 0.0) {
        out = ea > 0.0 || eb > 0.0 ? inf : q;
      } else {
        const double ratio = operand_range(0).max_magnitude() / bmin;
        out = (ea + ratio * eb) / (bmin - eb) + q;
      }
      break;
    }
    case Opcode::Rem:
      // First-order only: fmod's discontinuities are not modeled.
      out = e(0) + e(1) + q;
      break;
    case Opcode::Neg:
    case Opcode::Abs:
      out = e(0); // exact in any representation
      break;
    case Opcode::Sqrt: {
      const double ea = e(0);
      const double amin = std::max(operand_range(0).lo, 0.0);
      // |sqrt(x+d) - sqrt(x)| <= sqrt(d) always, and <= d / (2 sqrt(xmin))
      // when the argument stays away from zero.
      const double coarse = std::sqrt(ea);
      const double fine = amin > ea ? ea / (2.0 * std::sqrt(amin)) : coarse;
      out = std::min(coarse, fine) + q;
      break;
    }
    case Opcode::Exp:
      out = std::min(std::exp(std::min(operand_range(0).hi, 700.0)) * e(0), inf) + q;
      break;
    case Opcode::Pow: {
      // Only constant exponents get a finite bound.
      const ir::Value* exponent = inst->operand(1);
      if (exponent->kind() == ir::Value::Kind::ConstReal && e(1) == 0.0) {
        const double p = static_cast<const ir::ConstReal*>(exponent)->value();
        const double ma = operand_range(0).max_magnitude();
        out = std::abs(p) * std::pow(std::max(ma, 1e-300), p - 1.0) * e(0) + q;
      } else {
        out = e(0) > 0.0 || e(1) > 0.0 ? inf : q;
      }
      break;
    }
    case Opcode::Min:
    case Opcode::Max:
      out = std::max(e(0), e(1)) + q;
      break;
    case Opcode::Select:
      // Control-flow divergence under a perturbed condition is not
      // modeled (the condition compares the *same* perturbed values both
      // ways); the value error is the worst arm.
      out = std::max(e(1), e(2)) + q;
      break;
    case Opcode::Load:
      out = err_of(inst->operand(0), ty);
      break;
    case Opcode::Cast:
      out = e(0) + q;
      break;
    case Opcode::IntToReal:
      out = q;
      break;
    case Opcode::Phi: {
      for (const ir::Value* op : inst->operands())
        out = std::max(out, err_of(op, ty));
      break;
    }
    default:
      return;
    }
    set_bound(inst, out);
  }

  const ir::Function& f_;
  const TypeAssignment& assignment_;
  const vra::RangeMap& ranges_;
  const ErrorAnalysisOptions& opt_;
  ErrorAnalysis result_;
  bool changed_ = false;
};

} // namespace

ErrorAnalysis analyze_errors(const ir::Function& f,
                             const TypeAssignment& assignment,
                             const vra::RangeMap& ranges,
                             const ErrorAnalysisOptions& options) {
  return Analyzer(f, assignment, ranges, options).run();
}

} // namespace luis::core
