// Common result types of the data type allocation passes.
#pragma once

#include <map>
#include <string>

#include "ilp/model.hpp"
#include "interp/type_assignment.hpp"

namespace luis::core {

struct AllocationStats {
  int num_registers = 0;
  int num_classes = 0;
  int num_uses = 0;
  std::size_t model_variables = 0;
  std::size_t model_constraints = 0;
  ilp::SolveStatus status = ilp::SolveStatus::Optimal;
  long nodes = 0;
  long iterations = 0;
  double objective = 0.0;
  /// Wall-clock split of the allocator's work: ILP model construction vs.
  /// the branch & bound solve. The greedy allocator reports its whole
  /// scan as solve time.
  double model_build_seconds = 0.0;
  double solve_seconds = 0.0;
  /// Tunable arithmetic instructions per chosen cost class — the
  /// "instruction mix" / precision mix of Table V.
  std::map<std::string, int> instruction_mix;
};

struct AllocationResult {
  interp::TypeAssignment assignment;
  AllocationStats stats;
};

} // namespace luis::core
