// Type equivalence classes over the virtual registers of a kernel.
//
// LLVM-IR requires the operands and result of an arithmetic operation to
// share one type, which the paper encodes as x_{a,t} = x_{b,t} constraints.
// Merging those hard-equalities up front (union-find) collapses the ILP's
// x variables from one set per register to one set per *class*, which is
// what keeps the model small; representation changes can then only happen
// at the remaining use edges (stores into arrays, explicit casts), each of
// which carries the paper's cast indicator variables.
#pragma once

#include <map>
#include <vector>

#include "ir/function.hpp"

namespace luis::core {

/// A use edge (a, b): register a is consumed by register b across a class
/// boundary or a potential cast point.
struct UseEdge {
  const ir::Value* used = nullptr;
  const ir::Value* user = nullptr;
};

struct TypeClasses {
  /// All Real registers of the model: Real-typed instructions plus arrays.
  std::vector<const ir::Value*> registers;
  /// Class id per register (dense, 0-based).
  std::map<const ir::Value*, int> class_of;
  /// Members per class.
  std::vector<std::vector<const ir::Value*>> members;
  /// Every use of a Real register by another Real register (the set U of
  /// the paper), including the within-class ones (those can still incur
  /// fixed point shift casts).
  std::vector<UseEdge> uses;
  /// The hard same-type pairs that produced the classes — the x_{a,t} =
  /// x_{b,t} constraints of the paper's literal formulation (used when the
  /// model is built without class merging).
  std::vector<std::pair<const ir::Value*, const ir::Value*>> same_type_edges;

  int num_classes() const { return static_cast<int>(members.size()); }
};

/// Computes the classes for `f`. Hard same-type edges: operands/results of
/// arithmetic ops, phi webs, select arms, fcmp operand pairs, and loads
/// with their backing array. Stores and explicit casts do NOT merge — they
/// are the representation change points.
TypeClasses compute_type_classes(const ir::Function& f);

} // namespace luis::core
