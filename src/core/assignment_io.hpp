// Type assignment serialization.
//
// A tuned assignment is the valuable artifact of the (potentially slow)
// ILP step; serializing it lets a build system cache and re-apply
// decisions without re-solving, and lets humans inspect or hand-edit the
// chosen types. The text format is one line per value:
//
//   @A fix32.27          # array by name
//   %12 binary32         # instruction by printer id
//   default binary64     # optional fallback line
//
// Instruction ids use ir::number_instructions, so a saved assignment is
// valid for the exact IR it was produced from (the printer/parser round
// trip preserves ids).
#pragma once

#include <string>
#include <string_view>

#include "interp/type_assignment.hpp"
#include "ir/function.hpp"

namespace luis::core {

/// Serializes `assignment` for `f` (arrays and Real instructions).
std::string assignment_to_text(const ir::Function& f,
                               const interp::TypeAssignment& assignment);

struct AssignmentParseResult {
  interp::TypeAssignment assignment;
  std::string error; ///< empty on success
  bool ok() const { return error.empty(); }
};

/// Parses the text form against `f`, resolving @names and %ids.
AssignmentParseResult assignment_from_text(const ir::Function& f,
                                           std::string_view text);

} // namespace luis::core
