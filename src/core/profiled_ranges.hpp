// Dynamic-profiling range source — the alternative to static VRA the
// paper names in Section II ("the same result could be achieved via
// dynamic code profiling").
//
// A binary64 profiling run with register tracking enabled observes the
// exact values every virtual register and array takes; those observations
// (plus a safety margin) become the RangeMap the allocator consumes.
// Profiled ranges are tighter than interval-arithmetic VRA (no
// over-approximation through long dependence chains), which buys fixed
// point more fractional bits — but they are only sound for inputs similar
// to the profiled ones.
#pragma once

#include "interp/engine.hpp"
#include "interp/interpreter.hpp"
#include "vra/range_analysis.hpp"

namespace luis::core {

/// Profiles `f` on `inputs` (binary64, range tracking on) and builds the
/// RangeMap. Returns an empty map (and sets *error if given) if the
/// profiling run fails. With `engine` the profiling run goes through that
/// engine; by default it uses the reference interpreter.
vra::RangeMap profile_ranges(const ir::Function& f,
                             const interp::ArrayStore& inputs,
                             double margin = 0.05,
                             std::string* error = nullptr,
                             const interp::ExecutionEngine* engine = nullptr);

/// Converts an already-collected profile into a RangeMap.
vra::RangeMap ranges_from_profile(const ir::Function& f,
                                  const interp::RunResult& profile,
                                  double margin = 0.05);

} // namespace luis::core
