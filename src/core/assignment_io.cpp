#include "core/assignment_io.hpp"

#include <cstdlib>
#include <map>
#include <sstream>

#include "ir/printer.hpp"
#include "support/string_utils.hpp"

namespace luis::core {
namespace {

/// Parses "fix32.27" / "binary32" / "posit16_1" into a ConcreteType.
bool parse_concrete(const std::string& token, numrep::ConcreteType& out) {
  const std::size_t dot = token.find('.');
  const std::string fmt_name =
      dot == std::string::npos ? token : token.substr(0, dot);
  const auto fmt = numrep::parse_format(fmt_name);
  if (!fmt) return false;
  out.format = *fmt;
  out.frac_bits = dot == std::string::npos
                      ? 0
                      : std::atoi(token.c_str() + dot + 1);
  if (out.format.is_fixed() &&
      (out.frac_bits < 0 || out.frac_bits >= out.format.width()))
    return false;
  return true;
}

} // namespace

std::string assignment_to_text(const ir::Function& f,
                               const interp::TypeAssignment& assignment) {
  std::ostringstream os;
  for (const auto& arr : f.arrays())
    os << "@" << arr->name() << " " << assignment.of(arr.get()).name() << "\n";
  const auto ids = ir::number_instructions(f);
  for (const auto& bb : f.blocks())
    for (const auto& inst : bb->instructions())
      if (inst->type() == ir::ScalarType::Real)
        os << "%" << ids.at(inst.get()) << " "
           << assignment.of(inst.get()).name() << "\n";
  return os.str();
}

AssignmentParseResult assignment_from_text(const ir::Function& f,
                                           std::string_view text) {
  AssignmentParseResult out;

  // Index the function's addressable values.
  std::map<std::string, const ir::Value*> by_name;
  for (const auto& arr : f.arrays()) by_name["@" + arr->name()] = arr.get();
  const auto ids = ir::number_instructions(f);
  std::map<int, const ir::Instruction*> by_id;
  for (const auto& [inst, id] : ids) by_id[id] = inst;

  std::istringstream is{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string t{trim(line)};
    if (t.empty() || t[0] == '#') continue;
    std::istringstream ls(t);
    std::string target, type_token;
    ls >> target >> type_token;
    numrep::ConcreteType type;
    if (!parse_concrete(type_token, type)) {
      out.error = "line " + std::to_string(line_no) + ": bad type '" +
                  type_token + "'";
      return out;
    }
    if (target == "default") {
      // Rebase the fallback, keeping entries parsed so far.
      interp::TypeAssignment rebased(type);
      for (const auto& [value, entry] : out.assignment.entries())
        rebased.set(value, entry);
      out.assignment = std::move(rebased);
      continue;
    }
    if (target.size() > 1 && target[0] == '@') {
      const auto it = by_name.find(target);
      if (it == by_name.end()) {
        out.error = "line " + std::to_string(line_no) + ": unknown array " +
                    target;
        return out;
      }
      out.assignment.set(it->second, type);
      continue;
    }
    if (target.size() > 1 && target[0] == '%') {
      const int id = std::atoi(target.c_str() + 1);
      const auto it = by_id.find(id);
      if (it == by_id.end() ||
          it->second->type() != ir::ScalarType::Real) {
        out.error = "line " + std::to_string(line_no) +
                    ": unknown or non-Real register " + target;
        return out;
      }
      out.assignment.set(it->second, type);
      continue;
    }
    out.error = "line " + std::to_string(line_no) + ": bad target '" +
                target + "'";
    return out;
  }
  return out;
}

} // namespace luis::core
