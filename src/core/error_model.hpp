// Static round-off error analysis of a tuned kernel.
//
// Given a type assignment, propagates a sound worst-case absolute error
// bound through the kernel: every operation contributes its representation
// quantum (half ULP of the assigned format over the VRA range) plus the
// first-order amplification of its operands' incoming errors
// (interval-arithmetic style). Arrays accumulate the join of their stores,
// so loop-carried accumulation converges after about one pass per
// accumulation step.
//
// This is the analysis direction the paper contrasts with Daisy's
// SMT-based contracts (Section II): cheap, sound, and composable with the
// ILP allocation — the bench compares its predictions against the
// measured errors of the tuned kernels.
#pragma once

#include <map>
#include <string>

#include "interp/type_assignment.hpp"
#include "ir/function.hpp"
#include "vra/range_analysis.hpp"

namespace luis::core {

struct ErrorAnalysisOptions {
  /// Fixpoint pass budget. One pass models one step of every loop-carried
  /// accumulation chain (the unroll-budget semantics of static error
  /// analyzers): the result is a sound bound for every execution whose
  /// deepest accumulation chain is at most this many steps. Straight-line
  /// and non-accumulating kernels converge early (ErrorAnalysis::converged
  /// is then true and the bound is unconditional).
  int max_passes = 400;
  /// Derive the pass budget from the kernel itself (twice the largest
  /// constant loop trip count / array extent, clamped by max_passes).
  /// Multiplicative loop updates compound once per pass, so a budget close
  /// to the real accumulation depth keeps the bound orders of magnitude
  /// tighter than a flat cap.
  bool auto_depth = true;
  /// Bounds reaching this magnitude are reported as unbounded.
  double infinity_threshold = 1e30;
};

struct ErrorAnalysis {
  /// Worst-case absolute error per Real register.
  std::map<const ir::Value*, double> bound;
  /// Worst-case absolute error of each array's contents at exit.
  std::map<std::string, double> array_bound;
  bool converged = false;
  int passes = 0;

  double of(const ir::Value* v) const {
    const auto it = bound.find(v);
    return it == bound.end() ? 0.0 : it->second;
  }
};

/// Half-ULP quantization error of storing a value of range `range` in
/// `type` (0 for binary64, the reference format).
double quantization_error(const numrep::ConcreteType& type,
                          const vra::Interval& range);

ErrorAnalysis analyze_errors(const ir::Function& f,
                             const interp::TypeAssignment& assignment,
                             const vra::RangeMap& ranges,
                             const ErrorAnalysisOptions& options = {});

} // namespace luis::core
