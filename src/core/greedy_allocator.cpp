#include "core/greedy_allocator.hpp"

#include <algorithm>
#include <chrono>

#include "core/type_classes.hpp"
#include "interp/interpreter.hpp"
#include "numrep/iebw.hpp"

namespace luis::core {

using numrep::ConcreteType;
using numrep::NumericFormat;

AllocationResult allocate_greedy(const ir::Function& f,
                                 const vra::RangeMap& ranges,
                                 const TuningConfig& config) {
  AllocationResult out;
  const auto t_start = std::chrono::steady_clock::now();

  // The fixed point word the conversion targets: the first fixed type in
  // the candidate set (TAFFO's default is a 32-bit word).
  NumericFormat fixed = numrep::kFixed32;
  for (const NumericFormat& fmt : config.types)
    if (fmt.is_fixed()) {
      fixed = fmt;
      break;
    }

  const TypeClasses classes = compute_type_classes(f);
  out.stats.num_registers = static_cast<int>(classes.registers.size());
  out.stats.num_classes = classes.num_classes();
  out.stats.num_uses = static_cast<int>(classes.uses.size());

  // TAFFO propagates one fixed point format along each value chain (the
  // DAG rooted at the annotated inputs), realigning only where chains
  // meet. Modeled here: per type class, the widest fractional part every
  // member can hold; chains whose range does not fit the word at all stay
  // in the original binary64.
  for (int c = 0; c < classes.num_classes(); ++c) {
    int frac = fixed.width() - 1;
    for (const ir::Value* v : classes.members[static_cast<std::size_t>(c)]) {
      const vra::Interval range = ranges.of(v);
      frac = std::min(frac, numrep::fixed_point_max_frac(
                                fixed.width(), fixed.is_signed(), range.lo,
                                range.hi));
    }
    for (const ir::Value* v : classes.members[static_cast<std::size_t>(c)]) {
      if (frac >= 0) {
        out.assignment.set(v, ConcreteType{fixed, frac});
      } else {
        out.assignment.set(v, ConcreteType{numrep::kBinary64, 0});
      }
    }
  }

  for (const auto& bb : f.blocks())
    for (const auto& inst : bb->instructions())
      if (inst->is_tunable_arithmetic())
        ++out.stats.instruction_mix[interp::cost_class(
            out.assignment.of(inst.get()))];

  // No model/solve split to report: the whole greedy scan is the "solve".
  out.stats.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  return out;
}

} // namespace luis::core
