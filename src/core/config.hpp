// Tuning configuration: candidate type set and the W1/W2 trade-off weights
// of the cost function (Section IV-B, Table III).
#pragma once

#include <string>
#include <vector>

#include "ilp/branch_and_bound.hpp"
#include "numrep/formats.hpp"
#include "numrep/registry.hpp"
#include "platform/energy.hpp"

namespace luis::core {

/// Which non-functional metric the model's cost terms (Ex, C, Cfix) price.
enum class CostMetric { Time, Energy };

struct TuningConfig {
  std::string name = "Balanced";

  /// W1 weighs execution time (Ex + C + Cfix), W2 weighs precision (Err).
  double w1 = 50.0;
  double w2 = 50.0;

  /// Time reproduces the paper; Energy is the Section VI extension (the
  /// cost terms price op-energy instead of op-time; see platform/energy.hpp
  /// for the power model).
  CostMetric metric = CostMetric::Time;
  platform::PowerModel power;

  /// Candidate type set T. The default matches the paper's evaluation:
  /// one fixed point width plus binary32/binary64 (Table V's columns).
  std::vector<numrep::NumericFormat> types = {
      numrep::kFixed32, numrep::kBinary32, numrep::kBinary64};

  /// Build the ILP exactly as the paper writes it: one x_{v,t} binary per
  /// virtual register with explicit x_{a,t} = x_{b,t} equality rows, and
  /// one cast indicator per use and type pair. The default instead merges
  /// those hard equalities into type classes up front, which shrinks the
  /// model by an order of magnitude without changing its optimum. The
  /// literal mode exists as a faithfulness ablation and reproduces the
  /// paper's compilation-overhead profile.
  bool literal_model = false;

  /// Evaluation floor for the Err term's literal Definition 2 on ranges
  /// that straddle zero: magnitudes below this are considered noise under
  /// the data's own resolution. The Balanced preset's behaviour is
  /// sensitive to this dial (see EXPERIMENTS.md); 2^-20 is calibrated so the
  /// Balanced mix reproduces the paper's Table V.
  double err_zero_floor = 0x1.0p-20;

  ilp::BranchAndBoundOptions solver;

  // --- Table III presets ---
  static TuningConfig fast() {
    TuningConfig c;
    c.name = "Fast";
    c.w1 = 1000.0;
    c.w2 = 1.0;
    return c;
  }
  static TuningConfig balanced() {
    TuningConfig c;
    c.name = "Balanced";
    c.w1 = 50.0;
    c.w2 = 50.0;
    return c;
  }
  static TuningConfig precise() {
    TuningConfig c;
    c.name = "Precise";
    c.w1 = 1.0;
    c.w2 = 1000.0;
    return c;
  }
  /// Balanced weights over every executable format in the registry: the
  /// candidate set grows automatically when a format is registered, which
  /// is the point of the registry. Non-executable catalog entries
  /// (binary128/256) are IEBW-metric-only and excluded.
  static TuningConfig multi() {
    TuningConfig c;
    c.name = "Multi";
    c.w1 = 50.0;
    c.w2 = 50.0;
    c.types.clear();
    const numrep::FormatRegistry& reg = numrep::FormatRegistry::instance();
    for (const numrep::NumericFormat& f : reg.formats())
      if (reg.ops(f.format_class()).executable(f)) c.types.push_back(f);
    return c;
  }
};

} // namespace luis::core
