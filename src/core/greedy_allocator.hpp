// The baseline greedy data type allocation of stock TAFFO.
//
// A peep-hole optimization: each value is retyped in isolation to the
// format that minimizes its own representation error within the configured
// data size — which in practice means fixed point whenever the value range
// fits a fixed word, falling back to the original binary64 otherwise. It
// ignores cast overheads and cross-operation error propagation, which is
// exactly why it wins big on FPU-less machines (Stm32) and loses on
// superscalar ones (Intel/AMD), the behaviour Figure 2 of the paper shows.
#pragma once

#include "core/allocation.hpp"
#include "core/config.hpp"
#include "ir/function.hpp"
#include "vra/range_analysis.hpp"

namespace luis::core {

AllocationResult allocate_greedy(const ir::Function& f,
                                 const vra::RangeMap& ranges,
                                 const TuningConfig& config);

} // namespace luis::core
