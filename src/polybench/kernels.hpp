// Internal declarations of the per-kernel builders and shared init
// helpers. Users go through polybench.hpp.
#pragma once

#include <cstdint>
#include <functional>

#include "ir/kernel_builder.hpp"
#include "polybench/polybench.hpp"

namespace luis::polybench::detail {

// --- PolyBench-style host-side initialization helpers. ---

inline std::vector<double>& init1(interp::ArrayStore& store,
                                  const std::string& name, std::int64_t n,
                                  const std::function<double(std::int64_t)>& f) {
  auto& buf = store[name];
  buf.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    buf[static_cast<std::size_t>(i)] = f(i);
  return buf;
}

inline std::vector<double>& init2(interp::ArrayStore& store,
                                  const std::string& name, std::int64_t n0,
                                  std::int64_t n1,
                                  const std::function<double(std::int64_t, std::int64_t)>& f) {
  auto& buf = store[name];
  buf.resize(static_cast<std::size_t>(n0 * n1));
  for (std::int64_t i = 0; i < n0; ++i)
    for (std::int64_t j = 0; j < n1; ++j)
      buf[static_cast<std::size_t>(i * n1 + j)] = f(i, j);
  return buf;
}

inline std::vector<double>& init3(
    interp::ArrayStore& store, const std::string& name, std::int64_t n0,
    std::int64_t n1, std::int64_t n2,
    const std::function<double(std::int64_t, std::int64_t, std::int64_t)>& f) {
  auto& buf = store[name];
  buf.resize(static_cast<std::size_t>(n0 * n1 * n2));
  for (std::int64_t i = 0; i < n0; ++i)
    for (std::int64_t j = 0; j < n1; ++j)
      for (std::int64_t k = 0; k < n2; ++k)
        buf[static_cast<std::size_t>((i * n1 + j) * n2 + k)] = f(i, j, k);
  return buf;
}

/// Makes a matrix symmetric positive definite in-place (the PolyBench
/// recipe for cholesky/lu/ludcmp): B = A * A^T scaled, unit-dominant.
void make_spd(std::vector<double>& a, std::int64_t n);

/// Scales a Mini-preset dimension to the requested dataset size.
inline std::int64_t scaled(std::int64_t mini, DatasetSize size) {
  switch (size) {
  case DatasetSize::Mini: return mini;
  case DatasetSize::Small: return mini * 2;
  case DatasetSize::Medium: return mini * 4;
  }
  return mini;
}

// --- The 30 kernel builders. ---
BuiltKernel build_2mm(ir::Module&, DatasetSize);
BuiltKernel build_3mm(ir::Module&, DatasetSize);
BuiltKernel build_adi(ir::Module&, DatasetSize);
BuiltKernel build_atax(ir::Module&, DatasetSize);
BuiltKernel build_bicg(ir::Module&, DatasetSize);
BuiltKernel build_cholesky(ir::Module&, DatasetSize);
BuiltKernel build_correlation(ir::Module&, DatasetSize);
BuiltKernel build_covariance(ir::Module&, DatasetSize);
BuiltKernel build_deriche(ir::Module&, DatasetSize);
BuiltKernel build_doitgen(ir::Module&, DatasetSize);
BuiltKernel build_durbin(ir::Module&, DatasetSize);
BuiltKernel build_fdtd_2d(ir::Module&, DatasetSize);
BuiltKernel build_floyd_warshall(ir::Module&, DatasetSize);
BuiltKernel build_gemm(ir::Module&, DatasetSize);
BuiltKernel build_gemver(ir::Module&, DatasetSize);
BuiltKernel build_gesummv(ir::Module&, DatasetSize);
BuiltKernel build_gramschmidt(ir::Module&, DatasetSize);
BuiltKernel build_heat_3d(ir::Module&, DatasetSize);
BuiltKernel build_jacobi_1d(ir::Module&, DatasetSize);
BuiltKernel build_jacobi_2d(ir::Module&, DatasetSize);
BuiltKernel build_lu(ir::Module&, DatasetSize);
BuiltKernel build_ludcmp(ir::Module&, DatasetSize);
BuiltKernel build_mvt(ir::Module&, DatasetSize);
BuiltKernel build_nussinov(ir::Module&, DatasetSize);
BuiltKernel build_seidel_2d(ir::Module&, DatasetSize);
BuiltKernel build_symm(ir::Module&, DatasetSize);
BuiltKernel build_syr2k(ir::Module&, DatasetSize);
BuiltKernel build_syrk(ir::Module&, DatasetSize);
BuiltKernel build_trisolv(ir::Module&, DatasetSize);
BuiltKernel build_trmm(ir::Module&, DatasetSize);

} // namespace luis::polybench::detail
